// Result of one cycle-accurate array run (single tile). Shared by the
// conventional-SA baseline and the Axon core simulators so tests can compare
// them field by field.
#pragma once

#include "common/types.hpp"
#include "pe/mac.hpp"
#include "sim/stats.hpp"
#include "tensor/matrix.hpp"

namespace axon {

struct GemmRunResult {
  Matrix out;                    ///< the computed product tile
  i64 cycles = 0;                ///< total cycles incl. preload/fill/drain
  i64 fill_cycles = 0;           ///< observed cycles until the farthest used
                                 ///< PE had both operands (SA: R+C-2,
                                 ///< Axon: max(R,C)-1)
  i64 preload_cycles = 0;        ///< WS/IS stationary-load cycles
  i64 drain_cycles = 0;          ///< OS readout cycles
  MacCounters macs;              ///< aggregated over all PEs
  Matrix pe_activity;            ///< per-PE MAC count (active + gated) over
                                 ///< the used region — the utilization map
  Stats stats;                   ///< SRAM loads, forwards, ...
  Dataflow dataflow = Dataflow::kOS;
  ArchType arch = ArchType::kConventionalSA;
};

/// Options shared by the array simulators.
struct SimOptions {
  bool zero_gating = true;
  bool fp16_numerics = false;  ///< round every MAC to binary16
};

}  // namespace axon
