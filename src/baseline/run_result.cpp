#include "baseline/run_result.hpp"

// Data-only header; this TU exists so the library has a concrete object.

namespace axon {}
