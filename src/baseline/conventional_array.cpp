#include "baseline/conventional_array.hpp"

#include <optional>
#include <vector>

#include "common/check.hpp"
#include "pe/mac.hpp"

namespace axon {

namespace {

/// A latched operand travelling through the array: value + valid bit.
struct Slot {
  float value = 0.0f;
  bool valid = false;
};

}  // namespace

ConventionalArraySim::ConventionalArraySim(ArrayShape shape, SimOptions options)
    : shape_(shape), options_(options) {
  AXON_CHECK(shape_.valid(), "invalid array shape ", shape_.rows, "x",
             shape_.cols);
}

GemmRunResult ConventionalArraySim::run(Dataflow df, const Matrix& a,
                                        const Matrix& b) {
  AXON_CHECK(a.cols() == b.rows(), "GEMM inner-dim mismatch");
  switch (df) {
    case Dataflow::kOS:
      return run_os(a, b);
    case Dataflow::kWS: {
      // Stationary = A^T mapped (K rows x M cols); stream = B (K x N);
      // Out[n][m] = C[m][n] -> transpose back.
      const i64 m = a.rows(), k = a.cols();
      Matrix stationary(k, m);
      for (i64 i = 0; i < m; ++i) {
        for (i64 kk = 0; kk < k; ++kk) stationary.at(kk, i) = a.at(i, kk);
      }
      GemmRunResult r = run_stationary(stationary, b, Dataflow::kWS);
      Matrix c(m, b.cols());
      for (i64 i = 0; i < m; ++i) {
        for (i64 j = 0; j < b.cols(); ++j) c.at(i, j) = r.out.at(j, i);
      }
      r.out = std::move(c);
      return r;
    }
    case Dataflow::kIS: {
      // Stationary = B (K x N); stream = A^T (K x M); Out[m][n] = C[m][n].
      const i64 m = a.rows(), k = a.cols();
      Matrix stream(k, m);
      for (i64 i = 0; i < m; ++i) {
        for (i64 kk = 0; kk < k; ++kk) stream.at(kk, i) = a.at(i, kk);
      }
      return run_stationary(b, stream, Dataflow::kIS);
    }
  }
  AXON_CHECK(false, "unreachable dataflow");
  return {};
}

GemmRunResult ConventionalArraySim::run_os(const Matrix& a, const Matrix& b) {
  const i64 r = a.rows();   // rows of PEs used
  const i64 c = b.cols();   // cols of PEs used
  const i64 t_len = a.cols();
  AXON_CHECK(r <= shape_.rows, "OS: M=", r, " exceeds array rows ",
             shape_.rows);
  AXON_CHECK(c <= shape_.cols, "OS: N=", c, " exceeds array cols ",
             shape_.cols);

  GemmRunResult result;
  result.dataflow = Dataflow::kOS;
  result.arch = ArchType::kConventionalSA;

  const auto n = static_cast<std::size_t>(r * c);
  std::vector<Slot> a_reg(n), b_reg(n), a_next(n), b_next(n);
  std::vector<float> acc(n, 0.0f);
  std::vector<MacUnit> mac(n, MacUnit(options_.zero_gating,
                                      options_.fp16_numerics));
  auto idx = [c](i64 i, i64 j) { return static_cast<std::size_t>(i * c + j); };

  // Left-edge feeder for A row i: value A[i][t - i] (one-cycle skew per
  // row, as required by the conventional orchestration).
  auto feed_a = [&](i64 i, i64 t) -> Slot {
    const i64 k = t - i;
    if (k < 0 || k >= t_len) return {};
    result.stats.add("sram.ifmap.loads");
    return {a.at(i, k), true};
  };
  // Top-edge feeder for B col j: value B[t - j][j].
  auto feed_b = [&](i64 j, i64 t) -> Slot {
    const i64 k = t - j;
    if (k < 0 || k >= t_len) return {};
    result.stats.add("sram.filter.loads");
    return {b.at(k, j), true};
  };

  // Compute phase: last MAC at the farthest PE happens at cycle index
  // (T-1) + (r-1) + (c-1); loop runs that many + 1 cycles.
  const i64 compute_cycles = t_len + r + c - 2;
  bool farthest_seen = false;
  for (i64 t = 0; t < compute_cycles; ++t) {
    for (i64 i = 0; i < r; ++i) {
      for (i64 j = 0; j < c; ++j) {
        const Slot a_in = (j == 0) ? feed_a(i, t) : a_reg[idx(i, j - 1)];
        const Slot b_in = (i == 0) ? feed_b(j, t) : b_reg[idx(i - 1, j)];
        if (a_in.valid && b_in.valid) {
          auto& u = mac[idx(i, j)];
          acc[idx(i, j)] = u.mac(a_in.value, b_in.value, acc[idx(i, j)]);
          if (!farthest_seen && i == r - 1 && j == c - 1) {
            result.fill_cycles = t;  // == (r-1)+(c-1) by construction
            farthest_seen = true;
          }
        } else {
          mac[idx(i, j)].idle();
        }
        a_next[idx(i, j)] = a_in;
        b_next[idx(i, j)] = b_in;
      }
    }
    std::swap(a_reg, a_next);
    std::swap(b_reg, b_next);
  }
  AXON_CHECK(farthest_seen, "farthest PE never received operands");

  // Drain: accumulators shift down their column, one row per cycle.
  result.drain_cycles = r;
  result.cycles = compute_cycles + result.drain_cycles;

  result.out = Matrix(r, c);
  for (i64 i = 0; i < r; ++i) {
    for (i64 j = 0; j < c; ++j) result.out.at(i, j) = acc[idx(i, j)];
  }
  result.pe_activity = Matrix(r, c);
  for (i64 i = 0; i < r; ++i) {
    for (i64 j = 0; j < c; ++j) {
      result.pe_activity.at(i, j) =
          static_cast<float>(mac[idx(i, j)].counters().total_macs());
    }
  }
  for (const auto& u : mac) result.macs += u.counters();
  return result;
}

GemmRunResult ConventionalArraySim::run_stationary(const Matrix& stationary,
                                                   const Matrix& stream,
                                                   Dataflow df) {
  const i64 r = stationary.rows();  // reduction dim (S_R)
  const i64 c = stationary.cols();  // output spatial dim (S_C)
  const i64 t_len = stream.cols();  // temporal dim
  AXON_CHECK(stream.rows() == r, "stream rows must equal stationary rows");
  AXON_CHECK(r <= shape_.rows, to_string(df), ": K=", r,
             " exceeds array rows ", shape_.rows);
  AXON_CHECK(c <= shape_.cols, to_string(df), ": spatial dim ", c,
             " exceeds array cols ", shape_.cols);

  GemmRunResult result;
  result.dataflow = df;
  result.arch = ArchType::kConventionalSA;

  const auto n = static_cast<std::size_t>(r * c);
  std::vector<Slot> x_reg(n), x_next(n), p_reg(n), p_next(n);
  std::vector<MacUnit> mac(n, MacUnit(options_.zero_gating,
                                      options_.fp16_numerics));
  auto idx = [c](i64 i, i64 j) { return static_cast<std::size_t>(i * c + j); };

  // Preload: the stationary operand shifts down one row per cycle; r cycles
  // until every row holds its values.
  result.preload_cycles = r;
  result.stats.add("sram.stationary.loads", r * c);

  // Stream phase. X row i is skewed by i cycles; partial sums flow down and
  // exit at the bottom row into the collectors.
  auto feed_x = [&](i64 i, i64 t) -> Slot {
    const i64 k = t - i;
    if (k < 0 || k >= t_len) return {};
    result.stats.add("sram.stream.loads");
    return {stream.at(i, k), true};
  };

  Matrix out(t_len, c);
  const i64 stream_cycles = t_len + r + c - 2;
  bool farthest_seen = false;
  for (i64 t = 0; t < stream_cycles; ++t) {
    for (i64 i = 0; i < r; ++i) {
      for (i64 j = 0; j < c; ++j) {
        const Slot x_in = (j == 0) ? feed_x(i, t) : x_reg[idx(i, j - 1)];
        const Slot p_in =
            (i == 0) ? Slot{0.0f, x_in.valid} : p_reg[idx(i - 1, j)];
        Slot p_out;
        if (x_in.valid) {
          AXON_DCHECK(i == 0 || p_in.valid,
                      "psum chain broken at row ", i, " col ", j);
          auto& u = mac[idx(i, j)];
          p_out = {u.mac(x_in.value, stationary.at(i, j), p_in.value), true};
          if (!farthest_seen && i == r - 1 && j == c - 1) {
            result.fill_cycles = t;
            farthest_seen = true;
          }
        } else {
          mac[idx(i, j)].idle();
          p_out = p_in;  // bypass idle bubbles
        }
        x_next[idx(i, j)] = x_in;
        p_next[idx(i, j)] = p_out;
        if (i == r - 1 && p_out.valid) {
          // Output for temporal index n emerges at t = n + (r-1) + j.
          const i64 nn = t - (r - 1) - j;
          AXON_DCHECK(nn >= 0 && nn < t_len, "bad output timing");
          out.at(nn, j) = p_out.value;
        }
      }
    }
    std::swap(x_reg, x_next);
    std::swap(p_reg, p_next);
  }
  AXON_CHECK(farthest_seen, "farthest PE never streamed");

  result.cycles = result.preload_cycles + stream_cycles;
  result.out = std::move(out);
  result.pe_activity = Matrix(r, c);
  for (i64 i = 0; i < r; ++i) {
    for (i64 j = 0; j < c; ++j) {
      result.pe_activity.at(i, j) =
          static_cast<float>(mac[idx(i, j)].counters().total_macs());
    }
  }
  for (const auto& u : mac) result.macs += u.counters();
  return result;
}

}  // namespace axon
