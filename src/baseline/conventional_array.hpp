// Cycle-accurate simulator of the conventional (uni-directional) systolic
// array of paper Fig. 1. Operands enter at the left column / top row with
// the classic one-cycle-per-row (column) skew and propagate right/down
// through pipeline latches.
//
// The simulator is *functional*: it computes the actual GEMM tile cycle by
// cycle, so both the result matrix and the cycle count can be verified —
// the cycle counts reproduce SCALE-SIM equation (1):
//     tau = 2*S_R + S_C + T - 2.
//
// Dataflows:
//  * OS — A (r x T) streams from the left (row-skewed), B (T x c) from the
//    top (column-skewed); each PE accumulates locally; r-cycle drain.
//  * WS/IS — the stationary operand is preloaded top-down (S_R cycles),
//    the streaming operand enters from the left, partial sums flow down and
//    exit at the bottom row.
#pragma once

#include "baseline/run_result.hpp"
#include "common/types.hpp"
#include "tensor/matrix.hpp"

namespace axon {

class ConventionalArraySim {
 public:
  explicit ConventionalArraySim(ArrayShape shape, SimOptions options = {});

  [[nodiscard]] ArrayShape shape() const { return shape_; }

  /// C = A * B on one tile. Requirements depend on dataflow:
  ///  * OS: A.rows() <= R, B.cols() <= C (T = A.cols() unbounded)
  ///  * WS: A.cols() (=K) <= R, A.rows() (=M) <= C (T = N unbounded)
  ///  * IS: A.cols() (=K) <= R, B.cols() (=N) <= C (T = M unbounded)
  GemmRunResult run(Dataflow df, const Matrix& a, const Matrix& b);

 private:
  GemmRunResult run_os(const Matrix& a, const Matrix& b);

  /// Shared WS/IS engine. Computes Out[t][j] = sum_i St[i][j] * X[i][t]
  /// with St stationary (r x c) and X streaming (r x T).
  GemmRunResult run_stationary(const Matrix& stationary, const Matrix& stream,
                               Dataflow df);

  ArrayShape shape_;
  SimOptions options_;
};

}  // namespace axon
