#include "runner/accelerator.hpp"

#include <algorithm>

#include "baseline/conventional_array.hpp"
#include "common/check.hpp"
#include "core/axon_array.hpp"
#include "model/runtime_model.hpp"

namespace axon {

namespace {

Matrix submatrix(const Matrix& m, i64 r0, i64 rn, i64 c0, i64 cn) {
  Matrix out(rn, cn);
  for (i64 i = 0; i < rn; ++i) {
    for (i64 j = 0; j < cn; ++j) out.at(i, j) = m.at(r0 + i, c0 + j);
  }
  return out;
}

}  // namespace

Accelerator::Accelerator(AcceleratorConfig config) : config_(config) {
  AXON_CHECK(config_.array.valid(), "invalid array shape");
  AXON_CHECK(config_.arch != ArchType::kCMSA,
             "CMSA is an analytical baseline only (no cycle simulator)");
}

GemmRunResult Accelerator::run_tile(const Matrix& a, const Matrix& b) {
  if (config_.arch == ArchType::kAxon) {
    AxonArraySim sim(config_.array, config_.sim);
    return sim.run(config_.dataflow, a, b);
  }
  ConventionalArraySim sim(config_.array, config_.sim);
  return sim.run(config_.dataflow, a, b);
}

RunReport Accelerator::run_gemm(const Matrix& a, const Matrix& b) {
  AXON_CHECK(a.cols() == b.rows(), "GEMM inner-dim mismatch");
  const GemmShape g{a.rows(), a.cols(), b.cols()};
  const i64 rows = config_.array.rows;
  const i64 cols = config_.array.cols;

  RunReport report;
  report.out = Matrix(g.M, g.N);

  auto add_tile = [&](const GemmRunResult& tile) {
    report.cycles += tile.cycles;
    ++report.tiles;
    report.macs += tile.macs;
    report.stats.merge(tile.stats);
  };

  switch (config_.dataflow) {
    case Dataflow::kOS: {
      // Tile M over rows, N over cols; K is temporal (unbounded).
      for (i64 m0 = 0; m0 < g.M; m0 += rows) {
        const i64 mn = std::min(rows, g.M - m0);
        const Matrix a_tile = submatrix(a, m0, mn, 0, g.K);
        for (i64 n0 = 0; n0 < g.N; n0 += cols) {
          const i64 nn = std::min(cols, g.N - n0);
          const Matrix b_tile = submatrix(b, 0, g.K, n0, nn);
          GemmRunResult tile = run_tile(a_tile, b_tile);
          add_tile(tile);
          for (i64 i = 0; i < mn; ++i) {
            for (i64 j = 0; j < nn; ++j) {
              report.out.at(m0 + i, n0 + j) = tile.out.at(i, j);
            }
          }
        }
      }
      break;
    }
    case Dataflow::kWS: {
      // Tile K over rows, M over cols; N is temporal. Partial products over
      // K tiles accumulate into the output.
      for (i64 k0 = 0; k0 < g.K; k0 += rows) {
        const i64 kn = std::min(rows, g.K - k0);
        for (i64 m0 = 0; m0 < g.M; m0 += cols) {
          const i64 mn = std::min(cols, g.M - m0);
          const Matrix a_tile = submatrix(a, m0, mn, k0, kn);
          const Matrix b_tile = submatrix(b, k0, kn, 0, g.N);
          GemmRunResult tile = run_tile(a_tile, b_tile);
          add_tile(tile);
          for (i64 i = 0; i < mn; ++i) {
            for (i64 j = 0; j < g.N; ++j) {
              report.out.at(m0 + i, j) += tile.out.at(i, j);
            }
          }
        }
      }
      break;
    }
    case Dataflow::kIS: {
      // Tile K over rows, N over cols; M is temporal.
      for (i64 k0 = 0; k0 < g.K; k0 += rows) {
        const i64 kn = std::min(rows, g.K - k0);
        for (i64 n0 = 0; n0 < g.N; n0 += cols) {
          const i64 nn = std::min(cols, g.N - n0);
          const Matrix a_tile = submatrix(a, 0, g.M, k0, kn);
          const Matrix b_tile = submatrix(b, k0, kn, n0, nn);
          GemmRunResult tile = run_tile(a_tile, b_tile);
          add_tile(tile);
          for (i64 i = 0; i < g.M; ++i) {
            for (i64 j = 0; j < nn; ++j) {
              report.out.at(i, n0 + j) += tile.out.at(i, j);
            }
          }
        }
      }
      break;
    }
  }

  report.model_cycles =
      scale_up_runtime(config_.arch, config_.dataflow, g, config_.array).cycles;
  report.utilization =
      static_cast<double>(g.macs()) /
      (static_cast<double>(config_.array.num_pes()) *
       static_cast<double>(report.cycles));
  return report;
}

RunReport Accelerator::run_conv(const Tensor4& input, const Tensor4& filters,
                                const ConvShape& conv) {
  RunReport report;
  ConvRunResult r =
      config_.arch == ArchType::kAxon
          ? run_conv_axon_im2col(input, filters, conv, config_.array,
                                 config_.sim)
          : run_conv_sa_software_im2col(input, filters, conv, config_.array,
                                        config_.sim);
  report.conv_out = std::move(r.output);
  report.cycles = r.cycles;
  report.tiles = r.tiles;
  report.macs = r.macs;
  report.stats.add("sram.ifmap.loads", r.ifmap_sram_loads);
  report.stats.add("sram.filter.loads", r.filter_sram_loads);
  report.stats.add("feeder.neighbor.forwards", r.neighbor_forwards);
  report.utilization =
      static_cast<double>(conv.macs()) /
      (static_cast<double>(config_.array.num_pes()) *
       static_cast<double>(report.cycles));
  const GemmShape g = conv.as_gemm();
  report.model_cycles =
      scale_up_runtime(config_.arch, config_.dataflow, g, config_.array)
          .cycles *
      conv.groups;
  return report;
}

}  // namespace axon
