// High-level entry point: run arbitrarily sized GEMMs and convolutions on a
// configured accelerator (conventional SA or Axon), cycle-accurately, with
// automatic tiling. This is the API the examples use.
#pragma once

#include "baseline/run_result.hpp"
#include "common/types.hpp"
#include "core/conv_executor.hpp"
#include "tensor/matrix.hpp"
#include "tensor/tensor4.hpp"

namespace axon {

struct AcceleratorConfig {
  ArchType arch = ArchType::kAxon;
  ArrayShape array{16, 16};
  Dataflow dataflow = Dataflow::kOS;
  SimOptions sim;
};

/// Aggregated result of a (possibly tiled) run.
struct RunReport {
  Matrix out;                ///< GEMM result (empty for conv runs)
  Tensor4 conv_out;          ///< conv result (empty for GEMM runs)
  i64 cycles = 0;            ///< cycle-accurate total over all tiles
  i64 tiles = 0;
  i64 model_cycles = 0;      ///< analytical prediction (scale-up equations)
  double utilization = 0.0;  ///< useful MACs / (PEs * cycles)
  MacCounters macs;
  Stats stats;
};

class Accelerator {
 public:
  explicit Accelerator(AcceleratorConfig config);

  [[nodiscard]] const AcceleratorConfig& config() const { return config_; }

  /// C = A * B, any size; tiled over the spatial dimensions of the
  /// configured dataflow (and over K for WS/IS, accumulating partials).
  RunReport run_gemm(const Matrix& a, const Matrix& b);

  /// Full convolution layer. On Axon this uses the on-chip im2col feeder
  /// chain; on the conventional SA it consumes software im2col.
  RunReport run_conv(const Tensor4& input, const Tensor4& filters,
                     const ConvShape& conv);

 private:
  GemmRunResult run_tile(const Matrix& a, const Matrix& b);

  AcceleratorConfig config_;
};

}  // namespace axon
