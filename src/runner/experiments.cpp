#include "runner/experiments.hpp"

#include <cmath>

#include "common/check.hpp"
#include "model/runtime_model.hpp"
#include "model/utilization.hpp"

namespace axon {

std::vector<Fig6Row> fig6_fill_factors(const std::vector<ArrayShape>& shapes) {
  std::vector<Fig6Row> rows;
  rows.reserve(shapes.size());
  for (const ArrayShape& s : shapes) {
    rows.push_back({s, fill_latency(ArchType::kConventionalSA, s),
                    fill_latency(ArchType::kAxon, s)});
  }
  return rows;
}

std::vector<SpeedupRow> fig12_speedups(int array_size) {
  // Modeling choice (DESIGN.md §4): OS dataflow (the paper's implemented
  // hardware, §5.1) with pipelined tiles — each tile's drain overlaps the
  // next tile's fill, leaving fill + T per tile. Strict Table-2 accounting
  // caps the square-array speedup at 1.5x, below the paper's reported
  // averages (1.47x @ 64, 1.76x @ 256, "up to 2x"), so the paper's figure
  // necessarily overlaps the readout; this model reproduces that shape.
  const ArrayShape array{array_size, array_size};
  std::vector<SpeedupRow> rows;
  for (const GemmWorkload& w : table3_workloads()) {
    SpeedupRow row;
    row.workload = w.name;
    row.shape = w.shape;
    row.sa_cycles = pipelined_runtime(ArchType::kConventionalSA, Dataflow::kOS,
                                      w.shape, array)
                        .cycles;
    row.axon_cycles =
        pipelined_runtime(ArchType::kAxon, Dataflow::kOS, w.shape, array)
            .cycles;
    row.speedup =
        static_cast<double>(row.sa_cycles) /
        static_cast<double>(row.axon_cycles);
    rows.push_back(row);
  }
  return rows;
}

double geomean_speedup(const std::vector<SpeedupRow>& rows) {
  AXON_CHECK(!rows.empty(), "no rows");
  double log_sum = 0.0;
  for (const auto& r : rows) log_sum += std::log(r.speedup);
  return std::exp(log_sum / static_cast<double>(rows.size()));
}

double mean_speedup(const std::vector<SpeedupRow>& rows) {
  AXON_CHECK(!rows.empty(), "no rows");
  double sum = 0.0;
  for (const auto& r : rows) sum += r.speedup;
  return sum / static_cast<double>(rows.size());
}

std::vector<UtilizationRow> fig13_utilization(int array_size) {
  const ArrayShape array{array_size, array_size};
  std::vector<UtilizationRow> rows;
  for (const GemmWorkload& w : table3_workloads()) {
    UtilizationRow row;
    row.workload = w.name;
    row.ur_sa =
        best_utilization_rate(ArchType::kConventionalSA, w.shape, array);
    row.ur_cmsa = best_utilization_rate(ArchType::kCMSA, w.shape, array);
    row.ur_axon = best_utilization_rate(ArchType::kAxon, w.shape, array);
    row.cmsa_improvement_pct = 100.0 * (row.ur_cmsa - row.ur_sa);
    row.axon_improvement_pct = 100.0 * (row.ur_axon - row.ur_sa);
    rows.push_back(row);
  }
  return rows;
}

std::vector<Fig14Row> fig14_dwconv_gemv(int array_size) {
  const ArrayShape array{array_size, array_size};
  std::vector<Fig14Row> rows;

  // GEMV runs weight-stationary (weights preloaded once, the vector
  // streams; T = N = 1 makes the fill latency dominant), DW-conv runs OS;
  // both memory-bound cases pipeline tiles (DESIGN.md §4). This reproduces
  // the paper's "avg 1.8x, up to 2x due to lower feeding latency and no
  // data skew".
  auto add_gemm = [&](const std::string& name, const GemmShape& g) {
    Fig14Row row;
    row.workload = name;
    row.sa_cycles = pipelined_runtime(ArchType::kConventionalSA, Dataflow::kWS,
                                      g, array)
                        .cycles;
    row.axon_cycles =
        pipelined_runtime(ArchType::kAxon, Dataflow::kWS, g, array).cycles;
    row.speedup = static_cast<double>(row.sa_cycles) /
                  static_cast<double>(row.axon_cycles);
    rows.push_back(row);
  };
  for (const GemmWorkload& w : gemv_workloads()) add_gemm(w.name, w.shape);

  auto add_dw = [&](const ConvWorkload& w) {
    Fig14Row row;
    row.workload = w.name;
    row.sa_cycles = dwconv_runtime(ArchType::kConventionalSA, Dataflow::kOS,
                                   w.shape, array, /*pipelined=*/true)
                        .cycles;
    row.axon_cycles = dwconv_runtime(ArchType::kAxon, Dataflow::kOS, w.shape,
                                     array, /*pipelined=*/true)
                          .cycles;
    row.speedup = static_cast<double>(row.sa_cycles) /
                  static_cast<double>(row.axon_cycles);
    rows.push_back(row);
  };
  for (const ConvWorkload& w : mobilenet_dw_layers()) add_dw(w);
  for (const ConvWorkload& w : conformer_dw_layers()) add_dw(w);
  return rows;
}

std::vector<Fig11Row> fig11_memory_reduction(int num_feeders) {
  std::vector<Fig11Row> rows;
  for (const ConvWorkload& w : fig11_conv_shapes()) {
    Fig11Row row;
    row.workload = w.name;
    row.shape = w.shape;
    row.software_loads =
        ifmap_sram_loads(w.shape, Im2colMode::kSoftware, num_feeders);
    row.axon_loads =
        ifmap_sram_loads(w.shape, Im2colMode::kAxonOnChip, num_feeders);
    row.reduction_pct = memory_access_reduction_pct(w.shape, num_feeders);
    rows.push_back(row);
  }
  return rows;
}

EnergyRow energy_row(const std::string& network,
                     const std::vector<ConvWorkload>& layers, int array_size,
                     double paper_baseline_mb, double paper_axon_mb,
                     double paper_saved_mj) {
  EnergyRow row;
  row.network = network;
  row.paper_baseline_mb = paper_baseline_mb;
  row.paper_axon_mb = paper_axon_mb;
  row.paper_saved_mj = paper_saved_mj;

  const DramModel dram;  // LPDDR3 defaults from the paper
  const ArrayShape array{array_size, array_size};

  i64 base_bytes = 0, axon_bytes = 0;
  i64 t_base = 0, t_axon = 0;
  for (const ConvWorkload& l : layers) {
    const Traffic sw = conv_dram_traffic(l.shape, Im2colMode::kSoftware);
    const Traffic ax = conv_dram_traffic(l.shape, Im2colMode::kAxonOnChip);
    base_bytes += sw.total() * l.repeats;
    axon_bytes += ax.total() * l.repeats;
    // Per-layer roofline: the layer takes max(compute, transfer) cycles;
    // compute is identical for both modes (Axon scale-up runtime of the
    // lowered GEMM), only the DRAM traffic differs.
    const GemmShape g = l.shape.as_gemm();
    const i64 compute =
        scale_up_runtime(ArchType::kAxon, Dataflow::kOS, g, array).cycles *
        l.shape.groups;
    t_base += dram.overlapped_cycles(compute, sw.total()) * l.repeats;
    t_axon += dram.overlapped_cycles(compute, ax.total()) * l.repeats;
  }

  const EnergyComparison e = compare_dram_energy(dram, base_bytes, axon_bytes);
  row.baseline_mb_exact = static_cast<double>(base_bytes) / (1024.0 * 1024.0);
  row.axon_mb_exact = static_cast<double>(axon_bytes) / (1024.0 * 1024.0);
  row.baseline_mb = static_cast<i64>(row.baseline_mb_exact + 0.5);
  row.axon_mb = static_cast<i64>(row.axon_mb_exact + 0.5);
  row.saved_mj = e.saved_energy_mj;
  row.roofline_speedup =
      static_cast<double>(t_base) / static_cast<double>(t_axon);
  return row;
}

std::vector<HwRow> fig10_hw_specs() {
  const AreaPowerModel model(TechNode::kAsap7);
  const ArrayShape a16{16, 16};
  std::vector<HwRow> rows;
  {
    const ArrayHw hw = model.conventional_sa(a16);
    rows.push_back({"SA_16x16", a16, hw.area_mm2, hw.power_mw});
  }
  {
    const ArrayHw hw = model.axon(a16, /*with_im2col=*/false);
    rows.push_back({"Axon_16x16", a16, hw.area_mm2, hw.power_mw});
  }
  {
    const ArrayHw hw = model.axon(a16, /*with_im2col=*/true);
    rows.push_back({"Axon_im2col_16x16", a16, hw.area_mm2, hw.power_mw});
  }
  return rows;
}

std::vector<HwRow> fig15_area_power(TechNode node,
                                    const std::vector<int>& sizes) {
  const AreaPowerModel model(node);
  std::vector<HwRow> rows;
  for (int s : sizes) {
    const ArrayShape a{s, s};
    const ArrayHw ax = model.axon(a, /*with_im2col=*/true);
    const ArrayHw sa = model.sauria(a);
    rows.push_back({"Axon_im2col", a, ax.area_mm2, ax.power_mw});
    rows.push_back({"Sauria", a, sa.area_mm2, sa.power_mw});
  }
  return rows;
}

std::vector<SparsityRow> sparsity_power_sweep(
    const std::vector<double>& sparsities) {
  const AreaPowerModel model(TechNode::kAsap7);
  const double base =
      model.axon({16, 16}, /*with_im2col=*/true).power_mw;
  std::vector<SparsityRow> rows;
  for (double s : sparsities) {
    SparsityRow row;
    row.sparsity = s;
    // Sparsity in one operand (IFMAP); a MAC is gated when its IFMAP
    // operand is zero.
    row.gated_fraction = s;
    row.power_mw = model.power_with_zero_gating(base, row.gated_fraction);
    row.reduction_pct = 100.0 * (1.0 - row.power_mw / base);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace axon
