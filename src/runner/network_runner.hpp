// Network-level analysis: runs every conv layer of a network through the
// analytical runtime + traffic + energy models and aggregates a report —
// the per-layer view behind the §5.2.1 headline numbers, reusable for any
// layer table (ResNet50, YOLOv3, MobileNet, EfficientNet, ...).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "memory/traffic.hpp"
#include "workloads/convnets.hpp"

namespace axon {

struct LayerReport {
  std::string name;
  ConvShape shape;
  int repeats = 1;
  GemmShape gemm;            ///< the lowered GEMM (per group)
  i64 sa_cycles = 0;         ///< conventional SA, pipelined OS, x repeats
  i64 axon_cycles = 0;
  Traffic sw_traffic;        ///< software-im2col DRAM bytes, x repeats
  Traffic axon_traffic;
  double speedup = 0.0;
  double traffic_reduction_pct = 0.0;
};

struct NetworkReport {
  std::string network;
  ArrayShape array;
  std::vector<LayerReport> layers;
  i64 total_sa_cycles = 0;
  i64 total_axon_cycles = 0;
  i64 total_sw_bytes = 0;
  i64 total_axon_bytes = 0;
  double compute_speedup = 0.0;         ///< SA cycles / Axon cycles
  double traffic_reduction_pct = 0.0;
  double dram_energy_saved_mj = 0.0;    ///< at 120 pJ/byte
  double roofline_speedup = 0.0;        ///< per-layer max(compute, transfer)
};

/// Analyzes the network on a square array of the given size. Layers are
/// independent closed-form evaluations, so with `num_threads > 1` they run
/// concurrently on a common/thread_pool; per-layer results are collected
/// in layer order and aggregated sequentially, so the report — row order
/// included — is identical for any thread count.
NetworkReport analyze_network(const std::string& name,
                              const std::vector<ConvWorkload>& layers,
                              int array_size, int num_threads = 1);

/// Writes the per-layer rows as CSV (header + one row per layer + totals).
void write_csv(const NetworkReport& report, std::ostream& os);

}  // namespace axon
