// Scale-out execution (paper Fig. 2b / eq. 3): a P_R x P_C grid of
// identical arrays splits the spatial dimensions of a GEMM; partitions run
// in parallel and the critical path is the slowest partition. This driver
// executes every partition cycle-accurately and stitches the result, so
// both the product and eq. (3)'s cycle count can be verified.
#pragma once

#include "baseline/run_result.hpp"
#include "common/types.hpp"
#include "runner/accelerator.hpp"
#include "tensor/matrix.hpp"

namespace axon {

struct ScaleOutReport {
  Matrix out;
  i64 critical_path_cycles = 0;  ///< max over partitions
  i64 total_partition_cycles = 0;  ///< sum (for energy-style accounting)
  i64 partitions = 0;
  i64 model_cycles = 0;  ///< eq. (3) prediction
};

/// Runs C = A * B on a `partitions_rows x partitions_cols` grid of
/// `config.array` arrays (OS dataflow: M split across partition rows, N
/// across partition columns). Partitions are independent, so with
/// `num_threads > 1` they simulate concurrently on a worker pool; results
/// (stitched product and all cycle counts) are identical for any thread
/// count because each partition is a pure function of its operand slices.
ScaleOutReport run_gemm_scale_out(const AcceleratorConfig& config,
                                  const Matrix& a, const Matrix& b,
                                  int partitions_rows, int partitions_cols,
                                  int num_threads = 1);

}  // namespace axon
