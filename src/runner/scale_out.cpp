#include "runner/scale_out.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "model/runtime_model.hpp"

namespace axon {

ScaleOutReport run_gemm_scale_out(const AcceleratorConfig& config,
                                  const Matrix& a, const Matrix& b,
                                  int partitions_rows, int partitions_cols) {
  AXON_CHECK(a.cols() == b.rows(), "GEMM inner-dim mismatch");
  AXON_CHECK(partitions_rows > 0 && partitions_cols > 0,
             "partition counts must be positive");
  AXON_CHECK(config.dataflow == Dataflow::kOS,
             "scale-out driver implements the OS split (M x N)");

  const GemmShape g{a.rows(), a.cols(), b.cols()};
  const i64 m_chunk = ceil_div(g.M, partitions_rows);
  const i64 n_chunk = ceil_div(g.N, partitions_cols);

  ScaleOutReport report;
  report.out = Matrix(g.M, g.N);

  for (int pr = 0; pr < partitions_rows; ++pr) {
    const i64 m0 = pr * m_chunk;
    if (m0 >= g.M) continue;
    const i64 mn = std::min(m_chunk, g.M - m0);
    Matrix a_part(mn, g.K);
    for (i64 i = 0; i < mn; ++i) {
      for (i64 k = 0; k < g.K; ++k) a_part.at(i, k) = a.at(m0 + i, k);
    }
    for (int pc = 0; pc < partitions_cols; ++pc) {
      const i64 n0 = pc * n_chunk;
      if (n0 >= g.N) continue;
      const i64 nn = std::min(n_chunk, g.N - n0);
      Matrix b_part(g.K, nn);
      for (i64 k = 0; k < g.K; ++k) {
        for (i64 j = 0; j < nn; ++j) b_part.at(k, j) = b.at(k, n0 + j);
      }

      Accelerator acc(config);
      const RunReport r = acc.run_gemm(a_part, b_part);
      ++report.partitions;
      report.total_partition_cycles += r.cycles;
      report.critical_path_cycles =
          std::max(report.critical_path_cycles, r.cycles);
      for (i64 i = 0; i < mn; ++i) {
        for (i64 j = 0; j < nn; ++j) {
          report.out.at(m0 + i, n0 + j) = r.out.at(i, j);
        }
      }
    }
  }

  report.model_cycles =
      scale_out_runtime(config.arch, config.dataflow, g, config.array,
                        partitions_rows, partitions_cols)
          .cycles;
  return report;
}

}  // namespace axon
