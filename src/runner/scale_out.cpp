#include "runner/scale_out.hpp"

#include <algorithm>
#include <future>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "model/runtime_model.hpp"

namespace axon {

namespace {

struct PartitionJob {
  i64 m0 = 0, mn = 0;       ///< row offset / count of the output block
  i64 n0 = 0, nn = 0;       ///< col offset / count
  std::size_t a_slice = 0;  ///< index into the shared per-row A slices
};

struct PartitionResult {
  Matrix out;
  i64 cycles = 0;
};

PartitionResult run_partition(const AcceleratorConfig& config,
                              const Matrix& a_part, const Matrix& b,
                              const PartitionJob& job) {
  const i64 K = b.rows();
  Matrix b_part(K, job.nn);
  for (i64 k = 0; k < K; ++k) {
    for (i64 j = 0; j < job.nn; ++j) b_part.at(k, j) = b.at(k, job.n0 + j);
  }
  Accelerator acc(config);
  RunReport r = acc.run_gemm(a_part, b_part);
  return {std::move(r.out), r.cycles};
}

}  // namespace

ScaleOutReport run_gemm_scale_out(const AcceleratorConfig& config,
                                  const Matrix& a, const Matrix& b,
                                  int partitions_rows, int partitions_cols,
                                  int num_threads) {
  AXON_CHECK(a.cols() == b.rows(), "GEMM inner-dim mismatch");
  AXON_CHECK(partitions_rows > 0 && partitions_cols > 0,
             "partition counts must be positive");
  AXON_CHECK(num_threads > 0, "thread count must be positive");
  AXON_CHECK(config.dataflow == Dataflow::kOS,
             "scale-out driver implements the OS split (M x N)");

  const GemmShape g{a.rows(), a.cols(), b.cols()};
  const i64 m_chunk = ceil_div(g.M, partitions_rows);
  const i64 n_chunk = ceil_div(g.N, partitions_cols);

  // Enumerate the non-empty partitions up front; each is an independent
  // pure job, so execution order never affects the stitched result. The A
  // row-slice is shared (read-only) across a whole partition row instead
  // of being re-copied per column partition.
  std::vector<Matrix> a_slices;
  std::vector<PartitionJob> jobs;
  for (int pr = 0; pr < partitions_rows; ++pr) {
    const i64 m0 = pr * m_chunk;
    if (m0 >= g.M) continue;
    const i64 mn = std::min(m_chunk, g.M - m0);
    Matrix a_part(mn, g.K);
    for (i64 i = 0; i < mn; ++i) {
      for (i64 k = 0; k < g.K; ++k) a_part.at(i, k) = a.at(m0 + i, k);
    }
    a_slices.push_back(std::move(a_part));
    for (int pc = 0; pc < partitions_cols; ++pc) {
      const i64 n0 = pc * n_chunk;
      if (n0 >= g.N) continue;
      const i64 nn = std::min(n_chunk, g.N - n0);
      jobs.push_back({m0, mn, n0, nn, a_slices.size() - 1});
    }
  }

  std::vector<PartitionResult> results(jobs.size());
  if (num_threads == 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      results[i] = run_partition(config, a_slices[jobs[i].a_slice], b, jobs[i]);
    }
  } else {
    ThreadPool pool(num_threads);
    std::vector<std::future<PartitionResult>> futures;
    futures.reserve(jobs.size());
    for (const auto& job : jobs) {
      const Matrix& a_part = a_slices[job.a_slice];
      futures.push_back(pool.submit([&config, &a_part, &b, job] {
        return run_partition(config, a_part, b, job);
      }));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      results[i] = futures[i].get();
    }
  }

  ScaleOutReport report;
  report.out = Matrix(g.M, g.N);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const PartitionJob& job = jobs[i];
    const PartitionResult& r = results[i];
    ++report.partitions;
    report.total_partition_cycles += r.cycles;
    report.critical_path_cycles =
        std::max(report.critical_path_cycles, r.cycles);
    for (i64 row = 0; row < job.mn; ++row) {
      for (i64 col = 0; col < job.nn; ++col) {
        report.out.at(job.m0 + row, job.n0 + col) = r.out.at(row, col);
      }
    }
  }

  report.model_cycles =
      scale_out_runtime(config.arch, config.dataflow, g, config.array,
                        partitions_rows, partitions_cols)
          .cycles;
  return report;
}

}  // namespace axon
