// Experiment drivers: one function per paper table/figure, returning plain
// row structs. The bench binaries print these; tests assert their headline
// properties (who wins, by roughly what factor).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "hw/area_power.hpp"
#include "hw/energy.hpp"
#include "model/im2col_traffic.hpp"
#include "workloads/convnets.hpp"
#include "workloads/table3.hpp"

namespace axon {

// ---------------------------------------------------------------- Fig. 6
struct Fig6Row {
  ArrayShape array;
  i64 f1_conventional = 0;  ///< R + C - 2
  i64 f2_axon = 0;          ///< max(R, C) - 1
};
std::vector<Fig6Row> fig6_fill_factors(const std::vector<ArrayShape>& shapes);

// ---------------------------------------------------------------- Fig. 12
struct SpeedupRow {
  std::string workload;
  GemmShape shape;
  i64 sa_cycles = 0;
  i64 axon_cycles = 0;
  double speedup = 0.0;  ///< sa / axon, best dataflow each
};
/// Runtime speedup of Axon over the conventional SA for each Table 3
/// workload on a square array of the given size (scale-up, best dataflow).
std::vector<SpeedupRow> fig12_speedups(int array_size);
double geomean_speedup(const std::vector<SpeedupRow>& rows);
double mean_speedup(const std::vector<SpeedupRow>& rows);

// ---------------------------------------------------------------- Fig. 13
struct UtilizationRow {
  std::string workload;
  double ur_sa = 0.0;
  double ur_cmsa = 0.0;
  double ur_axon = 0.0;
  double cmsa_improvement_pct = 0.0;  ///< percentage points over SA
  double axon_improvement_pct = 0.0;
};
std::vector<UtilizationRow> fig13_utilization(int array_size);

// ---------------------------------------------------------------- Fig. 14
struct Fig14Row {
  std::string workload;
  i64 sa_cycles = 0;
  i64 axon_cycles = 0;
  double speedup = 0.0;
};
/// DW-Conv (MobileNet + conformer) and GEMV speedups on a square array,
/// pipelined-tile model (see DESIGN.md §4).
std::vector<Fig14Row> fig14_dwconv_gemv(int array_size);

// ---------------------------------------------------------------- Fig. 11
struct Fig11Row {
  std::string workload;
  ConvShape shape;
  i64 software_loads = 0;
  i64 axon_loads = 0;
  double reduction_pct = 0.0;
};
std::vector<Fig11Row> fig11_memory_reduction(int num_feeders);

// ------------------------------------------------------------- §5.2.1 energy
struct EnergyRow {
  std::string network;
  i64 baseline_mb = 0;  ///< DRAM traffic, software im2col (rounded MB)
  i64 axon_mb = 0;
  double baseline_mb_exact = 0.0;
  double axon_mb_exact = 0.0;
  double saved_mj = 0.0;
  double roofline_speedup = 0.0;
  double paper_baseline_mb = 0.0;  ///< the paper's reported numbers
  double paper_axon_mb = 0.0;
  double paper_saved_mj = 0.0;
};
EnergyRow energy_row(const std::string& network,
                     const std::vector<ConvWorkload>& layers,
                     int array_size, double paper_baseline_mb,
                     double paper_axon_mb, double paper_saved_mj);

// ---------------------------------------------------------------- Fig. 10/15
struct HwRow {
  std::string design;
  ArrayShape array;
  double area_mm2 = 0.0;
  double power_mw = 0.0;
};
std::vector<HwRow> fig10_hw_specs();
std::vector<HwRow> fig15_area_power(TechNode node,
                                    const std::vector<int>& sizes);

// ---------------------------------------------------------------- sparsity
struct SparsityRow {
  double sparsity = 0.0;
  double gated_fraction = 0.0;
  double power_mw = 0.0;
  double reduction_pct = 0.0;
};
std::vector<SparsityRow> sparsity_power_sweep(
    const std::vector<double>& sparsities);

}  // namespace axon
