#include "runner/network_runner.hpp"

#include <ostream>

#include "common/check.hpp"
#include "memory/dram.hpp"
#include "model/im2col_traffic.hpp"
#include "model/runtime_model.hpp"

namespace axon {

NetworkReport analyze_network(const std::string& name,
                              const std::vector<ConvWorkload>& layers,
                              int array_size) {
  AXON_CHECK(array_size > 0, "array size must be positive");
  NetworkReport report;
  report.network = name;
  report.array = {array_size, array_size};
  const DramModel dram;

  i64 t_base = 0, t_axon = 0;
  for (const ConvWorkload& l : layers) {
    LayerReport lr;
    lr.name = l.name;
    lr.shape = l.shape;
    lr.repeats = l.repeats;
    lr.gemm = l.shape.as_gemm();

    const i64 groups = l.shape.groups;
    lr.sa_cycles = pipelined_runtime(ArchType::kConventionalSA, Dataflow::kOS,
                                     lr.gemm, report.array)
                       .cycles *
                   groups * l.repeats;
    lr.axon_cycles =
        pipelined_runtime(ArchType::kAxon, Dataflow::kOS, lr.gemm, report.array)
            .cycles *
        groups * l.repeats;
    lr.speedup = static_cast<double>(lr.sa_cycles) /
                 static_cast<double>(lr.axon_cycles);

    const Traffic sw = conv_dram_traffic(l.shape, Im2colMode::kSoftware);
    const Traffic ax = conv_dram_traffic(l.shape, Im2colMode::kAxonOnChip);
    for (int i = 0; i < l.repeats; ++i) {
      lr.sw_traffic += sw;
      lr.axon_traffic += ax;
    }
    lr.traffic_reduction_pct =
        100.0 * (1.0 - static_cast<double>(lr.axon_traffic.total()) /
                           static_cast<double>(lr.sw_traffic.total()));

    report.total_sa_cycles += lr.sa_cycles;
    report.total_axon_cycles += lr.axon_cycles;
    report.total_sw_bytes += lr.sw_traffic.total();
    report.total_axon_bytes += lr.axon_traffic.total();

    // Roofline: Axon compute for both sides; only traffic differs.
    const i64 compute = lr.axon_cycles;
    t_base += dram.overlapped_cycles(compute, lr.sw_traffic.total());
    t_axon += dram.overlapped_cycles(compute, lr.axon_traffic.total());

    report.layers.push_back(std::move(lr));
  }

  report.compute_speedup = static_cast<double>(report.total_sa_cycles) /
                           static_cast<double>(report.total_axon_cycles);
  report.traffic_reduction_pct =
      100.0 * (1.0 - static_cast<double>(report.total_axon_bytes) /
                         static_cast<double>(report.total_sw_bytes));
  report.dram_energy_saved_mj =
      dram.energy_mj(report.total_sw_bytes - report.total_axon_bytes);
  report.roofline_speedup =
      static_cast<double>(t_base) / static_cast<double>(t_axon);
  return report;
}

void write_csv(const NetworkReport& report, std::ostream& os) {
  os << "layer,repeats,M,K,N,sa_cycles,axon_cycles,speedup,"
        "sw_bytes,axon_bytes,traffic_reduction_pct\n";
  for (const LayerReport& l : report.layers) {
    os << l.name << ',' << l.repeats << ',' << l.gemm.M << ',' << l.gemm.K
       << ',' << l.gemm.N << ',' << l.sa_cycles << ',' << l.axon_cycles << ','
       << l.speedup << ',' << l.sw_traffic.total() << ','
       << l.axon_traffic.total() << ',' << l.traffic_reduction_pct << '\n';
  }
  os << "TOTAL,," << ",,," << report.total_sa_cycles << ','
     << report.total_axon_cycles << ',' << report.compute_speedup << ','
     << report.total_sw_bytes << ',' << report.total_axon_bytes << ','
     << report.traffic_reduction_pct << '\n';
}

}  // namespace axon
