#include "runner/network_runner.hpp"

#include <future>
#include <ostream>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "memory/dram.hpp"
#include "model/im2col_traffic.hpp"
#include "model/runtime_model.hpp"

namespace axon {

namespace {

/// Everything one layer contributes, computed independently of every other
/// layer — the unit of work the thread pool parallelizes. The roofline
/// cycle terms ride along so aggregation stays a pure sequential fold.
struct LayerOutcome {
  LayerReport report;
  i64 roofline_base_cycles = 0;
  i64 roofline_axon_cycles = 0;
};

LayerOutcome analyze_layer(const ConvWorkload& l, const ArrayShape& array,
                           const DramModel& dram) {
  LayerOutcome out;
  LayerReport& lr = out.report;
  lr.name = l.name;
  lr.shape = l.shape;
  lr.repeats = l.repeats;
  lr.gemm = l.shape.as_gemm();

  const i64 groups = l.shape.groups;
  lr.sa_cycles = pipelined_runtime(ArchType::kConventionalSA, Dataflow::kOS,
                                   lr.gemm, array)
                     .cycles *
                 groups * l.repeats;
  lr.axon_cycles =
      pipelined_runtime(ArchType::kAxon, Dataflow::kOS, lr.gemm, array)
          .cycles *
      groups * l.repeats;
  lr.speedup =
      static_cast<double>(lr.sa_cycles) / static_cast<double>(lr.axon_cycles);

  const Traffic sw = conv_dram_traffic(l.shape, Im2colMode::kSoftware);
  const Traffic ax = conv_dram_traffic(l.shape, Im2colMode::kAxonOnChip);
  for (int i = 0; i < l.repeats; ++i) {
    lr.sw_traffic += sw;
    lr.axon_traffic += ax;
  }
  lr.traffic_reduction_pct =
      100.0 * (1.0 - static_cast<double>(lr.axon_traffic.total()) /
                         static_cast<double>(lr.sw_traffic.total()));

  // Roofline: Axon compute for both sides; only traffic differs.
  const i64 compute = lr.axon_cycles;
  out.roofline_base_cycles =
      dram.overlapped_cycles(compute, lr.sw_traffic.total());
  out.roofline_axon_cycles =
      dram.overlapped_cycles(compute, lr.axon_traffic.total());
  return out;
}

}  // namespace

NetworkReport analyze_network(const std::string& name,
                              const std::vector<ConvWorkload>& layers,
                              int array_size, int num_threads) {
  AXON_CHECK(array_size > 0, "array size must be positive");
  AXON_CHECK(num_threads >= 1, "analyze_network needs >= 1 thread");
  NetworkReport report;
  report.network = name;
  report.array = {array_size, array_size};
  const DramModel dram;

  // Per-layer evaluation is a pure function of (layer, array, dram), so
  // layers fan out across the pool; futures are harvested in layer order,
  // which keeps the aggregation fold — and the CSV row order — identical
  // for any thread count.
  std::vector<LayerOutcome> outcomes;
  outcomes.reserve(layers.size());
  if (num_threads == 1) {
    for (const ConvWorkload& l : layers) {
      outcomes.push_back(analyze_layer(l, report.array, dram));
    }
  } else {
    ThreadPool pool(num_threads);
    std::vector<std::future<LayerOutcome>> futures;
    futures.reserve(layers.size());
    for (const ConvWorkload& l : layers) {
      futures.push_back(pool.submit([&l, array = report.array, &dram] {
        return analyze_layer(l, array, dram);
      }));
    }
    for (auto& f : futures) outcomes.push_back(f.get());
  }

  i64 t_base = 0, t_axon = 0;
  for (LayerOutcome& out : outcomes) {
    report.total_sa_cycles += out.report.sa_cycles;
    report.total_axon_cycles += out.report.axon_cycles;
    report.total_sw_bytes += out.report.sw_traffic.total();
    report.total_axon_bytes += out.report.axon_traffic.total();
    t_base += out.roofline_base_cycles;
    t_axon += out.roofline_axon_cycles;
    report.layers.push_back(std::move(out.report));
  }

  report.compute_speedup = static_cast<double>(report.total_sa_cycles) /
                           static_cast<double>(report.total_axon_cycles);
  report.traffic_reduction_pct =
      100.0 * (1.0 - static_cast<double>(report.total_axon_bytes) /
                         static_cast<double>(report.total_sw_bytes));
  report.dram_energy_saved_mj =
      dram.energy_mj(report.total_sw_bytes - report.total_axon_bytes);
  report.roofline_speedup =
      static_cast<double>(t_base) / static_cast<double>(t_axon);
  return report;
}

void write_csv(const NetworkReport& report, std::ostream& os) {
  os << "layer,repeats,M,K,N,sa_cycles,axon_cycles,speedup,"
        "sw_bytes,axon_bytes,traffic_reduction_pct\n";
  for (const LayerReport& l : report.layers) {
    os << l.name << ',' << l.repeats << ',' << l.gemm.M << ',' << l.gemm.K
       << ',' << l.gemm.N << ',' << l.sa_cycles << ',' << l.axon_cycles << ','
       << l.speedup << ',' << l.sw_traffic.total() << ','
       << l.axon_traffic.total() << ',' << l.traffic_reduction_pct << '\n';
  }
  os << "TOTAL,," << ",,," << report.total_sa_cycles << ','
     << report.total_axon_cycles << ',' << report.compute_speedup << ','
     << report.total_sw_bytes << ',' << report.total_axon_bytes << ','
     << report.traffic_reduction_pct << '\n';
}

}  // namespace axon
