#include "pe/unified_pe.hpp"

#include "common/check.hpp"

namespace axon {

void UnifiedPe::configure(Dataflow df) {
  dataflow_ = df;
  reset();
}

void UnifiedPe::reset() {
  acc_ = 0.0f;
  stationary_ = 0.0f;
  stationary_loaded_ = false;
}

float UnifiedPe::drain_accumulator() {
  const float v = acc_;
  acc_ = 0.0f;
  return v;
}

PeOut UnifiedPe::step(const PeIn& in) {
  PeOut out;

  if (in.preload) {
    // MUX1/MUX2 route the value arriving on the output interconnect into
    // the stationary register and forward it (one latch per hop) to the
    // next PE in the column. Every PE samples every passing value; after
    // S_R cycles the value that arrived *last* at PE row i is exactly its
    // stationary element, so the whole load takes S_R cycles (§4.2.1).
    AXON_CHECK(dataflow_ != Dataflow::kOS, "preload is a WS/IS phase");
    if (in.psum.has_value()) {
      stationary_ = *in.psum;
      stationary_loaded_ = true;
      out.psum = in.psum;
    }
    return out;
  }

  switch (dataflow_) {
    case Dataflow::kOS: {
      // Multiply the two travelling operands, accumulate locally (MUX3
      // selects Psum; MUX4 selects Psum only during drain).
      if (in.horizontal.has_value() && in.vertical.has_value()) {
        acc_ = mac_.mac(*in.horizontal, *in.vertical, acc_);
      } else {
        mac_.idle();
      }
      out.horizontal = in.horizontal;
      out.vertical = in.vertical;
      break;
    }
    case Dataflow::kWS: {
      // Weight is stationary; IFMAP travels horizontally; partial sums ride
      // the output interconnect (MUX3 selects the incoming psum).
      if (in.horizontal.has_value()) {
        const float base = in.psum.value_or(0.0f);
        out.psum = mac_.mac(*in.horizontal, stationary_, base);
      } else {
        mac_.idle();
        out.psum = in.psum;  // bypass: forward untouched partial sums
      }
      out.horizontal = in.horizontal;
      break;
    }
    case Dataflow::kIS: {
      // Input is stationary; FILTER travels vertically.
      if (in.vertical.has_value()) {
        const float base = in.psum.value_or(0.0f);
        out.psum = mac_.mac(stationary_, *in.vertical, base);
      } else {
        mac_.idle();
        out.psum = in.psum;
      }
      out.vertical = in.vertical;
      break;
    }
  }
  return out;
}

}  // namespace axon
