// Unified Axon PE (paper Fig. 9): one programmable datapath that supports
// OS, WS and IS under the Axon orchestration.
//
//  * MUX1/MUX2 — during the WS/IS *preload* phase the stationary operand
//    travels over the output interconnect (the yellow route in Fig. 8a) and
//    these muxes steer it into the weight or input stationary register.
//  * MUX3 — selects the accumulator source: the local Psum register (OS) or
//    the partial sum arriving from a neighbour (WS/IS bypass-and-add chain).
//  * MUX4 — selects what the output port carries: the local accumulator (OS
//    drain) or the freshly produced partial sum (WS/IS).
//
// Direction of travel (up/down/left/right, bi-directional on the diagonal)
// is the array's responsibility; the PE only sees "an operand arrived on the
// horizontal port / vertical port / output port".
#pragma once

#include <optional>

#include "common/types.hpp"
#include "pe/mac.hpp"

namespace axon {

/// Everything a PE can receive in one cycle.
struct PeIn {
  std::optional<float> horizontal;  ///< IFMAP-side operand
  std::optional<float> vertical;    ///< FILTER-side operand
  std::optional<float> psum;        ///< partial sum on the output interconnect
  bool preload = false;             ///< WS/IS preload phase: `psum` carries
                                    ///< the stationary operand (via MUX1/2)
};

/// Everything a PE drives in one cycle (registered: visible next cycle).
struct PeOut {
  std::optional<float> horizontal;  ///< forwarded IFMAP operand
  std::optional<float> vertical;    ///< forwarded FILTER operand
  std::optional<float> psum;        ///< produced/forwarded partial sum
};

class UnifiedPe {
 public:
  explicit UnifiedPe(Dataflow df = Dataflow::kOS, bool zero_gating = true,
                     bool fp16_numerics = false)
      : dataflow_(df), mac_(zero_gating, fp16_numerics) {}

  /// Reconfigure between tiles. Clears all state.
  void configure(Dataflow df);

  /// One cycle of the datapath. Consumes registered inputs (what arrived on
  /// the previous clock edge) and returns the values registered for the next
  /// edge.
  PeOut step(const PeIn& in);

  /// OS drain: reads and clears the accumulator.
  float drain_accumulator();

  [[nodiscard]] Dataflow dataflow() const { return dataflow_; }
  [[nodiscard]] float accumulator() const { return acc_; }
  [[nodiscard]] float stationary() const { return stationary_; }
  [[nodiscard]] const MacCounters& counters() const { return mac_.counters(); }
  void reset();

 private:
  Dataflow dataflow_;
  MacUnit mac_;
  float acc_ = 0.0f;         ///< Psum register (OS)
  float stationary_ = 0.0f;  ///< weight (WS) or input (IS) register
  bool stationary_loaded_ = false;
};

}  // namespace axon
