// FP16-style multiply-accumulate unit with the zero-gating optimisation the
// paper adopts from Sauria [15] (§4.1): if either operand is exactly zero the
// multiply/add is skipped entirely — the accumulator is untouched and the
// datapath does not toggle, which the power model charges as a gated
// (cheap) cycle instead of an active MAC.
#pragma once

#include <cstdint>

#include "common/fp16.hpp"

namespace axon {

struct MacCounters {
  std::int64_t active_macs = 0;  ///< multiplies actually performed
  std::int64_t gated_macs = 0;   ///< skipped by zero gating
  std::int64_t idle_cycles = 0;  ///< cycles with no operands at all

  MacCounters& operator+=(const MacCounters& o) {
    active_macs += o.active_macs;
    gated_macs += o.gated_macs;
    idle_cycles += o.idle_cycles;
    return *this;
  }
  [[nodiscard]] std::int64_t total_macs() const {
    return active_macs + gated_macs;
  }
};

class MacUnit {
 public:
  /// `zero_gating` toggles the optimisation (results are identical either
  /// way; only counters differ). `fp16_numerics` rounds operand/product/sum
  /// to binary16 like the simplified FPnew unit.
  explicit MacUnit(bool zero_gating = true, bool fp16_numerics = false)
      : zero_gating_(zero_gating), fp16_numerics_(fp16_numerics) {}

  /// acc + a*b with gating/rounding per configuration.
  float mac(float a, float b, float acc);

  /// Call when the PE has no valid operands this cycle.
  void idle() { ++counters_.idle_cycles; }

  [[nodiscard]] const MacCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }
  [[nodiscard]] bool zero_gating() const { return zero_gating_; }

 private:
  bool zero_gating_;
  bool fp16_numerics_;
  MacCounters counters_;
};

}  // namespace axon
