#include "pe/mac.hpp"

namespace axon {

float MacUnit::mac(float a, float b, float acc) {
  if (zero_gating_ && (a == 0.0f || b == 0.0f)) {
    ++counters_.gated_macs;
    return acc;  // datapath gated: accumulator holds its value
  }
  ++counters_.active_macs;
  if (fp16_numerics_) {
    const float prod = fp16_round(fp16_round(a) * fp16_round(b));
    return fp16_round(acc + prod);
  }
  return acc + a * b;
}

}  // namespace axon
