// Full convolution-layer tables for the CNNs the paper evaluates:
// ResNet50 and YOLOv3 (the §5.2.1 energy experiment), MobileNetV1
// depthwise layers (Fig. 14), EfficientNet-B0 samples, and the IFMAP/kernel
// shape set of Fig. 11.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "workloads/table3.hpp"

namespace axon {

struct ConvWorkload {
  std::string name;
  ConvShape shape;
  int repeats = 1;  ///< identical layers in the network (e.g. residual blocks)
};

/// Every conv layer of ResNet50 (batch 1, 224x224 input), with repeat
/// counts for the repeated bottleneck blocks. Includes downsample 1x1s.
std::vector<ConvWorkload> resnet50_conv_layers();

/// Every conv layer of YOLOv3 (batch 1, 416x416 input): Darknet-53 backbone
/// plus the three detection heads.
std::vector<ConvWorkload> yolov3_conv_layers();

/// MobileNetV1 depthwise 3x3 layers (the DW-Conv workloads of Fig. 14).
std::vector<ConvWorkload> mobilenet_dw_layers();

/// Conformer depthwise 1-D convolution (kernel 31) over a 256-channel,
/// length-1500 sequence.
std::vector<ConvWorkload> conformer_dw_layers();

/// The IFMAP/kernel shape sweep of Fig. 11 (labels name the source network).
std::vector<ConvWorkload> fig11_conv_shapes();

/// Full MobileNetV1 (224x224): alternating depthwise 3x3 and pointwise 1x1
/// layers, including the stem.
std::vector<ConvWorkload> mobilenet_v1_all_layers();

/// EfficientNet-B0 (224x224) MBConv conv layers: expansion 1x1, depthwise
/// 3x3/5x5, squeeze-excite 1x1s omitted (negligible), projection 1x1.
std::vector<ConvWorkload> efficientnet_b0_layers();

/// Sum of macs over a layer table (repeats included).
i64 total_macs(const std::vector<ConvWorkload>& layers);

/// Lowers a conv-layer table to the im2col GEMM each layer executes as
/// (one entry per table row; repeats are not expanded). Grouped/depthwise
/// layers lower to their per-group GEMM. This is how conv workloads enter
/// the GEMM-oriented serving layer.
std::vector<GemmWorkload> lowered_gemms(
    const std::vector<ConvWorkload>& layers);

}  // namespace axon
