// Transformer GEMM workload sets beyond Table 3: BERT-base and GPT-2
// layer GEMMs at representative sequence lengths, plus a decode-time
// (batch 1, single token) set that is GEMV-shaped. Used by the extended
// sweeps and examples.
#pragma once

#include <vector>

#include "workloads/table3.hpp"

namespace axon {

/// BERT-base (L=12, H=768, heads=12) encoder GEMMs at sequence length
/// `seq_len`: QKV projection, attention scores/context, output projection
/// and the two FFN GEMMs.
std::vector<GemmWorkload> bert_base_gemms(int seq_len = 384);

/// GPT-2 (H=1024, 24 layers) prefill GEMMs at `seq_len`.
std::vector<GemmWorkload> gpt2_gemms(int seq_len = 1024);

/// Decode-time (one token) projections: GEMV-shaped (N = 1 after mapping
/// the single token to the temporal dim).
std::vector<GemmWorkload> decode_gemv_set();

}  // namespace axon
