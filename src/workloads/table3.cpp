#include "workloads/table3.hpp"

#include "common/check.hpp"

namespace axon {

std::vector<GemmWorkload> table3_workloads() {
  // Values of M, K, N exactly as listed in paper Table 3.
  return {
      {"TF0", {31999, 84, 1024}},
      {"TF1", {84, 4096, 1024}},
      {"GNMT0", {128, 4096, 2048}},
      {"GNMT1", {2048, 32, 4096}},
      {"GPT3_0_matmul0", {1024, 1024, 80}},
      {"GPT3_1_matmul1", {1024, 2560, 7680}},
      {"GPT3_2_addmm", {1024, 2560, 10240}},
      {"GPT3_3_lmhead", {1024, 2560, 50257}},
      {"NCF0", {2048, 128, 1}},
      {"NCF1", {256, 2048, 256}},
      {"DB0", {1024, 50000, 16}},
      {"DB1", {35, 2560, 4096}},
      {"Resnet50_0_conv2d", {64, 147, 62500}},
      {"Resnet50_1_conv2d", {512, 4608, 676}},
      {"YOLO_v3_0_conv2d", {64, 288, 42436}},
      {"YOLO_v3_1_conv2d", {128, 576, 10404}},
      {"GEMM_0", {128, 10, 128}},
      {"GEMM_1", {2048, 10, 2048}},
      {"GEMM_2", {1024, 1024, 128}},
      {"GEMM_3", {64, 2560, 2560}},
  };
}

std::vector<GemmWorkload> gemv_workloads() {
  // Matrix-vector products (N = 1): decode-time transformer projections and
  // recommendation-model scoring, the memory-bound cases of Fig. 14.
  return {
      {"GEMV_NCF0", {2048, 128, 1}},
      {"GEMV_TF_proj", {1024, 1024, 1}},
      {"GEMV_GPT3_ffn", {2560, 10240, 1}},
      {"GEMV_GNMT", {2048, 4096, 1}},
      {"GEMV_DB", {1024, 50000, 1}},
      {"GEMV_small", {256, 256, 1}},
  };
}

std::vector<GemmWorkload> conformer_gemm_workloads() {
  // Conformer-S style block at sequence length 128, d_model 256:
  // QKV projections, attention output, and the two macaron FFN halves.
  return {
      {"conformer_qkv", {128, 256, 768}},
      {"conformer_attn_out", {128, 256, 256}},
      {"conformer_ffn1", {128, 256, 1024}},
      {"conformer_ffn2", {128, 1024, 256}},
      {"conformer_pointwise_conv", {128, 256, 512}},
  };
}

GemmWorkload find_workload(const std::vector<GemmWorkload>& set,
                           const std::string& name) {
  for (const auto& w : set) {
    if (w.name == name) return w;
  }
  AXON_CHECK(false, "workload not found: ", name);
  return {};
}

}  // namespace axon
