#include "workloads/convnets.hpp"

#include "common/check.hpp"

namespace axon {

namespace {

ConvWorkload layer(std::string name, int cin, int hw, int cout, int k,
                   int stride, int pad, int repeats = 1, int groups = 1) {
  ConvWorkload w;
  w.name = std::move(name);
  w.shape = make_conv(cin, hw, cout, k, stride, pad, groups);
  w.repeats = repeats;
  return w;
}

}  // namespace

std::vector<ConvWorkload> resnet50_conv_layers() {
  std::vector<ConvWorkload> layers;
  // Stem.
  layers.push_back(layer("conv1", 3, 224, 64, 7, 2, 3));
  // conv2_x: 3 bottlenecks at 56x56 (64 -> 64 -> 256).
  layers.push_back(layer("conv2_b1_red", 64, 56, 64, 1, 1, 0));
  layers.push_back(layer("conv2_b1_3x3", 64, 56, 64, 3, 1, 1));
  layers.push_back(layer("conv2_b1_exp", 64, 56, 256, 1, 1, 0));
  layers.push_back(layer("conv2_b1_ds", 64, 56, 256, 1, 1, 0));
  layers.push_back(layer("conv2_bN_red", 256, 56, 64, 1, 1, 0, 2));
  layers.push_back(layer("conv2_bN_3x3", 64, 56, 64, 3, 1, 1, 2));
  layers.push_back(layer("conv2_bN_exp", 64, 56, 256, 1, 1, 0, 2));
  // conv3_x: 4 bottlenecks at 28x28 (128 -> 512); first block strides.
  layers.push_back(layer("conv3_b1_red", 256, 56, 128, 1, 2, 0));
  layers.push_back(layer("conv3_b1_3x3", 128, 28, 128, 3, 1, 1));
  layers.push_back(layer("conv3_b1_exp", 128, 28, 512, 1, 1, 0));
  layers.push_back(layer("conv3_b1_ds", 256, 56, 512, 1, 2, 0));
  layers.push_back(layer("conv3_bN_red", 512, 28, 128, 1, 1, 0, 3));
  layers.push_back(layer("conv3_bN_3x3", 128, 28, 128, 3, 1, 1, 3));
  layers.push_back(layer("conv3_bN_exp", 128, 28, 512, 1, 1, 0, 3));
  // conv4_x: 6 bottlenecks at 14x14 (256 -> 1024).
  layers.push_back(layer("conv4_b1_red", 512, 28, 256, 1, 2, 0));
  layers.push_back(layer("conv4_b1_3x3", 256, 14, 256, 3, 1, 1));
  layers.push_back(layer("conv4_b1_exp", 256, 14, 1024, 1, 1, 0));
  layers.push_back(layer("conv4_b1_ds", 512, 28, 1024, 1, 2, 0));
  layers.push_back(layer("conv4_bN_red", 1024, 14, 256, 1, 1, 0, 5));
  layers.push_back(layer("conv4_bN_3x3", 256, 14, 256, 3, 1, 1, 5));
  layers.push_back(layer("conv4_bN_exp", 256, 14, 1024, 1, 1, 0, 5));
  // conv5_x: 3 bottlenecks at 7x7 (512 -> 2048).
  layers.push_back(layer("conv5_b1_red", 1024, 14, 512, 1, 2, 0));
  layers.push_back(layer("conv5_b1_3x3", 512, 7, 512, 3, 1, 1));
  layers.push_back(layer("conv5_b1_exp", 512, 7, 2048, 1, 1, 0));
  layers.push_back(layer("conv5_b1_ds", 1024, 14, 2048, 1, 2, 0));
  layers.push_back(layer("conv5_bN_red", 2048, 7, 512, 1, 1, 0, 2));
  layers.push_back(layer("conv5_bN_3x3", 512, 7, 512, 3, 1, 1, 2));
  layers.push_back(layer("conv5_bN_exp", 512, 7, 2048, 1, 1, 0, 2));
  return layers;
}

std::vector<ConvWorkload> yolov3_conv_layers() {
  std::vector<ConvWorkload> layers;
  // Darknet-53 backbone (416x416 input). Residual blocks repeat
  // (1x1 reduce, 3x3 expand).
  layers.push_back(layer("d53_conv0", 3, 416, 32, 3, 1, 1));
  layers.push_back(layer("d53_down1", 32, 416, 64, 3, 2, 1));
  layers.push_back(layer("d53_res1_1x1", 64, 208, 32, 1, 1, 0, 1));
  layers.push_back(layer("d53_res1_3x3", 32, 208, 64, 3, 1, 1, 1));
  layers.push_back(layer("d53_down2", 64, 208, 128, 3, 2, 1));
  layers.push_back(layer("d53_res2_1x1", 128, 104, 64, 1, 1, 0, 2));
  layers.push_back(layer("d53_res2_3x3", 64, 104, 128, 3, 1, 1, 2));
  layers.push_back(layer("d53_down3", 128, 104, 256, 3, 2, 1));
  layers.push_back(layer("d53_res3_1x1", 256, 52, 128, 1, 1, 0, 8));
  layers.push_back(layer("d53_res3_3x3", 128, 52, 256, 3, 1, 1, 8));
  layers.push_back(layer("d53_down4", 256, 52, 512, 3, 2, 1));
  layers.push_back(layer("d53_res4_1x1", 512, 26, 256, 1, 1, 0, 8));
  layers.push_back(layer("d53_res4_3x3", 256, 26, 512, 3, 1, 1, 8));
  layers.push_back(layer("d53_down5", 512, 26, 1024, 3, 2, 1));
  layers.push_back(layer("d53_res5_1x1", 1024, 13, 512, 1, 1, 0, 4));
  layers.push_back(layer("d53_res5_3x3", 512, 13, 1024, 3, 1, 1, 4));
  // Detection head, scale 1 (13x13): conv set of alternating 1x1/3x3.
  layers.push_back(layer("head1_1x1", 1024, 13, 512, 1, 1, 0, 3));
  layers.push_back(layer("head1_3x3", 512, 13, 1024, 3, 1, 1, 3));
  layers.push_back(layer("head1_det", 1024, 13, 255, 1, 1, 0));
  // Scale 2 (26x26): 1x1 squeeze + upsample concat (768 ch in).
  layers.push_back(layer("head2_squeeze", 512, 13, 256, 1, 1, 0));
  layers.push_back(layer("head2_1x1_first", 768, 26, 256, 1, 1, 0));
  layers.push_back(layer("head2_3x3", 256, 26, 512, 3, 1, 1, 3));
  layers.push_back(layer("head2_1x1", 512, 26, 256, 1, 1, 0, 2));
  layers.push_back(layer("head2_det", 512, 26, 255, 1, 1, 0));
  // Scale 3 (52x52): 1x1 squeeze + upsample concat (384 ch in).
  layers.push_back(layer("head3_squeeze", 256, 26, 128, 1, 1, 0));
  layers.push_back(layer("head3_1x1_first", 384, 52, 128, 1, 1, 0));
  layers.push_back(layer("head3_3x3", 128, 52, 256, 3, 1, 1, 3));
  layers.push_back(layer("head3_1x1", 256, 52, 128, 1, 1, 0, 2));
  layers.push_back(layer("head3_det", 256, 52, 255, 1, 1, 0));
  return layers;
}

std::vector<ConvWorkload> mobilenet_dw_layers() {
  std::vector<ConvWorkload> layers;
  auto dw = [](std::string name, int ch, int hw, int stride, int repeats = 1) {
    ConvWorkload w;
    w.name = std::move(name);
    w.shape = make_conv(ch, hw, ch, 3, stride, 1, ch);
    w.repeats = repeats;
    return w;
  };
  layers.push_back(dw("dw1_32x112", 32, 112, 1));
  layers.push_back(dw("dw2_64x112_s2", 64, 112, 2));
  layers.push_back(dw("dw3_128x56", 128, 56, 1));
  layers.push_back(dw("dw4_128x56_s2", 128, 56, 2));
  layers.push_back(dw("dw5_256x28", 256, 28, 1));
  layers.push_back(dw("dw6_256x28_s2", 256, 28, 2));
  layers.push_back(dw("dw7_512x14", 512, 14, 1, 5));
  layers.push_back(dw("dw8_512x14_s2", 512, 14, 2));
  layers.push_back(dw("dw9_1024x7", 1024, 7, 1));
  return layers;
}

std::vector<ConvWorkload> conformer_dw_layers() {
  // 1-D depthwise conv, kernel 31, over a 256-channel length-1500 sequence.
  ConvWorkload w;
  w.name = "conformer_dw31";
  ConvShape s;
  s.in_channels = 256;
  s.in_h = 1;
  s.in_w = 1500;
  s.out_channels = 256;
  s.kernel_h = 1;
  s.kernel_w = 31;
  s.stride_h = 1;
  s.stride_w = 1;
  s.pad_h = 0;
  s.pad_w = 15;
  s.groups = 256;
  AXON_CHECK(s.valid(), "conformer dw shape invalid");
  w.shape = s;
  return {w};
}

std::vector<ConvWorkload> fig11_conv_shapes() {
  // IFMAP / kernel shapes "adopted from SOTA neural networks" (Fig. 11).
  return {
      layer("resnet_conv1_224_7x7", 3, 224, 64, 7, 2, 3),
      layer("resnet_56_3x3", 64, 56, 64, 3, 1, 1),
      layer("resnet_28_3x3", 128, 28, 128, 3, 1, 1),
      layer("resnet_14_3x3", 256, 14, 256, 3, 1, 1),
      layer("resnet_7_3x3", 512, 7, 512, 3, 1, 1),
      layer("yolo_416_3x3", 3, 416, 32, 3, 1, 1),
      layer("yolo_104_3x3", 64, 104, 128, 3, 1, 1),
      layer("yolo_52_3x3", 128, 52, 256, 3, 1, 1),
      layer("yolo_13_3x3", 512, 13, 1024, 3, 1, 1),
      layer("effnet_112_5x5", 16, 112, 16, 5, 1, 2),
      layer("mobilenet_28_3x3", 256, 28, 256, 3, 1, 1),
      layer("vgg_224_3x3", 64, 224, 64, 3, 1, 1),
  };
}

std::vector<ConvWorkload> mobilenet_v1_all_layers() {
  std::vector<ConvWorkload> layers;
  auto dw = [&](int ch, int hw, int stride) {
    ConvWorkload w;
    w.name = "dw_" + std::to_string(ch) + "x" + std::to_string(hw) +
             (stride == 2 ? "_s2" : "");
    w.shape = make_conv(ch, hw, ch, 3, stride, 1, ch);
    layers.push_back(w);
  };
  auto pw = [&](int cin, int hw, int cout) {
    layers.push_back(layer("pw_" + std::to_string(cin) + "to" +
                               std::to_string(cout) + "x" + std::to_string(hw),
                           cin, hw, cout, 1, 1, 0));
  };
  layers.push_back(layer("stem_3x3_s2", 3, 224, 32, 3, 2, 1));
  dw(32, 112, 1);  pw(32, 112, 64);
  dw(64, 112, 2);  pw(64, 56, 128);
  dw(128, 56, 1);  pw(128, 56, 128);
  dw(128, 56, 2);  pw(128, 28, 256);
  dw(256, 28, 1);  pw(256, 28, 256);
  dw(256, 28, 2);  pw(256, 14, 512);
  for (int i = 0; i < 5; ++i) {
    dw(512, 14, 1);
    pw(512, 14, 512);
  }
  dw(512, 14, 2);  pw(512, 7, 1024);
  dw(1024, 7, 1);  pw(1024, 7, 1024);
  return layers;
}

std::vector<ConvWorkload> efficientnet_b0_layers() {
  std::vector<ConvWorkload> layers;
  auto dw = [&](std::string name, int ch, int hw, int k, int stride) {
    ConvWorkload w;
    w.name = std::move(name);
    w.shape = make_conv(ch, hw, ch, k, stride, k / 2, ch);
    layers.push_back(w);
  };
  // Stem.
  layers.push_back(layer("stem", 3, 224, 32, 3, 2, 1));
  // MBConv1, k3, 112 -> 112, 32 -> 16 (no expansion).
  dw("mb1_dw", 32, 112, 3, 1);
  layers.push_back(layer("mb1_proj", 32, 112, 16, 1, 1, 0));
  // MBConv6, k3, 112 -> 56, 16 -> 24 (x2).
  layers.push_back(layer("mb2_exp", 16, 112, 96, 1, 1, 0));
  dw("mb2_dw", 96, 112, 3, 2);
  layers.push_back(layer("mb2_proj", 96, 56, 24, 1, 1, 0));
  layers.push_back(layer("mb2b_exp", 24, 56, 144, 1, 1, 0));
  dw("mb2b_dw", 144, 56, 3, 1);
  layers.push_back(layer("mb2b_proj", 144, 56, 24, 1, 1, 0));
  // MBConv6, k5, 56 -> 28, 24 -> 40 (x2).
  layers.push_back(layer("mb3_exp", 24, 56, 144, 1, 1, 0));
  dw("mb3_dw", 144, 56, 5, 2);
  layers.push_back(layer("mb3_proj", 144, 28, 40, 1, 1, 0));
  layers.push_back(layer("mb3b_exp", 40, 28, 240, 1, 1, 0));
  dw("mb3b_dw", 240, 28, 5, 1);
  layers.push_back(layer("mb3b_proj", 240, 28, 40, 1, 1, 0));
  // MBConv6, k3, 28 -> 14, 40 -> 80 (x3).
  layers.push_back(layer("mb4_exp", 40, 28, 240, 1, 1, 0));
  dw("mb4_dw", 240, 28, 3, 2);
  layers.push_back(layer("mb4_proj", 240, 14, 80, 1, 1, 0));
  layers.push_back(layer("mb4b_exp", 80, 14, 480, 1, 1, 0, 2));
  dw("mb4b_dw", 480, 14, 3, 1);
  layers.back().repeats = 2;
  layers.push_back(layer("mb4b_proj", 480, 14, 80, 1, 1, 0, 2));
  // MBConv6, k5, 14 -> 14, 80 -> 112 (x3).
  layers.push_back(layer("mb5_exp", 80, 14, 480, 1, 1, 0));
  dw("mb5_dw", 480, 14, 5, 1);
  layers.push_back(layer("mb5_proj", 480, 14, 112, 1, 1, 0));
  layers.push_back(layer("mb5b_exp", 112, 14, 672, 1, 1, 0, 2));
  dw("mb5b_dw", 672, 14, 5, 1);
  layers.back().repeats = 2;
  layers.push_back(layer("mb5b_proj", 672, 14, 112, 1, 1, 0, 2));
  // MBConv6, k5, 14 -> 7, 112 -> 192 (x4).
  layers.push_back(layer("mb6_exp", 112, 14, 672, 1, 1, 0));
  dw("mb6_dw", 672, 14, 5, 2);
  layers.push_back(layer("mb6_proj", 672, 7, 192, 1, 1, 0));
  layers.push_back(layer("mb6b_exp", 192, 7, 1152, 1, 1, 0, 3));
  dw("mb6b_dw", 1152, 7, 5, 1);
  layers.back().repeats = 3;
  layers.push_back(layer("mb6b_proj", 1152, 7, 192, 1, 1, 0, 3));
  // MBConv6, k3, 7 -> 7, 192 -> 320.
  layers.push_back(layer("mb7_exp", 192, 7, 1152, 1, 1, 0));
  dw("mb7_dw", 1152, 7, 3, 1);
  layers.push_back(layer("mb7_proj", 1152, 7, 320, 1, 1, 0));
  // Head 1x1.
  layers.push_back(layer("head", 320, 7, 1280, 1, 1, 0));
  return layers;
}

i64 total_macs(const std::vector<ConvWorkload>& layers) {
  i64 total = 0;
  for (const auto& l : layers) total += l.shape.macs() * l.repeats;
  return total;
}

std::vector<GemmWorkload> lowered_gemms(
    const std::vector<ConvWorkload>& layers) {
  std::vector<GemmWorkload> gemms;
  gemms.reserve(layers.size());
  for (const auto& l : layers) {
    gemms.push_back({l.name, l.shape.as_gemm()});
  }
  return gemms;
}

}  // namespace axon
