#include "workloads/transformers.hpp"

#include "common/check.hpp"

namespace axon {

std::vector<GemmWorkload> bert_base_gemms(int seq_len) {
  AXON_CHECK(seq_len > 0, "sequence length must be positive");
  const i64 s = seq_len;
  const i64 h = 768;
  const i64 head = 64;  // 12 heads x 64
  return {
      {"bert_qkv", {s, h, 3 * h}},
      {"bert_attn_scores", {s, head, s}},   // per head, Q*K^T
      {"bert_attn_context", {s, s, head}},  // per head, softmax(S)*V
      {"bert_attn_out", {s, h, h}},
      {"bert_ffn1", {s, h, 4 * h}},
      {"bert_ffn2", {s, 4 * h, h}},
  };
}

std::vector<GemmWorkload> gpt2_gemms(int seq_len) {
  AXON_CHECK(seq_len > 0, "sequence length must be positive");
  const i64 s = seq_len;
  const i64 h = 1024;
  return {
      {"gpt2_qkv", {s, h, 3 * h}},
      {"gpt2_attn_out", {s, h, h}},
      {"gpt2_ffn1", {s, h, 4 * h}},
      {"gpt2_ffn2", {s, 4 * h, h}},
      {"gpt2_lmhead", {s, h, 50257}},
  };
}

std::vector<GemmWorkload> decode_gemv_set() {
  // Single-token decode: activations are 1 x H vectors; mapping the token
  // to the temporal dimension makes these GEMV-shaped and fill-bound.
  return {
      {"decode_bert_qkv", {2304, 768, 1}},
      {"decode_bert_ffn1", {3072, 768, 1}},
      {"decode_gpt2_ffn1", {4096, 1024, 1}},
      {"decode_gpt2_lmhead", {50257, 1024, 1}},
  };
}

}  // namespace axon
