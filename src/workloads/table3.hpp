// Paper Table 3: the GEMM / Conv(-as-GEMM) workloads used throughout the
// evaluation (Fig. 12, Fig. 13), plus the GEMV and conformer sets used by
// Fig. 14.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace axon {

struct GemmWorkload {
  std::string name;
  GemmShape shape;
};

/// All 21 rows of Table 3, in paper order.
std::vector<GemmWorkload> table3_workloads();

/// Low-arithmetic-intensity GEMV workloads (N = 1) for Fig. 14, derived
/// from the Table 3 transformer/recommendation shapes.
std::vector<GemmWorkload> gemv_workloads();

/// Conformer-block GEMMs (attention projections + feed-forward) for the
/// "Conv and GeMM" workload class the paper evaluates.
std::vector<GemmWorkload> conformer_gemm_workloads();

/// Looks a workload up by name; throws if missing.
GemmWorkload find_workload(const std::vector<GemmWorkload>& set,
                           const std::string& name);

}  // namespace axon
