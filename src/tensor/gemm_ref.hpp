// Reference (golden) dense kernels the simulators are verified against.
#pragma once

#include "tensor/matrix.hpp"

namespace axon {

/// C = A(MxK) * B(KxN), accumulated in double for a stable golden result.
Matrix gemm_ref(const Matrix& a, const Matrix& b);

/// y = A(MxK) * x(Kx1). Returns an Mx1 Matrix.
Matrix gemv_ref(const Matrix& a, const Matrix& x);

/// C = A * B where every intermediate (operands and accumulations) is
/// rounded to binary16, mimicking the FP16 MAC pipeline of the paper's PE.
Matrix gemm_ref_fp16(const Matrix& a, const Matrix& b);

}  // namespace axon
