#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace axon {

i64 Matrix::count_zeros() const {
  return std::count(data_.begin(), data_.end(), 0.0f);
}

double Matrix::max_abs_diff(const Matrix& other) const {
  AXON_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "max_abs_diff shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(data_[i]) -
                                     static_cast<double>(other.data_[i])));
  }
  return worst;
}

bool Matrix::approx_equal(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  return max_abs_diff(other) <= tol;
}

Matrix random_matrix(i64 rows, i64 cols, Rng& rng) {
  Matrix m(rows, cols);
  for (i64 r = 0; r < rows; ++r) {
    for (i64 c = 0; c < cols; ++c) m.at(r, c) = rng.small_value();
  }
  return m;
}

Matrix random_sparse_matrix(i64 rows, i64 cols, double zero_fraction,
                            Rng& rng) {
  Matrix m(rows, cols);
  auto vals = rng.sparse_values(static_cast<std::size_t>(rows * cols),
                                zero_fraction);
  std::copy(vals.begin(), vals.end(), m.data());
  return m;
}

}  // namespace axon
