#include "tensor/im2col.hpp"

#include <algorithm>

namespace axon {

Matrix im2col_windows(const Tensor4& input, const ConvShape& shape, i64 batch,
                      int group) {
  AXON_CHECK(shape.valid(), "invalid conv shape");
  AXON_CHECK(input.c() == shape.in_channels && input.h() == shape.in_h &&
                 input.w() == shape.in_w,
             "input tensor does not match conv shape");
  AXON_CHECK(group >= 0 && group < shape.groups, "bad group index");

  const int cg = shape.in_channels / shape.groups;  // channels per group
  const int oh = shape.out_h();
  const int ow = shape.out_w();
  const i64 k = i64{1} * cg * shape.kernel_h * shape.kernel_w;

  Matrix out(i64{1} * oh * ow, k);
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      const i64 row = i64{1} * oy * ow + ox;
      i64 col = 0;
      for (int c = 0; c < cg; ++c) {
        const i64 ic = i64{1} * group * cg + c;
        for (int ky = 0; ky < shape.kernel_h; ++ky) {
          for (int kx = 0; kx < shape.kernel_w; ++kx) {
            const i64 iy = i64{1} * oy * shape.stride_h - shape.pad_h + ky;
            const i64 ix = i64{1} * ox * shape.stride_w - shape.pad_w + kx;
            out.at(row, col++) = input.at_padded(batch, ic, iy, ix);
          }
        }
      }
    }
  }
  return out;
}

Matrix flatten_filters(const Tensor4& filters, const ConvShape& shape,
                       int group) {
  AXON_CHECK(shape.valid(), "invalid conv shape");
  const int cg = shape.in_channels / shape.groups;
  const int og = shape.out_channels / shape.groups;
  AXON_CHECK(filters.n() == shape.out_channels && filters.c() == cg &&
                 filters.h() == shape.kernel_h && filters.w() == shape.kernel_w,
             "filter tensor does not match conv shape");
  AXON_CHECK(group >= 0 && group < shape.groups, "bad group index");

  const i64 k = i64{1} * cg * shape.kernel_h * shape.kernel_w;
  Matrix out(k, og);
  for (int o = 0; o < og; ++o) {
    const i64 oc = i64{1} * group * og + o;
    i64 row = 0;
    for (int c = 0; c < cg; ++c) {
      for (int ky = 0; ky < shape.kernel_h; ++ky) {
        for (int kx = 0; kx < shape.kernel_w; ++kx) {
          out.at(row++, o) = filters.at(oc, c, ky, kx);
        }
      }
    }
  }
  return out;
}

i64 im2col_element_count(const ConvShape& shape) {
  AXON_CHECK(shape.valid(), "invalid conv shape");
  const i64 k =
      i64{1} * (shape.in_channels / shape.groups) * shape.kernel_h *
      shape.kernel_w;
  return i64{1} * shape.out_h() * shape.out_w() * k * shape.groups;
}

i64 unique_ifmap_elements(const ConvShape& shape) {
  AXON_CHECK(shape.valid(), "invalid conv shape");
  // An IFMAP element participates iff at least one window covers it. With
  // padding, coverage can be partial on the borders; count exactly.
  auto covered = [](int in, int kernel, int stride, int pad, int out) {
    // Returns number of input coordinates x in [0, in) covered by some
    // window [o*stride - pad, o*stride - pad + kernel) with o in [0, out).
    i64 count = 0;
    for (int x = 0; x < in; ++x) {
      // windows covering x: o*stride <= x + pad < o*stride + kernel
      const int hi = (x + pad) / stride;                    // largest candidate
      const int lo_num = x + pad - kernel + 1;
      const int lo = lo_num <= 0 ? 0 : (lo_num + stride - 1) / stride;
      if (lo <= std::min(hi, out - 1) && hi >= 0) ++count;
    }
    return count;
  };
  const i64 rows = covered(shape.in_h, shape.kernel_h, shape.stride_h,
                           shape.pad_h, shape.out_h());
  const i64 cols = covered(shape.in_w, shape.kernel_w, shape.stride_w,
                           shape.pad_w, shape.out_w());
  return rows * cols * shape.in_channels;
}

}  // namespace axon
