// Sparsity utilities for the zero-gating experiments (§5.2.1: 5.3% power
// reduction at 10% sparsity).
#pragma once

#include "tensor/matrix.hpp"

namespace axon {

/// Measured zero fraction of a matrix.
double zero_fraction(const Matrix& m);

/// Zeroes out entries of `m` uniformly at random until the zero fraction is
/// at least `target` (no-op if already sparser). Deterministic given `rng`.
void sparsify(Matrix& m, double target, class Rng& rng);

/// For a GEMM A*B, the expected fraction of MACs with at least one zero
/// operand when zeros are independent with densities (1-sa), (1-sb):
///   p(gated) = 1 - (1 - sa) * (1 - sb).
double expected_gated_fraction(double sparsity_a, double sparsity_b);

/// Exact gated-MAC count for A (MxK) * B (KxN): a MAC (i,k,j) is gated iff
/// A[i,k] == 0 or B[k,j] == 0.
i64 exact_gated_macs(const Matrix& a, const Matrix& b);

}  // namespace axon
