// Software im2col (the baseline the paper's on-chip scheme replaces) and the
// filter flattening that pairs with it.
//
// Layout convention (paper Fig. 7): each *row* of the im2col matrix is one
// flattened convolution window, ordered (channel, kernel_row, kernel_col);
// windows are ordered row-major over the output map. The flattened filter
// matrix has one *column* per output channel in the same (c, kh, kw) order,
// so   OFMAP(as MxN) = windows (N_win x K) * filters (K x Cout)  transposed
// appropriately. We expose both orientations since OS/WS/IS mappings differ.
#pragma once

#include "common/types.hpp"
#include "tensor/matrix.hpp"
#include "tensor/tensor4.hpp"

namespace axon {

/// Rows = out_h*out_w windows, cols = (in_channels/groups)*kh*kw.
/// `group` selects which channel group to lower (0 for standard conv).
Matrix im2col_windows(const Tensor4& input, const ConvShape& shape,
                      i64 batch = 0, int group = 0);

/// Rows = (in_channels/groups)*kh*kw, cols = out_channels/groups for `group`.
/// `filters` is laid out [out_channels][in_channels/groups][kh][kw].
Matrix flatten_filters(const Tensor4& filters, const ConvShape& shape,
                       int group = 0);

/// Number of elements in the full im2col matrix for one batch and all groups
/// (== IFMAP elements fetched when im2col is materialized in software).
i64 im2col_element_count(const ConvShape& shape);

/// Number of *unique* IFMAP elements actually touched by the convolution
/// (padding excluded) — the floor any reuse scheme can reach.
i64 unique_ifmap_elements(const ConvShape& shape);

}  // namespace axon
