#include "tensor/sparsity.hpp"

#include <vector>

#include "common/rng.hpp"

namespace axon {

double zero_fraction(const Matrix& m) {
  if (m.size() == 0) return 0.0;
  return static_cast<double>(m.count_zeros()) / static_cast<double>(m.size());
}

void sparsify(Matrix& m, double target, Rng& rng) {
  AXON_CHECK(target >= 0.0 && target <= 1.0, "target sparsity in [0,1]");
  const i64 want = static_cast<i64>(target * static_cast<double>(m.size()));
  i64 have = m.count_zeros();
  if (have >= want) return;

  // Indices of non-zero entries, shuffled; zero the first (want - have).
  std::vector<i64> nonzero;
  nonzero.reserve(static_cast<std::size_t>(m.size() - have));
  for (i64 i = 0; i < m.size(); ++i) {
    if (m.data()[i] != 0.0f) nonzero.push_back(i);
  }
  for (i64 i = static_cast<i64>(nonzero.size()) - 1; i > 0; --i) {
    const i64 j = rng.uniform_i64(0, i);
    std::swap(nonzero[static_cast<std::size_t>(i)],
              nonzero[static_cast<std::size_t>(j)]);
  }
  for (i64 i = 0; i < want - have && i < static_cast<i64>(nonzero.size());
       ++i) {
    m.data()[nonzero[static_cast<std::size_t>(i)]] = 0.0f;
  }
}

double expected_gated_fraction(double sparsity_a, double sparsity_b) {
  return 1.0 - (1.0 - sparsity_a) * (1.0 - sparsity_b);
}

i64 exact_gated_macs(const Matrix& a, const Matrix& b) {
  AXON_CHECK(a.cols() == b.rows(), "exact_gated_macs inner-dim mismatch");
  // Count per k: zeros in A column k (over M) and zeros in B row k (over N).
  // gated(i,k,j) = [A(i,k)==0 or B(k,j)==0]; summed over i,j for fixed k:
  //   za*N + zb*M - za*zb.
  i64 total = 0;
  for (i64 k = 0; k < a.cols(); ++k) {
    i64 za = 0;
    for (i64 i = 0; i < a.rows(); ++i) {
      if (a.at(i, k) == 0.0f) ++za;
    }
    i64 zb = 0;
    for (i64 j = 0; j < b.cols(); ++j) {
      if (b.at(k, j) == 0.0f) ++zb;
    }
    total += za * b.cols() + zb * a.rows() - za * zb;
  }
  return total;
}

}  // namespace axon
