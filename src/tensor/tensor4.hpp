// 4-D tensor in NCHW layout for convolution inputs/filters/outputs.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace axon {

class Tensor4 {
 public:
  Tensor4() = default;
  Tensor4(i64 n, i64 c, i64 h, i64 w, float fill = 0.0f)
      : n_(n), c_(c), h_(h), w_(w),
        data_(static_cast<std::size_t>(n * c * h * w), fill) {
    AXON_CHECK(n >= 0 && c >= 0 && h >= 0 && w >= 0, "negative tensor dims");
  }

  [[nodiscard]] i64 n() const { return n_; }
  [[nodiscard]] i64 c() const { return c_; }
  [[nodiscard]] i64 h() const { return h_; }
  [[nodiscard]] i64 w() const { return w_; }
  [[nodiscard]] i64 size() const { return n_ * c_ * h_ * w_; }

  float& at(i64 n, i64 c, i64 h, i64 w) {
    return data_[index(n, c, h, w)];
  }
  float at(i64 n, i64 c, i64 h, i64 w) const {
    return data_[index(n, c, h, w)];
  }

  /// Reads with zero padding: out-of-range (h, w) return 0. This is the
  /// access pattern convolution with padding uses.
  [[nodiscard]] float at_padded(i64 n, i64 c, i64 h, i64 w) const {
    if (h < 0 || h >= h_ || w < 0 || w >= w_) return 0.0f;
    return at(n, c, h, w);
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  friend bool operator==(const Tensor4& a, const Tensor4& b) {
    return a.n_ == b.n_ && a.c_ == b.c_ && a.h_ == b.h_ && a.w_ == b.w_ &&
           a.data_ == b.data_;
  }
  friend bool operator!=(const Tensor4& a, const Tensor4& b) {
    return !(a == b);
  }

 private:
  std::size_t index(i64 n, i64 c, i64 h, i64 w) const {
    AXON_DCHECK(n >= 0 && n < n_ && c >= 0 && c < c_ && h >= 0 && h < h_ &&
                    w >= 0 && w < w_,
                "tensor index out of range");
    return static_cast<std::size_t>(((n * c_ + c) * h_ + h) * w_ + w);
  }

  i64 n_ = 0, c_ = 0, h_ = 0, w_ = 0;
  std::vector<float> data_;
};

/// Random NCHW tensor with small exactly-representable values.
Tensor4 random_tensor(i64 n, i64 c, i64 h, i64 w, class Rng& rng);

}  // namespace axon
