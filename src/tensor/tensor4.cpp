#include "tensor/tensor4.hpp"

#include "common/rng.hpp"

namespace axon {

Tensor4 random_tensor(i64 n, i64 c, i64 h, i64 w, Rng& rng) {
  Tensor4 t(n, c, h, w);
  for (i64 i = 0; i < t.size(); ++i) t.data()[i] = rng.small_value();
  return t;
}

}  // namespace axon
