#include "tensor/conv_ref.hpp"

#include "tensor/gemm_ref.hpp"
#include "tensor/im2col.hpp"

namespace axon {

Tensor4 conv2d_ref(const Tensor4& input, const Tensor4& filters,
                   const ConvShape& shape) {
  AXON_CHECK(shape.valid(), "invalid conv shape");
  const int cg = shape.in_channels / shape.groups;
  const int og = shape.out_channels / shape.groups;
  const int oh = shape.out_h();
  const int ow = shape.out_w();

  Tensor4 out(input.n(), shape.out_channels, oh, ow);
  for (i64 n = 0; n < input.n(); ++n) {
    for (int oc = 0; oc < shape.out_channels; ++oc) {
      const int g = oc / og;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          double acc = 0.0;
          for (int c = 0; c < cg; ++c) {
            const int ic = g * cg + c;
            for (int ky = 0; ky < shape.kernel_h; ++ky) {
              for (int kx = 0; kx < shape.kernel_w; ++kx) {
                const i64 iy = i64{1} * oy * shape.stride_h - shape.pad_h + ky;
                const i64 ix = i64{1} * ox * shape.stride_w - shape.pad_w + kx;
                acc += static_cast<double>(input.at_padded(n, ic, iy, ix)) *
                       static_cast<double>(filters.at(oc, c, ky, kx));
              }
            }
          }
          out.at(n, oc, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

void scatter_conv_output(const Matrix& gemm_out, const ConvShape& shape,
                         i64 batch, int group, Tensor4& out) {
  const int og = shape.out_channels / shape.groups;
  const int oh = shape.out_h();
  const int ow = shape.out_w();
  AXON_CHECK(gemm_out.rows() == i64{1} * oh * ow && gemm_out.cols() == og,
             "scatter_conv_output shape mismatch");
  for (int o = 0; o < og; ++o) {
    const i64 oc = i64{1} * group * og + o;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        out.at(batch, oc, oy, ox) = gemm_out.at(i64{1} * oy * ow + ox, o);
      }
    }
  }
}

Tensor4 conv2d_im2col(const Tensor4& input, const Tensor4& filters,
                      const ConvShape& shape) {
  AXON_CHECK(shape.valid(), "invalid conv shape");
  Tensor4 out(input.n(), shape.out_channels, shape.out_h(), shape.out_w());
  for (i64 n = 0; n < input.n(); ++n) {
    for (int g = 0; g < shape.groups; ++g) {
      const Matrix windows = im2col_windows(input, shape, n, g);
      const Matrix flat = flatten_filters(filters, shape, g);
      const Matrix product = gemm_ref(windows, flat);
      scatter_conv_output(product, shape, n, g, out);
    }
  }
  return out;
}

}  // namespace axon
