// Reference direct convolution (golden) plus the im2col-lowered variant used
// to validate both the software im2col and the on-chip feeder.
#pragma once

#include "common/types.hpp"
#include "tensor/matrix.hpp"
#include "tensor/tensor4.hpp"

namespace axon {

/// Direct NCHW convolution. `input` is [N][Cin][H][W], `filters` is
/// [Cout][Cin/groups][kh][kw]. Returns [N][Cout][oh][ow].
Tensor4 conv2d_ref(const Tensor4& input, const Tensor4& filters,
                   const ConvShape& shape);

/// Convolution computed as im2col + GEMM per group; must equal conv2d_ref.
Tensor4 conv2d_im2col(const Tensor4& input, const Tensor4& filters,
                      const ConvShape& shape);

/// Reshapes one batch/group GEMM result (N_win x og) back to [og][oh][ow]
/// inside `out`.
void scatter_conv_output(const Matrix& gemm_out, const ConvShape& shape,
                         i64 batch, int group, Tensor4& out);

}  // namespace axon
