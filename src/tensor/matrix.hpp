// Dense row-major matrix used throughout the simulators and reference
// kernels. Kept deliberately simple: value semantics, bounds-checked access
// in debug builds, float storage (the PEs model FP16 via common/fp16).
#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace axon {

class Matrix {
 public:
  Matrix() = default;
  Matrix(i64 rows, i64 cols, float fill = 0.0f)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), fill) {
    AXON_CHECK(rows >= 0 && cols >= 0, "negative matrix dims");
  }

  [[nodiscard]] i64 rows() const { return rows_; }
  [[nodiscard]] i64 cols() const { return cols_; }
  [[nodiscard]] i64 size() const { return rows_ * cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  float& at(i64 r, i64 c) {
    AXON_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_, "matrix index ", r,
                ",", c, " out of ", rows_, "x", cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  float at(i64 r, i64 c) const {
    AXON_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_, "matrix index ", r,
                ",", c, " out of ", rows_, "x", cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Number of exactly-zero entries (used by the sparsity experiments).
  [[nodiscard]] i64 count_zeros() const;

  /// Largest absolute element-wise difference vs `other` (same shape
  /// required).
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

  /// True if same shape and all entries within `tol`.
  [[nodiscard]] bool approx_equal(const Matrix& other, double tol = 1e-4) const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }
  friend bool operator!=(const Matrix& a, const Matrix& b) {
    return !(a == b);
  }

 private:
  i64 rows_ = 0;
  i64 cols_ = 0;
  std::vector<float> data_;
};

/// Fills a matrix with small exactly-representable random values.
Matrix random_matrix(i64 rows, i64 cols, class Rng& rng);

/// Random matrix where `zero_fraction` of entries are exactly zero.
Matrix random_sparse_matrix(i64 rows, i64 cols, double zero_fraction,
                            class Rng& rng);

}  // namespace axon
