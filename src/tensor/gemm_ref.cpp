#include "tensor/gemm_ref.hpp"

#include "common/fp16.hpp"

namespace axon {

Matrix gemm_ref(const Matrix& a, const Matrix& b) {
  AXON_CHECK(a.cols() == b.rows(), "gemm_ref inner-dim mismatch: ", a.cols(),
             " vs ", b.rows());
  Matrix c(a.rows(), b.cols());
  for (i64 i = 0; i < a.rows(); ++i) {
    for (i64 j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (i64 k = 0; k < a.cols(); ++k) {
        acc +=
            static_cast<double>(a.at(i, k)) * static_cast<double>(b.at(k, j));
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

Matrix gemv_ref(const Matrix& a, const Matrix& x) {
  AXON_CHECK(x.cols() == 1, "gemv_ref expects a column vector");
  return gemm_ref(a, x);
}

Matrix gemm_ref_fp16(const Matrix& a, const Matrix& b) {
  AXON_CHECK(a.cols() == b.rows(), "gemm_ref_fp16 inner-dim mismatch");
  Matrix c(a.rows(), b.cols());
  for (i64 i = 0; i < a.rows(); ++i) {
    for (i64 j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (i64 k = 0; k < a.cols(); ++k) {
        const float prod =
            fp16_round(fp16_round(a.at(i, k)) * fp16_round(b.at(k, j)));
        acc = fp16_round(acc + prod);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

}  // namespace axon
