// Canonical serving scenarios shared by the examples, the bench binaries,
// and (via the bench smoke mode) CI's perf artifact — one definition, so
// the numbers the README describes, the example demos, and the
// BENCH_serve.json trajectory can never drift apart.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/pool.hpp"
#include "serve/request.hpp"

namespace axon::serve {

/// Canonical trace seed and size for the mixed-fleet scenario. The
/// example enforces the headline claim (cost-aware routing beats
/// round-robin on throughput AND SLO attainment) on exactly this trace at
/// runtime; CI's BENCH_serve.json publishes the same trace so the
/// artifact can never contradict the claim.
inline constexpr std::uint64_t kMixedFleetSeed = 2025;
inline constexpr int kMixedFleetRequests = 384;

/// The mixed-hardware demo fleet: 2x "big64x64" (64x64 Axon array at the
/// reference clock, 64 B/cycle DRAM) + 2x "hbm32x32" (32x32 array clocked
/// 2x, 256 B/cycle), each with a 16 MiB weight cache. `big` wins
/// compute-bound prefill, `hbm` wins transfer-bound one-token decode —
/// the split cost-aware routing is supposed to discover.
std::vector<AcceleratorSpec> mixed_demo_fleet();

/// The decode+prefill workload mix for that fleet: two one-token decode
/// shapes (dominant, coalesce well) and a 128-token prefill whose (K, N)
/// no decode entry shares — so the scheduler, not the batcher, arbitrates.
std::vector<GemmWorkload> mixed_fleet_mix();

/// Bursty traffic over that mix with a tight interactive decode SLO and a
/// loose batch-class prefill SLO — tuned so cost-aware routing meets the
/// decode budget that round-robin blows during bursts.
BurstyTraceConfig mixed_fleet_traffic(int num_requests = kMixedFleetRequests);

/// The canonical trace those knobs generate.
RequestQueue mixed_fleet_trace();

/// Pool configuration for the demo fleet under a given routing policy:
/// EDF scheduling with continuous admission, max_batch 8, max_wait 60000.
PoolConfig mixed_fleet_pool_config(RoutePolicy routing);

// ---- chunked prefill ---------------------------------------------------
// The head-of-line blocking scenario: a small pool, bursty one-token decode
// traffic with a tight interactive SLO, and a long 512-token prefill whose
// unchunked dispatch occupies a device for ~20 decode-batch lifetimes.
// EDF alone cannot save a decode batch that arrives just after a prefill
// dispatch — only splitting the prefill at tile boundaries bounds the
// blocking. The example enforces at runtime that chunked EDF beats
// unchunked EDF on p99 decode latency AND SLO attainment on exactly this
// trace; CI's BENCH_serve.json publishes the same scenario.

inline constexpr std::uint64_t kChunkedPrefillSeed = 7117;
inline constexpr int kChunkedPrefillRequests = 320;

/// Two identical 32x32 Axon members with 16 MiB weight caches — scarce
/// capacity on purpose, so an in-service prefill actually blocks decode.
std::vector<AcceleratorSpec> chunked_prefill_fleet();

/// Dominant one-token decode shapes plus a 512-token prefill on a distinct
/// (K, N) (so the batcher cannot coalesce it away and the scheduler must
/// arbitrate).
std::vector<GemmWorkload> chunked_prefill_mix();

/// Bursty arrivals with a tight decode SLO (interactive class 0) and a
/// loose prefill SLO (batch class 1) — tuned so chunked EDF meets the
/// decode budget that unchunked EDF blows whenever a burst lands on an
/// in-service prefill.
BurstyTraceConfig chunked_prefill_traffic(
    int num_requests = kChunkedPrefillRequests);

/// The canonical trace those knobs generate.
RequestQueue chunked_prefill_trace();

/// Pool configuration for the scenario under a given chunk policy: EDF +
/// continuous admission on the 2-member fleet, chunk_tiles 2 (64 rows of
/// M per chunk on the 32x32 OS-dataflow array).
PoolConfig chunked_prefill_pool_config(ChunkPolicy chunking);

}  // namespace axon::serve
