// Canonical serving scenarios shared by the examples, the bench binaries,
// and (via the bench smoke mode) CI's perf artifact — one definition, so
// the numbers the README describes, the example demos, and the
// BENCH_serve.json trajectory can never drift apart.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/pool.hpp"
#include "serve/request.hpp"

namespace axon::serve {

/// Canonical trace seed and size for the mixed-fleet scenario. The
/// example enforces the headline claim (cost-aware routing beats
/// round-robin on throughput AND SLO attainment) on exactly this trace at
/// runtime; CI's BENCH_serve.json publishes the same trace so the
/// artifact can never contradict the claim.
inline constexpr std::uint64_t kMixedFleetSeed = 2025;
inline constexpr int kMixedFleetRequests = 384;

/// The mixed-hardware demo fleet: 2x "big64x64" (64x64 Axon array at the
/// reference clock, 64 B/cycle DRAM) + 2x "hbm32x32" (32x32 array clocked
/// 2x, 256 B/cycle), each with a 16 MiB weight cache. `big` wins
/// compute-bound prefill, `hbm` wins transfer-bound one-token decode —
/// the split cost-aware routing is supposed to discover.
std::vector<AcceleratorSpec> mixed_demo_fleet();

/// The decode+prefill workload mix for that fleet: two one-token decode
/// shapes (dominant, coalesce well) and a 128-token prefill whose (K, N)
/// no decode entry shares — so the scheduler, not the batcher, arbitrates.
std::vector<GemmWorkload> mixed_fleet_mix();

/// Bursty traffic over that mix with a tight interactive decode SLO and a
/// loose batch-class prefill SLO — tuned so cost-aware routing meets the
/// decode budget that round-robin blows during bursts.
BurstyTraceConfig mixed_fleet_traffic(int num_requests = kMixedFleetRequests);

/// The canonical trace those knobs generate.
RequestQueue mixed_fleet_trace();

/// Pool configuration for the demo fleet under a given routing policy:
/// EDF scheduling with continuous admission, max_batch 8, max_wait 60000.
PoolConfig mixed_fleet_pool_config(RoutePolicy routing);

// ---- chunked prefill ---------------------------------------------------
// The head-of-line blocking scenario: a small pool, bursty one-token decode
// traffic with a tight interactive SLO, and a long 512-token prefill whose
// unchunked dispatch occupies a device for ~20 decode-batch lifetimes.
// EDF alone cannot save a decode batch that arrives just after a prefill
// dispatch — only splitting the prefill at tile boundaries bounds the
// blocking. The example enforces at runtime that chunked EDF beats
// unchunked EDF on p99 decode latency AND SLO attainment on exactly this
// trace; CI's BENCH_serve.json publishes the same scenario.

inline constexpr std::uint64_t kChunkedPrefillSeed = 7117;
inline constexpr int kChunkedPrefillRequests = 320;

/// Two identical 32x32 Axon members with 16 MiB weight caches — scarce
/// capacity on purpose, so an in-service prefill actually blocks decode.
std::vector<AcceleratorSpec> chunked_prefill_fleet();

/// Dominant one-token decode shapes plus a 512-token prefill on a distinct
/// (K, N) (so the batcher cannot coalesce it away and the scheduler must
/// arbitrate).
std::vector<GemmWorkload> chunked_prefill_mix();

/// Bursty arrivals with a tight decode SLO (interactive class 0) and a
/// loose prefill SLO (batch class 1) — tuned so chunked EDF meets the
/// decode budget that unchunked EDF blows whenever a burst lands on an
/// in-service prefill.
BurstyTraceConfig chunked_prefill_traffic(
    int num_requests = kChunkedPrefillRequests);

/// The canonical trace those knobs generate.
RequestQueue chunked_prefill_trace();

/// Pool configuration for the scenario under a given chunk policy: EDF +
/// continuous admission on the 2-member fleet, chunk_tiles 2 (64 rows of
/// M per chunk on the 32x32 OS-dataflow array).
PoolConfig chunked_prefill_pool_config(ChunkPolicy chunking);

// ---- serve scale -------------------------------------------------------
// The production-trace-size scenario: hundreds of thousands of mixed-SLO
// requests whose arrival rate outruns the fleet, so the ready queue grows
// thousands of batches deep — exactly the regime where the seed's linear
// ready-queue scans went quadratic (O(depth) per event) and the indexed
// serve core stays O(log depth). Both implementations produce bit-identical
// records on this trace (bench_serve_scale asserts it; serve_scale_test
// diffs a small variant, 1 vs 8 threads, under TSan); only host wall-clock
// differs. CI's BENCH_serve.json gates the simulated-cycle metrics of the
// full-size trace and reports wall_seconds informationally.

inline constexpr std::uint64_t kServeScaleSeed = 424242;
inline constexpr int kServeScaleRequests = 200000;

/// Four 32x32 Axon members with 16 MiB weight caches — enough capacity
/// that the backlog oscillates with the bursts instead of diverging
/// immediately, not enough to keep up inside a burst.
std::vector<AcceleratorSpec> serve_scale_fleet();

/// Dominant one-token decode shapes (tight interactive SLO, class 0) plus
/// a 256-token prefill on a distinct (K, N) (loose batch-class SLO) — the
/// mixed-SLO traffic the scheduler actually has to arbitrate at depth.
std::vector<GemmWorkload> serve_scale_mix();

/// Bursty arrivals tuned to oscillate the ready queue thousands of
/// batches deep at the canonical request count.
BurstyTraceConfig serve_scale_traffic(int num_requests = kServeScaleRequests);

/// The canonical trace those knobs generate (smaller sizes share the seed:
/// a prefix-like family for the scaling sweep).
RequestQueue serve_scale_trace(int num_requests = kServeScaleRequests);

/// The same trace as a streaming source: identical requests, ids, and
/// arrival cycles, but O(1) generator state instead of a materialized
/// deque — the form the 10^7-request sweep serves directly.
BurstyTraceSource serve_scale_source(int num_requests = kServeScaleRequests);

/// Pool configuration for the scenario: EDF + continuous admission +
/// deadline-aware chunking on the 4-member fleet, under the given
/// ready-queue implementation. `num_threads` only moves wall-clock.
PoolConfig serve_scale_pool_config(ReadyQueueImpl ready_queue,
                                   int num_threads = 1);

// ---- fleet contention --------------------------------------------------
// The shared-bandwidth scenario: four identical cache-less members split
// across two memory nodes whose DRAM budget covers ~1.5 concurrent weight
// streams, plus a one-hop fabric between the nodes. Every dispatch streams
// its weights, so co-locating two in-flight chunks on one node stretches
// both transfers ~1.33x — far more than the hop price of borrowing the
// other node. Congestion-blind least-cost routing cannot see the
// difference (identical devices tie, index order piles onto node 0);
// congestion-aware routing prices the live node demand and spreads. The
// example enforces at runtime that aware beats blind on SLO attainment on
// exactly this trace; CI's BENCH_serve.json publishes both variants.

inline constexpr std::uint64_t kFleetContentionSeed = 9090;
inline constexpr int kFleetContentionRequests = 384;

/// Four identical 32x32 Axon members with *no* weight cache — every
/// dispatch streams weights from DRAM, so node bandwidth is the contended
/// resource by construction.
std::vector<AcceleratorSpec> fleet_contention_fleet();

/// Two memory nodes of two members each, budget ~1.5 solo streams per
/// node, one fabric hop between them (ingress at node 0).
NodeTopology fleet_contention_topology();

/// Decode-dominant mix (transfer-bound on cache-less members) plus a
/// prefill on a distinct (K, N) so the scheduler must arbitrate.
std::vector<GemmWorkload> fleet_contention_mix();

/// Bursty arrivals with a decode SLO tuned to sit between the aware and
/// blind latency tails: aware routing meets it, blind blows it whenever a
/// burst piles two streams onto one node.
BurstyTraceConfig fleet_contention_traffic(
    int num_requests = kFleetContentionRequests);

/// The canonical trace those knobs generate.
RequestQueue fleet_contention_trace();

/// Pool configuration for the scenario: EDF + least-cost routing on the
/// 2-node fleet; `congestion_aware` selects whether the router sees node
/// demand (the arbiter charges real contention either way).
PoolConfig fleet_contention_pool_config(bool congestion_aware);

// ---- closed-loop feedback ----------------------------------------------
// The interactive-population scenario: a fixed client pool cycling
// think -> issue -> service -> think against a small fleet. In estimate
// mode each client re-issues a fixed service_estimate after issuing — the
// trace is seed-pure and can be materialized. With completion feedback the
// source blocks each client until the pool reports the request's *actual*
// completion cycle, so re-issue times track realized service: under
// saturation the offered load self-limits (never more than num_clients in
// flight) instead of piling arrivals onto a fleet that cannot keep up.
// serve_closed_loop_test pins the semantics; CI's BENCH_serve.json
// publishes both modes so the behavioural gap stays visible.

inline constexpr std::uint64_t kClosedLoopSeed = 60607;
inline constexpr int kClosedLoopRequests = 4096;
inline constexpr int kClosedLoopClients = 32;

/// Two 32x32 Axon members with 16 MiB weight caches — deliberately under-
/// provisioned for 32 clients, so estimate-mode arrivals outrun the fleet
/// while feedback mode self-limits.
std::vector<AcceleratorSpec> closed_loop_fleet();

/// One-token decode shapes only: the interactive traffic closed loops
/// model.
std::vector<GemmWorkload> closed_loop_mix();

/// The canonical client-population knobs; `completion_feedback` selects
/// estimate-based re-issue (materializable) vs. real-completion re-issue.
ClosedLoopTraceConfig closed_loop_traffic(
    bool completion_feedback, int num_requests = kClosedLoopRequests);

/// The canonical source those knobs generate (always streamed — feedback
/// mode cannot be materialized ahead of the simulation).
ClosedLoopTraceSource closed_loop_source(
    bool completion_feedback, int num_requests = kClosedLoopRequests);

/// Pool configuration for the scenario: FIFO + continuous admission on the
/// 2-member fleet. `num_threads` only moves wall-clock.
PoolConfig closed_loop_pool_config(int num_threads = 1);

// ---- prefill/decode disaggregation -------------------------------------
// The whole-network scenario: generation requests are two-stage chains
// (a 256-token prefill GEMM feeding a one-token decode GEMM over the
// fabric), sharing the fleet with a dominant stream of single-stage
// interactive decode requests under a tight SLO. The fleet is half
// prefill-shaped (big arrays, modest bandwidth) and half decode-shaped
// (small arrays clocked 2x with fat DRAM), split across two memory nodes.
// With StageAffinity::kNone the pools are *unified*: whenever both big
// arrays are mid-prefill, the router parks the next prefill stage on an
// idle decode member, which then blocks interactive decode for the whole
// dispatch — classic head-of-line blocking across classes. With kStrict
// the pools are *disaggregated*: prefill waits for a prefill member,
// decode members never serve anything else, and the decode tail tightens.
// The example enforces at runtime that the split fleet beats the unified
// one on decode p99 AND SLO attainment on exactly this trace; CI's
// BENCH_serve.json publishes both variants.

inline constexpr std::uint64_t kDisaggSeed = 31337;
inline constexpr int kDisaggRequests = 384;

/// 2x "prefill64x64" (64x64 array, 64 B/cycle, serves kPrefill, node 0) +
/// 2x "decode32x32" (32x32 clocked 2x, 256 B/cycle, serves kDecode,
/// node 1), all with 16 MiB weight caches. The `serves` tags only bind
/// under kStrict/kPreferred affinity — the unified run uses the *same*
/// hardware with the tags ignored, so the knob is the only difference.
std::vector<AcceleratorSpec> disagg_fleet();

/// Two memory nodes (prefill members on 0, decode members on 1) with
/// unlimited DRAM budgets — the fabric is here to price the activation
/// handoff between stages, not to add bandwidth contention on top.
NodeTopology disagg_topology();

/// Dominant single-stage decode shapes (length-1 kDecode chains) plus the
/// two-stage "gen" network: prefill {256, 768, 3072} (kPrefill) feeding
/// decode {1, 3072, 768} (kDecode) — both stages on (K, N) keys no
/// single-stage entry shares, so the batcher never mixes classes.
std::vector<GemmWorkload> disagg_mix();

/// Bursty arrivals; interactive decode carries the tight class-0 SLO the
/// scenario is scored on, "gen" a loose end-to-end batch budget.
BurstyTraceConfig disagg_traffic(int num_requests = kDisaggRequests);

/// The canonical trace those knobs generate.
RequestQueue disagg_trace();

/// Pool configuration for the scenario: EDF + least-cost on the split
/// fleet; `affinity` is the disaggregation knob (kNone = unified pools,
/// kStrict = disaggregated prefill/decode pools).
PoolConfig disagg_pool_config(StageAffinity affinity);

// ---- scenario registry -------------------------------------------------
// One named spec per canonical scenario. examples/serve_traffic, the bench
// binaries, and the scenario tests all resolve specs through this table,
// so a scenario's name, pool config, and trace can never drift apart
// across binaries — BENCH_serve.json rows and the example's sections are
// the same object by construction.

/// A fully-specified serve run: the pool configuration and a factory for
/// the canonical trace. `make_trace` returns a fresh source per call
/// (sources are stateful); callers copy `config` to override
/// presentation-only knobs such as num_threads or self_profile.
struct ScenarioSpec {
  std::string name;
  std::string summary;  ///< one line for listings
  PoolConfig config;
  std::function<std::unique_ptr<TraceSource>()> make_trace;
};

/// Looks up a scenario by name; AXON_CHECKs that it exists.
const ScenarioSpec& scenario(const std::string& name);

/// Every registered scenario name, in canonical (artifact) order.
const std::vector<std::string>& scenario_names();

}  // namespace axon::serve
