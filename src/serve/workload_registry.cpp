#include "serve/workload_registry.hpp"

#include "common/check.hpp"

namespace axon::serve {

WorkloadId WorkloadRegistry::intern(const std::string& name,
                                    const GemmShape& shape,
                                    const SloPolicy& slo) {
  AXON_CHECK(!name.empty(), "workload name must be non-empty");
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const WorkloadId id = static_cast<WorkloadId>(names_.size());
  names_.push_back(name);
  shapes_.push_back(shape);
  policies_.push_back(slo);
  ids_.emplace(name, id);
  return id;
}

WorkloadId WorkloadRegistry::id(const std::string& name) const {
  const auto it = ids_.find(name);
  AXON_CHECK(it != ids_.end(), "workload '", name, "' not interned");
  return it->second;
}

bool WorkloadRegistry::find(const std::string& name, WorkloadId* out) const {
  const auto it = ids_.find(name);
  if (it == ids_.end()) return false;
  *out = it->second;
  return true;
}

const std::string& WorkloadRegistry::name(WorkloadId id) const {
  AXON_CHECK(id < names_.size(), "workload id ", id, " out of range (",
             names_.size(), " interned)");
  return names_[id];
}

const GemmShape& WorkloadRegistry::shape(WorkloadId id) const {
  AXON_CHECK(id < shapes_.size(), "workload id ", id, " out of range");
  return shapes_[id];
}

const SloPolicy& WorkloadRegistry::slo(WorkloadId id) const {
  AXON_CHECK(id < policies_.size(), "workload id ", id, " out of range");
  return policies_[id];
}

}  // namespace axon::serve
