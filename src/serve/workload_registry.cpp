#include "serve/workload_registry.hpp"

#include "common/check.hpp"

namespace axon::serve {

const char* to_string(StageClass cls) {
  switch (cls) {
    case StageClass::kGeneral: return "general";
    case StageClass::kPrefill: return "prefill";
    case StageClass::kDecode: return "decode";
  }
  return "?";
}

WorkloadId WorkloadRegistry::intern(const std::string& name,
                                    const GemmShape& shape,
                                    const SloPolicy& slo) {
  return intern_chain(name, {{shape, StageClass::kGeneral}}, slo);
}

WorkloadId WorkloadRegistry::intern_chain(const std::string& name,
                                          const StageChain& chain,
                                          const SloPolicy& slo) {
  AXON_CHECK(!name.empty(), "workload name must be non-empty");
  AXON_CHECK(!chain.empty(), "workload '", name,
             "' must have at least one stage");
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const WorkloadId id = static_cast<WorkloadId>(names_.size());
  names_.push_back(name);
  shapes_.push_back(chain.front().gemm);
  policies_.push_back(slo);
  chains_.push_back(chain);
  ids_.emplace(name, id);
  multi_stage_ |= chain.size() > 1;
  return id;
}

WorkloadId WorkloadRegistry::id(const std::string& name) const {
  const auto it = ids_.find(name);
  AXON_CHECK(it != ids_.end(), "workload '", name, "' not interned");
  return it->second;
}

bool WorkloadRegistry::find(const std::string& name, WorkloadId* out) const {
  const auto it = ids_.find(name);
  if (it == ids_.end()) return false;
  *out = it->second;
  return true;
}

const std::string& WorkloadRegistry::name(WorkloadId id) const {
  AXON_CHECK(id < names_.size(), "workload id ", id, " out of range (",
             names_.size(), " interned)");
  return names_[id];
}

const GemmShape& WorkloadRegistry::shape(WorkloadId id) const {
  AXON_CHECK(id < shapes_.size(), "workload id ", id, " out of range");
  return shapes_[id];
}

const SloPolicy& WorkloadRegistry::slo(WorkloadId id) const {
  AXON_CHECK(id < policies_.size(), "workload id ", id, " out of range");
  return policies_[id];
}

const StageChain& WorkloadRegistry::chain(WorkloadId id) const {
  AXON_CHECK(id < chains_.size(), "workload id ", id, " out of range");
  return chains_[id];
}

std::size_t WorkloadRegistry::num_stages(WorkloadId id) const {
  return chain(id).size();
}

}  // namespace axon::serve
