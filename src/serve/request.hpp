// Inference serving, layer 1: timestamped requests and synthetic arrival
// traces. A Request is one inference call — a named GEMM, which is either a
// native GEMM workload (transformer projections, recommendation layers) or
// a conv layer lowered via im2col (workloads/convnets lowered_gemms). All
// trace randomness flows through common/rng, so a trace is reproducible
// from its seed and the whole serving simulation is deterministic.
//
// Traces are *streamed*, not materialized: a TraceSource is a pull-based
// generator the serve loop drains one request at a time, so a 10^7-request
// run holds O(clients) generator state instead of an 800 MB deque. The
// three arrival processes cover the realistic traffic shapes:
//   - open loop   (PoissonTraceSource): exponential gaps, rate fixed
//     regardless of how the fleet keeps up.
//   - bursty      (BurstyTraceSource): Markov-modulated on/off Poisson —
//     exponential dwell in an ON state that emits Poisson arrivals and an
//     OFF state that emits nothing. The diurnal-spike / thundering-herd
//     shape that makes SLO scheduling interesting.
//   - closed loop (ClosedLoopTraceSource): a fixed client population;
//     each client thinks (exponential), issues one request, and only
//     re-issues after its request completes. Load self-limits with
//     population size instead of growing without bound. Completion is
//     either a fixed per-request estimate (the seed-compatible default)
//     or, with `completion_feedback`, the *actual* completion cycle the
//     pool reports back through TraceSource::on_complete.
//
// RequestQueue survives as the materialized adapter (tests, oracles, and
// hand-built traces): generate_*_trace() drains a source into one,
// reproducing the exact request streams of the pre-streaming generators.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "serve/workload_registry.hpp"
#include "workloads/table3.hpp"

namespace axon::serve {

/// One inference request entering the system at a simulated cycle. A plain
/// value type: the workload travels as an interned WorkloadId (the owning
/// trace's registry maps it back to a name at render time).
struct Request {
  i64 id = 0;                ///< unique, increasing in arrival order
  WorkloadId workload = 0;   ///< interned workload name, for reports
  GemmShape gemm;            ///< the GEMM this request's current stage runs
  i64 arrival_cycle = 0;
  /// Absolute SLO deadline (arrival + per-workload budget); -1 = no SLO.
  i64 deadline_cycle = -1;
  /// Priority class; LOWER is more urgent (0 = interactive, 1 = batch, ...).
  int priority = 0;
  /// Stage index within the workload's StageChain. Trace sources always
  /// emit stage 0; the serve loop re-admits successors with stage k+1.
  std::uint16_t stage = 0;
  /// Scheduling class of the current stage (chain[stage].cls).
  StageClass stage_class = StageClass::kGeneral;

  [[nodiscard]] bool has_deadline() const { return deadline_cycle >= 0; }
};

/// Pull-based request stream the serve loop drains. The contract:
///   - next_arrival() is the arrival cycle of the next poppable request,
///     or -1 when none is schedulable *yet* — either the source is
///     exhausted, or (closed loop with feedback) every client is blocked
///     waiting for a completion. In the blocked case the serve loop always
///     has an in-flight completion event to advance to, after which
///     on_complete() unblocks the source.
///   - pop() is valid exactly when next_arrival() >= 0 and yields requests
///     in non-decreasing arrival order with ids increasing from 0.
///   - exhausted() means no request will *ever* be produced again; it is
///     the flush-vs-wait signal (a blocked feedback source is not
///     exhausted even though next_arrival() is -1).
///   - on_complete() is called by the pool once per request at retire,
///     carrying the simulated completion cycle; only feedback-wired
///     sources react.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  [[nodiscard]] virtual i64 next_arrival() const = 0;
  virtual Request pop() = 0;
  [[nodiscard]] virtual bool exhausted() const = 0;
  /// Total requests this source will emit (exact for every built-in
  /// source) — lets the pool pre-size record storage.
  [[nodiscard]] virtual std::size_t size_hint() const = 0;
  virtual void on_complete(i64 request_id, i64 completion_cycle) {
    (void)request_id;
    (void)completion_cycle;
  }
  /// The interning table for every WorkloadId this source emits.
  [[nodiscard]] virtual const WorkloadRegistry& registry() const = 0;
};

/// Arrival-ordered FIFO of requests: the materialized TraceSource. push()
/// enforces non-decreasing arrival cycles so the serving simulator can
/// treat the queue as a pre-sorted event stream. Owns its registry;
/// hand-built tests intern names through intern().
class RequestQueue final : public TraceSource {
 public:
  RequestQueue() = default;
  explicit RequestQueue(WorkloadRegistry registry)
      : registry_(std::move(registry)) {}

  void push(Request r);

  /// Interns a workload name in this queue's registry (idempotent) — the
  /// hand-building path for tests and ad-hoc traces.
  WorkloadId intern(const std::string& name, const GemmShape& shape = {},
                    const SloPolicy& slo = {}) {
    return registry_.intern(name, shape, slo);
  }

  /// Interns a multi-stage workload (hand-building path for stage tests).
  WorkloadId intern_chain(const std::string& name, const StageChain& chain,
                          const SloPolicy& slo = {}) {
    return registry_.intern_chain(name, chain, slo);
  }

  [[nodiscard]] bool empty() const { return requests_.empty(); }
  [[nodiscard]] std::size_t size() const { return requests_.size(); }
  [[nodiscard]] const Request& front() const;

  // TraceSource interface.
  [[nodiscard]] i64 next_arrival() const override;
  Request pop() override;
  [[nodiscard]] bool exhausted() const override { return requests_.empty(); }
  [[nodiscard]] std::size_t size_hint() const override { return size(); }
  [[nodiscard]] const WorkloadRegistry& registry() const override {
    return registry_;
  }

 private:
  WorkloadRegistry registry_;
  std::deque<Request> requests_;
};

/// Per-workload SLO/priority assignment used by every trace generator:
/// exact workload-name matches win, everything else gets the default.
/// This is the *configuration* surface; sources compile it into the
/// registry at construction so the per-request path never probes the map.
struct TrafficClassMap {
  SloPolicy default_policy;
  std::map<std::string, SloPolicy> per_workload;
  /// Multi-stage networks by workload name: a mix entry whose name appears
  /// here interns the chain instead of a length-1 wrapper. The chain's
  /// first stage must match the mix entry's GEMM (that is the shape the
  /// generators stamp on arriving requests).
  std::map<std::string, StageChain> chains;

  [[nodiscard]] const SloPolicy& for_workload(const std::string& name) const;
};

/// Synthetic open-loop traffic: request count, Poisson-style arrivals
/// (exponential inter-arrival gaps with the given mean), and a uniform
/// draw over the workload mix per request.
struct TraceConfig {
  int num_requests = 64;
  double mean_interarrival_cycles = 2000.0;
  TrafficClassMap classes;
};

/// Markov-modulated on/off Poisson process: ON emits Poisson arrivals at
/// the burst rate, OFF emits nothing; dwell times in each state are
/// exponential. Long-run average rate is on_fraction / burst gap where
/// on_fraction = mean_on / (mean_on + mean_off).
struct BurstyTraceConfig {
  int num_requests = 64;
  double burst_interarrival_cycles = 500.0;  ///< mean gap while ON
  double mean_on_cycles = 50000.0;           ///< exponential ON dwell
  double mean_off_cycles = 150000.0;         ///< exponential OFF dwell
  TrafficClassMap classes;
};

/// Closed-loop traffic: `num_clients` clients each cycle through
/// think -> issue -> (service) -> think. By default the service phase uses
/// a fixed per-request estimate, so the trace is a pure function of the
/// seed (the generator can run ahead of the simulation). With
/// `completion_feedback` the source instead blocks each client until the
/// pool reports the request's real completion cycle via on_complete(), so
/// re-issue times track actual service — at the cost of the trace now
/// depending on the pool configuration (it is still deterministic for a
/// fixed pool config and thread count, per the simulator's contract).
struct ClosedLoopTraceConfig {
  int num_requests = 64;
  int num_clients = 8;
  double mean_think_cycles = 20000.0;
  double service_estimate_cycles = 5000.0;  ///< completion stand-in
  /// Re-issue on real completion cycles instead of the estimate.
  bool completion_feedback = false;
  TrafficClassMap classes;
};

namespace detail {

/// Shared generator machinery: the interned mix table (workload draw ->
/// id/shape/SLO without a map probe) and the owned RNG whose draw order
/// exactly matches the historical materializing generators.
class GeneratorSourceBase : public TraceSource {
 public:
  [[nodiscard]] const WorkloadRegistry& registry() const override {
    return registry_;
  }
  /// RNG state after all draws so far — the materializing adapters copy
  /// this back into the caller's Rng to preserve the old `Rng&` contract.
  [[nodiscard]] const Rng& rng() const { return rng_; }

 protected:
  GeneratorSourceBase(const std::vector<GemmWorkload>& mix,
                      const TrafficClassMap& classes, const Rng& rng,
                      int num_requests);

  /// Draws the workload for request `id` issued at continuous cycle
  /// `when` and stamps id/arrival/deadline/priority. One uniform draw,
  /// O(1) — the SLO lookup is a precomputed vector index.
  Request make_request(i64 id, double when);
  /// Exponential draw with the given mean from the owned RNG.
  double exponential(double mean);

  Rng rng_;
  int num_requests_ = 0;
  i64 popped_ = 0;

 private:
  struct MixEntry {
    WorkloadId workload;
    GemmShape gemm;
    i64 slo_budget_cycles;
    int priority;
    StageClass cls0;  ///< class of stage 0, stamped on the request
  };
  WorkloadRegistry registry_;
  std::vector<MixEntry> mix_;
};

}  // namespace detail

/// Open-loop Poisson arrivals, streamed.
class PoissonTraceSource final : public detail::GeneratorSourceBase {
 public:
  PoissonTraceSource(const std::vector<GemmWorkload>& mix,
                     const TraceConfig& config, const Rng& rng);

  [[nodiscard]] i64 next_arrival() const override;
  Request pop() override;
  [[nodiscard]] bool exhausted() const override {
    return popped_ == num_requests_;
  }
  [[nodiscard]] std::size_t size_hint() const override {
    return static_cast<std::size_t>(num_requests_);
  }

 private:
  void advance();

  double interarrival_;
  double now_ = 0.0;
  Request pending_;
};

/// Markov-modulated on/off Poisson arrivals, streamed.
class BurstyTraceSource final : public detail::GeneratorSourceBase {
 public:
  BurstyTraceSource(const std::vector<GemmWorkload>& mix,
                    const BurstyTraceConfig& config, const Rng& rng);

  [[nodiscard]] i64 next_arrival() const override;
  Request pop() override;
  [[nodiscard]] bool exhausted() const override {
    return popped_ == num_requests_;
  }
  [[nodiscard]] std::size_t size_hint() const override {
    return static_cast<std::size_t>(num_requests_);
  }

 private:
  void advance();

  double burst_gap_;
  double mean_on_;
  double mean_off_;
  double now_ = 0.0;
  double state_end_;
  Request pending_;
};

/// Closed-loop client population, streamed. In estimate mode requests
/// pre-generate one ahead (the stream is seed-pure). In feedback mode a
/// client that has issued is *blocked* until on_complete() reports its
/// request's completion cycle; while every client is blocked,
/// next_arrival() is -1 and the serve loop advances on completions.
class ClosedLoopTraceSource final : public detail::GeneratorSourceBase {
 public:
  ClosedLoopTraceSource(const std::vector<GemmWorkload>& mix,
                        const ClosedLoopTraceConfig& config, const Rng& rng);

  [[nodiscard]] i64 next_arrival() const override;
  Request pop() override;
  [[nodiscard]] bool exhausted() const override {
    return popped_ == num_requests_;
  }
  [[nodiscard]] std::size_t size_hint() const override {
    return static_cast<std::size_t>(num_requests_);
  }
  void on_complete(i64 request_id, i64 completion_cycle) override;

  /// Requests issued and not yet completed (feedback mode); the invariant
  /// under test: never exceeds num_clients.
  [[nodiscard]] std::size_t in_flight() const { return in_flight_.size(); }

 private:
  /// Lowest-issue-time unblocked client (ties: lowest client id), or -1
  /// when every client is blocked on a completion.
  [[nodiscard]] int next_client() const;

  double service_estimate_;
  double mean_think_;
  bool feedback_;
  std::vector<double> next_issue_;   ///< per client; continuous cycles
  std::vector<char> blocked_;        ///< per client (feedback mode)
  struct InFlight {
    int client;
    double when;       ///< continuous issue time
    i64 arrival;       ///< llround(when), as stamped on the request
    double think;      ///< pre-drawn think for the *next* issue
  };
  std::unordered_map<i64, InFlight> in_flight_;  ///< request id -> state
};

/// Materializing adapters: drain a streamed source into a RequestQueue.
/// Same mix + config + rng seed => the same requests, ids, and arrival
/// cycles as the streamed path (and as the historical generators); the
/// caller's Rng advances exactly as before. The closed-loop adapter
/// requires estimate mode (feedback cannot be materialized ahead of the
/// simulation).
RequestQueue generate_trace(const std::vector<GemmWorkload>& mix,
                            const TraceConfig& config, Rng& rng);
RequestQueue generate_bursty_trace(const std::vector<GemmWorkload>& mix,
                                   const BurstyTraceConfig& config, Rng& rng);
RequestQueue generate_closed_loop_trace(const std::vector<GemmWorkload>& mix,
                                        const ClosedLoopTraceConfig& config,
                                        Rng& rng);

/// Serving mixes used by the examples/bench sweeps.
/// ResNet50 conv layers lowered to their im2col GEMMs.
std::vector<GemmWorkload> resnet50_serve_mix();
/// BERT-base encoder GEMMs at sequence length 384.
std::vector<GemmWorkload> transformer_serve_mix();
/// One-token transformer decode projections in activations-as-A form
/// (M = 1 token, N = output features): every request is transfer-bound on
/// its K*N weight matrix, the canonical dynamic-batching workload —
/// M-concatenation amortizes the weight stream across users.
std::vector<GemmWorkload> decode_serve_mix();
/// Union of ResNet50 and BERT: the heterogeneous-fleet scenario.
std::vector<GemmWorkload> mixed_serve_mix();

}  // namespace axon::serve
