// Inference serving, layer 1: timestamped requests and synthetic arrival
// traces. A Request is one inference call — a named GEMM, which is either a
// native GEMM workload (transformer projections, recommendation layers) or
// a conv layer lowered via im2col (workloads/convnets lowered_gemms). All
// trace randomness flows through common/rng, so a trace is reproducible
// from its seed and the whole serving simulation is deterministic.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workloads/table3.hpp"

namespace axon::serve {

/// One inference request entering the system at a simulated cycle.
struct Request {
  i64 id = 0;            ///< unique, increasing in arrival order
  std::string workload;  ///< workload name, for reports
  GemmShape gemm;        ///< the GEMM this request executes
  i64 arrival_cycle = 0;
};

/// Arrival-ordered FIFO of requests. push() enforces non-decreasing
/// arrival cycles so the serving simulator can treat the queue as a
/// pre-sorted event stream.
class RequestQueue {
 public:
  void push(Request r);

  [[nodiscard]] bool empty() const { return requests_.empty(); }
  [[nodiscard]] std::size_t size() const { return requests_.size(); }
  [[nodiscard]] const Request& front() const;
  /// Cycle the next request arrives; only valid when !empty().
  [[nodiscard]] i64 next_arrival() const;
  Request pop();

 private:
  std::deque<Request> requests_;
};

/// Synthetic open-loop traffic: request count, Poisson-style arrivals
/// (exponential inter-arrival gaps with the given mean), and a uniform
/// draw over the workload mix per request.
struct TraceConfig {
  int num_requests = 64;
  double mean_interarrival_cycles = 2000.0;
};

/// Generates a deterministic trace: same mix + config + rng seed => the
/// same requests, ids, and arrival cycles.
RequestQueue generate_trace(const std::vector<GemmWorkload>& mix,
                            const TraceConfig& config, Rng& rng);

/// Serving mixes used by the examples/bench sweeps.
/// ResNet50 conv layers lowered to their im2col GEMMs.
std::vector<GemmWorkload> resnet50_serve_mix();
/// BERT-base encoder GEMMs at sequence length 384.
std::vector<GemmWorkload> transformer_serve_mix();
/// One-token transformer decode projections in activations-as-A form
/// (M = 1 token, N = output features): every request is transfer-bound on
/// its K*N weight matrix, the canonical dynamic-batching workload —
/// M-concatenation amortizes the weight stream across users.
std::vector<GemmWorkload> decode_serve_mix();
/// Union of ResNet50 and BERT: the heterogeneous-fleet scenario.
std::vector<GemmWorkload> mixed_serve_mix();

}  // namespace axon::serve
