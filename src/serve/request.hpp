// Inference serving, layer 1: timestamped requests and synthetic arrival
// traces. A Request is one inference call — a named GEMM, which is either a
// native GEMM workload (transformer projections, recommendation layers) or
// a conv layer lowered via im2col (workloads/convnets lowered_gemms). All
// trace randomness flows through common/rng, so a trace is reproducible
// from its seed and the whole serving simulation is deterministic.
//
// Three arrival processes cover the realistic traffic shapes:
//   - open loop   (generate_trace): Poisson — exponential gaps, rate fixed
//     regardless of how the fleet keeps up.
//   - bursty      (generate_bursty_trace): Markov-modulated on/off Poisson —
//     exponential dwell in an ON state that emits Poisson arrivals and an
//     OFF state that emits nothing. The diurnal-spike / thundering-herd
//     shape that makes SLO scheduling interesting.
//   - closed loop (generate_closed_loop_trace): a fixed client population;
//     each client thinks (exponential), issues one request, and only
//     re-issues after its request would have completed. Load self-limits
//     with population size instead of growing without bound.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workloads/table3.hpp"

namespace axon::serve {

/// One inference request entering the system at a simulated cycle.
struct Request {
  i64 id = 0;            ///< unique, increasing in arrival order
  std::string workload;  ///< workload name, for reports
  GemmShape gemm;        ///< the GEMM this request executes
  i64 arrival_cycle = 0;
  /// Absolute SLO deadline (arrival + per-workload budget); -1 = no SLO.
  i64 deadline_cycle = -1;
  /// Priority class; LOWER is more urgent (0 = interactive, 1 = batch, ...).
  int priority = 0;

  [[nodiscard]] bool has_deadline() const { return deadline_cycle >= 0; }
};

/// Arrival-ordered FIFO of requests. push() enforces non-decreasing
/// arrival cycles so the serving simulator can treat the queue as a
/// pre-sorted event stream.
class RequestQueue {
 public:
  void push(Request r);

  [[nodiscard]] bool empty() const { return requests_.empty(); }
  [[nodiscard]] std::size_t size() const { return requests_.size(); }
  [[nodiscard]] const Request& front() const;
  /// Cycle the next request arrives; only valid when !empty().
  [[nodiscard]] i64 next_arrival() const;
  Request pop();

 private:
  std::deque<Request> requests_;
};

/// SLO budget + priority class assigned to requests of one workload.
struct SloPolicy {
  i64 slo_budget_cycles = -1;  ///< deadline = arrival + budget; -1 = no SLO
  int priority = 0;            ///< lower = more urgent
};

/// Per-workload SLO/priority assignment used by every trace generator:
/// exact workload-name matches win, everything else gets the default.
struct TrafficClassMap {
  SloPolicy default_policy;
  std::map<std::string, SloPolicy> per_workload;

  [[nodiscard]] const SloPolicy& for_workload(const std::string& name) const;
};

/// Synthetic open-loop traffic: request count, Poisson-style arrivals
/// (exponential inter-arrival gaps with the given mean), and a uniform
/// draw over the workload mix per request.
struct TraceConfig {
  int num_requests = 64;
  double mean_interarrival_cycles = 2000.0;
  TrafficClassMap classes;
};

/// Generates a deterministic trace: same mix + config + rng seed => the
/// same requests, ids, and arrival cycles.
RequestQueue generate_trace(const std::vector<GemmWorkload>& mix,
                            const TraceConfig& config, Rng& rng);

/// Markov-modulated on/off Poisson process: ON emits Poisson arrivals at
/// the burst rate, OFF emits nothing; dwell times in each state are
/// exponential. Long-run average rate is on_fraction / burst gap where
/// on_fraction = mean_on / (mean_on + mean_off).
struct BurstyTraceConfig {
  int num_requests = 64;
  double burst_interarrival_cycles = 500.0;  ///< mean gap while ON
  double mean_on_cycles = 50000.0;           ///< exponential ON dwell
  double mean_off_cycles = 150000.0;         ///< exponential OFF dwell
  TrafficClassMap classes;
};

RequestQueue generate_bursty_trace(const std::vector<GemmWorkload>& mix,
                                   const BurstyTraceConfig& config, Rng& rng);

/// Closed-loop traffic: `num_clients` clients each cycle through
/// think -> issue -> (service) -> think. The generator runs ahead of the
/// serving simulation, so the service phase uses a fixed per-request
/// estimate as the completion-feedback stand-in; the think draw is
/// exponential. Offered load self-limits at num_clients concurrent
/// requests — the canonical alternative to open-loop overload.
struct ClosedLoopTraceConfig {
  int num_requests = 64;
  int num_clients = 8;
  double mean_think_cycles = 20000.0;
  double service_estimate_cycles = 5000.0;  ///< completion stand-in
  TrafficClassMap classes;
};

RequestQueue generate_closed_loop_trace(const std::vector<GemmWorkload>& mix,
                                        const ClosedLoopTraceConfig& config,
                                        Rng& rng);

/// Serving mixes used by the examples/bench sweeps.
/// ResNet50 conv layers lowered to their im2col GEMMs.
std::vector<GemmWorkload> resnet50_serve_mix();
/// BERT-base encoder GEMMs at sequence length 384.
std::vector<GemmWorkload> transformer_serve_mix();
/// One-token transformer decode projections in activations-as-A form
/// (M = 1 token, N = output features): every request is transfer-bound on
/// its K*N weight matrix, the canonical dynamic-batching workload —
/// M-concatenation amortizes the weight stream across users.
std::vector<GemmWorkload> decode_serve_mix();
/// Union of ResNet50 and BERT: the heterogeneous-fleet scenario.
std::vector<GemmWorkload> mixed_serve_mix();

}  // namespace axon::serve
