// Inference serving, layer 2: dynamic batching. Requests whose GEMMs share
// (K, N) — same weights, different inputs — coalesce into one batched GEMM
// by concatenating along M, the classic serving trick: the batch runs as a
// single scale-up GEMM, amortizing array fill/drain and ragged edge tiles
// across the members (model/runtime_model batched_gemm_cycles prices it).
//
// A batch closes when it reaches `max_batch` members or when its oldest
// member has waited `max_wait_cycles` — the standard throughput/latency
// knob pair. The batcher is a pure simulated-time state machine: admit()
// and pop_ready() take the current cycle, nothing here knows about threads.
#pragma once

#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "serve/request.hpp"

namespace axon::serve {

struct BatchPolicy {
  int max_batch = 8;           ///< close when this many requests coalesce
  i64 max_wait_cycles = 4096;  ///< close when the oldest member waited this
};

/// A closed batch: members share (K, N); the merged GEMM concatenates
/// their Ms.
struct Batch {
  std::vector<Request> requests;
  GemmShape gemm;       ///< M = sum of member Ms
  i64 ready_cycle = 0;  ///< simulated cycle the batch closed
  [[nodiscard]] int size() const { return static_cast<int>(requests.size()); }
};

class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatchPolicy policy);

  /// Admits a request at simulated cycle `now` (>= r.arrival_cycle; the
  /// serving loop admits on arrival). May close a batch (max_batch hit).
  void admit(Request r, i64 now);

  /// Closes every open group whose deadline (oldest admit + max_wait) has
  /// passed, then returns all closed batches in deterministic FIFO order
  /// (ready cycle, then first member id).
  std::vector<Batch> pop_ready(i64 now);

  /// Closes and returns everything still open — used when the trace ends
  /// and no further arrivals can fill the groups.
  std::vector<Batch> flush(i64 now);

  /// Earliest future cycle at which an open group times out, or -1 when no
  /// group is open. The serving loop uses this as a DES event source.
  [[nodiscard]] i64 next_timeout() const;

  [[nodiscard]] std::size_t open_requests() const;
  [[nodiscard]] bool idle() const { return open_.empty() && ready_.empty(); }

 private:
  struct Group {
    std::vector<Request> members;
    i64 oldest_admit = 0;
  };
  using Key = std::pair<i64, i64>;  ///< (K, N)

  void close_group(Group&& group, i64 ready_cycle);

  BatchPolicy policy_;
  std::map<Key, Group> open_;  ///< ordered => deterministic iteration
  std::deque<Batch> ready_;
};

}  // namespace axon::serve
