// Inference serving, layer 2: dynamic batching. Requests whose GEMMs share
// (K, N) — same weights, different inputs — coalesce into one batched GEMM
// by concatenating along M, the classic serving trick: the batch runs as a
// single scale-up GEMM, amortizing array fill/drain and ragged edge tiles
// across the members (model/runtime_model batched_gemm_cycles prices it).
//
// A batch closes when it reaches `max_batch` members or when its oldest
// member has waited `max_wait_cycles` — the standard throughput/latency
// knob pair. The batcher is a pure simulated-time state machine: admit()
// and pop_ready() take the current cycle, nothing here knows about threads.
#pragma once

#include <deque>
#include <map>
#include <queue>
#include <tuple>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "serve/request.hpp"

namespace axon::serve {

struct BatchPolicy {
  int max_batch = 8;           ///< close when this many requests coalesce
  i64 max_wait_cycles = 4096;  ///< close when the oldest member waited this
  /// Continuous admission: the pool may close a partially filled group
  /// early when an accelerator would otherwise idle (it ranks open groups
  /// against ready batches via open_views()/close_open), and late
  /// same-(K, N) arrivals join a closed-but-undispatched batch
  /// (Batch::absorb) instead of starting a fresh group. Decode-style
  /// one-token requests stop waiting out max_wait when capacity is free.
  bool continuous_admission = false;
};

/// One admitted member of a batch. The request's immutable fields
/// (workload, shape, arrival, deadline, priority) were written to the
/// report's columnar record store at admission; `row` is that record's
/// index, all the retire path needs to finish the record in place. Only
/// the id rides along — scheduling tie-breaks and completion feedback key
/// on it. Keeping members at 16 bytes is what bounds a 10^7-request
/// backlog: a saturated trace holds most of its requests inside queued
/// batches at peak, so member size — not trace size — is the memory knob.
struct BatchMember {
  i64 id = 0;
  std::uint32_t row = 0;
  /// Stage index of the member's request within its workload's chain
  /// (0 for all single-stage traffic) — the retire path needs it to admit
  /// the successor stage. Rides in what was padding: still 16 bytes.
  std::uint16_t stage = 0;
};

/// A closed batch: members share (K, N) and stage class; the merged GEMM
/// concatenates their Ms.
struct Batch {
  std::vector<BatchMember> members;
  GemmShape gemm;       ///< M = sum of member Ms
  /// Stage class shared by every member — part of the grouping key, so
  /// prefill-class and decode-class stages never coalesce even on a
  /// shared (K, N), and StageAffinity routing can steer whole batches.
  StageClass stage_class = StageClass::kGeneral;
  i64 open_cycle = 0;   ///< simulated cycle its group took its first member
  i64 ready_cycle = 0;  ///< simulated cycle the batch closed
  /// Earliest member deadline, or -1 when no member has an SLO — the key
  /// earliest-deadline-first scheduling sorts by.
  i64 earliest_deadline = -1;
  /// Most urgent (numerically lowest) member priority class.
  int top_priority = 0;

  /// Chunked-dispatch progress (serve/pool ChunkPolicy): rows of the
  /// merged M already executed as earlier chunks. A batch with
  /// m_executed > 0 is partially in service — its membership is frozen
  /// (absorb() rejects it) and only its remaining rows are schedulable.
  i64 m_executed = 0;
  /// Cycle the first chunk dispatched; -1 = not yet in service.
  i64 first_dispatch_cycle = -1;
  int chunks_run = 0;             ///< chunk dispatches executed so far
  /// Fleet cycles of service received so far (sum of retired-chunk
  /// durations). What per-request latency breakdowns split out of
  /// completion - first dispatch: the remainder is time spent blocked
  /// between chunks (preempted or waiting for a device).
  i64 service_cycles = 0;

  [[nodiscard]] int size() const { return static_cast<int>(members.size()); }
  /// Rows of the merged M still to execute.
  [[nodiscard]] i64 remaining_m() const { return gemm.M - m_executed; }
  /// The GEMM the next dispatch would run if it took all remaining rows.
  [[nodiscard]] GemmShape remaining_gemm() const {
    return {remaining_m(), gemm.K, gemm.N};
  }

  /// Adds a late same-(K, N) arrival to a not-yet-dispatched batch,
  /// extending the merged M and tightening deadline/priority aggregates.
  /// `row` is the arrival's already-written record row. Rejects
  /// (AXON_CHECK) a batch that already executed a chunk: members of a
  /// partially executed batch complete together, so admitting into one
  /// would retroactively grow work that is already priced and partly
  /// done.
  void absorb(const Request& r, std::uint32_t row = 0);
};

class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatchPolicy policy);

  /// Admits a request at simulated cycle `now` (>= r.arrival_cycle; the
  /// serving loop admits on arrival). `row` is the record-store row the
  /// pool wrote for this request at admission (standalone batcher tests
  /// leave it 0). May close a batch (max_batch hit).
  void admit(const Request& r, i64 now, std::uint32_t row = 0);

  /// Closes every open group whose deadline (oldest admit + max_wait) has
  /// passed, then returns all closed batches in deterministic FIFO order
  /// (ready cycle, then first member id).
  std::vector<Batch> pop_ready(i64 now);

  /// Closes and returns everything still open — used when the trace ends
  /// and no further arrivals can fill the groups.
  std::vector<Batch> flush(i64 now);

  /// Scheduler-visible aggregates of one still-open group, so the pool can
  /// apply its policy (priority classes, EDF, SJF) when deciding which
  /// partial group an idle accelerator should take under continuous
  /// admission. Heterogeneous fleets price the same view per candidate
  /// device (merged_gemm() against each member's cost model + weight-cache
  /// state), so one view serves every per-device admission decision.
  struct OpenGroupView {
    i64 K = 0;                   ///< group key
    i64 N = 0;
    StageClass cls = StageClass::kGeneral;  ///< group key (stage class)
    i64 merged_m = 0;            ///< sum of member Ms (for cost estimates)
    i64 oldest_admit = 0;
    i64 earliest_deadline = -1;  ///< min member deadline, -1 when none
    int top_priority = 0;        ///< most urgent member class
    int size = 0;

    /// The GEMM this group would run if closed now — what per-device cost
    /// models price.
    [[nodiscard]] GemmShape merged_gemm() const { return {merged_m, K, N}; }
  };

  /// Views of every open group, in (K, N, class) key order (deterministic).
  /// Aggregates are maintained incrementally at admit time, so this is a
  /// copy of per-group scalars — O(open groups), never O(open requests).
  [[nodiscard]] std::vector<OpenGroupView> open_views() const;

  /// Closes and returns the open group with the given key; requires that
  /// such a group exists (take the key from open_views()).
  Batch close_open(i64 K, i64 N, StageClass cls, i64 now);

  [[nodiscard]] bool has_open() const { return !open_.empty(); }

  /// Earliest future cycle at which an open group times out, or -1 when no
  /// group is open. The serving loop uses this as a DES event source.
  /// O(log groups) amortized via the timeout calendar (stale entries for
  /// already-closed groups are discarded lazily as they surface).
  [[nodiscard]] i64 next_timeout() const;

  [[nodiscard]] std::size_t open_requests() const;
  /// Groups still forming — the "open groups" counter track observability
  /// samples once per serve-loop event.
  [[nodiscard]] std::size_t open_groups() const { return open_.size(); }
  [[nodiscard]] bool idle() const { return open_.empty() && ready_.empty(); }

 private:
  struct Group {
    std::vector<BatchMember> members;
    i64 oldest_admit = 0;
    // Scheduler-visible aggregates, folded in per admit so views and
    // timeout queries never re-walk the member list.
    i64 merged_m = 0;
    i64 earliest_deadline = -1;
    int top_priority = 0;
  };
  using Key = std::tuple<i64, i64, StageClass>;  ///< (K, N, stage class)

  /// Timeout-calendar entry for one group *instance*. A group closes by
  /// max_batch / timeout / continuous admission without touching the
  /// calendar; its entry goes stale and is discarded when it surfaces.
  /// `oldest_admit` identifies the instance: a later group under the same
  /// (K, N) key has a different (never smaller) oldest_admit.
  struct Timeout {
    i64 deadline = 0;  ///< oldest_admit + max_wait_cycles
    Key key;
    i64 oldest_admit = 0;
  };
  struct TimeoutLater {
    bool operator()(const Timeout& a, const Timeout& b) const {
      return a.deadline > b.deadline;
    }
  };

  /// Builds the closed Batch for a group; callers decide where it goes
  /// (ready_ for timeout/max-batch closes, straight to the pool for
  /// continuous-admission closes).
  static Batch close_group(const Key& key, Group&& group, i64 ready_cycle);

  /// Drops stale calendar tops; the surviving top (if any) names a live
  /// group. Const because next_timeout() is a pure query of simulated
  /// state — the calendar is a mutable implementation detail.
  void prune_timeouts() const;

  BatchPolicy policy_;
  std::map<Key, Group> open_;  ///< ordered => deterministic iteration
  mutable std::priority_queue<Timeout, std::vector<Timeout>, TimeoutLater>
      timeouts_;
  std::deque<Batch> ready_;
};

}  // namespace axon::serve
