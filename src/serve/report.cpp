#include "serve/report.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <tuple>

#include "common/check.hpp"
#include "common/table.hpp"
#include "serve/request.hpp"

namespace axon::serve {

void RecordStore::reserve(std::size_t n) {
  // Per-request columns only: the batch table is ~an order of magnitude
  // smaller and amortized growth is fine there.
  workload_.reserve(n);
  gemm_id_.reserve(n);
  arrival_cycle_.reserve(n);
  deadline_cycle_.reserve(n);
  priority_.reserve(n);
  batch_ref_.reserve(n);
}

void RecordStore::materialize_ids() {
  id_.resize(size());
  for (std::size_t i = 0; i < id_.size(); ++i) {
    id_[i] = static_cast<i64>(i);
  }
  ids_implicit_ = false;
}

void RecordStore::push_back(const RequestRecord& r) {
  // The general row-at-a-time path (tests, hand-built reports): each
  // record gets its own batch table entry. Only the streaming
  // push_admitted/push_batch path shares batch rows — correctness never
  // depends on the sharing, only memory does.
  const std::uint32_t batch =
      push_batch(r.batch_ready_cycle, r.dispatch_cycle, r.completion_cycle,
                 r.service_cycles, r.batch_size, r.batch_chunks,
                 r.accelerator);
  if (ids_implicit_ && r.id != static_cast<i64>(size())) materialize_ids();
  if (!ids_implicit_) id_.push_back(r.id);
  workload_.push_back(r.workload);
  gemm_id_.push_back(intern_shape(r.gemm));
  arrival_cycle_.push_back(r.arrival_cycle);
  deadline_cycle_.push_back(r.deadline_cycle);
  AXON_CHECK(r.priority >= std::numeric_limits<std::int16_t>::min() &&
                 r.priority <= std::numeric_limits<std::int16_t>::max(),
             "priority ", r.priority, " out of record-column range");
  priority_.push_back(static_cast<std::int16_t>(r.priority));
  batch_ref_.push_back(batch);
  if (r.stage_count > 1 || has_stage_columns_) {
    const auto row = static_cast<std::uint32_t>(size() - 1);
    complete_stages(row, r.stage_count, r.handoff_cycles, r.agg_batch_wait,
                    r.agg_queue_wait, r.agg_service, r.agg_preempt);
  }
}

std::uint32_t RecordStore::intern_shape(const GemmShape& shape) {
  const auto key = std::make_tuple(shape.M, shape.K, shape.N);
  auto it = shape_ids_.find(key);
  if (it == shape_ids_.end()) {
    const auto gid = static_cast<std::uint32_t>(shapes_.size());
    shapes_.push_back(shape);
    it = shape_ids_.emplace(key, gid).first;
  }
  return it->second;
}

std::uint32_t RecordStore::push_admitted(const Request& r) {
  AXON_CHECK(r.priority >= std::numeric_limits<std::int16_t>::min() &&
                 r.priority <= std::numeric_limits<std::int16_t>::max(),
             "priority ", r.priority, " out of record-column range");
  AXON_CHECK(size() < kUnsetBatch, "record store row index overflow");
  const auto row = static_cast<std::uint32_t>(size());
  if (ids_implicit_ && r.id != static_cast<i64>(row)) materialize_ids();
  if (!ids_implicit_) id_.push_back(r.id);
  workload_.push_back(r.workload);
  gemm_id_.push_back(intern_shape(r.gemm));
  arrival_cycle_.push_back(r.arrival_cycle);
  deadline_cycle_.push_back(r.deadline_cycle);
  priority_.push_back(static_cast<std::int16_t>(r.priority));
  // The batch link stays unset until complete_row(); rows land in
  // admission order and finalize() re-sorts by id, so the external record
  // order is unchanged.
  batch_ref_.push_back(kUnsetBatch);
  // Once any multi-stage row materialized the stage columns, keep them
  // parallel (defaults for single-stage rows).
  if (has_stage_columns_) materialize_stage_columns();
  return row;
}

void RecordStore::materialize_stage_columns() {
  has_stage_columns_ = true;
  stage_count_.resize(size(), 1);
  handoff_cycles_.resize(size(), 0);
  agg_batch_wait_.resize(size(), 0);
  agg_queue_wait_.resize(size(), 0);
  agg_service_.resize(size(), 0);
  agg_preempt_.resize(size(), 0);
}

void RecordStore::complete_stages(std::uint32_t row, int stage_count,
                                  i64 handoff_cycles, i64 agg_batch_wait,
                                  i64 agg_queue_wait, i64 agg_service,
                                  i64 agg_preempt) {
  AXON_CHECK(row < size(), "complete_stages(", row, ") out of range (",
             size(), " records)");
  AXON_CHECK(stage_count >= 1 &&
                 stage_count <= std::numeric_limits<std::uint16_t>::max(),
             "stage_count ", stage_count, " out of record-column range");
  materialize_stage_columns();
  stage_count_[row] = static_cast<std::uint16_t>(stage_count);
  handoff_cycles_[row] = handoff_cycles;
  agg_batch_wait_[row] = agg_batch_wait;
  agg_queue_wait_[row] = agg_queue_wait;
  agg_service_[row] = agg_service;
  agg_preempt_[row] = agg_preempt;
}

void RecordStore::push_stage(const StageRecord& s) {
  AXON_CHECK(s.stage >= 0 &&
                 s.stage <= std::numeric_limits<std::uint16_t>::max(),
             "stage ", s.stage, " out of stage-column range");
  AXON_CHECK(s.accelerator >= std::numeric_limits<std::int16_t>::min() &&
                 s.accelerator <= std::numeric_limits<std::int16_t>::max(),
             "accelerator ", s.accelerator, " out of stage-column range");
  s_id_.push_back(s.id);
  s_stage_.push_back(static_cast<std::uint16_t>(s.stage));
  s_arrival_.push_back(s.arrival_cycle);
  s_ready_.push_back(s.ready_cycle);
  s_dispatch_.push_back(s.dispatch_cycle);
  s_completion_.push_back(s.completion_cycle);
  s_service_.push_back(s.service_cycles);
  s_handoff_.push_back(s.handoff_cycles);
  s_accel_.push_back(static_cast<std::int16_t>(s.accelerator));
}

RecordStore::StageRecord RecordStore::stage_row(std::size_t i) const {
  AXON_CHECK(i < s_id_.size(), "stage row ", i, " out of range (",
             s_id_.size(), " stage rows)");
  StageRecord s;
  s.id = s_id_[i];
  s.stage = s_stage_[i];
  s.arrival_cycle = s_arrival_[i];
  s.ready_cycle = s_ready_[i];
  s.dispatch_cycle = s_dispatch_[i];
  s.completion_cycle = s_completion_[i];
  s.service_cycles = s_service_[i];
  s.handoff_cycles = s_handoff_[i];
  s.accelerator = s_accel_[i];
  return s;
}

std::uint32_t RecordStore::push_batch(i64 ready_cycle, i64 dispatch_cycle,
                                      i64 completion_cycle, i64 service_cycles,
                                      int batch_size, int batch_chunks,
                                      int accelerator) {
  // Narrow-column range checks: these bounds are far above anything a real
  // pool produces (batch members, chunk counts, fleet sizes are all
  // small), but a silent truncation would corrupt the record-diff
  // determinism checks, so fail loudly instead.
  AXON_CHECK(batch_size >= 0 &&
                 batch_size <= std::numeric_limits<std::uint16_t>::max(),
             "batch_size ", batch_size, " out of record-column range");
  AXON_CHECK(batch_chunks >= 0 &&
                 batch_chunks <= std::numeric_limits<std::uint16_t>::max(),
             "batch_chunks ", batch_chunks, " out of record-column range");
  AXON_CHECK(accelerator >= std::numeric_limits<std::int16_t>::min() &&
                 accelerator <= std::numeric_limits<std::int16_t>::max(),
             "accelerator ", accelerator, " out of record-column range");
  AXON_CHECK(b_ready_.size() < kUnsetBatch, "batch table index overflow");
  const auto batch = static_cast<std::uint32_t>(b_ready_.size());
  b_ready_.push_back(ready_cycle);
  b_dispatch_.push_back(dispatch_cycle);
  b_completion_.push_back(completion_cycle);
  b_service_.push_back(service_cycles);
  b_size_.push_back(static_cast<std::uint16_t>(batch_size));
  b_chunks_.push_back(static_cast<std::uint16_t>(batch_chunks));
  b_accel_.push_back(static_cast<std::int16_t>(accelerator));
  return batch;
}

void RecordStore::complete_row(std::uint32_t row, std::uint32_t batch) {
  AXON_CHECK(row < size(), "complete_row(", row, ") out of range (", size(),
             " records)");
  AXON_CHECK(batch < b_ready_.size(), "complete_row: batch ", batch,
             " out of range (", b_ready_.size(), " batches)");
  batch_ref_[row] = batch;
}

RequestRecord RecordStore::operator[](std::size_t i) const {
  AXON_CHECK(i < size(), "record index ", i, " out of range (", size(),
             " records)");
  const std::uint32_t batch = batch_ref_[i];
  AXON_CHECK(batch != kUnsetBatch, "record ", i,
             " gathered before its batch completed");
  RequestRecord r;
  r.id = id(i);
  r.workload = workload_[i];
  r.gemm = shapes_[gemm_id_[i]];
  r.arrival_cycle = arrival_cycle_[i];
  r.batch_ready_cycle = b_ready_[batch];
  r.dispatch_cycle = b_dispatch_[batch];
  r.completion_cycle = b_completion_[batch];
  r.deadline_cycle = deadline_cycle_[i];
  r.service_cycles = b_service_[batch];
  r.priority = priority_[i];
  r.batch_size = b_size_[batch];
  r.batch_chunks = b_chunks_[batch];
  r.accelerator = b_accel_[batch];
  if (has_stage_columns_) {
    r.stage_count = stage_count_[i];
    r.handoff_cycles = handoff_cycles_[i];
    r.agg_batch_wait = agg_batch_wait_[i];
    r.agg_queue_wait = agg_queue_wait_[i];
    r.agg_service = agg_service_[i];
    r.agg_preempt = agg_preempt_[i];
  }
  return r;
}

namespace {

/// Applies `new[i] = old[perm[i]]` in place by following permutation
/// cycles; `visited` is caller-provided scratch (reset here) so thirteen
/// column applications share one bit vector.
template <typename T>
void apply_permutation(const std::vector<std::uint32_t>& perm,
                       std::vector<T>& col, std::vector<bool>& visited) {
  visited.assign(perm.size(), false);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (visited[i] || perm[i] == i) continue;
    T tmp = col[i];
    std::size_t j = i;
    for (;;) {
      const std::size_t k = perm[j];
      visited[j] = true;
      if (k == i) {
        col[j] = tmp;
        break;
      }
      col[j] = col[k];
      j = k;
    }
  }
}

}  // namespace

void RecordStore::sort_by_id() {
  // Implicit ids are 0,1,2,... by construction — already sorted. The
  // streamed serve path (monotone trace ids, admission-order rows) always
  // lands here, so a 10^7-row sort costs nothing.
  if (ids_implicit_) return;
  const std::size_t n = id_.size();
  AXON_CHECK(n < std::numeric_limits<std::uint32_t>::max(),
             "record store too large to sort");
  if (std::is_sorted(id_.begin(), id_.end())) return;
  std::vector<std::uint32_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<std::uint32_t>(i);
  std::sort(perm.begin(), perm.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return id_[a] < id_[b];
            });
  // Only the per-request columns move; batch rows are reached through
  // batch_ref and never need reordering.
  std::vector<bool> visited;
  apply_permutation(perm, id_, visited);
  apply_permutation(perm, workload_, visited);
  apply_permutation(perm, gemm_id_, visited);
  apply_permutation(perm, arrival_cycle_, visited);
  apply_permutation(perm, deadline_cycle_, visited);
  apply_permutation(perm, priority_, visited);
  apply_permutation(perm, batch_ref_, visited);
  if (has_stage_columns_) {
    apply_permutation(perm, stage_count_, visited);
    apply_permutation(perm, handoff_cycles_, visited);
    apply_permutation(perm, agg_batch_wait_, visited);
    apply_permutation(perm, agg_queue_wait_, visited);
    apply_permutation(perm, agg_service_, visited);
    apply_permutation(perm, agg_preempt_, visited);
  }
  // The per-stage table is keyed by request id, not row — nothing to
  // permute there.
}

void GroupStats::add(const RequestRecord& r) {
  ++requests;
  latency.add(r.latency_cycles());
  blocking.add(r.queue_cycles());
  batch_wait.add(r.batch_wait_cycles());
  queue_wait.add(r.queue_wait_cycles());
  service.add(r.total_service_cycles());
  preempt_blocked.add(r.preempt_blocked_cycles());
  if (r.has_deadline()) {
    ++with_deadline;
    if (r.met_deadline()) {
      ++met_deadline;
    } else {
      miss.add(r.miss_cycles());
    }
  }
}

void GroupStats::reserve(std::size_t n) {
  latency.reserve(n);
  blocking.reserve(n);
  batch_wait.reserve(n);
  queue_wait.reserve(n);
  service.reserve(n);
  preempt_blocked.reserve(n);
}

double GroupStats::slo_attainment() const {
  if (with_deadline == 0) return 1.0;
  return static_cast<double>(met_deadline) /
         static_cast<double>(with_deadline);
}

double AcceleratorStats::weight_hit_rate() const {
  const i64 lookups = weight_hits + weight_misses;
  if (lookups == 0) return 0.0;
  return static_cast<double>(weight_hits) / static_cast<double>(lookups);
}

double AcceleratorStats::utilization(i64 makespan) const {
  if (makespan <= 0) return 0.0;
  return static_cast<double>(busy_cycles) / static_cast<double>(makespan);
}

double NodeStats::utilization(i64 makespan) const {
  if (makespan <= 0 || bw_bytes_per_cycle <= 0) return 0.0;
  return static_cast<double>(bytes_drained) /
         (static_cast<double>(bw_bytes_per_cycle) *
          static_cast<double>(makespan));
}

double NodeStats::slowdown() const {
  if (transfer_cycles_private <= 0) return 1.0;
  return static_cast<double>(transfer_cycles) /
         static_cast<double>(transfer_cycles_private);
}

void ServeReport::finalize() {
  records.sort_by_id();
  makespan_cycles = 0;
  with_deadline = 0;
  met_deadline = 0;
  for (auto& a : per_accelerator) a.requests = 0;
  // One scalar scan over the columns; the distribution views are built on
  // demand so a huge report costs no histogram storage here.
  const std::size_t n = records.size();
  for (std::size_t i = 0; i < n; ++i) {
    const i64 completion = records.completion_cycle(i);
    makespan_cycles = std::max(makespan_cycles, completion);
    const i64 deadline = records.deadline_cycle(i);
    if (deadline >= 0) {
      ++with_deadline;
      if (completion <= deadline) ++met_deadline;
    }
    const int acc = records.accelerator(i);
    if (acc >= 0 && acc < static_cast<int>(per_accelerator.size())) {
      ++per_accelerator[static_cast<std::size_t>(acc)].requests;
    }
  }
}

Histogram ServeReport::latency() const {
  Histogram h;
  const std::size_t n = records.size();
  h.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    h.add(records.completion_cycle(i) - records.arrival_cycle(i));
  }
  return h;
}

Histogram ServeReport::queueing() const {
  Histogram h;
  const std::size_t n = records.size();
  h.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    h.add(records.dispatch_cycle(i) - records.arrival_cycle(i));
  }
  return h;
}

GroupStats ServeReport::overall() const {
  GroupStats g;
  g.reserve(records.size());
  for (const RequestRecord& r : records) g.add(r);
  return g;
}

std::map<std::string, GroupStats> ServeReport::by_workload() const {
  std::map<std::string, GroupStats> out;
  const std::size_t n = records.size();
  if (n == 0) return out;
  // Slice sizes are knowable before a single sample lands: count each
  // slice by id (O(1) vector indexing — never a per-record string probe),
  // reserve its histograms, then fill through an id-indexed pointer table.
  // Names materialize exactly once, as the map keys.
  WorkloadId max_id = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_id = std::max(max_id, records.workload(i));
  }
  std::vector<std::size_t> counts(static_cast<std::size_t>(max_id) + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++counts[records.workload(i)];
  std::vector<GroupStats*> slice(counts.size(), nullptr);
  for (std::size_t w = 0; w < counts.size(); ++w) {
    if (counts[w] == 0) continue;
    GroupStats& g = out[workloads.name(static_cast<WorkloadId>(w))];
    g.reserve(counts[w]);
    slice[w] = &g;
  }
  for (std::size_t i = 0; i < n; ++i) {
    slice[records.workload(i)]->add(records[i]);
  }
  return out;
}

std::map<int, GroupStats> ServeReport::by_class() const {
  std::map<int, GroupStats> out;
  const std::size_t n = records.size();
  if (n == 0) return out;
  std::map<int, std::size_t> counts;
  for (std::size_t i = 0; i < n; ++i) ++counts[records.priority(i)];
  for (const auto& [prio, c] : counts) out[prio].reserve(c);
  for (std::size_t i = 0; i < n; ++i) {
    out[records.priority(i)].add(records[i]);
  }
  return out;
}

double ServeReport::mean_batch_size() const {
  if (total_batches == 0) return 0.0;
  return static_cast<double>(records.size()) /
         static_cast<double>(total_batches);
}

double ServeReport::throughput_per_mcycle() const {
  if (makespan_cycles == 0) return 0.0;
  return static_cast<double>(records.size()) * 1e6 /
         static_cast<double>(makespan_cycles);
}

double ServeReport::fleet_utilization() const {
  if (makespan_cycles == 0 || num_accelerators == 0) return 0.0;
  return static_cast<double>(total_busy_cycles) /
         (static_cast<double>(num_accelerators) *
          static_cast<double>(makespan_cycles));
}

double ServeReport::slo_attainment() const {
  if (with_deadline == 0) return 1.0;
  return static_cast<double>(met_deadline) /
         static_cast<double>(with_deadline);
}

namespace {

void add_breakdown_row(Table& t, const std::string& label,
                       const GroupStats& g) {
  Table& row = t.row()
                   .cell(label)
                   .cell(static_cast<i64>(g.requests))
                   .cell(g.latency.percentile_or(50))
                   .cell(g.latency.percentile_or(99))
                   .cell(g.blocking.percentile_or(99));
  // A slice with no SLO-carrying requests has nothing to attain or miss —
  // "100.0" there would read as "deadlines tracked and met".
  if (g.with_deadline > 0) {
    row.cell(100.0 * g.slo_attainment(), 1).cell(g.miss.percentile_or(99));
  } else {
    row.cell("-").cell("-");
  }
}

}  // namespace

std::string ServeReport::summary() const {
  // Materialize each distribution view exactly once for the whole render.
  const Histogram latency_hist = latency();
  const Histogram queueing_hist = queueing();
  const GroupStats overall_stats = overall();
  const std::map<std::string, GroupStats> workload_stats = by_workload();
  const std::map<int, GroupStats> class_stats = by_class();

  std::ostringstream os;
  os << "requests: " << num_requests() << "  batches: " << total_batches
     << "  mean batch: " << fmt_double(mean_batch_size(), 2) << "\n"
     << "accelerators: " << num_accelerators << "  threads: " << num_threads
     << "  makespan: " << makespan_cycles << " cycles\n";
  // Chunk accounting only earns a line when dispatch was actually divisible
  // (total_chunks == total_batches means every batch ran whole).
  if (total_chunks > total_batches) {
    os << "chunks: " << total_chunks << " ("
       << fmt_double(static_cast<double>(total_chunks) /
                         static_cast<double>(total_batches),
                     2)
       << " per batch)  preemptions: " << preemptions << "\n";
  }
  os
     << "latency  " << latency_hist.summary() << "\n"
     << "queueing " << queueing_hist.summary() << "\n"
     << "throughput: " << fmt_double(throughput_per_mcycle(), 2)
     << " req/Mcycle  utilization: "
     << fmt_double(100.0 * fleet_utilization(), 1) << "%\n";
  if (overall_stats.with_deadline > 0) {
    os << "slo: " << overall_stats.met_deadline << "/"
       << overall_stats.with_deadline << " in budget ("
       << fmt_double(100.0 * slo_attainment(), 1)
       << "%)  miss p99: " << overall_stats.miss.percentile_or(99)
       << " cycles\n";
  }
  if (!workload_stats.empty() && num_requests() > 0) {
    Table t({"workload", "n", "p50", "p99", "blk_p99", "slo_%", "miss_p99"});
    for (const auto& [name, g] : workload_stats) add_breakdown_row(t, name, g);
    t.print(os, "Per-workload breakdown");
  }
  // The class breakdown only earns its lines when classes actually differ.
  if (class_stats.size() > 1) {
    Table t({"class", "n", "p50", "p99", "blk_p99", "slo_%", "miss_p99"});
    for (const auto& [prio, g] : class_stats) {
      add_breakdown_row(t, std::to_string(prio), g);
    }
    t.print(os, "Per-priority-class breakdown");
  }
  // Latency breakdown: where each class's end-to-end time actually goes.
  // The four terms sum to latency per request (batch wait + queue wait +
  // service + preemption-blocked), so a p99 problem names its culprit.
  if (num_requests() > 0) {
    Table t({"class", "n", "bwait_p99", "qwait_p99", "svc_p50", "svc_p99",
             "pblk_p99"});
    const auto add_latency_row = [&t](const std::string& label,
                                      const GroupStats& g) {
      t.row()
          .cell(label)
          .cell(static_cast<i64>(g.requests))
          .cell(g.batch_wait.percentile_or(99))
          .cell(g.queue_wait.percentile_or(99))
          .cell(g.service.percentile_or(50))
          .cell(g.service.percentile_or(99))
          .cell(g.preempt_blocked.percentile_or(99));
    };
    for (const auto& [prio, g] : class_stats) {
      add_latency_row(std::to_string(prio), g);
    }
    if (class_stats.size() > 1) add_latency_row("all", overall_stats);
    t.print(os, "Per-class latency breakdown (cycles)");
  }
  // Per-stage breakdown (multi-stage workloads only): how each pipeline
  // position spent its cycles and what the activation handoffs cost.
  if (records.num_stage_rows() > 0) {
    std::map<int, GroupStats> stage_stats;
    std::map<int, Histogram> stage_handoff;
    for (std::size_t i = 0; i < records.num_stage_rows(); ++i) {
      const RecordStore::StageRecord s = records.stage_row(i);
      GroupStats& g = stage_stats[s.stage];
      ++g.requests;
      g.latency.add(s.completion_cycle - s.arrival_cycle);
      g.service.add(s.service_cycles);
      g.queue_wait.add(s.dispatch_cycle - s.arrival_cycle);
      stage_handoff[s.stage].add(s.handoff_cycles);
    }
    Table t({"stage", "n", "lat_p50", "lat_p99", "wait_p99", "svc_p50",
             "handoff_p99"});
    for (const auto& [stage, g] : stage_stats) {
      t.row()
          .cell(std::to_string(stage))
          .cell(static_cast<i64>(g.requests))
          .cell(g.latency.percentile_or(50))
          .cell(g.latency.percentile_or(99))
          .cell(g.queue_wait.percentile_or(99))
          .cell(g.service.percentile_or(50))
          .cell(stage_handoff[stage].percentile_or(99));
    }
    t.print(os, "Per-stage breakdown (cycles)");
  }
  if (phase_profile.enabled) os << phase_profile.summary();
  // Per-device breakdown: who the router sent work to, how busy each
  // member was, and whether its weight cache earned its bytes. A
  // single-member pool earns the table too when its cache saw traffic —
  // that is the only place hit rates render.
  bool show_devices = per_accelerator.size() > 1;
  for (const auto& a : per_accelerator) {
    show_devices = show_devices || a.weight_hits + a.weight_misses > 0;
  }
  if (show_devices && !per_accelerator.empty()) {
    Table t({"device", "batches", "requests", "util_%", "wcache_hit_%",
             "evict"});
    for (const auto& a : per_accelerator) {
      Table& row = t.row()
                       .cell(a.name)
                       .cell(a.batches)
                       .cell(static_cast<i64>(a.requests))
                       .cell(100.0 * a.utilization(makespan_cycles), 1);
      if (a.weight_hits + a.weight_misses > 0) {
        row.cell(100.0 * a.weight_hit_rate(), 1).cell(a.weight_evictions);
      } else {
        row.cell("-").cell("-");  // no cache on this member
      }
    }
    t.print(os, "Per-accelerator breakdown");
  }
  // Memory-node breakdown (shared-bandwidth arbiter): per-node budget
  // draw, realized slowdown vs private channels, and contention pressure.
  // Only present when the pool ran with a NodeTopology.
  if (!per_node.empty()) {
    Table t({"node", "devices", "bw_B/cyc", "util_%", "slowdown",
             "contended", "peak"});
    for (const auto& n : per_node) {
      Table& row = t.row().cell(n.name).cell(static_cast<i64>(n.devices));
      if (n.bw_bytes_per_cycle > 0) {
        row.cell(n.bw_bytes_per_cycle)
            .cell(100.0 * n.utilization(makespan_cycles), 1);
      } else {
        row.cell("-").cell("-");  // unlimited budget
      }
      row.cell(n.slowdown(), 3)
          .cell(n.contended_dispatches)
          .cell(n.demand_peak);
    }
    t.print(os, "Per-memory-node breakdown");
    i64 hop_dispatches = 0;
    i64 hop_cycles = 0;
    for (const auto& a : per_accelerator) {
      hop_dispatches += a.hop_dispatches;
      hop_cycles += a.hop_cycles;
    }
    if (hop_dispatches > 0) {
      os << "fabric: " << hop_dispatches << " remote dispatches, "
         << hop_cycles << " hop cycles\n";
    }
  }
  return os.str();
}

}  // namespace axon::serve
