#include "serve/report.hpp"

#include <algorithm>
#include <sstream>

#include "common/table.hpp"

namespace axon::serve {

void ServeReport::finalize() {
  std::sort(records.begin(), records.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.id < b.id;
            });
  latency = Histogram();
  queueing = Histogram();
  makespan_cycles = 0;
  for (const auto& r : records) {
    latency.add(r.latency_cycles());
    queueing.add(r.queue_cycles());
    makespan_cycles = std::max(makespan_cycles, r.completion_cycle);
  }
}

double ServeReport::mean_batch_size() const {
  if (total_batches == 0) return 0.0;
  return static_cast<double>(records.size()) /
         static_cast<double>(total_batches);
}

double ServeReport::throughput_per_mcycle() const {
  if (makespan_cycles == 0) return 0.0;
  return static_cast<double>(records.size()) * 1e6 /
         static_cast<double>(makespan_cycles);
}

double ServeReport::fleet_utilization() const {
  if (makespan_cycles == 0 || num_accelerators == 0) return 0.0;
  return static_cast<double>(total_busy_cycles) /
         (static_cast<double>(num_accelerators) *
          static_cast<double>(makespan_cycles));
}

std::string ServeReport::summary() const {
  std::ostringstream os;
  os << "requests: " << num_requests() << "  batches: " << total_batches
     << "  mean batch: " << fmt_double(mean_batch_size(), 2) << "\n"
     << "accelerators: " << num_accelerators << "  threads: " << num_threads
     << "  makespan: " << makespan_cycles << " cycles\n"
     << "latency  " << latency.summary() << "\n"
     << "queueing " << queueing.summary() << "\n"
     << "throughput: " << fmt_double(throughput_per_mcycle(), 2)
     << " req/Mcycle  utilization: "
     << fmt_double(100.0 * fleet_utilization(), 1) << "%\n";
  return os.str();
}

}  // namespace axon::serve
