#include "serve/report.hpp"

#include <algorithm>
#include <sstream>

#include "common/table.hpp"

namespace axon::serve {

void GroupStats::add(const RequestRecord& r) {
  ++requests;
  latency.add(r.latency_cycles());
  blocking.add(r.queue_cycles());
  batch_wait.add(r.batch_wait_cycles());
  queue_wait.add(r.queue_wait_cycles());
  service.add(r.service_cycles);
  preempt_blocked.add(r.preempt_blocked_cycles());
  if (r.has_deadline()) {
    ++with_deadline;
    if (r.met_deadline()) {
      ++met_deadline;
    } else {
      miss.add(r.miss_cycles());
    }
  }
}

void GroupStats::reserve(std::size_t n) {
  latency.reserve(n);
  blocking.reserve(n);
  batch_wait.reserve(n);
  queue_wait.reserve(n);
  service.reserve(n);
  preempt_blocked.reserve(n);
}

double GroupStats::slo_attainment() const {
  if (with_deadline == 0) return 1.0;
  return static_cast<double>(met_deadline) /
         static_cast<double>(with_deadline);
}

double AcceleratorStats::weight_hit_rate() const {
  const i64 lookups = weight_hits + weight_misses;
  if (lookups == 0) return 0.0;
  return static_cast<double>(weight_hits) / static_cast<double>(lookups);
}

double AcceleratorStats::utilization(i64 makespan) const {
  if (makespan <= 0) return 0.0;
  return static_cast<double>(busy_cycles) / static_cast<double>(makespan);
}

void ServeReport::finalize() {
  std::sort(records.begin(), records.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.id < b.id;
            });
  latency = Histogram();
  queueing = Histogram();
  overall = GroupStats();
  by_workload.clear();
  by_class.clear();
  makespan_cycles = 0;
  for (auto& a : per_accelerator) a.requests = 0;
  // Slice sizes are knowable before a single sample lands: count each
  // slice, then reserve its histograms — large traces fill millions of
  // samples below and should not grow storage by doubling.
  latency.reserve(records.size());
  queueing.reserve(records.size());
  overall.reserve(records.size());
  std::map<std::string, std::size_t> workload_counts;
  std::map<int, std::size_t> class_counts;
  for (const auto& r : records) {
    ++workload_counts[r.workload];
    ++class_counts[r.priority];
  }
  for (const auto& [name, n] : workload_counts) by_workload[name].reserve(n);
  for (const auto& [prio, n] : class_counts) by_class[prio].reserve(n);
  for (const auto& r : records) {
    latency.add(r.latency_cycles());
    queueing.add(r.queue_cycles());
    makespan_cycles = std::max(makespan_cycles, r.completion_cycle);
    overall.add(r);
    by_workload[r.workload].add(r);
    by_class[r.priority].add(r);
    if (r.accelerator >= 0 &&
        r.accelerator < static_cast<int>(per_accelerator.size())) {
      ++per_accelerator[static_cast<std::size_t>(r.accelerator)].requests;
    }
  }
}

double ServeReport::mean_batch_size() const {
  if (total_batches == 0) return 0.0;
  return static_cast<double>(records.size()) /
         static_cast<double>(total_batches);
}

double ServeReport::throughput_per_mcycle() const {
  if (makespan_cycles == 0) return 0.0;
  return static_cast<double>(records.size()) * 1e6 /
         static_cast<double>(makespan_cycles);
}

double ServeReport::fleet_utilization() const {
  if (makespan_cycles == 0 || num_accelerators == 0) return 0.0;
  return static_cast<double>(total_busy_cycles) /
         (static_cast<double>(num_accelerators) *
          static_cast<double>(makespan_cycles));
}

namespace {

void add_breakdown_row(Table& t, const std::string& label,
                       const GroupStats& g) {
  Table& row = t.row()
                   .cell(label)
                   .cell(static_cast<i64>(g.requests))
                   .cell(g.latency.percentile_or(50))
                   .cell(g.latency.percentile_or(99))
                   .cell(g.blocking.percentile_or(99));
  // A slice with no SLO-carrying requests has nothing to attain or miss —
  // "100.0" there would read as "deadlines tracked and met".
  if (g.with_deadline > 0) {
    row.cell(100.0 * g.slo_attainment(), 1).cell(g.miss.percentile_or(99));
  } else {
    row.cell("-").cell("-");
  }
}

}  // namespace

std::string ServeReport::summary() const {
  std::ostringstream os;
  os << "requests: " << num_requests() << "  batches: " << total_batches
     << "  mean batch: " << fmt_double(mean_batch_size(), 2) << "\n"
     << "accelerators: " << num_accelerators << "  threads: " << num_threads
     << "  makespan: " << makespan_cycles << " cycles\n";
  // Chunk accounting only earns a line when dispatch was actually divisible
  // (total_chunks == total_batches means every batch ran whole).
  if (total_chunks > total_batches) {
    os << "chunks: " << total_chunks << " ("
       << fmt_double(static_cast<double>(total_chunks) /
                         static_cast<double>(total_batches),
                     2)
       << " per batch)  preemptions: " << preemptions << "\n";
  }
  os
     << "latency  " << latency.summary() << "\n"
     << "queueing " << queueing.summary() << "\n"
     << "throughput: " << fmt_double(throughput_per_mcycle(), 2)
     << " req/Mcycle  utilization: "
     << fmt_double(100.0 * fleet_utilization(), 1) << "%\n";
  if (overall.with_deadline > 0) {
    os << "slo: " << overall.met_deadline << "/" << overall.with_deadline
       << " in budget (" << fmt_double(100.0 * slo_attainment(), 1)
       << "%)  miss p99: " << overall.miss.percentile_or(99) << " cycles\n";
  }
  if (!by_workload.empty() && num_requests() > 0) {
    Table t({"workload", "n", "p50", "p99", "blk_p99", "slo_%", "miss_p99"});
    for (const auto& [name, g] : by_workload) add_breakdown_row(t, name, g);
    t.print(os, "Per-workload breakdown");
  }
  // The class breakdown only earns its lines when classes actually differ.
  if (by_class.size() > 1) {
    Table t({"class", "n", "p50", "p99", "blk_p99", "slo_%", "miss_p99"});
    for (const auto& [prio, g] : by_class) {
      add_breakdown_row(t, std::to_string(prio), g);
    }
    t.print(os, "Per-priority-class breakdown");
  }
  // Latency breakdown: where each class's end-to-end time actually goes.
  // The four terms sum to latency per request (batch wait + queue wait +
  // service + preemption-blocked), so a p99 problem names its culprit.
  if (num_requests() > 0) {
    Table t({"class", "n", "bwait_p99", "qwait_p99", "svc_p50", "svc_p99",
             "pblk_p99"});
    const auto add_latency_row = [&t](const std::string& label,
                                      const GroupStats& g) {
      t.row()
          .cell(label)
          .cell(static_cast<i64>(g.requests))
          .cell(g.batch_wait.percentile_or(99))
          .cell(g.queue_wait.percentile_or(99))
          .cell(g.service.percentile_or(50))
          .cell(g.service.percentile_or(99))
          .cell(g.preempt_blocked.percentile_or(99));
    };
    for (const auto& [prio, g] : by_class) {
      add_latency_row(std::to_string(prio), g);
    }
    if (by_class.size() > 1) add_latency_row("all", overall);
    t.print(os, "Per-class latency breakdown (cycles)");
  }
  if (phase_profile.enabled) os << phase_profile.summary();
  // Per-device breakdown: who the router sent work to, how busy each
  // member was, and whether its weight cache earned its bytes. A
  // single-member pool earns the table too when its cache saw traffic —
  // that is the only place hit rates render.
  bool show_devices = per_accelerator.size() > 1;
  for (const auto& a : per_accelerator) {
    show_devices = show_devices || a.weight_hits + a.weight_misses > 0;
  }
  if (show_devices && !per_accelerator.empty()) {
    Table t({"device", "batches", "requests", "util_%", "wcache_hit_%",
             "evict"});
    for (const auto& a : per_accelerator) {
      Table& row = t.row()
                       .cell(a.name)
                       .cell(a.batches)
                       .cell(static_cast<i64>(a.requests))
                       .cell(100.0 * a.utilization(makespan_cycles), 1);
      if (a.weight_hits + a.weight_misses > 0) {
        row.cell(100.0 * a.weight_hit_rate(), 1).cell(a.weight_evictions);
      } else {
        row.cell("-").cell("-");  // no cache on this member
      }
    }
    t.print(os, "Per-accelerator breakdown");
  }
  return os.str();
}

}  // namespace axon::serve
