#include "serve/request.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "workloads/convnets.hpp"
#include "workloads/transformers.hpp"

namespace axon::serve {

void RequestQueue::push(Request r) {
  AXON_CHECK(r.arrival_cycle >= 0, "negative arrival cycle");
  AXON_CHECK(requests_.empty() ||
                 r.arrival_cycle >= requests_.back().arrival_cycle,
             "requests must be pushed in arrival order (got cycle ",
             r.arrival_cycle, " after ", requests_.back().arrival_cycle, ")");
  requests_.push_back(std::move(r));
}

const Request& RequestQueue::front() const {
  AXON_CHECK(!requests_.empty(), "front() on empty RequestQueue");
  return requests_.front();
}

i64 RequestQueue::next_arrival() const { return front().arrival_cycle; }

Request RequestQueue::pop() {
  AXON_CHECK(!requests_.empty(), "pop() on empty RequestQueue");
  Request r = std::move(requests_.front());
  requests_.pop_front();
  return r;
}

RequestQueue generate_trace(const std::vector<GemmWorkload>& mix,
                            const TraceConfig& config, Rng& rng) {
  AXON_CHECK(!mix.empty(), "trace needs a non-empty workload mix");
  AXON_CHECK(config.num_requests >= 0, "negative request count");
  AXON_CHECK(config.mean_interarrival_cycles >= 0.0,
             "negative mean inter-arrival");

  RequestQueue queue;
  i64 now = 0;
  for (int i = 0; i < config.num_requests; ++i) {
    // Exponential gap: -mean * ln(1 - u). uniform_real_distribution can
    // round up to exactly 1.0f (LWG 2524), which would make the gap
    // infinite — clamp below 1 so the cast to cycles stays defined.
    const double u =
        std::min(static_cast<double>(rng.uniform(0.0f, 1.0f)), 1.0 - 1e-7);
    const double gap = -config.mean_interarrival_cycles * std::log(1.0 - u);
    now += static_cast<i64>(gap);
    const auto& w =
        mix[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(mix.size()) - 1))];
    Request r;
    r.id = i;
    r.workload = w.name;
    r.gemm = w.shape;
    r.arrival_cycle = now;
    queue.push(std::move(r));
  }
  return queue;
}

std::vector<GemmWorkload> resnet50_serve_mix() {
  return lowered_gemms(resnet50_conv_layers());
}

std::vector<GemmWorkload> transformer_serve_mix() {
  return bert_base_gemms(384);
}

std::vector<GemmWorkload> decode_serve_mix() {
  // bert_base_gemms(1) / gpt2_gemms(1) shapes: the per-token projection
  // and FFN GEMMs with the single token on M.
  return {
      {"decode_qkv", {1, 768, 2304}},
      {"decode_attn_out", {1, 768, 768}},
      {"decode_ffn1", {1, 768, 3072}},
      {"decode_ffn2", {1, 3072, 768}},
      {"decode_gpt2_ffn1", {1, 1024, 4096}},
  };
}

std::vector<GemmWorkload> mixed_serve_mix() {
  std::vector<GemmWorkload> mix = resnet50_serve_mix();
  const std::vector<GemmWorkload> t = transformer_serve_mix();
  mix.insert(mix.end(), t.begin(), t.end());
  return mix;
}

}  // namespace axon::serve
