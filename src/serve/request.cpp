#include "serve/request.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "workloads/convnets.hpp"
#include "workloads/transformers.hpp"

namespace axon::serve {

void RequestQueue::push(Request r) {
  AXON_CHECK(r.arrival_cycle >= 0, "negative arrival cycle");
  AXON_CHECK(requests_.empty() ||
                 r.arrival_cycle >= requests_.back().arrival_cycle,
             "requests must be pushed in arrival order (got cycle ",
             r.arrival_cycle, " after ", requests_.back().arrival_cycle, ")");
  AXON_CHECK(!r.has_deadline() || r.deadline_cycle >= r.arrival_cycle,
             "deadline before arrival");
  requests_.push_back(std::move(r));
}

const Request& RequestQueue::front() const {
  AXON_CHECK(!requests_.empty(), "front() on empty RequestQueue");
  return requests_.front();
}

i64 RequestQueue::next_arrival() const { return front().arrival_cycle; }

Request RequestQueue::pop() {
  AXON_CHECK(!requests_.empty(), "pop() on empty RequestQueue");
  Request r = std::move(requests_.front());
  requests_.pop_front();
  return r;
}

const SloPolicy& TrafficClassMap::for_workload(const std::string& name) const {
  const auto it = per_workload.find(name);
  return it == per_workload.end() ? default_policy : it->second;
}

namespace {

/// Exponential draw with the given mean, in full double precision.
/// uniform_real_distribution can round up to exactly 1.0 (LWG 2524), which
/// would make the gap infinite — clamp below 1 so log stays finite.
double exponential(double mean, Rng& rng) {
  const double u = std::min(rng.uniform_double(0.0, 1.0), 1.0 - 1e-12);
  return -mean * std::log(1.0 - u);
}

/// Draws a workload uniformly from the mix and stamps id, arrival, and the
/// workload's SLO/priority onto a request. `when` is in continuous cycles;
/// arrival rounds to nearest (std::llround) — truncation would shave an
/// expected half-cycle off every gap and bias the realized rate upward.
Request make_request(i64 id, double when, const std::vector<GemmWorkload>& mix,
                     const TrafficClassMap& classes, Rng& rng) {
  const auto& w = mix[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(mix.size()) - 1))];
  const SloPolicy& slo = classes.for_workload(w.name);
  Request r;
  r.id = id;
  r.workload = w.name;
  r.gemm = w.shape;
  r.arrival_cycle = std::llround(when);
  if (slo.slo_budget_cycles >= 0) {
    r.deadline_cycle = r.arrival_cycle + slo.slo_budget_cycles;
  }
  r.priority = slo.priority;
  return r;
}

}  // namespace

RequestQueue generate_trace(const std::vector<GemmWorkload>& mix,
                            const TraceConfig& config, Rng& rng) {
  AXON_CHECK(!mix.empty(), "trace needs a non-empty workload mix");
  AXON_CHECK(config.num_requests >= 0, "negative request count");
  AXON_CHECK(config.mean_interarrival_cycles >= 0.0,
             "negative mean inter-arrival");

  RequestQueue queue;
  double now = 0.0;
  for (int i = 0; i < config.num_requests; ++i) {
    now += exponential(config.mean_interarrival_cycles, rng);
    queue.push(make_request(i, now, mix, config.classes, rng));
  }
  return queue;
}

RequestQueue generate_bursty_trace(const std::vector<GemmWorkload>& mix,
                                   const BurstyTraceConfig& config, Rng& rng) {
  AXON_CHECK(!mix.empty(), "trace needs a non-empty workload mix");
  AXON_CHECK(config.num_requests >= 0, "negative request count");
  AXON_CHECK(config.burst_interarrival_cycles >= 0.0,
             "negative burst inter-arrival");
  AXON_CHECK(config.mean_on_cycles > 0.0, "ON dwell must be positive");
  AXON_CHECK(config.mean_off_cycles >= 0.0, "negative OFF dwell");

  RequestQueue queue;
  double now = 0.0;
  double state_end = exponential(config.mean_on_cycles, rng);  // start ON
  for (int i = 0; i < config.num_requests; ++i) {
    // Draw gaps inside the ON window; a gap that crosses the window's end
    // is discarded (memorylessness makes redraw-after-jump equivalent) and
    // time jumps over the OFF dwell into the next ON window.
    for (;;) {
      const double gap = exponential(config.burst_interarrival_cycles, rng);
      if (now + gap <= state_end) {
        now += gap;
        break;
      }
      now = state_end + exponential(config.mean_off_cycles, rng);
      state_end = now + exponential(config.mean_on_cycles, rng);
    }
    queue.push(make_request(i, now, mix, config.classes, rng));
  }
  return queue;
}

RequestQueue generate_closed_loop_trace(const std::vector<GemmWorkload>& mix,
                                        const ClosedLoopTraceConfig& config,
                                        Rng& rng) {
  AXON_CHECK(!mix.empty(), "trace needs a non-empty workload mix");
  AXON_CHECK(config.num_requests >= 0, "negative request count");
  AXON_CHECK(config.num_clients >= 1, "closed loop needs >= 1 client");
  AXON_CHECK(config.mean_think_cycles >= 0.0, "negative think time");
  AXON_CHECK(config.service_estimate_cycles >= 0.0,
             "negative service estimate");

  // next_issue[c] = continuous cycle client c will issue its next request.
  std::vector<double> next_issue(static_cast<std::size_t>(config.num_clients));
  for (auto& t : next_issue) t = exponential(config.mean_think_cycles, rng);

  RequestQueue queue;
  for (int i = 0; i < config.num_requests; ++i) {
    // Earliest-issuing client; ties break on the lowest client id so the
    // trace is a pure function of the seed.
    const std::size_t c = static_cast<std::size_t>(
        std::min_element(next_issue.begin(), next_issue.end()) -
        next_issue.begin());
    const double when = next_issue[c];
    queue.push(make_request(i, when, mix, config.classes, rng));
    next_issue[c] = when + config.service_estimate_cycles +
                    exponential(config.mean_think_cycles, rng);
  }
  return queue;
}

std::vector<GemmWorkload> resnet50_serve_mix() {
  return lowered_gemms(resnet50_conv_layers());
}

std::vector<GemmWorkload> transformer_serve_mix() {
  return bert_base_gemms(384);
}

std::vector<GemmWorkload> decode_serve_mix() {
  // bert_base_gemms(1) / gpt2_gemms(1) shapes: the per-token projection
  // and FFN GEMMs with the single token on M.
  return {
      {"decode_qkv", {1, 768, 2304}},
      {"decode_attn_out", {1, 768, 768}},
      {"decode_ffn1", {1, 768, 3072}},
      {"decode_ffn2", {1, 3072, 768}},
      {"decode_gpt2_ffn1", {1, 1024, 4096}},
  };
}

std::vector<GemmWorkload> mixed_serve_mix() {
  std::vector<GemmWorkload> mix = resnet50_serve_mix();
  const std::vector<GemmWorkload> t = transformer_serve_mix();
  mix.insert(mix.end(), t.begin(), t.end());
  return mix;
}

}  // namespace axon::serve
