#include "serve/request.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "workloads/convnets.hpp"
#include "workloads/transformers.hpp"

namespace axon::serve {

void RequestQueue::push(Request r) {
  AXON_CHECK(r.arrival_cycle >= 0, "negative arrival cycle");
  AXON_CHECK(requests_.empty() ||
                 r.arrival_cycle >= requests_.back().arrival_cycle,
             "requests must be pushed in arrival order (got cycle ",
             r.arrival_cycle, " after ", requests_.back().arrival_cycle, ")");
  AXON_CHECK(!r.has_deadline() || r.deadline_cycle >= r.arrival_cycle,
             "deadline before arrival");
  requests_.push_back(r);
}

const Request& RequestQueue::front() const {
  AXON_CHECK(!requests_.empty(), "front() on empty RequestQueue");
  return requests_.front();
}

i64 RequestQueue::next_arrival() const {
  return requests_.empty() ? -1 : requests_.front().arrival_cycle;
}

Request RequestQueue::pop() {
  AXON_CHECK(!requests_.empty(), "pop() on empty RequestQueue");
  const Request r = requests_.front();
  requests_.pop_front();
  return r;
}

const SloPolicy& TrafficClassMap::for_workload(const std::string& name) const {
  const auto it = per_workload.find(name);
  return it == per_workload.end() ? default_policy : it->second;
}

namespace detail {

GeneratorSourceBase::GeneratorSourceBase(const std::vector<GemmWorkload>& mix,
                                         const TrafficClassMap& classes,
                                         const Rng& rng, int num_requests)
    : rng_(rng), num_requests_(num_requests) {
  AXON_CHECK(!mix.empty(), "trace needs a non-empty workload mix");
  AXON_CHECK(num_requests >= 0, "negative request count");
  mix_.reserve(mix.size());
  for (const GemmWorkload& w : mix) {
    // One map probe per *mix entry* at construction; the per-request path
    // below is a vector index. Repeated names intern to the same id (the
    // report groups by name, exactly as the string-keyed path did).
    const SloPolicy& slo = classes.for_workload(w.name);
    const auto chain_it = classes.chains.find(w.name);
    WorkloadId id;
    if (chain_it != classes.chains.end()) {
      const StageChain& chain = chain_it->second;
      AXON_CHECK(!chain.empty(), "workload '", w.name, "' has an empty chain");
      AXON_CHECK(chain.front().gemm == w.shape, "workload '", w.name,
                 "': chain stage 0 GEMM must match the mix entry's shape");
      id = registry_.intern_chain(w.name, chain, slo);
    } else {
      id = registry_.intern(w.name, w.shape, slo);
    }
    // Read stage 0's class back from the registry (first registration
    // wins, so a repeated name keeps the originally-interned chain).
    const StageClass cls0 = registry_.chain(id).front().cls;
    mix_.push_back(
        MixEntry{id, w.shape, slo.slo_budget_cycles, slo.priority, cls0});
  }
}

double GeneratorSourceBase::exponential(double mean) {
  // uniform_real_distribution can round up to exactly 1.0 (LWG 2524),
  // which would make the gap infinite — clamp below 1 so log stays finite.
  const double u = std::min(rng_.uniform_double(0.0, 1.0), 1.0 - 1e-12);
  return -mean * std::log(1.0 - u);
}

Request GeneratorSourceBase::make_request(i64 id, double when) {
  const MixEntry& e = mix_[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<int>(mix_.size()) - 1))];
  Request r;
  r.id = id;
  r.workload = e.workload;
  r.gemm = e.gemm;
  // `when` is in continuous cycles; arrival rounds to nearest
  // (std::llround) — truncation would shave an expected half-cycle off
  // every gap and bias the realized rate upward.
  r.arrival_cycle = std::llround(when);
  if (e.slo_budget_cycles >= 0) {
    r.deadline_cycle = r.arrival_cycle + e.slo_budget_cycles;
  }
  r.priority = e.priority;
  r.stage = 0;
  r.stage_class = e.cls0;
  return r;
}

}  // namespace detail

PoissonTraceSource::PoissonTraceSource(const std::vector<GemmWorkload>& mix,
                                       const TraceConfig& config,
                                       const Rng& rng)
    : GeneratorSourceBase(mix, config.classes, rng, config.num_requests),
      interarrival_(config.mean_interarrival_cycles) {
  AXON_CHECK(interarrival_ >= 0.0, "negative mean inter-arrival");
  if (num_requests_ > 0) advance();
}

void PoissonTraceSource::advance() {
  now_ += exponential(interarrival_);
  pending_ = make_request(popped_, now_);
}

i64 PoissonTraceSource::next_arrival() const {
  return exhausted() ? -1 : pending_.arrival_cycle;
}

Request PoissonTraceSource::pop() {
  AXON_CHECK(!exhausted(), "pop() on exhausted trace source");
  const Request r = pending_;
  ++popped_;
  if (popped_ < num_requests_) advance();
  return r;
}

BurstyTraceSource::BurstyTraceSource(const std::vector<GemmWorkload>& mix,
                                     const BurstyTraceConfig& config,
                                     const Rng& rng)
    : GeneratorSourceBase(mix, config.classes, rng, config.num_requests),
      burst_gap_(config.burst_interarrival_cycles),
      mean_on_(config.mean_on_cycles),
      mean_off_(config.mean_off_cycles) {
  AXON_CHECK(burst_gap_ >= 0.0, "negative burst inter-arrival");
  AXON_CHECK(mean_on_ > 0.0, "ON dwell must be positive");
  AXON_CHECK(mean_off_ >= 0.0, "negative OFF dwell");
  state_end_ = exponential(mean_on_);  // start ON
  if (num_requests_ > 0) advance();
}

void BurstyTraceSource::advance() {
  // Draw gaps inside the ON window; a gap that crosses the window's end
  // is discarded (memorylessness makes redraw-after-jump equivalent) and
  // time jumps over the OFF dwell into the next ON window.
  for (;;) {
    const double gap = exponential(burst_gap_);
    if (now_ + gap <= state_end_) {
      now_ += gap;
      break;
    }
    now_ = state_end_ + exponential(mean_off_);
    state_end_ = now_ + exponential(mean_on_);
  }
  pending_ = make_request(popped_, now_);
}

i64 BurstyTraceSource::next_arrival() const {
  return exhausted() ? -1 : pending_.arrival_cycle;
}

Request BurstyTraceSource::pop() {
  AXON_CHECK(!exhausted(), "pop() on exhausted trace source");
  const Request r = pending_;
  ++popped_;
  if (popped_ < num_requests_) advance();
  return r;
}

ClosedLoopTraceSource::ClosedLoopTraceSource(
    const std::vector<GemmWorkload>& mix, const ClosedLoopTraceConfig& config,
    const Rng& rng)
    : GeneratorSourceBase(mix, config.classes, rng, config.num_requests),
      service_estimate_(config.service_estimate_cycles),
      mean_think_(config.mean_think_cycles),
      feedback_(config.completion_feedback) {
  AXON_CHECK(config.num_clients >= 1, "closed loop needs >= 1 client");
  AXON_CHECK(mean_think_ >= 0.0, "negative think time");
  AXON_CHECK(service_estimate_ >= 0.0, "negative service estimate");
  next_issue_.resize(static_cast<std::size_t>(config.num_clients));
  for (double& t : next_issue_) t = exponential(mean_think_);
  blocked_.assign(next_issue_.size(), 0);
}

int ClosedLoopTraceSource::next_client() const {
  // Earliest-issuing unblocked client; ties break on the lowest client id
  // so the stream is a pure function of the seed (and, in feedback mode,
  // of the completion sequence).
  int best = -1;
  for (std::size_t c = 0; c < next_issue_.size(); ++c) {
    if (blocked_[c] != 0) continue;
    if (best < 0 || next_issue_[c] < next_issue_[static_cast<std::size_t>(
                                         best)]) {
      best = static_cast<int>(c);
    }
  }
  return best;
}

i64 ClosedLoopTraceSource::next_arrival() const {
  if (exhausted()) return -1;
  const int c = next_client();
  if (c < 0) return -1;  // every client awaits a completion
  return std::llround(next_issue_[static_cast<std::size_t>(c)]);
}

Request ClosedLoopTraceSource::pop() {
  AXON_CHECK(!exhausted(), "pop() on exhausted trace source");
  const int ci = next_client();
  AXON_CHECK(ci >= 0, "pop() on a fully blocked closed-loop source");
  const std::size_t c = static_cast<std::size_t>(ci);
  const double when = next_issue_[c];
  Request r = make_request(popped_, when);
  // The think draw for this client's *next* issue happens now, directly
  // after the workload draw — the same per-request draw order as the
  // estimate path, so feedback mode replays bit-identically whenever
  // completions land exactly at arrival + estimate.
  const double think = exponential(mean_think_);
  if (feedback_) {
    blocked_[c] = 1;
    in_flight_.emplace(r.id,
                       InFlight{ci, when, r.arrival_cycle, think});
  } else {
    next_issue_[c] = when + service_estimate_ + think;
  }
  ++popped_;
  return r;
}

void ClosedLoopTraceSource::on_complete(i64 request_id, i64 completion_cycle) {
  if (!feedback_) return;
  const auto it = in_flight_.find(request_id);
  if (it == in_flight_.end()) return;
  const InFlight& f = it->second;
  // Anchor the client's next issue on the continuous issue time plus the
  // *realized* integer service span. When the realized span equals the
  // configured estimate, this is exactly `when + estimate + think` — the
  // estimate path's arithmetic, bit for bit.
  AXON_CHECK(completion_cycle >= f.arrival, "completion before arrival");
  next_issue_[static_cast<std::size_t>(f.client)] =
      f.when + static_cast<double>(completion_cycle - f.arrival) + f.think;
  blocked_[static_cast<std::size_t>(f.client)] = 0;
  in_flight_.erase(it);
}

namespace {

template <typename Source>
RequestQueue drain(Source& source) {
  RequestQueue queue(source.registry());
  while (!source.exhausted()) queue.push(source.pop());
  return queue;
}

}  // namespace

RequestQueue generate_trace(const std::vector<GemmWorkload>& mix,
                            const TraceConfig& config, Rng& rng) {
  PoissonTraceSource source(mix, config, rng);
  RequestQueue queue = drain(source);
  rng = source.rng();
  return queue;
}

RequestQueue generate_bursty_trace(const std::vector<GemmWorkload>& mix,
                                   const BurstyTraceConfig& config, Rng& rng) {
  BurstyTraceSource source(mix, config, rng);
  RequestQueue queue = drain(source);
  rng = source.rng();
  return queue;
}

RequestQueue generate_closed_loop_trace(const std::vector<GemmWorkload>& mix,
                                        const ClosedLoopTraceConfig& config,
                                        Rng& rng) {
  AXON_CHECK(!config.completion_feedback,
             "a feedback-wired closed loop cannot be materialized ahead of "
             "the simulation — serve the source directly");
  ClosedLoopTraceSource source(mix, config, rng);
  RequestQueue queue = drain(source);
  rng = source.rng();
  return queue;
}

std::vector<GemmWorkload> resnet50_serve_mix() {
  return lowered_gemms(resnet50_conv_layers());
}

std::vector<GemmWorkload> transformer_serve_mix() {
  return bert_base_gemms(384);
}

std::vector<GemmWorkload> decode_serve_mix() {
  // bert_base_gemms(1) / gpt2_gemms(1) shapes: the per-token projection
  // and FFN GEMMs with the single token on M.
  return {
      {"decode_qkv", {1, 768, 2304}},
      {"decode_attn_out", {1, 768, 768}},
      {"decode_ffn1", {1, 768, 3072}},
      {"decode_ffn2", {1, 3072, 768}},
      {"decode_gpt2_ffn1", {1, 1024, 4096}},
  };
}

std::vector<GemmWorkload> mixed_serve_mix() {
  std::vector<GemmWorkload> mix = resnet50_serve_mix();
  const std::vector<GemmWorkload> t = transformer_serve_mix();
  mix.insert(mix.end(), t.begin(), t.end());
  return mix;
}

}  // namespace axon::serve
