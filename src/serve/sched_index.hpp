// Inference serving: the ready-queue index. The serve loop (serve/pool)
// repeatedly asks one question — "which ready batch dispatches next?" —
// under a strict deterministic ordering: priority class first, then the
// schedule policy's key (SJF estimate / EDF deadline), then waiting age,
// then tie-breaks. The seed implementation answered it with a full linear
// scan per dispatch plus a mid-vector erase, and found continuous-admission
// join targets with another linear scan per arrival: O(n) per event, O(n^2)
// per trace in queue depth — fine at 10^3 requests, hopeless at 10^6.
//
// SchedIndex keeps the exact same ordering in per-priority-class min-heaps
// with lazy invalidation (a mutated or popped entry leaves a stale heap
// item behind; stale items are discarded when they surface), plus a
// per-(K, N) insertion-ordered registry for join lookups. pick/pop/join
// become O(log n) amortized. Because the PickKey ordering ends in a unique
// tie-break (first request id), the heap argmin is the same batch the scan
// argmin was — the simulated timeline is bit-identical, which is what makes
// the refactor safely verifiable (tests diff the two implementations).
//
// The seed behaviour survives as ReadyQueueImpl::kScanReference: the same
// interface backed by the original linear scans, kept as the property-test
// oracle and as the quadratic baseline bench_serve_scale measures against.
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "serve/batcher.hpp"

namespace axon::serve {

/// Order in which ready batches grab free accelerators. Every policy
/// first honours priority classes strictly (a lower-class batch never
/// jumps a higher one), then applies its own key, then breaks remaining
/// ties by ready cycle and first request id — fully deterministic.
enum class SchedulePolicy {
  kFifo,                   ///< by batch ready cycle (then first request id)
  kShortestJobFirst,       ///< by analytically estimated batch cycles
  kEarliestDeadlineFirst,  ///< by earliest member SLO deadline; batches
                           ///< without deadlines go last
};

std::string to_string(SchedulePolicy policy);

/// Which data structure backs the ready queue. Both produce bit-identical
/// schedules (the ordering has no ties to break differently); they differ
/// only in wall-clock complexity.
enum class ReadyQueueImpl {
  kIndexed,        ///< per-class heaps + join registry, O(log n) per event
  kScanReference,  ///< the seed linear scans, O(n) per event — the oracle
                   ///< the property tests and the scale bench compare
                   ///< against
};

std::string to_string(ReadyQueueImpl impl);

/// One ordering for everything an idle accelerator could take — a closed
/// ready batch or, under continuous admission, a still-open batcher group:
/// priority class first (strict under every policy), then the policy key,
/// then waiting age, with deterministic tie-breaks (a ready batch beats an
/// open group on a full tie — it closed first; id0/id1 make the order
/// total, so an argmin is unique however it is computed).
struct PickKey {
  int priority = 0;
  i64 policy_key = 0;  ///< SJF estimate / EDF deadline; ignored for FIFO
  i64 age_cycle = 0;   ///< batch ready cycle, or group oldest admit
  bool open_group = false;
  i64 id0 = 0;  ///< first request id (batch) or K (group)
  i64 id1 = 0;  ///< 0 (batch) or N (group)
};

/// Strict "a dispatches before b" under `policy`.
bool key_better(SchedulePolicy policy, const PickKey& a, const PickKey& b);

/// The ready queue: closed batches waiting for a device, ordered by
/// PickKey. Entries carry the pool's cached SJF estimate so key
/// comparisons never re-run the cost model.
class SchedIndex {
 public:
  /// `max_batch` bounds join eligibility (a full batch takes no late
  /// arrivals); `track_joins` enables the (K, N) join registry — pools
  /// without continuous admission skip the bookkeeping entirely.
  SchedIndex(SchedulePolicy policy, ReadyQueueImpl impl, int max_batch,
             bool track_joins);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Adds a closed batch with its cached cost estimate.
  void push(Batch batch, i64 estimate);

  /// Key of the batch pop_best() would return; requires !empty(). The
  /// serve loop compares this against open-group keys under continuous
  /// admission before committing to a pop.
  [[nodiscard]] PickKey best_key();

  /// Removes and returns the best batch; requires !empty().
  Batch pop_best();

  /// Continuous-admission join target: the earliest-pushed live batch with
  /// matching (K, N) and stage class, unfrozen membership (m_executed ==
  /// 0), and a spare seat — exactly the "first match in ready order" the
  /// seed scan picked. Returns a slot handle, or -1 when none qualifies.
  /// The caller absorbs the request into batch(slot) and then must call
  /// joined(slot, ...) to restore the index invariants.
  [[nodiscard]] i64 find_joinable(i64 K, i64 N, StageClass cls);

  /// Mutable access to a batch returned by find_joinable.
  [[nodiscard]] Batch& batch(i64 slot);

  /// Re-keys `slot` after an absorb (the merged M grew, the deadline or
  /// priority may have tightened) and retires its join eligibility when
  /// the batch reached max_batch.
  void joined(i64 slot, i64 new_estimate);

  /// True when any queued batch is partially executed (m_executed > 0) —
  /// the condition under which dispatching *another* batch counts as a
  /// realized tile-granular preemption.
  [[nodiscard]] bool has_partial() const;

  /// Live partially executed batches. Maintained in both impls (unlike
  /// has_partial(), which replays the seed scan under kScanReference), so
  /// observability counters read it for free.
  [[nodiscard]] std::size_t partial_count() const { return partial_; }

  /// Index footprint: heap items across all class heaps (kIndexed —
  /// includes lazily invalidated residue, which is the honest measure of
  /// the structure's size) or the scan order's length (kScanReference,
  /// where it equals size()). A counter track in the trace layer.
  [[nodiscard]] std::size_t index_entries() const;

 private:
  struct Entry {
    Batch batch;
    i64 estimate = 0;
    std::uint64_t seq = 0;   ///< global push order; join ties resolve by it
    std::uint32_t version = 0;  ///< bumped on every mutation (lazy invalid.)
    bool live = false;
    bool joinable = false;
  };

  /// Heap item: a snapshot of the entry's key at push/re-key time. A
  /// version mismatch at pop time means the entry mutated (or died) since
  /// — the item is stale and discarded.
  struct HeapItem {
    PickKey key;
    i64 slot = 0;
    std::uint32_t version = 0;
  };
  struct WorseThan {
    SchedulePolicy policy;
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      return key_better(policy, b.key, a.key);
    }
  };
  using ClassHeap =
      std::priority_queue<HeapItem, std::vector<HeapItem>, WorseThan>;

  [[nodiscard]] PickKey key_of(const Entry& e) const;
  void index_push(i64 slot);
  void register_join(i64 slot);
  void unregister_join(i64 slot);
  /// Indexed mode: discards stale heap tops and returns the slot of the
  /// best live entry (lowest nonempty class heap's top).
  i64 indexed_best();
  /// Scan mode: the seed pick_next_batch — linear argmin over push order.
  i64 scan_best();
  void erase(i64 slot);

  SchedulePolicy policy_;
  ReadyQueueImpl impl_;
  int max_batch_;
  bool track_joins_;

  std::vector<Entry> slots_;
  std::vector<i64> free_;
  std::size_t live_ = 0;
  std::size_t partial_ = 0;  ///< live entries with m_executed > 0
  std::uint64_t next_seq_ = 0;
  /// Slot best_key() last resolved, reused by pop_best() so a key-peek
  /// followed by a pop costs one search, not two (the seed's pick scan
  /// ran once per dispatch; the scan-reference mode must match that cost
  /// profile exactly to stay an honest quadratic baseline). Invalidated
  /// by any mutation.
  i64 cached_best_ = -1;

  // kIndexed: one min-heap per priority class, keyed by PickKey snapshots.
  std::map<int, ClassHeap> heaps_;
  // Join registry: per (K, N, stage class), live joinable slots in push
  // order.
  std::map<std::tuple<i64, i64, StageClass>,
           std::set<std::pair<std::uint64_t, i64>>>
      joinable_;

  // kScanReference: slots in push order (the seed `ready` vector).
  std::vector<i64> order_;
};

}  // namespace axon::serve
