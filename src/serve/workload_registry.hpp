// Inference serving, layer 0.5: the workload interning table. Every trace
// names its workloads ("decode_ffn2", "prefill_ffn2", ...) and those names
// used to travel on every Request and RequestRecord as heap-allocated
// std::strings, with per-request std::map<std::string,...> probes for SLO
// lookup and report grouping. At 10^7 requests that is the wall.
//
// A WorkloadRegistry is a register-once table scoped to one trace: it maps
// name <-> WorkloadId (a small dense integer) and carries the canonical
// GemmShape and SloPolicy registered for that name. Requests and records
// carry only the WorkloadId; names re-materialize at render time (report
// summaries, trace JSON), so the output bytes are unchanged while the hot
// path is a vector index.
//
// Registries are deliberately per-trace, not global: the same name can map
// to different shapes/SLOs in different scenarios ("prefill_ffn2" is
// {128,3072,768} in mixed_fleet but {512,3072,768} in chunked_prefill).
// The registry is small (one entry per distinct workload name) and
// copyable — reports keep a copy so they can render names after the trace
// source is gone.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace axon::serve {

/// Dense per-trace workload index; ids are assigned in intern order
/// starting at 0, so two runs that intern the same names in the same order
/// agree on every id.
using WorkloadId = std::uint32_t;

/// SLO budget + priority class assigned to requests of one workload.
struct SloPolicy {
  i64 slo_budget_cycles = -1;  ///< deadline = arrival + budget; -1 = no SLO
  int priority = 0;            ///< lower = more urgent
};

/// Scheduling class of one stage of a workload's network. kGeneral is the
/// wildcard every pre-existing single-GEMM workload carries: it batches
/// with itself only (grouping keys include the class) and routes anywhere.
/// kPrefill/kDecode exist so StageAffinity routing can steer compute-bound
/// prompt stages and bandwidth-bound token stages to different fleet pools.
enum class StageClass : std::uint8_t { kGeneral = 0, kPrefill, kDecode };

const char* to_string(StageClass cls);

/// One stage of a workload's network, lowered to a GEMM.
struct Stage {
  GemmShape gemm;
  StageClass cls = StageClass::kGeneral;
};

/// An ordered chain of stages a request flows through: stage k+1 is
/// admitted (through the normal batcher/scheduler path) when stage k
/// retires, with the activation handoff priced through the FabricModel.
/// Single-GEMM workloads are length-1 chains, so the serve loop has one
/// code path and pre-chain traces stay bit-identical.
using StageChain = std::vector<Stage>;

class WorkloadRegistry {
 public:
  /// Interns `name`, returning its id. First registration wins: a repeat
  /// intern of an existing name returns the original id and keeps the
  /// original shape/policy (mixes may legitimately repeat a name).
  WorkloadId intern(const std::string& name, const GemmShape& shape = {},
                    const SloPolicy& slo = {});

  /// Interns a multi-stage workload. `chain` must be non-empty; the
  /// workload's canonical shape is the first stage's GEMM (what the trace
  /// generators stamp on arriving requests). First registration wins, like
  /// intern().
  WorkloadId intern_chain(const std::string& name, const StageChain& chain,
                          const SloPolicy& slo = {});

  /// Id for an already-interned name; AXON_CHECKs when absent.
  [[nodiscard]] WorkloadId id(const std::string& name) const;
  /// Lookup that reports absence instead of failing: true and fills `out`
  /// when the name is interned.
  [[nodiscard]] bool find(const std::string& name, WorkloadId* out) const;

  [[nodiscard]] const std::string& name(WorkloadId id) const;
  [[nodiscard]] const GemmShape& shape(WorkloadId id) const;
  [[nodiscard]] const SloPolicy& slo(WorkloadId id) const;

  /// The stage chain for `id`. Always non-empty: plain intern() registers
  /// a length-1 {shape, kGeneral} chain.
  [[nodiscard]] const StageChain& chain(WorkloadId id) const;
  /// chain(id).size(), as the serve loop's "is there a successor" probe.
  [[nodiscard]] std::size_t num_stages(WorkloadId id) const;
  /// True when any interned workload has more than one stage — lets the
  /// serve loop and the report skip stage bookkeeping entirely on
  /// pre-chain traces.
  [[nodiscard]] bool multi_stage() const { return multi_stage_; }

  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] bool empty() const { return names_.empty(); }

  /// All names in id order — what probes receive at serve begin so trace
  /// sinks can render ids without holding the registry.
  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }

 private:
  std::vector<std::string> names_;    ///< id -> name
  std::vector<GemmShape> shapes_;     ///< id -> canonical shape
  std::vector<SloPolicy> policies_;   ///< id -> SLO/priority
  std::vector<StageChain> chains_;    ///< id -> stage chain (never empty)
  std::map<std::string, WorkloadId> ids_;  ///< name -> id
  bool multi_stage_ = false;  ///< any chain with > 1 stage interned
};

}  // namespace axon::serve
