// Inference serving, layer 4: results. Per-request queueing/compute
// latency records plus fleet-level aggregates — percentile latencies
// (sim/stats Histogram), throughput, accelerator utilization, batching
// effectiveness, and SLO attainment with per-workload / per-priority-class
// breakdowns. Everything is in simulated cycles; wall-clock fields are
// reported separately so the "N threads give the same simulated answer"
// determinism contract stays visible.
//
// Records are stored *columnar* (RecordStore): one parallel vector per
// field, with narrow types where the value range allows. The batch-level
// fields every member of a batch shares (ready/dispatch/completion cycles,
// service, size, chunks, accelerator) are normalized into a per-batch
// table reached through a 4-byte batch_ref column — ~30 bytes per request
// plus ~38 per batch, instead of the ~150+ of an AoS vector of
// string-carrying structs. Ids stay implicit (id == row index) until a
// push breaks the sequence, which the streamed serve path never does.
// RequestRecord survives as the gathered row view — indexing or iterating
// the store materializes a RequestRecord by value, so record-diff tests
// and probes are unchanged. Aggregate statistics (histograms, per-slice
// breakdowns) are computed on demand from the columns rather than stored:
// a 10^7-request report holds its columns and a handful of scalars, and
// only a summary() call pays for histograms.
#pragma once

#include <cstdint>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/probe.hpp"
#include "serve/workload_registry.hpp"
#include "sim/stats.hpp"

namespace axon::serve {

struct Request;

/// Per-request timeline, filled when the batch containing the request
/// completes. This is the *row view*: RecordStore below holds the data as
/// columns and gathers one of these on demand.
struct RequestRecord {
  i64 id = 0;
  WorkloadId workload = 0;   ///< interned name (report registry renders it)
  GemmShape gemm;
  i64 arrival_cycle = 0;
  i64 batch_ready_cycle = 0; ///< its batch closed (left the batcher)
  i64 dispatch_cycle = 0;    ///< batch handed to an accelerator
  i64 completion_cycle = 0;  ///< batch finished
  i64 deadline_cycle = -1;   ///< absolute SLO deadline; -1 = no SLO
  /// Fleet cycles its batch spent actually executing (sum of its chunks'
  /// durations) — the service term of the latency breakdown.
  i64 service_cycles = 0;
  int priority = 0;          ///< priority class (lower = more urgent)
  int batch_size = 0;        ///< members of the batch it rode in
  int batch_chunks = 1;      ///< chunk dispatches its batch ran as (1 = whole)
  int accelerator = -1;      ///< pool member that executed its final chunk

  // Multi-stage (StageChain) extension. Single-stage requests keep the
  // defaults and none of the batch-field semantics change. For a
  // stage_count > 1 request the batch fields above describe the *final*
  // stage's batch; the aggregates below fold every stage in, and the
  // breakdown methods switch to them so the latency identity extends
  // exactly: latency == batch_wait + queue_wait + service +
  // preempt_blocked + handoff, summed across stages.
  int stage_count = 1;       ///< stages in the workload's chain
  i64 handoff_cycles = 0;    ///< inter-stage activation transfers (fabric)
  i64 agg_batch_wait = 0;    ///< sum of per-stage batch waits
  i64 agg_queue_wait = 0;    ///< sum of per-stage queue waits
  i64 agg_service = 0;       ///< sum of per-stage service cycles
  i64 agg_preempt = 0;       ///< sum of per-stage preempt-blocked cycles

  /// Arrival to first service: with chunked dispatch this is exactly the
  /// head-of-line blocking term tile-granular preemption bounds.
  [[nodiscard]] i64 queue_cycles() const {
    return dispatch_cycle - arrival_cycle;
  }
  [[nodiscard]] i64 compute_cycles() const {
    return completion_cycle - dispatch_cycle;
  }
  [[nodiscard]] i64 latency_cycles() const {
    return completion_cycle - arrival_cycle;
  }
  [[nodiscard]] bool has_deadline() const { return deadline_cycle >= 0; }
  [[nodiscard]] bool met_deadline() const {
    return !has_deadline() || completion_cycle <= deadline_cycle;
  }
  /// Cycles past the deadline (0 when met or no SLO).
  [[nodiscard]] i64 miss_cycles() const {
    return met_deadline() ? 0 : completion_cycle - deadline_cycle;
  }

  // Latency breakdown: latency == batch_wait + queue_wait + service +
  // preempt_blocked (+ handoff, zero for single-stage), exactly. A request
  // absorbed into an already-closed batch (continuous admission) joins a
  // batch whose ready cycle predates its own arrival — its batch wait is 0
  // and its queue wait starts at arrival, which is what the
  // effective-ready clamp below encodes. Multi-stage requests report the
  // per-stage sums instead of the final-stage terms.
  [[nodiscard]] i64 effective_ready_cycle() const {
    return batch_ready_cycle > arrival_cycle ? batch_ready_cycle
                                             : arrival_cycle;
  }
  /// Arrival until its batch closed: time spent forming.
  [[nodiscard]] i64 batch_wait_cycles() const {
    if (stage_count > 1) return agg_batch_wait;
    return effective_ready_cycle() - arrival_cycle;
  }
  /// Batch closed until first dispatch: time queued for a device.
  [[nodiscard]] i64 queue_wait_cycles() const {
    if (stage_count > 1) return agg_queue_wait;
    return dispatch_cycle - effective_ready_cycle();
  }
  /// Cycles spent actually executing, across every stage (== the
  /// service_cycles field for single-stage requests).
  [[nodiscard]] i64 total_service_cycles() const {
    return stage_count > 1 ? agg_service : service_cycles;
  }
  /// In service but not executing: cycles between first dispatch and
  /// completion its batch spent re-queued between chunks (preempted or
  /// waiting for a device). 0 for single-chunk batches.
  [[nodiscard]] i64 preempt_blocked_cycles() const {
    if (stage_count > 1) return agg_preempt;
    return compute_cycles() - service_cycles;
  }

  /// Full-field equality — the primitive the determinism checks (indexed
  /// vs scan-reference scheduler, 1 vs 8 threads) diff whole reports
  /// with. New fields must be added here so those checks stay complete.
  friend bool operator==(const RequestRecord& a, const RequestRecord& b) {
    return a.id == b.id && a.workload == b.workload && a.gemm == b.gemm &&
           a.arrival_cycle == b.arrival_cycle &&
           a.batch_ready_cycle == b.batch_ready_cycle &&
           a.dispatch_cycle == b.dispatch_cycle &&
           a.completion_cycle == b.completion_cycle &&
           a.deadline_cycle == b.deadline_cycle &&
           a.service_cycles == b.service_cycles &&
           a.priority == b.priority && a.batch_size == b.batch_size &&
           a.batch_chunks == b.batch_chunks &&
           a.accelerator == b.accelerator &&
           a.stage_count == b.stage_count &&
           a.handoff_cycles == b.handoff_cycles &&
           a.agg_batch_wait == b.agg_batch_wait &&
           a.agg_queue_wait == b.agg_queue_wait &&
           a.agg_service == b.agg_service && a.agg_preempt == b.agg_preempt;
  }
  friend bool operator!=(const RequestRecord& a, const RequestRecord& b) {
    return !(a == b);
  }
};

/// Columnar (SoA) store of RequestRecords, normalized: per-request columns
/// hold only request-own fields plus a batch_ref; the seven fields all
/// members of a batch share live once per batch in a parallel batch table.
/// Fields with bounded ranges use narrow columns (priority/accelerator
/// i16, batch_size/batch_chunks u16 — pushes AXON_CHECK the ranges); GEMM
/// shapes are interned into a small per-store table (a trace carries a
/// handful of distinct shapes). operator[] and iteration gather full
/// RequestRecords by value, so
/// `for (const RequestRecord& rec : report.records)` works unchanged.
class RecordStore {
 public:
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = RequestRecord;
    using difference_type = std::ptrdiff_t;
    using pointer = const RequestRecord*;
    using reference = RequestRecord;

    const_iterator(const RecordStore* store, std::size_t i)
        : store_(store), i_(i) {}
    RequestRecord operator*() const { return (*store_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const RecordStore* store_;
    std::size_t i_;
  };

  void reserve(std::size_t n);
  void push_back(const RequestRecord& r);

  /// Admission-time half of a row: files the request's immutable fields
  /// (id, workload, shape, arrival, deadline, priority) and returns the
  /// row index, leaving the batch_ref unset for complete_row(). The serve
  /// loop writes rows in admission order and finishes them in retire
  /// order, so queued batches carry tiny members instead of full
  /// requests — the knob that keeps a saturated 10^7-request backlog
  /// inside the memory budget.
  std::uint32_t push_admitted(const Request& r);
  /// Files one completed batch's shared fields; returns its batch table
  /// row for complete_row().
  std::uint32_t push_batch(i64 ready_cycle, i64 dispatch_cycle,
                           i64 completion_cycle, i64 service_cycles,
                           int batch_size, int batch_chunks, int accelerator);
  /// Retire-time half: links a push_admitted() row to its batch.
  void complete_row(std::uint32_t row, std::uint32_t batch);

  /// Multi-stage retire-time extension: files the cross-stage aggregates
  /// for a row whose workload chained through `stage_count` > 1 stages.
  /// Lazily materializes the stage columns on first use, so single-stage
  /// stores carry zero extra bytes and stay byte-identical to pre-chain
  /// runs. Call after complete_row() links the final stage's batch.
  void complete_stages(std::uint32_t row, int stage_count, i64 handoff_cycles,
                       i64 agg_batch_wait, i64 agg_queue_wait, i64 agg_service,
                       i64 agg_preempt);

  /// One row of the per-stage table: where each stage of a multi-stage
  /// request ran and how its cycles split. Keyed by request id (not row —
  /// ids survive sort_by_id()); rows land in stage-retire order.
  struct StageRecord {
    i64 id = 0;              ///< request id
    int stage = 0;           ///< stage index within the chain
    i64 arrival_cycle = 0;   ///< stage admission (prev completion + handoff)
    i64 ready_cycle = 0;     ///< its batch closed
    i64 dispatch_cycle = 0;  ///< first chunk dispatched
    i64 completion_cycle = 0;
    i64 service_cycles = 0;  ///< executing cycles of its batch
    i64 handoff_cycles = 0;  ///< activation transfer into the *next* stage
    int accelerator = -1;    ///< member that ran its final chunk
  };

  /// Appends one per-stage row (multi-stage workloads only; single-stage
  /// traffic never touches the table).
  void push_stage(const StageRecord& s);
  [[nodiscard]] std::size_t num_stage_rows() const { return s_id_.size(); }
  [[nodiscard]] StageRecord stage_row(std::size_t i) const;

  [[nodiscard]] i64 id(std::size_t i) const {
    return ids_implicit_ ? static_cast<i64>(i) : id_[i];
  }

  [[nodiscard]] std::size_t size() const { return workload_.size(); }
  [[nodiscard]] bool empty() const { return workload_.empty(); }
  /// Gathers row `i` into a value RequestRecord.
  [[nodiscard]] RequestRecord operator[](std::size_t i) const;
  [[nodiscard]] const_iterator begin() const {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator(this, size());
  }

  /// Raw column readers for tight aggregate passes that need one field,
  /// not a 13-field gather. Batch-level fields indirect through the row's
  /// batch_ref; reading one on a row whose batch has not completed is a
  /// bug the gather path checks loudly.
  [[nodiscard]] i64 arrival_cycle(std::size_t i) const {
    return arrival_cycle_[i];
  }
  [[nodiscard]] i64 dispatch_cycle(std::size_t i) const {
    return b_dispatch_[batch_ref_[i]];
  }
  [[nodiscard]] i64 completion_cycle(std::size_t i) const {
    return b_completion_[batch_ref_[i]];
  }
  [[nodiscard]] i64 deadline_cycle(std::size_t i) const {
    return deadline_cycle_[i];
  }
  [[nodiscard]] int accelerator(std::size_t i) const {
    return b_accel_[batch_ref_[i]];
  }
  [[nodiscard]] WorkloadId workload(std::size_t i) const {
    return workload_[i];
  }
  [[nodiscard]] int priority(std::size_t i) const { return priority_[i]; }

  /// Stable reorder by request id (the pool retires in completion order;
  /// reports and record diffs are id-ordered). In-place cycle-following
  /// permutation per column — no per-column scratch copy, so a 10^7-row
  /// sort costs one u32 index vector, not a second store.
  void sort_by_id();

 private:
  /// batch_ref placeholder for rows admitted but not yet completed.
  static constexpr std::uint32_t kUnsetBatch = 0xffffffffu;

  std::uint32_t intern_shape(const GemmShape& shape);
  /// Switches from implicit ids (id == row) to an explicit column when a
  /// push breaks the 0,1,2,... sequence.
  void materialize_ids();
  /// Backfills the lazily-created multi-stage columns with single-stage
  /// defaults up to the current size.
  void materialize_stage_columns();

  // Per-request columns. id_ stays empty while ids are implicit.
  std::vector<i64> id_;
  bool ids_implicit_ = true;
  std::vector<WorkloadId> workload_;
  std::vector<std::uint32_t> gemm_id_;  ///< index into shapes_
  std::vector<i64> arrival_cycle_;
  std::vector<i64> deadline_cycle_;
  std::vector<std::int16_t> priority_;
  std::vector<std::uint32_t> batch_ref_;  ///< index into batch columns

  // Per-batch columns: the fields every member of a batch shares, stored
  // once. 10^7 requests ride in ~10^6 batches, so this is the difference
  // between ~720 MB and ~350 MB of record storage.
  std::vector<i64> b_ready_;
  std::vector<i64> b_dispatch_;
  std::vector<i64> b_completion_;
  std::vector<i64> b_service_;
  std::vector<std::uint16_t> b_size_;
  std::vector<std::uint16_t> b_chunks_;
  std::vector<std::int16_t> b_accel_;

  std::vector<GemmShape> shapes_;  ///< gemm_id -> shape
  std::map<std::tuple<i64, i64, i64>, std::uint32_t> shape_ids_;

  // Multi-stage per-request columns, lazily materialized by the first
  // complete_stages() call: empty (zero bytes, untouched gather path) for
  // every single-stage trace.
  bool has_stage_columns_ = false;
  std::vector<std::uint16_t> stage_count_;
  std::vector<i64> handoff_cycles_;
  std::vector<i64> agg_batch_wait_;
  std::vector<i64> agg_queue_wait_;
  std::vector<i64> agg_service_;
  std::vector<i64> agg_preempt_;

  // Per-stage table (multi-stage workloads only), in stage-retire order.
  std::vector<i64> s_id_;
  std::vector<std::uint16_t> s_stage_;
  std::vector<i64> s_arrival_;
  std::vector<i64> s_ready_;
  std::vector<i64> s_dispatch_;
  std::vector<i64> s_completion_;
  std::vector<i64> s_service_;
  std::vector<i64> s_handoff_;
  std::vector<std::int16_t> s_accel_;
};

/// Aggregates for one slice of the trace — a workload, a priority class,
/// or the whole fleet. All accessors are well-formed on an empty slice.
/// Built on demand by the ServeReport accessors below; not stored.
struct GroupStats {
  std::size_t requests = 0;
  std::size_t with_deadline = 0;  ///< members carrying an SLO
  std::size_t met_deadline = 0;   ///< ... that completed in budget
  Histogram latency;              ///< end-to-end latency samples
  Histogram miss;                 ///< overage cycles of missed requests
  /// Arrival-to-first-dispatch cycles — how long the slice sat blocked
  /// behind in-service work. The per-class view of this histogram is the
  /// number chunked prefill exists to shrink for the interactive class.
  Histogram blocking;
  // Latency breakdown terms (RequestRecord breakdown methods): the four
  // sum to end-to-end latency per request, so percentile columns over
  // these explain *where* a slice's p99 lives.
  Histogram batch_wait;       ///< forming in the batcher
  Histogram queue_wait;       ///< closed, waiting for a device
  Histogram service;          ///< executing on a device
  Histogram preempt_blocked;  ///< mid-service, re-queued between chunks

  void add(const RequestRecord& r);
  /// Pre-sizes the slice's histograms for `n` expected members (miss stays
  /// unreserved — usually a small minority).
  void reserve(std::size_t n);
  /// Fraction of SLO-carrying requests that met their deadline; 1.0 when
  /// the slice carries no deadlines (nothing to violate).
  [[nodiscard]] double slo_attainment() const;
};

/// Per-fleet-member aggregates: who did the work, how busy they were, and
/// how their weight cache fared. Filled by the pool at drain time
/// (names/busy/batches/cache counters) and by finalize() (request counts).
struct AcceleratorStats {
  std::string name;      ///< spec label ("acc0", "hbm32", ...)
  i64 busy_cycles = 0;   ///< fleet cycles spent executing dispatches
  /// Dispatches this member executed. With chunking off every batch is one
  /// dispatch, so this is a batch count; with chunking on it counts chunks
  /// (one batch can appear on several members).
  i64 batches = 0;
  std::size_t requests = 0;  ///< requests those batches carried
  i64 weight_hits = 0;       ///< dispatches whose (K, N) weights were warm
  i64 weight_misses = 0;     ///< ... that had to stream weights from DRAM
  i64 weight_evictions = 0;  ///< cache entries displaced to make room
  /// Fabric traffic (serve/contention.hpp): dispatches this member took
  /// from a non-local ingress node, and the fleet cycles of hop latency +
  /// link serialization those dispatches paid. Zero without a topology.
  i64 hop_dispatches = 0;
  i64 hop_cycles = 0;

  /// Fraction of dispatches served from the weight cache; 0 when the
  /// member has no cache (or never dispatched).
  [[nodiscard]] double weight_hit_rate() const;
  /// Busy fraction of the fleet makespan.
  [[nodiscard]] double utilization(i64 makespan_cycles) const;
};

/// Per-memory-node aggregates of the shared-bandwidth arbiter
/// (serve/contention.hpp). Present only when the pool ran with a
/// NodeTopology; empty otherwise.
struct NodeStats {
  std::string name;               ///< "node0", "node1", ...
  int devices = 0;                ///< fleet members grouped into this node
  i64 bw_bytes_per_cycle = 0;     ///< shared budget; <= 0 = unlimited
  i64 bytes_drained = 0;          ///< DRAM bytes the node actually served
  /// Realized transfer-leg fleet cycles across the node's streams (under
  /// contention a stream's transfer leg stretches past its solo price).
  i64 transfer_cycles = 0;
  /// The same streams priced at each device's *private* channel rate —
  /// the contention-free denominator of slowdown().
  i64 transfer_cycles_private = 0;
  i64 contended_dispatches = 0;   ///< admits that saw >= 2 streams in flight
  i64 demand_peak = 0;            ///< max concurrent streams observed

  /// Mean bandwidth draw as a fraction of the node budget over the
  /// makespan; 0 when unlimited or the makespan is empty.
  [[nodiscard]] double utilization(i64 makespan_cycles) const;
  /// Realized transfer cycles over the private-channel price (>= 1.0 —
  /// how much contention actually stretched this node's streams); 1.0
  /// when nothing streamed.
  [[nodiscard]] double slowdown() const;
};

struct ServeReport {
  RecordStore records;  ///< sorted by request id after finalize()

  /// Interning table for every WorkloadId in `records` — copied from the
  /// trace source so names can render after the source is gone. Hand-built
  /// reports intern through it directly.
  WorkloadRegistry workloads;

  int num_accelerators = 0;
  int num_threads = 0;  ///< wall-clock workers used (no effect on cycles)
  i64 makespan_cycles = 0;      ///< last completion cycle
  i64 total_busy_cycles = 0;    ///< sum of per-accelerator busy cycles
  /// Logical batches: the chunks of one batch count once.
  i64 total_batches = 0;
  /// Chunk dispatches; equals total_batches when chunking is off (every
  /// batch is one whole-remainder dispatch).
  i64 total_chunks = 0;
  /// Dispatches that jumped ahead of a partially executed batch waiting in
  /// the ready queue — tile-granular preemptions actually exercised.
  i64 preemptions = 0;
  /// SLO scalar counters, eager (finalize computes them in one column
  /// scan) so slo_attainment() stays O(1) without histogram builds.
  std::size_t with_deadline = 0;
  std::size_t met_deadline = 0;
  double wall_seconds = 0.0;    ///< host time spent simulating
  /// Serve-loop self-profile (obs/probe PhaseProfiler): wall time by loop
  /// phase. Populated only when PoolConfig::self_profile is set;
  /// informational, never part of the deterministic timeline.
  obs::PhaseProfile phase_profile;

  /// One entry per fleet member, indexed by RequestRecord::accelerator.
  std::vector<AcceleratorStats> per_accelerator;

  /// One entry per memory node when the pool ran with a NodeTopology
  /// (serve/contention.hpp); empty without one. Summarizes the
  /// shared-bandwidth arbiter: utilization of each node's budget, realized
  /// slowdown vs private channels, contended dispatches, peak demand.
  std::vector<NodeStats> per_node;

  /// Sorts records by id and recomputes the scalar aggregates (makespan,
  /// SLO counters, per-accelerator request counts); the pool calls this
  /// once after the simulation drains. The pool-filled fields of
  /// `per_accelerator` (names, busy cycles, cache counters) are kept.
  /// Well-formed (all-zero aggregates) when the trace produced no records.
  /// Deliberately does NOT build histograms — a 10^7-request report
  /// finalizes in one scan and ~0 extra memory.
  void finalize();

  // Distribution views, computed from the columns on demand. Callers that
  // need several percentiles should hoist one call into a local.
  [[nodiscard]] Histogram latency() const;   ///< end-to-end latency (cycles)
  [[nodiscard]] Histogram queueing() const;  ///< queueing delay (cycles)
  [[nodiscard]] GroupStats overall() const;  ///< fleet-wide SLO slice
  [[nodiscard]] std::map<std::string, GroupStats> by_workload() const;
  [[nodiscard]] std::map<int, GroupStats> by_class() const;  ///< by priority

  [[nodiscard]] std::size_t num_requests() const { return records.size(); }
  [[nodiscard]] double mean_batch_size() const;
  /// Completed requests per million simulated cycles.
  [[nodiscard]] double throughput_per_mcycle() const;
  /// Busy cycles / (accelerators * makespan).
  [[nodiscard]] double fleet_utilization() const;
  /// Fleet-wide SLO attainment from the eager counters; 1.0 when no
  /// request carries a deadline.
  [[nodiscard]] double slo_attainment() const;

  /// Multi-line human-readable summary; never throws, even with zero
  /// records. Materializes the distribution views once.
  [[nodiscard]] std::string summary() const;
};

}  // namespace axon::serve
