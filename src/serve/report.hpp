// Inference serving, layer 4: results. Per-request queueing/compute
// latency records plus fleet-level aggregates — percentile latencies
// (sim/stats Histogram), throughput, accelerator utilization, batching
// effectiveness. Everything is in simulated cycles; wall-clock fields are
// reported separately so the "N threads give the same simulated answer"
// determinism contract stays visible.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/stats.hpp"

namespace axon::serve {

/// Per-request timeline, filled when the batch containing the request
/// completes.
struct RequestRecord {
  i64 id = 0;
  std::string workload;
  GemmShape gemm;
  i64 arrival_cycle = 0;
  i64 dispatch_cycle = 0;    ///< batch handed to an accelerator
  i64 completion_cycle = 0;  ///< batch finished
  int batch_size = 0;        ///< members of the batch it rode in
  int accelerator = -1;      ///< pool member that executed it

  [[nodiscard]] i64 queue_cycles() const {
    return dispatch_cycle - arrival_cycle;
  }
  [[nodiscard]] i64 compute_cycles() const {
    return completion_cycle - dispatch_cycle;
  }
  [[nodiscard]] i64 latency_cycles() const {
    return completion_cycle - arrival_cycle;
  }
};

struct ServeReport {
  std::vector<RequestRecord> records;  ///< sorted by request id

  int num_accelerators = 0;
  int num_threads = 0;  ///< wall-clock workers used (no effect on cycles)
  i64 makespan_cycles = 0;      ///< last completion cycle
  i64 total_busy_cycles = 0;    ///< sum of per-accelerator busy cycles
  i64 total_batches = 0;
  double wall_seconds = 0.0;    ///< host time spent simulating

  Histogram latency;  ///< end-to-end latency samples (cycles)
  Histogram queueing; ///< queueing-delay samples (cycles)

  /// Recomputes histograms and aggregate cycles from `records`; the pool
  /// calls this once after the simulation drains.
  void finalize();

  [[nodiscard]] std::size_t num_requests() const { return records.size(); }
  [[nodiscard]] double mean_batch_size() const;
  /// Completed requests per million simulated cycles.
  [[nodiscard]] double throughput_per_mcycle() const;
  /// Busy cycles / (accelerators * makespan).
  [[nodiscard]] double fleet_utilization() const;

  /// Multi-line human-readable summary.
  [[nodiscard]] std::string summary() const;
};

}  // namespace axon::serve
