// Inference serving, layer 4: results. Per-request queueing/compute
// latency records plus fleet-level aggregates — percentile latencies
// (sim/stats Histogram), throughput, accelerator utilization, batching
// effectiveness, and SLO attainment with per-workload / per-priority-class
// breakdowns. Everything is in simulated cycles; wall-clock fields are
// reported separately so the "N threads give the same simulated answer"
// determinism contract stays visible.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/probe.hpp"
#include "sim/stats.hpp"

namespace axon::serve {

/// Per-request timeline, filled when the batch containing the request
/// completes.
struct RequestRecord {
  i64 id = 0;
  std::string workload;
  GemmShape gemm;
  i64 arrival_cycle = 0;
  i64 batch_ready_cycle = 0; ///< its batch closed (left the batcher)
  i64 dispatch_cycle = 0;    ///< batch handed to an accelerator
  i64 completion_cycle = 0;  ///< batch finished
  i64 deadline_cycle = -1;   ///< absolute SLO deadline; -1 = no SLO
  /// Fleet cycles its batch spent actually executing (sum of its chunks'
  /// durations) — the service term of the latency breakdown.
  i64 service_cycles = 0;
  int priority = 0;          ///< priority class (lower = more urgent)
  int batch_size = 0;        ///< members of the batch it rode in
  int batch_chunks = 1;      ///< chunk dispatches its batch ran as (1 = whole)
  int accelerator = -1;      ///< pool member that executed its final chunk

  /// Arrival to first service: with chunked dispatch this is exactly the
  /// head-of-line blocking term tile-granular preemption bounds.
  [[nodiscard]] i64 queue_cycles() const {
    return dispatch_cycle - arrival_cycle;
  }
  [[nodiscard]] i64 compute_cycles() const {
    return completion_cycle - dispatch_cycle;
  }
  [[nodiscard]] i64 latency_cycles() const {
    return completion_cycle - arrival_cycle;
  }
  [[nodiscard]] bool has_deadline() const { return deadline_cycle >= 0; }
  [[nodiscard]] bool met_deadline() const {
    return !has_deadline() || completion_cycle <= deadline_cycle;
  }
  /// Cycles past the deadline (0 when met or no SLO).
  [[nodiscard]] i64 miss_cycles() const {
    return met_deadline() ? 0 : completion_cycle - deadline_cycle;
  }

  // Latency breakdown: latency == batch_wait + queue_wait + service +
  // preempt_blocked, exactly. A request absorbed into an already-closed
  // batch (continuous admission) joins a batch whose ready cycle predates
  // its own arrival — its batch wait is 0 and its queue wait starts at
  // arrival, which is what the effective-ready clamp below encodes.
  [[nodiscard]] i64 effective_ready_cycle() const {
    return batch_ready_cycle > arrival_cycle ? batch_ready_cycle
                                             : arrival_cycle;
  }
  /// Arrival until its batch closed: time spent forming.
  [[nodiscard]] i64 batch_wait_cycles() const {
    return effective_ready_cycle() - arrival_cycle;
  }
  /// Batch closed until first dispatch: time queued for a device.
  [[nodiscard]] i64 queue_wait_cycles() const {
    return dispatch_cycle - effective_ready_cycle();
  }
  /// In service but not executing: cycles between first dispatch and
  /// completion its batch spent re-queued between chunks (preempted or
  /// waiting for a device). 0 for single-chunk batches.
  [[nodiscard]] i64 preempt_blocked_cycles() const {
    return compute_cycles() - service_cycles;
  }

  /// Full-field equality — the primitive the determinism checks (indexed
  /// vs scan-reference scheduler, 1 vs 8 threads) diff whole reports
  /// with. New fields must be added here so those checks stay complete.
  friend bool operator==(const RequestRecord& a, const RequestRecord& b) {
    return a.id == b.id && a.workload == b.workload && a.gemm == b.gemm &&
           a.arrival_cycle == b.arrival_cycle &&
           a.batch_ready_cycle == b.batch_ready_cycle &&
           a.dispatch_cycle == b.dispatch_cycle &&
           a.completion_cycle == b.completion_cycle &&
           a.deadline_cycle == b.deadline_cycle &&
           a.service_cycles == b.service_cycles &&
           a.priority == b.priority && a.batch_size == b.batch_size &&
           a.batch_chunks == b.batch_chunks &&
           a.accelerator == b.accelerator;
  }
  friend bool operator!=(const RequestRecord& a, const RequestRecord& b) {
    return !(a == b);
  }
};

/// Aggregates for one slice of the trace — a workload, a priority class,
/// or the whole fleet. All accessors are well-formed on an empty slice.
struct GroupStats {
  std::size_t requests = 0;
  std::size_t with_deadline = 0;  ///< members carrying an SLO
  std::size_t met_deadline = 0;   ///< ... that completed in budget
  Histogram latency;              ///< end-to-end latency samples
  Histogram miss;                 ///< overage cycles of missed requests
  /// Arrival-to-first-dispatch cycles — how long the slice sat blocked
  /// behind in-service work. The per-class view of this histogram is the
  /// number chunked prefill exists to shrink for the interactive class.
  Histogram blocking;
  // Latency breakdown terms (RequestRecord breakdown methods): the four
  // sum to end-to-end latency per request, so percentile columns over
  // these explain *where* a slice's p99 lives.
  Histogram batch_wait;       ///< forming in the batcher
  Histogram queue_wait;       ///< closed, waiting for a device
  Histogram service;          ///< executing on a device
  Histogram preempt_blocked;  ///< mid-service, re-queued between chunks

  void add(const RequestRecord& r);
  /// Pre-sizes the slice's histograms for `n` expected members (miss stays
  /// unreserved — usually a small minority).
  void reserve(std::size_t n);
  /// Fraction of SLO-carrying requests that met their deadline; 1.0 when
  /// the slice carries no deadlines (nothing to violate).
  [[nodiscard]] double slo_attainment() const;
};

/// Per-fleet-member aggregates: who did the work, how busy they were, and
/// how their weight cache fared. Filled by the pool at drain time
/// (names/busy/batches/cache counters) and by finalize() (request counts).
struct AcceleratorStats {
  std::string name;      ///< spec label ("acc0", "hbm32", ...)
  i64 busy_cycles = 0;   ///< fleet cycles spent executing dispatches
  /// Dispatches this member executed. With chunking off every batch is one
  /// dispatch, so this is a batch count; with chunking on it counts chunks
  /// (one batch can appear on several members).
  i64 batches = 0;
  std::size_t requests = 0;  ///< requests those batches carried
  i64 weight_hits = 0;       ///< dispatches whose (K, N) weights were warm
  i64 weight_misses = 0;     ///< ... that had to stream weights from DRAM
  i64 weight_evictions = 0;  ///< cache entries displaced to make room

  /// Fraction of dispatches served from the weight cache; 0 when the
  /// member has no cache (or never dispatched).
  [[nodiscard]] double weight_hit_rate() const;
  /// Busy fraction of the fleet makespan.
  [[nodiscard]] double utilization(i64 makespan_cycles) const;
};

struct ServeReport {
  std::vector<RequestRecord> records;  ///< sorted by request id

  int num_accelerators = 0;
  int num_threads = 0;  ///< wall-clock workers used (no effect on cycles)
  i64 makespan_cycles = 0;      ///< last completion cycle
  i64 total_busy_cycles = 0;    ///< sum of per-accelerator busy cycles
  /// Logical batches: the chunks of one batch count once.
  i64 total_batches = 0;
  /// Chunk dispatches; equals total_batches when chunking is off (every
  /// batch is one whole-remainder dispatch).
  i64 total_chunks = 0;
  /// Dispatches that jumped ahead of a partially executed batch waiting in
  /// the ready queue — tile-granular preemptions actually exercised.
  i64 preemptions = 0;
  double wall_seconds = 0.0;    ///< host time spent simulating
  /// Serve-loop self-profile (obs/probe PhaseProfiler): wall time by loop
  /// phase. Populated only when PoolConfig::self_profile is set;
  /// informational, never part of the deterministic timeline.
  obs::PhaseProfile phase_profile;

  Histogram latency;  ///< end-to-end latency samples (cycles)
  Histogram queueing; ///< queueing-delay samples (cycles)

  GroupStats overall;                          ///< fleet-wide SLO slice
  std::map<std::string, GroupStats> by_workload;
  std::map<int, GroupStats> by_class;          ///< keyed by priority class
  /// One entry per fleet member, indexed by RequestRecord::accelerator.
  std::vector<AcceleratorStats> per_accelerator;

  /// Recomputes histograms, breakdowns, and aggregate cycles from
  /// `records`; the pool calls this once after the simulation drains.
  /// Per-accelerator request counts are recomputed; the pool-filled
  /// fields of `per_accelerator` (names, busy cycles, cache counters) are
  /// kept. Well-formed (all-zero aggregates) when the trace produced no
  /// records.
  void finalize();

  [[nodiscard]] std::size_t num_requests() const { return records.size(); }
  [[nodiscard]] double mean_batch_size() const;
  /// Completed requests per million simulated cycles.
  [[nodiscard]] double throughput_per_mcycle() const;
  /// Busy cycles / (accelerators * makespan).
  [[nodiscard]] double fleet_utilization() const;
  /// Fleet-wide SLO attainment (see GroupStats::slo_attainment).
  [[nodiscard]] double slo_attainment() const {
    return overall.slo_attainment();
  }

  /// Multi-line human-readable summary; never throws, even with zero
  /// records.
  [[nodiscard]] std::string summary() const;
};

}  // namespace axon::serve
