#include "serve/weight_cache.hpp"

#include "common/check.hpp"
#include "memory/traffic.hpp"

namespace axon::serve {

WeightCache::WeightCache(i64 capacity_bytes)
    : capacity_bytes_(capacity_bytes < 0 ? 0 : capacity_bytes) {}

i64 WeightCache::footprint_bytes(i64 K, i64 N) {
  AXON_CHECK(K > 0 && N > 0, "weight footprint needs positive K, N");
  return elems_to_bytes(K * N);
}

bool WeightCache::contains(i64 K, i64 N) const {
  return index_.find(Key{K, N}) != index_.end();
}

bool WeightCache::touch(i64 K, i64 N) {
  if (!enabled()) return false;
  const Key key{K, N};
  const auto it = index_.find(key);
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    return true;
  }
  ++misses_;
  const i64 bytes = footprint_bytes(K, N);
  if (bytes > capacity_bytes_) return false;  // would never fit
  while (used_bytes_ + bytes > capacity_bytes_) {
    const Entry& victim = lru_.back();
    used_bytes_ -= victim.bytes;
    index_.erase(Key{victim.K, victim.N});
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{K, N, bytes});
  index_[key] = lru_.begin();
  used_bytes_ += bytes;
  return false;
}

}  // namespace axon::serve
