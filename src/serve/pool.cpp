#include "serve/pool.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "model/runtime_model.hpp"
#include "serve/weight_cache.hpp"

namespace axon::serve {

std::string to_string(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::kFifo:
      return "FIFO";
    case SchedulePolicy::kShortestJobFirst:
      return "SJF";
    case SchedulePolicy::kEarliestDeadlineFirst:
      return "EDF";
  }
  return "?";
}

std::string to_string(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kFirstFree:
      return "first-free";
    case RoutePolicy::kRoundRobin:
      return "round-robin";
    case RoutePolicy::kLeastCost:
      return "least-cost";
  }
  return "?";
}

std::string to_string(ChunkPolicy policy) {
  switch (policy) {
    case ChunkPolicy::kNone:
      return "none";
    case ChunkPolicy::kFixedTiles:
      return "fixed-tiles";
    case ChunkPolicy::kDeadlineAware:
      return "deadline-aware";
  }
  return "?";
}

namespace {

/// Converts device cycles to simulated fleet cycles at the reference
/// clock: a member clocked above kRefClockMhz retires the same device
/// cycles in proportionally less simulated time.
i64 to_fleet_cycles(i64 device_cycles, int clock_mhz) {
  return ceil_div(device_cycles * kRefClockMhz, clock_mhz);
}

/// What a worker thread reports back for one executed batch.
struct ExecOutcome {
  i64 cycles = 0;
};

/// Pure function of (chunk shape, batch identity, chunk ordinal, device
/// spec, exec mode, seed, cache-hit flag): the worker-side chunk
/// evaluation. The weight-cache decision is made in the serve loop
/// *before* submission, so workers stay stateless and the outcome is
/// thread-count independent. An unchunked batch is simply chunk 0 covering
/// the whole merged M.
ExecOutcome execute_chunk(const GemmShape& gemm, i64 batch_first_id,
                          int chunk_ordinal, const AcceleratorSpec& spec,
                          ExecMode exec, std::uint64_t data_seed,
                          bool weights_resident) {
  if (exec == ExecMode::kAnalytical) {
    const i64 dev = batched_gemm_cycles(
        spec.accelerator.arch, spec.accelerator.dataflow, gemm,
        spec.accelerator.array, spec.dram_bytes_per_cycle, weights_resident);
    return {to_fleet_cycles(dev, spec.clock_mhz)};
  }
  // Cycle-accurate: synthesize operands from a seed derived only from the
  // batch identity and the chunk ordinal, then run the full simulator. The
  // roofline transfer floor applies here too so both modes price weight
  // streaming (and weight-cache hits) alike.
  const auto first_id = static_cast<std::uint64_t>(batch_first_id + 1);
  const auto ordinal = static_cast<std::uint64_t>(chunk_ordinal);
  Rng rng(data_seed ^ (0x9E3779B97F4A7C15ull * first_id) ^
          (0xC2B2AE3D27D4EB4Full * ordinal));
  const Matrix a = random_matrix(gemm.M, gemm.K, rng);
  const Matrix b = random_matrix(gemm.K, gemm.N, rng);
  Accelerator acc(spec.accelerator);
  const RunReport r = acc.run_gemm(a, b);
  const i64 transfer =
      gemm_transfer_cycles(gemm, spec.dram_bytes_per_cycle, weights_resident);
  const i64 dev = r.cycles > transfer ? r.cycles : transfer;
  return {to_fleet_cycles(dev, spec.clock_mhz)};
}

struct InFlight {
  int accelerator = -1;
  Batch batch;
  i64 chunk_m = 0;          ///< rows this dispatch covers
  bool final_chunk = true;  ///< completes the batch (vs. remainder re-queues)
  i64 dispatch_cycle = 0;
  std::future<ExecOutcome> future;
  bool resolved = false;
  i64 completion_cycle = 0;
};

}  // namespace

AcceleratorPool::AcceleratorPool(PoolConfig config)
    : config_(std::move(config)) {
  AXON_CHECK(config_.num_threads >= 1, "pool needs >= 1 worker thread");
  if (config_.fleet.empty()) {
    AXON_CHECK(config_.num_accelerators >= 1, "pool needs >= 1 accelerator");
    fleet_.reserve(static_cast<std::size_t>(config_.num_accelerators));
    for (int i = 0; i < config_.num_accelerators; ++i) {
      AcceleratorSpec spec;
      spec.accelerator = config_.accelerator;
      spec.dram_bytes_per_cycle = config_.dram_bytes_per_cycle;
      fleet_.push_back(std::move(spec));
    }
  } else {
    fleet_ = config_.fleet;
  }
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    AcceleratorSpec& spec = fleet_[i];
    AXON_CHECK(spec.accelerator.array.valid(),
               "invalid array shape for fleet member ", i);
    AXON_CHECK(spec.clock_mhz > 0, "fleet member ", i,
               " needs a positive clock");
    AXON_CHECK(spec.weight_cache_bytes >= 0, "negative weight cache capacity");
    if (spec.name.empty()) spec.name = "acc" + std::to_string(i);
  }
}

i64 AcceleratorPool::device_cycles(std::size_t device, const GemmShape& gemm,
                                   bool weights_resident) const {
  AXON_CHECK(device < fleet_.size(), "device index out of range");
  const AcceleratorSpec& spec = fleet_[device];
  const i64 dev = batched_gemm_cycles(
      spec.accelerator.arch, spec.accelerator.dataflow, gemm,
      spec.accelerator.array, spec.dram_bytes_per_cycle, weights_resident);
  return to_fleet_cycles(dev, spec.clock_mhz);
}

i64 AcceleratorPool::estimate_cycles(const Batch& batch) const {
  // Remaining work only: a partially executed batch re-entering the ready
  // queue between chunks competes on what is left, not on rows already
  // retired.
  return estimate_gemm_cycles(batch.remaining_gemm());
}

i64 AcceleratorPool::estimate_gemm_cycles(const GemmShape& gemm) const {
  // Fleet-best, cache-blind: a stable per-shape key (it never shifts as
  // caches churn), equal to the single-member estimate on a homogeneous
  // fleet.
  i64 best = device_cycles(0, gemm);
  for (std::size_t i = 1; i < fleet_.size(); ++i) {
    best = std::min(best, device_cycles(i, gemm));
  }
  return best;
}

ServeReport AcceleratorPool::serve(RequestQueue requests) {
  const auto wall_start = std::chrono::steady_clock::now();

  const std::size_t fleet_size = fleet_.size();
  DynamicBatcher batcher(config_.batching);
  ThreadPool workers(config_.num_threads);

  std::vector<bool> busy(fleet_size, false);
  std::vector<WeightCache> caches;
  caches.reserve(fleet_size);
  for (const AcceleratorSpec& spec : fleet_) {
    caches.emplace_back(spec.weight_cache_bytes);
  }
  std::vector<i64> device_busy_cycles(fleet_size, 0);
  std::vector<i64> device_batches(fleet_size, 0);
  std::size_t round_robin_next = 0;

  std::vector<InFlight> inflight;
  // Ready batches with their analytic cost, computed once on entry —
  // SJF compares these cached values instead of re-running the model.
  struct ReadyBatch {
    Batch batch;
    i64 estimate = 0;
  };
  std::vector<ReadyBatch> ready;
  ServeReport report;
  report.num_accelerators = static_cast<int>(fleet_size);
  report.num_threads = config_.num_threads;

  i64 now = 0;

  const auto admit_and_collect = [&] {
    while (!requests.empty() && requests.next_arrival() <= now) {
      Request r = requests.pop();
      const i64 arrival = r.arrival_cycle;
      if (config_.batching.continuous_admission) {
        // Continuous admission, join side: a closed-but-undispatched batch
        // with the same weights and spare seats takes the late arrival
        // directly — no reason to start a fresh group and wait out
        // max_wait again. First match in ready order keeps it
        // deterministic. A partially executed batch (re-queued between
        // chunks) is not joinable: its membership froze at first dispatch
        // (Batch::absorb rejects it), so the arrival starts or joins an
        // ordinary group instead.
        bool joined = false;
        for (auto& rb : ready) {
          if (rb.batch.m_executed == 0 &&
              rb.batch.size() < config_.batching.max_batch &&
              rb.batch.gemm.K == r.gemm.K && rb.batch.gemm.N == r.gemm.N) {
            rb.batch.absorb(std::move(r));
            rb.estimate = estimate_cycles(rb.batch);
            joined = true;
            break;
          }
        }
        if (joined) continue;
      }
      batcher.admit(std::move(r), arrival);
    }
    // Once the trace is exhausted nothing can fill an open group, so close
    // them at the current cycle instead of waiting out max_wait.
    std::vector<Batch> closed =
        requests.empty() ? batcher.flush(now) : batcher.pop_ready(now);
    for (auto& b : closed) {
      const i64 estimate = estimate_cycles(b);
      ready.push_back({std::move(b), estimate});
    }
  };

  // One ordering for everything an idle accelerator could take — a closed
  // ready batch or, under continuous admission, a still-open group:
  // priority class first (strict under every policy), then the policy key,
  // then waiting age, with deterministic tie-breaks (a ready batch beats an
  // open group on a full tie — it closed first).
  struct PickKey {
    int priority = 0;
    i64 policy_key = 0;  ///< SJF estimate / EDF deadline; ignored for FIFO
    i64 age_cycle = 0;   ///< batch ready cycle, or group oldest admit
    bool open_group = false;
    i64 id0 = 0;  ///< first request id (batch) or K (group)
    i64 id1 = 0;  ///< 0 (batch) or N (group)
  };
  const auto key_better = [&](const PickKey& a, const PickKey& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    if (config_.policy != SchedulePolicy::kFifo &&
        a.policy_key != b.policy_key) {
      return a.policy_key < b.policy_key;
    }
    if (a.age_cycle != b.age_cycle) return a.age_cycle < b.age_cycle;
    if (a.open_group != b.open_group) return !a.open_group;
    if (a.id0 != b.id0) return a.id0 < b.id0;
    return a.id1 < b.id1;
  };
  const auto batch_key = [&](const ReadyBatch& rb) {
    PickKey k;
    k.priority = rb.batch.top_priority;
    k.policy_key = config_.policy == SchedulePolicy::kShortestJobFirst
                       ? rb.estimate
                       : (rb.batch.earliest_deadline < 0
                              ? std::numeric_limits<i64>::max()
                              : rb.batch.earliest_deadline);
    k.age_cycle = rb.batch.ready_cycle;
    k.id0 = rb.batch.requests.front().id;
    return k;
  };
  const auto view_key = [&](const DynamicBatcher::OpenGroupView& v) {
    PickKey k;
    k.priority = v.top_priority;
    k.policy_key = config_.policy == SchedulePolicy::kShortestJobFirst
                       ? estimate_gemm_cycles(v.merged_gemm())
                       : (v.earliest_deadline < 0
                              ? std::numeric_limits<i64>::max()
                              : v.earliest_deadline);
    k.age_cycle = v.oldest_admit;
    k.open_group = true;
    k.id0 = v.K;
    k.id1 = v.N;
    return k;
  };
  const auto pick_next_batch = [&]() -> std::size_t {
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      if (key_better(batch_key(ready[i]), batch_key(ready[best]))) best = i;
    }
    return best;
  };

  // Routing: the schedule policy decided *what* runs next; this decides
  // *where*. Only called with at least one idle device.
  const auto route_device = [&](const GemmShape& gemm) -> std::size_t {
    switch (config_.routing) {
      case RoutePolicy::kFirstFree:
        break;  // fall through to the index scan below
      case RoutePolicy::kRoundRobin: {
        for (std::size_t off = 0; off < fleet_size; ++off) {
          const std::size_t idx = (round_robin_next + off) % fleet_size;
          if (!busy[idx]) {
            round_robin_next = (idx + 1) % fleet_size;
            return idx;
          }
        }
        break;
      }
      case RoutePolicy::kLeastCost: {
        // Estimated completion time per (batch, device): every idle device
        // is free *now*, so min completion = min cost. Priced cache-aware,
        // which is all it takes for weight affinity — the device that last
        // served this (K, N) skips the weight stream and wins the tie.
        std::size_t best = fleet_size;
        i64 best_cost = 0;
        for (std::size_t i = 0; i < fleet_size; ++i) {
          if (busy[i]) continue;
          const i64 cost =
              device_cycles(i, gemm, caches[i].contains(gemm.K, gemm.N));
          if (best == fleet_size || cost < best_cost) {
            best = i;
            best_cost = cost;
          }
        }
        AXON_CHECK(best < fleet_size, "route_device() with no idle device");
        return best;
      }
    }
    for (std::size_t i = 0; i < fleet_size; ++i) {
      if (!busy[i]) return i;
    }
    AXON_CHECK(false, "route_device() with no idle device");
    return 0;
  };

  // How many of the batch's remaining rows the next dispatch covers on the
  // routed device. The quantum is per-device: chunk_tiles M-tiles of *that*
  // array under *its* dataflow (model/runtime_model m_tile_extent), so
  // chunks always split at tile boundaries and the summed compute cost
  // matches the unchunked batch; the only chunking overhead is re-streaming
  // weights on cache-cold dispatches.
  const auto chunk_extent_for = [&](const Batch& batch,
                                    std::size_t acc) -> i64 {
    const i64 remaining = batch.remaining_m();
    if (config_.chunking == ChunkPolicy::kNone || config_.chunk_tiles <= 0) {
      return remaining;
    }
    const AcceleratorSpec& spec = fleet_[acc];
    const i64 chunk_m =
        m_tile_extent(spec.accelerator.dataflow, spec.accelerator.array) *
        config_.chunk_tiles;
    if (remaining <= chunk_m) return remaining;
    if (config_.chunking == ChunkPolicy::kDeadlineAware &&
        batch.earliest_deadline >= 0) {
      // Chunking never slows the batch by itself (tile-aligned chunks sum
      // to the same compute); what it risks is being *preempted* between
      // chunks. So run whole exactly in the window where the deadline is
      // makeable but only without preemption: slack covers the remaining
      // work yet not one extra chunk's worth of intervening service.
      // Outside that window chunk freely — either there is room to absorb
      // a preemption, or the deadline is already unmakeable and the batch
      // should yield to work that can still meet its own.
      const i64 slack = batch.earliest_deadline - now;
      const i64 remaining_cost = estimate_gemm_cycles(batch.remaining_gemm());
      const i64 margin = estimate_gemm_cycles(
          {chunk_m, batch.gemm.K, batch.gemm.N});
      if (slack >= remaining_cost && slack < remaining_cost + margin) {
        return remaining;
      }
    }
    return chunk_m;
  };

  const auto dispatch = [&] {
    for (;;) {
      if (std::find(busy.begin(), busy.end(), false) == busy.end()) return;
      // Continuous admission, dispatch side: an idle accelerator may take
      // a partially filled group rather than letting it ripen to
      // max_batch/max_wait while capacity sits free. Open groups compete
      // with ready batches under the same key_better ordering, so an
      // urgent open group beats a lax ready batch and vice versa.
      const bool can_take_open =
          config_.batching.continuous_admission && batcher.has_open();
      if (ready.empty() && !can_take_open) return;
      std::size_t chosen = ready.empty() ? 0 : pick_next_batch();
      if (can_take_open) {
        const auto views = batcher.open_views();
        std::size_t best_view = 0;
        for (std::size_t i = 1; i < views.size(); ++i) {
          if (key_better(view_key(views[i]), view_key(views[best_view]))) {
            best_view = i;
          }
        }
        if (ready.empty() ||
            key_better(view_key(views[best_view]), batch_key(ready[chosen]))) {
          Batch b =
              batcher.close_open(views[best_view].K, views[best_view].N, now);
          const i64 estimate = estimate_cycles(b);
          ready.push_back({std::move(b), estimate});
          chosen = ready.size() - 1;
        }
      }
      InFlight f;
      const std::size_t acc =
          route_device(ready[chosen].batch.remaining_gemm());
      f.accelerator = static_cast<int>(acc);
      f.batch = std::move(ready[chosen].batch);
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(chosen));
      // A dispatch that jumps ahead of a partially executed batch still
      // waiting in ready is a realized preemption — the event unchunked
      // dispatch makes impossible.
      for (const auto& rb : ready) {
        if (rb.batch.m_executed > 0) {
          ++report.preemptions;
          break;
        }
      }
      f.chunk_m = chunk_extent_for(f.batch, acc);
      f.final_chunk = f.chunk_m == f.batch.remaining_m();
      f.dispatch_cycle = now;
      if (f.batch.first_dispatch_cycle < 0) f.batch.first_dispatch_cycle = now;
      const int chunk_ordinal = f.batch.chunks_run++;
      ++report.total_chunks;
      const GemmShape chunk_gemm{f.chunk_m, f.batch.gemm.K, f.batch.gemm.N};
      // Touch the routed device's weight cache here, in the serve loop —
      // the hit/miss verdict is part of the deterministic timeline, not of
      // worker execution. Every chunk is its own dispatch, so a later
      // chunk hits iff its weights survived whatever ran in between.
      const bool weights_resident =
          caches[acc].touch(f.batch.gemm.K, f.batch.gemm.N);
      // The worker needs only the chunk shape, the batch identity (the
      // operand seed), and the routed device; share the long-lived spec by
      // pointer instead of copying it and the whole request vector per
      // dispatch.
      f.future = workers.submit([chunk_gemm,
                                 first_id = f.batch.requests.front().id,
                                 chunk_ordinal, spec = &fleet_[acc],
                                 exec = config_.exec,
                                 seed = config_.data_seed, weights_resident] {
        return execute_chunk(chunk_gemm, first_id, chunk_ordinal, *spec, exec,
                             seed, weights_resident);
      });
      busy[acc] = true;
      inflight.push_back(std::move(f));
    }
  };

  for (;;) {
    admit_and_collect();
    dispatch();

    // Next simulated event: an arrival, a batching timeout, or a batch
    // completion. Completion times require the batch costs — harvest every
    // outstanding future here (they have been running concurrently since
    // dispatch; this is the only synchronization point).
    i64 next = -1;
    const auto consider = [&next](i64 t) {
      if (t >= 0 && (next < 0 || t < next)) next = t;
    };
    if (!requests.empty()) consider(requests.next_arrival());
    consider(batcher.next_timeout());
    for (auto& f : inflight) {
      if (!f.resolved) {
        const ExecOutcome outcome = f.future.get();
        f.resolved = true;
        f.completion_cycle = f.dispatch_cycle + outcome.cycles;
      }
      consider(f.completion_cycle);
    }
    if (next < 0) break;  // fully drained
    AXON_CHECK(next >= now, "simulated time went backwards");
    now = next;

    // Retire completions due at `now` in deterministic order.
    std::sort(inflight.begin(), inflight.end(),
              [](const InFlight& a, const InFlight& b) {
                if (a.completion_cycle != b.completion_cycle)
                  return a.completion_cycle < b.completion_cycle;
                return a.accelerator < b.accelerator;
              });
    std::size_t retired = 0;
    for (auto& f : inflight) {
      if (!f.resolved || f.completion_cycle > now) break;
      const i64 busy_cycles = f.completion_cycle - f.dispatch_cycle;
      report.total_busy_cycles += busy_cycles;
      device_busy_cycles[static_cast<std::size_t>(f.accelerator)] +=
          busy_cycles;
      ++device_batches[static_cast<std::size_t>(f.accelerator)];
      busy[static_cast<std::size_t>(f.accelerator)] = false;
      ++retired;
      if (!f.final_chunk) {
        // Remainder re-enters the scheduler: it competes with everything
        // ready or open under the same policy keys at the next dispatch —
        // this re-entry point *is* the tile-granular preemption window.
        f.batch.m_executed += f.chunk_m;
        const i64 estimate = estimate_cycles(f.batch);
        ready.push_back({std::move(f.batch), estimate});
        continue;
      }
      // Final chunk: the batch's members complete together now.
      for (const auto& r : f.batch.requests) {
        RequestRecord rec;
        rec.id = r.id;
        rec.workload = r.workload;
        rec.gemm = r.gemm;
        rec.arrival_cycle = r.arrival_cycle;
        rec.dispatch_cycle = f.batch.first_dispatch_cycle;
        rec.completion_cycle = f.completion_cycle;
        rec.deadline_cycle = r.deadline_cycle;
        rec.priority = r.priority;
        rec.batch_size = f.batch.size();
        rec.batch_chunks = f.batch.chunks_run;
        rec.accelerator = f.accelerator;
        report.records.push_back(std::move(rec));
      }
      ++report.total_batches;
    }
    inflight.erase(inflight.begin(),
                   inflight.begin() + static_cast<std::ptrdiff_t>(retired));
  }

  AXON_CHECK(requests.empty() && batcher.idle() && ready.empty() &&
                 inflight.empty(),
             "serve loop exited with work outstanding");

  report.per_accelerator.resize(fleet_size);
  for (std::size_t i = 0; i < fleet_size; ++i) {
    AcceleratorStats& a = report.per_accelerator[i];
    a.name = fleet_[i].name;
    a.busy_cycles = device_busy_cycles[i];
    a.batches = device_batches[i];
    a.weight_hits = caches[i].hits();
    a.weight_misses = caches[i].misses();
  }

  report.finalize();
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

}  // namespace axon::serve
