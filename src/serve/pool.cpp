#include "serve/pool.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "model/runtime_model.hpp"

namespace axon::serve {

std::string to_string(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::kFifo:
      return "FIFO";
    case SchedulePolicy::kShortestJobFirst:
      return "SJF";
  }
  return "?";
}

namespace {

/// What a worker thread reports back for one executed batch.
struct ExecOutcome {
  i64 cycles = 0;
};

/// Pure function of (batch, config): the worker-side batch evaluation.
ExecOutcome execute_batch(const Batch& batch, const PoolConfig& cfg) {
  if (cfg.exec == ExecMode::kAnalytical) {
    return {batched_gemm_cycles(cfg.accelerator.arch, cfg.accelerator.dataflow,
                                batch.gemm, cfg.accelerator.array,
                                cfg.dram_bytes_per_cycle)};
  }
  // Cycle-accurate: synthesize operands from a seed derived only from the
  // batch identity, then run the full simulator. The roofline transfer
  // floor applies here too so both modes price weight streaming alike.
  const auto first_id =
      static_cast<std::uint64_t>(batch.requests.front().id + 1);
  Rng rng(cfg.data_seed ^ (0x9E3779B97F4A7C15ull * first_id));
  const Matrix a = random_matrix(batch.gemm.M, batch.gemm.K, rng);
  const Matrix b = random_matrix(batch.gemm.K, batch.gemm.N, rng);
  Accelerator acc(cfg.accelerator);
  const RunReport r = acc.run_gemm(a, b);
  const i64 transfer =
      gemm_transfer_cycles(batch.gemm, cfg.dram_bytes_per_cycle);
  return {r.cycles > transfer ? r.cycles : transfer};
}

struct InFlight {
  int accelerator = -1;
  Batch batch;
  i64 dispatch_cycle = 0;
  std::future<ExecOutcome> future;
  bool resolved = false;
  i64 completion_cycle = 0;
};

}  // namespace

AcceleratorPool::AcceleratorPool(PoolConfig config)
    : config_(std::move(config)) {
  AXON_CHECK(config_.num_accelerators >= 1, "pool needs >= 1 accelerator");
  AXON_CHECK(config_.num_threads >= 1, "pool needs >= 1 worker thread");
  AXON_CHECK(config_.accelerator.array.valid(), "invalid array shape");
}

i64 AcceleratorPool::estimate_cycles(const Batch& batch) const {
  return batched_gemm_cycles(config_.accelerator.arch,
                             config_.accelerator.dataflow, batch.gemm,
                             config_.accelerator.array,
                             config_.dram_bytes_per_cycle);
}

ServeReport AcceleratorPool::serve(RequestQueue requests) {
  const auto wall_start = std::chrono::steady_clock::now();

  DynamicBatcher batcher(config_.batching);
  ThreadPool workers(config_.num_threads);

  std::vector<bool> busy(static_cast<std::size_t>(config_.num_accelerators),
                         false);
  std::vector<InFlight> inflight;
  // Ready batches with their analytic cost, computed once on entry —
  // SJF compares these cached values instead of re-running the model.
  struct ReadyBatch {
    Batch batch;
    i64 estimate = 0;
  };
  std::vector<ReadyBatch> ready;
  ServeReport report;
  report.num_accelerators = config_.num_accelerators;
  report.num_threads = config_.num_threads;

  i64 now = 0;

  const auto admit_and_collect = [&] {
    while (!requests.empty() && requests.next_arrival() <= now) {
      Request r = requests.pop();
      const i64 arrival = r.arrival_cycle;
      batcher.admit(std::move(r), arrival);
    }
    // Once the trace is exhausted nothing can fill an open group, so close
    // them at the current cycle instead of waiting out max_wait.
    std::vector<Batch> closed =
        requests.empty() ? batcher.flush(now) : batcher.pop_ready(now);
    for (auto& b : closed) {
      const i64 estimate = estimate_cycles(b);
      ready.push_back({std::move(b), estimate});
    }
  };

  const auto pick_next_batch = [&]() -> std::size_t {
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      const ReadyBatch& a = ready[i];
      const ReadyBatch& b = ready[best];
      bool better = false;
      if (config_.policy == SchedulePolicy::kShortestJobFirst &&
          a.estimate != b.estimate) {
        better = a.estimate < b.estimate;
      } else if (a.batch.ready_cycle != b.batch.ready_cycle) {
        better = a.batch.ready_cycle < b.batch.ready_cycle;
      } else {
        better =
            a.batch.requests.front().id < b.batch.requests.front().id;
      }
      if (better) best = i;
    }
    return best;
  };

  const auto dispatch = [&] {
    for (;;) {
      if (ready.empty()) return;
      int acc = -1;
      for (int i = 0; i < config_.num_accelerators; ++i) {
        if (!busy[static_cast<std::size_t>(i)]) {
          acc = i;
          break;
        }
      }
      if (acc < 0) return;
      const std::size_t chosen = pick_next_batch();
      InFlight f;
      f.accelerator = acc;
      f.batch = std::move(ready[chosen].batch);
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(chosen));
      f.dispatch_cycle = now;
      f.future = workers.submit(
          [batch = f.batch, cfg = config_] { return execute_batch(batch, cfg); });
      busy[static_cast<std::size_t>(acc)] = true;
      inflight.push_back(std::move(f));
    }
  };

  for (;;) {
    admit_and_collect();
    dispatch();

    // Next simulated event: an arrival, a batching timeout, or a batch
    // completion. Completion times require the batch costs — harvest every
    // outstanding future here (they have been running concurrently since
    // dispatch; this is the only synchronization point).
    i64 next = -1;
    const auto consider = [&next](i64 t) {
      if (t >= 0 && (next < 0 || t < next)) next = t;
    };
    if (!requests.empty()) consider(requests.next_arrival());
    consider(batcher.next_timeout());
    for (auto& f : inflight) {
      if (!f.resolved) {
        const ExecOutcome outcome = f.future.get();
        f.resolved = true;
        f.completion_cycle = f.dispatch_cycle + outcome.cycles;
      }
      consider(f.completion_cycle);
    }
    if (next < 0) break;  // fully drained
    AXON_CHECK(next >= now, "simulated time went backwards");
    now = next;

    // Retire completions due at `now` in deterministic order.
    std::sort(inflight.begin(), inflight.end(),
              [](const InFlight& a, const InFlight& b) {
                if (a.completion_cycle != b.completion_cycle)
                  return a.completion_cycle < b.completion_cycle;
                return a.accelerator < b.accelerator;
              });
    std::size_t retired = 0;
    for (auto& f : inflight) {
      if (!f.resolved || f.completion_cycle > now) break;
      for (const auto& r : f.batch.requests) {
        RequestRecord rec;
        rec.id = r.id;
        rec.workload = r.workload;
        rec.gemm = r.gemm;
        rec.arrival_cycle = r.arrival_cycle;
        rec.dispatch_cycle = f.dispatch_cycle;
        rec.completion_cycle = f.completion_cycle;
        rec.batch_size = f.batch.size();
        rec.accelerator = f.accelerator;
        report.records.push_back(std::move(rec));
      }
      report.total_busy_cycles += f.completion_cycle - f.dispatch_cycle;
      ++report.total_batches;
      busy[static_cast<std::size_t>(f.accelerator)] = false;
      ++retired;
    }
    inflight.erase(inflight.begin(),
                   inflight.begin() + static_cast<std::ptrdiff_t>(retired));
  }

  AXON_CHECK(requests.empty() && batcher.idle() && ready.empty() &&
                 inflight.empty(),
             "serve loop exited with work outstanding");

  report.finalize();
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

}  // namespace axon::serve
