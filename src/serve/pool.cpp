#include "serve/pool.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <limits>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "model/im2col_traffic.hpp"
#include "model/runtime_model.hpp"
#include "obs/probe.hpp"
#include "serve/weight_cache.hpp"

namespace axon::serve {

std::string to_string(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kFirstFree:
      return "first-free";
    case RoutePolicy::kRoundRobin:
      return "round-robin";
    case RoutePolicy::kLeastCost:
      return "least-cost";
  }
  return "?";
}

std::string to_string(ChunkPolicy policy) {
  switch (policy) {
    case ChunkPolicy::kNone:
      return "none";
    case ChunkPolicy::kFixedTiles:
      return "fixed-tiles";
    case ChunkPolicy::kDeadlineAware:
      return "deadline-aware";
  }
  return "?";
}

std::string to_string(StageAffinity affinity) {
  switch (affinity) {
    case StageAffinity::kNone:
      return "none";
    case StageAffinity::kPreferred:
      return "preferred";
    case StageAffinity::kStrict:
      return "strict";
  }
  return "?";
}

void PoolConfig::validate() const {
  AXON_CHECK(num_threads >= 1, "pool needs >= 1 worker thread");
  if (fleet.empty()) {
    AXON_CHECK(num_accelerators >= 1, "pool needs >= 1 accelerator");
  }
  AXON_CHECK(batching.max_batch >= 1, "batching needs max_batch >= 1");
  AXON_CHECK(batching.max_wait_cycles >= 0,
             "batching needs a non-negative max_wait_cycles");
  AXON_CHECK(chunking == ChunkPolicy::kNone || chunk_tiles > 0,
             to_string(chunking),
             " chunking needs a positive chunk_tiles quantum");
  AXON_CHECK(!congestion_aware || topology.enabled(),
             "congestion_aware routing needs a NodeTopology — without one "
             "the router has no node demand to read");
  const std::size_t members =
      fleet.empty() ? static_cast<std::size_t>(num_accelerators > 0
                                                   ? num_accelerators
                                                   : 0)
                    : fleet.size();
  AXON_CHECK(!topology.enabled() || topology.device_node.size() == members,
             "topology.device_node maps ", topology.device_node.size(),
             " devices but the fleet has ", members);
  if (stage_affinity != StageAffinity::kNone) {
    bool any_typed = false;
    for (const AcceleratorSpec& spec : fleet) {
      any_typed = any_typed || spec.serves != StageClass::kGeneral;
    }
    AXON_CHECK(any_typed, to_string(stage_affinity),
               " stage affinity needs at least one fleet member with a "
               "non-general `serves` class; on an all-general fleet the "
               "knob would silently do nothing");
  }
}

namespace {

/// What a worker thread reports back for one executed batch: fleet cycles
/// of the whole roofline (private-channel transfer folded in), or — when
/// the contention model owns the transfer leg (`decompose`) — of the
/// compute leg alone, with the arbiter pricing the memory side in the
/// serve loop.
struct ExecOutcome {
  i64 cycles = 0;
};

/// Pure function of (chunk shape, batch identity, chunk ordinal, device
/// spec, exec mode, seed, cache-hit flag): the worker-side chunk
/// evaluation. The weight-cache decision is made in the serve loop
/// *before* submission, so workers stay stateless and the outcome is
/// thread-count independent. An unchunked batch is simply chunk 0 covering
/// the whole merged M.
ExecOutcome execute_chunk(const GemmShape& gemm, i64 batch_first_id,
                          int chunk_ordinal, const AcceleratorSpec& spec,
                          ExecMode exec, std::uint64_t data_seed,
                          bool weights_resident, bool decompose) {
  if (exec == ExecMode::kAnalytical) {
    if (decompose) {
      // Contention model active: the worker prices compute only (dram <= 0
      // makes the roofline pure compute); the serve-loop arbiter owns the
      // transfer leg, whose rate depends on concurrent node demand.
      const i64 compute = batched_gemm_cycles(
          spec.accelerator.arch, spec.accelerator.dataflow, gemm,
          spec.accelerator.array, /*dram_bytes_per_cycle=*/0, false);
      return {to_fleet_cycles(compute, spec.clock_mhz)};
    }
    const i64 dev = batched_gemm_cycles(
        spec.accelerator.arch, spec.accelerator.dataflow, gemm,
        spec.accelerator.array, spec.dram_bytes_per_cycle, weights_resident);
    return {to_fleet_cycles(dev, spec.clock_mhz)};
  }
  // Cycle-accurate: synthesize operands from a seed derived only from the
  // batch identity and the chunk ordinal, then run the full simulator. The
  // roofline transfer floor applies here too so both modes price weight
  // streaming (and weight-cache hits) alike.
  const auto first_id = static_cast<std::uint64_t>(batch_first_id + 1);
  const auto ordinal = static_cast<std::uint64_t>(chunk_ordinal);
  Rng rng(data_seed ^ (0x9E3779B97F4A7C15ull * first_id) ^
          (0xC2B2AE3D27D4EB4Full * ordinal));
  const Matrix a = random_matrix(gemm.M, gemm.K, rng);
  const Matrix b = random_matrix(gemm.K, gemm.N, rng);
  Accelerator acc(spec.accelerator);
  const RunReport r = acc.run_gemm(a, b);
  if (decompose) return {to_fleet_cycles(r.cycles, spec.clock_mhz)};
  const i64 transfer =
      gemm_transfer_cycles(gemm, spec.dram_bytes_per_cycle, weights_resident);
  const i64 dev = r.cycles > transfer ? r.cycles : transfer;
  return {to_fleet_cycles(dev, spec.clock_mhz)};
}

/// A dispatch whose cost evaluation is still in flight on the worker pool.
/// Harvested (future resolved, completion filed in the calendar) before
/// the next time advance — the loop's only synchronization point.
struct PendingExec {
  int accelerator = -1;
  Batch batch;
  i64 chunk_m = 0;          ///< rows this dispatch covers
  bool final_chunk = true;  ///< completes the batch (vs. remainder re-queues)
  i64 dispatch_cycle = 0;
  /// Completion-calendar slot, allocated at dispatch (not harvest): the
  /// contention arbiter keys its stream bookkeeping by slot, and the
  /// demand bump must be visible to later routing the same event.
  std::size_t slot = 0;
  std::future<ExecOutcome> future;
};

/// A resolved dispatch waiting in the completion calendar for its
/// simulated completion cycle to come due.
struct Completion {
  int accelerator = -1;
  Batch batch;
  i64 chunk_m = 0;
  bool final_chunk = true;
  i64 dispatch_cycle = 0;
  i64 completion_cycle = 0;
  /// Calendar-key version (lazy invalidation): the arbiter re-prices filed
  /// completions when node demand changes, each re-price bumps this and
  /// files a fresh key, and retire skips keys whose version no longer
  /// matches. Monotone per slot across reuse, so a stale key can never
  /// collide with a later occupant.
  std::uint32_t version = 0;
};

/// Calendar key: min-heap by (completion cycle, accelerator) — the retire
/// order the seed implementation obtained by re-sorting its whole inflight
/// vector every event. A busy device has exactly one *live* filing;
/// re-priced filings leave stale keys behind, skipped by version check.
struct CompletionKey {
  i64 cycle = 0;
  int accelerator = -1;
  std::size_t slot = 0;
  std::uint32_t version = 0;
};
struct CompletionLater {
  bool operator()(const CompletionKey& a, const CompletionKey& b) const {
    if (a.cycle != b.cycle) return a.cycle > b.cycle;
    return a.accelerator > b.accelerator;
  }
};

}  // namespace

AcceleratorPool::AcceleratorPool(PoolConfig config)
    : config_(std::move(config)) {
  AXON_CHECK(config_.num_threads >= 1, "pool needs >= 1 worker thread");
  if (config_.fleet.empty()) {
    AXON_CHECK(config_.num_accelerators >= 1, "pool needs >= 1 accelerator");
    fleet_.reserve(static_cast<std::size_t>(config_.num_accelerators));
    for (int i = 0; i < config_.num_accelerators; ++i) {
      AcceleratorSpec spec;
      spec.accelerator = config_.accelerator;
      spec.dram_bytes_per_cycle = config_.dram_bytes_per_cycle;
      fleet_.push_back(std::move(spec));
    }
  } else {
    fleet_ = config_.fleet;
  }
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    AcceleratorSpec& spec = fleet_[i];
    AXON_CHECK(spec.accelerator.array.valid(),
               "invalid array shape for fleet member ", i);
    AXON_CHECK(spec.clock_mhz > 0, "fleet member ", i,
               " needs a positive clock");
    AXON_CHECK(spec.weight_cache_bytes >= 0, "negative weight cache capacity");
    if (spec.name.empty()) spec.name = "acc" + std::to_string(i);
  }
  // Static contention model (disabled when the topology is empty): the
  // constructor validates the topology against the normalized fleet and
  // precomputes per-device effective solo bandwidth + hop costs.
  std::vector<DeviceChannel> channels;
  channels.reserve(fleet_.size());
  for (const AcceleratorSpec& spec : fleet_) {
    channels.push_back({spec.clock_mhz, spec.dram_bytes_per_cycle});
  }
  fabric_ = FabricModel(config_.topology, channels);
}

void AcceleratorPool::add_probe(obs::PoolProbe* probe) {
  AXON_CHECK(probe != nullptr, "add_probe(nullptr)");
  probes_.push_back(probe);
}

std::size_t AcceleratorPool::CostKeyHash::operator()(const CostKey& k) const {
  // Boost-style mixing; a collision only costs the map a key compare.
  const auto mix = [](std::uint64_t h, std::uint64_t v) {
    return h ^ (v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2));
  };
  std::uint64_t h = k.device;
  h = mix(h, static_cast<std::uint64_t>(k.M));
  h = mix(h, static_cast<std::uint64_t>(k.K));
  h = mix(h, static_cast<std::uint64_t>(k.N));
  h = mix(h, k.weights_resident ? 0x5EEDull : 0xC0FFEEull);
  h = mix(h, k.demand);
  return static_cast<std::size_t>(h);
}

i64 AcceleratorPool::device_cycles(std::size_t device, const GemmShape& gemm,
                                   bool weights_resident) const {
  AXON_CHECK(device < fleet_.size(), "device index out of range");
  const CostKey key{gemm.M, gemm.K, gemm.N,
                    static_cast<std::uint32_t>(device), weights_resident};
  const auto it = cost_cache_.find(key);
  if (it != cost_cache_.end()) return it->second;
  const AcceleratorSpec& spec = fleet_[device];
  const i64 dev = batched_gemm_cycles(
      spec.accelerator.arch, spec.accelerator.dataflow, gemm,
      spec.accelerator.array, spec.dram_bytes_per_cycle, weights_resident);
  const i64 cycles = to_fleet_cycles(dev, spec.clock_mhz);
  cost_cache_.emplace(key, cycles);
  return cycles;
}

i64 AcceleratorPool::estimate_cycles(const Batch& batch) const {
  // Remaining work only: a partially executed batch re-entering the ready
  // queue between chunks competes on what is left, not on rows already
  // retired.
  return estimate_gemm_cycles(batch.remaining_gemm());
}

i64 AcceleratorPool::estimate_gemm_cycles(const GemmShape& gemm) const {
  // Fleet-best, cache-blind: a stable per-shape key (it never shifts as
  // caches churn), equal to the single-member estimate on a homogeneous
  // fleet. Memoized on its own so the min-over-fleet loop runs once per
  // distinct shape, not once per SJF comparison. With a topology, each
  // member is priced at its *solo* arbitered bandwidth plus its static
  // hop cost — demand-blind, so the key stays stable for SJF ordering,
  // but fabric distance is already in the estimate.
  const CostKey key{gemm.M, gemm.K, gemm.N, CostKey::kFleetBest, false, 0};
  const auto it = cost_cache_.find(key);
  if (it != cost_cache_.end()) return it->second;
  const auto member_cost = [&](std::size_t i) {
    return fabric_.enabled() ? contended_cost(i, gemm, false, 1)
                             : device_cycles(i, gemm);
  };
  i64 best = member_cost(0);
  for (std::size_t i = 1; i < fleet_.size(); ++i) {
    best = std::min(best, member_cost(i));
  }
  cost_cache_.emplace(key, best);
  return best;
}

i64 AcceleratorPool::contended_cost(std::size_t device, const GemmShape& gemm,
                                    bool weights_resident,
                                    i64 demand_incl_self) const {
  AXON_CHECK(device < fleet_.size(), "device index out of range");
  AXON_CHECK(demand_incl_self >= 1, "demand must include the candidate");
  if (!fabric_.enabled()) return device_cycles(device, gemm, weights_resident);
  const CostKey key{gemm.M,
                    gemm.K,
                    gemm.N,
                    static_cast<std::uint32_t>(device),
                    weights_resident,
                    static_cast<std::uint32_t>(demand_incl_self)};
  const auto it = cost_cache_.find(key);
  if (it != cost_cache_.end()) return it->second;
  const AcceleratorSpec& spec = fleet_[device];
  // Compute leg: the roofline at infinite bandwidth is pure compute.
  const i64 compute_dev = batched_gemm_cycles(
      spec.accelerator.arch, spec.accelerator.dataflow, gemm,
      spec.accelerator.array, /*dram_bytes_per_cycle=*/0, false);
  const i64 compute_fleet = to_fleet_cycles(compute_dev, spec.clock_mhz);
  // Transfer leg at the arbitered rate: the solo price (effective solo
  // bandwidth = private channel capped by the node budget), stretched to
  // the fair share when `demand_incl_self` streams would share the node.
  // max(to_fleet(compute), transfer) equals the pre-PR
  // to_fleet(max(compute, transfer)) when uncontended and unhopped —
  // ceil-division is monotone — which is what keeps single-member
  // full-budget topologies byte-identical to no topology at all.
  const Traffic traffic = gemm_dram_traffic(gemm);
  const i64 dram_bytes = weights_resident
                             ? traffic.total() - traffic.filter_bytes
                             : traffic.total();
  const i64 solo_bw = fabric_.solo_bw(device);
  i64 transfer_fleet = 0;
  if (solo_bw > 0 && dram_bytes > 0) {
    transfer_fleet =
        to_fleet_cycles(ceil_div(dram_bytes, solo_bw), spec.clock_mhz);
    const i64 budget = fabric_.node_budget(fabric_.node_of(device));
    if (budget > 0 && demand_incl_self > 1) {
      using i128 = __int128;
      const i128 shared =
          (static_cast<i128>(dram_bytes) * demand_incl_self + budget - 1) /
          budget;
      AXON_CHECK(shared <= static_cast<i128>(std::numeric_limits<i64>::max()),
                 "contended transfer estimate overflows i64");
      transfer_fleet = std::max(transfer_fleet, static_cast<i64>(shared));
    }
  }
  const i64 fabric_bytes = traffic.ifmap_bytes + traffic.ofmap_bytes;
  const i64 cost = std::max(compute_fleet, transfer_fleet) +
                   fabric_.hop_cycles(device, fabric_bytes);
  cost_cache_.emplace(key, cost);
  return cost;
}

ServeReport AcceleratorPool::serve(TraceSource& source) {
  const auto wall_start = std::chrono::steady_clock::now();
  config_.validate();

  const std::size_t fleet_size = fleet_.size();
  DynamicBatcher batcher(config_.batching);
  ThreadPool workers(config_.num_threads);

  std::vector<bool> busy(fleet_size, false);
  std::size_t idle_devices = fleet_size;
  std::vector<WeightCache> caches;
  caches.reserve(fleet_size);
  for (const AcceleratorSpec& spec : fleet_) {
    caches.emplace_back(spec.weight_cache_bytes);
  }
  std::vector<i64> device_busy_cycles(fleet_size, 0);
  std::vector<i64> device_batches(fleet_size, 0);
  std::size_t round_robin_next = 0;

  // Shared-bandwidth contention (serve/contention.hpp). The arbiter's
  // state mutates exclusively in this loop — admit at dispatch, resolve at
  // harvest, advance at time steps, release at retire — exactly like the
  // weight caches, which is what keeps the timeline thread-count
  // independent. With fabric_ disabled every call below is skipped.
  BandwidthArbiter arbiter(&fabric_);
  std::vector<BandwidthArbiter::Reprice> repriced;
  std::vector<i64> device_hop_dispatches(fleet_size, 0);
  std::vector<i64> device_hop_cycles(fleet_size, 0);

  // The ready queue: O(log n) heaps by default, the seed's linear scans
  // under kScanReference (same schedule either way — see sched_index.hpp).
  SchedIndex ready(config_.policy, config_.ready_queue,
                   config_.batching.max_batch,
                   config_.batching.continuous_admission);

  // Event calendar, completion side: resolved dispatches sit in slot
  // storage with a min-heap of (completion cycle, device) over them, so a
  // time advance pops exactly the due retirements — no per-event re-sort,
  // no whole-vector compaction.
  std::vector<Completion> completion_slots;
  std::vector<std::size_t> completion_free;
  std::priority_queue<CompletionKey, std::vector<CompletionKey>,
                      CompletionLater>
      completions;
  // Dispatches whose costs are still evaluating on the worker pool; they
  // run concurrently until the harvest right before the next time advance.
  std::vector<PendingExec> pending;
  pending.reserve(fleet_size);

  ServeReport report;
  report.num_accelerators = static_cast<int>(fleet_size);
  report.num_threads = config_.num_threads;
  // Records re-materialize workload names from this table at render time;
  // a copy keeps the report self-contained after the source is gone.
  report.workloads = source.registry();
  // One record per request, known up front for every built-in source —
  // ten-million-request traces must not pay realloc-and-copy churn on the
  // way there.
  report.records.reserve(source.size_hint());

  // Multi-stage (StageChain) machinery. `chains` reads the report's own
  // registry copy (stable for the whole run); on a pre-chain trace
  // multi_stage is false and everything below is inert — the retire path
  // pays one flag check per member and the record stream stays
  // byte-identical.
  const WorkloadRegistry& chains = report.workloads;
  const bool multi_stage = chains.multi_stage();
  // Successor stages waiting to re-enter admission, min-heaped by
  // (arrival cycle, request id) and merged against the trace source's
  // arrival stream — a re-admitted stage is an arrival like any other.
  struct Readmit {
    Request req;
    std::uint32_t row = 0;  ///< the request's record row, written at stage 0
  };
  struct ReadmitLater {
    bool operator()(const Readmit& a, const Readmit& b) const {
      if (a.req.arrival_cycle != b.req.arrival_cycle) {
        return a.req.arrival_cycle > b.req.arrival_cycle;
      }
      return a.req.id > b.req.id;
    }
  };
  std::priority_queue<Readmit, std::vector<Readmit>, ReadmitLater> readmits;
  // Cross-stage running aggregates per in-flight chained request, keyed by
  // record row: created at the first stage's retire, folded into the record
  // (complete_stages) and erased at the last stage's.
  struct StageProgress {
    i64 stage_arrival = 0;  ///< current stage's admission cycle
    i64 handoff = 0;
    i64 batch_wait = 0;
    i64 queue_wait = 0;
    i64 service = 0;
    i64 preempt = 0;
  };
  std::unordered_map<std::uint32_t, StageProgress> stage_progress;
  // Chained requests admitted but not fully retired. While any is in
  // flight the batcher must not flush open groups early — a successor
  // stage may still arrive to fill them — even once the source itself is
  // exhausted.
  i64 chained_inflight = 0;

  // Observability: probes see every serve-loop event from this thread, in
  // event order (obs/probe.hpp); the profiler accounts wall time by loop
  // phase when self_profile is set. Neither touches simulated cycles.
  obs::PhaseProfiler profiler(config_.self_profile);
  if (!probes_.empty()) {
    std::vector<std::string> device_names;
    device_names.reserve(fleet_size);
    for (const AcceleratorSpec& spec : fleet_) {
      device_names.push_back(spec.name);
    }
    for (obs::PoolProbe* p : probes_) {
      p->on_serve_begin(device_names, source.registry().names(),
                        source.size_hint());
    }
  }

  i64 now = 0;

  // One request — a fresh trace arrival or a re-admitted successor stage —
  // enters the batcher/scheduler path. `row` is the request's record row
  // (fresh arrivals write it before calling; successors reuse theirs).
  const auto admit_one = [&](const Request& r, std::uint32_t row) {
    for (obs::PoolProbe* p : probes_) p->on_enqueue(r, now);
    if (config_.batching.continuous_admission) {
      // Continuous admission, join side: a closed-but-undispatched batch
      // with the same weights, the same stage class, and spare seats takes
      // the late arrival directly — no reason to start a fresh group and
      // wait out max_wait again. The index hands back the earliest-pushed
      // match (the seed's first-match-in-ready-order). A partially
      // executed batch (re-queued between chunks) is not joinable: its
      // membership froze at first dispatch (Batch::absorb rejects it), so
      // the arrival starts or joins an ordinary group instead.
      const i64 slot = ready.find_joinable(r.gemm.K, r.gemm.N, r.stage_class);
      if (slot >= 0) {
        const i64 joined_id = r.id;
        Batch& b = ready.batch(slot);
        b.absorb(r, row);
        ready.joined(slot, estimate_cycles(b));
        for (obs::PoolProbe* p : probes_) p->on_join(b, joined_id, now);
        return;
      }
    }
    batcher.admit(r, r.arrival_cycle, row);
  };

  const auto admit_and_collect = [&] {
    const auto phase = profiler.time(obs::ServePhase::kAdmit);
    // Merge due successor-stage re-admissions with due trace arrivals in
    // arrival-cycle order; a successor beats a fresh arrival on a tie (it
    // has been in the system longer). next_arrival() < 0 means nothing
    // poppable: the source is exhausted, or (closed loop with feedback)
    // every client is blocked on an in-flight request — the loop advances
    // on completions instead.
    for (;;) {
      const i64 sa = source.next_arrival();
      const bool src_due = sa >= 0 && sa <= now;
      const bool re_due =
          !readmits.empty() && readmits.top().req.arrival_cycle <= now;
      if (!src_due && !re_due) break;
      if (re_due && (!src_due || readmits.top().req.arrival_cycle <= sa)) {
        const Readmit rm = readmits.top();
        readmits.pop();
        admit_one(rm.req, rm.row);
        continue;
      }
      Request r = source.pop();
      // File the request's immutable record fields now, in admission order;
      // queued batches carry only {id, row, stage} and retire completes the
      // row in place. finalize() sorts records by id, so the streamed write
      // order is invisible externally.
      const std::uint32_t row = report.records.push_admitted(r);
      if (multi_stage && chains.num_stages(r.workload) > 1) {
        ++chained_inflight;
      }
      admit_one(r, row);
    }
    // Once the trace is exhausted — and no chained request can re-admit a
    // successor stage — nothing can fill an open group, so close them at
    // the current cycle instead of waiting out max_wait. A merely blocked
    // source (feedback closed loop, all clients in flight) is NOT
    // exhausted — its re-issues may still fill open groups.
    const bool drained =
        source.exhausted() && readmits.empty() && chained_inflight == 0;
    std::vector<Batch> closed =
        drained ? batcher.flush(now) : batcher.pop_ready(now);
    for (auto& b : closed) {
      for (obs::PoolProbe* p : probes_) p->on_batch_formed(b, now);
      const i64 estimate = estimate_cycles(b);
      ready.push(std::move(b), estimate);
    }
  };

  const auto view_key = [&](const DynamicBatcher::OpenGroupView& v) {
    PickKey k;
    k.priority = v.top_priority;
    k.policy_key = config_.policy == SchedulePolicy::kShortestJobFirst
                       ? estimate_gemm_cycles(v.merged_gemm())
                       : (v.earliest_deadline < 0
                              ? std::numeric_limits<i64>::max()
                              : v.earliest_deadline);
    k.age_cycle = v.oldest_admit;
    k.open_group = true;
    k.id0 = v.K;
    k.id1 = v.N;
    return k;
  };

  // Re-filing for completions the arbiter moved (a node's demand changed,
  // so its streams' fair shares — and their filed completion cycles — did
  // too): bump the slot's version and push a fresh calendar key. Stale
  // keys are skipped at retire — lazy invalidation, the sched_index idiom.
  const auto apply_repriced = [&] {
    for (const BandwidthArbiter::Reprice& r : repriced) {
      Completion& c = completion_slots[r.slot];
      c.completion_cycle = r.completion_cycle;
      ++c.version;
      completions.push({r.completion_cycle, c.accelerator, r.slot, c.version});
    }
    repriced.clear();
  };

  // StageAffinity: whether fleet member `dev` may run a batch of stage
  // class `cls`. A general batch runs anywhere and a general member takes
  // anything — only a typed batch meeting a typed member must match.
  const auto serves_class = [&](std::size_t dev, StageClass cls) {
    const StageClass s = fleet_[dev].serves;
    return cls == StageClass::kGeneral || s == StageClass::kGeneral ||
           s == cls;
  };
  const auto any_matching_idle = [&](StageClass cls) {
    for (std::size_t i = 0; i < fleet_size; ++i) {
      if (!busy[i] && serves_class(i, cls)) return true;
    }
    return false;
  };

  // Routing: the schedule policy decided *what* runs next; this decides
  // *where*. Only called with at least one idle device (and, under
  // kStrict, at least one *matching* idle device — the dispatch site
  // stashes the batch otherwise).
  const auto route_device = [&](const GemmShape& gemm,
                                StageClass cls) -> std::size_t {
    // Affinity filter ahead of the route policy: under kPreferred the
    // candidate set narrows to matching idle members when any exist and
    // silently widens back to every idle member when none do; under
    // kStrict the caller guaranteed a match. kNone never filters — the
    // pre-affinity router, bit for bit.
    bool filter = false;
    if (config_.stage_affinity != StageAffinity::kNone) {
      filter = any_matching_idle(cls);
      AXON_CHECK(filter || config_.stage_affinity != StageAffinity::kStrict,
                 "strict-affinity dispatch with no matching idle member");
    }
    const auto eligible = [&](std::size_t i) {
      return !busy[i] && (!filter || serves_class(i, cls));
    };
    switch (config_.routing) {
      case RoutePolicy::kFirstFree:
        break;  // fall through to the index scan below
      case RoutePolicy::kRoundRobin: {
        for (std::size_t off = 0; off < fleet_size; ++off) {
          const std::size_t idx = (round_robin_next + off) % fleet_size;
          if (eligible(idx)) {
            round_robin_next = (idx + 1) % fleet_size;
            return idx;
          }
        }
        break;
      }
      case RoutePolicy::kLeastCost: {
        // Estimated completion time per (batch, device): every idle device
        // is free *now*, so min completion = min cost. Priced cache-aware,
        // which is all it takes for weight affinity — the device that last
        // served this (K, N) skips the weight stream and wins the tie.
        // Congestion-aware (topology on): each candidate is priced at its
        // node's current demand plus itself, plus fabric hops — so a
        // remote idle device on a quiet node can beat a local one on a
        // saturated node. Blind (congestion_aware off): the pre-PR private
        // roofline, demand- and hop-free — the router believes remote
        // dispatch is free even though the arbiter will charge for it.
        const bool aware = fabric_.enabled() && config_.congestion_aware;
        std::size_t best = fleet_size;
        i64 best_cost = 0;
        for (std::size_t i = 0; i < fleet_size; ++i) {
          if (!eligible(i)) continue;
          const bool resident = caches[i].contains(gemm.K, gemm.N);
          const i64 cost =
              aware ? contended_cost(i, gemm, resident, arbiter.demand(i) + 1)
                    : device_cycles(i, gemm, resident);
          if (best == fleet_size || cost < best_cost) {
            best = i;
            best_cost = cost;
          }
        }
        AXON_CHECK(best < fleet_size, "route_device() with no idle device");
        return best;
      }
    }
    for (std::size_t i = 0; i < fleet_size; ++i) {
      if (eligible(i)) return i;
    }
    AXON_CHECK(false, "route_device() with no eligible idle device");
    return 0;
  };

  // How many of the batch's remaining rows the next dispatch covers on the
  // routed device. The quantum is per-device: chunk_tiles M-tiles of *that*
  // array under *its* dataflow (model/runtime_model m_tile_extent), so
  // chunks always split at tile boundaries and the summed compute cost
  // matches the unchunked batch; the only chunking overhead is re-streaming
  // weights on cache-cold dispatches.
  const auto chunk_extent_for = [&](const Batch& batch,
                                    std::size_t acc) -> i64 {
    const i64 remaining = batch.remaining_m();
    if (config_.chunking == ChunkPolicy::kNone || config_.chunk_tiles <= 0) {
      return remaining;
    }
    const AcceleratorSpec& spec = fleet_[acc];
    const i64 chunk_m =
        m_tile_extent(spec.accelerator.dataflow, spec.accelerator.array) *
        config_.chunk_tiles;
    if (remaining <= chunk_m) return remaining;
    if (config_.chunking == ChunkPolicy::kDeadlineAware &&
        batch.earliest_deadline >= 0) {
      // Chunking never slows the batch by itself (tile-aligned chunks sum
      // to the same compute); what it risks is being *preempted* between
      // chunks. So run whole exactly in the window where the deadline is
      // makeable but only without preemption: slack covers the remaining
      // work yet not one extra chunk's worth of intervening service.
      // Outside that window chunk freely — either there is room to absorb
      // a preemption, or the deadline is already unmakeable and the batch
      // should yield to work that can still meet its own.
      const i64 slack = batch.earliest_deadline - now;
      const i64 remaining_cost = estimate_gemm_cycles(batch.remaining_gemm());
      const i64 margin = estimate_gemm_cycles(
          {chunk_m, batch.gemm.K, batch.gemm.N});
      if (slack >= remaining_cost && slack < remaining_cost + margin) {
        return remaining;
      }
    }
    return chunk_m;
  };

  const auto dispatch = [&] {
    const bool strict = config_.stage_affinity == StageAffinity::kStrict;
    // kStrict pop-and-stash: a picked batch whose stage class has no
    // matching idle member parks here and re-enters the ready queue when
    // the pass ends, to compete again at the next event. PickKeys derive
    // from batch fields alone (ready cycle, first id, priority, estimate),
    // so a re-pushed batch keeps exactly its old rank.
    std::vector<Batch> blocked;
    for (;;) {
      if (idle_devices == 0) break;
      Batch picked;
      {
        const auto phase = profiler.time(obs::ServePhase::kPick);
        // Continuous admission, dispatch side: an idle accelerator may take
        // a partially filled group rather than letting it ripen to
        // max_batch/max_wait while capacity sits free. Open groups compete
        // with ready batches under the same key_better ordering, so an
        // urgent open group beats a lax ready batch and vice versa. Open
        // groups are few (one per distinct (K, N, class) in flight), so the
        // view scan is mix-bounded, not queue-depth-bounded.
        const bool can_take_open =
            config_.batching.continuous_admission && batcher.has_open();
        if (ready.empty() && !can_take_open) break;
        bool from_open = false;
        if (can_take_open) {
          const auto views = batcher.open_views();
          std::size_t best_view = views.size();
          for (std::size_t i = 0; i < views.size(); ++i) {
            // A strict-affinity group with no matching idle member cannot
            // dispatch this pass; leave it open (still forming) rather
            // than close it into a stranded batch.
            if (strict && !any_matching_idle(views[i].cls)) continue;
            if (best_view == views.size() ||
                key_better(config_.policy, view_key(views[i]),
                           view_key(views[best_view]))) {
              best_view = i;
            }
          }
          if (best_view != views.size() &&
              (ready.empty() || key_better(config_.policy,
                                           view_key(views[best_view]),
                                           ready.best_key()))) {
            picked =
                batcher.close_open(views[best_view].K, views[best_view].N,
                                   views[best_view].cls, now);
            from_open = true;
            for (obs::PoolProbe* p : probes_) p->on_batch_formed(picked, now);
          }
        }
        if (!from_open) {
          if (ready.empty()) break;
          picked = ready.pop_best();
        }
      }
      if (strict && !any_matching_idle(picked.stage_class)) {
        blocked.push_back(std::move(picked));
        continue;
      }
      // A dispatch that jumps ahead of a partially executed batch still
      // waiting in ready is a realized preemption — the event unchunked
      // dispatch makes impossible. Counted only for batches that actually
      // dispatch (a strict-affinity stash above is not a preemption).
      if (ready.has_partial()) {
        ++report.preemptions;
        for (obs::PoolProbe* p : probes_) p->on_preemption(now);
      }
      PendingExec f;
      std::size_t acc;
      {
        const auto phase = profiler.time(obs::ServePhase::kRoute);
        acc = route_device(picked.remaining_gemm(), picked.stage_class);
      }
      const auto phase = profiler.time(obs::ServePhase::kDispatch);
      f.accelerator = static_cast<int>(acc);
      f.batch = std::move(picked);
      f.chunk_m = chunk_extent_for(f.batch, acc);
      f.final_chunk = f.chunk_m == f.batch.remaining_m();
      f.dispatch_cycle = now;
      if (f.batch.first_dispatch_cycle < 0) f.batch.first_dispatch_cycle = now;
      const int chunk_ordinal = f.batch.chunks_run++;
      ++report.total_chunks;
      const GemmShape chunk_gemm{f.chunk_m, f.batch.gemm.K, f.batch.gemm.N};
      // Touch the routed device's weight cache here, in the serve loop —
      // the hit/miss verdict is part of the deterministic timeline, not of
      // worker execution. Every chunk is its own dispatch, so a later
      // chunk hits iff its weights survived whatever ran in between.
      const bool weights_resident =
          caches[acc].touch(f.batch.gemm.K, f.batch.gemm.N);
      // Allocate the completion-calendar slot now (not at harvest): the
      // arbiter keys its transfer stream by slot, and this dispatch's
      // demand must be visible to routing decisions later this event.
      if (completion_free.empty()) {
        f.slot = completion_slots.size();
        completion_slots.emplace_back();
      } else {
        f.slot = completion_free.back();
        completion_free.pop_back();
      }
      BandwidthArbiter::AdmitInfo admit_info;
      if (fabric_.enabled()) {
        // Register the chunk's DRAM stream with the arbiter. The weight
        // bytes drop out on a cache hit (same rule as the roofline);
        // activations + results also cross the fabric on remote dispatch,
        // weights never do (they live in the routed node's DRAM).
        const Traffic traffic = gemm_dram_traffic(chunk_gemm);
        const i64 dram_bytes = weights_resident
                                   ? traffic.total() - traffic.filter_bytes
                                   : traffic.total();
        const i64 fabric_bytes = traffic.ifmap_bytes + traffic.ofmap_bytes;
        admit_info = arbiter.admit(acc, f.slot, now, dram_bytes, fabric_bytes,
                                   repriced);
        apply_repriced();
        if (admit_info.hop_cycles > 0) {
          ++device_hop_dispatches[acc];
          device_hop_cycles[acc] += admit_info.hop_cycles;
        }
      }
      // The worker needs only the chunk shape, the batch identity (the
      // operand seed), and the routed device; share the long-lived spec by
      // pointer instead of copying it and the whole request vector per
      // dispatch.
      f.future = workers.submit([chunk_gemm,
                                 first_id = f.batch.members.front().id,
                                 chunk_ordinal, spec = &fleet_[acc],
                                 exec = config_.exec,
                                 seed = config_.data_seed, weights_resident,
                                 decompose = fabric_.enabled()] {
        return execute_chunk(chunk_gemm, first_id, chunk_ordinal, *spec, exec,
                             seed, weights_resident, decompose);
      });
      busy[acc] = true;
      --idle_devices;
      if (!probes_.empty()) {
        obs::DispatchInfo di;
        di.device = f.accelerator;
        di.now = now;
        di.batch = &f.batch;
        di.chunk = chunk_gemm;
        di.chunk_ordinal = chunk_ordinal;
        di.final_chunk = f.final_chunk;
        di.weights_resident = weights_resident;
        di.cache_used_bytes = caches[acc].used_bytes();
        if (fabric_.enabled()) {
          di.node = fabric_.node_of(acc);
          di.node_demand = admit_info.demand;
          di.contended = admit_info.contended;
          di.hop_cycles = admit_info.hop_cycles;
        }
        for (obs::PoolProbe* p : probes_) p->on_dispatch(di);
      }
      pending.push_back(std::move(f));
    }
    // Stashed strict-affinity batches re-enter the ready queue; their
    // matching members are all busy, so they wait for a retire to free one.
    for (Batch& b : blocked) {
      const i64 estimate = estimate_cycles(b);
      ready.push(std::move(b), estimate);
    }
  };

  for (;;) {
    admit_and_collect();
    dispatch();

    // Scheduler-state counter sample: once per serve-loop event, after
    // dispatching — the moment queue depths are settled for this cycle.
    if (!probes_.empty()) {
      obs::LoopCounters counters;
      counters.now = now;
      counters.ready_batches = static_cast<i64>(ready.size());
      counters.index_entries = static_cast<i64>(ready.index_entries());
      counters.partial_batches = static_cast<i64>(ready.partial_count());
      counters.open_groups = static_cast<i64>(batcher.open_groups());
      counters.open_requests = static_cast<i64>(batcher.open_requests());
      counters.busy_devices = static_cast<i64>(fleet_size - idle_devices);
      for (obs::PoolProbe* p : probes_) p->on_loop_counters(counters);
      // Per-node contention sample, same cadence: in-flight streams and
      // bytes after this event's dispatches settled.
      if (fabric_.enabled()) {
        for (int n = 0; n < fabric_.num_nodes(); ++n) {
          obs::NodeSample sample;
          sample.now = now;
          sample.node = n;
          sample.active_streams = arbiter.node_active(n);
          sample.inflight_bytes = arbiter.node_inflight_bytes(n);
          for (obs::PoolProbe* p : probes_) p->on_node_sample(sample);
        }
      }
    }

    // Harvest: every dispatch since the last advance has been evaluating
    // concurrently on the worker pool; resolve each future exactly once
    // and file the completion in the calendar. Advancing simulated time
    // needs every outstanding completion cycle, so this stays the loop's
    // one synchronization point — but it touches only the new dispatches,
    // never the already-filed ones.
    {
      const auto phase = profiler.time(obs::ServePhase::kHarvest);
      for (PendingExec& p : pending) {
        const ExecOutcome outcome = p.future.get();
        Completion& c = completion_slots[p.slot];
        c.accelerator = p.accelerator;
        c.batch = std::move(p.batch);
        c.chunk_m = p.chunk_m;
        c.final_chunk = p.final_chunk;
        c.dispatch_cycle = p.dispatch_cycle;
        // With contention on, the worker returned the compute leg only;
        // resolve() folds in the arbitered transfer stream (at its
        // current projected finish — later demand changes re-price) plus
        // the fabric hop latency. Otherwise the pre-PR whole roofline.
        c.completion_cycle = fabric_.enabled()
                                 ? arbiter.resolve(p.slot, outcome.cycles)
                                 : p.dispatch_cycle + outcome.cycles;
        completions.push({c.completion_cycle, c.accelerator, p.slot,
                          c.version});
      }
      pending.clear();
    }

    // Next simulated event: an arrival, a batching timeout, or the
    // earliest filed completion.
    i64 next = -1;
    const auto consider = [&next](i64 t) {
      if (t >= 0 && (next < 0 || t < next)) next = t;
    };
    consider(source.next_arrival());
    // A successor stage's re-admission (completion + handoff of its
    // predecessor) is an arrival event like any other.
    if (!readmits.empty()) consider(readmits.top().req.arrival_cycle);
    consider(batcher.next_timeout());
    if (!completions.empty()) consider(completions.top().cycle);
    // A node whose streams' rates change on their own (earliest projected
    // transfer finish among contended nodes) is an event too: survivors
    // speed up there and their completions re-price.
    consider(arbiter.next_event());
    if (next < 0) break;  // fully drained
    AXON_CHECK(next >= now, "simulated time went backwards");
    now = next;

    // Fluid progress to `now` before the retire scan: drained transfers
    // leave their nodes, surviving streams speed up, and any moved
    // completions re-file so the calendar below is current.
    if (fabric_.enabled()) {
      arbiter.advance(now, repriced);
      apply_repriced();
    }

    // Retire completions due at `now`; the calendar pops them in
    // (completion cycle, device) order — deterministic. Keys whose version
    // no longer matches their slot were re-priced (or already retired) —
    // skipped.
    const auto phase = profiler.time(obs::ServePhase::kRetire);
    while (!completions.empty() && completions.top().cycle <= now) {
      const CompletionKey key = completions.top();
      completions.pop();
      Completion& f = completion_slots[key.slot];
      if (f.version != key.version) continue;  // stale filing
      const std::size_t slot = key.slot;
      if (fabric_.enabled()) arbiter.release(slot, now);
      const i64 busy_cycles = f.completion_cycle - f.dispatch_cycle;
      report.total_busy_cycles += busy_cycles;
      device_busy_cycles[static_cast<std::size_t>(f.accelerator)] +=
          busy_cycles;
      ++device_batches[static_cast<std::size_t>(f.accelerator)];
      busy[static_cast<std::size_t>(f.accelerator)] = false;
      ++idle_devices;
      if (!probes_.empty()) {
        obs::RetireInfo ri;
        ri.device = f.accelerator;
        ri.dispatch_cycle = f.dispatch_cycle;
        ri.completion_cycle = f.completion_cycle;
        ri.batch = &f.batch;
        ri.chunk_m = f.chunk_m;
        ri.final_chunk = f.final_chunk;
        for (obs::PoolProbe* p : probes_) p->on_chunk_retire(ri);
      }
      if (!f.final_chunk) {
        // Remainder re-enters the scheduler: it competes with everything
        // ready or open under the same policy keys at the next dispatch —
        // this re-entry point *is* the tile-granular preemption window.
        f.batch.m_executed += f.chunk_m;
        f.batch.service_cycles += busy_cycles;
        const i64 estimate = estimate_cycles(f.batch);
        ready.push(std::move(f.batch), estimate);
      } else {
        // Final chunk: the batch's members complete together now — the
        // shared fields file once in the batch table, each member's
        // admission-time row just links to them. The batch-table row files
        // lazily: a batch made up entirely of mid-chain stages is fully
        // described by the per-stage table and links no request row here.
        const i64 batch_service = f.batch.service_cycles + busy_cycles;
        std::uint32_t batch_row = 0;
        bool batch_row_filed = false;
        const auto file_batch_row = [&] {
          if (!batch_row_filed) {
            batch_row = report.records.push_batch(
                f.batch.ready_cycle, f.batch.first_dispatch_cycle,
                f.completion_cycle, batch_service, f.batch.size(),
                f.batch.chunks_run, f.accelerator);
            batch_row_filed = true;
          }
          return batch_row;
        };
        for (const BatchMember& m : f.batch.members) {
          const std::size_t nstages =
              multi_stage ? chains.num_stages(report.records.workload(m.row))
                          : 1;
          if (nstages > 1) {
            // Chained member: fold this stage's latency terms into the
            // request's running aggregates and file its per-stage row. The
            // terms mirror the single-stage breakdown exactly, so the
            // identity telescopes across the chain: latency == sum over
            // stages of batch_wait + queue_wait + service + preempt_blocked
            // plus the handoffs linking consecutive stages.
            const auto [it, first_stage] = stage_progress.try_emplace(m.row);
            StageProgress& sp = it->second;
            if (first_stage) {
              sp.stage_arrival = report.records.arrival_cycle(m.row);
            }
            const i64 arrival = sp.stage_arrival;
            const i64 eff_ready = f.batch.ready_cycle > arrival
                                      ? f.batch.ready_cycle
                                      : arrival;
            sp.batch_wait += eff_ready - arrival;
            sp.queue_wait += f.batch.first_dispatch_cycle - eff_ready;
            sp.service += batch_service;
            sp.preempt += (f.completion_cycle - f.batch.first_dispatch_cycle) -
                          batch_service;
            RecordStore::StageRecord srec;
            srec.id = m.id;
            srec.stage = m.stage;
            srec.arrival_cycle = arrival;
            srec.ready_cycle = f.batch.ready_cycle;
            srec.dispatch_cycle = f.batch.first_dispatch_cycle;
            srec.completion_cycle = f.completion_cycle;
            srec.service_cycles = batch_service;
            srec.accelerator = f.accelerator;
            const StageChain& chain =
                chains.chain(report.records.workload(m.row));
            if (static_cast<std::size_t>(m.stage) + 1 < chain.size()) {
              // Successor stage: the activation (this stage's result
              // matrix) ships over the fabric from the producing device's
              // node, priced by the same hop model remote dispatch pays —
              // zero without a topology or when the producer sits on the
              // ingress node. The successor re-enters admission at
              // completion + handoff and competes through the normal
              // batcher/scheduler path like any arrival.
              const i64 handoff =
                  fabric_.enabled()
                      ? fabric_.hop_cycles(
                            static_cast<std::size_t>(f.accelerator),
                            gemm_dram_traffic(chain[m.stage].gemm).ofmap_bytes)
                      : 0;
              srec.handoff_cycles = handoff;
              sp.handoff += handoff;
              Request next;
              next.id = m.id;
              next.workload = report.records.workload(m.row);
              next.gemm = chain[m.stage + 1].gemm;
              next.arrival_cycle = f.completion_cycle + handoff;
              next.deadline_cycle = report.records.deadline_cycle(m.row);
              next.priority = report.records.priority(m.row);
              next.stage = static_cast<std::uint16_t>(m.stage + 1);
              next.stage_class = chain[m.stage + 1].cls;
              sp.stage_arrival = next.arrival_cycle;
              report.records.push_stage(srec);
              readmits.push({next, m.row});
              continue;  // the request is still in flight; no retire yet
            }
            // Last stage: link the final batch, fold the aggregates into
            // the record, and retire the chain.
            report.records.push_stage(srec);
            report.records.complete_row(m.row, file_batch_row());
            report.records.complete_stages(
                m.row, static_cast<int>(nstages), sp.handoff, sp.batch_wait,
                sp.queue_wait, sp.service, sp.preempt);
            stage_progress.erase(m.row);
            --chained_inflight;
          } else {
            report.records.complete_row(m.row, file_batch_row());
          }
          if (!probes_.empty()) {
            const RequestRecord rec = report.records[m.row];
            for (obs::PoolProbe* p : probes_) p->on_request_done(rec);
          }
          // Completion feedback: a closed-loop source unblocks this
          // request's client and schedules its next issue from the
          // *observed* completion, not an estimate. Retire runs before the
          // next admit pass, so a re-issue landing at this very cycle is
          // admitted on the following loop iteration — after every
          // completion due now has been filed. Chained requests report
          // once, at the end of their chain.
          source.on_complete(m.id, f.completion_cycle);
        }
        ++report.total_batches;
      }
      f.batch = Batch{};
      // Retire bumps the version so any stale keys this filing left in the
      // heap (from re-pricing) can never match a later slot occupant.
      ++f.version;
      completion_free.push_back(slot);
    }
  }

  AXON_CHECK(source.exhausted() && batcher.idle() && ready.empty() &&
                 completions.empty() && pending.empty() && readmits.empty() &&
                 stage_progress.empty() && chained_inflight == 0,
             "serve loop exited with work outstanding");

  report.per_accelerator.resize(fleet_size);
  for (std::size_t i = 0; i < fleet_size; ++i) {
    AcceleratorStats& a = report.per_accelerator[i];
    a.name = fleet_[i].name;
    a.busy_cycles = device_busy_cycles[i];
    a.batches = device_batches[i];
    a.weight_hits = caches[i].hits();
    a.weight_misses = caches[i].misses();
    a.weight_evictions = caches[i].evictions();
    a.hop_dispatches = device_hop_dispatches[i];
    a.hop_cycles = device_hop_cycles[i];
  }

  if (fabric_.enabled()) {
    const auto& ledgers = arbiter.ledgers();
    report.per_node.resize(ledgers.size());
    for (std::size_t n = 0; n < ledgers.size(); ++n) {
      NodeStats& stats = report.per_node[n];
      stats.name = "node" + std::to_string(n);
      stats.devices = fabric_.node_devices(static_cast<int>(n));
      stats.bw_bytes_per_cycle = fabric_.node_budget(static_cast<int>(n));
      stats.bytes_drained = ledgers[n].bytes_drained;
      stats.transfer_cycles = ledgers[n].transfer_cycles;
      stats.transfer_cycles_private = ledgers[n].transfer_cycles_private;
      stats.contended_dispatches = ledgers[n].contended_dispatches;
      stats.demand_peak = ledgers[n].demand_peak;
    }
  }

  report.phase_profile = profiler.profile();
  report.finalize();
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

}  // namespace axon::serve
