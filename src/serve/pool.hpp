// Inference serving, layer 3: the fleet. A pool of N simulated
// accelerators drains a request trace through the dynamic batcher under a
// scheduling policy (FIFO or shortest-job-first). The simulation is a
// discrete-event loop over simulated cycles; the *evaluation* of each
// dispatched batch (its cycle cost) runs on a real std::thread worker
// pool. Batches dispatched at the same simulated event — the backlog case
// that dominates heavy load, up to num_accelerators at once — evaluate
// concurrently on multicore hosts; advancing simulated time then requires
// every outstanding completion time, so the loop synchronizes on the
// worker pool before each advance (overlapping across *different* dispatch
// events would need speculative execution; see ROADMAP).
//
// Determinism contract: a batch's cost is a pure function of the batch
// contents and the pool config — never of wall-clock, thread id, or
// execution order — so the simulated timeline (every dispatch, completion
// and percentile) is identical for any num_threads. Tests pin this down by
// diffing 1-thread vs 8-thread reports.
#pragma once

#include <cstdint>
#include <string>

#include "runner/accelerator.hpp"
#include "serve/batcher.hpp"
#include "serve/report.hpp"
#include "serve/request.hpp"

namespace axon::serve {

/// Order in which ready batches grab free accelerators. Every policy
/// first honours priority classes strictly (a lower-class batch never
/// jumps a higher one), then applies its own key, then breaks remaining
/// ties by ready cycle and first request id — fully deterministic.
enum class SchedulePolicy {
  kFifo,                   ///< by batch ready cycle (then first request id)
  kShortestJobFirst,       ///< by analytically estimated batch cycles
  kEarliestDeadlineFirst,  ///< by earliest member SLO deadline; batches
                           ///< without deadlines go last
};

std::string to_string(SchedulePolicy policy);

/// How a worker prices a dispatched batch in simulated cycles.
enum class ExecMode {
  kAnalytical,     ///< Table-2 scale-up equations — fast, any shape
  kCycleAccurate,  ///< full cycle-accurate run on synthesized operands
};

struct PoolConfig {
  AcceleratorConfig accelerator;  ///< every pool member is identical
  int num_accelerators = 4;
  int num_threads = 1;  ///< wall-clock workers; no effect on cycle results
  SchedulePolicy policy = SchedulePolicy::kFifo;
  ExecMode exec = ExecMode::kAnalytical;
  BatchPolicy batching;
  /// DRAM bandwidth for the roofline batch cost (see
  /// model/runtime_model batched_gemm_cycles); <= 0 models infinite
  /// bandwidth. Weights stream once per dispatch, so this is the term
  /// dynamic batching amortizes.
  i64 dram_bytes_per_cycle = 64;
  /// Operand synthesis seed for cycle-accurate execution; combined with the
  /// batch's first request id so every batch sees fixed, thread-independent
  /// data.
  std::uint64_t data_seed = 0x5EEDAB1Eu;
};

class AcceleratorPool {
 public:
  explicit AcceleratorPool(PoolConfig config);

  [[nodiscard]] const PoolConfig& config() const { return config_; }

  /// Serves the whole trace to completion and returns the finalized
  /// report. Consumes the queue.
  ServeReport serve(RequestQueue requests);

  /// Analytical cycle estimate for one batch under this pool's config —
  /// the quantity shortest-job-first sorts by.
  [[nodiscard]] i64 estimate_cycles(const Batch& batch) const;
  /// Same estimate for a bare merged shape (used to price still-open
  /// groups when continuous admission picks one for an idle accelerator).
  [[nodiscard]] i64 estimate_gemm_cycles(const GemmShape& gemm) const;

 private:
  PoolConfig config_;
};

}  // namespace axon::serve
