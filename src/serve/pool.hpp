// Inference serving, layer 3: the fleet. A pool of simulated accelerators
// — possibly heterogeneous in array geometry, clock, and memory system —
// drains a request trace through the dynamic batcher under a scheduling
// policy (FIFO / shortest-job-first / earliest-deadline-first) and a
// routing policy that decides which device a picked batch runs on. The
// simulation is a discrete-event loop over simulated cycles; the
// *evaluation* of each dispatched batch (its cycle cost) runs on a real
// std::thread worker pool. Batches dispatched at the same simulated event
// — the backlog case that dominates heavy load, up to fleet size at once —
// evaluate concurrently on multicore hosts; advancing simulated time then
// requires every outstanding completion time, so the loop synchronizes on
// the worker pool before each advance (overlapping across *different*
// dispatch events would need speculative execution; see ROADMAP).
//
// The core is event-indexed so per-event work is O(log n), not O(n), in
// queue depth: the ready queue is a serve/sched_index (per-class heaps
// with lazy invalidation, join registry), completions sit in a min-heap
// event calendar harvested as futures resolve (no per-event re-sort or
// whole-vector compaction), and analytic costs are memoized per
// (device, shape, cache-hit) so the roofline runs once per distinct
// dispatch shape instead of O(fleet) per candidate per event. None of it
// changes the simulated timeline — bench_serve_scale measures the
// difference at production trace sizes.
//
// Determinism contract: a dispatch's cost is a pure function of the
// dispatched chunk (shape + operand identity), the routed device's spec,
// and the device's weight-cache state at dispatch — never of wall-clock,
// thread id, or execution order. Cache state and chunk progress only
// mutate in the single-threaded serve loop, so the simulated timeline
// (every dispatch, completion and percentile) is identical for any
// num_threads. Tests pin this down by diffing 1-thread vs 8-thread
// reports — caches, heterogeneous fleets, and chunked dispatch included.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "runner/accelerator.hpp"
#include "serve/batcher.hpp"
#include "serve/contention.hpp"
#include "serve/report.hpp"
#include "serve/request.hpp"
#include "serve/sched_index.hpp"

namespace axon::serve {

/// Which fleet member a picked batch runs on. Orthogonal to
/// SchedulePolicy: the schedule policy picks *what* dispatches next, the
/// route policy picks *where*. All three are deterministic.
enum class RoutePolicy {
  kFirstFree,   ///< lowest-index idle device (the homogeneous-pool default)
  kRoundRobin,  ///< rotate through devices, skipping busy ones
  kLeastCost,   ///< idle device with the lowest estimated completion time
                ///< for this batch — roofline per (batch, device), priced
                ///< cache-aware, so weight affinity emerges for free; ties
                ///< break by device index
};

std::string to_string(RoutePolicy policy);

/// How strongly routing honours each member's served stage class
/// (AcceleratorSpec::serves) — the prefill/decode disaggregation knob.
/// Orthogonal to RoutePolicy: affinity filters the candidate set, the
/// route policy then picks within it. A kGeneral batch (all pre-chain
/// traffic) matches every member, and a member with serves == kGeneral
/// accepts every batch, so the default fleet is unchanged.
enum class StageAffinity {
  kNone,       ///< ignore stage classes entirely (the pre-PR router)
  kPreferred,  ///< prefer matching idle members; fall back to any idle one
  kStrict,     ///< disaggregated pools: a batch waits for a matching member
               ///< rather than run on a mismatched one
};

std::string to_string(StageAffinity affinity);

/// Whether (and when) long batches are dispatched as a sequence of
/// tile-boundary chunks instead of one indivisible run. Unchunked dispatch
/// is all-or-nothing: once a multi-M-tile prefill batch starts, an urgent
/// decode arrival waits out the whole thing no matter what the scheduler
/// would prefer — the head-of-line blocking term EDF cannot fix. Chunked
/// dispatch re-enters the scheduler between chunks of an in-flight batch
/// (tile-granular preemption): the freed device prices the remainder
/// against everything else that is ready or open, and an urgent batch can
/// jump in after at most one chunk. The price is the memory side — each
/// chunk is its own dispatch and re-streams the K*N weights unless the
/// device's weight cache still holds them.
enum class ChunkPolicy {
  kNone,        ///< whole-batch dispatch (the PR-1/2/3 behaviour)
  kFixedTiles,  ///< every dispatch covers at most `chunk_tiles` M-tiles
  kDeadlineAware,  ///< like kFixedTiles, but a batch runs whole when its
                   ///< deadline is makeable only without preemption —
                   ///< slack in [remaining cost, remaining + one chunk's
                   ///< cost); doomed (slack < remaining) and no-deadline
                   ///< batches always chunk and yield
};

std::string to_string(ChunkPolicy policy);

/// How a worker prices a dispatched batch in simulated cycles.
enum class ExecMode {
  kAnalytical,     ///< Table-2 scale-up equations — fast, any shape
  kCycleAccurate,  ///< full cycle-accurate run on synthesized operands
};

// kRefClockMhz and to_fleet_cycles live in serve/contention.hpp (the
// contention model shares the fleet timebase) and are re-exported here.

/// One fleet member: its own array geometry/architecture, clock, DRAM
/// bandwidth, and weight-cache capacity. Mixed specs are the point —
/// decode-style transfer-bound traffic prefers high bandwidth and a warm
/// weight cache, prefill-style compute-bound traffic prefers a big array.
struct AcceleratorSpec {
  std::string name;               ///< report label; pool defaults to "accN"
  AcceleratorConfig accelerator;  ///< arch, array shape, dataflow
  int clock_mhz = kRefClockMhz;   ///< device clock (vs kRefClockMhz timebase)
  /// DRAM bandwidth in bytes per *device* cycle for the roofline batch
  /// cost (model/runtime_model batched_gemm_cycles); <= 0 models infinite
  /// bandwidth. Weights stream once per dispatch — unless resident in this
  /// device's weight cache.
  i64 dram_bytes_per_cycle = 64;
  /// Per-device LRU weight-cache capacity (serve/weight_cache); 0 disables.
  i64 weight_cache_bytes = 0;
  /// Stage class this member serves under StageAffinity routing. kGeneral
  /// (the default) accepts every batch; kPrefill/kDecode members form the
  /// disaggregated pools the disagg_prefill_decode scenario demonstrates.
  StageClass serves = StageClass::kGeneral;
};

struct PoolConfig {
  /// Heterogeneous fleet: when non-empty this is the pool, and the
  /// homogeneous shorthand below (`accelerator`, `num_accelerators`,
  /// `dram_bytes_per_cycle`) is ignored.
  std::vector<AcceleratorSpec> fleet;

  /// Homogeneous shorthand: `num_accelerators` identical members built
  /// from `accelerator` + `dram_bytes_per_cycle`, no weight caches —
  /// exactly the PR-1/2 pool.
  AcceleratorConfig accelerator;
  int num_accelerators = 4;
  i64 dram_bytes_per_cycle = 64;

  int num_threads = 1;  ///< wall-clock workers; no effect on cycle results
  SchedulePolicy policy = SchedulePolicy::kFifo;
  /// Ready-queue data structure (serve/sched_index). kIndexed is the
  /// production default; kScanReference keeps the seed linear scans as the
  /// bit-identical quadratic baseline for tests and the scale bench. No
  /// effect on simulated cycles, only on host wall-clock.
  ReadyQueueImpl ready_queue = ReadyQueueImpl::kIndexed;
  RoutePolicy routing = RoutePolicy::kFirstFree;
  /// Stage-class affinity filter applied before `routing` picks among idle
  /// members (see StageAffinity). kNone preserves the pre-affinity router
  /// bit for bit.
  StageAffinity stage_affinity = StageAffinity::kNone;
  ExecMode exec = ExecMode::kAnalytical;
  ChunkPolicy chunking = ChunkPolicy::kNone;
  /// Preemption quantum under kFixedTiles/kDeadlineAware: M-tiles of the
  /// routed device per chunk (model/runtime_model m_tile_extent converts
  /// tiles to rows per dataflow). <= 0 disables splitting like kNone.
  i64 chunk_tiles = 4;
  BatchPolicy batching;
  /// Memory-node grouping + fabric (serve/contention.hpp). Default
  /// (empty) = private channels and free routing, the exact pre-PR model:
  /// every contention code path is skipped and the simulated timeline is
  /// bit-identical to a pool without this field.
  NodeTopology topology;
  /// With a topology enabled, kLeastCost routing prices candidates at
  /// their node's *current* concurrent demand plus fabric hops (cost =
  /// compute + arbitered-DRAM + hops), so dispatch spreads away from
  /// saturated nodes. Off = contention-blind least-cost: candidates priced
  /// at their solo bandwidth and hop-free, the honest "routing to a remote
  /// device is free" baseline the fleet_contention scenario compares
  /// against. The arbiter still charges real contention either way — this
  /// flag only changes what the router *believes*. Requires a topology
  /// (validate() rejects the combination without one), so the default is
  /// off; scenarios that set a topology opt in explicitly.
  bool congestion_aware = false;
  /// Operand synthesis seed for cycle-accurate execution; combined with the
  /// batch's first request id so every batch sees fixed, thread-independent
  /// data.
  std::uint64_t data_seed = 0x5EEDAB1Eu;
  /// Wall-clock self-profiling of the serve loop's phases (obs/probe
  /// PhaseProfiler), surfaced as ServeReport::phase_profile. Off by
  /// default: enabling it reads a steady clock per phase per event, which
  /// is real overhead at production trace sizes. Never affects simulated
  /// cycles.
  bool self_profile = false;

  /// Fails fast (AXON_CHECK) on inconsistent knob combinations instead of
  /// letting them skew a long simulation: congestion_aware without a
  /// topology, a topology whose device_node list mismatches the fleet
  /// size, chunked dispatch with a non-positive quantum, stage affinity on
  /// a fleet with no class-typed member, and degenerate thread/fleet/batch
  /// counts. serve() calls this first; configs built by hand can call it
  /// early to surface mistakes at construction time.
  void validate() const;
};

class AcceleratorPool {
 public:
  explicit AcceleratorPool(PoolConfig config);

  [[nodiscard]] const PoolConfig& config() const { return config_; }

  /// The normalized fleet the pool actually runs: `config().fleet` when
  /// given, otherwise the homogeneous shorthand expanded, with default
  /// names filled in. Device indices in reports index into this vector.
  [[nodiscard]] const std::vector<AcceleratorSpec>& fleet() const {
    return fleet_;
  }

  /// Attaches a passive observer of the serve loop (obs/probe.hpp). Call
  /// before serve(); the pool does not own the probe and every callback
  /// fires from the single-threaded serve loop, so probes never perturb
  /// the simulated timeline or the thread-count determinism contract.
  /// With no probes attached every emission site is one branch — the
  /// disabled path costs nothing measurable.
  void add_probe(obs::PoolProbe* probe);

  /// Serves a pull-based trace source to completion and returns the
  /// finalized report. Requests are popped lazily as simulated time
  /// reaches their arrivals, so a generator-backed source never holds the
  /// whole trace in memory; completion feedback (closed-loop sources)
  /// flows back through TraceSource::on_complete at request retire.
  ///
  /// This is the single serve entry point: every trace — materialized
  /// RequestQueue included — is served as a TraceSource lvalue. The old
  /// by-value serve(RequestQueue) overload is gone; name the queue and
  /// pass it directly (the deleted rvalue overload below turns the old
  /// call shape into a compile error instead of a silent copy).
  ServeReport serve(TraceSource& source);
  ServeReport serve(TraceSource&&) = delete;

  /// Fleet-cycle cost of `gemm` on one fleet member: the device roofline
  /// converted to the reference clock. `weights_resident` prices a
  /// weight-cache hit (no B stream) — what cost-aware routing compares
  /// across idle devices.
  [[nodiscard]] i64 device_cycles(std::size_t device, const GemmShape& gemm,
                                  bool weights_resident = false) const;

  /// Fleet-best (minimum over members, cache-blind) cycle estimate for one
  /// batch — the quantity shortest-job-first sorts by. Prices the batch's
  /// *remaining* rows, so a partially executed batch re-entering the ready
  /// queue between chunks competes on what is left. Reduces to the PR-1/2
  /// single-shape estimate on a homogeneous fleet.
  [[nodiscard]] i64 estimate_cycles(const Batch& batch) const;
  /// Same estimate for a bare merged shape (used to price still-open
  /// groups when continuous admission picks one for an idle accelerator).
  [[nodiscard]] i64 estimate_gemm_cycles(const GemmShape& gemm) const;

 private:
  /// Memo key for the analytic cost cache: one dispatchable shape on one
  /// device (kFleetBest aggregates over devices), cache-hit flag included.
  /// The analytic roofline is a pure function of exactly these fields, so
  /// memoizing it is exact — the same number the model would recompute,
  /// found by hash lookup instead of re-running tiling math O(fleet) per
  /// candidate per event. With a topology enabled the key grows the
  /// node-demand epoch: `demand` 0 is the pre-PR private roofline,
  /// `demand` d >= 1 is the contention-aware price assuming d concurrent
  /// streams on the device's node including the candidate itself — a
  /// distinct, equally pure function per d, so the memo stays exact as
  /// node demand churns.
  struct CostKey {
    i64 M = 0;
    i64 K = 0;
    i64 N = 0;
    std::uint32_t device = 0;  ///< fleet index, or kFleetBest
    bool weights_resident = false;
    std::uint32_t demand = 0;  ///< node-demand epoch; 0 = private roofline

    static constexpr std::uint32_t kFleetBest = 0xFFFFFFFFu;

    friend bool operator==(const CostKey& a, const CostKey& b) {
      return a.M == b.M && a.K == b.K && a.N == b.N &&
             a.device == b.device &&
             a.weights_resident == b.weights_resident &&
             a.demand == b.demand;
    }
  };
  struct CostKeyHash {
    std::size_t operator()(const CostKey& k) const;
  };

  /// Contention-aware dispatch price: the roofline with the transfer leg
  /// arbitered at `demand_incl_self` concurrent streams on the device's
  /// node (fair share of the node budget, capped by the private channel),
  /// plus the fabric hop cost from the ingress node. `demand_incl_self`
  /// == 1 is the uncontended solo price — with the topology disabled or a
  /// single-member node at full budget it equals device_cycles() exactly.
  /// Memoized under the demand epoch in the cost key.
  [[nodiscard]] i64 contended_cost(std::size_t device, const GemmShape& gemm,
                                   bool weights_resident,
                                   i64 demand_incl_self) const;

  PoolConfig config_;
  std::vector<AcceleratorSpec> fleet_;
  FabricModel fabric_;  ///< static contention pricing; disabled by default
  std::vector<obs::PoolProbe*> probes_;  ///< not owned; serve-loop only
  /// Analytic-cost memo. Mutated from const accessors (the cache is an
  /// exact, invisible speedup), so: only the single-threaded serve loop —
  /// never the worker threads — touches pool methods, which keeps the
  /// unguarded mutable safe.
  mutable std::unordered_map<CostKey, i64, CostKeyHash> cost_cache_;
};

}  // namespace axon::serve
