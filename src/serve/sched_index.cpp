#include "serve/sched_index.hpp"

#include <limits>

#include "common/check.hpp"

namespace axon::serve {

std::string to_string(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::kFifo:
      return "FIFO";
    case SchedulePolicy::kShortestJobFirst:
      return "SJF";
    case SchedulePolicy::kEarliestDeadlineFirst:
      return "EDF";
  }
  return "?";
}

std::string to_string(ReadyQueueImpl impl) {
  switch (impl) {
    case ReadyQueueImpl::kIndexed:
      return "indexed";
    case ReadyQueueImpl::kScanReference:
      return "scan-reference";
  }
  return "?";
}

bool key_better(SchedulePolicy policy, const PickKey& a, const PickKey& b) {
  if (a.priority != b.priority) return a.priority < b.priority;
  if (policy != SchedulePolicy::kFifo && a.policy_key != b.policy_key) {
    return a.policy_key < b.policy_key;
  }
  if (a.age_cycle != b.age_cycle) return a.age_cycle < b.age_cycle;
  if (a.open_group != b.open_group) return !a.open_group;
  if (a.id0 != b.id0) return a.id0 < b.id0;
  return a.id1 < b.id1;
}

SchedIndex::SchedIndex(SchedulePolicy policy, ReadyQueueImpl impl,
                       int max_batch, bool track_joins)
    : policy_(policy),
      impl_(impl),
      max_batch_(max_batch),
      track_joins_(track_joins) {
  AXON_CHECK(max_batch_ >= 1, "SchedIndex needs max_batch >= 1");
}

PickKey SchedIndex::key_of(const Entry& e) const {
  PickKey k;
  k.priority = e.batch.top_priority;
  k.policy_key = policy_ == SchedulePolicy::kShortestJobFirst
                     ? e.estimate
                     : (e.batch.earliest_deadline < 0
                            ? std::numeric_limits<i64>::max()
                            : e.batch.earliest_deadline);
  k.age_cycle = e.batch.ready_cycle;
  k.id0 = e.batch.members.front().id;
  return k;
}

void SchedIndex::push(Batch batch, i64 estimate) {
  AXON_CHECK(!batch.members.empty(), "push of an empty batch");
  cached_best_ = -1;
  i64 slot;
  if (free_.empty()) {
    slot = static_cast<i64>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  Entry& e = slots_[static_cast<std::size_t>(slot)];
  e.batch = std::move(batch);
  e.estimate = estimate;
  e.seq = next_seq_++;
  ++e.version;  // retires any heap item left over from the slot's last life
  e.live = true;
  e.joinable = false;
  ++live_;
  if (e.batch.m_executed > 0) ++partial_;
  register_join(slot);
  index_push(slot);
}

void SchedIndex::index_push(i64 slot) {
  if (impl_ == ReadyQueueImpl::kScanReference) {
    order_.push_back(slot);
    return;
  }
  const Entry& e = slots_[static_cast<std::size_t>(slot)];
  const PickKey key = key_of(e);
  auto it = heaps_.find(key.priority);
  if (it == heaps_.end()) {
    it = heaps_.emplace(key.priority, ClassHeap(WorseThan{policy_})).first;
  }
  it->second.push(HeapItem{key, slot, e.version});
}

void SchedIndex::register_join(i64 slot) {
  if (!track_joins_) return;
  Entry& e = slots_[static_cast<std::size_t>(slot)];
  if (e.batch.m_executed != 0 || e.batch.size() >= max_batch_) return;
  joinable_[{e.batch.gemm.K, e.batch.gemm.N, e.batch.stage_class}].insert(
      {e.seq, slot});
  e.joinable = true;
}

void SchedIndex::unregister_join(i64 slot) {
  Entry& e = slots_[static_cast<std::size_t>(slot)];
  if (!e.joinable) return;
  const auto it =
      joinable_.find({e.batch.gemm.K, e.batch.gemm.N, e.batch.stage_class});
  AXON_CHECK(it != joinable_.end(), "join registry out of sync");
  it->second.erase({e.seq, slot});
  if (it->second.empty()) joinable_.erase(it);
  e.joinable = false;
}

i64 SchedIndex::indexed_best() {
  for (auto it = heaps_.begin(); it != heaps_.end();) {
    ClassHeap& heap = it->second;
    while (!heap.empty()) {
      const HeapItem& top = heap.top();
      const Entry& e = slots_[static_cast<std::size_t>(top.slot)];
      if (!e.live || e.version != top.version) {
        heap.pop();  // stale: the entry mutated or died since this snapshot
        continue;
      }
      // Classes are strict and the map iterates them ascending, so the
      // first live top is the global best.
      return top.slot;
    }
    it = heaps_.erase(it);
  }
  AXON_CHECK(false, "best() on an empty SchedIndex");
  return -1;
}

i64 SchedIndex::scan_best() {
  AXON_CHECK(!order_.empty(), "best() on an empty SchedIndex");
  // The seed pick_next_batch, verbatim: linear argmin with keys recomputed
  // per comparison. First-wins on the (impossible) full tie.
  std::size_t best = 0;
  for (std::size_t i = 1; i < order_.size(); ++i) {
    if (key_better(policy_,
                   key_of(slots_[static_cast<std::size_t>(order_[i])]),
                   key_of(slots_[static_cast<std::size_t>(order_[best])]))) {
      best = i;
    }
  }
  return order_[best];
}

PickKey SchedIndex::best_key() {
  if (cached_best_ < 0) {
    cached_best_ = impl_ == ReadyQueueImpl::kIndexed ? indexed_best()
                                                     : scan_best();
  }
  return key_of(slots_[static_cast<std::size_t>(cached_best_)]);
}

Batch SchedIndex::pop_best() {
  const i64 slot = cached_best_ >= 0
                       ? cached_best_
                       : (impl_ == ReadyQueueImpl::kIndexed ? indexed_best()
                                                            : scan_best());
  Entry& e = slots_[static_cast<std::size_t>(slot)];
  Batch out = std::move(e.batch);
  if (impl_ == ReadyQueueImpl::kIndexed) {
    auto it = heaps_.find(out.top_priority);
    AXON_CHECK(it != heaps_.end(), "heap for popped class missing");
    it->second.pop();
  }
  erase(slot);
  return out;
}

void SchedIndex::erase(i64 slot) {
  Entry& e = slots_[static_cast<std::size_t>(slot)];
  AXON_CHECK(e.live, "erase of a dead slot");
  cached_best_ = -1;
  unregister_join(slot);
  if (e.batch.m_executed > 0) --partial_;
  e.live = false;
  ++e.version;
  e.batch = Batch{};
  --live_;
  free_.push_back(slot);
  if (impl_ == ReadyQueueImpl::kScanReference) {
    for (std::size_t i = 0; i < order_.size(); ++i) {
      if (order_[i] == slot) {
        // The seed `ready.erase(...)`: O(n) compaction, order preserved.
        order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
    AXON_CHECK(false, "slot missing from scan order");
  }
}

i64 SchedIndex::find_joinable(i64 K, i64 N, StageClass cls) {
  AXON_CHECK(track_joins_, "find_joinable on a non-join SchedIndex");
  if (impl_ == ReadyQueueImpl::kScanReference) {
    // The seed join scan, verbatim: first match in ready order.
    for (const i64 slot : order_) {
      const Entry& e = slots_[static_cast<std::size_t>(slot)];
      if (e.batch.m_executed == 0 && e.batch.size() < max_batch_ &&
          e.batch.gemm.K == K && e.batch.gemm.N == N &&
          e.batch.stage_class == cls) {
        return slot;
      }
    }
    return -1;
  }
  const auto it = joinable_.find({K, N, cls});
  if (it == joinable_.end()) return -1;
  AXON_CHECK(!it->second.empty(), "empty join bucket left behind");
  // Buckets hold only live joinable slots, ordered by push seq — the same
  // batch the seed's first-match scan lands on.
  return it->second.begin()->second;
}

Batch& SchedIndex::batch(i64 slot) {
  Entry& e = slots_[static_cast<std::size_t>(slot)];
  AXON_CHECK(e.live, "batch() on a dead slot");
  return e.batch;
}

void SchedIndex::joined(i64 slot, i64 new_estimate) {
  Entry& e = slots_[static_cast<std::size_t>(slot)];
  AXON_CHECK(e.live && e.joinable, "joined() on a non-joinable slot");
  cached_best_ = -1;
  e.estimate = new_estimate;
  if (e.batch.size() >= max_batch_) unregister_join(slot);
  if (impl_ == ReadyQueueImpl::kIndexed) {
    ++e.version;  // the old heap snapshot (pre-absorb key) is now stale
    index_push(slot);
  }
  // Scan mode: nothing to re-key — the entry stays in place in push order
  // and every scan recomputes keys from the entries (the seed behaviour).
}

std::size_t SchedIndex::index_entries() const {
  if (impl_ == ReadyQueueImpl::kScanReference) return order_.size();
  std::size_t n = 0;
  for (const auto& kv : heaps_) n += kv.second.size();
  return n;
}

bool SchedIndex::has_partial() const {
  if (impl_ == ReadyQueueImpl::kScanReference) {
    // The seed preemption check, verbatim: linear scan per dispatch.
    for (const i64 slot : order_) {
      if (slots_[static_cast<std::size_t>(slot)].batch.m_executed > 0) {
        return true;
      }
    }
    return false;
  }
  return partial_ > 0;
}

}  // namespace axon::serve
