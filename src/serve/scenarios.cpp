#include "serve/scenarios.hpp"

#include <memory>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace axon::serve {

std::vector<AcceleratorSpec> mixed_demo_fleet() {
  AcceleratorSpec big;
  big.name = "big64x64";
  big.accelerator.arch = ArchType::kAxon;
  big.accelerator.array = {64, 64};
  big.clock_mhz = kRefClockMhz;
  big.dram_bytes_per_cycle = 64;
  big.weight_cache_bytes = 16 << 20;
  AcceleratorSpec hbm;
  hbm.name = "hbm32x32";
  hbm.accelerator.arch = ArchType::kAxon;
  hbm.accelerator.array = {32, 32};
  hbm.clock_mhz = 2 * kRefClockMhz;
  hbm.dram_bytes_per_cycle = 256;
  hbm.weight_cache_bytes = 16 << 20;
  std::vector<AcceleratorSpec> fleet = {big, hbm, big, hbm};
  // Index suffixes keep the per-accelerator report rows distinguishable.
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    fleet[i].name += "_" + std::to_string(i);
  }
  return fleet;
}

std::vector<GemmWorkload> mixed_fleet_mix() {
  // Decode shapes twice each: they dominate the request stream. The
  // prefill GEMM uses a different layer's weights — a (K, N) the decode
  // stream never hits — otherwise the batcher would coalesce prefill into
  // decode batches and there would be nothing left to route.
  return {
      {"decode_qkv", {1, 768, 2304}},
      {"decode_qkv", {1, 768, 2304}},
      {"decode_ffn1", {1, 768, 3072}},
      {"decode_ffn1", {1, 768, 3072}},
      {"prefill_ffn2", {128, 3072, 768}},
  };
}

BurstyTraceConfig mixed_fleet_traffic(int num_requests) {
  BurstyTraceConfig tc;
  tc.num_requests = num_requests;
  tc.burst_interarrival_cycles = 3000.0;
  tc.mean_on_cycles = 400000.0;
  tc.mean_off_cycles = 1200000.0;
  // Decode budget sits between the cost-aware and round-robin tail: the
  // routed fleet meets it, the blind one misses during bursts.
  tc.classes.default_policy = {/*slo=*/95000, /*priority=*/0};
  tc.classes.per_workload["prefill_ffn2"] = {/*slo=*/2300000, /*priority=*/1};
  return tc;
}

RequestQueue mixed_fleet_trace() {
  Rng rng(kMixedFleetSeed);
  return generate_bursty_trace(mixed_fleet_mix(), mixed_fleet_traffic(), rng);
}

PoolConfig mixed_fleet_pool_config(RoutePolicy routing) {
  PoolConfig cfg;
  cfg.fleet = mixed_demo_fleet();
  cfg.policy = SchedulePolicy::kEarliestDeadlineFirst;
  cfg.routing = routing;
  cfg.batching.max_batch = 8;
  cfg.batching.max_wait_cycles = 60000;
  cfg.batching.continuous_admission = true;
  return cfg;
}

std::vector<AcceleratorSpec> chunked_prefill_fleet() {
  AcceleratorSpec dev;
  dev.accelerator.arch = ArchType::kAxon;
  dev.accelerator.array = {32, 32};
  dev.clock_mhz = kRefClockMhz;
  dev.dram_bytes_per_cycle = 64;
  // The cache is what keeps chunking nearly free: chunk 0 streams the
  // prefill weights once, later chunks hit unless preempting work evicted
  // them.
  dev.weight_cache_bytes = 16 << 20;
  std::vector<AcceleratorSpec> fleet = {dev, dev};
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    fleet[i].name = "axon32_" + std::to_string(i);
  }
  return fleet;
}

std::vector<GemmWorkload> chunked_prefill_mix() {
  // Decode shapes dominate (8 of 9 draws); the 512-token prefill runs
  // ~1.2 Mcycles unchunked on a 32x32 array — ~20 decode batches' worth of
  // head-of-line blocking per dispatch, and coalesced prefill batches
  // multiply that further.
  return {
      {"decode_qkv", {1, 768, 2304}},
      {"decode_qkv", {1, 768, 2304}},
      {"decode_ffn1", {1, 768, 3072}},
      {"decode_ffn1", {1, 768, 3072}},
      {"decode_qkv", {1, 768, 2304}},
      {"decode_qkv", {1, 768, 2304}},
      {"decode_ffn1", {1, 768, 3072}},
      {"decode_ffn1", {1, 768, 3072}},
      {"prefill_ffn2", {512, 3072, 768}},
  };
}

BurstyTraceConfig chunked_prefill_traffic(int num_requests) {
  BurstyTraceConfig tc;
  tc.num_requests = num_requests;
  tc.burst_interarrival_cycles = 20000.0;
  tc.mean_on_cycles = 500000.0;
  tc.mean_off_cycles = 1500000.0;
  // Decode carries the tight interactive budget: it fits one chunk of an
  // in-service prefill (~150 kcycles at chunk_tiles 2) plus its own batch,
  // not a whole 1.2+ Mcycle prefill dispatch. Prefill is offline batch
  // work — priority class 1, no deadline — so overall SLO attainment reads
  // as decode attainment and EDF/deadline-aware chunking treat prefill as
  // the background work preemption exists to cut through.
  tc.classes.default_policy = {/*slo=*/400000, /*priority=*/0};
  tc.classes.per_workload["prefill_ffn2"] = {/*slo=*/-1, /*priority=*/1};
  return tc;
}

RequestQueue chunked_prefill_trace() {
  Rng rng(kChunkedPrefillSeed);
  return generate_bursty_trace(chunked_prefill_mix(), chunked_prefill_traffic(),
                               rng);
}

PoolConfig chunked_prefill_pool_config(ChunkPolicy chunking) {
  PoolConfig cfg;
  cfg.fleet = chunked_prefill_fleet();
  cfg.policy = SchedulePolicy::kEarliestDeadlineFirst;
  cfg.chunking = chunking;
  cfg.chunk_tiles = 2;
  cfg.batching.max_batch = 8;
  cfg.batching.max_wait_cycles = 60000;
  cfg.batching.continuous_admission = true;
  return cfg;
}

std::vector<AcceleratorSpec> serve_scale_fleet() {
  AcceleratorSpec dev;
  dev.accelerator.arch = ArchType::kAxon;
  dev.accelerator.array = {32, 32};
  dev.clock_mhz = kRefClockMhz;
  dev.dram_bytes_per_cycle = 64;
  dev.weight_cache_bytes = 16 << 20;
  std::vector<AcceleratorSpec> fleet = {dev, dev, dev, dev};
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    fleet[i].name = "axon32_" + std::to_string(i);
  }
  return fleet;
}

std::vector<GemmWorkload> serve_scale_mix() {
  // Decode dominates 8:1; the 256-token prefill lives on a (K, N) no
  // decode entry shares, so it cannot coalesce away and must be scheduled
  // (and, under deadline-aware chunking, split) against the backlog.
  return {
      {"decode_qkv", {1, 768, 2304}},
      {"decode_qkv", {1, 768, 2304}},
      {"decode_ffn1", {1, 768, 3072}},
      {"decode_ffn1", {1, 768, 3072}},
      {"decode_qkv", {1, 768, 2304}},
      {"decode_qkv", {1, 768, 2304}},
      {"decode_ffn1", {1, 768, 3072}},
      {"decode_ffn1", {1, 768, 3072}},
      {"prefill_ffn2", {256, 3072, 768}},
  };
}

BurstyTraceConfig serve_scale_traffic(int num_requests) {
  BurstyTraceConfig tc;
  tc.num_requests = num_requests;
  // Offered load outruns the 4-member fleet inside a burst and the OFF
  // dwell is too short to fully drain, so the ready queue builds to
  // thousands of batches and oscillates there — queue *depth*, not request
  // count, is what separates O(n log n) from O(n^2) serve cores.
  tc.burst_interarrival_cycles = 120.0;
  tc.mean_on_cycles = 400000.0;
  tc.mean_off_cycles = 200000.0;
  tc.classes.default_policy = {/*slo=*/400000, /*priority=*/0};
  tc.classes.per_workload["prefill_ffn2"] = {/*slo=*/20000000, /*priority=*/1};
  return tc;
}

RequestQueue serve_scale_trace(int num_requests) {
  Rng rng(kServeScaleSeed);
  return generate_bursty_trace(serve_scale_mix(),
                               serve_scale_traffic(num_requests), rng);
}

BurstyTraceSource serve_scale_source(int num_requests) {
  return BurstyTraceSource(serve_scale_mix(), serve_scale_traffic(num_requests),
                           Rng(kServeScaleSeed));
}

PoolConfig serve_scale_pool_config(ReadyQueueImpl ready_queue,
                                   int num_threads) {
  PoolConfig cfg;
  cfg.fleet = serve_scale_fleet();
  cfg.policy = SchedulePolicy::kEarliestDeadlineFirst;
  cfg.ready_queue = ready_queue;
  cfg.num_threads = num_threads;
  cfg.chunking = ChunkPolicy::kDeadlineAware;
  cfg.chunk_tiles = 4;
  // max_batch 8 keeps the backlog deep in *batches* (the unit the ready
  // queue scales in), not just in requests.
  cfg.batching.max_batch = 8;
  cfg.batching.max_wait_cycles = 20000;
  cfg.batching.continuous_admission = true;
  return cfg;
}

std::vector<AcceleratorSpec> fleet_contention_fleet() {
  AcceleratorSpec dev;
  dev.accelerator.arch = ArchType::kAxon;
  dev.accelerator.array = {32, 32};
  dev.clock_mhz = kRefClockMhz;
  dev.dram_bytes_per_cycle = 64;
  // No weight cache: every dispatch streams its full weight matrix, so
  // node bandwidth is the contended resource by construction.
  dev.weight_cache_bytes = 0;
  std::vector<AcceleratorSpec> fleet = {dev, dev, dev, dev};
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    fleet[i].name = "axon32_" + std::to_string(i);
  }
  return fleet;
}

NodeTopology fleet_contention_topology() {
  NodeTopology topo;
  topo.device_node = {0, 0, 1, 1};
  // 80 B/fleet-cycle per node against 64 B/cycle private channels: one
  // stream runs at its private 64, two concurrent streams get 40 each —
  // a 1.6x stretch on a ~55 kcycle decode weight stream (~33 kcycles),
  // an order of magnitude above the hop price of borrowing the far node.
  topo.node_bw_bytes_per_cycle = {80, 80};
  topo.hops = {{0, 1}, {1, 0}};
  topo.hop_latency_cycles = 2000;
  topo.link_bytes_per_cycle = 128;
  topo.ingress_node = 0;
  return topo;
}

std::vector<GemmWorkload> fleet_contention_mix() {
  // Decode dominates 4:1. On cache-less members every decode dispatch
  // streams 3.5-4.5 MiB of weights (~55-70 kcycles solo), so transfer —
  // not compute — is what the router is really placing. The prefill lives
  // on a distinct (K, N) so the batcher cannot coalesce it away.
  return {
      {"decode_qkv", {1, 768, 2304}},
      {"decode_qkv", {1, 768, 2304}},
      {"decode_ffn1", {1, 768, 3072}},
      {"decode_ffn1", {1, 768, 3072}},
      {"prefill_ffn2", {128, 3072, 768}},
  };
}

BurstyTraceConfig fleet_contention_traffic(int num_requests) {
  BurstyTraceConfig tc;
  tc.num_requests = num_requests;
  tc.burst_interarrival_cycles = 60000.0;
  tc.mean_on_cycles = 400000.0;
  tc.mean_off_cycles = 1200000.0;
  // The decode budget sits in the band where routing freedom exists (the
  // deep-burst tail saturates all four members either way): spreading
  // streams across nodes meets it, piling two onto one node blows it —
  // aware attains ~0.885 on the canonical trace, blind ~0.802.
  tc.classes.default_policy = {/*slo=*/110000, /*priority=*/0};
  tc.classes.per_workload["prefill_ffn2"] = {/*slo=*/4000000, /*priority=*/1};
  return tc;
}

RequestQueue fleet_contention_trace() {
  Rng rng(kFleetContentionSeed);
  return generate_bursty_trace(fleet_contention_mix(),
                               fleet_contention_traffic(), rng);
}

PoolConfig fleet_contention_pool_config(bool congestion_aware) {
  PoolConfig cfg;
  cfg.fleet = fleet_contention_fleet();
  cfg.topology = fleet_contention_topology();
  cfg.congestion_aware = congestion_aware;
  cfg.policy = SchedulePolicy::kEarliestDeadlineFirst;
  cfg.routing = RoutePolicy::kLeastCost;
  cfg.batching.max_batch = 8;
  cfg.batching.max_wait_cycles = 60000;
  cfg.batching.continuous_admission = true;
  return cfg;
}

std::vector<AcceleratorSpec> closed_loop_fleet() {
  AcceleratorSpec dev;
  dev.accelerator.arch = ArchType::kAxon;
  dev.accelerator.array = {32, 32};
  dev.clock_mhz = kRefClockMhz;
  dev.dram_bytes_per_cycle = 64;
  dev.weight_cache_bytes = 16 << 20;
  std::vector<AcceleratorSpec> fleet = {dev, dev};
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    fleet[i].name = "axon32_" + std::to_string(i);
  }
  return fleet;
}

std::vector<GemmWorkload> closed_loop_mix() {
  return {
      {"decode_qkv", {1, 768, 2304}},
      {"decode_ffn1", {1, 768, 3072}},
  };
}

ClosedLoopTraceConfig closed_loop_traffic(bool completion_feedback,
                                          int num_requests) {
  ClosedLoopTraceConfig tc;
  tc.num_requests = num_requests;
  tc.num_clients = kClosedLoopClients;
  tc.mean_think_cycles = 30000.0;
  // A deliberate *under*-estimate of realized service on the saturated
  // 2-member fleet: estimate mode keeps issuing as if the fleet kept up,
  // feedback mode discovers it does not and self-limits.
  tc.service_estimate_cycles = 40000.0;
  tc.completion_feedback = completion_feedback;
  tc.classes.default_policy = {/*slo=*/400000, /*priority=*/0};
  return tc;
}

ClosedLoopTraceSource closed_loop_source(bool completion_feedback,
                                         int num_requests) {
  return ClosedLoopTraceSource(
      closed_loop_mix(), closed_loop_traffic(completion_feedback, num_requests),
      Rng(kClosedLoopSeed));
}

PoolConfig closed_loop_pool_config(int num_threads) {
  PoolConfig cfg;
  cfg.fleet = closed_loop_fleet();
  cfg.policy = SchedulePolicy::kFifo;
  cfg.num_threads = num_threads;
  cfg.batching.max_batch = 8;
  cfg.batching.max_wait_cycles = 20000;
  cfg.batching.continuous_admission = true;
  return cfg;
}

std::vector<AcceleratorSpec> disagg_fleet() {
  AcceleratorSpec prefill;
  prefill.name = "prefill64x64";
  prefill.accelerator.arch = ArchType::kAxon;
  prefill.accelerator.array = {64, 64};
  prefill.clock_mhz = kRefClockMhz;
  prefill.dram_bytes_per_cycle = 64;
  prefill.weight_cache_bytes = 16 << 20;
  prefill.serves = StageClass::kPrefill;
  AcceleratorSpec decode;
  decode.name = "decode32x32";
  decode.accelerator.arch = ArchType::kAxon;
  decode.accelerator.array = {32, 32};
  decode.clock_mhz = 2 * kRefClockMhz;
  decode.dram_bytes_per_cycle = 256;
  decode.weight_cache_bytes = 16 << 20;
  decode.serves = StageClass::kDecode;
  std::vector<AcceleratorSpec> fleet = {prefill, prefill, decode, decode};
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    fleet[i].name += "_" + std::to_string(i);
  }
  return fleet;
}

NodeTopology disagg_topology() {
  NodeTopology topo;
  topo.device_node = {0, 0, 1, 1};
  // No node_bw entries: unlimited budgets, private channels — the fabric
  // exists to price the prefill->decode activation handoff, not to layer
  // bandwidth contention onto the disaggregation story. Ingress sits on
  // the decode node (the interactive front-end); the prefill farm is the
  // remote pool, so every prefill dispatch and every prefill->decode
  // activation handoff crosses one hop, and parking an overflow prefill
  // on a local decode member is the fabric-cheap (but SLO-expensive)
  // temptation the unified run keeps taking.
  topo.hops = {{0, 1}, {1, 0}};
  topo.hop_latency_cycles = 500;
  topo.link_bytes_per_cycle = 256;
  topo.ingress_node = 1;
  return topo;
}

std::vector<GemmWorkload> disagg_mix() {
  // Interactive decode dominates 4:1; "gen" is the two-stage network. Its
  // prefill stage (256 tokens, ~4x a decode member's whole batch budget,
  // ~1/4 of that on a 64x64 prefill member) is the head-of-line hazard
  // the affinity knob does or does not keep off the decode pool.
  return {
      {"decode_qkv", {1, 768, 2304}},
      {"decode_qkv", {1, 768, 2304}},
      {"decode_ffn1", {1, 768, 3072}},
      {"decode_ffn1", {1, 768, 3072}},
      {"gen", {256, 768, 3072}},
  };
}

BurstyTraceConfig disagg_traffic(int num_requests) {
  BurstyTraceConfig tc;
  tc.num_requests = num_requests;
  tc.burst_interarrival_cycles = 9000.0;
  tc.mean_on_cycles = 400000.0;
  tc.mean_off_cycles = 1200000.0;
  // The decode budget sits between the split and unified tails: decode
  // members that never serve prefill meet it, decode members that absorb
  // overflow prefill stages blow it during bursts. "gen" gets a loose
  // end-to-end budget (prefill + handoff + decode) in the batch class.
  tc.classes.default_policy = {/*slo=*/90000, /*priority=*/0};
  tc.classes.per_workload["gen"] = {/*slo=*/8000000, /*priority=*/1};
  // Single-stage decode rides as length-1 kDecode chains so kStrict
  // affinity can tell it apart from kGeneral traffic; "gen" is the real
  // two-stage chain. Chain stage 0 always matches the mix entry's GEMM.
  tc.classes.chains["decode_qkv"] = {{{1, 768, 2304}, StageClass::kDecode}};
  tc.classes.chains["decode_ffn1"] = {{{1, 768, 3072}, StageClass::kDecode}};
  tc.classes.chains["gen"] = {{{256, 768, 3072}, StageClass::kPrefill},
                              {{1, 3072, 768}, StageClass::kDecode}};
  return tc;
}

RequestQueue disagg_trace() {
  Rng rng(kDisaggSeed);
  return generate_bursty_trace(disagg_mix(), disagg_traffic(), rng);
}

PoolConfig disagg_pool_config(StageAffinity affinity) {
  PoolConfig cfg;
  cfg.fleet = disagg_fleet();
  cfg.topology = disagg_topology();
  cfg.policy = SchedulePolicy::kEarliestDeadlineFirst;
  cfg.routing = RoutePolicy::kLeastCost;
  cfg.stage_affinity = affinity;
  cfg.batching.max_batch = 8;
  cfg.batching.max_wait_cycles = 60000;
  cfg.batching.continuous_admission = true;
  return cfg;
}

namespace {

/// Seed + shapes of the two plain open-loop smoke scenarios that predate
/// the richer named scenarios (kept bit-identical to the historical
/// bench-local definitions).
constexpr std::uint64_t kOpenLoopSeed = 404;

PoolConfig open_loop_pool_config() {
  PoolConfig cfg;
  cfg.accelerator.arch = ArchType::kAxon;
  cfg.accelerator.array = {32, 32};
  cfg.num_accelerators = 4;
  cfg.batching.max_batch = 8;
  cfg.batching.max_wait_cycles = 20000;
  return cfg;
}

std::unique_ptr<TraceSource> open_loop_trace(
    const std::vector<GemmWorkload>& mix, int num_requests, double gap) {
  Rng rng(kOpenLoopSeed);
  TraceConfig tc;
  tc.num_requests = num_requests;
  tc.mean_interarrival_cycles = gap;
  return std::make_unique<RequestQueue>(generate_trace(mix, tc, rng));
}

/// Wraps a RequestQueue factory into the registry's source-factory shape.
template <typename Fn>
std::function<std::unique_ptr<TraceSource>()> queue_factory(Fn fn) {
  return [fn] { return std::make_unique<RequestQueue>(fn()); };
}

std::vector<ScenarioSpec> build_registry() {
  std::vector<ScenarioSpec> specs;
  specs.push_back(
      {"resnet50_pool4_batch8",
       "ResNet50 im2col mix, 4x 32x32, FIFO, open-loop Poisson",
       open_loop_pool_config(),
       [] { return open_loop_trace(resnet50_serve_mix(), 96, 20000.0); }});
  specs.push_back(
      {"decode_pool4_batch8",
       "one-token decode mix, 4x 32x32, FIFO, open-loop Poisson",
       open_loop_pool_config(),
       [] { return open_loop_trace(decode_serve_mix(), 128, 5000.0); }});
  specs.push_back({"fleet_round_robin",
                   "mixed fleet, round-robin routing (the routing baseline)",
                   mixed_fleet_pool_config(RoutePolicy::kRoundRobin),
                   queue_factory(mixed_fleet_trace)});
  specs.push_back({"fleet_least_cost",
                   "mixed fleet, cost-aware routing (the routing claim)",
                   mixed_fleet_pool_config(RoutePolicy::kLeastCost),
                   queue_factory(mixed_fleet_trace)});
  specs.push_back({"chunked_prefill_whole",
                   "head-of-line scenario, whole-batch dispatch baseline",
                   chunked_prefill_pool_config(ChunkPolicy::kNone),
                   queue_factory(chunked_prefill_trace)});
  specs.push_back({"chunked_prefill_deadline_aware",
                   "head-of-line scenario, deadline-aware chunking",
                   chunked_prefill_pool_config(ChunkPolicy::kDeadlineAware),
                   queue_factory(chunked_prefill_trace)});
  specs.push_back({"fleet_contention_blind",
                   "shared-bandwidth scenario, congestion-blind routing",
                   fleet_contention_pool_config(false),
                   queue_factory(fleet_contention_trace)});
  specs.push_back({"fleet_contention_aware",
                   "shared-bandwidth scenario, congestion-aware routing",
                   fleet_contention_pool_config(true),
                   queue_factory(fleet_contention_trace)});
  specs.push_back({"disagg_prefill_decode_unified",
                   "two-stage gen + decode traffic, unified pools (kNone)",
                   disagg_pool_config(StageAffinity::kNone),
                   queue_factory(disagg_trace)});
  specs.push_back({"disagg_prefill_decode_split",
                   "two-stage gen + decode traffic, disaggregated pools "
                   "(kStrict)",
                   disagg_pool_config(StageAffinity::kStrict),
                   queue_factory(disagg_trace)});
  specs.push_back({"serve_scale_200k",
                   "200k-request mixed-SLO backlog, indexed ready queue",
                   serve_scale_pool_config(ReadyQueueImpl::kIndexed),
                   queue_factory([] { return serve_scale_trace(); })});
  specs.push_back({"closed_loop_estimate",
                   "closed-loop clients, fixed service estimate",
                   closed_loop_pool_config(), [] {
                     return std::make_unique<ClosedLoopTraceSource>(
                         closed_loop_source(false));
                   }});
  specs.push_back({"closed_loop_feedback",
                   "closed-loop clients, completion-feedback re-issue",
                   closed_loop_pool_config(), [] {
                     return std::make_unique<ClosedLoopTraceSource>(
                         closed_loop_source(true));
                   }});
  specs.push_back({"serve_scale_10m",
                   "10^7-request streaming pipeline (memory trajectory)",
                   serve_scale_pool_config(ReadyQueueImpl::kIndexed), [] {
                     return std::make_unique<BurstyTraceSource>(
                         serve_scale_source(10000000));
                   }});
  return specs;
}

const std::vector<ScenarioSpec>& registry() {
  static const std::vector<ScenarioSpec> specs = build_registry();
  return specs;
}

}  // namespace

const ScenarioSpec& scenario(const std::string& name) {
  for (const ScenarioSpec& spec : registry()) {
    if (spec.name == name) return spec;
  }
  AXON_CHECK(false, "unknown serve scenario \"", name, "\"");
  // Unreachable; AXON_CHECK(false, ...) always throws.
  return registry().front();
}

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const ScenarioSpec& spec : registry()) out.push_back(spec.name);
    return out;
  }();
  return names;
}

}  // namespace axon::serve
