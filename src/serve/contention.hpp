// Inference serving, shared-resource layer: memory-node bandwidth
// contention and the inter-node fabric. Up to PR 7 every fleet member
// priced its roofline against a *private* DRAM channel and routing a batch
// to any device was free — dishonest under saturation, where concurrent
// B-stream traffic from pool members collides on shared memory channels
// and remote dispatch crosses a fabric. This module adds both resources:
//
//   NodeTopology     groups fleet members into memory nodes that share a
//                    bytes-per-fleet-cycle DRAM budget, and prices
//                    node-to-node dispatch over a hop matrix (per-hop
//                    latency + link serialization). Default-constructed
//                    (empty) topology = private channels, the exact pre-PR
//                    model: every code path below is skipped and the
//                    simulated timeline is bit-identical.
//
//   FabricModel      the *static* half: per-device effective solo
//                    bandwidth (private channel capped by its node budget)
//                    and hop costs from the ingress node. Pure functions of
//                    the topology — what cost estimates and least-cost
//                    routing price.
//
//   BandwidthArbiter the *dynamic* half: a deterministic fluid fair-share
//                    arbiter over in-flight transfer streams. Each
//                    dispatched chunk's DRAM traffic drains as a fluid
//                    stream; while k streams share a node, each proceeds at
//                    min(private rate, budget / k). Rates change only at
//                    serve-loop events (a dispatch joins, a stream drains),
//                    and the arbiter *re-prices* the filed completions of
//                    affected chunks at those events — the completion
//                    calendar absorbs this with versioned keys and lazy
//                    invalidation (serve/pool.cpp), the same idiom the
//                    ready-queue index uses. This re-pricing choice (rather
//                    than freezing each chunk's price at dispatch) is what
//                    makes the conservation property exact: at every event,
//                    the sum of allocated per-stream rates on a node never
//                    exceeds its budget — serve_contention_test pins both
//                    the invariant and the re-pricing semantics.
//
// Determinism contract: all arbiter state mutates exclusively in the
// single-threaded serve loop (admit at dispatch, resolve at harvest,
// advance at time steps, release at retire) — workers never see it — so
// the simulated timeline stays bit-identical for any worker-thread count.
//
// Integer exactness: fluid progress uses floor(elapsed * rate) byte
// delivery per constant-rate epoch and ceil projections for finish times,
// all in 128-bit-widened integer arithmetic — no floats anywhere near the
// timeline. An uncontended stream (its node never sees a second concurrent
// stream) keeps the closed-form roofline price from dispatch, which is why
// single-member nodes with budget >= the private channel rate reproduce
// the pre-PR records byte-for-byte.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace axon::serve {

/// Reference clock the simulated timeline runs at. Per-device cycle costs
/// convert to fleet cycles by clock ratio, so a 2000 MHz member finishes
/// the same device-cycle count in half the simulated time.
inline constexpr int kRefClockMhz = 1000;

/// Converts device cycles to simulated fleet cycles at the reference
/// clock: a member clocked above kRefClockMhz retires the same device
/// cycles in proportionally less simulated time. The multiply is widened
/// to 128 bits — `device_cycles * kRefClockMhz` overflows i64 at a few
/// quadrillion device cycles, a regime multi-Mcycle chunks on slow clocks
/// can reach — and a result that does not fit i64 fails an AXON_CHECK
/// instead of wrapping into a bogus (possibly negative) timeline.
i64 to_fleet_cycles(i64 device_cycles, int clock_mhz);

/// Memory-node grouping + fabric description for a fleet. Empty
/// `device_node` disables the whole subsystem (private channels, free
/// routing — the pre-PR model).
struct NodeTopology {
  /// Fleet index -> memory-node id (0-based, dense). Size must equal the
  /// fleet size; empty = disabled.
  std::vector<int> device_node;
  /// Per-node shared DRAM budget in bytes per *fleet* cycle (the
  /// kRefClockMhz timebase, so heterogeneous clocks share one unit).
  /// <= 0 = unlimited (that node's members keep their private channels).
  /// Empty = every node unlimited.
  std::vector<i64> node_bw_bytes_per_cycle;
  /// Node-to-node hop counts (square, num_nodes x num_nodes); empty = all
  /// dispatch is local. Row `ingress_node` prices where request operands
  /// enter and results leave the fleet.
  std::vector<std::vector<int>> hops;
  i64 hop_latency_cycles = 0;   ///< fleet cycles per hop traversed
  /// Fabric link serialization bandwidth in bytes per fleet cycle, paid
  /// once per remote dispatch (cut-through, not store-and-forward);
  /// <= 0 = latency-only links.
  i64 link_bytes_per_cycle = 0;
  int ingress_node = 0;         ///< where activations/results enter/leave

  [[nodiscard]] bool enabled() const { return !device_node.empty(); }
  /// Highest node id + 1 (0 when disabled).
  [[nodiscard]] int num_nodes() const;
};

/// The per-device channel facts the contention model needs from an
/// AcceleratorSpec (kept structural to avoid a header cycle with pool.hpp).
struct DeviceChannel {
  int clock_mhz = kRefClockMhz;
  /// Private DRAM bandwidth, bytes per *device* cycle; <= 0 = infinite
  /// (such a device never streams and never joins the arbitration).
  i64 dram_bytes_per_cycle = 0;
};

/// Static contention pricing: effective solo bandwidth per device and hop
/// costs from the ingress node. Built once per pool; read-only afterwards,
/// so const access from the serve loop and cost estimators is free.
class FabricModel {
 public:
  FabricModel() = default;  ///< disabled (private channels)
  FabricModel(NodeTopology topo, const std::vector<DeviceChannel>& devices);

  [[nodiscard]] bool enabled() const { return topo_.enabled(); }
  [[nodiscard]] const NodeTopology& topology() const { return topo_; }
  [[nodiscard]] int num_nodes() const { return topo_.num_nodes(); }
  [[nodiscard]] int node_of(std::size_t device) const;
  /// The node's shared budget in bytes per fleet cycle; <= 0 = unlimited.
  [[nodiscard]] i64 node_budget(int node) const;
  /// Members of `node` (for reports).
  [[nodiscard]] int node_devices(int node) const;

  /// Effective *solo* DRAM bandwidth of a device, bytes per device cycle:
  /// its private channel capped by what its node budget can feed it when
  /// it streams alone — min(private, floor(budget * kRefClockMhz /
  /// clock)). <= 0 = infinite (the device never streams). This is the
  /// closed-form roofline bandwidth an uncontended dispatch is priced at.
  [[nodiscard]] i64 solo_bw(std::size_t device) const;

  /// Hops from the ingress node to the device's node (0 = local).
  [[nodiscard]] int hop_count(std::size_t device) const;
  /// Fleet-cycle fabric cost of dispatching `fabric_bytes` (activations in
  /// + results out; weights live in the target node's DRAM and never cross
  /// the fabric) to `device`: hops * hop_latency + one link serialization.
  /// 0 for local dispatch.
  [[nodiscard]] i64 hop_cycles(std::size_t device, i64 fabric_bytes) const;

  [[nodiscard]] const DeviceChannel& channel(std::size_t device) const {
    return devices_[device];
  }

 private:
  NodeTopology topo_;
  std::vector<DeviceChannel> devices_;
  std::vector<i64> solo_bw_;  ///< per device, computed in the constructor
};

/// The dynamic fair-share DRAM arbiter (see file comment). One instance
/// per serve() run; every method is called from the serve loop only.
///
/// Stream lifecycle, keyed by the chunk's completion-calendar slot:
///   admit()    at dispatch — registers the chunk's DRAM traffic; the
///              demand bump may re-price other in-flight chunks.
///   resolve()  at harvest — supplies the compute leg, files and returns
///              the chunk's completion cycle (max(compute, transfer) +
///              hop latency).
///   advance()  at every time step — applies fluid progress up to `now`,
///              drains finished transfers, re-prices survivors whose
///              fair share grew.
///   release()  at retire — drops the stream's bookkeeping.
class BandwidthArbiter {
 public:
  /// A filed completion whose cycle moved because its node's demand
  /// changed. The serve loop re-files it under a bumped calendar version.
  struct Reprice {
    std::size_t slot = 0;
    i64 completion_cycle = 0;
  };

  /// What admit() tells the dispatch site (probe/report fodder).
  struct AdmitInfo {
    i64 demand = 0;        ///< concurrent streams on the node, incl. this
    bool contended = false;  ///< demand >= 2 (a slowdown instant)
    i64 hop_cycles = 0;    ///< fabric latency this dispatch pays
  };

  /// Test hook: one active stream's allocated rate as an exact rational
  /// (bytes per fleet cycle). The conservation test sums these per node.
  struct StreamView {
    std::size_t slot = 0;
    int node = -1;
    i64 rate_num = 0;
    i64 rate_den = 1;
    i64 remaining_bytes = 0;
  };

  /// Per-node drained totals for ServeReport.
  struct NodeLedger {
    i64 bytes_drained = 0;        ///< DRAM bytes served by the node
    i64 transfer_cycles = 0;      ///< realized transfer-leg fleet cycles
    /// The same streams priced at their *private* channel rate — the
    /// denominator of the reported slowdown column.
    i64 transfer_cycles_private = 0;
    i64 contended_dispatches = 0;  ///< admits that saw demand >= 2
    i64 demand_peak = 0;
  };

  explicit BandwidthArbiter(const FabricModel* fabric);

  [[nodiscard]] bool enabled() const { return fabric_->enabled(); }

  /// Concurrent in-flight transfer streams on the device's node (0 when
  /// the node is unlimited). What congestion-aware routing adds 1 to.
  [[nodiscard]] i64 demand(std::size_t device) const;
  [[nodiscard]] i64 node_active(int node) const;
  [[nodiscard]] i64 node_inflight_bytes(int node) const;

  /// Earliest cycle at which some node's rates change on their own (the
  /// first projected transfer finish among nodes with >= 2 active
  /// streams); -1 when no such event is pending. A serve-loop event
  /// source, like arrivals and the completion calendar.
  [[nodiscard]] i64 next_event() const { return next_event_; }

  void advance(i64 now, std::vector<Reprice>& repriced);
  AdmitInfo admit(std::size_t device, std::size_t slot, i64 now,
                  i64 dram_bytes, i64 fabric_bytes,
                  std::vector<Reprice>& repriced);
  i64 resolve(std::size_t slot, i64 compute_fleet_cycles);
  void release(std::size_t slot, i64 now);

  [[nodiscard]] std::vector<StreamView> active_streams() const;
  [[nodiscard]] const std::vector<NodeLedger>& ledgers() const {
    return ledgers_;
  }

 private:
  struct Stream {
    bool in_use = false;
    bool active = false;  ///< transfer not yet fully drained
    bool fluid = false;   ///< has shared its node at least once
    std::size_t device = 0;
    int node = -1;
    i64 dispatch_cycle = 0;
    i64 dram_total = 0;
    i64 remaining = 0;     ///< bytes not yet drained
    i64 last_update = 0;   ///< cycle `remaining` was advanced to
    i64 solo_transfer_fleet = 0;     ///< closed-form leg at solo_bw
    i64 private_transfer_fleet = 0;  ///< same leg at the private rate
    i64 transfer_finish = -1;  ///< projected (fluid) or fixed (solo) finish
    i64 hop_cycles = 0;
    i64 compute_done = -1;  ///< dispatch + compute leg; -1 until resolve()
    i64 completion = -1;    ///< filed completion; -1 until resolve()
  };
  struct Node {
    i64 budget = 0;  ///< <= 0 unlimited
    std::vector<std::size_t> active;  ///< slots draining on this node
    i64 inflight_bytes = 0;
    i64 next_finish = -1;  ///< earliest projected finish when >= 2 active
  };

  /// Bytes a stream delivers over `elapsed` cycles at demand `k`:
  /// min(floor(elapsed * budget / k), floor(elapsed * private_rate)) — the
  /// fluid fair share capped by the device's own channel.
  [[nodiscard]] i64 delivered_bytes(const Stream& s, i64 k, i64 elapsed) const;
  /// Smallest elapsed-cycle count that delivers `remaining` at demand `k`.
  [[nodiscard]] i64 finish_delta(const Stream& s, i64 k) const;
  /// Applies progress on one node up to `now`, drains finished streams,
  /// and re-prices survivors when membership changed.
  void advance_node(int node, i64 now, std::vector<Reprice>& repriced);
  void reproject(Node& node, i64 now, std::vector<Reprice>& repriced);
  void record_transfer_done(Stream& s, i64 finish);
  void refresh_next_event();

  const FabricModel* fabric_;
  std::vector<Stream> streams_;  ///< indexed by completion-calendar slot
  std::vector<Node> nodes_;
  std::vector<NodeLedger> ledgers_;
  i64 next_event_ = -1;
};

}  // namespace axon::serve
