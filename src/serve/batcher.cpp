#include "serve/batcher.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace axon::serve {

DynamicBatcher::DynamicBatcher(BatchPolicy policy) : policy_(policy) {
  AXON_CHECK(policy_.max_batch >= 1, "max_batch must be >= 1");
  AXON_CHECK(policy_.max_wait_cycles >= 0, "max_wait_cycles must be >= 0");
}

void DynamicBatcher::close_group(Group&& group, i64 ready_cycle) {
  Batch b;
  b.gemm = group.members.front().gemm;
  b.gemm.M = 0;
  for (const auto& r : group.members) b.gemm.M += r.gemm.M;
  b.requests = std::move(group.members);
  b.ready_cycle = ready_cycle;
  ready_.push_back(std::move(b));
}

void DynamicBatcher::admit(Request r, i64 now) {
  AXON_CHECK(r.gemm.valid(), "request GEMM invalid: ", r.gemm);
  AXON_CHECK(now >= r.arrival_cycle, "admit before arrival");
  const Key key{r.gemm.K, r.gemm.N};
  Group& group = open_[key];
  if (group.members.empty()) group.oldest_admit = now;
  group.members.push_back(std::move(r));
  if (static_cast<int>(group.members.size()) >= policy_.max_batch) {
    close_group(std::move(group), now);
    open_.erase(key);
  }
}

std::vector<Batch> DynamicBatcher::pop_ready(i64 now) {
  for (auto it = open_.begin(); it != open_.end();) {
    const i64 deadline = it->second.oldest_admit + policy_.max_wait_cycles;
    if (deadline <= now) {
      close_group(std::move(it->second), deadline);
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  std::vector<Batch> out(std::make_move_iterator(ready_.begin()),
                         std::make_move_iterator(ready_.end()));
  ready_.clear();
  std::sort(out.begin(), out.end(), [](const Batch& a, const Batch& b) {
    if (a.ready_cycle != b.ready_cycle) return a.ready_cycle < b.ready_cycle;
    return a.requests.front().id < b.requests.front().id;
  });
  return out;
}

std::vector<Batch> DynamicBatcher::flush(i64 now) {
  for (auto& [key, group] : open_) {
    close_group(std::move(group), now);
  }
  open_.clear();
  return pop_ready(now);
}

i64 DynamicBatcher::next_timeout() const {
  i64 earliest = -1;
  for (const auto& [key, group] : open_) {
    const i64 deadline = group.oldest_admit + policy_.max_wait_cycles;
    if (earliest < 0 || deadline < earliest) earliest = deadline;
  }
  return earliest;
}

std::size_t DynamicBatcher::open_requests() const {
  std::size_t n = 0;
  for (const auto& [key, group] : open_) n += group.members.size();
  return n;
}

}  // namespace axon::serve
