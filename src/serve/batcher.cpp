#include "serve/batcher.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace axon::serve {

DynamicBatcher::DynamicBatcher(BatchPolicy policy) : policy_(policy) {
  AXON_CHECK(policy_.max_batch >= 1, "max_batch must be >= 1");
  AXON_CHECK(policy_.max_wait_cycles >= 0, "max_wait_cycles must be >= 0");
}

namespace {

/// Folds one member into the scheduler-visible aggregates. The single
/// implementation shared by batch closes, continuous-admission joins, and
/// open-group maintenance — these must never disagree on scheduling keys.
void tighten_aggregates(const Request& r, i64& earliest_deadline,
                        int& top_priority) {
  if (r.has_deadline() &&
      (earliest_deadline < 0 || r.deadline_cycle < earliest_deadline)) {
    earliest_deadline = r.deadline_cycle;
  }
  top_priority = std::min(top_priority, r.priority);
}

}  // namespace

void Batch::absorb(const Request& r, std::uint32_t row) {
  AXON_CHECK(!members.empty(), "absorb into an empty batch");
  AXON_CHECK(m_executed == 0,
             "absorb into a partially executed batch (m_executed=", m_executed,
             " of M=", gemm.M, ")");
  AXON_CHECK(r.gemm.K == gemm.K && r.gemm.N == gemm.N,
             "absorb requires matching (K, N)");
  AXON_CHECK(r.stage_class == stage_class,
             "absorb requires matching stage class");
  gemm.M += r.gemm.M;
  tighten_aggregates(r, earliest_deadline, top_priority);
  members.push_back({r.id, row, r.stage});
}

Batch DynamicBatcher::close_group(const Key& key, Group&& group,
                                  i64 ready_cycle) {
  // The group folded its aggregates in per admit through the same
  // tighten_aggregates path continuous-admission joins use, so closing is
  // a straight transfer — no member walk, members carry no shape to walk.
  Batch b;
  b.open_cycle = group.oldest_admit;
  b.gemm = {group.merged_m, std::get<0>(key), std::get<1>(key)};
  b.stage_class = std::get<2>(key);
  b.earliest_deadline = group.earliest_deadline;
  b.top_priority = group.top_priority;
  b.members = std::move(group.members);
  b.ready_cycle = ready_cycle;
  return b;
}

void DynamicBatcher::admit(const Request& r, i64 now, std::uint32_t row) {
  AXON_CHECK(r.gemm.valid(), "request GEMM invalid: ", r.gemm);
  AXON_CHECK(now >= r.arrival_cycle, "admit before arrival");
  const Key key{r.gemm.K, r.gemm.N, r.stage_class};
  Group& group = open_[key];
  if (group.members.empty()) {
    group.oldest_admit = now;
    group.merged_m = 0;
    group.earliest_deadline = -1;
    group.top_priority = r.priority;
    // One calendar entry per group instance, filed at birth; closing the
    // group by any path just leaves it to go stale.
    timeouts_.push({now + policy_.max_wait_cycles, key, now});
  }
  group.merged_m += r.gemm.M;
  tighten_aggregates(r, group.earliest_deadline, group.top_priority);
  group.members.push_back({r.id, row, r.stage});
  if (static_cast<int>(group.members.size()) >= policy_.max_batch) {
    ready_.push_back(close_group(key, std::move(group), now));
    open_.erase(key);
  }
}

void DynamicBatcher::prune_timeouts() const {
  while (!timeouts_.empty()) {
    const Timeout& t = timeouts_.top();
    const auto it = open_.find(t.key);
    if (it != open_.end() && it->second.oldest_admit == t.oldest_admit) {
      return;  // live group instance — the top is valid
    }
    timeouts_.pop();  // the group this entry was filed for already closed
  }
}

std::vector<Batch> DynamicBatcher::pop_ready(i64 now) {
  // Close every open group whose deadline has passed. The calendar hands
  // them over oldest-deadline-first; each closes at its own deadline, and
  // the output sort below canonicalizes the order, so this matches the
  // seed's full-map sweep batch for batch.
  for (;;) {
    prune_timeouts();
    if (timeouts_.empty() || timeouts_.top().deadline > now) break;
    const Timeout t = timeouts_.top();
    timeouts_.pop();
    const auto it = open_.find(t.key);
    AXON_CHECK(it != open_.end(), "pruned timeout for a closed group");
    ready_.push_back(close_group(t.key, std::move(it->second), t.deadline));
    open_.erase(it);
  }
  std::vector<Batch> out(std::make_move_iterator(ready_.begin()),
                         std::make_move_iterator(ready_.end()));
  ready_.clear();
  std::sort(out.begin(), out.end(), [](const Batch& a, const Batch& b) {
    if (a.ready_cycle != b.ready_cycle) return a.ready_cycle < b.ready_cycle;
    return a.members.front().id < b.members.front().id;
  });
  return out;
}

std::vector<Batch> DynamicBatcher::flush(i64 now) {
  for (auto& [key, group] : open_) {
    ready_.push_back(close_group(key, std::move(group), now));
  }
  open_.clear();
  return pop_ready(now);
}

std::vector<DynamicBatcher::OpenGroupView> DynamicBatcher::open_views()
    const {
  std::vector<OpenGroupView> views;
  views.reserve(open_.size());
  for (const auto& [key, group] : open_) {
    OpenGroupView v;
    v.K = std::get<0>(key);
    v.N = std::get<1>(key);
    v.cls = std::get<2>(key);
    v.merged_m = group.merged_m;
    v.oldest_admit = group.oldest_admit;
    v.earliest_deadline = group.earliest_deadline;
    v.top_priority = group.top_priority;
    v.size = static_cast<int>(group.members.size());
    views.push_back(v);
  }
  return views;
}

Batch DynamicBatcher::close_open(i64 K, i64 N, StageClass cls, i64 now) {
  const auto it = open_.find(Key{K, N, cls});
  AXON_CHECK(it != open_.end(), "close_open(): no open group for (", K, ", ",
             N, ", ", to_string(cls), ")");
  Batch b = close_group(it->first, std::move(it->second), now);
  open_.erase(it);
  return b;
}

i64 DynamicBatcher::next_timeout() const {
  prune_timeouts();
  return timeouts_.empty() ? -1 : timeouts_.top().deadline;
}

std::size_t DynamicBatcher::open_requests() const {
  std::size_t n = 0;
  for (const auto& [key, group] : open_) n += group.members.size();
  return n;
}

}  // namespace axon::serve
