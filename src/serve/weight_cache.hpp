// Inference serving: per-accelerator weight cache. Dynamic batching keys
// batches by (K, N) weight identity, and the roofline charges every
// dispatch a full K*N weight stream from DRAM. Real devices keep recently
// used weight matrices in on-package memory, so a device that just served
// a (K, N) workload serves the next same-weight batch without the stream —
// the term that makes decode traffic transfer-bound in the first place.
//
// This is a byte-capacity LRU over (K, N) footprints. The pool touches the
// cache of the routed device at dispatch time (the moment weights would
// stream), in the single-threaded serve loop — cache state is a pure
// function of the dispatch sequence, so the determinism contract across
// worker-thread counts is untouched. Cost-aware routing reads contains()
// when pricing a (batch, device) pair, which is how weight affinity falls
// out of the cost model for free.
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <utility>

#include "common/types.hpp"

namespace axon::serve {

class WeightCache {
 public:
  /// `capacity_bytes <= 0` disables the cache: every touch misses and no
  /// hit/miss statistics accumulate.
  explicit WeightCache(i64 capacity_bytes);

  /// Records a dispatch that streams the (K, N) weight matrix. Returns
  /// true on a hit (weights resident; recency refreshed) and false on a
  /// miss (the entry is inserted, evicting least-recently-used entries
  /// until it fits; a footprint larger than the whole cache is never
  /// inserted but still counts as a miss).
  bool touch(i64 K, i64 N);

  /// Whether the (K, N) weights are resident right now — the routing-time
  /// query; does not change recency or statistics.
  [[nodiscard]] bool contains(i64 K, i64 N) const;

  /// Weight-matrix footprint charged against capacity: K*N elements at the
  /// model datatype width.
  static i64 footprint_bytes(i64 K, i64 N);

  [[nodiscard]] bool enabled() const { return capacity_bytes_ > 0; }
  [[nodiscard]] i64 capacity_bytes() const { return capacity_bytes_; }
  [[nodiscard]] i64 used_bytes() const { return used_bytes_; }
  [[nodiscard]] std::size_t entries() const { return index_.size(); }
  [[nodiscard]] i64 hits() const { return hits_; }
  [[nodiscard]] i64 misses() const { return misses_; }
  /// Entries displaced to make room — the cache-churn figure the
  /// observability layer reports per device (high evictions with a low hit
  /// rate means the working set simply does not fit).
  [[nodiscard]] i64 evictions() const { return evictions_; }

 private:
  struct Entry {
    i64 K = 0;
    i64 N = 0;
    i64 bytes = 0;
  };
  using Key = std::pair<i64, i64>;

  i64 capacity_bytes_ = 0;
  i64 used_bytes_ = 0;
  i64 hits_ = 0;
  i64 misses_ = 0;
  i64 evictions_ = 0;
  std::list<Entry> lru_;  ///< front = most recently used
  std::map<Key, std::list<Entry>::iterator> index_;
};

}  // namespace axon::serve
