#include "serve/contention.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace axon::serve {

namespace {

using i128 = __int128;

/// floor(a * b / d) without i64 overflow in the product.
i64 mul_div_floor(i64 a, i64 b, i64 d) {
  const i128 v = static_cast<i128>(a) * b / d;
  AXON_CHECK(v <= static_cast<i128>(std::numeric_limits<i64>::max()),
             "contention arithmetic overflows i64");
  return static_cast<i64>(v);
}

/// ceil(a * b / d) without i64 overflow in the product.
i64 mul_div_ceil(i64 a, i64 b, i64 d) {
  const i128 v = (static_cast<i128>(a) * b + d - 1) / d;
  AXON_CHECK(v <= static_cast<i128>(std::numeric_limits<i64>::max()),
             "contention arithmetic overflows i64");
  return static_cast<i64>(v);
}

}  // namespace

i64 to_fleet_cycles(i64 device_cycles, int clock_mhz) {
  AXON_CHECK(device_cycles >= 0, "negative device cycles: ", device_cycles);
  AXON_CHECK(clock_mhz > 0, "clock must be positive: ", clock_mhz);
  // Widened ceil-div: the i64 multiply wraps at ~9.2e15 device cycles
  // (multi-Mcycle chunks on a slow clock get there), silently producing a
  // negative timeline. The 128-bit intermediate cannot wrap; only a result
  // that genuinely exceeds i64 fails, loudly.
  const i128 scaled = static_cast<i128>(device_cycles) * kRefClockMhz;
  const i128 fleet = (scaled + clock_mhz - 1) / clock_mhz;
  AXON_CHECK(fleet <= static_cast<i128>(std::numeric_limits<i64>::max()),
             "fleet-cycle conversion overflows i64: ", device_cycles,
             " device cycles at ", clock_mhz, " MHz");
  return static_cast<i64>(fleet);
}

int NodeTopology::num_nodes() const {
  int max_node = -1;
  for (const int n : device_node) max_node = std::max(max_node, n);
  return max_node + 1;
}

FabricModel::FabricModel(NodeTopology topo,
                         const std::vector<DeviceChannel>& devices)
    : topo_(std::move(topo)), devices_(devices) {
  if (!topo_.enabled()) return;
  AXON_CHECK(topo_.device_node.size() == devices_.size(),
             "topology maps ", topo_.device_node.size(),
             " devices but the fleet has ", devices_.size());
  const int nodes = topo_.num_nodes();
  for (const int n : topo_.device_node) {
    AXON_CHECK(n >= 0, "negative node id in topology");
  }
  AXON_CHECK(topo_.node_bw_bytes_per_cycle.empty() ||
                 static_cast<int>(topo_.node_bw_bytes_per_cycle.size()) ==
                     nodes,
             "node_bw_bytes_per_cycle must be empty or one entry per node");
  if (!topo_.hops.empty()) {
    AXON_CHECK(static_cast<int>(topo_.hops.size()) == nodes,
               "hop matrix must be num_nodes x num_nodes");
    for (const auto& row : topo_.hops) {
      AXON_CHECK(static_cast<int>(row.size()) == nodes,
                 "hop matrix must be square");
      for (const int h : row) AXON_CHECK(h >= 0, "negative hop count");
    }
  }
  AXON_CHECK(topo_.hop_latency_cycles >= 0, "negative hop latency");
  AXON_CHECK(topo_.ingress_node >= 0 && topo_.ingress_node < nodes,
             "ingress node out of range: ", topo_.ingress_node);

  solo_bw_.resize(devices_.size(), 0);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const DeviceChannel& ch = devices_[i];
    AXON_CHECK(ch.clock_mhz > 0, "fleet member ", i,
               " needs a positive clock");
    const i64 budget = node_budget(topo_.device_node[i]);
    if (ch.dram_bytes_per_cycle <= 0) {
      // Infinite private channel: the device never streams, so its node
      // budget cannot slow it (the pre-PR dram <= 0 semantics are kept).
      solo_bw_[i] = 0;
      continue;
    }
    if (budget <= 0) {
      solo_bw_[i] = ch.dram_bytes_per_cycle;
      continue;
    }
    // The node can feed the device at most budget bytes per fleet cycle =
    // floor(budget * kRefClockMhz / clock) bytes per device cycle.
    const i64 cap = mul_div_floor(budget, kRefClockMhz, ch.clock_mhz);
    AXON_CHECK(cap >= 1, "node budget ", budget,
               " bytes/fleet-cycle floors to zero bytes/device-cycle at ",
               ch.clock_mhz, " MHz — budget too small to be meaningful");
    solo_bw_[i] = std::min(ch.dram_bytes_per_cycle, cap);
  }
}

int FabricModel::node_of(std::size_t device) const {
  AXON_CHECK(device < topo_.device_node.size(), "device index out of range");
  return topo_.device_node[device];
}

i64 FabricModel::node_budget(int node) const {
  if (topo_.node_bw_bytes_per_cycle.empty()) return 0;
  AXON_CHECK(node >= 0 &&
                 node < static_cast<int>(topo_.node_bw_bytes_per_cycle.size()),
             "node id out of range");
  return topo_.node_bw_bytes_per_cycle[static_cast<std::size_t>(node)];
}

int FabricModel::node_devices(int node) const {
  int count = 0;
  for (const int n : topo_.device_node) count += (n == node) ? 1 : 0;
  return count;
}

i64 FabricModel::solo_bw(std::size_t device) const {
  AXON_CHECK(device < solo_bw_.size(), "device index out of range");
  return solo_bw_[device];
}

int FabricModel::hop_count(std::size_t device) const {
  if (topo_.hops.empty()) return 0;
  const int node = node_of(device);
  return topo_.hops[static_cast<std::size_t>(topo_.ingress_node)]
                   [static_cast<std::size_t>(node)];
}

i64 FabricModel::hop_cycles(std::size_t device, i64 fabric_bytes) const {
  const int hops = hop_count(device);
  if (hops == 0) return 0;
  i64 cycles = static_cast<i64>(hops) * topo_.hop_latency_cycles;
  if (topo_.link_bytes_per_cycle > 0 && fabric_bytes > 0) {
    // Cut-through: serialization onto the fabric is paid once, not per hop.
    cycles += ceil_div(fabric_bytes, topo_.link_bytes_per_cycle);
  }
  return cycles;
}

BandwidthArbiter::BandwidthArbiter(const FabricModel* fabric)
    : fabric_(fabric) {
  AXON_CHECK(fabric_ != nullptr, "arbiter needs a fabric model");
  if (!fabric_->enabled()) return;
  nodes_.resize(static_cast<std::size_t>(fabric_->num_nodes()));
  ledgers_.resize(nodes_.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    nodes_[n].budget = fabric_->node_budget(static_cast<int>(n));
  }
}

i64 BandwidthArbiter::demand(std::size_t device) const {
  if (!enabled()) return 0;
  const int node = fabric_->node_of(device);
  if (nodes_[static_cast<std::size_t>(node)].budget <= 0) return 0;
  return node_active(node);
}

i64 BandwidthArbiter::node_active(int node) const {
  AXON_CHECK(node >= 0 && node < static_cast<int>(nodes_.size()),
             "node id out of range");
  return static_cast<i64>(nodes_[static_cast<std::size_t>(node)].active.size());
}

i64 BandwidthArbiter::node_inflight_bytes(int node) const {
  AXON_CHECK(node >= 0 && node < static_cast<int>(nodes_.size()),
             "node id out of range");
  return nodes_[static_cast<std::size_t>(node)].inflight_bytes;
}

i64 BandwidthArbiter::delivered_bytes(const Stream& s, i64 k,
                                      i64 elapsed) const {
  const Node& node = nodes_[static_cast<std::size_t>(s.node)];
  const DeviceChannel& ch = fabric_->channel(s.device);
  // Fluid fair share capped by the private channel, both floored: with k
  // streams the node grants floor(elapsed * budget / k) and the device's
  // own channel moves floor(elapsed * private * clock / kRefClockMhz).
  const i64 share = mul_div_floor(elapsed, node.budget, k);
  const i64 channel = mul_div_floor(
      elapsed, ch.dram_bytes_per_cycle * ch.clock_mhz, kRefClockMhz);
  return std::min(share, channel);
}

i64 BandwidthArbiter::finish_delta(const Stream& s, i64 k) const {
  const Node& node = nodes_[static_cast<std::size_t>(s.node)];
  const DeviceChannel& ch = fabric_->channel(s.device);
  // Smallest elapsed with min(floor(e*B/k), floor(e*p)) >= remaining:
  // the max of the two per-cap ceil projections.
  const i64 by_share = mul_div_ceil(s.remaining, k, node.budget);
  const i64 by_channel = mul_div_ceil(
      s.remaining, kRefClockMhz, ch.dram_bytes_per_cycle * ch.clock_mhz);
  return std::max(by_share, by_channel);
}

void BandwidthArbiter::record_transfer_done(Stream& s, i64 finish) {
  s.transfer_finish = finish;
  NodeLedger& ledger = ledgers_[static_cast<std::size_t>(s.node)];
  ledger.transfer_cycles += finish - s.dispatch_cycle;
  ledger.transfer_cycles_private += s.private_transfer_fleet;
}

void BandwidthArbiter::reproject(Node& node, i64 now,
                                 std::vector<Reprice>& repriced) {
  const i64 k = static_cast<i64>(node.active.size());
  for (const std::size_t slot : node.active) {
    Stream& s = streams_[slot];
    s.fluid = true;
    s.transfer_finish = now + finish_delta(s, k);
    if (s.completion >= 0) {
      const i64 completion =
          std::max(s.compute_done, s.transfer_finish) + s.hop_cycles;
      if (completion != s.completion) {
        s.completion = completion;
        repriced.push_back({slot, completion});
      }
    }
  }
  node.next_finish = -1;
  if (node.active.size() >= 2) {
    for (const std::size_t slot : node.active) {
      const i64 f = streams_[slot].transfer_finish;
      if (node.next_finish < 0 || f < node.next_finish) node.next_finish = f;
    }
  }
}

void BandwidthArbiter::advance_node(int node_id, i64 now,
                                    std::vector<Reprice>& repriced) {
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  if (node.active.empty()) return;
  NodeLedger& ledger = ledgers_[static_cast<std::size_t>(node_id)];
  // Rates were constant since the last event on this node (membership only
  // changes at events, and with >= 2 streams the earliest projected finish
  // is itself an event), so one floor-delivery step per stream is exact.
  const i64 k = static_cast<i64>(node.active.size());
  bool drained_any = false;
  for (std::size_t i = 0; i < node.active.size();) {
    const std::size_t slot = node.active[i];
    Stream& s = streams_[slot];
    const i64 elapsed = now - s.last_update;
    if (elapsed > 0) {
      const i64 delivered =
          std::min(s.remaining, delivered_bytes(s, k, elapsed));
      s.remaining -= delivered;
      node.inflight_bytes -= delivered;
      ledger.bytes_drained += delivered;
      s.last_update = now;
    }
    if (s.remaining == 0) {
      // Finished strictly within the window only when it ran solo (with
      // k >= 2 the loop stops at the earliest projected finish, which is
      // `now`); the projected finish is exact either way.
      record_transfer_done(s, std::min(s.transfer_finish, now));
      s.active = false;
      node.active.erase(node.active.begin() +
                        static_cast<std::ptrdiff_t>(i));
      drained_any = true;
      continue;
    }
    ++i;
  }
  if (drained_any && !node.active.empty()) {
    // Membership shrank: survivors speed up, and their filed completions
    // move earlier — the re-pricing half of the contention contract.
    reproject(node, now, repriced);
  } else if (node.active.size() < 2) {
    node.next_finish = -1;
  }
}

void BandwidthArbiter::refresh_next_event() {
  next_event_ = -1;
  for (const Node& node : nodes_) {
    if (node.next_finish < 0) continue;
    if (next_event_ < 0 || node.next_finish < next_event_) {
      next_event_ = node.next_finish;
    }
  }
}

void BandwidthArbiter::advance(i64 now, std::vector<Reprice>& repriced) {
  if (!enabled()) return;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    advance_node(static_cast<int>(n), now, repriced);
  }
  refresh_next_event();
}

BandwidthArbiter::AdmitInfo BandwidthArbiter::admit(
    std::size_t device, std::size_t slot, i64 now, i64 dram_bytes,
    i64 fabric_bytes, std::vector<Reprice>& repriced) {
  AXON_CHECK(enabled(), "admit() on a disabled arbiter");
  AXON_CHECK(dram_bytes >= 0 && fabric_bytes >= 0, "negative traffic bytes");
  if (slot >= streams_.size()) streams_.resize(slot + 1);
  Stream& s = streams_[slot];
  AXON_CHECK(!s.in_use, "completion slot already carries a stream");

  const int node_id = fabric_->node_of(device);
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  NodeLedger& ledger = ledgers_[static_cast<std::size_t>(node_id)];
  // Bring the node current before demand is counted (idempotent: the serve
  // loop advances every node at each time step already).
  advance_node(node_id, now, repriced);

  const DeviceChannel& ch = fabric_->channel(device);
  const i64 solo_bw = fabric_->solo_bw(device);

  s = Stream{};
  s.in_use = true;
  s.device = device;
  s.node = node_id;
  s.dispatch_cycle = now;
  s.dram_total = dram_bytes;
  s.remaining = dram_bytes;
  s.last_update = now;
  s.hop_cycles = fabric_->hop_cycles(device, fabric_bytes);
  s.private_transfer_fleet =
      ch.dram_bytes_per_cycle > 0
          ? to_fleet_cycles(ceil_div(dram_bytes, ch.dram_bytes_per_cycle),
                            ch.clock_mhz)
          : 0;
  s.solo_transfer_fleet =
      solo_bw > 0 ? to_fleet_cycles(ceil_div(dram_bytes, solo_bw), ch.clock_mhz)
                  : 0;
  s.transfer_finish = now + s.solo_transfer_fleet;

  AdmitInfo info;
  info.hop_cycles = s.hop_cycles;

  if (dram_bytes == 0 || solo_bw <= 0 || node.budget <= 0) {
    // Nothing to arbitrate: no traffic, an infinite private channel, or an
    // unlimited node. Closed-form solo price; never joins the active set,
    // never contributes demand. Ledger it at admit so per-node byte totals
    // stay honest even on unlimited nodes.
    ledger.bytes_drained += dram_bytes;
    ledger.transfer_cycles += s.solo_transfer_fleet;
    ledger.transfer_cycles_private += s.private_transfer_fleet;
    ledger.demand_peak = std::max(ledger.demand_peak, i64{1});
    return info;
  }

  node.active.push_back(slot);
  s.active = true;
  node.inflight_bytes += dram_bytes;
  const i64 k = static_cast<i64>(node.active.size());
  info.demand = k;
  info.contended = k >= 2;
  ledger.demand_peak = std::max(ledger.demand_peak, k);
  if (k == 1) {
    // Uncontended: keep the closed-form roofline price (this is the path
    // that makes single-member nodes reproduce pre-PR records exactly).
    // Converted to fluid only if a second stream ever joins.
    node.next_finish = -1;
    return info;
  }
  ++ledger.contended_dispatches;
  // Demand changed: everyone on the node — the newcomer and every
  // incumbent, closed-form or fluid — re-projects at the new fair share.
  reproject(node, now, repriced);
  refresh_next_event();
  return info;
}

i64 BandwidthArbiter::resolve(std::size_t slot, i64 compute_fleet_cycles) {
  AXON_CHECK(enabled(), "resolve() on a disabled arbiter");
  AXON_CHECK(slot < streams_.size() && streams_[slot].in_use,
             "resolve() on an unknown stream");
  Stream& s = streams_[slot];
  AXON_CHECK(s.completion < 0, "stream already resolved");
  s.compute_done = s.dispatch_cycle + compute_fleet_cycles;
  s.completion = std::max(s.compute_done, s.transfer_finish) + s.hop_cycles;
  return s.completion;
}

void BandwidthArbiter::release(std::size_t slot, i64 now) {
  if (!enabled()) return;
  AXON_CHECK(slot < streams_.size() && streams_[slot].in_use,
             "release() on an unknown stream");
  Stream& s = streams_[slot];
  if (s.active) {
    // A stream's transfer always drains by its filed completion (the
    // completion is max(compute, transfer-finish) and advance() runs at
    // every time step), so an active stream here means the bookkeeping
    // broke — fail loudly rather than leak demand.
    AXON_CHECK(false, "retiring a stream whose transfer never drained");
  }
  (void)now;
  s = Stream{};
}

std::vector<BandwidthArbiter::StreamView> BandwidthArbiter::active_streams()
    const {
  std::vector<StreamView> views;
  if (!enabled()) return views;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const Node& node = nodes_[n];
    const i64 k = static_cast<i64>(node.active.size());
    for (const std::size_t slot : node.active) {
      const Stream& s = streams_[slot];
      const DeviceChannel& ch = fabric_->channel(s.device);
      StreamView v;
      v.slot = slot;
      v.node = static_cast<int>(n);
      v.remaining_bytes = s.remaining;
      // Allocated rate = min(budget / k, private channel rate), as an
      // exact rational in bytes per fleet cycle. Compare by
      // cross-multiplication: budget/k vs private*clock/kRefClockMhz.
      const i128 share = static_cast<i128>(node.budget) * kRefClockMhz;
      const i128 channel =
          static_cast<i128>(ch.dram_bytes_per_cycle) * ch.clock_mhz * k;
      if (share <= channel) {
        v.rate_num = node.budget;
        v.rate_den = k;
      } else {
        v.rate_num = ch.dram_bytes_per_cycle * ch.clock_mhz;
        v.rate_den = kRefClockMhz;
      }
      views.push_back(v);
    }
  }
  return views;
}

}  // namespace axon::serve
