// Named event counters shared by the simulators (MACs issued, MACs gated,
// SRAM reads, neighbour forwards, ...) plus an exact-sample percentile
// histogram for the serving-layer latency distributions. Cheap to
// increment, easy to dump.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace axon {

class Stats {
 public:
  void add(const std::string& name, std::int64_t delta = 1) {
    counters_[name] += delta;
  }

  [[nodiscard]] std::int64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return counters_.count(name) != 0;
  }

  void clear() { counters_.clear(); }

  [[nodiscard]] const std::map<std::string, std::int64_t>& all() const {
    return counters_;
  }

  /// Merge another Stats into this one (used to combine per-tile runs).
  void merge(const Stats& other);

  /// Human-readable multi-line dump, sorted by name.
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::int64_t> counters_;
};

/// Exact-sample latency/size histogram. Stores every sample and answers
/// nearest-rank percentile queries; sorting is deferred until the first
/// query so add() stays O(1). Sized for serving traces (thousands to
/// millions of samples), not per-cycle events.
class Histogram {
 public:
  void add(std::int64_t v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  /// Pre-sizes sample storage — serving reports know the record count
  /// before filling histograms, and million-sample traces should not pay
  /// realloc-and-copy churn on the way up.
  void reserve(std::size_t n) { samples_.reserve(n); }

  void merge(const Histogram& other);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Smallest / largest sample; 0 on an empty histogram.
  [[nodiscard]] std::int64_t min() const;
  [[nodiscard]] std::int64_t max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] std::int64_t sum() const;

  /// Nearest-rank percentile: the smallest sample such that at least p% of
  /// all samples are <= it. p must be in (0, 100]; throws CheckError when
  /// the histogram is empty.
  [[nodiscard]] std::int64_t percentile(double p) const;

  /// percentile(), except an empty histogram yields `fallback` instead of
  /// throwing — for report paths that must stay well-formed on zero-request
  /// traces (per-workload breakdowns routinely have empty slices).
  [[nodiscard]] std::int64_t percentile_or(double p,
                                           std::int64_t fallback = 0) const;

  /// "n=... min=... p50=... p95=... p99=... max=..." one-liner.
  [[nodiscard]] std::string summary() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<std::int64_t> samples_;
  mutable bool sorted_ = true;
};

}  // namespace axon
