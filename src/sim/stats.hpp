// Named event counters shared by the simulators (MACs issued, MACs gated,
// SRAM reads, neighbour forwards, ...). Cheap to increment, easy to dump.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace axon {

class Stats {
 public:
  void add(const std::string& name, std::int64_t delta = 1) {
    counters_[name] += delta;
  }

  [[nodiscard]] std::int64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return counters_.count(name) != 0;
  }

  void clear() { counters_.clear(); }

  [[nodiscard]] const std::map<std::string, std::int64_t>& all() const {
    return counters_;
  }

  /// Merge another Stats into this one (used to combine per-tile runs).
  void merge(const Stats& other);

  /// Human-readable multi-line dump, sorted by name.
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::int64_t> counters_;
};

}  // namespace axon
