#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/check.hpp"

namespace axon {

void Stats::merge(const Stats& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
}

std::string Stats::to_string() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << "\n";
  }
  return os.str();
}

void Histogram::merge(const Histogram& other) {
  if (other.samples_.empty()) return;
  if (&other == this) {
    // Self-merge doubles the samples; copy first so the insert's source
    // iterators don't dangle when the vector reallocates.
    const std::vector<std::int64_t> copy = samples_;
    samples_.insert(samples_.end(), copy.begin(), copy.end());
  } else {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }
  sorted_ = false;
}

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

std::int64_t Histogram::min() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return samples_.front();
}

std::int64_t Histogram::max() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return samples_.back();
}

std::int64_t Histogram::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), std::int64_t{0});
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  return static_cast<double>(sum()) / static_cast<double>(samples_.size());
}

std::int64_t Histogram::percentile(double p) const {
  AXON_CHECK(!samples_.empty(), "percentile() on empty histogram");
  AXON_CHECK(p > 0.0 && p <= 100.0, "percentile p out of (0, 100]: ", p);
  ensure_sorted();
  const auto n = static_cast<double>(samples_.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

std::int64_t Histogram::percentile_or(double p, std::int64_t fallback) const {
  return samples_.empty() ? fallback : percentile(p);
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os << "n=" << count();
  if (!empty()) {
    os << " min=" << min() << " p50=" << percentile(50)
       << " p95=" << percentile(95) << " p99=" << percentile(99)
       << " max=" << max();
  }
  return os.str();
}

}  // namespace axon
