#include "sim/stats.hpp"

#include <sstream>

namespace axon {

void Stats::merge(const Stats& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
}

std::string Stats::to_string() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << "\n";
  }
  return os.str();
}

}  // namespace axon
