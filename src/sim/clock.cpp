#include "sim/clock.hpp"

// Header-only logic; this TU anchors the vtable for Ticked.

namespace axon {

// Intentionally empty.

}  // namespace axon
