// Two-phase synchronous cycle engine. Components implement Ticked; each
// cycle the engine calls compute() on every component (reads current
// register state, produces next state) and then commit() (latches next
// state). This models edge-triggered flip-flop semantics without needing a
// global event queue — exactly what a systolic array wants.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace axon {

using Cycle = std::int64_t;

/// A synchronous component. compute() must not observe other components'
/// *next* state; commit() must only latch.
class Ticked {
 public:
  virtual ~Ticked() = default;
  virtual void compute(Cycle cycle) = 0;
  virtual void commit(Cycle cycle) = 0;
};

/// Drives a set of components through lock-step cycles.
class Clock {
 public:
  /// Registers a component; the pointer must outlive the Clock.
  void attach(Ticked* component) {
    AXON_CHECK(component != nullptr, "attach(nullptr)");
    components_.push_back(component);
  }

  /// Advances one cycle: all compute() then all commit().
  void tick() {
    for (auto* c : components_) c->compute(now_);
    for (auto* c : components_) c->commit(now_);
    ++now_;
  }

  /// Advances n cycles.
  void run(Cycle n) {
    AXON_CHECK(n >= 0, "negative cycle count");
    for (Cycle i = 0; i < n; ++i) tick();
  }

  [[nodiscard]] Cycle now() const { return now_; }

 private:
  std::vector<Ticked*> components_;
  Cycle now_ = 0;
};

/// A one-cycle-delay register: write() during compute, value visible after
/// commit. The workhorse of the PE pipeline latches.
template <typename T>
class Reg {
 public:
  explicit Reg(T initial = T{}) : current_(initial), next_(initial) {}

  [[nodiscard]] const T& get() const { return current_; }
  void set(const T& v) { next_ = v; }
  void commit() { current_ = next_; }
  /// Reset both phases (used between tiles).
  void reset(const T& v = T{}) { current_ = next_ = v; }

 private:
  T current_;
  T next_;
};

}  // namespace axon
