#include "memory/traffic.hpp"

#include <ostream>

namespace axon {

std::ostream& operator<<(std::ostream& os, const Traffic& t) {
  return os << "Traffic(ifmap=" << t.ifmap_bytes
            << "B, filter=" << t.filter_bytes << "B, ofmap=" << t.ofmap_bytes
            << "B, total=" << t.total() << "B)";
}

}  // namespace axon
