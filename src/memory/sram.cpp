#include "memory/sram.hpp"

namespace axon {

SramBuffer::SramBuffer(std::string name, i64 capacity_words, Stats* stats)
    : name_(std::move(name)), capacity_words_(capacity_words), stats_(stats) {
  AXON_CHECK(capacity_words_ > 0, "SRAM capacity must be positive");
}

void SramBuffer::load(const std::vector<float>& words) {
  AXON_CHECK(static_cast<i64>(words.size()) <= capacity_words_,
             "SRAM '", name_, "' overflow: ", words.size(), " > ",
             capacity_words_);
  data_ = words;
}

float SramBuffer::read(i64 addr) {
  AXON_CHECK(addr >= 0 && addr < size(), "SRAM '", name_, "' read OOB addr ",
             addr, " size ", size());
  ++reads_;
  if (stats_ != nullptr) stats_->add("sram." + name_ + ".reads");
  return data_[static_cast<std::size_t>(addr)];
}

void SramBuffer::write(i64 addr, float value) {
  AXON_CHECK(addr >= 0 && addr < size(), "SRAM '", name_, "' write OOB addr ",
             addr, " size ", size());
  ++writes_;
  if (stats_ != nullptr) stats_->add("sram." + name_ + ".writes");
  data_[static_cast<std::size_t>(addr)] = value;
}

void SramBuffer::reset_counters() {
  reads_ = 0;
  writes_ = 0;
}

}  // namespace axon
