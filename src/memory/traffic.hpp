// Byte-level traffic accounting shared by the analytical memory models and
// the energy experiments.
#pragma once

#include <iosfwd>

#include "common/types.hpp"

namespace axon {

/// Datatype width used by the paper's implementation (FP16).
inline constexpr i64 kBytesPerElement = 2;

/// DRAM traffic breakdown for one layer / one GEMM, in bytes.
struct Traffic {
  i64 ifmap_bytes = 0;
  i64 filter_bytes = 0;
  i64 ofmap_bytes = 0;

  [[nodiscard]] i64 total() const {
    return ifmap_bytes + filter_bytes + ofmap_bytes;
  }

  Traffic& operator+=(const Traffic& other) {
    ifmap_bytes += other.ifmap_bytes;
    filter_bytes += other.filter_bytes;
    ofmap_bytes += other.ofmap_bytes;
    return *this;
  }

  friend Traffic operator+(Traffic a, const Traffic& b) { return a += b; }
  friend bool operator==(const Traffic& a, const Traffic& b) {
    return a.ifmap_bytes == b.ifmap_bytes && a.filter_bytes == b.filter_bytes &&
           a.ofmap_bytes == b.ofmap_bytes;
  }
  friend bool operator!=(const Traffic& a, const Traffic& b) {
    return !(a == b);
  }
};

std::ostream& operator<<(std::ostream& os, const Traffic& t);

/// Converts element counts to bytes at the configured datatype width.
constexpr i64 elems_to_bytes(i64 elems) { return elems * kBytesPerElement; }

}  // namespace axon
