#include "memory/dram.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace axon {

DramModel::DramModel(DramConfig config) : config_(config) {
  AXON_CHECK(config_.bandwidth_bytes_per_sec > 0, "bandwidth must be positive");
  AXON_CHECK(config_.energy_pj_per_byte >= 0, "energy must be non-negative");
  AXON_CHECK(config_.accelerator_freq_hz > 0, "frequency must be positive");
}

i64 DramModel::transfer_cycles(i64 bytes) const {
  AXON_CHECK(bytes >= 0, "negative byte count");
  const double seconds =
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec;
  return static_cast<i64>(std::ceil(seconds * config_.accelerator_freq_hz));
}

double DramModel::energy_pj(i64 bytes) const {
  AXON_CHECK(bytes >= 0, "negative byte count");
  return static_cast<double>(bytes) * config_.energy_pj_per_byte;
}

double DramModel::energy_mj(i64 bytes) const {
  return energy_pj(bytes) * 1e-9;  // 1 mJ = 1e9 pJ
}

i64 DramModel::overlapped_cycles(i64 compute_cycles, i64 bytes) const {
  AXON_CHECK(compute_cycles >= 0, "negative compute cycles");
  return std::max(compute_cycles, transfer_cycles(bytes));
}

}  // namespace axon
