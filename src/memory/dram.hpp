// Off-chip DRAM model matching the paper's evaluation setup (§5.2.1):
// 32-bit-wide LPDDR3 at 800 MHz, 6.4 GB/s peak bandwidth, 120 pJ/byte
// (DRAMPower). The model is a bandwidth/energy abstraction, not a
// bank-timing simulator — exactly the abstraction level the paper uses.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace axon {

struct DramConfig {
  double bandwidth_bytes_per_sec = 6.4e9;  ///< LPDDR3 x32 @ 800 MHz DDR
  double energy_pj_per_byte = 120.0;       ///< from DRAMPower [6]
  double accelerator_freq_hz = 1.0e9;      ///< core clock used to convert
                                           ///< bytes -> core cycles
};

class DramModel {
 public:
  explicit DramModel(DramConfig config = {});

  [[nodiscard]] const DramConfig& config() const { return config_; }

  /// Core cycles needed to transfer `bytes` at peak bandwidth.
  [[nodiscard]] i64 transfer_cycles(i64 bytes) const;

  /// Energy in pJ / mJ for a given byte count.
  [[nodiscard]] double energy_pj(i64 bytes) const;
  [[nodiscard]] double energy_mj(i64 bytes) const;

  /// Roofline combination: a phase that needs `compute_cycles` of array time
  /// and moves `bytes` of DRAM traffic (double-buffered, overlapped) takes
  /// max(compute, transfer) cycles.
  [[nodiscard]] i64 overlapped_cycles(i64 compute_cycles, i64 bytes) const;

 private:
  DramConfig config_;
};

}  // namespace axon
