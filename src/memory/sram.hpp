// On-chip scratchpad model. The simulators stream operands out of
// SramBuffers; every read/write is counted so the im2col experiments can
// compare SRAM traffic with and without the on-chip reuse chain.
#pragma once

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/stats.hpp"

namespace axon {

/// Word-addressed single-port scratchpad holding float words. Capacity is
/// tracked in words; exceeding it is a hard error (the caller must tile).
class SramBuffer {
 public:
  SramBuffer(std::string name, i64 capacity_words, Stats* stats = nullptr);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] i64 capacity_words() const { return capacity_words_; }
  [[nodiscard]] i64 size() const { return static_cast<i64>(data_.size()); }

  /// Replaces the buffer contents (models a DRAM fill; counted separately).
  void load(const std::vector<float>& words);

  /// Counted word read.
  [[nodiscard]] float read(i64 addr);

  /// Counted word write.
  void write(i64 addr, float value);

  [[nodiscard]] i64 reads() const { return reads_; }
  [[nodiscard]] i64 writes() const { return writes_; }
  void reset_counters();

 private:
  std::string name_;
  i64 capacity_words_;
  Stats* stats_;
  std::vector<float> data_;
  i64 reads_ = 0;
  i64 writes_ = 0;
};

}  // namespace axon
