// Observability, layer 0: the probe. AcceleratorPool::serve is a
// single-threaded discrete-event loop over a deterministic timeline; a
// PoolProbe is a passive observer of that loop — every callback fires from
// the serve loop itself (never from a worker thread), in event order, with
// simulated-cycle timestamps. Because probes only *read* the timeline,
// attaching one can never change simulated cycles, and because the loop is
// single-threaded, probe output is bit-identical across worker-thread
// counts — the property serve_trace_test pins down byte-for-byte.
//
// Zero overhead when disabled: the pool keeps a plain vector of probe
// pointers and every emission site is guarded by an empty() check, so a
// pool with no probes pays one predictable branch per event and no virtual
// dispatch — the null sink inlines away. Probes are attached before
// serve() and never from inside it.
//
// This header also hosts the serve-loop self-profiler: wall-clock (NOT
// simulated-cycle) accounting of where the loop itself spends host time
// (admit/pick/route/dispatch/harvest/retire), for finding the next
// serve-core bottleneck. Wall time is inherently nondeterministic, so the
// profile rides in ServeReport next to wall_seconds and is published as
// informational bench metrics only — it can never gate.
#pragma once

#include <array>
#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "serve/batcher.hpp"
#include "serve/request.hpp"

namespace axon::serve {
struct RequestRecord;  // report.hpp includes this header; break the cycle
}  // namespace axon::serve

namespace axon::obs {

/// One dispatch leaving the serve loop for a device. `batch` outlives the
/// callback only — probes copy what they keep.
struct DispatchInfo {
  int device = -1;
  i64 now = 0;                    ///< dispatch cycle
  const serve::Batch* batch = nullptr;
  GemmShape chunk;                ///< rows this dispatch covers
  int chunk_ordinal = 0;          ///< 0 = first chunk of its batch
  bool final_chunk = true;
  bool weights_resident = false;  ///< weight-cache hit at dispatch
  i64 cache_used_bytes = 0;       ///< routed device's cache occupancy after
  // Contention fields (serve/contention.hpp); defaults when the pool runs
  // without a NodeTopology.
  int node = -1;          ///< routed device's memory node; -1 = no topology
  i64 node_demand = 0;    ///< concurrent streams on that node incl. this one
  bool contended = false; ///< node_demand >= 2 — this dispatch slowed others
  i64 hop_cycles = 0;     ///< fabric latency this dispatch pays (0 = local)
};

/// Per-memory-node contention sample, emitted with the loop counters for
/// every node when the pool runs with a NodeTopology: in-flight transfer
/// streams and their undrained bytes after this event's dispatches
/// settled. Deterministic like everything else on the probe.
struct NodeSample {
  i64 now = 0;
  int node = -1;
  i64 active_streams = 0;
  i64 inflight_bytes = 0;
};

/// One chunk retiring from the completion calendar.
struct RetireInfo {
  int device = -1;
  i64 dispatch_cycle = 0;
  i64 completion_cycle = 0;
  const serve::Batch* batch = nullptr;
  i64 chunk_m = 0;
  bool final_chunk = true;
};

/// Scheduler-state counters sampled once per serve-loop iteration (after
/// dispatching, before the time advance). All deterministic.
struct LoopCounters {
  i64 now = 0;
  i64 ready_batches = 0;    ///< closed batches waiting for a device
  i64 index_entries = 0;    ///< ready-queue index size incl. lazy residue
  i64 partial_batches = 0;  ///< waiting batches already partially executed
  i64 open_groups = 0;      ///< batcher groups still forming
  i64 open_requests = 0;    ///< requests inside those groups
  i64 busy_devices = 0;
};

/// Passive observer of the serve loop. Default implementations are no-ops
/// so probes override only what they consume. Called single-threaded, in
/// deterministic event order.
class PoolProbe {
 public:
  virtual ~PoolProbe() = default;

  /// Once per serve(): fleet labels (index = device id in later events),
  /// workload names (index = the WorkloadId requests carry — probes render
  /// interned ids through this table), and the trace size.
  virtual void on_serve_begin(const std::vector<std::string>& devices,
                              const std::vector<std::string>& workloads,
                              std::size_t num_requests) {
    (void)devices;
    (void)workloads;
    (void)num_requests;
  }
  /// A request entered the system (before batching or joining).
  virtual void on_enqueue(const serve::Request& r, i64 now) {
    (void)r;
    (void)now;
  }
  /// A late arrival joined a closed-but-undispatched batch (absorb); `b`
  /// already contains the request.
  virtual void on_join(const serve::Batch& b, i64 request_id, i64 now) {
    (void)b;
    (void)request_id;
    (void)now;
  }
  /// A batch closed (max_batch, timeout, flush, or continuous-admission
  /// close). b.open_cycle..now is the formation window.
  virtual void on_batch_formed(const serve::Batch& b, i64 now) {
    (void)b;
    (void)now;
  }
  /// A dispatch jumped ahead of a partially executed batch still waiting
  /// in the ready queue — a realized tile-granular preemption.
  virtual void on_preemption(i64 now) { (void)now; }
  virtual void on_dispatch(const DispatchInfo& info) { (void)info; }
  /// A chunk retired; for !final_chunk the remainder re-enters the ready
  /// queue at `info.completion_cycle` (the preemption window opens).
  virtual void on_chunk_retire(const RetireInfo& info) { (void)info; }
  /// A finished request's record, immediately before it is filed.
  virtual void on_request_done(const serve::RequestRecord& rec) {
    (void)rec;
  }
  virtual void on_loop_counters(const LoopCounters& c) { (void)c; }
  /// One per enabled memory node per loop iteration, right after
  /// on_loop_counters. Never fires without a NodeTopology.
  virtual void on_node_sample(const NodeSample& s) { (void)s; }
};

// ---- serve-loop self-profiler ------------------------------------------

/// The serve loop's phases, in loop order. kAdmit covers arrival pops,
/// joins, and batch closes; kPick the ready-vs-open-group argmin; kRoute
/// the device choice; kDispatch chunk sizing, cache touch, and worker
/// submission; kHarvest the future sync; kRetire completion processing
/// (including record filing).
enum class ServePhase {
  kAdmit,
  kPick,
  kRoute,
  kDispatch,
  kHarvest,
  kRetire,
};
inline constexpr std::size_t kNumServePhases = 6;

inline const char* to_string(ServePhase p) {
  switch (p) {
    case ServePhase::kAdmit:
      return "admit";
    case ServePhase::kPick:
      return "pick";
    case ServePhase::kRoute:
      return "route";
    case ServePhase::kDispatch:
      return "dispatch";
    case ServePhase::kHarvest:
      return "harvest";
    case ServePhase::kRetire:
      return "retire";
  }
  return "?";
}

/// Accumulated wall time per phase. Host-clock numbers: informational
/// only, never part of the deterministic timeline.
struct PhaseProfile {
  struct Entry {
    double seconds = 0.0;
    i64 calls = 0;
  };
  bool enabled = false;
  std::array<Entry, kNumServePhases> phases{};

  [[nodiscard]] double total_seconds() const {
    double t = 0.0;
    for (const Entry& e : phases) t += e.seconds;
    return t;
  }

  /// "phase  seconds  share%  calls" multi-line dump.
  [[nodiscard]] std::string summary() const {
    std::ostringstream os;
    const double total = total_seconds();
    os << "serve-loop self-profile (wall time, informational):\n";
    for (std::size_t i = 0; i < kNumServePhases; ++i) {
      const Entry& e = phases[i];
      const double share = total > 0.0 ? 100.0 * e.seconds / total : 0.0;
      os << "  " << to_string(static_cast<ServePhase>(i)) << ": "
         << e.seconds << " s (" << share << "%, " << e.calls << " calls)\n";
    }
    return os.str();
  }
};

/// Scoped wall-clock accounting: `auto s = prof.time(ServePhase::kPick);`
/// adds the scope's elapsed time to the phase. Disabled profilers read no
/// clocks at all — the Scope constructor sees a null profiler and both
/// clock calls are skipped, so the default-off cost is one branch per
/// scope.
class PhaseProfiler {
 public:
  explicit PhaseProfiler(bool enabled) { profile_.enabled = enabled; }

  class Scope {
   public:
    Scope(PhaseProfiler* prof, ServePhase phase) : prof_(prof), phase_(phase) {
      if (prof_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    ~Scope() {
      if (prof_ == nullptr) return;
      PhaseProfile::Entry& e =
          prof_->profile_.phases[static_cast<std::size_t>(phase_)];
      e.seconds += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
      ++e.calls;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseProfiler* prof_;
    ServePhase phase_;
    std::chrono::steady_clock::time_point start_;
  };

  [[nodiscard]] Scope time(ServePhase phase) {
    return Scope(profile_.enabled ? this : nullptr, phase);
  }

  [[nodiscard]] const PhaseProfile& profile() const { return profile_; }

 private:
  friend class Scope;
  PhaseProfile profile_;
};

}  // namespace axon::obs
