#include "obs/trace.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "serve/report.hpp"

namespace axon::obs {

namespace {

// Process ids of the four track groups (see trace.hpp header comment).
constexpr int kDevicesPid = 0;
constexpr int kSchedPid = 1;
constexpr int kClassesPid = 2;
constexpr int kCountersPid = 3;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';  // labels are code-chosen; control chars have no business
    } else {
      out += c;
    }
  }
  return out;
}

std::string metadata(int pid, i64 tid, const char* what,
                     const std::string& name) {
  std::ostringstream os;
  os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"name\":\"" << what << "\",\"args\":{\"name\":\""
     << json_escape(name) << "\"}}";
  return os.str();
}

/// Stable identity of a batch across its whole life: the id of its first
/// member (joins append, chunking never reorders members).
i64 batch_id(const serve::Batch& b) { return b.members.front().id; }

}  // namespace

void TraceSink::emit(const std::string& event) {
  if (!events_.empty()) events_ += ",\n";
  events_ += event;
  ++num_events_;
}

void TraceSink::ensure_class_track(int priority) {
  if (!named_classes_.insert(priority).second) return;
  emit(metadata(kClassesPid, priority, "thread_name",
                "class " + std::to_string(priority)));
}

void TraceSink::on_serve_begin(const std::vector<std::string>& devices,
                               const std::vector<std::string>& workloads,
                               std::size_t num_requests) {
  AXON_CHECK(!started_, "TraceSink records a single serve() run");
  started_ = true;
  devices_ = devices;
  workloads_.reserve(workloads.size());
  for (const std::string& w : workloads) workloads_.push_back(json_escape(w));
  device_span_cycles_.assign(devices.size(), 0);
  // ~200 bytes per event, several events per request: pre-size the buffer
  // so big traces do not pay doubling churn.
  events_.reserve(num_requests * 512 + 4096);
  emit(metadata(kDevicesPid, 0, "process_name", "devices"));
  emit(metadata(kSchedPid, 0, "process_name", "scheduler"));
  emit(metadata(kClassesPid, 0, "process_name", "classes"));
  emit(metadata(kCountersPid, 0, "process_name", "counters"));
  for (std::size_t i = 0; i < devices.size(); ++i) {
    emit(metadata(kDevicesPid, static_cast<i64>(i), "thread_name",
                  devices[i]));
  }
}

void TraceSink::on_enqueue(const serve::Request& r, i64 now) {
  ensure_class_track(r.priority);
  std::ostringstream os;
  os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kClassesPid
     << ",\"tid\":" << r.priority << ",\"ts\":" << now
     << ",\"cat\":\"req\",\"name\":\"enqueue r" << r.id
     << "\",\"args\":{\"workload\":\"" << workloads_[r.workload]
     << "\",\"m\":" << r.gemm.M << ",\"deadline\":" << r.deadline_cycle
     << "}}";
  emit(os.str());
}

void TraceSink::on_join(const serve::Batch& b, i64 request_id, i64 now) {
  ensure_class_track(b.top_priority);
  std::ostringstream os;
  os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kClassesPid
     << ",\"tid\":" << b.top_priority << ",\"ts\":" << now
     << ",\"cat\":\"req\",\"name\":\"join r" << request_id
     << "\",\"args\":{\"batch\":" << batch_id(b) << ",\"size\":" << b.size()
     << "}}";
  emit(os.str());
}

void TraceSink::on_batch_formed(const serve::Batch& b, i64 now) {
  (void)now;
  // Formation window as an async span: the open timestamp lies in the past
  // (first admit), so a synchronous "X" here would break per-track ts
  // monotonicity — "b"/"e" pairs matched by cat+id carry it instead.
  const i64 id = batch_id(b);
  std::ostringstream os;
  os << "{\"ph\":\"b\",\"pid\":" << kSchedPid << ",\"tid\":0,\"ts\":"
     << b.open_cycle << ",\"cat\":\"form\",\"id\":" << id
     << ",\"name\":\"form b" << id << "\",\"args\":{\"size\":" << b.size()
     << ",\"m\":" << b.gemm.M << ",\"K\":" << b.gemm.K
     << ",\"N\":" << b.gemm.N << ",\"class\":" << b.top_priority << "}}";
  emit(os.str());
  std::ostringstream end;
  end << "{\"ph\":\"e\",\"pid\":" << kSchedPid << ",\"tid\":0,\"ts\":"
      << b.ready_cycle << ",\"cat\":\"form\",\"id\":" << id
      << ",\"name\":\"form b" << id << "\"}";
  emit(end.str());
}

void TraceSink::on_preemption(i64 now) {
  ++preemption_events_;
  std::ostringstream os;
  os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kSchedPid
     << ",\"tid\":0,\"ts\":" << now << ",\"cat\":\"sched\","
     << "\"name\":\"preempt\"}";
  emit(os.str());
}

void TraceSink::on_dispatch(const DispatchInfo& info) {
  const i64 id = batch_id(*info.batch);
  // A re-dispatch of a partially executed batch closes its preemption-gap
  // span (opened when the previous chunk retired and the remainder went
  // back to the ready queue).
  if (info.chunk_ordinal > 0 && open_gaps_.erase(id) > 0) {
    std::ostringstream os;
    os << "{\"ph\":\"e\",\"pid\":" << kSchedPid << ",\"tid\":0,\"ts\":"
       << info.now << ",\"cat\":\"gap\",\"id\":" << id
       << ",\"name\":\"gap b" << id << "\"}";
    emit(os.str());
  }
  std::ostringstream hit;
  hit << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kDevicesPid
      << ",\"tid\":" << info.device << ",\"ts\":" << info.now
      << ",\"cat\":\"cache\",\"name\":\"wcache "
      << (info.weights_resident ? "hit" : "miss") << "\",\"args\":{\"K\":"
      << info.batch->gemm.K << ",\"N\":" << info.batch->gemm.N << "}}";
  emit(hit.str());
  std::ostringstream occ;
  occ << "{\"ph\":\"C\",\"pid\":" << kCountersPid << ",\"tid\":0,\"ts\":"
      << info.now << ",\"name\":\"wcache:"
      << json_escape(devices_[static_cast<std::size_t>(info.device)])
      << "\",\"args\":{\"bytes\":" << info.cache_used_bytes << "}}";
  emit(occ.str());
  if (info.contended) {
    // This dispatch raised its node's demand to >= 2: every in-flight
    // stream on the node just slowed down. Mark the onset on the scheduler
    // track so it reads alongside preemptions.
    std::ostringstream con;
    con << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kSchedPid
        << ",\"tid\":0,\"ts\":" << info.now << ",\"cat\":\"contend\","
        << "\"name\":\"contend n" << info.node << "\",\"args\":{\"node\":"
        << info.node << ",\"demand\":" << info.node_demand
        << ",\"hop_cycles\":" << info.hop_cycles << "}}";
    emit(con.str());
  }
}

void TraceSink::on_chunk_retire(const RetireInfo& info) {
  const i64 id = batch_id(*info.batch);
  const i64 dur = info.completion_cycle - info.dispatch_cycle;
  device_span_cycles_[static_cast<std::size_t>(info.device)] += dur;
  // chunks_run was incremented at this chunk's dispatch and the batch
  // cannot dispatch again before retiring, so this chunk's ordinal is
  // chunks_run - 1.
  const int ordinal = info.batch->chunks_run - 1;
  std::ostringstream os;
  os << "{\"ph\":\"X\",\"pid\":" << kDevicesPid << ",\"tid\":"
     << info.device << ",\"ts\":" << info.dispatch_cycle << ",\"dur\":"
     << dur << ",\"cat\":\"exec\",\"name\":\"b" << id << "/c" << ordinal
     << "\",\"args\":{\"batch\":" << id << ",\"chunk\":" << ordinal;
  // Successor-stage batches carry their stage index; stage-0 traffic omits
  // the key so single-stage traces stay byte-identical to pre-stage runs.
  if (!info.batch->members.empty() && info.batch->members.front().stage > 0) {
    os << ",\"stage\":" << info.batch->members.front().stage;
  }
  os << ",\"m\":" << info.chunk_m << ",\"size\":" << info.batch->size()
     << ",\"final\":" << (info.final_chunk ? 1 : 0) << "}}";
  emit(os.str());
  if (!info.final_chunk && open_gaps_.insert(id).second) {
    std::ostringstream gap;
    gap << "{\"ph\":\"b\",\"pid\":" << kSchedPid << ",\"tid\":0,\"ts\":"
        << info.completion_cycle << ",\"cat\":\"gap\",\"id\":" << id
        << ",\"name\":\"gap b" << id << "\",\"args\":{\"m_left\":"
        << info.batch->remaining_m() - info.chunk_m << "}}";
    emit(gap.str());
  }
}

void TraceSink::on_request_done(const serve::RequestRecord& rec) {
  if (rec.met_deadline()) return;
  ensure_class_track(rec.priority);
  std::ostringstream os;
  os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kClassesPid
     << ",\"tid\":" << rec.priority << ",\"ts\":" << rec.completion_cycle
     << ",\"cat\":\"slo\",\"name\":\"miss r" << rec.id
     << "\",\"args\":{\"over\":" << rec.miss_cycles() << "}}";
  emit(os.str());
}

void TraceSink::on_loop_counters(const LoopCounters& c) {
  std::ostringstream sched;
  sched << "{\"ph\":\"C\",\"pid\":" << kCountersPid << ",\"tid\":0,\"ts\":"
        << c.now << ",\"name\":\"sched\",\"args\":{\"ready\":"
        << c.ready_batches << ",\"partial\":" << c.partial_batches
        << ",\"open_groups\":" << c.open_groups << "}}";
  emit(sched.str());
  std::ostringstream load;
  load << "{\"ph\":\"C\",\"pid\":" << kCountersPid << ",\"tid\":0,\"ts\":"
       << c.now << ",\"name\":\"load\",\"args\":{\"busy_devices\":"
       << c.busy_devices << ",\"index_entries\":" << c.index_entries
       << ",\"open_requests\":" << c.open_requests << "}}";
  emit(load.str());
}

void TraceSink::on_node_sample(const NodeSample& s) {
  std::ostringstream os;
  os << "{\"ph\":\"C\",\"pid\":" << kCountersPid << ",\"tid\":0,\"ts\":"
     << s.now << ",\"name\":\"node" << s.node
     << ":dram\",\"args\":{\"streams\":" << s.active_streams
     << ",\"inflight_bytes\":" << s.inflight_bytes << "}}";
  emit(os.str());
}

void TraceSink::write(std::ostream& os) const {
  os << "{\"traceEvents\":[\n" << events_ << "\n]}\n";
}

std::string TraceSink::to_json() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

bool TraceSink::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write(out);
  return static_cast<bool>(out);
}

}  // namespace axon::obs
