// Observability, layer 2: the timeline. TraceSink is a PoolProbe that
// renders a serve run as Chrome trace-event JSON — load the file in
// chrome://tracing or https://ui.perfetto.dev and the whole run becomes a
// zoomable timeline. The timebase is the *simulated* fleet cycle (shown as
// microseconds by the viewers; 1 us == 1 cycle), so what you see is the
// deterministic schedule itself, not host wall time.
//
// Track layout:
//   pid 0 "devices"    one thread row per fleet member: "X" spans for every
//                      executed chunk (named b<batch>/c<ordinal>), plus
//                      weight-cache hit/miss instants at dispatch.
//   pid 1 "scheduler"  async spans: batch formation windows (cat "form",
//                      first admit -> close) and preemption gaps (cat
//                      "gap", a partially executed batch's re-queue ->
//                      next dispatch); "preempt" instants at every
//                      realized preemption.
//   pid 2 "classes"    one thread row per priority class: enqueue / join /
//                      deadline-miss instants for that class's requests.
//   pid 3 "counters"   counter tracks sampled once per serve-loop event:
//                      "sched" (ready batches, partial batches, open
//                      groups), "load" (busy devices, ready-queue index
//                      entries incl. lazy residue, open requests),
//                      "wcache:<device>" occupancy in bytes, and — when the
//                      pool runs with a NodeTopology — "node<i>:dram" per
//                      memory node (concurrent transfer streams + undrained
//                      bytes). Contended dispatches additionally drop a
//                      "contend" instant on the scheduler track so slowdown
//                      onsets are visible next to preemptions.
//
// Every emitted value is an integer from the simulated timeline and every
// event is emitted from the single-threaded serve loop in event order, so
// the rendered JSON is byte-identical across worker-thread counts —
// serve_trace_test diffs the full string 1-vs-8-threads, and CI validates
// per-track timestamp monotonicity of the "X"/"C" events (async "b"/"e"
// pairs are emitted at close time with their open timestamp, so they are
// exempt by design).
//
// The sink also keeps reconciliation totals (per-device span cycles,
// preemption-instant count) so tests can assert trace-vs-report agreement
// without parsing JSON.
#pragma once

#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/probe.hpp"

namespace axon::obs {

class TraceSink : public PoolProbe {
 public:
  TraceSink() = default;

  void on_serve_begin(const std::vector<std::string>& devices,
                      const std::vector<std::string>& workloads,
                      std::size_t num_requests) override;
  void on_enqueue(const serve::Request& r, i64 now) override;
  void on_join(const serve::Batch& b, i64 request_id, i64 now) override;
  void on_batch_formed(const serve::Batch& b, i64 now) override;
  void on_preemption(i64 now) override;
  void on_dispatch(const DispatchInfo& info) override;
  void on_chunk_retire(const RetireInfo& info) override;
  void on_request_done(const serve::RequestRecord& rec) override;
  void on_loop_counters(const LoopCounters& c) override;
  void on_node_sample(const NodeSample& s) override;

  /// The complete trace document: {"traceEvents": [...]}. Stable bytes for
  /// a given simulated timeline.
  [[nodiscard]] std::string to_json() const;
  void write(std::ostream& os) const;
  /// Writes to_json() to `path`; returns false when the file cannot be
  /// opened or written.
  bool write_file(const std::string& path) const;

  // Reconciliation totals (see header comment).
  /// Sum of executed-chunk span durations per device — must equal the
  /// report's per-accelerator busy cycles.
  [[nodiscard]] const std::vector<i64>& device_span_cycles() const {
    return device_span_cycles_;
  }
  /// "preempt" instants emitted — must equal ServeReport::preemptions.
  [[nodiscard]] i64 preemption_events() const { return preemption_events_; }
  [[nodiscard]] std::size_t num_events() const { return num_events_; }

 private:
  /// Appends one pre-rendered event object, managing the separators.
  void emit(const std::string& event);
  /// First use of a priority-class row names it lazily (classes are not
  /// known up front; event order is deterministic, so so is the naming).
  void ensure_class_track(int priority);

  bool started_ = false;
  std::vector<std::string> devices_;
  /// WorkloadId -> pre-escaped name, captured at serve begin so enqueue
  /// instants render interned ids as the original workload strings.
  std::vector<std::string> workloads_;
  std::set<int> named_classes_;
  /// Batches with an open preemption-gap async span, keyed by the batch's
  /// first request id (its stable identity).
  std::set<i64> open_gaps_;

  std::string events_;  ///< comma-joined event objects
  std::size_t num_events_ = 0;
  std::vector<i64> device_span_cycles_;
  i64 preemption_events_ = 0;
};

}  // namespace axon::obs
