// Observability, layer 1: the metrics registry. A run-scoped namespace of
// named counters, gauges, and histograms that snapshots to JSON — the
// bridge between serve-loop events and machine-readable artifacts
// (BENCH_serve.json scenario rows, --metrics-json dumps, the future
// autotuner's objective function). Registration hands back a typed handle
// so the hot path is a pointer write, never a map lookup; names are
// registered once (re-registration is an AXON_CHECK) so two subsystems can
// never silently alias a series.
//
// A disabled registry is a true null sink: handles carry a null slot and
// every operation is a no-op behind one branch; to_json() is "{}" and no
// sample storage ever grows. All snapshot values are integers (counts,
// cycles, exact-sample percentiles), so output is deterministic and
// byte-stable across platforms and worker-thread counts.
#pragma once

#include <map>
#include <ostream>
#include <string>

#include "common/types.hpp"
#include "obs/probe.hpp"
#include "sim/stats.hpp"

namespace axon::obs {

class MetricsRegistry {
 public:
  /// Monotone event count. add() with a negative delta is allowed (it is
  /// occasionally the honest accounting, e.g. cancellations) but the
  /// registry does not police monotonicity.
  class Counter {
   public:
    void add(i64 delta = 1) {
      if (v_ != nullptr) *v_ += delta;
    }
    [[nodiscard]] i64 value() const { return v_ != nullptr ? *v_ : 0; }

   private:
    friend class MetricsRegistry;
    explicit Counter(i64* v) : v_(v) {}
    i64* v_;
  };

  /// Last-write-wins instantaneous value (peak depths, final occupancy).
  class Gauge {
   public:
    void set(i64 v) {
      if (v_ != nullptr) *v_ = v;
    }
    /// set(max(current, v)) — the common peak-tracking idiom.
    void set_max(i64 v) {
      if (v_ != nullptr && v > *v_) *v_ = v;
    }
    [[nodiscard]] i64 value() const { return v_ != nullptr ? *v_ : 0; }

   private:
    friend class MetricsRegistry;
    explicit Gauge(i64* v) : v_(v) {}
    i64* v_;
  };

  /// Exact-sample distribution (sim/stats Histogram): snapshots report
  /// count/min/max/sum and nearest-rank p50/p90/p99.
  class HistogramHandle {
   public:
    void observe(i64 v) {
      if (h_ != nullptr) h_->add(v);
    }
    /// The underlying histogram, or nullptr on a disabled registry.
    [[nodiscard]] const Histogram* get() const { return h_; }

   private:
    friend class MetricsRegistry;
    explicit HistogramHandle(Histogram* h) : h_(h) {}
    Histogram* h_;
  };

  /// `enabled = false` builds the null sink described above.
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Register-once accessors. The name must be new to the registry across
  /// all three kinds — a duplicate is an AXON_CHECK, enabled or not.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  HistogramHandle histogram(const std::string& name);

  /// Snapshot readback by name (0 / nullptr when absent or disabled) —
  /// what tests and the bench JSON writer consume.
  [[nodiscard]] i64 counter_value(const std::string& name) const;
  [[nodiscard]] i64 gauge_value(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name) const;

  /// Deterministic JSON snapshot: kinds as objects, names sorted, all
  /// values integers. A disabled registry writes exactly "{}".
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

 private:
  void claim_name(const std::string& name, const char* kind);

  bool enabled_;
  std::map<std::string, const char*> kinds_;  ///< name -> registered kind
  // std::map: pointer/reference stability under later insertions is what
  // lets handles point straight at mapped values.
  std::map<std::string, i64> counters_;
  std::map<std::string, i64> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// The standard serve-loop instrumentation: a PoolProbe that folds pool
/// events into a registry under the "serve." prefix — request/join/batch/
/// chunk/preemption/requeue/deadline-miss counts, queue-depth and cache
/// peaks, and the per-request latency-breakdown histograms. Attach with
/// AcceleratorPool::add_probe; everything fires from the single-threaded
/// serve loop, so registry state is deterministic.
class MetricsProbe : public PoolProbe {
 public:
  explicit MetricsProbe(MetricsRegistry* registry);

  void on_enqueue(const serve::Request& r, i64 now) override;
  void on_join(const serve::Batch& b, i64 request_id, i64 now) override;
  void on_batch_formed(const serve::Batch& b, i64 now) override;
  void on_preemption(i64 now) override;
  void on_dispatch(const DispatchInfo& info) override;
  void on_chunk_retire(const RetireInfo& info) override;
  void on_request_done(const serve::RequestRecord& rec) override;
  void on_loop_counters(const LoopCounters& c) override;
  void on_node_sample(const NodeSample& s) override;

 private:
  /// Lazily registered per-memory-node series ("serve.node_bw_*"). Nodes
  /// are not known at probe construction (samples only fire when the pool
  /// runs with a NodeTopology), so first sight of a node registers its
  /// series — event order is deterministic, so so is registration order.
  struct NodeSeries {
    MetricsRegistry::Gauge streams_peak;
    MetricsRegistry::Gauge inflight_bytes_peak;
  };
  NodeSeries& node_series(int node);

  MetricsRegistry* registry_;
  std::map<int, NodeSeries> node_series_;
  MetricsRegistry::Counter contended_dispatches_;
  MetricsRegistry::Counter hop_dispatches_;
  MetricsRegistry::Counter hop_cycles_;
  MetricsRegistry::Counter requests_;
  MetricsRegistry::Counter joins_;
  MetricsRegistry::Counter batches_;
  MetricsRegistry::Counter chunks_;
  MetricsRegistry::Counter preemptions_;
  MetricsRegistry::Counter requeues_;
  MetricsRegistry::Counter deadline_misses_;
  MetricsRegistry::Counter wcache_hits_;
  MetricsRegistry::Counter wcache_misses_;
  MetricsRegistry::Gauge queue_depth_peak_;
  MetricsRegistry::Gauge open_groups_peak_;
  MetricsRegistry::Gauge index_entries_peak_;
  MetricsRegistry::Gauge wcache_bytes_peak_;
  MetricsRegistry::Gauge makespan_cycles_;
  MetricsRegistry::HistogramHandle latency_;
  MetricsRegistry::HistogramHandle batch_wait_;
  MetricsRegistry::HistogramHandle queue_wait_;
  MetricsRegistry::HistogramHandle service_;
  MetricsRegistry::HistogramHandle preempt_blocked_;
};

}  // namespace axon::obs
