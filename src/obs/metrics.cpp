#include "obs/metrics.hpp"

#include <cstdio>
#include <sstream>

#include "common/check.hpp"
#include "serve/report.hpp"

namespace axon::obs {

void MetricsRegistry::claim_name(const std::string& name, const char* kind) {
  AXON_CHECK(!name.empty(), "metric needs a non-empty name");
  const auto [it, inserted] = kinds_.emplace(name, kind);
  AXON_CHECK(inserted, "metric '", name, "' already registered as a ",
             it->second);
}

MetricsRegistry::Counter MetricsRegistry::counter(const std::string& name) {
  claim_name(name, "counter");
  if (!enabled_) return Counter(nullptr);
  return Counter(&counters_[name]);
}

MetricsRegistry::Gauge MetricsRegistry::gauge(const std::string& name) {
  claim_name(name, "gauge");
  if (!enabled_) return Gauge(nullptr);
  return Gauge(&gauges_[name]);
}

MetricsRegistry::HistogramHandle MetricsRegistry::histogram(
    const std::string& name) {
  claim_name(name, "histogram");
  if (!enabled_) return HistogramHandle(nullptr);
  return HistogramHandle(&histograms_[name]);
}

i64 MetricsRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

i64 MetricsRegistry::gauge_value(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

namespace {

/// Minimal JSON string escape — metric names are code-chosen ASCII, but a
/// malformed artifact is worse than four lines of escaping.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void write_scalar_map(std::ostream& os, const char* key,
                      const std::map<std::string, i64>& values,
                      bool trailing_comma) {
  os << "  \"" << key << "\": {";
  bool first = true;
  for (const auto& [name, v] : values) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << v;
    first = false;
  }
  if (!first) os << "\n  ";
  os << "}" << (trailing_comma ? "," : "") << "\n";
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  if (!enabled_) {
    os << "{}";
    return;
  }
  os << "{\n";
  write_scalar_map(os, "counters", counters_, true);
  write_scalar_map(os, "gauges", gauges_, true);
  os << "  \"histograms\": {";
  bool first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": {"
       << "\"count\": " << h.count() << ", \"min\": " << h.min()
       << ", \"max\": " << h.max() << ", \"sum\": " << h.sum()
       << ", \"p50\": " << h.percentile_or(50)
       << ", \"p90\": " << h.percentile_or(90)
       << ", \"p99\": " << h.percentile_or(99) << "}";
    first = false;
  }
  if (!first) os << "\n  ";
  os << "}\n}";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

MetricsProbe::MetricsProbe(MetricsRegistry* registry)
    : registry_(registry),
      contended_dispatches_(
          registry->counter("serve.node_bw_contended_dispatches")),
      hop_dispatches_(registry->counter("serve.node_bw_hop_dispatches")),
      hop_cycles_(registry->counter("serve.node_bw_hop_cycles")),
      requests_(registry->counter("serve.requests")),
      joins_(registry->counter("serve.joins")),
      batches_(registry->counter("serve.batches")),
      chunks_(registry->counter("serve.chunks")),
      preemptions_(registry->counter("serve.preemptions")),
      requeues_(registry->counter("serve.requeues")),
      deadline_misses_(registry->counter("serve.deadline_misses")),
      wcache_hits_(registry->counter("serve.wcache_hits")),
      wcache_misses_(registry->counter("serve.wcache_misses")),
      queue_depth_peak_(registry->gauge("serve.queue_depth_peak")),
      open_groups_peak_(registry->gauge("serve.open_groups_peak")),
      index_entries_peak_(registry->gauge("serve.index_entries_peak")),
      wcache_bytes_peak_(registry->gauge("serve.wcache_bytes_peak")),
      makespan_cycles_(registry->gauge("serve.makespan_cycles")),
      latency_(registry->histogram("serve.latency_cycles")),
      batch_wait_(registry->histogram("serve.batch_wait_cycles")),
      queue_wait_(registry->histogram("serve.queue_wait_cycles")),
      service_(registry->histogram("serve.service_cycles")),
      preempt_blocked_(registry->histogram("serve.preempt_blocked_cycles")) {}

void MetricsProbe::on_enqueue(const serve::Request& r, i64 now) {
  (void)r;
  (void)now;
  requests_.add();
}

void MetricsProbe::on_join(const serve::Batch& b, i64 request_id, i64 now) {
  (void)b;
  (void)request_id;
  (void)now;
  joins_.add();
}

void MetricsProbe::on_batch_formed(const serve::Batch& b, i64 now) {
  (void)b;
  (void)now;
  batches_.add();
}

void MetricsProbe::on_preemption(i64 now) {
  (void)now;
  preemptions_.add();
}

void MetricsProbe::on_dispatch(const DispatchInfo& info) {
  chunks_.add();
  if (info.weights_resident) {
    wcache_hits_.add();
  } else {
    wcache_misses_.add();
  }
  wcache_bytes_peak_.set_max(info.cache_used_bytes);
  if (info.contended) contended_dispatches_.add();
  if (info.hop_cycles > 0) {
    hop_dispatches_.add();
    hop_cycles_.add(info.hop_cycles);
  }
}

void MetricsProbe::on_chunk_retire(const RetireInfo& info) {
  if (!info.final_chunk) requeues_.add();
}

void MetricsProbe::on_request_done(const serve::RequestRecord& rec) {
  if (!rec.met_deadline()) deadline_misses_.add();
  makespan_cycles_.set_max(rec.completion_cycle);
  latency_.observe(rec.latency_cycles());
  batch_wait_.observe(rec.batch_wait_cycles());
  queue_wait_.observe(rec.queue_wait_cycles());
  service_.observe(rec.service_cycles);
  preempt_blocked_.observe(rec.preempt_blocked_cycles());
}

void MetricsProbe::on_loop_counters(const LoopCounters& c) {
  queue_depth_peak_.set_max(c.ready_batches);
  open_groups_peak_.set_max(c.open_groups);
  index_entries_peak_.set_max(c.index_entries);
}

MetricsProbe::NodeSeries& MetricsProbe::node_series(int node) {
  const auto it = node_series_.find(node);
  if (it != node_series_.end()) return it->second;
  const std::string stem = "serve.node_bw_node" + std::to_string(node);
  return node_series_
      .emplace(node,
               NodeSeries{registry_->gauge(stem + ".streams_peak"),
                          registry_->gauge(stem + ".inflight_bytes_peak")})
      .first->second;
}

void MetricsProbe::on_node_sample(const NodeSample& s) {
  NodeSeries& series = node_series(s.node);
  series.streams_peak.set_max(s.active_streams);
  series.inflight_bytes_peak.set_max(s.inflight_bytes);
}

}  // namespace axon::obs
