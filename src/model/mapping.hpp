// Table 1 of the paper: projection of GEMM dimensions (M, K, N) onto the
// spatial (S_R, S_C) and temporal (T) dimensions of the array for each
// dataflow.
#pragma once

#include "common/types.hpp"

namespace axon {

/// Spatio-temporal projection of a GEMM.
struct SpatioTemporal {
  i64 S_R = 0;  ///< mapped along array rows
  i64 S_C = 0;  ///< mapped along array columns
  i64 T = 0;    ///< temporal dimension (MACs per PE)

  friend bool operator==(const SpatioTemporal& a, const SpatioTemporal& b) {
    return a.S_R == b.S_R && a.S_C == b.S_C && a.T == b.T;
  }
  friend bool operator!=(const SpatioTemporal& a, const SpatioTemporal& b) {
    return !(a == b);
  }
};

/// OS: (M, N, K) — WS: (K, M, N) — IS: (K, N, M).
SpatioTemporal map_gemm(const GemmShape& g, Dataflow df);

/// Inverse sanity check used by tests: S_R * S_C * T == M * K * N.
bool mapping_preserves_volume(const GemmShape& g, Dataflow df);

}  // namespace axon
