// PE utilization-rate model (paper Fig. 13): the fraction of PE-cycles that
// perform useful MACs, UR = (M*K*N) / (R*C*runtime).
#pragma once

#include "common/types.hpp"
#include "model/runtime_model.hpp"

namespace axon {

/// Utilization of a specific (arch, dataflow) scale-up run.
double utilization_rate(ArchType arch, Dataflow df, const GemmShape& g,
                        const ArrayShape& array);

/// Utilization under the best dataflow for the architecture.
double best_utilization_rate(ArchType arch, const GemmShape& g,
                             const ArrayShape& array);

/// Fig. 13 metric: percentage-point improvement of `arch` over the
/// conventional SA, both at their best dataflows:
///   100 * (UR_arch - UR_sa).
double utilization_improvement_pct(ArchType arch, const GemmShape& g,
                                   const ArrayShape& array);

}  // namespace axon
