#include "model/mapping.hpp"

#include "common/check.hpp"

namespace axon {

SpatioTemporal map_gemm(const GemmShape& g, Dataflow df) {
  AXON_CHECK(g.valid(), "map_gemm on invalid GEMM shape");
  switch (df) {
    case Dataflow::kOS: return {g.M, g.N, g.K};
    case Dataflow::kWS: return {g.K, g.M, g.N};
    case Dataflow::kIS: return {g.K, g.N, g.M};
  }
  AXON_CHECK(false, "unreachable dataflow");
  return {};
}

bool mapping_preserves_volume(const GemmShape& g, Dataflow df) {
  const SpatioTemporal st = map_gemm(g, df);
  return st.S_R * st.S_C * st.T == g.macs();
}

}  // namespace axon
