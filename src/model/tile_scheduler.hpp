// SRAM-capacity-aware tiling: decides the tile loop order for a GEMM on a
// given array, accounts DRAM refetch when an operand does not fit in its
// scratchpad, and overlaps transfer with compute (double buffering).
//
// This is the substrate behind the end-to-end runtime numbers: the
// analytical runtime models (model/runtime_model) give compute cycles; the
// scheduler adds the memory system on top, the same decomposition
// SCALE-SIM uses.
#pragma once

#include "common/types.hpp"
#include "memory/dram.hpp"
#include "memory/traffic.hpp"
#include "model/runtime_model.hpp"

namespace axon {

/// On-chip scratchpad capacities in words (FP16 elements).
struct SramConfig {
  i64 ifmap_words = 256 * 1024;   ///< operand A buffer
  i64 filter_words = 256 * 1024;  ///< operand B buffer
  i64 ofmap_words = 128 * 1024;   ///< accumulator/output buffer
  bool double_buffered = true;    ///< halves usable capacity, overlaps DRAM
};

/// Loop orders the scheduler chooses between.
enum class LoopOrder {
  kAResident,  ///< keep A tiles resident, stream B per pass (B refetched)
  kBResident,  ///< keep B tiles resident, stream A per pass (A refetched)
};

std::string to_string(LoopOrder order);

struct TilePlan {
  LoopOrder order = LoopOrder::kAResident;
  i64 tiles = 0;
  i64 a_passes = 1;  ///< times the A operand is read from DRAM
  i64 b_passes = 1;
  i64 a_dram_elems = 0;
  i64 b_dram_elems = 0;
  i64 c_dram_elems = 0;
  i64 compute_cycles = 0;   ///< pipelined-tile compute
  i64 transfer_cycles = 0;  ///< DRAM time for all traffic
  i64 total_cycles = 0;     ///< max(compute, transfer) if double buffered,
                            ///< sum otherwise

  [[nodiscard]] i64 dram_bytes() const {
    return elems_to_bytes(a_dram_elems + b_dram_elems + c_dram_elems);
  }
};

/// Plans C = A(MxK) * B(KxN) on `array` under `sram`, choosing the loop
/// order that minimizes total DRAM traffic.
TilePlan plan_gemm(ArchType arch, Dataflow df, const GemmShape& g,
                   const ArrayShape& array, const SramConfig& sram,
                   const DramModel& dram);

}  // namespace axon
