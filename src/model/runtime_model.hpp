// Analytical runtime models.
//
//  * Conventional SA: SCALE-SIM equation (1): tau = 2*S_R + S_C + T - 2,
//    tiled per equations (2)/(3).
//  * Axon (paper Table 2): the fill term R + C - 2 becomes max(R, C) - 1;
//    per tile tau = max(R, C) + R + T - 1.
//  * CMSA (substituted model, see DESIGN.md §5.2): the extra horizontal
//    datapath halves the column-fill component: tau = 2R + ceil(C/2) + T - 2.
//
// Two tiling regimes:
//  * strict   — every tile pays fill + compute + drain (equations (2)/(3)).
//  * pipelined — consecutive tiles overlap drain/fill (double-buffered
//    operands), so steady-state cost per tile is fill + T; one final drain.
//    Used for the memory-bound Fig. 14 workloads (see DESIGN.md §4).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "model/mapping.hpp"

namespace axon {

/// Fig. 6 factors: cycles for operands to reach the farthest PE.
/// f1 (conventional) = R + C - 2 ; f2 (Axon) = max(R, C) - 1.
i64 fill_latency(ArchType arch, const ArrayShape& array);

/// Per-tile runtime for a tile that occupies the full R x C array and runs
/// T temporal steps.
i64 tile_cycles(ArchType arch, const ArrayShape& array, i64 T);

/// Tile count of the scale-up mapping: ceil(S_R/R) * ceil(S_C/C).
i64 tile_count(const SpatioTemporal& st, const ArrayShape& array);

/// Result of an analytical runtime evaluation.
struct RuntimeResult {
  i64 cycles = 0;
  i64 tiles = 0;
  SpatioTemporal st;
  Dataflow dataflow = Dataflow::kOS;
  ArchType arch = ArchType::kConventionalSA;
};

/// Equation (2) (conventional) and its Axon/CMSA analogues: one monolithic
/// R x C array processes all tiles sequentially.
RuntimeResult scale_up_runtime(ArchType arch, Dataflow df, const GemmShape& g,
                               const ArrayShape& array);

/// Equation (3): P_R x P_C independent arrays split the spatial dims.
RuntimeResult scale_out_runtime(ArchType arch, Dataflow df, const GemmShape& g,
                                const ArrayShape& array, int partitions_rows,
                                int partitions_cols);

/// Pipelined-tile variant: tiles overlap drain with the next fill.
RuntimeResult pipelined_runtime(ArchType arch, Dataflow df, const GemmShape& g,
                                const ArrayShape& array);

/// Evaluates all three dataflows and returns the fastest (scale-up).
RuntimeResult best_dataflow_runtime(ArchType arch, const GemmShape& g,
                                    const ArrayShape& array);

/// Depthwise convolution lowered channel-by-channel: each of the
/// `channels` groups is an independent GEMM (1, k*k, oh*ow); runtimes add.
RuntimeResult dwconv_runtime(ArchType arch, Dataflow df, const ConvShape& conv,
                             const ArrayShape& array, bool pipelined);

/// Serving-layer cost entry point: cycles for one (possibly batched) GEMM
/// dispatch on a single array with a fixed dataflow. Dynamic batching
/// concatenates requests that share (K, N) — same weights, different
/// inputs — along M, so the batch runs as one scale-up GEMM (merged.M =
/// sum of member Ms).
///
/// The cost is a roofline: max(compute, DRAM transfer). Compute is the
/// scale-up equation; transfer streams A (M*K activations), B (K*N
/// weights, once per dispatch) and C (M*N results) at
/// `dram_bytes_per_cycle`. The weight term is why batching pays: a
/// single small-M request (e.g. one-token transformer decode, M = 1) is
/// transfer-bound on its K*N weight matrix, and M-concatenation amortizes
/// that one stream over every member. `dram_bytes_per_cycle <= 0` models
/// infinite bandwidth (compute-only, the pre-serving behaviour).
///
/// `weights_resident` models a per-accelerator weight cache (see
/// serve/weight_cache): when the device already holds the (K, N) weight
/// matrix from an earlier dispatch, the B stream drops out of the
/// transfer leg entirely and only activations and results move. A
/// cache-warm decode batch therefore costs strictly less than a cold one
/// whenever the cold batch was transfer-bound.
i64 batched_gemm_cycles(ArchType arch, Dataflow df, const GemmShape& merged,
                        const ArrayShape& array, i64 dram_bytes_per_cycle = 0,
                        bool weights_resident = false);

/// The transfer leg of that roofline on its own: cycles to stream A, B and
/// C once at `dram_bytes_per_cycle`; 0 when bandwidth is <= 0 (infinite).
/// `weights_resident` skips the B stream (weight-cache hit). Exposed so
/// execution modes that obtain compute cycles elsewhere (the
/// cycle-accurate simulator) price memory identically to the analytical
/// mode.
i64 gemm_transfer_cycles(const GemmShape& g, i64 dram_bytes_per_cycle,
                         bool weights_resident = false);

/// Chunked (divisible) batch costing: the M extent one "M-tile" of the
/// array covers under dataflow `df` — the natural quantum for splitting a
/// batched GEMM into independently dispatchable chunks without changing
/// its total tile count. M maps onto S_R for OS (quantum = array rows),
/// onto S_C for WS (quantum = array cols), and onto the temporal dimension
/// T for IS (quantum = 1; every split costs an extra per-chunk fill/drain
/// there, the honest preemption-granularity price).
i64 m_tile_extent(Dataflow df, const ArrayShape& array);

/// Splits `merged.M` into chunk extents of at most `tiles_per_chunk`
/// M-tiles each (`tiles_per_chunk <= 0` means "one chunk, do not split").
/// Every extent except possibly the last is tile-aligned, so for OS/WS the
/// summed compute cycles of the chunks equal the unchunked batch exactly —
/// the only chunking overhead is the memory side: each chunk is its own
/// dispatch and re-streams the K*N weights unless they are resident in the
/// device's weight cache by then (serve/weight_cache decides that per
/// dispatch). A chunk's cost is batched_gemm_cycles on the sliced shape
/// {extent, K, N} with that dispatch's own weights_resident verdict.
std::vector<i64> chunk_m_extents(const GemmShape& merged, Dataflow df,
                                 const ArrayShape& array, i64 tiles_per_chunk);

/// Design-space search: among all power-of-two R x C shapes with
/// R * C <= pe_budget, the shape minimizing the best-dataflow scale-up
/// runtime for the workload. Axon's max(R, C) fill term penalizes
/// elongated arrays harder than the conventional SA's R + C, so the two
/// architectures prefer different aspect ratios on skewed workloads.
struct ShapeSearchResult {
  ArrayShape shape;
  RuntimeResult runtime;
};
ShapeSearchResult best_array_shape(ArchType arch, const GemmShape& g,
                                   i64 pe_budget);

}  // namespace axon
