// Analytical runtime models.
//
//  * Conventional SA: SCALE-SIM equation (1): tau = 2*S_R + S_C + T - 2,
//    tiled per equations (2)/(3).
//  * Axon (paper Table 2): the fill term R + C - 2 becomes max(R, C) - 1;
//    per tile tau = max(R, C) + R + T - 1.
//  * CMSA (substituted model, see DESIGN.md §5.2): the extra horizontal
//    datapath halves the column-fill component: tau = 2R + ceil(C/2) + T - 2.
//
// Two tiling regimes:
//  * strict   — every tile pays fill + compute + drain (equations (2)/(3)).
//  * pipelined — consecutive tiles overlap drain/fill (double-buffered
//    operands), so steady-state cost per tile is fill + T; one final drain.
//    Used for the memory-bound Fig. 14 workloads (see DESIGN.md §4).
#pragma once

#include "common/types.hpp"
#include "model/mapping.hpp"

namespace axon {

/// Fig. 6 factors: cycles for operands to reach the farthest PE.
/// f1 (conventional) = R + C - 2 ; f2 (Axon) = max(R, C) - 1.
i64 fill_latency(ArchType arch, const ArrayShape& array);

/// Per-tile runtime for a tile that occupies the full R x C array and runs
/// T temporal steps.
i64 tile_cycles(ArchType arch, const ArrayShape& array, i64 T);

/// Tile count of the scale-up mapping: ceil(S_R/R) * ceil(S_C/C).
i64 tile_count(const SpatioTemporal& st, const ArrayShape& array);

/// Result of an analytical runtime evaluation.
struct RuntimeResult {
  i64 cycles = 0;
  i64 tiles = 0;
  SpatioTemporal st;
  Dataflow dataflow = Dataflow::kOS;
  ArchType arch = ArchType::kConventionalSA;
};

/// Equation (2) (conventional) and its Axon/CMSA analogues: one monolithic
/// R x C array processes all tiles sequentially.
RuntimeResult scale_up_runtime(ArchType arch, Dataflow df, const GemmShape& g,
                               const ArrayShape& array);

/// Equation (3): P_R x P_C independent arrays split the spatial dims.
RuntimeResult scale_out_runtime(ArchType arch, Dataflow df, const GemmShape& g,
                                const ArrayShape& array, int partitions_rows,
                                int partitions_cols);

/// Pipelined-tile variant: tiles overlap drain with the next fill.
RuntimeResult pipelined_runtime(ArchType arch, Dataflow df, const GemmShape& g,
                                const ArrayShape& array);

/// Evaluates all three dataflows and returns the fastest (scale-up).
RuntimeResult best_dataflow_runtime(ArchType arch, const GemmShape& g,
                                    const ArrayShape& array);

/// Depthwise convolution lowered channel-by-channel: each of the
/// `channels` groups is an independent GEMM (1, k*k, oh*ow); runtimes add.
RuntimeResult dwconv_runtime(ArchType arch, Dataflow df, const ConvShape& conv,
                             const ArrayShape& array, bool pipelined);

/// Design-space search: among all power-of-two R x C shapes with
/// R * C <= pe_budget, the shape minimizing the best-dataflow scale-up
/// runtime for the workload. Axon's max(R, C) fill term penalizes
/// elongated arrays harder than the conventional SA's R + C, so the two
/// architectures prefer different aspect ratios on skewed workloads.
struct ShapeSearchResult {
  ArrayShape shape;
  RuntimeResult runtime;
};
ShapeSearchResult best_array_shape(ArchType arch, const GemmShape& g,
                                   i64 pe_budget);

}  // namespace axon
