#include "model/utilization.hpp"

#include "common/check.hpp"

namespace axon {

double utilization_rate(ArchType arch, Dataflow df, const GemmShape& g,
                        const ArrayShape& array) {
  const RuntimeResult r = scale_up_runtime(arch, df, g, array);
  const double pe_cycles =
      static_cast<double>(array.num_pes()) * static_cast<double>(r.cycles);
  AXON_CHECK(pe_cycles > 0, "zero PE-cycles");
  return static_cast<double>(g.macs()) / pe_cycles;
}

double best_utilization_rate(ArchType arch, const GemmShape& g,
                             const ArrayShape& array) {
  double best = 0.0;
  for (Dataflow df : {Dataflow::kOS, Dataflow::kWS, Dataflow::kIS}) {
    best = std::max(best, utilization_rate(arch, df, g, array));
  }
  return best;
}

double utilization_improvement_pct(ArchType arch, const GemmShape& g,
                                   const ArrayShape& array) {
  const double base =
      best_utilization_rate(ArchType::kConventionalSA, g, array);
  const double ours = best_utilization_rate(arch, g, array);
  return 100.0 * (ours - base);
}

}  // namespace axon
