#include "model/runtime_model.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "model/im2col_traffic.hpp"

namespace axon {

i64 fill_latency(ArchType arch, const ArrayShape& array) {
  AXON_CHECK(array.valid(), "invalid array shape");
  const i64 r = array.rows;
  const i64 c = array.cols;
  switch (arch) {
    case ArchType::kConventionalSA:
      return r + c - 2;  // Manhattan distance to the farthest corner PE
    case ArchType::kAxon:
      return std::max(r, c) - 1;  // Chebyshev distance from the diagonal
    case ArchType::kCMSA:
      // Substituted model: the added horizontal datapath halves the
      // column component of the fill (DESIGN.md §5.2).
      return r + ceil_div(c, 2) - 2;
  }
  AXON_CHECK(false, "unreachable arch");
  return 0;
}

i64 tile_cycles(ArchType arch, const ArrayShape& array, i64 T) {
  AXON_CHECK(array.valid(), "invalid array shape");
  AXON_CHECK(T > 0, "temporal dimension must be positive");
  // fill + T multiplications + R readout, matching eq. (1): for the
  // conventional SA this is (R + C - 2) + T + R = 2R + C + T - 2.
  return fill_latency(arch, array) + T + array.rows;
}

i64 tile_count(const SpatioTemporal& st, const ArrayShape& array) {
  return ceil_div(st.S_R, array.rows) * ceil_div(st.S_C, array.cols);
}

RuntimeResult scale_up_runtime(ArchType arch, Dataflow df, const GemmShape& g,
                               const ArrayShape& array) {
  RuntimeResult out;
  out.st = map_gemm(g, df);
  out.dataflow = df;
  out.arch = arch;
  out.tiles = tile_count(out.st, array);
  out.cycles = tile_cycles(arch, array, out.st.T) * out.tiles;
  return out;
}

RuntimeResult scale_out_runtime(ArchType arch, Dataflow df, const GemmShape& g,
                                const ArrayShape& array, int partitions_rows,
                                int partitions_cols) {
  AXON_CHECK(partitions_rows > 0 && partitions_cols > 0,
             "partition counts must be positive");
  RuntimeResult out;
  out.st = map_gemm(g, df);
  out.dataflow = df;
  out.arch = arch;
  // Eq. (3): S'_R = S_R / P_R, S'_C = S_C / P_C; each partition runs its
  // share of tiles in parallel, so the critical path is the per-partition
  // tile count.
  const i64 spr = ceil_div(out.st.S_R, partitions_rows);
  const i64 spc = ceil_div(out.st.S_C, partitions_cols);
  out.tiles = ceil_div(spr, array.rows) * ceil_div(spc, array.cols);
  out.cycles = tile_cycles(arch, array, out.st.T) * out.tiles;
  return out;
}

RuntimeResult pipelined_runtime(ArchType arch, Dataflow df, const GemmShape& g,
                                const ArrayShape& array) {
  RuntimeResult out;
  out.st = map_gemm(g, df);
  out.dataflow = df;
  out.arch = arch;
  out.tiles = tile_count(out.st, array);
  // Steady state: each tile costs fill + T (its drain overlaps the next
  // tile's fill); the last tile still pays the R-cycle readout.
  const i64 per_tile = fill_latency(arch, array) + out.st.T;
  out.cycles = per_tile * out.tiles + array.rows;
  return out;
}

RuntimeResult best_dataflow_runtime(ArchType arch, const GemmShape& g,
                                    const ArrayShape& array) {
  RuntimeResult best;
  bool first = true;
  for (Dataflow df : {Dataflow::kOS, Dataflow::kWS, Dataflow::kIS}) {
    const RuntimeResult r = scale_up_runtime(arch, df, g, array);
    if (first || r.cycles < best.cycles) {
      best = r;
      first = false;
    }
  }
  return best;
}

RuntimeResult dwconv_runtime(ArchType arch, Dataflow df, const ConvShape& conv,
                             const ArrayShape& array, bool pipelined) {
  AXON_CHECK(conv.depthwise(), "dwconv_runtime expects a depthwise layer");
  // Each channel is GEMM(1, kh*kw, oh*ow); channels are serialized on the
  // array (no inter-channel reduction exists to parallelize over rows).
  GemmShape per_channel;
  per_channel.M = 1;
  per_channel.K = i64{1} * conv.kernel_h * conv.kernel_w;
  per_channel.N = i64{1} * conv.out_h() * conv.out_w();
  const RuntimeResult one = pipelined
                                ? pipelined_runtime(arch, df, per_channel,
                                                    array)
                                : scale_up_runtime(arch, df, per_channel,
                                                   array);
  RuntimeResult out = one;
  out.cycles = one.cycles * conv.in_channels;
  out.tiles = one.tiles * conv.in_channels;
  return out;
}

i64 gemm_transfer_cycles(const GemmShape& g, i64 dram_bytes_per_cycle,
                         bool weights_resident) {
  if (dram_bytes_per_cycle <= 0) return 0;
  const Traffic t = gemm_dram_traffic(g);
  const i64 bytes = weights_resident ? t.total() - t.filter_bytes : t.total();
  return ceil_div(bytes, dram_bytes_per_cycle);
}

i64 m_tile_extent(Dataflow df, const ArrayShape& array) {
  AXON_CHECK(array.valid(), "invalid array shape");
  switch (df) {
    case Dataflow::kOS:
      return array.rows;  // M -> S_R
    case Dataflow::kWS:
      return array.cols;  // M -> S_C
    case Dataflow::kIS:
      return 1;  // M -> T: no spatial tile boundary to align with
  }
  AXON_CHECK(false, "unreachable dataflow");
  return 1;
}

std::vector<i64> chunk_m_extents(const GemmShape& merged, Dataflow df,
                                 const ArrayShape& array, i64 tiles_per_chunk) {
  AXON_CHECK(merged.valid(), "chunked GEMM shape invalid: ", merged);
  if (tiles_per_chunk <= 0) return {merged.M};
  const i64 quantum = m_tile_extent(df, array);
  const i64 chunk_m = quantum * tiles_per_chunk;
  std::vector<i64> extents;
  extents.reserve(static_cast<std::size_t>(ceil_div(merged.M, chunk_m)));
  for (i64 done = 0; done < merged.M; done += chunk_m) {
    extents.push_back(std::min(chunk_m, merged.M - done));
  }
  return extents;
}

i64 batched_gemm_cycles(ArchType arch, Dataflow df, const GemmShape& merged,
                        const ArrayShape& array, i64 dram_bytes_per_cycle,
                        bool weights_resident) {
  AXON_CHECK(merged.valid(), "batched GEMM shape invalid: ", merged);
  const i64 compute = scale_up_runtime(arch, df, merged, array).cycles;
  const i64 transfer =
      gemm_transfer_cycles(merged, dram_bytes_per_cycle, weights_resident);
  return compute > transfer ? compute : transfer;
}

ShapeSearchResult best_array_shape(ArchType arch, const GemmShape& g,
                                   i64 pe_budget) {
  AXON_CHECK(pe_budget >= 1, "PE budget must be positive");
  ShapeSearchResult best;
  bool first = true;
  for (i64 rows = 1; rows <= pe_budget; rows *= 2) {
    for (i64 cols = 1; rows * cols <= pe_budget; cols *= 2) {
      const ArrayShape shape{static_cast<int>(rows), static_cast<int>(cols)};
      const RuntimeResult r = best_dataflow_runtime(arch, g, shape);
      if (first || r.cycles < best.runtime.cycles) {
        best = {shape, r};
        first = false;
      }
    }
  }
  return best;
}

}  // namespace axon
