// Closed-form traffic models for convolution lowering (paper §3.2, Fig. 11
// and the §5.2.1 energy table).
//
// Software im2col (baseline): every element of every conv window is fetched
// from the memory hierarchy — oh*ow windows of (Cin/g)*kh*kw elements each.
//
// Axon on-chip im2col: windows are streamed to the diagonal feeder PEs; a
// 2-to-1 MUX per feeder forwards elements shared between horizontally
// adjacent windows (stride < kw), so within a feeder group only the first
// window is loaded in full and each subsequent window loads just the
// kh * min(stride_w, kw) new elements per channel.
//
// These closed forms are cross-validated against the cycle-accurate
// core/Im2colFeeder in tests.
#pragma once

#include "common/types.hpp"
#include "memory/traffic.hpp"

namespace axon {

enum class Im2colMode {
  kSoftware,      ///< windows materialized by the host / fetched expanded
  kAxonOnChip,    ///< paper's MUX-based feeder reuse chain (horizontal)
  kAxonTwoLevel,  ///< extension beyond the paper: adds a per-feeder row
                  ///< buffer that also reuses the kh - stride_h IFMAP rows
                  ///< shared between vertically adjacent windows, leaving
                  ///< only newly exposed input rows to load
};

/// IFMAP elements loaded from SRAM into the array while executing one
/// convolution (all groups, one batch). `num_feeders` is the number of
/// diagonal feeder PEs, i.e. min(R, C) of the array.
i64 ifmap_sram_loads(const ConvShape& conv, Im2colMode mode, int num_feeders);

/// Fig. 11 metric: 100 * (1 - axon_loads / software_loads).
double memory_access_reduction_pct(const ConvShape& conv, int num_feeders);

/// Same metric for an arbitrary mode (used by the extension ablation).
double memory_access_reduction_pct(const ConvShape& conv, Im2colMode mode,
                                   int num_feeders);

/// Off-chip (DRAM) traffic for one conv layer, one batch, FP16 elements.
/// Software mode charges the expanded im2col IFMAP; Axon mode charges only
/// the unique IFMAP elements (the feeder regenerates windows on chip).
Traffic conv_dram_traffic(const ConvShape& conv, Im2colMode mode);

/// DRAM traffic of a plain GEMM (operands + result, FP16), used by the
/// roofline model for GEMM workloads.
Traffic gemm_dram_traffic(const GemmShape& g);

}  // namespace axon
