#include "model/tile_scheduler.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace axon {

namespace {

/// DRAM element counts for one loop-order choice. The resident operand is
/// fetched once; the streaming operand is re-fetched once per resident
/// pass unless it fits its scratchpad whole.
struct Traffic2 {
  i64 a_passes = 1;
  i64 b_passes = 1;
  i64 a_elems = 0;
  i64 b_elems = 0;
};

Traffic2 traffic_for(LoopOrder order, const GemmShape& g,
                     const SpatioTemporal& st, const ArrayShape& array,
                     const SramConfig& sram) {
  const i64 usable_a =
      sram.double_buffered ? sram.ifmap_words / 2 : sram.ifmap_words;
  const i64 usable_b =
      sram.double_buffered ? sram.filter_words / 2 : sram.filter_words;
  const i64 row_tiles = ceil_div(st.S_R, array.rows);
  const i64 col_tiles = ceil_div(st.S_C, array.cols);

  Traffic2 t;
  if (order == LoopOrder::kAResident) {
    // A tiles stay on chip across the column sweep; B streams every pass
    // over the row tiles unless it fits whole.
    t.a_passes = 1;
    t.b_passes = (g.b_elems() <= usable_b) ? 1 : row_tiles;
  } else {
    t.b_passes = 1;
    t.a_passes = (g.a_elems() <= usable_a) ? 1 : col_tiles;
  }
  t.a_elems = g.a_elems() * t.a_passes;
  t.b_elems = g.b_elems() * t.b_passes;
  return t;
}

}  // namespace

std::string to_string(LoopOrder order) {
  return order == LoopOrder::kAResident ? "A-resident" : "B-resident";
}

TilePlan plan_gemm(ArchType arch, Dataflow df, const GemmShape& g,
                   const ArrayShape& array, const SramConfig& sram,
                   const DramModel& dram) {
  AXON_CHECK(g.valid(), "invalid GEMM");
  AXON_CHECK(array.valid(), "invalid array");
  AXON_CHECK(sram.ifmap_words > 0 && sram.filter_words > 0 &&
                 sram.ofmap_words > 0,
             "scratchpads must be non-empty");

  const SpatioTemporal st = map_gemm(g, df);

  const Traffic2 a_res =
      traffic_for(LoopOrder::kAResident, g, st, array, sram);
  const Traffic2 b_res =
      traffic_for(LoopOrder::kBResident, g, st, array, sram);

  TilePlan plan;
  const bool pick_a =
      a_res.a_elems + a_res.b_elems <= b_res.a_elems + b_res.b_elems;
  const Traffic2& chosen = pick_a ? a_res : b_res;
  plan.order = pick_a ? LoopOrder::kAResident : LoopOrder::kBResident;
  plan.a_passes = chosen.a_passes;
  plan.b_passes = chosen.b_passes;
  plan.a_dram_elems = chosen.a_elems;
  plan.b_dram_elems = chosen.b_elems;
  plan.c_dram_elems = g.c_elems();

  plan.tiles = tile_count(st, array);
  plan.compute_cycles = pipelined_runtime(arch, df, g, array).cycles;
  plan.transfer_cycles = dram.transfer_cycles(plan.dram_bytes());
  plan.total_cycles =
      sram.double_buffered
          ? std::max(plan.compute_cycles, plan.transfer_cycles)
          : plan.compute_cycles + plan.transfer_cycles;
  return plan;
}

}  // namespace axon
