#include "model/im2col_traffic.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "tensor/im2col.hpp"

namespace axon {

i64 ifmap_sram_loads(const ConvShape& conv, Im2colMode mode, int num_feeders) {
  AXON_CHECK(conv.valid(), "invalid conv shape");
  AXON_CHECK(num_feeders > 0, "need at least one feeder PE");

  const i64 cg = conv.in_channels / conv.groups;
  const i64 window_elems = cg * conv.kernel_h * conv.kernel_w;
  const i64 oh = conv.out_h();
  const i64 ow = conv.out_w();

  if (mode == Im2colMode::kSoftware) {
    return oh * ow * window_elems * conv.groups;
  }

  // Axon on-chip: feeder groups never span output-row boundaries (windows in
  // different rows are not horizontally adjacent). Within a group the first
  // window loads fully; the rest load only the columns the stride slides in.
  const i64 new_per_window =
      cg * conv.kernel_h *
      std::min<i64>(conv.stride_w, conv.kernel_w);

  const i64 full_segments = ow / num_feeders;
  const i64 tail = ow % num_feeders;
  i64 per_row = 0;
  per_row += full_segments *
             (window_elems + (num_feeders - 1) * new_per_window);
  if (tail > 0) per_row += window_elems + (tail - 1) * new_per_window;

  if (mode == Im2colMode::kAxonOnChip) {
    return oh * per_row * conv.groups;
  }

  // Two-level extension: a row buffer keeps the kh - stride_h kernel rows
  // shared with the previous output row, so output rows after the first
  // load only the newly exposed min(stride_h, kh) input rows. Loads scale
  // by that row fraction; the first output row pays the full chain cost.
  AXON_CHECK(mode == Im2colMode::kAxonTwoLevel, "unhandled mode");
  const i64 new_rows = std::min<i64>(conv.stride_h, conv.kernel_h);
  const i64 later_rows_loads =
      (oh - 1) * ((per_row * new_rows) / conv.kernel_h);
  return (per_row + later_rows_loads) * conv.groups;
}

double memory_access_reduction_pct(const ConvShape& conv, Im2colMode mode,
                                   int num_feeders) {
  const i64 sw = ifmap_sram_loads(conv, Im2colMode::kSoftware, num_feeders);
  const i64 ax = ifmap_sram_loads(conv, mode, num_feeders);
  AXON_CHECK(sw > 0, "software loads must be positive");
  return 100.0 * (1.0 - static_cast<double>(ax) / static_cast<double>(sw));
}

double memory_access_reduction_pct(const ConvShape& conv, int num_feeders) {
  return memory_access_reduction_pct(conv, Im2colMode::kAxonOnChip,
                                     num_feeders);
}

Traffic conv_dram_traffic(const ConvShape& conv, Im2colMode mode) {
  AXON_CHECK(conv.valid(), "invalid conv shape");
  Traffic t;
  const i64 filter_elems = i64{1} * conv.out_channels *
                           (conv.in_channels / conv.groups) * conv.kernel_h *
                           conv.kernel_w;
  const i64 ofmap_elems =
      i64{1} * conv.out_channels * conv.out_h() * conv.out_w();

  t.filter_bytes = elems_to_bytes(filter_elems);
  t.ofmap_bytes = elems_to_bytes(ofmap_elems);
  const i64 unique = unique_ifmap_elements(conv);
  const i64 expanded = im2col_element_count(conv);
  if (mode == Im2colMode::kSoftware && expanded > unique) {
    // Software im2col (paper §3.2): the host reads the raw IFMAP, writes
    // the expanded window matrix, and the accelerator reads it back —
    // "excessive memory traffic and a need for either a large on-chip
    // memory or expensive DRAM access". Layers with no expansion (1x1,
    // stride 1) skip the materialization.
    t.ifmap_bytes = elems_to_bytes(unique + 2 * expanded);
  } else {
    t.ifmap_bytes = elems_to_bytes(unique);
  }
  return t;
}

Traffic gemm_dram_traffic(const GemmShape& g) {
  AXON_CHECK(g.valid(), "invalid GEMM shape");
  Traffic t;
  t.ifmap_bytes = elems_to_bytes(g.a_elems());
  t.filter_bytes = elems_to_bytes(g.b_elems());
  t.ofmap_bytes = elems_to_bytes(g.c_elems());
  return t;
}

}  // namespace axon
