#include "common/check.hpp"

namespace axon::detail {

void check_failed(const char* cond, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "AXON_CHECK failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace axon::detail
