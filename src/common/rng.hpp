// Deterministic random generation for tests, workload synthesis and sparsity
// injection. All randomness in the repo flows through Rng so every
// experiment is reproducible from a seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace axon {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDAB1Eu) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Uniform float in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f);

  /// Uniform double in [lo, hi) — full 53-bit mantissa draws, for
  /// distribution-sensitive consumers (e.g. exponential inter-arrival
  /// sampling) where float's ~24 bits visibly quantize the tail.
  double uniform_double(double lo = 0.0, double hi = 1.0);

  /// Standard normal.
  float normal(float mean = 0.0f, float stddev = 1.0f);

  /// True with probability p.
  bool bernoulli(double p);

  /// Small signed values in [-4, 4] that are exactly representable in FP16
  /// products; ideal for bit-exact systolic-array functional checks.
  float small_value();

  /// Vector of n small values with a given fraction of exact zeros.
  std::vector<float> sparse_values(std::size_t n, double zero_fraction);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace axon
