#include "common/fp16.hpp"

#include <cstring>

namespace axon {

namespace {
constexpr std::uint32_t kF32SignMask = 0x8000'0000u;

// C++17 stand-in for std::bit_cast (memcpy compiles to a register move).
std::uint32_t float_bits(float v) {
  std::uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

float bits_float(std::uint32_t u) {
  float v;
  std::memcpy(&v, &u, sizeof(v));
  return v;
}
}  // namespace

std::uint16_t float_to_fp16_bits(float v) {
  const std::uint32_t f = float_bits(v);
  const std::uint16_t sign =
      static_cast<std::uint16_t>((f & kF32SignMask) >> 16);
  const std::uint32_t abs = f & ~kF32SignMask;

  if (abs >= 0x7F80'0000u) {           // inf or NaN
    if (abs > 0x7F80'0000u) {          // NaN: keep a quiet payload
      return static_cast<std::uint16_t>(sign | 0x7E00u);
    }
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (abs >= 0x4780'0000u) {           // >= 65536 -> overflow to inf
    // 65504 is the max finite fp16; values in (65504, 65536) round per RNE.
    if (abs < 0x477F'E000u + 0x1000u && abs <= 0x477F'EFFFu) {
      return static_cast<std::uint16_t>(sign | 0x7BFFu);
    }
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  // Normal / subnormal path via exponent rebias.
  const int exp32 = static_cast<int>(abs >> 23);
  std::uint32_t mant = abs & 0x007F'FFFFu;
  int exp16 = exp32 - 127 + 15;

  if (exp16 >= 0x1F) {  // overflow after rounding below is handled there
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  std::uint32_t mant16;
  if (exp16 <= 0) {  // subnormal fp16 (or zero)
    if (exp16 < -10) return sign;  // rounds to zero
    mant |= 0x0080'0000u;          // restore implicit bit
    const int shift = 14 - exp16;  // bits to drop: 23-10 + (1-exp16)
    const std::uint32_t kept = mant >> shift;
    const std::uint32_t dropped = mant & ((1u << shift) - 1);
    const std::uint32_t half = 1u << (shift - 1);
    mant16 = kept;
    if (dropped > half || (dropped == half && (kept & 1u))) ++mant16;
    // mant16 may carry into the exponent field, which is exactly correct
    // (smallest normal).
    return static_cast<std::uint16_t>(sign | mant16);
  }

  // Normal: drop 13 mantissa bits with round-to-nearest-even.
  const std::uint32_t kept = mant >> 13;
  const std::uint32_t dropped = mant & 0x1FFFu;
  mant16 = kept;
  if (dropped > 0x1000u || (dropped == 0x1000u && (kept & 1u))) ++mant16;
  std::uint32_t out = (static_cast<std::uint32_t>(exp16) << 10) + mant16;
  if (out >= 0x7C00u) out = 0x7C00u;  // mantissa carry overflowed to inf
  return static_cast<std::uint16_t>(sign | out);
}

float fp16_bits_to_float(std::uint16_t bits) {
  const std::uint32_t sign = (bits & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1Fu;
  const std::uint32_t mant = bits & 0x3FFu;

  std::uint32_t f;
  if (exp == 0) {
    if (mant == 0) {
      f = sign;  // +/- 0
    } else {
      // Subnormal: normalize.
      int e = -1;
      std::uint32_t m = mant;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        ++e;
      }
      m &= 0x3FFu;
      const std::uint32_t exp32 = static_cast<std::uint32_t>(127 - 15 - e);
      f = sign | (exp32 << 23) | (m << 13);
    }
  } else if (exp == 0x1F) {
    f = sign | 0x7F80'0000u | (mant << 13);  // inf / NaN
  } else {
    f = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return bits_float(f);
}

float fp16_round(float v) { return fp16_bits_to_float(float_to_fp16_bits(v)); }

}  // namespace axon
