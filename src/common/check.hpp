// Lightweight contract checking. AXON_CHECK is always on (simulator
// correctness beats raw speed everywhere we use it); AXON_DCHECK compiles out
// in NDEBUG builds and is for per-cycle hot-path invariants.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace axon {

/// Thrown by AXON_CHECK failures; carries file:line and the failed condition.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* cond, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace axon

#define AXON_CHECK(cond, ...)                                            \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::axon::detail::check_failed(#cond, __FILE__, __LINE__,            \
                                   ::axon::detail::format_msg(__VA_ARGS__)); \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define AXON_DCHECK(cond, ...) \
  do {                         \
  } while (0)
#else
#define AXON_DCHECK(cond, ...) AXON_CHECK(cond, __VA_ARGS__)
#endif

namespace axon::detail {

inline std::string format_msg() { return {}; }

template <typename... Args>
std::string format_msg(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace axon::detail
