// Fixed-size worker pool for coarse-grained simulation jobs (whole tiles,
// partitions, or serve-layer batches). Results come back through
// std::future, so callers decide exactly when to synchronize — the serving
// simulator exploits that to keep its simulated timeline deterministic
// while the cycle-accurate work runs on however many cores are available.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace axon {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` surface at future.get().
  template <typename Fn>
  auto submit(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      AXON_CHECK(!stopping_, "submit() on a stopped ThreadPool");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace axon
