// IEEE 754 binary16 software emulation. The paper's PEs use an FP16 MAC
// (simplified FPnew); we emulate the storage format so functional tests run
// with representative numerics while the simulator computes in float.
#pragma once

#include <cstdint>

namespace axon {

/// Round a float to the nearest binary16 value (round-to-nearest-even) and
/// back to float. Overflow saturates to +/-inf like IEEE 754.
float fp16_round(float v);

/// Raw conversions, exposed for tests.
std::uint16_t float_to_fp16_bits(float v);
float fp16_bits_to_float(std::uint16_t bits);

/// Value type that stores binary16 and converts transparently.
class Fp16 {
 public:
  Fp16() = default;
  explicit Fp16(float v) : bits_(float_to_fp16_bits(v)) {}

  [[nodiscard]] float to_float() const { return fp16_bits_to_float(bits_); }
  [[nodiscard]] std::uint16_t bits() const { return bits_; }

  friend bool operator==(const Fp16& a, const Fp16& b) {
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(const Fp16& a, const Fp16& b) { return !(a == b); }

 private:
  std::uint16_t bits_ = 0;
};

}  // namespace axon
