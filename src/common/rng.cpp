#include "common/rng.hpp"

#include "common/check.hpp"

namespace axon {

int Rng::uniform_int(int lo, int hi) {
  AXON_CHECK(lo <= hi, "uniform_int range");
  std::uniform_int_distribution<int> d(lo, hi);
  return d(engine_);
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  AXON_CHECK(lo <= hi, "uniform_i64 range");
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

float Rng::uniform(float lo, float hi) {
  std::uniform_real_distribution<float> d(lo, hi);
  return d(engine_);
}

double Rng::uniform_double(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

float Rng::normal(float mean, float stddev) {
  std::normal_distribution<float> d(mean, stddev);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution d(p);
  return d(engine_);
}

float Rng::small_value() {
  return static_cast<float>(uniform_int(-4, 4));
}

std::vector<float> Rng::sparse_values(std::size_t n, double zero_fraction) {
  AXON_CHECK(zero_fraction >= 0.0 && zero_fraction <= 1.0,
             "zero_fraction must be in [0,1]");
  std::vector<float> out(n);
  for (auto& v : out) {
    if (bernoulli(zero_fraction)) {
      v = 0.0f;
    } else {
      // Never zero so the sparsity level is exactly what was asked for.
      float s = small_value();
      v = (s == 0.0f) ? 1.0f : s;
    }
  }
  return out;
}

}  // namespace axon
