// Minimal fixed-width table printer used by every bench binary to emit the
// paper's tables/figure series in a uniform, grep-friendly format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace axon {

/// Accumulates rows of string cells and prints them column-aligned.
/// Numeric helpers format with a fixed precision so bench output is stable.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(const std::string& v);
  Table& cell(const char* v);
  Table& cell(double v, int precision = 3);
  Table& cell(std::int64_t v);
  Table& cell(int v);

  /// Render with a title line and column alignment.
  void print(std::ostream& os, const std::string& title = "") const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (shared by Table and ad-hoc
/// prints in examples).
std::string fmt_double(double v, int precision = 3);

}  // namespace axon
