#include "common/thread_pool.hpp"

namespace axon {

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads < 1 ? 1 : num_threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace axon
