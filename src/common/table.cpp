#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace axon {

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  AXON_CHECK(!header_.empty(), "Table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& v) {
  AXON_CHECK(!rows_.empty(), "call row() before cell()");
  AXON_CHECK(rows_.back().size() < header_.size(), "too many cells in row");
  rows_.back().push_back(v);
  return *this;
}

Table& Table::cell(const char* v) { return cell(std::string(v)); }

Table& Table::cell(double v, int precision) {
  return cell(fmt_double(v, precision));
}

Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }

Table& Table::cell(int v) { return cell(std::to_string(v)); }

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }

  if (!title.empty()) os << "== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << v;
    }
    os << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& r : rows_) print_row(r);
  os.flush();
}

}  // namespace axon
