#include "common/types.hpp"

#include <ostream>

#include "common/check.hpp"

namespace axon {

std::string to_string(Dataflow df) {
  switch (df) {
    case Dataflow::kOS: return "OS";
    case Dataflow::kWS: return "WS";
    case Dataflow::kIS: return "IS";
  }
  return "?";
}

std::string to_string(ArchType arch) {
  switch (arch) {
    case ArchType::kConventionalSA: return "SA";
    case ArchType::kAxon: return "Axon";
    case ArchType::kCMSA: return "CMSA";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Dataflow df) {
  return os << to_string(df);
}

std::ostream& operator<<(std::ostream& os, ArchType arch) {
  return os << to_string(arch);
}

std::ostream& operator<<(std::ostream& os, const ArrayShape& s) {
  return os << s.rows << "x" << s.cols;
}

std::ostream& operator<<(std::ostream& os, const GemmShape& s) {
  return os << "GEMM(M=" << s.M << ",K=" << s.K << ",N=" << s.N << ")";
}

bool ConvShape::valid() const {
  if (in_channels <= 0 || in_h <= 0 || in_w <= 0) return false;
  if (out_channels <= 0 || kernel_h <= 0 || kernel_w <= 0) return false;
  if (stride_h <= 0 || stride_w <= 0 || pad_h < 0 || pad_w < 0) return false;
  if (groups <= 0) return false;
  if (in_channels % groups != 0 || out_channels % groups != 0) return false;
  if (in_h + 2 * pad_h < kernel_h) return false;
  if (in_w + 2 * pad_w < kernel_w) return false;
  return true;
}

i64 ConvShape::macs() const {
  const i64 per_out = i64{1} * kernel_h * kernel_w * (in_channels / groups);
  return per_out * out_channels * out_h() * out_w();
}

GemmShape ConvShape::as_gemm() const {
  AXON_CHECK(valid(), "ConvShape::as_gemm on invalid shape");
  GemmShape g;
  g.M = out_channels / groups;
  g.K = i64{1} * (in_channels / groups) * kernel_h * kernel_w;
  g.N = i64{1} * out_h() * out_w();
  return g;
}

std::ostream& operator<<(std::ostream& os, const ConvShape& s) {
  os << "Conv(Cin=" << s.in_channels << "," << s.in_h << "x" << s.in_w
     << ",Cout=" << s.out_channels << ",k=" << s.kernel_h << "x" << s.kernel_w
     << ",s=" << s.stride_h << ",p=" << s.pad_h;
  if (s.groups != 1) os << ",g=" << s.groups;
  return os << ")";
}

ConvShape make_conv(int in_channels, int in_hw, int out_channels, int kernel,
                    int stride, int pad, int groups) {
  ConvShape c;
  c.in_channels = in_channels;
  c.in_h = c.in_w = in_hw;
  c.out_channels = out_channels;
  c.kernel_h = c.kernel_w = kernel;
  c.stride_h = c.stride_w = stride;
  c.pad_h = c.pad_w = pad;
  c.groups = groups;
  AXON_CHECK(c.valid(), "make_conv produced invalid shape");
  return c;
}

}  // namespace axon
