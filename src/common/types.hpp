// Core value types shared by every Axon subsystem: dataflows, architecture
// ids, array / GEMM / convolution shape descriptors and their invariants.
//
// Terminology follows the paper (and SCALE-SIM):
//   S_R, S_C : spatial dimensions the GEMM is mapped onto (array rows/cols)
//   T        : temporal dimension (number of MACs each PE performs)
//   R, C     : physical array rows / columns.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace axon {

using i64 = std::int64_t;

/// The three classic systolic dataflows (paper §2.1, Table 1).
enum class Dataflow { kOS, kWS, kIS };

/// Architectures compared in the paper's evaluation (§5).
enum class ArchType {
  kConventionalSA,  ///< baseline uni-directional systolic array
  kAxon,            ///< diagonal feed + bi-directional propagation (this paper)
  kCMSA,            ///< configurable multi-directional SA (Xu et al., baseline)
};

/// Returns "OS" / "WS" / "IS".
std::string to_string(Dataflow df);
/// Returns "SA" / "Axon" / "CMSA".
std::string to_string(ArchType arch);

std::ostream& operator<<(std::ostream& os, Dataflow df);
std::ostream& operator<<(std::ostream& os, ArchType arch);

/// Physical systolic-array shape. Rows x Cols of PEs.
struct ArrayShape {
  int rows = 0;
  int cols = 0;

  [[nodiscard]] bool valid() const { return rows > 0 && cols > 0; }
  [[nodiscard]] bool square() const { return rows == cols; }
  [[nodiscard]] i64 num_pes() const { return i64{1} * rows * cols; }
  /// Number of PEs that sit on the principal diagonal (Axon feeder PEs).
  [[nodiscard]] int diagonal_pes() const { return rows < cols ? rows : cols; }

  friend bool operator==(const ArrayShape& a, const ArrayShape& b) {
    return a.rows == b.rows && a.cols == b.cols;
  }
  friend bool operator!=(const ArrayShape& a, const ArrayShape& b) {
    return !(a == b);
  }
};

std::ostream& operator<<(std::ostream& os, const ArrayShape& s);

/// GEMM problem: (M x K) * (K x N).
struct GemmShape {
  i64 M = 0;
  i64 K = 0;
  i64 N = 0;

  [[nodiscard]] bool valid() const { return M > 0 && K > 0 && N > 0; }
  [[nodiscard]] i64 macs() const { return M * K * N; }
  /// Operand + result element counts (useful for traffic baselines).
  [[nodiscard]] i64 a_elems() const { return M * K; }
  [[nodiscard]] i64 b_elems() const { return K * N; }
  [[nodiscard]] i64 c_elems() const { return M * N; }

  friend bool operator==(const GemmShape& a, const GemmShape& b) {
    return a.M == b.M && a.K == b.K && a.N == b.N;
  }
  friend bool operator!=(const GemmShape& a, const GemmShape& b) {
    return !(a == b);
  }
};

std::ostream& operator<<(std::ostream& os, const GemmShape& s);

/// Convolution layer descriptor (NCHW, square-friendly but fully general).
/// `groups == in_channels` expresses a depthwise convolution.
struct ConvShape {
  int in_channels = 0;
  int in_h = 0;
  int in_w = 0;
  int out_channels = 0;
  int kernel_h = 0;
  int kernel_w = 0;
  int stride_h = 1;
  int stride_w = 1;
  int pad_h = 0;
  int pad_w = 0;
  int groups = 1;

  [[nodiscard]] bool valid() const;
  [[nodiscard]] int out_h() const {
    return (in_h + 2 * pad_h - kernel_h) / stride_h + 1;
  }
  [[nodiscard]] int out_w() const {
    return (in_w + 2 * pad_w - kernel_w) / stride_w + 1;
  }
  [[nodiscard]] bool depthwise() const {
    return groups == in_channels && groups == out_channels;
  }
  [[nodiscard]] i64 macs() const;

  /// GEMM the layer lowers to via im2col (per group):
  ///   M = out_channels/groups, K = (in_channels/groups)*kh*kw, N = oh*ow.
  [[nodiscard]] GemmShape as_gemm() const;

  friend bool operator==(const ConvShape& a, const ConvShape& b) {
    return a.in_channels == b.in_channels && a.in_h == b.in_h &&
           a.in_w == b.in_w && a.out_channels == b.out_channels &&
           a.kernel_h == b.kernel_h && a.kernel_w == b.kernel_w &&
           a.stride_h == b.stride_h && a.stride_w == b.stride_w &&
           a.pad_h == b.pad_h && a.pad_w == b.pad_w && a.groups == b.groups;
  }
  friend bool operator!=(const ConvShape& a, const ConvShape& b) {
    return !(a == b);
  }
};

std::ostream& operator<<(std::ostream& os, const ConvShape& s);

/// Convenience factory for the common square-kernel case.
ConvShape make_conv(int in_channels, int in_hw, int out_channels, int kernel,
                    int stride = 1, int pad = 0, int groups = 1);

/// Integer ceil-division for positive operands.
constexpr i64 ceil_div(i64 a, i64 b) { return (a + b - 1) / b; }

}  // namespace axon
