#include "hw/area_power.hpp"

#include "common/check.hpp"

namespace axon {

namespace {

// Calibration at ASAP7 against the paper's 16x16 implementation (Fig. 10).
constexpr double kRefPes = 256.0;        // 16x16
constexpr double kRefDiag = 16.0;        // diagonal feeder PEs
constexpr double kRefSaArea = 0.9992;    // mm2
constexpr double kRefAxonArea = 0.9931;  // mm2 (buffer sharing saves area)
constexpr double kRefAxonIm2colArea = 0.9951;  // mm2
constexpr double kRefSaPower = 59.88;          // mW
constexpr double kRefAxonIm2colPower = 59.98;  // mW

// Sauria's feeder network costs ~4% of array area at 16x16 (paper §5.2.1)
// and makes Axon ~3.93% smaller / ~4.5% lower power on average (§5.2.3).
constexpr double kSauriaAreaOverhead = 0.04;
constexpr double kSauriaPowerOverhead = 0.047;

// Node scaling from ASAP7 to TSMC 45nm. Representative published factors:
// standard-cell density ratio ~9x in area; dynamic power ~3.2x at
// iso-frequency (CV^2 scaling). Fig. 15 only relies on relative
// Axon-vs-Sauria deltas, which are node-independent in this model.
constexpr double kArea45Scale = 9.0;
constexpr double kPower45Scale = 3.2;

}  // namespace

std::string to_string(TechNode node) {
  switch (node) {
    case TechNode::kAsap7: return "ASAP7";
    case TechNode::kTsmc45: return "TSMC45";
  }
  return "?";
}

AreaPowerModel::AreaPowerModel(TechNode node) : node_(node) {
  const double area_scale = node == TechNode::kAsap7 ? 1.0 : kArea45Scale;
  const double power_scale = node == TechNode::kAsap7 ? 1.0 : kPower45Scale;

  pe_area_mm2_ = kRefSaArea / kRefPes * area_scale;
  pe_power_mw_ = kRefSaPower / kRefPes * power_scale;

  // Axon 16x16 saves (SA - Axon) via buffer sharing across the two PE pairs
  // adjacent to each of the (D - 1) interior diagonal PEs.
  shared_buffer_saving_mm2_ =
      (kRefSaArea - kRefAxonArea) / (2.0 * (kRefDiag - 1.0)) * area_scale;

  // im2col adds one 2-to-1 MUX + control per diagonal feeder PE.
  mux_area_mm2_ =
      (kRefAxonIm2colArea - kRefAxonArea) / kRefDiag * area_scale;
  mux_power_mw_ =
      (kRefAxonIm2colPower - kRefSaPower) / kRefDiag * power_scale;

  // Sauria's per-column data feeder needs FIFOs/counters whose depth grows
  // with the column height, so its cost scales with the PE count — the
  // paper observes a roughly constant ~4% overhead across array sizes.
  // Stored per-PE, calibrated at the 16x16 reference.
  sauria_feeder_area_mm2_ = kSauriaAreaOverhead * pe_area_mm2_;
  sauria_feeder_power_mw_ = kSauriaPowerOverhead * pe_power_mw_;
}

ArrayHw AreaPowerModel::conventional_sa(ArrayShape shape) const {
  AXON_CHECK(shape.valid(), "invalid array shape");
  const double n = static_cast<double>(shape.num_pes());
  return {n * pe_area_mm2_, n * pe_power_mw_};
}

ArrayHw AreaPowerModel::axon(ArrayShape shape, bool with_im2col) const {
  AXON_CHECK(shape.valid(), "invalid array shape");
  const double n = static_cast<double>(shape.num_pes());
  const double d = static_cast<double>(shape.diagonal_pes());
  ArrayHw hw;
  hw.area_mm2 = n * pe_area_mm2_ - 2.0 * (d - 1.0) * shared_buffer_saving_mm2_;
  hw.power_mw = n * pe_power_mw_;
  if (with_im2col) {
    hw.area_mm2 += d * mux_area_mm2_;
    hw.power_mw += d * mux_power_mw_;
  }
  return hw;
}

ArrayHw AreaPowerModel::sauria(ArrayShape shape) const {
  AXON_CHECK(shape.valid(), "invalid array shape");
  ArrayHw hw = conventional_sa(shape);
  const double n = static_cast<double>(shape.num_pes());
  hw.area_mm2 += n * sauria_feeder_area_mm2_;
  hw.power_mw += n * sauria_feeder_power_mw_;
  return hw;
}

double AreaPowerModel::power_with_zero_gating(double base_power_mw,
                                              double gated_fraction) const {
  AXON_CHECK(gated_fraction >= 0.0 && gated_fraction <= 1.0,
             "gated fraction must be in [0,1]");
  return base_power_mw * (1.0 - kMacDynamicPowerShare * gated_fraction);
}

}  // namespace axon
