// Silicon area / power models (substitution for the paper's Synopsys DC +
// PnR flow — see DESIGN.md §5.1).
//
// The model is structural: an array is a grid of FP16-MAC PEs plus
// architecture-specific additions —
//  * conventional SA: the PE grid (edge feeders folded into the PE cost);
//  * Axon: the grid minus the input/weight buffers shared between the two
//    PEs adjacent to each diagonal feeder PE (paper §5.1 observed a small
//    net *reduction*), plus, with im2col support, one 2-to-1 MUX + control
//    per diagonal feeder PE;
//  * Sauria: the grid plus a per-column on-the-fly im2col data feeder
//    (feed registers, counters, FIFO) — the ~4% overhead the paper quotes.
//
// Per-unit constants are calibrated so the 16x16 ASAP7 design reproduces
// the paper's Fig. 10 numbers exactly:
//   SA 0.9992 mm2 / 59.88 mW, Axon 0.9931 mm2, Axon+im2col 0.9951 mm2 /
//   59.98 mW. TSMC 45nm applies published node scale factors.
#pragma once

#include "common/types.hpp"

namespace axon {

enum class TechNode {
  kAsap7,   ///< ASAP 7nm FinFET predictive PDK [11]
  kTsmc45,  ///< TSMC 45nm
};

std::string to_string(TechNode node);

struct ArrayHw {
  double area_mm2 = 0.0;
  double power_mw = 0.0;
};

class AreaPowerModel {
 public:
  explicit AreaPowerModel(TechNode node);

  [[nodiscard]] TechNode node() const { return node_; }

  /// Conventional systolic array, no im2col hardware.
  [[nodiscard]] ArrayHw conventional_sa(ArrayShape shape) const;

  /// Axon array; `with_im2col` adds the per-feeder 2-to-1 MUXes.
  [[nodiscard]] ArrayHw axon(ArrayShape shape, bool with_im2col) const;

  /// Sauria-style SA with the on-the-fly im2col data feeder network.
  [[nodiscard]] ArrayHw sauria(ArrayShape shape) const;

  /// Zero-gating power model: a MAC gated on a zero operand saves its share
  /// of the dynamic power. Calibrated so 10% gated MACs give the paper's
  /// 5.3% total power reduction (MAC dynamic share = 0.53 of total).
  [[nodiscard]] double power_with_zero_gating(double base_power_mw,
                                              double gated_fraction) const;

 private:
  TechNode node_;
  // Calibrated per-unit costs at the selected node.
  double pe_area_mm2_;
  double pe_power_mw_;
  double shared_buffer_saving_mm2_;  ///< per buffer-sharing pair (Axon)
  double mux_area_mm2_;              ///< per diagonal-feeder 2-to-1 MUX
  double mux_power_mw_;
  double sauria_feeder_area_mm2_;    ///< per array column
  double sauria_feeder_power_mw_;
};

/// Fraction of total array power attributable to MAC dynamic switching;
/// used by the zero-gating model (calibrated to §5.2.1).
inline constexpr double kMacDynamicPowerShare = 0.53;

}  // namespace axon
