// Inference energy model (§5.2.1): DRAM traffic x 120 pJ/byte (LPDDR3,
// DRAMPower) plus a bandwidth roofline that converts traffic reduction into
// end-to-end speedup.
#pragma once

#include "common/types.hpp"
#include "memory/dram.hpp"
#include "memory/traffic.hpp"

namespace axon {

struct EnergyComparison {
  i64 baseline_bytes = 0;
  i64 axon_bytes = 0;
  double baseline_energy_mj = 0.0;
  double axon_energy_mj = 0.0;
  double saved_energy_mj = 0.0;
  double traffic_reduction_pct = 0.0;
};

/// Compares DRAM energy of two traffic totals under the given DRAM model.
EnergyComparison compare_dram_energy(const DramModel& dram, i64 baseline_bytes,
                                     i64 axon_bytes);

/// Roofline speedup: phase time = max(compute_cycles, transfer(bytes));
/// returns t_baseline / t_axon for the same compute but reduced traffic.
double roofline_speedup(const DramModel& dram, i64 compute_cycles,
                        i64 baseline_bytes, i64 axon_bytes);

}  // namespace axon
