#include "hw/energy.hpp"

#include "common/check.hpp"

namespace axon {

EnergyComparison compare_dram_energy(const DramModel& dram, i64 baseline_bytes,
                                     i64 axon_bytes) {
  AXON_CHECK(baseline_bytes >= 0 && axon_bytes >= 0, "negative traffic");
  EnergyComparison c;
  c.baseline_bytes = baseline_bytes;
  c.axon_bytes = axon_bytes;
  c.baseline_energy_mj = dram.energy_mj(baseline_bytes);
  c.axon_energy_mj = dram.energy_mj(axon_bytes);
  c.saved_energy_mj = c.baseline_energy_mj - c.axon_energy_mj;
  c.traffic_reduction_pct =
      baseline_bytes == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(axon_bytes) /
                               static_cast<double>(baseline_bytes));
  return c;
}

double roofline_speedup(const DramModel& dram, i64 compute_cycles,
                        i64 baseline_bytes, i64 axon_bytes) {
  const i64 t_base = dram.overlapped_cycles(compute_cycles, baseline_bytes);
  const i64 t_axon = dram.overlapped_cycles(compute_cycles, axon_bytes);
  AXON_CHECK(t_axon > 0, "zero runtime");
  return static_cast<double>(t_base) / static_cast<double>(t_axon);
}

}  // namespace axon
