#include "hw/energy_model.hpp"

#include "common/check.hpp"

namespace axon {

namespace {
constexpr double kPjToMj = 1e-9;
}  // namespace

EnergyModel::EnergyModel(OpEnergies ops) : ops_(ops) {
  AXON_CHECK(ops_.mac_active_pj >= 0 && ops_.mac_gated_pj >= 0 &&
                 ops_.sram_read_pj >= 0 && ops_.sram_write_pj >= 0 &&
                 ops_.neighbor_hop_pj >= 0 && ops_.dram_pj_per_byte >= 0,
             "per-op energies must be non-negative");
  AXON_CHECK(ops_.mac_gated_pj <= ops_.mac_active_pj,
             "gating must not cost more than the MAC it skips");
}

double EnergyModel::compute_energy_mj(const MacCounters& macs) const {
  return (static_cast<double>(macs.active_macs) * ops_.mac_active_pj +
          static_cast<double>(macs.gated_macs) * ops_.mac_gated_pj) *
         kPjToMj;
}

double EnergyModel::sram_energy_mj(i64 reads, i64 writes) const {
  AXON_CHECK(reads >= 0 && writes >= 0, "negative access counts");
  return (static_cast<double>(reads) * ops_.sram_read_pj +
          static_cast<double>(writes) * ops_.sram_write_pj) *
         kPjToMj;
}

EnergyBreakdown EnergyModel::breakdown(const MacCounters& macs,
                                       const Stats& stats,
                                       i64 dram_bytes) const {
  AXON_CHECK(dram_bytes >= 0, "negative DRAM bytes");
  EnergyBreakdown b;
  b.mac_mj = compute_energy_mj(macs);

  i64 sram_reads = 0;
  for (const auto& [name, value] : stats.all()) {
    if (name.rfind("sram.", 0) == 0) sram_reads += value;
  }
  b.sram_mj = sram_energy_mj(sram_reads, /*writes=*/0);
  b.noc_mj = static_cast<double>(stats.get("feeder.neighbor.forwards")) *
             ops_.neighbor_hop_pj * kPjToMj;
  b.dram_mj = static_cast<double>(dram_bytes) * ops_.dram_pj_per_byte * kPjToMj;
  return b;
}

}  // namespace axon
