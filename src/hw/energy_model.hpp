// Per-operation energy model: combines MAC activity (from the simulators'
// MacCounters), SRAM access counts (from the run Stats) and DRAM traffic
// into a per-inference energy breakdown.
//
// Per-op constants are representative 7nm FP16 values (documented
// estimates; the paper only quotes total array power, which hw/area_power
// reproduces — this model adds the energy-per-op view used by the
// examples and the ablation bench). The DRAM constant is the paper's
// 120 pJ/byte.
#pragma once

#include "common/types.hpp"
#include "memory/traffic.hpp"
#include "pe/mac.hpp"
#include "sim/stats.hpp"

namespace axon {

struct OpEnergies {
  double mac_active_pj = 1.2;   ///< FP16 multiply-accumulate, 7nm
  double mac_gated_pj = 0.06;   ///< clock/latch residue when zero-gated
  double sram_read_pj = 2.5;    ///< per 16-bit word, multi-bank scratchpad
  double sram_write_pj = 3.0;
  double neighbor_hop_pj = 0.2;  ///< PE-to-PE register hop (im2col MUX path)
  double dram_pj_per_byte = 120.0;  ///< LPDDR3 (paper [6])
};

struct EnergyBreakdown {
  double mac_mj = 0.0;
  double sram_mj = 0.0;
  double noc_mj = 0.0;   ///< neighbour-forwarding hops
  double dram_mj = 0.0;

  [[nodiscard]] double total_mj() const {
    return mac_mj + sram_mj + noc_mj + dram_mj;
  }
};

class EnergyModel {
 public:
  explicit EnergyModel(OpEnergies ops = {});

  [[nodiscard]] const OpEnergies& ops() const { return ops_; }

  /// Energy of the MAC activity alone.
  [[nodiscard]] double compute_energy_mj(const MacCounters& macs) const;

  /// Energy of SRAM word accesses.
  [[nodiscard]] double sram_energy_mj(i64 reads, i64 writes) const;

  /// Full breakdown from a run's counters. Reads the standard counter
  /// names emitted by the simulators ("sram.*.loads",
  /// "feeder.neighbor.forwards") plus explicit DRAM bytes.
  [[nodiscard]] EnergyBreakdown breakdown(const MacCounters& macs,
                                          const Stats& stats,
                                          i64 dram_bytes) const;

 private:
  OpEnergies ops_;
};

}  // namespace axon
