// Abstraction over "where the horizontal (IFMAP-side) operand stream comes
// from". The Axon array pulls row streams through this interface so the
// plain SRAM feeder and the on-chip im2col MUX chain are interchangeable.
#pragma once

#include <optional>

#include "common/types.hpp"
#include "sim/stats.hpp"
#include "tensor/matrix.hpp"

namespace axon {

class RowStream {
 public:
  virtual ~RowStream() = default;

  /// Number of rows this stream feeds (= array rows used).
  [[nodiscard]] virtual i64 num_rows() const = 0;

  /// Temporal length T of every row stream.
  [[nodiscard]] virtual i64 temporal_length() const = 0;

  /// Element for `row` at temporal step `k` (called exactly once per
  /// (row, k) by the array, in non-decreasing k order per row). nullopt
  /// outside [0, T).
  virtual std::optional<float> value(i64 row, i64 k) = 0;

  /// Load accounting, merged into the run result.
  [[nodiscard]] virtual const Stats& stats() const = 0;
};

/// Streams the rows of a Matrix; every element is an SRAM load.
class MatrixRowStream final : public RowStream {
 public:
  /// `source` must outlive the stream.
  explicit MatrixRowStream(const Matrix& source, std::string counter_name =
                                                     "sram.ifmap.loads");

  [[nodiscard]] i64 num_rows() const override;
  [[nodiscard]] i64 temporal_length() const override;
  std::optional<float> value(i64 row, i64 k) override;
  [[nodiscard]] const Stats& stats() const override { return stats_; }

 private:
  const Matrix& source_;
  std::string counter_name_;
  Stats stats_;
};

}  // namespace axon
