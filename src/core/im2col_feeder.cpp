#include "core/im2col_feeder.hpp"

#include "common/check.hpp"

namespace axon {

Im2colFeeder::Im2colFeeder(const Tensor4& input, const ConvShape& conv,
                           i64 first_window, i64 num_rows, int group,
                           i64 batch)
    : input_(input),
      conv_(conv),
      first_window_(first_window),
      num_rows_(num_rows),
      group_(group),
      batch_(batch) {
  AXON_CHECK(conv_.valid(), "invalid conv shape");
  AXON_CHECK(input_.c() == conv_.in_channels && input_.h() == conv_.in_h &&
                 input_.w() == conv_.in_w,
             "input tensor does not match conv shape");
  AXON_CHECK(group >= 0 && group < conv_.groups, "bad group");
  AXON_CHECK(batch >= 0 && batch < input_.n(), "bad batch");
  const i64 total_windows = i64{1} * conv_.out_h() * conv_.out_w();
  AXON_CHECK(num_rows_ > 0, "feeder needs at least one window");
  AXON_CHECK(first_window_ >= 0 && first_window_ + num_rows_ <= total_windows,
             "window range [", first_window_, ", ", first_window_ + num_rows_,
             ") exceeds ", total_windows, " windows");
  window_len_ = i64{1} * (conv_.in_channels / conv_.groups) * conv_.kernel_h *
                conv_.kernel_w;
}

i64 Im2colFeeder::temporal_length() const { return window_len_; }

float Im2colFeeder::emitted(i64 row, i64 k) const {
  AXON_DCHECK(row >= 0 && row < num_rows_ && k >= 0 && k < window_len_,
              "emitted() out of range");
  // Reversed flattened order: step k emits flattened index f = K-1-k, with
  // f decomposed as ((c * kh + ky) * kw + kx).
  const i64 f = window_len_ - 1 - k;
  const i64 kw = conv_.kernel_w;
  const i64 kh = conv_.kernel_h;
  const i64 kx = f % kw;
  const i64 ky = (f / kw) % kh;
  const i64 c = f / (kw * kh);

  const i64 w = first_window_ + row;
  const i64 oy = w / conv_.out_w();
  const i64 ox = w % conv_.out_w();
  const i64 cg = conv_.in_channels / conv_.groups;
  const i64 ic = i64{1} * group_ * cg + c;
  const i64 iy = oy * conv_.stride_h - conv_.pad_h + ky;
  const i64 ix = ox * conv_.stride_w - conv_.pad_w + kx;
  return input_.at_padded(batch_, ic, iy, ix);
}

bool Im2colFeeder::needs_sram(i64 row, i64 k) const {
  if (row == 0) return true;  // chain head always streams from SRAM
  // Reuse requires the predecessor window to be the horizontal neighbour in
  // the same output row.
  const i64 w = first_window_ + row;
  const i64 prev = w - 1;
  if (w / conv_.out_w() != prev / conv_.out_w()) return true;
  // Stride must leave an overlap to forward.
  if (conv_.stride_w >= conv_.kernel_w) return true;
  // Within each kernel-row period of kw steps, the first `stride_w` steps
  // carry elements the neighbour never held (the columns the window slid
  // past); they come from SRAM. (Derivation: at step k the emitted kernel
  // column is kx = kw - 1 - (k mod kw); sharing with the previous window
  // needs kx <= kw - 1 - s, i.e. k mod kw >= s.)
  return (k % conv_.kernel_w) < conv_.stride_w;
}

std::optional<float> Im2colFeeder::value(i64 row, i64 k) {
  AXON_CHECK(row >= 0 && row < num_rows_, "feeder row OOB");
  if (k < 0 || k >= window_len_) return std::nullopt;

  const float v = emitted(row, k);
  if (needs_sram(row, k)) {
    ++sram_loads_;
    stats_.add("sram.ifmap.loads");
  } else {
    // MUX select = 1: take from the adjacent feeder PE. Verify the reuse
    // invariant: the neighbour emitted exactly this value stride_w steps
    // earlier.
    const float from_neighbor = emitted(row - 1, k - conv_.stride_w);
    AXON_CHECK(from_neighbor == v, "im2col reuse invariant violated at row ",
               row, " step ", k, ": neighbour=", from_neighbor, " self=", v);
    ++neighbor_forwards_;
    stats_.add("feeder.neighbor.forwards");
  }
  return v;
}

}  // namespace axon
