#include "core/row_stream.hpp"

#include "common/check.hpp"

namespace axon {

MatrixRowStream::MatrixRowStream(const Matrix& source, std::string counter_name)
    : source_(source), counter_name_(std::move(counter_name)) {}

i64 MatrixRowStream::num_rows() const { return source_.rows(); }

i64 MatrixRowStream::temporal_length() const { return source_.cols(); }

std::optional<float> MatrixRowStream::value(i64 row, i64 k) {
  AXON_CHECK(row >= 0 && row < source_.rows(), "row stream row OOB");
  if (k < 0 || k >= source_.cols()) return std::nullopt;
  stats_.add(counter_name_);
  return source_.at(row, k);
}

}  // namespace axon
