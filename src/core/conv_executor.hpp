// Runs complete convolution layers on the cycle-accurate arrays:
//  * Axon with the on-chip im2col feeder chain (the paper's design), and
//  * conventional SA consuming a software-materialized im2col matrix
// so results, cycle counts and SRAM traffic can be compared end to end.
//
// Mapping (paper Fig. 3b / Fig. 7): conv windows map to array rows (each
// diagonal feeder PE streams one window), flattened filters map to array
// columns, and the window length K = (Cin/g)*kh*kw is the temporal
// dimension (OS dataflow). Layers larger than the array are tiled:
// window tiles of <= R rows, filter tiles of <= C columns.
#pragma once

#include "baseline/run_result.hpp"
#include "common/types.hpp"
#include "tensor/tensor4.hpp"

namespace axon {

struct ConvRunResult {
  Tensor4 output;              ///< [N][Cout][oh][ow]
  i64 cycles = 0;              ///< summed over all tiles
  i64 tiles = 0;
  i64 ifmap_sram_loads = 0;    ///< IFMAP elements pulled from SRAM
  i64 filter_sram_loads = 0;
  i64 neighbor_forwards = 0;   ///< elements reused through the MUX chain
  MacCounters macs;
};

/// Convolution on the Axon array with on-chip im2col (2-to-1 MUX reuse).
ConvRunResult run_conv_axon_im2col(const Tensor4& input, const Tensor4& filters,
                                   const ConvShape& conv, ArrayShape array,
                                   SimOptions options = {});

/// Convolution on the conventional SA fed by software im2col (every window
/// element streamed from SRAM, with the conventional skew).
ConvRunResult run_conv_sa_software_im2col(const Tensor4& input,
                                          const Tensor4& filters,
                                          const ConvShape& conv,
                                          ArrayShape array,
                                          SimOptions options = {});

}  // namespace axon
