#include "core/structural_array.hpp"

#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/geometry.hpp"
#include "pe/unified_pe.hpp"

namespace axon {

namespace {

using Port = std::optional<float>;

/// Latched port planes: `cur` is what neighbours see this cycle, `next` is
/// what the PEs drive; swap() is the clock edge.
struct Plane {
  std::vector<Port> cur;
  std::vector<Port> next;

  explicit Plane(std::size_t n) : cur(n), next(n) {}
  void commit() { std::swap(cur, next); }
};

}  // namespace

StructuralAxonArray::StructuralAxonArray(ArrayShape shape, SimOptions options)
    : shape_(shape), options_(options) {
  AXON_CHECK(shape_.valid(), "invalid array shape");
}

GemmRunResult StructuralAxonArray::run(Dataflow df, const Matrix& a,
                                       const Matrix& b) {
  AXON_CHECK(a.cols() == b.rows(), "GEMM inner-dim mismatch");
  switch (df) {
    case Dataflow::kOS:
      return run_os(a, b);
    case Dataflow::kWS: {
      const i64 m = a.rows(), k = a.cols();
      Matrix stationary(k, m);
      for (i64 i = 0; i < m; ++i) {
        for (i64 kk = 0; kk < k; ++kk) stationary.at(kk, i) = a.at(i, kk);
      }
      GemmRunResult r = run_ws(stationary, b);
      r.dataflow = Dataflow::kWS;
      Matrix c(m, b.cols());
      for (i64 i = 0; i < m; ++i) {
        for (i64 j = 0; j < b.cols(); ++j) c.at(i, j) = r.out.at(j, i);
      }
      r.out = std::move(c);
      return r;
    }
    case Dataflow::kIS: {
      // The physical IS datapath is the transpose of WS; execute on the WS
      // engine with B stationary and A^T streaming.
      const i64 m = a.rows(), k = a.cols();
      Matrix stream(k, m);
      for (i64 i = 0; i < m; ++i) {
        for (i64 kk = 0; kk < k; ++kk) stream.at(kk, i) = a.at(i, kk);
      }
      GemmRunResult r = run_ws(b, stream);
      r.dataflow = Dataflow::kIS;
      return r;
    }
  }
  AXON_CHECK(false, "unreachable dataflow");
  return {};
}

GemmRunResult StructuralAxonArray::run_os(const Matrix& a, const Matrix& b) {
  const i64 r = a.rows();
  const i64 c = b.cols();
  const i64 t_len = a.cols();
  AXON_CHECK(r <= shape_.rows && c <= shape_.cols, "tile exceeds array");

  GemmRunResult result;
  result.dataflow = Dataflow::kOS;
  result.arch = ArchType::kAxon;

  const AxonGeometry g(r, c);
  const auto n = static_cast<std::size_t>(r * c);
  std::vector<UnifiedPe> pes(
      n,
      UnifiedPe(Dataflow::kOS, options_.zero_gating, options_.fp16_numerics));
  Plane h(n), v(n);  // latched horizontal / vertical operand ports
  auto idx = [c](i64 i, i64 j) { return static_cast<std::size_t>(i * c + j); };

  auto feed_a = [&](i64 i, i64 t) -> Port {
    const i64 k = t - g.skew_a(i);
    if (k < 0 || k >= t_len) return std::nullopt;
    result.stats.add("sram.ifmap.loads");
    return a.at(i, k);
  };
  auto feed_b = [&](i64 j, i64 t) -> Port {
    const i64 k = t - g.skew_b(j);
    if (k < 0 || k >= t_len) return std::nullopt;
    result.stats.add("sram.filter.loads");
    return b.at(k, j);
  };

  const i64 compute_cycles = t_len + g.max_dist();
  for (i64 t = 0; t < compute_cycles; ++t) {
    for (i64 i = 0; i < r; ++i) {
      const i64 sc = g.src_col(i);
      for (i64 j = 0; j < c; ++j) {
        PeIn in;
        if (j == sc) {
          in.horizontal = feed_a(i, t);
        } else if (j > sc) {
          in.horizontal = h.cur[idx(i, j - 1)];
        } else {
          in.horizontal = h.cur[idx(i, j + 1)];
        }
        const i64 sr = g.src_row(j);
        if (i == sr) {
          in.vertical = feed_b(j, t);
        } else if (i > sr) {
          in.vertical = v.cur[idx(i - 1, j)];
        } else {
          in.vertical = v.cur[idx(i + 1, j)];
        }
        const PeOut out = pes[idx(i, j)].step(in);
        h.next[idx(i, j)] = out.horizontal;
        v.next[idx(i, j)] = out.vertical;
      }
    }
    h.commit();
    v.commit();
  }
  result.fill_cycles = g.max_dist();
  result.drain_cycles = r;
  result.cycles = compute_cycles + result.drain_cycles;

  result.out = Matrix(r, c);
  for (i64 i = 0; i < r; ++i) {
    for (i64 j = 0; j < c; ++j) {
      result.out.at(i, j) = pes[idx(i, j)].drain_accumulator();
    }
  }
  result.pe_activity = Matrix(r, c);
  for (i64 i = 0; i < r; ++i) {
    for (i64 j = 0; j < c; ++j) {
      result.pe_activity.at(i, j) =
          static_cast<float>(pes[idx(i, j)].counters().total_macs());
    }
  }
  for (const auto& pe : pes) result.macs += pe.counters();
  return result;
}

GemmRunResult StructuralAxonArray::run_ws(const Matrix& stationary,
                                          const Matrix& stream) {
  const i64 r = stationary.rows();
  const i64 c = stationary.cols();
  const i64 t_len = stream.cols();
  AXON_CHECK(stream.rows() == r, "stream rows must equal stationary rows");
  AXON_CHECK(r <= shape_.rows && c <= shape_.cols, "tile exceeds array");

  GemmRunResult result;
  result.arch = ArchType::kAxon;

  const AxonGeometry g(r, c);
  const auto n = static_cast<std::size_t>(r * c);
  std::vector<UnifiedPe> pes(
      n,
      UnifiedPe(Dataflow::kWS, options_.zero_gating, options_.fp16_numerics));
  auto idx = [c](i64 i, i64 j) { return static_cast<std::size_t>(i * c + j); };

  // --- Preload phase (paper §4.2.1): the stationary operand shifts down
  // the output interconnect, one row per cycle, r cycles total. MUX1/MUX2
  // in each PE steer the value into the stationary register.
  {
    Plane p(n);
    for (i64 t = 0; t < r; ++t) {
      for (i64 i = 0; i < r; ++i) {
        for (i64 j = 0; j < c; ++j) {
          PeIn in;
          in.preload = true;
          in.psum = (i == 0) ? Port(stationary.at(r - 1 - t, j))
                             : p.cur[idx(i - 1, j)];
          const PeOut out = pes[idx(i, j)].step(in);
          p.next[idx(i, j)] = out.psum;
        }
      }
      p.commit();
    }
    result.preload_cycles = r;
    result.stats.add("sram.stationary.loads", r * c);
    // Structural invariant: every PE now holds its stationary element.
    for (i64 i = 0; i < r; ++i) {
      for (i64 j = 0; j < c; ++j) {
        AXON_DCHECK(pes[idx(i, j)].stationary() == stationary.at(i, j),
                    "preload chain failed at PE(", i, ",", j, ")");
      }
    }
  }

  // --- Stream phase: X travels horizontally from the diagonal; partial
  // sums form the two bypass-and-add streams per column (Fig. 8b) and the
  // edge collectors add the portions.
  Plane x(n), p(n);
  Matrix out(t_len, c);

  auto feed_x = [&](i64 i, i64 t) -> Port {
    const i64 k = t - g.skew_a(i);
    if (k < 0 || k >= t_len) return std::nullopt;
    result.stats.add("sram.stream.loads");
    return stream.at(i, k);
  };

  const i64 stream_cycles = t_len + g.max_dist();
  for (i64 t = 0; t < stream_cycles; ++t) {
    for (i64 i = 0; i < r; ++i) {
      const i64 sc = g.src_col(i);
      for (i64 j = 0; j < c; ++j) {
        PeIn in;
        if (j == sc) {
          in.horizontal = feed_x(i, t);
        } else if (j > sc) {
          in.horizontal = x.cur[idx(i, j - 1)];
        } else {
          in.horizontal = x.cur[idx(i, j + 1)];
        }
        const i64 s = g.src_row(j);
        if (i >= s) {  // downward stream, initiated at the diagonal PE
          if (i > s) in.psum = p.cur[idx(i - 1, j)];
        } else {  // upward stream, initiated just above the diagonal
          if (i < s - 1) in.psum = p.cur[idx(i + 1, j)];
        }
        const PeOut pe_out = pes[idx(i, j)].step(in);
        x.next[idx(i, j)] = pe_out.horizontal;
        p.next[idx(i, j)] = pe_out.psum;

        // Edge collectors (timing: row i of column j fires at t = k + |i-j|).
        if (pe_out.psum.has_value()) {
          if (i == 0 && s > 0) {
            const i64 k = t - j;
            AXON_DCHECK(k >= 0 && k < t_len, "top collector timing");
            out.at(k, j) += *pe_out.psum;
          }
          if (i == r - 1) {
            const i64 k = t - g.dist(r - 1, j);
            AXON_DCHECK(k >= 0 && k < t_len, "bottom collector timing");
            out.at(k, j) += *pe_out.psum;
          }
        }
      }
    }
    x.commit();
    p.commit();
  }
  result.fill_cycles = g.max_dist();
  result.cycles = result.preload_cycles + stream_cycles;
  result.out = std::move(out);
  result.pe_activity = Matrix(r, c);
  for (i64 i = 0; i < r; ++i) {
    for (i64 j = 0; j < c; ++j) {
      result.pe_activity.at(i, j) =
          static_cast<float>(pes[idx(i, j)].counters().total_macs());
    }
  }
  for (const auto& pe : pes) result.macs += pe.counters();
  return result;
}

}  // namespace axon
