// Structural Axon array: the same orchestration as AxonArraySim but built
// bottom-up from UnifiedPe datapaths (paper Fig. 9) wired through latched
// ports and driven by the two-phase Clock — one step() per PE per cycle,
// neighbour values visible only after commit, exactly like RTL.
//
// AxonArraySim is the fast behavioural model; this is the slow structural
// model. Tests assert they agree cycle-for-cycle and bit-for-bit, which is
// the repo's substitute for RTL/gate-level equivalence checking.
//
// Supported dataflows: OS and WS natively; IS is executed on the WS engine
// with operands transposed (the physical IS datapath is the transpose of
// WS — same PEs, columns and rows exchanged).
#pragma once

#include "baseline/run_result.hpp"
#include "common/types.hpp"
#include "tensor/matrix.hpp"

namespace axon {

class StructuralAxonArray {
 public:
  explicit StructuralAxonArray(ArrayShape shape, SimOptions options = {});

  [[nodiscard]] ArrayShape shape() const { return shape_; }

  /// C = A * B on one tile; same preconditions as AxonArraySim::run.
  GemmRunResult run(Dataflow df, const Matrix& a, const Matrix& b);

 private:
  GemmRunResult run_os(const Matrix& a, const Matrix& b);
  /// Out[t][j] = sum_i St[i][j] * X[i][t], PEs configured kWS.
  GemmRunResult run_ws(const Matrix& stationary, const Matrix& stream);

  ArrayShape shape_;
  SimOptions options_;
};

}  // namespace axon
