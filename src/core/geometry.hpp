// Injection geometry of the Axon orchestration (paper Fig. 3 / Fig. 5) for
// an r x c used region, shared by the behavioural and structural
// simulators.
//
// Timing proof. Let D = min(r, c).
//  * Row i < D injects at column i with no skew: A[i][k] reaches column j
//    at k + |i - j|.
//  * Row i >= D (tall, r > c) injects at column c-1 with skew i - (c-1):
//    A[i][k] enters at k + i - (c-1) and reaches column j <= c-1 after
//    (c-1-j) more hops: k + i - j = k + |i - j|.
//  * Column j >= D (wide, c > r) injects at row r-1 with skew j - (r-1):
//    B[k][j] reaches row i after (r-1-i) hops: k + j - i = k + |i - j|.
// Hence operands for step k always meet at PE (i, j) at cycle k + |i - j|,
// and the farthest PE is at Chebyshev distance max(r, c) - 1.
#pragma once

#include <algorithm>

#include "common/types.hpp"

namespace axon {

struct AxonGeometry {
  i64 r = 0;
  i64 c = 0;
  i64 d = 0;

  AxonGeometry(i64 rows, i64 cols)
      : r(rows), c(cols), d(std::min(rows, cols)) {}

  /// Column where row i's horizontal stream is injected.
  [[nodiscard]] i64 src_col(i64 i) const { return i < d ? i : c - 1; }
  /// Injection delay of row i (zero-padding skew of Fig. 5).
  [[nodiscard]] i64 skew_a(i64 i) const { return i < d ? 0 : i - (c - 1); }
  /// Row where column j's vertical stream is injected.
  [[nodiscard]] i64 src_row(i64 j) const { return j < d ? j : r - 1; }
  [[nodiscard]] i64 skew_b(i64 j) const { return j < d ? 0 : j - (r - 1); }
  [[nodiscard]] i64 dist(i64 i, i64 j) const { return i > j ? i - j : j - i; }
  /// Fill latency: Chebyshev distance of the farthest PE.
  [[nodiscard]] i64 max_dist() const { return std::max(r, c) - 1; }
};

}  // namespace axon
