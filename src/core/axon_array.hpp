// Cycle-accurate simulator of the Axon systolic array (paper §3, §4).
//
// Orchestration (Fig. 3): operands are injected at the PEs on the principal
// diagonal — unskewed — and propagate bi-directionally: the IFMAP-side
// operand left+right along its row, the FILTER-side operand up+down along
// its column. Operands for temporal step k meet at PE (i, j) at cycle
// k + |i - j| (Chebyshev instead of Manhattan distance), so the fill term
// of the runtime is max(R, C) - 1 instead of R + C - 2.
//
// Rectangular tiles (Fig. 5): rows/columns with no diagonal PE are fed from
// the nearest edge PE with a zero-padding skew equal to their distance from
// it; arrival times stay coherent (see the timing proof in the .cpp).
//
// Dataflows:
//  * OS — both operands travel; each PE accumulates locally; R-cycle drain.
//  * WS/IS (§4.2) — stationary operand preloaded via the output interconnect
//    (S_R cycles); the streaming operand travels from the diagonal; partial
//    sums form two bypass-and-add streams per column, split at the diagonal
//    PE: the upper segment flows up and exits the top edge, the diagonal +
//    lower segment flows down and exits the bottom edge; edge collectors add
//    the two portions (Fig. 8b).
//
// The simulator is functional: it produces the actual product, checks the
// "operands meeting at a PE share the same temporal index" invariant every
// cycle, and its cycle counts reproduce paper Table 2 exactly.
#pragma once

#include "baseline/run_result.hpp"
#include "common/types.hpp"
#include "core/row_stream.hpp"
#include "tensor/matrix.hpp"

namespace axon {

class AxonArraySim {
 public:
  explicit AxonArraySim(ArrayShape shape, SimOptions options = {});

  [[nodiscard]] ArrayShape shape() const { return shape_; }

  /// C = A * B on one tile; same shape requirements as the conventional
  /// simulator (see ConventionalArraySim::run).
  GemmRunResult run(Dataflow df, const Matrix& a, const Matrix& b);

  /// OS run with a custom horizontal stream (e.g. the im2col feeder chain).
  /// `b` must have b.rows() == a_stream.temporal_length() and its row order
  /// must match the stream's k order.
  GemmRunResult run_os_stream(RowStream& a_stream, const Matrix& b);

 private:
  /// Shared WS/IS engine: Out[t][j] = sum_i St[i][j] * X[i][t].
  GemmRunResult run_stationary(const Matrix& stationary, const Matrix& stream,
                               Dataflow df);

  ArrayShape shape_;
  SimOptions options_;
};

}  // namespace axon
