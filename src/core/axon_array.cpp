#include "core/axon_array.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "core/geometry.hpp"
#include "pe/mac.hpp"

namespace axon {

namespace {

/// Travelling operand: value + valid + the temporal index it belongs to.
/// Carrying `k` lets the simulator assert the central orchestration
/// invariant: two operands meeting at a PE always share the same k.
struct Slot {
  float value = 0.0f;
  bool valid = false;
  i64 k = -1;
};

}  // namespace

AxonArraySim::AxonArraySim(ArrayShape shape, SimOptions options)
    : shape_(shape), options_(options) {
  AXON_CHECK(shape_.valid(), "invalid array shape ", shape_.rows, "x",
             shape_.cols);
}

GemmRunResult AxonArraySim::run(Dataflow df, const Matrix& a, const Matrix& b) {
  AXON_CHECK(a.cols() == b.rows(), "GEMM inner-dim mismatch");
  switch (df) {
    case Dataflow::kOS: {
      MatrixRowStream a_stream(a);
      return run_os_stream(a_stream, b);
    }
    case Dataflow::kWS: {
      const i64 m = a.rows(), k = a.cols();
      Matrix stationary(k, m);  // A^T: S[k][m]
      for (i64 i = 0; i < m; ++i) {
        for (i64 kk = 0; kk < k; ++kk) stationary.at(kk, i) = a.at(i, kk);
      }
      GemmRunResult r = run_stationary(stationary, b, Dataflow::kWS);
      Matrix c(m, b.cols());
      for (i64 i = 0; i < m; ++i) {
        for (i64 j = 0; j < b.cols(); ++j) c.at(i, j) = r.out.at(j, i);
      }
      r.out = std::move(c);
      return r;
    }
    case Dataflow::kIS: {
      const i64 m = a.rows(), k = a.cols();
      Matrix stream(k, m);  // X[k][m] = A[m][k]
      for (i64 i = 0; i < m; ++i) {
        for (i64 kk = 0; kk < k; ++kk) stream.at(kk, i) = a.at(i, kk);
      }
      return run_stationary(b, stream, Dataflow::kIS);
    }
  }
  AXON_CHECK(false, "unreachable dataflow");
  return {};
}

GemmRunResult AxonArraySim::run_os_stream(RowStream& a_stream,
                                          const Matrix& b) {
  const i64 r = a_stream.num_rows();
  const i64 c = b.cols();
  const i64 t_len = a_stream.temporal_length();
  AXON_CHECK(b.rows() == t_len, "stream length must match B rows");
  AXON_CHECK(r > 0 && c > 0 && t_len > 0, "empty OS tile");
  AXON_CHECK(r <= shape_.rows, "OS: M=", r, " exceeds array rows ",
             shape_.rows);
  AXON_CHECK(c <= shape_.cols, "OS: N=", c, " exceeds array cols ",
             shape_.cols);

  GemmRunResult result;
  result.dataflow = Dataflow::kOS;
  result.arch = ArchType::kAxon;

  const AxonGeometry g(r, c);
  const auto n = static_cast<std::size_t>(r * c);
  std::vector<Slot> a_reg(n), b_reg(n), a_next(n), b_next(n);
  std::vector<float> acc(n, 0.0f);
  std::vector<MacUnit> mac(n, MacUnit(options_.zero_gating,
                                      options_.fp16_numerics));
  auto idx = [c](i64 i, i64 j) { return static_cast<std::size_t>(i * c + j); };

  auto feed_a = [&](i64 i, i64 t) -> Slot {
    const i64 k = t - g.skew_a(i);
    const auto v = a_stream.value(i, k);
    if (!v.has_value()) return {};
    return {*v, true, k};
  };
  auto feed_b = [&](i64 j, i64 t) -> Slot {
    const i64 k = t - g.skew_b(j);
    if (k < 0 || k >= t_len) return {};
    result.stats.add("sram.filter.loads");
    return {b.at(k, j), true, k};
  };

  // Farthest used PE (Chebyshev): top-right for wide tiles, bottom-left for
  // tall ones.
  const i64 far_i = (c >= r) ? 0 : r - 1;
  const i64 far_j = (c >= r) ? c - 1 : 0;

  const i64 compute_cycles = t_len + g.max_dist();
  bool farthest_seen = false;
  for (i64 t = 0; t < compute_cycles; ++t) {
    for (i64 i = 0; i < r; ++i) {
      const i64 sc = g.src_col(i);
      for (i64 j = 0; j < c; ++j) {
        Slot a_in;
        if (j == sc) {
          a_in = feed_a(i, t);
        } else if (j > sc) {
          a_in = a_reg[idx(i, j - 1)];
        } else {
          a_in = a_reg[idx(i, j + 1)];
        }
        const i64 sr = g.src_row(j);
        Slot b_in;
        if (i == sr) {
          b_in = feed_b(j, t);
        } else if (i > sr) {
          b_in = b_reg[idx(i - 1, j)];
        } else {
          b_in = b_reg[idx(i + 1, j)];
        }

        if (a_in.valid && b_in.valid) {
          // Central orchestration invariant: the two operands belong to the
          // same temporal step.
          AXON_DCHECK(a_in.k == b_in.k, "temporal skew at PE(", i, ",", j,
                      "): a.k=", a_in.k, " b.k=", b_in.k);
          auto& u = mac[idx(i, j)];
          acc[idx(i, j)] = u.mac(a_in.value, b_in.value, acc[idx(i, j)]);
          if (!farthest_seen && i == far_i && j == far_j) {
            result.fill_cycles = t;  // == max(r,c) - 1 by the timing proof
            farthest_seen = true;
          }
        } else {
          mac[idx(i, j)].idle();
        }
        a_next[idx(i, j)] = a_in;
        b_next[idx(i, j)] = b_in;
      }
    }
    std::swap(a_reg, a_next);
    std::swap(b_reg, b_next);
  }
  AXON_CHECK(farthest_seen, "farthest PE never received operands");

  result.drain_cycles = r;
  result.cycles = compute_cycles + result.drain_cycles;

  result.out = Matrix(r, c);
  for (i64 i = 0; i < r; ++i) {
    for (i64 j = 0; j < c; ++j) result.out.at(i, j) = acc[idx(i, j)];
  }
  result.pe_activity = Matrix(r, c);
  for (i64 i = 0; i < r; ++i) {
    for (i64 j = 0; j < c; ++j) {
      result.pe_activity.at(i, j) =
          static_cast<float>(mac[idx(i, j)].counters().total_macs());
    }
  }
  for (const auto& u : mac) result.macs += u.counters();
  result.stats.merge(a_stream.stats());
  return result;
}

GemmRunResult AxonArraySim::run_stationary(const Matrix& stationary,
                                           const Matrix& stream, Dataflow df) {
  const i64 r = stationary.rows();  // reduction dim (S_R)
  const i64 c = stationary.cols();  // output spatial dim (S_C)
  const i64 t_len = stream.cols();
  AXON_CHECK(stream.rows() == r, "stream rows must equal stationary rows");
  AXON_CHECK(r <= shape_.rows, to_string(df), ": K=", r,
             " exceeds array rows ", shape_.rows);
  AXON_CHECK(c <= shape_.cols, to_string(df), ": spatial dim ", c,
             " exceeds array cols ", shape_.cols);

  GemmRunResult result;
  result.dataflow = df;
  result.arch = ArchType::kAxon;

  const AxonGeometry g(r, c);
  const auto n = static_cast<std::size_t>(r * c);
  std::vector<Slot> x_reg(n), x_next(n), p_reg(n), p_next(n);
  std::vector<MacUnit> mac(n, MacUnit(options_.zero_gating,
                                      options_.fp16_numerics));
  auto idx = [c](i64 i, i64 j) { return static_cast<std::size_t>(i * c + j); };

  // Preload via the output interconnect (paper §4.2.1): S_R cycles.
  result.preload_cycles = r;
  result.stats.add("sram.stationary.loads", r * c);

  auto feed_x = [&](i64 i, i64 t) -> Slot {
    const i64 k = t - g.skew_a(i);
    if (k < 0 || k >= t_len) return {};
    result.stats.add("sram.stream.loads");
    return {stream.at(i, k), true, k};
  };

  // Column j splits into two bypass-and-add streams at its diagonal source
  // row s = src_row(j): rows [0, s) flow upward and exit the top edge; rows
  // [s, r) flow downward and exit the bottom edge. Edge collectors add the
  // two portions of each output element (Fig. 8b).
  Matrix out(t_len, c);
  const i64 far_i = (c >= r) ? 0 : r - 1;
  const i64 far_j = (c >= r) ? c - 1 : 0;

  const i64 stream_cycles = t_len + g.max_dist();
  bool farthest_seen = false;
  for (i64 t = 0; t < stream_cycles; ++t) {
    for (i64 i = 0; i < r; ++i) {
      const i64 sc = g.src_col(i);
      for (i64 j = 0; j < c; ++j) {
        Slot x_in;
        if (j == sc) {
          x_in = feed_x(i, t);
        } else if (j > sc) {
          x_in = x_reg[idx(i, j - 1)];
        } else {
          x_in = x_reg[idx(i, j + 1)];
        }

        const i64 s = g.src_row(j);
        Slot p_in;  // invalid == stream origin (psum starts at 0)
        if (i >= s) {  // downward stream; the diagonal PE initiates it
          if (i > s) p_in = p_reg[idx(i - 1, j)];
        } else {  // upward stream; row s-1 initiates it
          if (i < s - 1) p_in = p_reg[idx(i + 1, j)];
        }

        Slot p_out;
        if (x_in.valid) {
          AXON_DCHECK(!p_in.valid || p_in.k == x_in.k,
                      "psum/operand temporal mismatch at PE(", i, ",", j, ")");
          auto& u = mac[idx(i, j)];
          p_out = {u.mac(x_in.value, stationary.at(i, j),
                         p_in.valid ? p_in.value : 0.0f),
                   true, x_in.k};
          if (!farthest_seen && i == far_i && j == far_j) {
            result.fill_cycles = t;
            farthest_seen = true;
          }
        } else {
          mac[idx(i, j)].idle();
          p_out = p_in;  // bypass bubbles so trailing psums still exit
        }
        x_next[idx(i, j)] = x_in;
        p_next[idx(i, j)] = p_out;

        // Edge collectors.
        if (p_out.valid) {
          if (i == 0 && s > 0) {
            // Top exit carries the upper portion (rows [0, s)).
            out.at(p_out.k, j) += p_out.value;
          }
          if (i == r - 1) {
            // Bottom exit carries the diagonal + lower portion (rows [s, r)).
            out.at(p_out.k, j) += p_out.value;
          }
        }
      }
    }
    std::swap(x_reg, x_next);
    std::swap(p_reg, p_next);
  }
  AXON_CHECK(farthest_seen, "farthest PE never streamed");

  result.cycles = result.preload_cycles + stream_cycles;
  result.out = std::move(out);
  result.pe_activity = Matrix(r, c);
  for (i64 i = 0; i < r; ++i) {
    for (i64 j = 0; j < c; ++j) {
      result.pe_activity.at(i, j) =
          static_cast<float>(mac[idx(i, j)].counters().total_macs());
    }
  }
  for (const auto& u : mac) result.macs += u.counters();
  return result;
}

}  // namespace axon
