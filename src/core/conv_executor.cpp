#include "core/conv_executor.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "baseline/conventional_array.hpp"
#include "common/check.hpp"
#include "core/axon_array.hpp"
#include "core/im2col_feeder.hpp"
#include "tensor/conv_ref.hpp"
#include "tensor/im2col.hpp"

namespace axon {

namespace {

/// Flattened filters for `group` with rows permuted to the feeder's
/// reversed stream order (step k carries flattened index K-1-k), restricted
/// to filter columns [oc0, oc0+ocn).
Matrix reversed_filter_tile(const Matrix& flat, i64 oc0, i64 ocn) {
  Matrix out(flat.rows(), ocn);
  const i64 k_len = flat.rows();
  for (i64 p = 0; p < k_len; ++p) {
    for (i64 j = 0; j < ocn; ++j) {
      out.at(p, j) = flat.at(k_len - 1 - p, oc0 + j);
    }
  }
  return out;
}

}  // namespace

ConvRunResult run_conv_axon_im2col(const Tensor4& input, const Tensor4& filters,
                                   const ConvShape& conv, ArrayShape array,
                                   SimOptions options) {
  AXON_CHECK(conv.valid(), "invalid conv shape");
  AXON_CHECK(array.valid(), "invalid array shape");

  ConvRunResult result;
  result.output =
      Tensor4(input.n(), conv.out_channels, conv.out_h(), conv.out_w());

  AxonArraySim sim(array, options);
  const i64 og = conv.out_channels / conv.groups;
  // Windows map to rows and every used row must be a diagonal feeder PE
  // (the MUX chain lives on the diagonal), so window tiles hold at most
  // min(R, C) windows. Tiles never span output-row boundaries: windows in
  // different output rows are not horizontally adjacent, so the chain would
  // break there anyway (this matches model/im2col_traffic's segmentation).
  const i64 max_windows_per_tile = array.diagonal_pes();
  std::vector<std::pair<i64, i64>> segments;  // (first_window, count)
  for (i64 oy = 0; oy < conv.out_h(); ++oy) {
    for (i64 ox0 = 0; ox0 < conv.out_w(); ox0 += max_windows_per_tile) {
      const i64 wn = std::min<i64>(max_windows_per_tile, conv.out_w() - ox0);
      segments.emplace_back(i64{1} * oy * conv.out_w() + ox0, wn);
    }
  }

  for (i64 b = 0; b < input.n(); ++b) {
    for (int g = 0; g < conv.groups; ++g) {
      const Matrix flat = flatten_filters(filters, conv, g);
      for (const auto& [w0, wn] : segments) {
        for (i64 oc0 = 0; oc0 < og; oc0 += array.cols) {
          const i64 ocn = std::min<i64>(array.cols, og - oc0);
          Im2colFeeder feeder(input, conv, w0, wn, g, b);
          const Matrix b_tile = reversed_filter_tile(flat, oc0, ocn);
          GemmRunResult tile = sim.run_os_stream(feeder, b_tile);

          ++result.tiles;
          result.cycles += tile.cycles;
          result.ifmap_sram_loads += feeder.sram_loads();
          result.neighbor_forwards += feeder.neighbor_forwards();
          result.filter_sram_loads += tile.stats.get("sram.filter.loads");
          result.macs += tile.macs;

          // Scatter the window x filter tile into the output tensor.
          for (i64 wi = 0; wi < wn; ++wi) {
            const i64 w = w0 + wi;
            const i64 oy = w / conv.out_w();
            const i64 ox = w % conv.out_w();
            for (i64 j = 0; j < ocn; ++j) {
              const i64 oc = i64{1} * g * og + oc0 + j;
              result.output.at(b, oc, oy, ox) = tile.out.at(wi, j);
            }
          }
        }
      }
    }
  }
  return result;
}

ConvRunResult run_conv_sa_software_im2col(const Tensor4& input,
                                          const Tensor4& filters,
                                          const ConvShape& conv,
                                          ArrayShape array,
                                          SimOptions options) {
  AXON_CHECK(conv.valid(), "invalid conv shape");
  AXON_CHECK(array.valid(), "invalid array shape");

  ConvRunResult result;
  result.output =
      Tensor4(input.n(), conv.out_channels, conv.out_h(), conv.out_w());

  ConventionalArraySim sim(array, options);
  const i64 windows = i64{1} * conv.out_h() * conv.out_w();
  const i64 og = conv.out_channels / conv.groups;

  for (i64 b = 0; b < input.n(); ++b) {
    for (int g = 0; g < conv.groups; ++g) {
      const Matrix win = im2col_windows(input, conv, b, g);
      const Matrix flat = flatten_filters(filters, conv, g);
      for (i64 w0 = 0; w0 < windows; w0 += array.rows) {
        const i64 wn = std::min<i64>(array.rows, windows - w0);
        Matrix a_tile(wn, win.cols());
        for (i64 i = 0; i < wn; ++i) {
          for (i64 k = 0; k < win.cols(); ++k) {
            a_tile.at(i, k) = win.at(w0 + i, k);
          }
        }
        for (i64 oc0 = 0; oc0 < og; oc0 += array.cols) {
          const i64 ocn = std::min<i64>(array.cols, og - oc0);
          Matrix b_tile(flat.rows(), ocn);
          for (i64 k = 0; k < flat.rows(); ++k) {
            for (i64 j = 0; j < ocn; ++j) b_tile.at(k, j) = flat.at(k, oc0 + j);
          }
          GemmRunResult tile = sim.run(Dataflow::kOS, a_tile, b_tile);

          ++result.tiles;
          result.cycles += tile.cycles;
          result.ifmap_sram_loads += tile.stats.get("sram.ifmap.loads");
          result.filter_sram_loads += tile.stats.get("sram.filter.loads");
          result.macs += tile.macs;

          for (i64 wi = 0; wi < wn; ++wi) {
            const i64 w = w0 + wi;
            const i64 oy = w / conv.out_w();
            const i64 ox = w % conv.out_w();
            for (i64 j = 0; j < ocn; ++j) {
              const i64 oc = i64{1} * g * og + oc0 + j;
              result.output.at(b, oc, oy, ox) = tile.out.at(wi, j);
            }
          }
        }
      }
    }
  }
  return result;
}

}  // namespace axon
