// On-chip im2col feeder (paper §3.2, Fig. 3b): each diagonal feeder PE owns
// a 2-to-1 MUX that selects between the IFMAP SRAM buffer and the value the
// *previous* feeder PE on the diagonal emitted one stride earlier.
//
// Window streams are emitted in the paper's order — the flattened
// (channel, kernel_row, kernel_col) window *reversed* — because that makes
// the sharing causal: for stride 1,
//     window_d[p] == window_{d-1}[p - 1]        (p mod kw != 0)
// so the MUX control signal is 0 (load from SRAM) for 1 cycle and 1 (take
// from the neighbour) for the remaining kw - 1 cycles of every kernel-row
// period, exactly as described in the paper. Stride s < kw generalizes to
// an s-deep neighbour delay with s SRAM loads per kernel row.
//
// The feeder *verifies* the reuse invariant on every forwarded element
// (forwarded value == what the neighbour emitted s cycles earlier) — this is
// the functional proof that a 2-to-1 MUX suffices.
#pragma once

#include "common/types.hpp"
#include "core/row_stream.hpp"
#include "tensor/tensor4.hpp"

namespace axon {

class Im2colFeeder final : public RowStream {
 public:
  /// Feeds `num_rows` consecutive conv windows starting at `first_window`
  /// (row-major over the output map) for channel `group` of `input`.
  /// `input` must outlive the feeder.
  Im2colFeeder(const Tensor4& input, const ConvShape& conv, i64 first_window,
               i64 num_rows, int group = 0, i64 batch = 0);

  [[nodiscard]] i64 num_rows() const override { return num_rows_; }
  [[nodiscard]] i64 temporal_length() const override;
  std::optional<float> value(i64 row, i64 k) override;
  [[nodiscard]] const Stats& stats() const override { return stats_; }

  /// IFMAP elements pulled from the SRAM buffer (MUX select = 0 cycles).
  [[nodiscard]] i64 sram_loads() const { return sram_loads_; }
  /// Elements taken from the adjacent feeder PE (MUX select = 1 cycles).
  [[nodiscard]] i64 neighbor_forwards() const { return neighbor_forwards_; }

  /// The window element this feeder row emits at step k (reversed flattened
  /// order); exposed so tests can compare against software im2col.
  [[nodiscard]] float emitted(i64 row, i64 k) const;

 private:
  /// True when row `row`'s step-k element must come from SRAM: first window
  /// of the chain, window not horizontally adjacent to its predecessor
  /// (output-row boundary), or a position the stride slides past.
  [[nodiscard]] bool needs_sram(i64 row, i64 k) const;

  const Tensor4& input_;
  ConvShape conv_;
  i64 first_window_;
  i64 num_rows_;
  int group_;
  i64 batch_;
  i64 window_len_;  ///< K = (Cin/groups) * kh * kw

  Stats stats_;
  i64 sram_loads_ = 0;
  i64 neighbor_forwards_ = 0;
};

}  // namespace axon
