// Scaling study (paper §2.2 Fig. 2 + §5.2.1 discussion): runtime of a fixed
// workload set as the array scales up (one monolithic array) and scales out
// (multiple partitions), for SA, CMSA and Axon. Shows where Amdahl's law
// bites: temporal-dimension-bound workloads stop improving.
#include "bench/bench_common.hpp"
#include "model/runtime_model.hpp"
#include "model/tile_scheduler.hpp"
#include "runner/experiments.hpp"

namespace axon {
namespace {

void scale_up_table(std::ostream& os) {
  const std::vector<int> sizes{16, 32, 64, 128, 256};
  Table t({"workload", "arch", "x16", "x32", "x64", "x128", "x256"});
  for (const char* name : {"TF0", "NCF0", "DB0", "GEMM_1"}) {
    const GemmWorkload w = find_workload(table3_workloads(), name);
    for (ArchType arch : {ArchType::kConventionalSA, ArchType::kCMSA,
                          ArchType::kAxon}) {
      auto& row = t.row().cell(w.name).cell(to_string(arch));
      for (int s : sizes) {
        const i64 cycles =
            pipelined_runtime(arch, Dataflow::kOS, w.shape, {s, s}).cycles;
        row.cell(static_cast<double>(cycles) / 1e3, 1);
      }
    }
  }
  t.print(os, "Scale-up runtime (kcycles, pipelined OS) — DB0 is "
              "temporal-bound and barely improves");
}

void scale_out_table(std::ostream& os) {
  // Fixed 64x64 arrays, growing partition grids.
  const GemmWorkload w = find_workload(table3_workloads(), "GPT3_1_matmul1");
  Table t({"partitions", "SA_kcycles", "Axon_kcycles", "speedup"});
  for (int p : {1, 2, 4, 8}) {
    const i64 sa = scale_out_runtime(ArchType::kConventionalSA, Dataflow::kOS,
                                     w.shape, {64, 64}, p, p)
                       .cycles;
    const i64 ax = scale_out_runtime(ArchType::kAxon, Dataflow::kOS, w.shape,
                                     {64, 64}, p, p)
                       .cycles;
    t.row()
        .cell(std::to_string(p) + "x" + std::to_string(p))
        .cell(static_cast<double>(sa) / 1e3, 1)
        .cell(static_cast<double>(ax) / 1e3, 1)
        .cell(static_cast<double>(sa) / static_cast<double>(ax), 3);
  }
  t.print(os, "Scale-out (GPT3 matmul1 on 64x64 partitions) — the "
              "orchestration gain carries over linearly (paper §5)");
}

void memory_system_table(std::ostream& os) {
  // End-to-end with the SRAM tile scheduler: compute vs transfer bound.
  const DramModel dram;
  Table t({"sram_kwords", "order", "a_passes", "b_passes", "dram_MB",
           "compute_kcyc", "transfer_kcyc", "total_kcyc"});
  const GemmShape g{2048, 1024, 2048};
  for (i64 kwords : {16, 64, 256, 1024, 4096}) {
    SramConfig sram;
    sram.ifmap_words = kwords * 1024;
    sram.filter_words = kwords * 1024;
    const TilePlan p =
        plan_gemm(ArchType::kAxon, Dataflow::kOS, g, {128, 128}, sram, dram);
    t.row()
        .cell(kwords)
        .cell(to_string(p.order))
        .cell(p.a_passes)
        .cell(p.b_passes)
        .cell(static_cast<double>(p.dram_bytes()) / (1024.0 * 1024.0), 2)
        .cell(static_cast<double>(p.compute_cycles) / 1e3, 1)
        .cell(static_cast<double>(p.transfer_cycles) / 1e3, 1)
        .cell(static_cast<double>(p.total_cycles) / 1e3, 1);
  }
  t.print(os, "SRAM capacity sweep (GEMM 2048x1024x2048 on 128x128 Axon): "
              "small scratchpads force refetch and become transfer-bound");
}

void print_tables(std::ostream& os) {
  scale_up_table(os);
  os << "\n";
  scale_out_table(os);
  os << "\n";
  memory_system_table(os);
}

void BM_TileScheduler(benchmark::State& state) {
  const DramModel dram;
  const GemmShape g{2048, 1024, 2048};
  for (auto _ : state) {
    auto p = plan_gemm(ArchType::kAxon, Dataflow::kOS, g, {128, 128}, {}, dram);
    benchmark::DoNotOptimize(p.total_cycles);
  }
}
BENCHMARK(BM_TileScheduler);

}  // namespace
}  // namespace axon

int main(int argc, char** argv) {
  return axon::bench::run(argc, argv,
                          [](std::ostream& os) { axon::print_tables(os); });
}
