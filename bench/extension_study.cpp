// Extension studies beyond the paper:
//  (1) two-level im2col reuse — the paper's MUX chain exploits horizontally
//      adjacent windows; adding a per-feeder row buffer also reuses the
//      kh - stride_h kernel rows shared between vertically adjacent
//      windows, pushing 3x3 stride-1 reuse from ~2/3 to ~8/9;
//  (2) array aspect-ratio search — at a fixed PE budget, Axon's max(R, C)
//      fill term changes which array shape is optimal per workload.
#include "bench/bench_common.hpp"
#include "model/im2col_traffic.hpp"
#include "model/runtime_model.hpp"
#include "runner/experiments.hpp"
#include "workloads/convnets.hpp"

namespace axon {
namespace {

void two_level_table(std::ostream& os) {
  Table t({"layer", "kernel", "stride", "chain_reduction_%",
           "two_level_reduction_%"});
  for (const ConvWorkload& w : fig11_conv_shapes()) {
    t.row()
        .cell(w.name)
        .cell(std::to_string(w.shape.kernel_h) + "x" +
              std::to_string(w.shape.kernel_w))
        .cell(w.shape.stride_h)
        .cell(memory_access_reduction_pct(w.shape, Im2colMode::kAxonOnChip,
                                          128),
              2)
        .cell(memory_access_reduction_pct(w.shape, Im2colMode::kAxonTwoLevel,
                                          128),
              2);
  }
  t.print(os,
          "Extension (1) — two-level im2col reuse vs the paper's chain "
          "(128 feeders); costs one row buffer per feeder PE");
}

void shape_search_table(std::ostream& os) {
  Table t({"workload", "SA_best_shape", "SA_kcycles", "Axon_best_shape",
           "Axon_kcycles", "speedup"});
  for (const char* name :
       {"TF0", "GNMT1", "NCF0", "DB0", "Resnet50_0_conv2d", "GEMM_2"}) {
    const GemmWorkload w = find_workload(table3_workloads(), name);
    const ShapeSearchResult sa =
        best_array_shape(ArchType::kConventionalSA, w.shape, 64 * 64);
    const ShapeSearchResult ax =
        best_array_shape(ArchType::kAxon, w.shape, 64 * 64);
    t.row()
        .cell(w.name)
        .cell(std::to_string(sa.shape.rows) + "x" +
              std::to_string(sa.shape.cols))
        .cell(static_cast<double>(sa.runtime.cycles) / 1e3, 1)
        .cell(std::to_string(ax.shape.rows) + "x" +
              std::to_string(ax.shape.cols))
        .cell(static_cast<double>(ax.runtime.cycles) / 1e3, 1)
        .cell(static_cast<double>(sa.runtime.cycles) /
                  static_cast<double>(ax.runtime.cycles),
              3);
  }
  t.print(os,
          "Extension (2) — best array shape at a 4096-PE budget "
          "(best dataflow, strict scale-up)");
}

void print_tables(std::ostream& os) {
  two_level_table(os);
  os << "\n";
  shape_search_table(os);
}

void BM_ShapeSearch(benchmark::State& state) {
  const GemmShape g{31999, 84, 1024};
  for (auto _ : state) {
    auto r = best_array_shape(ArchType::kAxon, g, 4096);
    benchmark::DoNotOptimize(r.runtime.cycles);
  }
}
BENCHMARK(BM_ShapeSearch);

}  // namespace
}  // namespace axon

int main(int argc, char** argv) {
  return axon::bench::run(argc, argv,
                          [](std::ostream& os) { axon::print_tables(os); });
}
