// Ablation study of the design choices DESIGN.md calls out:
//  (a) strict vs pipelined tile accounting (how much of Fig. 12's headline
//      comes from overlapping drain with fill),
//  (b) diagonal feeding alone vs diagonal feeding + im2col reuse chain
//      (runtime vs traffic contributions are orthogonal),
//  (c) square vs rectangular arrays (where Axon's advantage shrinks).
#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "core/conv_executor.hpp"
#include "model/im2col_traffic.hpp"
#include "model/runtime_model.hpp"
#include "runner/experiments.hpp"
#include "tensor/tensor4.hpp"

namespace axon {
namespace {

void ablation_tiling(std::ostream& os) {
  Table t({"workload", "strict_speedup", "pipelined_speedup"});
  const ArrayShape a{128, 128};
  for (const GemmWorkload& w : table3_workloads()) {
    const double strict =
        static_cast<double>(
            scale_up_runtime(ArchType::kConventionalSA, Dataflow::kOS, w.shape,
                             a)
                .cycles) /
        static_cast<double>(
            scale_up_runtime(ArchType::kAxon, Dataflow::kOS, w.shape, a)
                .cycles);
    const double pipe =
        static_cast<double>(pipelined_runtime(ArchType::kConventionalSA,
                                              Dataflow::kOS, w.shape, a)
                                .cycles) /
        static_cast<double>(
            pipelined_runtime(ArchType::kAxon, Dataflow::kOS, w.shape, a)
                .cycles);
    t.row().cell(w.name).cell(strict, 3).cell(pipe, 3);
  }
  t.print(os,
          "Ablation (a) — strict eq.(2) vs pipelined tiles @128x128 "
          "(strict caps square speedup at 1.5x)");
}

void ablation_im2col(std::ostream& os) {
  // Same conv layer executed four ways on 16x16.
  const ConvShape c = make_conv(4, 20, 8, 3, 1, 1);
  Rng rng(8);
  const Tensor4 in = random_tensor(1, 4, 20, 20, rng);
  const Tensor4 f = random_tensor(8, 4, 3, 3, rng);
  const ArrayShape a{16, 16};

  const ConvRunResult sa = run_conv_sa_software_im2col(in, f, c, a);
  const ConvRunResult ax = run_conv_axon_im2col(in, f, c, a);

  Table t({"config", "cycles", "ifmap_sram_loads", "notes"});
  t.row()
      .cell("SA + software im2col")
      .cell(sa.cycles)
      .cell(sa.ifmap_sram_loads)
      .cell("baseline");
  t.row()
      .cell("Axon + im2col chain")
      .cell(ax.cycles)
      .cell(ax.ifmap_sram_loads)
      .cell("both contributions");
  // Diagonal feeding alone: Axon runtime but software-level traffic
  // (feeder chain disabled == every element from SRAM).
  t.row()
      .cell("Axon, chain disabled")
      .cell(ax.cycles)
      .cell(sa.ifmap_sram_loads)
      .cell("runtime gain only");
  // Chain on a conventional SA is not possible (skewed feeding) — the
  // paper's point: the reuse chain *requires* the unskewed diagonal feed.
  t.row()
      .cell("SA + chain")
      .cell(sa.cycles)
      .cell("n/a")
      .cell("impossible: skewed streams break the MUX forwarding");
  t.print(os, "Ablation (b) — runtime vs traffic contributions (conv "
              "4ch 20x20, 3x3, on 16x16)");
}

void ablation_rectangular(std::ostream& os) {
  Table t({"array", "f1_SA", "f2_Axon", "fill_speedup"});
  for (const ArrayShape& a :
       {ArrayShape{64, 64}, ArrayShape{32, 128}, ArrayShape{16, 256},
        ArrayShape{8, 512}, ArrayShape{128, 32}, ArrayShape{256, 16}}) {
    const i64 f1 = fill_latency(ArchType::kConventionalSA, a);
    const i64 f2 = fill_latency(ArchType::kAxon, a);
    t.row()
        .cell(std::to_string(a.rows) + "x" + std::to_string(a.cols))
        .cell(f1)
        .cell(f2)
        .cell(static_cast<double>(f1) / static_cast<double>(f2), 3);
  }
  t.print(os,
          "Ablation (c) — aspect ratio: the fill gain is 2x on squares and "
          "shrinks toward 1x as the array elongates (always > 1, §3.1)");
}

void print_tables(std::ostream& os) {
  ablation_tiling(os);
  os << "\n";
  ablation_im2col(os);
  os << "\n";
  ablation_rectangular(os);
}

void BM_ConvAxonExecutor(benchmark::State& state) {
  const ConvShape c = make_conv(4, 20, 8, 3, 1, 1);
  Rng rng(9);
  const Tensor4 in = random_tensor(1, 4, 20, 20, rng);
  const Tensor4 f = random_tensor(8, 4, 3, 3, rng);
  for (auto _ : state) {
    auto r = run_conv_axon_im2col(in, f, c, {16, 16});
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_ConvAxonExecutor);

}  // namespace
}  // namespace axon

int main(int argc, char** argv) {
  return axon::bench::run(argc, argv,
                          [](std::ostream& os) { axon::print_tables(os); });
}
