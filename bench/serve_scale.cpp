// Production-trace-size serving study: the serve/scenarios serve_scale
// scenario (bursty mixed-SLO decode+prefill, EDF + continuous admission +
// deadline-aware chunking, ready queues thousands of batches deep) run at
// 10^5..10^6 request counts.
//
// Two claims, both enforced at runtime:
//   1. Determinism: the indexed serve core (serve/sched_index kIndexed +
//      the completion calendar) produces bit-identical ServeReport.records
//      to the seed's linear-scan scheduler (kScanReference) on the same
//      trace — the refactor changed wall-clock complexity, not behaviour.
//   2. Complexity: at the canonical 200k-request size the indexed core is
//      >= 10x faster in host wall-clock than the queue-depth-quadratic
//      scan path (the gap widens with size; the scaling table shows the
//      indexed path staying near-linear in requests).
//
// Modes:
//   bench_serve_scale            full study: scaling sweep to 200k + the
//                                10x comparison at 200k (the slow side is
//                                the quadratic path, ~minutes of CPU)
//   bench_serve_scale --smoke    CI-sized: sweep to 100k, comparison at
//                                40k with a 1.5x catastrophic-regression
//                                floor (runner wall-clock is noisy; the
//                                measured ratio there is ~5x)
//   --requests N                 override the full-mode sweep top size
//                                (e.g. 10000000 for a ten-million-request
//                                indexed sweep; the quadratic comparison
//                                stays capped at the canonical 200k)
//   --max-rss-mb N               fail (exit 1) if the process peak RSS
//                                exceeds N MB after the sweep — CI's
//                                memory-ceiling gate for the streaming
//                                request pipeline (getrusage, so it works
//                                on runners without /usr/bin/time)
//   --trace PATH                 instead of the study, run a small (3k
//                                request) variant of the scenario with a
//                                Chrome-trace TraceSink attached and the
//                                serve-loop self-profiler on; writes the
//                                timeline JSON to PATH (chrome://tracing /
//                                ui.perfetto.dev). CI validates this
//                                artifact with scripts/validate_trace.py.
//   --metrics-json PATH          with or without --trace: same small run,
//                                dumps the obs/metrics registry snapshot
//
// CI's gated simulated-cycle metrics for this scenario come from
// bench_serve_throughput --smoke --json (same canonical trace, same
// numbers); this binary is the wall-clock study and the cross-check.
#include <sys/resource.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/pool.hpp"
#include "serve/scenarios.hpp"

using namespace axon;
using namespace axon::serve;

namespace {

/// Process peak RSS in MB (getrusage; ru_maxrss is KB on Linux). A
/// high-water mark, so per-sweep-point readings are cumulative — the
/// largest point dominates, which is exactly what the ceiling gates.
double peak_rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

/// Streams the canonical trace straight from the generator — the whole
/// point of the 10^7 sweep: memory holds one batch of columns per
/// *retired* request plus O(clients) generator state, never a
/// materialized request deque.
ServeReport run_scale(int requests, ReadyQueueImpl impl) {
  BurstyTraceSource source = serve_scale_source(requests);
  AcceleratorPool pool(serve_scale_pool_config(impl));
  return pool.serve(source);
}

/// Record diff via RequestRecord::operator== (the all-fields primitive);
/// prints the first mismatch.
bool records_identical(const ServeReport& a, const ServeReport& b) {
  if (a.records.size() != b.records.size()) {
    std::cerr << "record count mismatch: " << a.records.size() << " vs "
              << b.records.size() << "\n";
    return false;
  }
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (a.records[i] != b.records[i]) {
      std::cerr << "record " << i << " (id " << a.records[i].id
                << ") differs\n";
      return false;
    }
  }
  return true;
}

void scaling_sweep(const std::vector<int>& sizes) {
  Table t({"requests", "batches", "chunks", "makespan", "slo_%", "wall_s",
           "us/req", "rss_mb"});
  for (const int n : sizes) {
    const ServeReport r = run_scale(n, ReadyQueueImpl::kIndexed);
    t.row()
        .cell(n)
        .cell(r.total_batches)
        .cell(r.total_chunks)
        .cell(r.makespan_cycles)
        .cell(100.0 * r.slo_attainment(), 1)
        .cell(r.wall_seconds, 3)
        .cell(1e6 * r.wall_seconds / static_cast<double>(n), 3)
        .cell(peak_rss_mb(), 1);
  }
  t.print(std::cout,
          "Indexed serve core scaling (EDF + continuous admission + "
          "deadline-aware chunks, bursty mixed-SLO)");
  std::cout << "us/req holding near-constant = near-linear in trace size; "
               "rss_mb is the process high-water mark after each point.\n\n";
}

int compare_impls(int requests, double min_speedup) {
  std::cout << "ready-queue implementation comparison at " << requests
            << " requests (same trace, same config):\n";
  const ServeReport indexed = run_scale(requests, ReadyQueueImpl::kIndexed);
  const ServeReport scan = run_scale(requests, ReadyQueueImpl::kScanReference);

  Table t({"ready_queue", "makespan", "slo_%", "preempts", "wall_s"});
  for (const auto* r : {&indexed, &scan}) {
    t.row()
        .cell(r == &indexed ? to_string(ReadyQueueImpl::kIndexed)
                            : to_string(ReadyQueueImpl::kScanReference))
        .cell(r->makespan_cycles)
        .cell(100.0 * r->slo_attainment(), 1)
        .cell(r->preemptions)
        .cell(r->wall_seconds, 3);
  }
  t.print(std::cout, "");

  if (!records_identical(indexed, scan)) {
    std::cerr << "FAIL: indexed and scan-reference schedules diverge — the "
                 "index is not behaviour-preserving\n";
    return 1;
  }
  std::cout << "records: bit-identical across implementations ("
            << indexed.records.size() << " requests)\n";

  const double speedup = scan.wall_seconds / indexed.wall_seconds;
  std::cout << "indexed speedup over quadratic scan path: "
            << fmt_double(speedup, 1) << "x\n";
  if (speedup < min_speedup) {
    std::cerr << "FAIL: expected >= " << fmt_double(min_speedup, 1)
              << "x at this size\n";
    return 1;
  }
  return 0;
}

/// Observability mode: a small (3k request) variant of the scale scenario
/// with the trace sink and metrics registry attached and the serve-loop
/// self-profiler on. Small because a trace is ~one JSON object per event —
/// at 3k requests the timeline is a few MB and loads instantly in the
/// viewers; the full 200k study would be a gigabyte of JSON nobody can
/// open. Same config and trace family as serve_trace_test, so the artifact
/// CI uploads is the exact timeline the determinism test byte-diffs.
int run_traced(const std::string& trace_path,
               const std::string& metrics_path) {
  constexpr int kTracedRequests = 3000;
  // Same pool config as CI's gated serve_scale_200k row, resolved by name
  // from the scenario registry so the two can never drift.
  PoolConfig cfg = scenario("serve_scale_200k").config;
  cfg.self_profile = true;
  AcceleratorPool pool(cfg);
  obs::TraceSink trace;
  obs::MetricsRegistry registry;
  obs::MetricsProbe metrics(&registry);
  if (!trace_path.empty()) pool.add_probe(&trace);
  if (!metrics_path.empty()) pool.add_probe(&metrics);
  RequestQueue traced_queue = serve_scale_trace(kTracedRequests);
  const ServeReport r = pool.serve(traced_queue);
  std::cout << "serve_scale traced run (" << kTracedRequests
            << " requests):\n"
            << r.summary();
  if (!trace_path.empty()) {
    if (!trace.write_file(trace_path)) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 1;
    }
    std::cout << "\nwrote " << trace_path << " (" << trace.num_events()
              << " events; load in chrome://tracing or ui.perfetto.dev)\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    if (!os) {
      std::cerr << "cannot write " << metrics_path << "\n";
      return 1;
    }
    registry.write_json(os);
    std::cout << (trace_path.empty() ? "\n" : "") << "wrote " << metrics_path
              << "\n";
  }
  return 0;
}

/// Enforces the committed memory ceiling after the sweep; 0 disables.
int check_rss_ceiling(double max_rss_mb) {
  if (max_rss_mb <= 0.0) return 0;
  const double rss = peak_rss_mb();
  if (rss > max_rss_mb) {
    std::cerr << "FAIL: peak RSS " << fmt_double(rss, 1) << " MB exceeds the "
              << fmt_double(max_rss_mb, 1) << " MB ceiling — the streaming "
              << "pipeline regressed to materializing per-request state\n";
    return 1;
  }
  std::cout << "peak RSS " << fmt_double(rss, 1) << " MB (ceiling "
            << fmt_double(max_rss_mb, 1) << " MB)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int full = kServeScaleRequests;
  double max_rss_mb = 0.0;
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--requests" && i + 1 < argc) {
      full = std::atoi(argv[++i]);
      if (full < 8) {
        std::cerr << "--requests needs a sensible size\n";
        return 2;
      }
    } else if (arg == "--max-rss-mb" && i + 1 < argc) {
      max_rss_mb = std::atof(argv[++i]);
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::cerr << "usage: bench_serve_scale [--smoke] [--requests N] "
                   "[--max-rss-mb N] [--trace PATH] [--metrics-json PATH]\n";
      return 2;
    }
  }
  if (!trace_path.empty() || !metrics_path.empty()) {
    return run_traced(trace_path, metrics_path);
  }

  if (smoke) {
    scaling_sweep({full / 8, full / 4, full / 2});
    // Smoke runs on shared CI runners where wall-clock is noisy, so its
    // bar is a catastrophic-regression floor, not the perf claim: the
    // ratio measures ~5x at this size, and both sides run back-to-back
    // in one process, so landing under 1.5x means the index lost its
    // complexity edge, not that the runner had a bad day. The >= 10x
    // claim belongs to the full run at the canonical size.
    const int rc = compare_impls(full / 5, 1.5);
    if (rc != 0) return rc;
    return check_rss_ceiling(max_rss_mb);
  }
  scaling_sweep({full / 8, full / 4, full / 2, full});
  // The comparison caps at the canonical size: the scan side is O(n^2),
  // so letting a --requests 10000000 sweep drag it along would turn a
  // seconds-long indexed study into hours of quadratic baseline for no
  // extra information — the 10x claim is defined at kServeScaleRequests.
  const int rc = compare_impls(std::min(full, kServeScaleRequests), 10.0);
  if (rc != 0) return rc;
  return check_rss_ceiling(max_rss_mb);
}
