// Reproduces paper Fig. 12: runtime of Axon normalized to conventional SA
// for the Table 3 GEMM/Conv workloads at array sizes 32..256 (scale-up,
// OS dataflow, pipelined tiles — see DESIGN.md §4).
// Paper headline: avg 1.47x at 64x64, 1.76x at 256x256, up to 2x.
#include "bench/bench_common.hpp"
#include "model/runtime_model.hpp"
#include "runner/experiments.hpp"

namespace axon {
namespace {

void print_tables(std::ostream& os) {
  // Echo Table 3 first.
  Table t3({"workload", "M", "K", "N"});
  for (const GemmWorkload& w : table3_workloads()) {
    t3.row().cell(w.name).cell(w.shape.M).cell(w.shape.K).cell(w.shape.N);
  }
  t3.print(os, "Table 3 — workload dimensions");
  os << "\n";

  const std::vector<int> sizes{32, 64, 128, 256};
  Table t({"workload", "x32", "x64", "x128", "x256"});
  std::vector<std::vector<SpeedupRow>> per_size;
  per_size.reserve(sizes.size());
  for (int s : sizes) per_size.push_back(fig12_speedups(s));
  for (std::size_t wi = 0; wi < per_size[0].size(); ++wi) {
    auto& row = t.row().cell(per_size[0][wi].workload);
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      row.cell(per_size[si][wi].speedup, 3);
    }
  }
  t.print(os, "Fig. 12 — Axon speedup over SA (runtime normalized to SA)");

  Table avg({"array", "mean_speedup", "geomean", "paper_reported"});
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const char* paper = sizes[si] == 64    ? "1.47"
                        : sizes[si] == 256 ? "1.76"
                                           : "-";
    avg.row()
        .cell(std::to_string(sizes[si]) + "x" + std::to_string(sizes[si]))
        .cell(mean_speedup(per_size[si]), 3)
        .cell(geomean_speedup(per_size[si]), 3)
        .cell(paper);
  }
  os << "\n";
  avg.print(os, "Fig. 12 — average speedups");
}

void BM_Fig12Sweep(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = fig12_speedups(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_Fig12Sweep)->Arg(64)->Arg(256);

}  // namespace
}  // namespace axon

int main(int argc, char** argv) {
  return axon::bench::run(argc, argv,
                          [](std::ostream& os) { axon::print_tables(os); });
}
