// Reproduces paper Fig. 15: silicon area and power of Axon (with im2col
// support) vs Sauria's on-the-fly-im2col SA across array sizes, at both
// TSMC 45nm (a) and ASAP7 (b). Paper: Axon averages 3.93% less area and
// 4.5% less power because a 2-to-1 MUX per diagonal PE replaces Sauria's
// per-column feeder registers + counters.
#include "bench/bench_common.hpp"
#include "hw/area_power.hpp"
#include "runner/experiments.hpp"

namespace axon {
namespace {

void print_node(std::ostream& os, TechNode node) {
  const std::vector<int> sizes{8, 16, 32, 64, 128};
  const auto rows = fig15_area_power(node, sizes);
  Table t({"array", "axon_area_mm2", "sauria_area_mm2", "area_delta_%",
           "axon_power_mW", "sauria_power_mW", "power_delta_%"});
  double area_sum = 0.0, power_sum = 0.0;
  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    const HwRow& ax = rows[i];
    const HwRow& sa = rows[i + 1];
    const double da = 100.0 * (1.0 - ax.area_mm2 / sa.area_mm2);
    const double dp = 100.0 * (1.0 - ax.power_mw / sa.power_mw);
    area_sum += da;
    power_sum += dp;
    t.row()
        .cell(std::to_string(ax.array.rows) + "x" +
              std::to_string(ax.array.cols))
        .cell(ax.area_mm2, 4)
        .cell(sa.area_mm2, 4)
        .cell(da, 2)
        .cell(ax.power_mw, 2)
        .cell(sa.power_mw, 2)
        .cell(dp, 2);
  }
  t.print(os, "Fig. 15 — Axon vs Sauria at " + to_string(node));
  const double n = static_cast<double>(sizes.size());
  os << "average: Axon " << fmt_double(area_sum / n, 2) << "% less area, "
     << fmt_double(power_sum / n, 2)
     << "% less power (paper: 3.93% / 4.5%)\n";
}

void print_tables(std::ostream& os) {
  print_node(os, TechNode::kTsmc45);
  os << "\n";
  print_node(os, TechNode::kAsap7);
}

void BM_Fig15Sweep(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = fig15_area_power(TechNode::kAsap7, {8, 16, 32, 64, 128});
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_Fig15Sweep);

}  // namespace
}  // namespace axon

int main(int argc, char** argv) {
  return axon::bench::run(argc, argv,
                          [](std::ostream& os) { axon::print_tables(os); });
}
