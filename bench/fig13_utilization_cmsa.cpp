// Reproduces paper Fig. 13: PE utilization-rate improvement over the
// conventional SA for CMSA and Axon on a 128x128 array. Paper: Axon
// outperforms CMSA by ~27% on average; GPT-3 matmul1/addmm/lmhead stay
// small because their baseline utilization is already ~91%.
#include "bench/bench_common.hpp"
#include "runner/experiments.hpp"

namespace axon {
namespace {

void print_tables(std::ostream& os) {
  const auto rows = fig13_utilization(128);
  Table t({"workload", "UR_SA_%", "UR_CMSA_%", "UR_Axon_%", "CMSA_imp_pp",
           "Axon_imp_pp"});
  double cmsa_sum = 0.0, axon_sum = 0.0;
  for (const UtilizationRow& r : rows) {
    t.row()
        .cell(r.workload)
        .cell(100.0 * r.ur_sa, 2)
        .cell(100.0 * r.ur_cmsa, 2)
        .cell(100.0 * r.ur_axon, 2)
        .cell(r.cmsa_improvement_pct, 2)
        .cell(r.axon_improvement_pct, 2);
    cmsa_sum += r.cmsa_improvement_pct;
    axon_sum += r.axon_improvement_pct;
  }
  t.print(os,
          "Fig. 13 — PE utilization-rate improvement over SA (128x128, "
          "percentage points)");
  os << "average improvement: CMSA " << fmt_double(cmsa_sum / rows.size(), 2)
     << " pp, Axon " << fmt_double(axon_sum / rows.size(), 2)
     << " pp (paper: Axon outperforms CMSA by ~27% on average)\n";
}

void BM_UtilizationSweep(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = fig13_utilization(128);
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_UtilizationSweep);

}  // namespace
}  // namespace axon

int main(int argc, char** argv) {
  return axon::bench::run(argc, argv,
                          [](std::ostream& os) { axon::print_tables(os); });
}
