// Reproduces the §5.2.1 energy experiment: DRAM traffic (conv layers only)
// for ResNet50 and YOLOv3 with software im2col vs Axon's on-chip im2col,
// the LPDDR3 energy saved (120 pJ/byte), and the bandwidth-roofline
// speedup. Paper: ResNet50 261.2 -> 153.5 MB (12 mJ), YOLOv3 2540 -> 1117
// MB (170 mJ), ~1.25x speedup at 6.4 GB/s.
#include <algorithm>
#include <tuple>

#include "bench/bench_common.hpp"
#include "model/im2col_traffic.hpp"
#include "runner/experiments.hpp"

namespace axon {
namespace {

void print_tables(std::ostream& os) {
  // The 16x16 array is the implemented chip the paper's numbers refer to.
  const EnergyRow resnet = energy_row("ResNet50", resnet50_conv_layers(), 16,
                                      261.2, 153.5, 12.0);
  const EnergyRow yolo =
      energy_row("YOLOv3", yolov3_conv_layers(), 16, 2540.0, 1117.0, 170.0);

  Table t({"network", "base_MB", "axon_MB", "reduction_%", "saved_mJ",
           "roofline_speedup", "paper_base_MB", "paper_axon_MB",
           "paper_saved_mJ"});
  for (const EnergyRow& r : {resnet, yolo}) {
    t.row()
        .cell(r.network)
        .cell(r.baseline_mb_exact, 1)
        .cell(r.axon_mb_exact, 1)
        .cell(100.0 * (1.0 - r.axon_mb_exact / r.baseline_mb_exact), 1)
        .cell(r.saved_mj, 2)
        .cell(r.roofline_speedup, 3)
        .cell(r.paper_baseline_mb, 1)
        .cell(r.paper_axon_mb, 1)
        .cell(r.paper_saved_mj, 1);
  }
  t.print(os,
          "§5.2.1 — conv-layer DRAM traffic & inference energy "
          "(LPDDR3 @ 120 pJ/B, 6.4 GB/s; absolute MB differ from the paper's "
          "testbed, ratios hold — see EXPERIMENTS.md)");

  // Per-layer detail for the five heaviest layers of each network.
  for (const auto& [name, layers] :
       {std::pair{std::string("ResNet50"), resnet50_conv_layers()},
        std::pair{std::string("YOLOv3"), yolov3_conv_layers()}}) {
    Table d({"layer", "repeats", "sw_MB", "axon_MB", "reduction_%"});
    std::vector<std::tuple<double, std::string, double, double, int>> heavy;
    for (const ConvWorkload& l : layers) {
      const double sw = static_cast<double>(
                            conv_dram_traffic(l.shape, Im2colMode::kSoftware)
                                .total() *
                            l.repeats) /
                        (1024.0 * 1024.0);
      const double ax = static_cast<double>(
                            conv_dram_traffic(l.shape, Im2colMode::kAxonOnChip)
                                .total() *
                            l.repeats) /
                        (1024.0 * 1024.0);
      heavy.emplace_back(sw, l.name, ax, 100.0 * (1.0 - ax / sw), l.repeats);
    }
    std::sort(heavy.rbegin(), heavy.rend());
    for (std::size_t i = 0; i < 5 && i < heavy.size(); ++i) {
      const auto& [sw, lname, ax, red, rep] = heavy[i];
      d.row().cell(lname).cell(rep).cell(sw, 2).cell(ax, 2).cell(red, 1);
    }
    os << "\n";
    d.print(os, name + " — heaviest conv layers by DRAM traffic");
  }
}

void BM_NetworkTrafficModel(benchmark::State& state) {
  const auto layers = yolov3_conv_layers();
  for (auto _ : state) {
    i64 total = 0;
    for (const auto& l : layers) {
      total += conv_dram_traffic(l.shape, Im2colMode::kAxonOnChip).total() *
               l.repeats;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_NetworkTrafficModel);

}  // namespace
}  // namespace axon

int main(int argc, char** argv) {
  return axon::bench::run(argc, argv,
                          [](std::ostream& os) { axon::print_tables(os); });
}
