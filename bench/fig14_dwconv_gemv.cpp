// Reproduces paper Fig. 14: Axon speedup over SA for depthwise convolution
// (MobileNet + conformer) and GEMV — the low-arithmetic-intensity,
// fill-dominated cases. Paper: avg 1.8x, up to 2x.
#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "core/axon_array.hpp"
#include "baseline/conventional_array.hpp"
#include "runner/experiments.hpp"
#include "tensor/matrix.hpp"

namespace axon {
namespace {

void print_tables(std::ostream& os) {
  const auto rows = fig14_dwconv_gemv(128);
  Table t({"workload", "SA_cycles", "Axon_cycles", "speedup"});
  double sum = 0.0;
  for (const Fig14Row& r : rows) {
    t.row()
        .cell(r.workload)
        .cell(r.sa_cycles)
        .cell(r.axon_cycles)
        .cell(r.speedup, 3);
    sum += r.speedup;
  }
  t.print(os,
          "Fig. 14 — DW-Conv and GEMV speedup (128x128, pipelined tiles)");
  os << "average speedup: " << fmt_double(sum / rows.size(), 3)
     << " (paper: 1.8x average, up to 2x)\n";
}

// Microbenchmark: a real cycle-accurate GEMV on both arrays.
void BM_GemvAxon(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  Rng rng(5);
  const Matrix a = random_matrix(r, r, rng);
  const Matrix x = random_matrix(r, 1, rng);
  AxonArraySim sim({r, r});
  for (auto _ : state) {
    auto result = sim.run(Dataflow::kWS, a, x);
    benchmark::DoNotOptimize(result.cycles);
  }
}
BENCHMARK(BM_GemvAxon)->Arg(16)->Arg(32);

void BM_GemvSa(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  Rng rng(5);
  const Matrix a = random_matrix(r, r, rng);
  const Matrix x = random_matrix(r, 1, rng);
  ConventionalArraySim sim({r, r});
  for (auto _ : state) {
    auto result = sim.run(Dataflow::kWS, a, x);
    benchmark::DoNotOptimize(result.cycles);
  }
}
BENCHMARK(BM_GemvSa)->Arg(16)->Arg(32);

}  // namespace
}  // namespace axon

int main(int argc, char** argv) {
  return axon::bench::run(argc, argv,
                          [](std::ostream& os) { axon::print_tables(os); });
}
