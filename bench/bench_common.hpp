// Shared helper for the bench binaries: print the reproduction tables
// first, then hand over to google-benchmark.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"

namespace axon::bench {

/// Standard main body: `print_tables` emits the paper reproduction, then
/// google-benchmark runs whatever BENCHMARK()s the TU registered.
template <typename Fn>
int run(int argc, char** argv, Fn&& print_tables) {
  print_tables(std::cout);
  std::cout << "\n-- microbenchmarks --\n";
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace axon::bench
