// Shared helper for the bench binaries: print the reproduction tables
// first, then hand over to google-benchmark.
//
// When google-benchmark is not installed (AXON_HAVE_BENCHMARK undefined —
// CI runners, minimal containers), a built-in stand-in keeps every bench
// binary building and running: BENCHMARK() registrations still compile,
// and RunSpecifiedBenchmarks() executes each registered case exactly once
// with a wall-clock reading, clearly labelled as unstatistical. The
// deterministic simulated-cycle tables (the part CI's bench smoke job
// consumes) are identical either way.
#pragma once

#if defined(AXON_HAVE_BENCHMARK)
#include <benchmark/benchmark.h>
#else

#include <chrono>
#include <cstdint>
#include <deque>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

/// Single-iteration stand-in for benchmark::State: `for (auto _ : state)`
/// runs the body once; range() returns the registered Arg.
class State {
 public:
  explicit State(std::vector<std::int64_t> args) : args_(std::move(args)) {}

  struct Ignored {
    // Non-trivial lifetime so `for (auto _ : state)` never trips
    // -Wunused-but-set-variable under the shim.
    Ignored() {}
    ~Ignored() {}
  };
  struct Iterator {
    int remaining = 0;
    bool operator!=(const Iterator& o) const {
      return remaining != o.remaining;
    }
    Iterator& operator++() {
      --remaining;
      return *this;
    }
    Ignored operator*() const { return {}; }
  };
  Iterator begin() { return {1}; }
  Iterator end() { return {0}; }

  [[nodiscard]] std::int64_t range(std::size_t i = 0) const {
    return i < args_.size() ? args_[i] : 0;
  }
  [[nodiscard]] std::int64_t iterations() const { return 1; }
  void SetItemsProcessed(std::int64_t) {}

 private:
  std::vector<std::int64_t> args_;
};

template <typename T>
inline void DoNotOptimize(T&&) {}

namespace internal {

struct Registration {
  std::string name;
  void (*fn)(State&) = nullptr;
  std::vector<std::int64_t> args;  ///< one run per Arg; none = one bare run

  Registration* Arg(std::int64_t a) {
    args.push_back(a);
    return this;
  }
  Registration* Unit(TimeUnit) { return this; }
};

inline std::vector<Registration*>& registry() {
  static std::vector<Registration*> r;
  return r;
}

inline Registration* Register(const char* name, void (*fn)(State&)) {
  static std::deque<Registration> storage;  // deque: stable addresses
  storage.push_back(Registration{name, fn, {}});
  registry().push_back(&storage.back());
  return &storage.back();
}

}  // namespace internal

inline void Initialize(int*, char**) {}
inline bool ReportUnrecognizedArguments(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::cerr << "unrecognized argument: " << argv[i] << "\n";
  }
  return argc > 1;
}

inline void RunSpecifiedBenchmarks() {
  std::cout << "(google-benchmark not installed: single-iteration shim, "
               "wall times are indicative only)\n";
  for (internal::Registration* reg : internal::registry()) {
    std::vector<std::int64_t> args = reg->args;
    if (args.empty()) args.push_back(0);
    for (std::int64_t a : args) {
      State state({a});
      const auto start = std::chrono::steady_clock::now();
      reg->fn(state);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      std::cout << reg->name << "/" << a << "  " << ms << " ms (1 iter)\n";
    }
  }
}

inline void Shutdown() {}

#define BENCHMARK(fn)                                                \
  static ::benchmark::internal::Registration* axon_bench_reg_##fn = \
      ::benchmark::internal::Register(#fn, fn)

}  // namespace benchmark

#endif  // AXON_HAVE_BENCHMARK

#include <iostream>

#include "common/table.hpp"

namespace axon::bench {

/// Standard main body: `print_tables` emits the paper reproduction, then
/// google-benchmark runs whatever BENCHMARK()s the TU registered.
template <typename Fn>
int run(int argc, char** argv, Fn&& print_tables) {
  print_tables(std::cout);
  std::cout << "\n-- microbenchmarks --\n";
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace axon::bench
