// Reproduces the §5.2.1 sparsity result: zero gating lowers total power by
// 5.3% at 10% operand sparsity. Sweeps sparsity and cross-checks the power
// model's gated fraction against the cycle-accurate simulator's counters.
#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "core/axon_array.hpp"
#include "runner/experiments.hpp"
#include "tensor/matrix.hpp"
#include "tensor/sparsity.hpp"

namespace axon {
namespace {

void print_tables(std::ostream& os) {
  Table t({"sparsity_%", "gated_frac_model", "gated_frac_cyclesim",
           "power_mW", "reduction_%", "paper"});
  Rng rng(6);
  for (double s : {0.0, 0.05, 0.10, 0.20, 0.30, 0.50}) {
    // Cycle-accurate cross-check: sparse IFMAP x dense filter on 16x16.
    // (random_sparse_matrix produces no incidental zeros beyond the
    // requested fraction, so the gated count isolates the sparsity knob.)
    Matrix a = random_sparse_matrix(16, 64, s, rng);
    Matrix b = random_sparse_matrix(64, 16, 0.0, rng);
    AxonArraySim sim({16, 16});
    const GemmRunResult r = sim.run(Dataflow::kOS, a, b);
    const double gated_sim =
        static_cast<double>(r.macs.gated_macs) /
        static_cast<double>(r.macs.total_macs());

    const auto rows = sparsity_power_sweep({s});
    t.row()
        .cell(100.0 * s, 1)
        .cell(rows[0].gated_fraction, 3)
        .cell(gated_sim, 3)
        .cell(rows[0].power_mw, 2)
        .cell(rows[0].reduction_pct, 2)
        .cell(s == 0.10 ? "5.3%" : "-");
  }
  t.print(os,
          "§5.2.1 — zero-gating power reduction vs IFMAP sparsity "
          "(16x16 Axon+im2col, ASAP7)");
}

void BM_SparseGemmGated(benchmark::State& state) {
  const double sparsity = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(7);
  Matrix a = random_sparse_matrix(16, 64, sparsity, rng);
  Matrix b = random_matrix(64, 16, rng);
  AxonArraySim sim({16, 16}, {.zero_gating = true});
  for (auto _ : state) {
    auto r = sim.run(Dataflow::kOS, a, b);
    benchmark::DoNotOptimize(r.macs.gated_macs);
  }
}
BENCHMARK(BM_SparseGemmGated)->Arg(0)->Arg(10)->Arg(50);

}  // namespace
}  // namespace axon

int main(int argc, char** argv) {
  return axon::bench::run(argc, argv,
                          [](std::ostream& os) { axon::print_tables(os); });
}
