// Reproduces paper Table 2: runtime formulas for SA vs Axon per dataflow,
// cross-checked live against the cycle-accurate simulators.
#include "baseline/conventional_array.hpp"
#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "core/axon_array.hpp"
#include "model/runtime_model.hpp"
#include "tensor/matrix.hpp"

namespace axon {
namespace {

void print_tables(std::ostream& os) {
  Table t({"dataflow", "M", "K", "N", "SA_formula", "Axon_formula",
           "SA_cyclesim", "Axon_cyclesim", "match"});
  Rng rng(2);
  for (Dataflow df : {Dataflow::kOS, Dataflow::kWS, Dataflow::kIS}) {
    for (const GemmShape& g :
         {GemmShape{16, 16, 16}, GemmShape{8, 24, 12}, GemmShape{24, 8, 24},
          GemmShape{12, 12, 30}}) {
      const Matrix a = random_matrix(g.M, g.K, rng);
      const Matrix b = random_matrix(g.K, g.N, rng);
      const SpatioTemporal st = map_gemm(g, df);
      const ArrayShape shape{static_cast<int>(st.S_R),
                             static_cast<int>(st.S_C)};
      ConventionalArraySim sa(shape);
      AxonArraySim ax(shape);
      const i64 sa_sim = sa.run(df, a, b).cycles;
      const i64 ax_sim = ax.run(df, a, b).cycles;
      const i64 sa_model = tile_cycles(ArchType::kConventionalSA, shape, st.T);
      const i64 ax_model = tile_cycles(ArchType::kAxon, shape, st.T);
      t.row()
          .cell(to_string(df))
          .cell(g.M)
          .cell(g.K)
          .cell(g.N)
          .cell(sa_model)
          .cell(ax_model)
          .cell(sa_sim)
          .cell(ax_sim)
          .cell((sa_sim == sa_model && ax_sim == ax_model) ? "yes" : "NO");
    }
  }
  t.print(os,
          "Table 2 — runtime formulas vs cycle-accurate simulation "
          "(SA: 2S_R+S_C+T-2, Axon: max(S_R,S_C)+S_R+T-1)");
}

void BM_SaCycleSim(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  Rng rng(3);
  const Matrix a = random_matrix(r, 32, rng);
  const Matrix b = random_matrix(32, r, rng);
  ConventionalArraySim sim({r, r});
  for (auto _ : state) {
    auto result = sim.run(Dataflow::kOS, a, b);
    benchmark::DoNotOptimize(result.cycles);
  }
  state.SetItemsProcessed(state.iterations() * i64{r} * r * 32);
}
BENCHMARK(BM_SaCycleSim)->Arg(8)->Arg(16)->Arg(32);

void BM_AxonCycleSim(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  Rng rng(3);
  const Matrix a = random_matrix(r, 32, rng);
  const Matrix b = random_matrix(32, r, rng);
  AxonArraySim sim({r, r});
  for (auto _ : state) {
    auto result = sim.run(Dataflow::kOS, a, b);
    benchmark::DoNotOptimize(result.cycles);
  }
  state.SetItemsProcessed(state.iterations() * i64{r} * r * 32);
}
BENCHMARK(BM_AxonCycleSim)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace axon

int main(int argc, char** argv) {
  return axon::bench::run(argc, argv,
                          [](std::ostream& os) { axon::print_tables(os); });
}
