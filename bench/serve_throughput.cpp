// Serving-subsystem throughput study: batch-size and pool-size sweeps on
// the ResNet50 and transformer mixes (simulated cycles), plus wall-clock
// microbenchmarks of the serving simulator itself — including the
// multi-threaded worker pool against the single-threaded baseline.
#include <thread>

#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "serve/pool.hpp"
#include "serve/request.hpp"

using namespace axon;
using namespace axon::serve;

namespace {

constexpr std::uint64_t kSeed = 404;

RequestQueue trace_for(const std::vector<GemmWorkload>& mix, int n,
                       double gap) {
  Rng rng(kSeed);
  return generate_trace(mix, {n, gap}, rng);
}

PoolConfig config(int accelerators, int max_batch) {
  PoolConfig cfg;
  cfg.accelerator = {.arch = ArchType::kAxon, .array = {32, 32}};
  cfg.num_accelerators = accelerators;
  cfg.batching = {max_batch, 20000};
  return cfg;
}

void sweep(std::ostream& os, const std::string& name,
           const std::vector<GemmWorkload>& mix) {
  Table t({"accelerators", "max_batch", "p50", "p95", "p99", "req/Mcycle",
           "util_%"});
  for (int pool : {1, 2, 4, 8}) {
    for (int mb : {1, 8}) {
      const ServeReport r =
          AcceleratorPool(config(pool, mb)).serve(trace_for(mix, 192, 20000.0));
      t.row()
          .cell(pool)
          .cell(mb)
          .cell(r.latency.percentile(50))
          .cell(r.latency.percentile(95))
          .cell(r.latency.percentile(99))
          .cell(r.throughput_per_mcycle(), 2)
          .cell(100.0 * r.fleet_utilization(), 1);
    }
  }
  t.print(os, name + " serving sweep (192 requests, FIFO)");
  os << "\n";
}

void print_tables(std::ostream& os) {
  sweep(os, "ResNet50", resnet50_serve_mix());
  sweep(os, "BERT-base", transformer_serve_mix());
}

void bench_serve_analytical(benchmark::State& state) {
  PoolConfig cfg = config(4, 8);
  for (auto _ : state) {
    const ServeReport r = AcceleratorPool(cfg).serve(
        trace_for(mixed_serve_mix(), 128, 20000.0));
    benchmark::DoNotOptimize(r.makespan_cycles);
  }
}
BENCHMARK(bench_serve_analytical)->Unit(benchmark::kMillisecond);

void bench_serve_cycle_accurate(benchmark::State& state) {
  // Wall-clock scaling of the worker pool on the cycle-accurate simulator;
  // arg is the thread count. Simulated cycles are identical across args —
  // only wall time changes.
  const std::vector<GemmWorkload> mix = {{"s", {8, 16, 16}},
                                         {"m", {16, 16, 16}}};
  PoolConfig cfg = config(4, 4);
  cfg.accelerator.array = {8, 8};
  cfg.exec = ExecMode::kCycleAccurate;
  cfg.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const ServeReport r =
        AcceleratorPool(cfg).serve(trace_for(mix, 48, 200.0));
    benchmark::DoNotOptimize(r.makespan_cycles);
  }
}
BENCHMARK(bench_serve_cycle_accurate)
    ->Arg(1)
    ->Arg(static_cast<long>(
        std::max(1u, std::thread::hardware_concurrency())))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return axon::bench::run(argc, argv, print_tables);
}
