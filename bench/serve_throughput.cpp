// Serving-subsystem throughput study: batch-size and pool-size sweeps on
// the ResNet50 and transformer mixes (simulated cycles), plus wall-clock
// microbenchmarks of the serving simulator itself — including the
// multi-threaded worker pool against the single-threaded baseline.
#include <thread>

#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "serve/pool.hpp"
#include "serve/request.hpp"

using namespace axon;
using namespace axon::serve;

namespace {

constexpr std::uint64_t kSeed = 404;

RequestQueue trace_for(const std::vector<GemmWorkload>& mix, int n,
                       double gap) {
  Rng rng(kSeed);
  return generate_trace(mix, {n, gap}, rng);
}

PoolConfig config(int accelerators, int max_batch) {
  PoolConfig cfg;
  cfg.accelerator = {.arch = ArchType::kAxon, .array = {32, 32}};
  cfg.num_accelerators = accelerators;
  cfg.batching = {max_batch, 20000};
  return cfg;
}

void sweep(std::ostream& os, const std::string& name,
           const std::vector<GemmWorkload>& mix) {
  Table t({"accelerators", "max_batch", "p50", "p95", "p99", "req/Mcycle",
           "util_%"});
  for (int pool : {1, 2, 4, 8}) {
    for (int mb : {1, 8}) {
      const ServeReport r =
          AcceleratorPool(config(pool, mb)).serve(trace_for(mix, 192, 20000.0));
      t.row()
          .cell(pool)
          .cell(mb)
          .cell(r.latency.percentile(50))
          .cell(r.latency.percentile(95))
          .cell(r.latency.percentile(99))
          .cell(r.throughput_per_mcycle(), 2)
          .cell(100.0 * r.fleet_utilization(), 1);
    }
  }
  t.print(os, name + " serving sweep (192 requests, FIFO)");
  os << "\n";
}

void slo_sweep(std::ostream& os) {
  // Deadline-aware policies on bursty decode+prefill traffic: the serving
  // counterpart of the examples/serve_traffic SLO scenario, swept across
  // schedulers at equal fleet size.
  std::vector<GemmWorkload> mix = decode_serve_mix();
  // BERT-large qkv weights: a (K, N) no decode entry shares, so prefill
  // cannot coalesce into decode batches and scheduling has work to do.
  mix.push_back({"prefill_qkv_large", {128, 1024, 3072}});
  BurstyTraceConfig tc;
  tc.num_requests = 256;
  tc.burst_interarrival_cycles = 2500.0;
  tc.mean_on_cycles = 300000.0;
  tc.mean_off_cycles = 1200000.0;
  // Same priority class everywhere: this sweep isolates the policy key
  // itself (examples/serve_traffic shows the EDF + priority-class combo).
  tc.classes.default_policy = {/*slo=*/500000, /*priority=*/0};
  tc.classes.per_workload["prefill_qkv_large"] = {/*slo=*/6000000, /*priority=*/0};
  Table t({"policy", "slo_%", "p99", "miss_p99", "req/Mcycle"});
  for (const SchedulePolicy policy :
       {SchedulePolicy::kFifo, SchedulePolicy::kShortestJobFirst,
        SchedulePolicy::kEarliestDeadlineFirst}) {
    PoolConfig cfg = config(4, 8);
    cfg.policy = policy;
    cfg.batching.max_wait_cycles = 60000;
    cfg.batching.continuous_admission = true;
    Rng rng(kSeed);
    const ServeReport r =
        AcceleratorPool(cfg).serve(generate_bursty_trace(mix, tc, rng));
    t.row()
        .cell(to_string(policy))
        .cell(100.0 * r.slo_attainment(), 1)
        .cell(r.latency.percentile_or(99))
        .cell(r.overall.miss.percentile_or(99))
        .cell(r.throughput_per_mcycle(), 2);
  }
  t.print(os, "Deadline-aware policy sweep (bursty decode+prefill, SLOs)");
  os << "\n";
}

void print_tables(std::ostream& os) {
  sweep(os, "ResNet50", resnet50_serve_mix());
  sweep(os, "BERT-base", transformer_serve_mix());
  slo_sweep(os);
}

// Analytical-mode serving is dominated by the simulator's own dispatch
// machinery, so this bench doubles as the regression gate for dispatch-path
// overhead: PR 2 replaced the per-dispatch deep copies (whole Batch request
// vector + PoolConfig, copied into every worker lambda) with a 3-word
// (gemm, first_id, &config) payload, and this bench confirmed no
// throughput regression (~4.5 ms for the 128-request mixed trace before
// and after, noise-level delta).
void bench_serve_analytical(benchmark::State& state) {
  PoolConfig cfg = config(4, 8);
  for (auto _ : state) {
    const ServeReport r = AcceleratorPool(cfg).serve(
        trace_for(mixed_serve_mix(), 128, 20000.0));
    benchmark::DoNotOptimize(r.makespan_cycles);
  }
}
BENCHMARK(bench_serve_analytical)->Unit(benchmark::kMillisecond);

// Dispatch-heavy stress: many tiny single-member batches (max_batch 1, one
// dispatch per request) maximize the per-dispatch fixed cost the deep-copy
// fix targets.
void bench_serve_dispatch_overhead(benchmark::State& state) {
  PoolConfig cfg = config(8, 1);
  for (auto _ : state) {
    const ServeReport r = AcceleratorPool(cfg).serve(
        trace_for(decode_serve_mix(), 512, 200.0));
    benchmark::DoNotOptimize(r.makespan_cycles);
  }
}
BENCHMARK(bench_serve_dispatch_overhead)->Unit(benchmark::kMillisecond);

void bench_serve_cycle_accurate(benchmark::State& state) {
  // Wall-clock scaling of the worker pool on the cycle-accurate simulator;
  // arg is the thread count. Simulated cycles are identical across args —
  // only wall time changes.
  const std::vector<GemmWorkload> mix = {{"s", {8, 16, 16}},
                                         {"m", {16, 16, 16}}};
  PoolConfig cfg = config(4, 4);
  cfg.accelerator.array = {8, 8};
  cfg.exec = ExecMode::kCycleAccurate;
  cfg.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const ServeReport r =
        AcceleratorPool(cfg).serve(trace_for(mix, 48, 200.0));
    benchmark::DoNotOptimize(r.makespan_cycles);
  }
}
BENCHMARK(bench_serve_cycle_accurate)
    ->Arg(1)
    ->Arg(static_cast<long>(
        std::max(1u, std::thread::hardware_concurrency())))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return axon::bench::run(argc, argv, print_tables);
}
