// Serving-subsystem throughput study: batch-size and pool-size sweeps on
// the ResNet50 and transformer mixes, a heterogeneous-fleet routing sweep
// (simulated cycles), plus wall-clock microbenchmarks of the serving
// simulator itself — including the multi-threaded worker pool against the
// single-threaded baseline.
//
// CI mode:
//   bench_serve_throughput --smoke --json BENCH_serve.json
// runs a short, fully deterministic scenario set (simulated-cycle metrics
// only — same numbers on any machine and thread count) and writes them as
// JSON for the perf-trajectory artifact. See README "CI" for the cache
// keys and how to reproduce locally.
#include <sys/resource.h>

#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "serve/pool.hpp"
#include "serve/request.hpp"
#include "serve/scenarios.hpp"

using namespace axon;
using namespace axon::serve;

namespace {

constexpr std::uint64_t kSeed = 404;

/// Process peak RSS in MB (getrusage; ru_maxrss is KB on Linux) — the
/// informational memory trajectory the 10^7-request scenario publishes.
double peak_rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

RequestQueue trace_for(const std::vector<GemmWorkload>& mix, int n,
                       double gap) {
  Rng rng(kSeed);
  return generate_trace(mix, {n, gap}, rng);
}

// The canonical serve entry takes a TraceSource lvalue; sweep-local traces
// get named here before serving.
ServeReport serve_queue(const PoolConfig& cfg, RequestQueue q) {
  AcceleratorPool pool(cfg);
  return pool.serve(q);
}

PoolConfig config(int accelerators, int max_batch) {
  PoolConfig cfg;
  cfg.accelerator = {.arch = ArchType::kAxon, .array = {32, 32}};
  cfg.num_accelerators = accelerators;
  cfg.batching = {max_batch, 20000};
  return cfg;
}

void sweep(std::ostream& os, const std::string& name,
           const std::vector<GemmWorkload>& mix) {
  Table t({"accelerators", "max_batch", "p50", "p95", "p99", "req/Mcycle",
           "util_%"});
  for (int pool : {1, 2, 4, 8}) {
    for (int mb : {1, 8}) {
      const ServeReport r =
          serve_queue(config(pool, mb), trace_for(mix, 192, 20000.0));
      const Histogram lat = r.latency();
      t.row()
          .cell(pool)
          .cell(mb)
          .cell(lat.percentile(50))
          .cell(lat.percentile(95))
          .cell(lat.percentile(99))
          .cell(r.throughput_per_mcycle(), 2)
          .cell(100.0 * r.fleet_utilization(), 1);
    }
  }
  t.print(os, name + " serving sweep (192 requests, FIFO)");
  os << "\n";
}

void slo_sweep(std::ostream& os) {
  // Deadline-aware policies on bursty decode+prefill traffic: the serving
  // counterpart of the examples/serve_traffic SLO scenario, swept across
  // schedulers at equal fleet size.
  std::vector<GemmWorkload> mix = decode_serve_mix();
  // BERT-large qkv weights: a (K, N) no decode entry shares, so prefill
  // cannot coalesce into decode batches and scheduling has work to do.
  mix.push_back({"prefill_qkv_large", {128, 1024, 3072}});
  BurstyTraceConfig tc;
  tc.num_requests = 256;
  tc.burst_interarrival_cycles = 2500.0;
  tc.mean_on_cycles = 300000.0;
  tc.mean_off_cycles = 1200000.0;
  // Same priority class everywhere: this sweep isolates the policy key
  // itself (examples/serve_traffic shows the EDF + priority-class combo).
  tc.classes.default_policy = {/*slo=*/500000, /*priority=*/0};
  tc.classes.per_workload["prefill_qkv_large"] = {/*slo=*/6000000,
                                                   /*priority=*/0};
  Table t({"policy", "slo_%", "p99", "miss_p99", "req/Mcycle"});
  for (const SchedulePolicy policy :
       {SchedulePolicy::kFifo, SchedulePolicy::kShortestJobFirst,
        SchedulePolicy::kEarliestDeadlineFirst}) {
    PoolConfig cfg = config(4, 8);
    cfg.policy = policy;
    cfg.batching.max_wait_cycles = 60000;
    cfg.batching.continuous_admission = true;
    Rng rng(kSeed);
    const ServeReport r = serve_queue(cfg, generate_bursty_trace(mix, tc, rng));
    t.row()
        .cell(to_string(policy))
        .cell(100.0 * r.slo_attainment(), 1)
        .cell(r.latency().percentile_or(99))
        .cell(r.overall().miss.percentile_or(99))
        .cell(r.throughput_per_mcycle(), 2);
  }
  t.print(os, "Deadline-aware policy sweep (bursty decode+prefill, SLOs)");
  os << "\n";
}

// ---- heterogeneous fleet ---------------------------------------------

/// The serve/scenarios mixed fleet (2x compute-heavy big64x64 + 2x
/// bandwidth-heavy hbm32x32, weight caches), on the canonical trace the
/// example enforces its routing claim with — swept here across policies
/// and published by the CI smoke artifact.
ServeReport serve_fleet(RoutePolicy routing) {
  return serve_queue(mixed_fleet_pool_config(routing), mixed_fleet_trace());
}

/// Fleet-wide weight-cache hit fraction, in percent.
double fleet_cache_hit_pct(const ServeReport& r) {
  i64 hits = 0, lookups = 0;
  for (const auto& a : r.per_accelerator) {
    hits += a.weight_hits;
    lookups += a.weight_hits + a.weight_misses;
  }
  return lookups > 0 ? 100.0 * static_cast<double>(hits) /
                           static_cast<double>(lookups)
                     : 0.0;
}

void fleet_sweep(std::ostream& os) {
  Table t({"routing", "req/Mcycle", "slo_%", "p99", "util_%", "wcache_%"});
  for (const RoutePolicy routing :
       {RoutePolicy::kFirstFree, RoutePolicy::kRoundRobin,
        RoutePolicy::kLeastCost}) {
    const ServeReport r = serve_fleet(routing);
    t.row()
        .cell(to_string(routing))
        .cell(r.throughput_per_mcycle(), 2)
        .cell(100.0 * r.slo_attainment(), 1)
        .cell(r.latency().percentile_or(99))
        .cell(100.0 * r.fleet_utilization(), 1)
        .cell(fleet_cache_hit_pct(r), 1);
  }
  t.print(os, "Heterogeneous-fleet routing sweep (2x big64x64 + 2x "
              "hbm32x32, bursty decode+prefill, EDF)");
  os << "\n";
}

// ---- fleet contention ------------------------------------------------

/// The serve/scenarios shared-bandwidth scenario (4x cache-less 32x32 on
/// 2 memory nodes at 80 B/fleet-cycle each, one-hop fabric), under
/// congestion-aware vs congestion-blind least-cost routing. The example
/// enforces aware > blind on SLO attainment on this exact trace; CI's
/// smoke artifact publishes both ends.
ServeReport serve_contended(bool congestion_aware) {
  return serve_queue(fleet_contention_pool_config(congestion_aware),
                     fleet_contention_trace());
}

void contention_sweep(std::ostream& os) {
  Table t({"routing", "slo_%", "p50", "p99", "contended", "hop_disp",
           "node_slowdown"});
  for (const bool aware : {false, true}) {
    const ServeReport r = serve_contended(aware);
    i64 contended = 0;
    double slowdown = 1.0;
    for (const auto& n : r.per_node) {
      contended += n.contended_dispatches;
      if (n.slowdown() > slowdown) slowdown = n.slowdown();
    }
    i64 hop_dispatches = 0;
    for (const auto& a : r.per_accelerator) hop_dispatches += a.hop_dispatches;
    t.row()
        .cell(aware ? "congestion-aware" : "congestion-blind")
        .cell(100.0 * r.slo_attainment(), 1)
        .cell(r.latency().percentile_or(50))
        .cell(r.latency().percentile_or(99))
        .cell(contended)
        .cell(hop_dispatches)
        .cell(slowdown, 3);
  }
  t.print(os, "Shared-bandwidth contention sweep (4x cache-less 32x32, "
              "2 memory nodes, EDF + least-cost)");
  os << "\n";
}

// ---- chunked prefill -------------------------------------------------

/// The serve/scenarios head-of-line blocking scenario (2x 32x32 + weight
/// caches, bursty decode with a tight SLO + long no-deadline prefill),
/// swept across chunk policies. The example enforces the chunked-vs-whole
/// claim on this exact trace; CI's smoke artifact publishes both ends.
ServeReport serve_chunked(ChunkPolicy chunking) {
  return serve_queue(chunked_prefill_pool_config(chunking),
                     chunked_prefill_trace());
}

void chunk_sweep(std::ostream& os) {
  Table t({"chunking", "slo_%", "p99", "chunks", "preempts", "req/Mcycle",
           "wcache_%"});
  for (const ChunkPolicy chunking :
       {ChunkPolicy::kNone, ChunkPolicy::kFixedTiles,
        ChunkPolicy::kDeadlineAware}) {
    const ServeReport r = serve_chunked(chunking);
    t.row()
        .cell(to_string(chunking))
        .cell(100.0 * r.slo_attainment(), 1)
        .cell(r.latency().percentile_or(99))
        .cell(r.total_chunks)
        .cell(r.preemptions)
        .cell(r.throughput_per_mcycle(), 2)
        .cell(fleet_cache_hit_pct(r), 1);
  }
  t.print(os, "Chunk-policy sweep (2x 32x32, bursty decode+512-token "
              "prefill, EDF, chunk_tiles 2)");
  os << "\n";
}

void print_tables(std::ostream& os) {
  sweep(os, "ResNet50", resnet50_serve_mix());
  sweep(os, "BERT-base", transformer_serve_mix());
  slo_sweep(os);
  fleet_sweep(os);
  contention_sweep(os);
  chunk_sweep(os);
}

// Analytical-mode serving is dominated by the simulator's own dispatch
// machinery, so this bench doubles as the regression gate for dispatch-path
// overhead: PR 2 replaced the per-dispatch deep copies (whole Batch request
// vector + PoolConfig, copied into every worker lambda) with a 3-word
// (gemm, first_id, &config) payload, and this bench confirmed no
// throughput regression (~4.5 ms for the 128-request mixed trace before
// and after, noise-level delta).
void bench_serve_analytical(benchmark::State& state) {
  PoolConfig cfg = config(4, 8);
  for (auto _ : state) {
    const ServeReport r =
        serve_queue(cfg, trace_for(mixed_serve_mix(), 128, 20000.0));
    benchmark::DoNotOptimize(r.makespan_cycles);
  }
}
BENCHMARK(bench_serve_analytical)->Unit(benchmark::kMillisecond);

// Dispatch-heavy stress: many tiny single-member batches (max_batch 1, one
// dispatch per request) maximize the per-dispatch fixed cost the deep-copy
// fix targets.
void bench_serve_dispatch_overhead(benchmark::State& state) {
  PoolConfig cfg = config(8, 1);
  for (auto _ : state) {
    const ServeReport r =
        serve_queue(cfg, trace_for(decode_serve_mix(), 512, 200.0));
    benchmark::DoNotOptimize(r.makespan_cycles);
  }
}
BENCHMARK(bench_serve_dispatch_overhead)->Unit(benchmark::kMillisecond);

void bench_serve_cycle_accurate(benchmark::State& state) {
  // Wall-clock scaling of the worker pool on the cycle-accurate simulator;
  // arg is the thread count. Simulated cycles are identical across args —
  // only wall time changes.
  const std::vector<GemmWorkload> mix = {{"s", {8, 16, 16}},
                                         {"m", {16, 16, 16}}};
  PoolConfig cfg = config(4, 4);
  cfg.accelerator.array = {8, 8};
  cfg.exec = ExecMode::kCycleAccurate;
  cfg.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const ServeReport r = serve_queue(cfg, trace_for(mix, 48, 200.0));
    benchmark::DoNotOptimize(r.makespan_cycles);
  }
}
BENCHMARK(bench_serve_cycle_accurate)
    ->Arg(1)
    ->Arg(static_cast<long>(
        std::max(1u, std::thread::hardware_concurrency())))
    ->Unit(benchmark::kMillisecond);

// ---- CI smoke mode ---------------------------------------------------

struct Scenario {
  std::string name;
  ServeReport report;
  /// Extra per-scenario JSON metrics as (key, pre-rendered value) pairs —
  /// registry counts and self-profile wall times for serve_scale_200k.
  /// Wall-clock keys carry the "wall_" prefix, which
  /// scripts/compare_bench.py treats as informational by construction.
  std::vector<std::pair<std::string, std::string>> extra;
};

/// Decode-side p99 latency for the disaggregation scenarios: simulated
/// cycles, so it gates in compare_bench.py like any other cycle metric.
i64 decode_p99_cycles(const ServeReport& r) {
  Histogram decode;
  for (const auto& [name, g] : r.by_workload()) {
    if (name.rfind("decode", 0) == 0) decode.merge(g.latency);
  }
  return decode.percentile_or(99);
}

/// Short deterministic scenario set, resolved by name from the
/// serve/scenarios registry (the artifact's rows and the registry's names
/// are the same list by construction): every metric below is in simulated
/// cycles (identical on any host/thread count), so the JSON artifact is
/// diffable across CI runs — a perf trajectory, not a noise source.
/// A few scenarios attach extras the registry cannot express: the
/// serve_scale_200k run carries the obs instrumentation (deterministic
/// registry counts plus the "wall_phase_*" self-profile), serve_scale_10m
/// publishes peak RSS under the informational "rss_" prefix, and the
/// disagg pair publishes the decode_p99_cycles its headline claim is
/// scored on.
std::vector<Scenario> smoke_scenarios() {
  std::vector<Scenario> out;
  for (const std::string& name : scenario_names()) {
    const ScenarioSpec& spec = scenario(name);
    Scenario s{name, {}, {}};
    if (name == "serve_scale_200k") {
      PoolConfig cfg = spec.config;
      cfg.self_profile = true;
      AcceleratorPool pool(cfg);
      obs::MetricsRegistry registry;
      obs::MetricsProbe metrics(&registry);
      pool.add_probe(&metrics);
      const std::unique_ptr<TraceSource> source = spec.make_trace();
      s.report = pool.serve(*source);
      for (const char* key : {"joins", "requeues", "deadline_misses"}) {
        s.extra.emplace_back(
            key, std::to_string(
                     registry.counter_value(std::string("serve.") + key)));
      }
      const obs::PhaseProfile& prof = s.report.phase_profile;
      for (std::size_t i = 0; i < obs::kNumServePhases; ++i) {
        s.extra.emplace_back(
            std::string("wall_phase_") +
                to_string(static_cast<obs::ServePhase>(i)) + "_seconds",
            fmt_double(prof.phases[i].seconds, 4));
      }
    } else {
      AcceleratorPool pool(spec.config);
      const std::unique_ptr<TraceSource> source = spec.make_trace();
      s.report = pool.serve(*source);
    }
    if (name == "serve_scale_10m") {
      s.extra.emplace_back("rss_mb_peak", fmt_double(peak_rss_mb(), 1));
    }
    if (name.rfind("disagg_prefill_decode", 0) == 0) {
      s.extra.emplace_back("decode_p99_cycles",
                           std::to_string(decode_p99_cycles(s.report)));
    }
    out.push_back(std::move(s));
  }
  return out;
}

int run_smoke(const std::string& json_path) {
  const std::vector<Scenario> scenarios = smoke_scenarios();

  Table t({"scenario", "req", "makespan", "req/Mcycle", "p99", "slo_%",
           "wcache_%"});
  for (const auto& s : scenarios) {
    t.row()
        .cell(s.name)
        .cell(static_cast<i64>(s.report.num_requests()))
        .cell(s.report.makespan_cycles)
        .cell(s.report.throughput_per_mcycle(), 2)
        .cell(s.report.latency().percentile_or(99))
        .cell(100.0 * s.report.slo_attainment(), 1)
        .cell(fleet_cache_hit_pct(s.report), 1);
  }
  t.print(std::cout, "Bench smoke (deterministic simulated cycles)");

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    os << "{\n  \"bench\": \"serve_throughput\",\n  \"mode\": \"smoke\",\n"
       << "  \"units\": \"simulated_cycles\",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const ServeReport& r = scenarios[i].report;
      const Histogram lat = r.latency();
      os << "    {\n"
         << "      \"name\": \"" << scenarios[i].name << "\",\n"
         << "      \"requests\": " << r.num_requests() << ",\n"
         << "      \"batches\": " << r.total_batches << ",\n"
         << "      \"chunks\": " << r.total_chunks << ",\n"
         << "      \"preemptions\": " << r.preemptions << ",\n"
         << "      \"makespan_cycles\": " << r.makespan_cycles << ",\n"
         << "      \"throughput_per_mcycle\": "
         << fmt_double(r.throughput_per_mcycle(), 4) << ",\n"
         << "      \"latency_p50_cycles\": " << lat.percentile_or(50)
         << ",\n"
         << "      \"latency_p99_cycles\": " << lat.percentile_or(99)
         << ",\n"
         << "      \"slo_attainment_pct\": "
         << fmt_double(100.0 * r.slo_attainment(), 2) << ",\n"
         << "      \"fleet_utilization_pct\": "
         << fmt_double(100.0 * r.fleet_utilization(), 2) << ",\n"
         << "      \"weight_cache_hit_pct\": "
         << fmt_double(fleet_cache_hit_pct(r), 2) << ",\n";
      // Scenario-specific extras (pre-rendered values): registry counts
      // and "wall_phase_*" self-profile seconds for serve_scale_200k.
      for (const auto& [key, value] : scenarios[i].extra) {
        os << "      \"" << key << "\": " << value << ",\n";
      }
      os
         // Host wall time per scenario: the one nondeterministic metric,
         // listed in scripts/compare_bench.py's informational set so it
         // never gates — it is the scale trajectory, not a pass/fail.
         << "      \"wall_seconds\": " << fmt_double(r.wall_seconds, 4)
         << "\n    }" << (i + 1 < scenarios.size() ? "," : "") << "\n";
    }
    // Host wall time lives outside the scenario list: it is the one
    // nondeterministic number, kept out of the diffable metrics.
    double wall = 0.0;
    for (const auto& s : scenarios) wall += s.report.wall_seconds;
    os << "  ],\n  \"host_wall_seconds_total\": " << fmt_double(wall, 4)
       << "\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke / --json PATH: either flag selects the short deterministic
  // CI mode (no microbenchmarks; metrics are simulated cycles only);
  // --json additionally writes the artifact. Everything else passes
  // through to google-benchmark.
  bool smoke = false;
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "missing value for --json (usage: --json PATH)\n";
        return 1;
      }
      json_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (smoke || !json_path.empty()) return run_smoke(json_path);
  int pass_argc = static_cast<int>(passthrough.size());
  return axon::bench::run(pass_argc, passthrough.data(), print_tables);
}
