// Reproduces paper Fig. 11: IFMAP memory-access reduction from the on-chip
// im2col MUX chain, for IFMAP/kernel shapes drawn from SOTA networks.
// Paper claim: "more than 60% for workloads generally used in SOTA NNs".
#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "core/im2col_feeder.hpp"
#include "runner/experiments.hpp"
#include "tensor/tensor4.hpp"

namespace axon {
namespace {

constexpr int kFeeders = 128;

void print_tables(std::ostream& os) {
  Table t({"layer", "ifmap", "kernel", "stride", "sw_loads", "axon_loads",
           "reduction_%"});
  for (const Fig11Row& r : fig11_memory_reduction(kFeeders)) {
    t.row()
        .cell(r.workload)
        .cell(std::to_string(r.shape.in_h) + "x" +
              std::to_string(r.shape.in_w) + "x" +
              std::to_string(r.shape.in_channels))
        .cell(std::to_string(r.shape.kernel_h) + "x" +
              std::to_string(r.shape.kernel_w))
        .cell(r.shape.stride_h)
        .cell(r.software_loads)
        .cell(r.axon_loads)
        .cell(r.reduction_pct, 2);
  }
  t.print(os, "Fig. 11 — IFMAP access reduction with on-chip im2col (" +
                  std::to_string(kFeeders) + " diagonal feeders)");
}

// Microbenchmark: streaming throughput of the cycle-accurate feeder chain.
void BM_Im2colFeederStream(benchmark::State& state) {
  const int hw = static_cast<int>(state.range(0));
  const ConvShape c = make_conv(3, hw, 4, 3, 1, 1);
  Rng rng(4);
  const Tensor4 in = random_tensor(1, 3, hw, hw, rng);
  for (auto _ : state) {
    Im2colFeeder feeder(in, c, 0, std::min<i64>(16, c.out_w()));
    float sink = 0.0f;
    for (i64 row = 0; row < feeder.num_rows(); ++row) {
      for (i64 k = 0; k < feeder.temporal_length(); ++k) {
        sink += feeder.value(row, k).value_or(0.0f);
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 16 * 27);
}
BENCHMARK(BM_Im2colFeederStream)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace axon

int main(int argc, char** argv) {
  return axon::bench::run(argc, argv,
                          [](std::ostream& os) { axon::print_tables(os); });
}
