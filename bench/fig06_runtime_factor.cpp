// Reproduces paper Fig. 6: the fill-latency factor — cycles for operands to
// reach the farthest PE — for conventional SA (f1 = R + C - 2) vs Axon
// (f2 = max(R, C) - 1), across array shapes.
#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "core/axon_array.hpp"
#include "runner/experiments.hpp"
#include "tensor/matrix.hpp"

namespace axon {
namespace {

void print_tables(std::ostream& os) {
  std::vector<ArrayShape> shapes;
  for (int s : {4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    shapes.push_back({s, s});
  }
  // Rectangular points from Fig. 6's (R, C) plane.
  shapes.push_back({8, 64});
  shapes.push_back({64, 8});
  shapes.push_back({32, 256});
  shapes.push_back({256, 32});

  Table t({"array", "f1_SA(R+C-2)", "f2_Axon(max-1)", "improvement"});
  for (const Fig6Row& row : fig6_fill_factors(shapes)) {
    t.row()
        .cell(std::to_string(row.array.rows) + "x" +
              std::to_string(row.array.cols))
        .cell(row.f1_conventional)
        .cell(row.f2_axon)
        .cell(static_cast<double>(row.f1_conventional) /
                  static_cast<double>(row.f2_axon),
              3);
  }
  t.print(os,
          "Fig. 6 — fill-latency factor (paper: 256x256 drops 510 -> 255)");
}

// Microbenchmark: cycle-accurate fill observation on real arrays.
void BM_AxonFill(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  Rng rng(1);
  const Matrix a = random_matrix(r, 4, rng);
  const Matrix b = random_matrix(4, r, rng);
  AxonArraySim sim({r, r});
  for (auto _ : state) {
    auto result = sim.run(Dataflow::kOS, a, b);
    benchmark::DoNotOptimize(result.fill_cycles);
  }
}
BENCHMARK(BM_AxonFill)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace axon

int main(int argc, char** argv) {
  return axon::bench::run(argc, argv,
                          [](std::ostream& os) { axon::print_tables(os); });
}
