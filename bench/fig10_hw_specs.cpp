// Reproduces paper Fig. 10 / §5.1: 16x16 ASAP7 implementation specs —
// area and power of conventional SA, Axon, and Axon with im2col support.
#include "bench/bench_common.hpp"
#include "hw/area_power.hpp"
#include "runner/experiments.hpp"

namespace axon {
namespace {

void print_tables(std::ostream& os) {
  Table t({"design", "area_mm2", "power_mW", "paper_area_mm2",
           "paper_power_mW"});
  const auto rows = fig10_hw_specs();
  const char* paper_area[] = {"0.9992", "0.9931", "0.9951"};
  const char* paper_power[] = {"59.88", "-", "59.98"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    t.row()
        .cell(rows[i].design)
        .cell(rows[i].area_mm2, 4)
        .cell(rows[i].power_mw, 2)
        .cell(paper_area[i])
        .cell(paper_power[i]);
  }
  t.print(os, "Fig. 10 — 16x16 implementation specs (ASAP7, FP16 MAC)");

  const AreaPowerModel m(TechNode::kAsap7);
  const ArrayShape a16{16, 16};
  Table o({"metric", "model", "paper"});
  o.row()
      .cell("im2col area overhead %")
      .cell(100.0 * (m.axon(a16, true).area_mm2 / m.axon(a16, false).area_mm2 -
                     1.0),
            3)
      .cell("0.211");
  o.row()
      .cell("power overhead vs SA %")
      .cell(100.0 * (m.axon(a16, true).power_mw /
                         m.conventional_sa(a16).power_mw -
                     1.0),
            3)
      .cell("1.6 (reported); 0.17 from raw mW");
  o.print(os, "Overheads");
}

void BM_AreaPowerModel(benchmark::State& state) {
  const AreaPowerModel m(TechNode::kAsap7);
  for (auto _ : state) {
    for (int s : {8, 16, 32, 64, 128, 256}) {
      auto hw = m.axon({s, s}, true);
      benchmark::DoNotOptimize(hw.area_mm2);
    }
  }
}
BENCHMARK(BM_AreaPowerModel);

}  // namespace
}  // namespace axon

int main(int argc, char** argv) {
  return axon::bench::run(argc, argv,
                          [](std::ostream& os) { axon::print_tables(os); });
}
