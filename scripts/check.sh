#!/usr/bin/env bash
# One-command tier-1 gate: configure, build, test.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
# An explicit job count keeps this working on ctest < 3.29, where -j
# requires a value.
cd build && ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 2)"
