#!/usr/bin/env bash
# One-command tier-1 gate: configure, build, test — and, with
# AXON_RUN_EXAMPLES=1 (what CI sets), execute every example binary and
# fail on the first nonzero exit.
set -euo pipefail

cd "$(dirname "$0")/.."

# The bench-regression gate polices CI; its own logic is unit-tested
# first so a bug in the gate cannot silently wave regressions through.
python3 scripts/compare_bench.py --self-test

cmake -B build -S .
cmake --build build -j
# An explicit job count keeps this working on ctest < 3.29, where -j
# requires a value.
(cd build && ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 2)")

if [[ "${AXON_RUN_EXAMPLES:-0}" == "1" ]]; then
  for src in examples/*.cpp; do
    example="$(basename "${src%.cpp}")"
    echo "== running example: ${example}"
    if [[ ! -x "./build/${example}" ]]; then
      echo "== FAILED example: ${example} (binary missing — not built?)" >&2
      exit 1
    fi
    # Quiet on success; on failure, name the dead example FIRST (stderr,
    # so a long replayed transcript cannot bury it), then replay the
    # output — examples diagnose their own invariant breaks (e.g.
    # serve_traffic's determinism check) on stdout — and name it again
    # after the replay for readers scanning bottom-up.
    status=0
    out="$("./build/${example}" 2>&1)" || status=$?
    if [[ "${status}" -ne 0 ]]; then
      echo "== FAILED example: ${example} (exit ${status}); output follows" >&2
      echo "${out}"
      echo "== FAILED example: ${example} (exit ${status})" >&2
      exit 1
    fi
  done
  echo "all examples exited 0"
fi
