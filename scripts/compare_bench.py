#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh BENCH_serve.json against the
checked-in baseline (bench/baselines/BENCH_serve.json).

Every gated metric is in simulated cycles (deterministic on any host and
thread count), so any delta is a real behaviour change, not noise; a gated
metric fails when it regresses by more than the tolerance (default 2%).
Metrics in the explicit informational list — counts (requests, batches,
chunks, preemptions) and host wall-clock (wall_seconds, noisy by nature)
— are printed for the trajectory but can never fail the gate, and so can
unclassified metrics. Intentional changes update the baseline in the same
PR.

Usage:
  scripts/compare_bench.py BASELINE CURRENT [--tolerance-pct 2.0]

Exit status: 0 = within tolerance, 1 = regression (or malformed/missing
scenario), 2 = usage error.
"""

import argparse
import json
import sys

# Gated metrics: name -> "good" direction. Every one is in simulated
# cycles, so a regression is a real behaviour change. Keep this in sync
# with the JSON emitted by bench/serve_throughput.cpp run_smoke().
GATED_METRICS = {
    "makespan_cycles": "lower",
    "throughput_per_mcycle": "higher",
    "latency_p50_cycles": "lower",
    "latency_p99_cycles": "lower",
    "slo_attainment_pct": "higher",
    "weight_cache_hit_pct": "higher",
}

# Informational metrics: printed in the delta table for the trajectory,
# NEVER a gate. Two families live here: counts (a count change is a
# behaviour change, but the cycle metrics above already catch harmful
# ones) and host wall-clock (nondeterministic across runners — wall noise
# must never fail CI). A metric that appears in the JSON but in neither
# list is treated as informational too, with a note, so adding a metric to
# the bench without updating this script can loosen the gate but never
# flake it.
INFORMATIONAL_METRICS = {
    "requests",
    "batches",
    "chunks",
    "preemptions",
    "fleet_utilization_pct",  # higher is not always better: a faster
    # fleet idles more on the same open-loop trace
    "wall_seconds",
}


def load_scenarios(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(1)
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        print(f"error: {path} has no scenarios", file=sys.stderr)
        sys.exit(1)
    return {s["name"]: s for s in scenarios}


def regression_pct(direction, base, cur):
    """Percent change in the *bad* direction; <= 0 means no regression."""
    if base == 0:
        # A zero baseline can only regress by appearing (lower-better) —
        # report the raw delta as percent-of-nothing: any growth is 'inf'.
        if direction == "lower" and cur > 0:
            return float("inf")
        if direction == "higher" and cur < 0:
            return float("inf")
        return 0.0
    change = (cur - base) / abs(base) * 100.0
    return change if direction == "lower" else -change


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance-pct", type=float, default=2.0)
    args = parser.parse_args()

    base = load_scenarios(args.baseline)
    cur = load_scenarios(args.current)

    failures = []
    rows = []
    warned_metrics = set()
    for name, b in base.items():
        c = cur.get(name)
        if c is None:
            failures.append(f"scenario '{name}' missing from {args.current}")
            continue
        metrics = [k for k in b if k != "name"]
        for metric in metrics:
            direction = GATED_METRICS.get(metric)
            if (
                direction is None
                and metric not in INFORMATIONAL_METRICS
                and metric not in warned_metrics
            ):
                warned_metrics.add(metric)
                print(
                    f"note: metric '{metric}' not classified; treating as "
                    "informational (add it to scripts/compare_bench.py)"
                )
            if metric not in c:
                if direction is None:
                    continue  # a vanished informational metric never gates
                failures.append(f"{name}.{metric} missing from current run")
                continue
            bv, cv = b[metric], c[metric]
            delta = cv - bv
            pct = (delta / abs(bv) * 100.0) if bv else 0.0
            reg = (
                regression_pct(direction, bv, cv)
                if direction is not None
                else 0.0
            )
            bad = reg > args.tolerance_pct
            if bad:
                failures.append(
                    f"{name}.{metric}: {bv} -> {cv} "
                    f"({reg:+.2f}% worse, tolerance {args.tolerance_pct}%)"
                )
            rows.append((name, metric, bv, cv, delta, pct, direction, bad))
    for name in cur:
        if name not in base:
            # New scenarios are fine (the PR adding them updates the
            # baseline too), but say so — silence would hide drift.
            print(f"note: scenario '{name}' not in baseline")

    widths = (34, 24, 14, 14, 12, 9)
    header = ("scenario", "metric", "baseline", "current", "delta", "pct")
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for name, metric, bv, cv, delta, pct, direction, bad in rows:
        mark = " <-- FAIL" if bad else ("  (info)" if direction is None else "")
        fmt = lambda v: f"{v:.2f}" if isinstance(v, float) else str(v)
        print(
            f"{name:<{widths[0]}}  {metric:<{widths[1]}}  "
            f"{fmt(bv):>{widths[2]}}  {fmt(cv):>{widths[3]}}  "
            f"{fmt(delta):>{widths[4]}}  {pct:>+8.2f}%{mark}"
        )

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) beyond "
              f"{args.tolerance_pct}%:")
        for f in failures:
            print(f"  - {f}")
        print("\nIf this change is intentional, refresh the baseline in "
              "this PR:\n  ./build-bench/bench_serve_throughput --smoke "
              "--json bench/baselines/BENCH_serve.json")
        return 1
    print(f"\nOK: all gated metrics within {args.tolerance_pct}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
