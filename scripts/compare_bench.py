#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh BENCH_serve.json against the
checked-in baseline (bench/baselines/BENCH_serve.json).

Every gated metric is in simulated cycles (deterministic on any host and
thread count), so any delta is a real behaviour change, not noise; a gated
metric fails when it regresses by more than the tolerance (default 2%),
and when it is *missing* from either file — a silently vanished gate is a
gate that can never fire again. Metrics in the explicit informational list
— counts (requests, batches, chunks, preemptions) and host wall-clock
(wall_seconds and every "wall_"-prefixed key, noisy by nature) — are
printed for the trajectory but can never fail the gate, and so can
unclassified metrics. Intentional changes update the baseline in the same
PR.

Usage:
  scripts/compare_bench.py BASELINE CURRENT [--tolerance-pct 2.0]
  scripts/compare_bench.py --list BASELINE
  scripts/compare_bench.py --self-test

--list prints, per metric key found in the baseline, whether it gates
(and in which direction) or is informational — the answer to "would a
change here fail CI?" without staging a comparison.

Exit status: 0 = within tolerance, 1 = regression (or malformed/missing
scenario/missing gated metric, or self-test failure), 2 = usage error.
"""

import argparse
import contextlib
import io
import json
import os
import sys
import tempfile

# Gated metrics: name -> "good" direction. Every one is in simulated
# cycles, so a regression is a real behaviour change. Keep this in sync
# with the JSON emitted by bench/serve_throughput.cpp run_smoke().
GATED_METRICS = {
    "makespan_cycles": "lower",
    "throughput_per_mcycle": "higher",
    "latency_p50_cycles": "lower",
    "latency_p99_cycles": "lower",
    "slo_attainment_pct": "higher",
    "weight_cache_hit_pct": "higher",
}

# Scenario-scoped gated metrics: scenarios whose name starts with the
# prefix gate these *additional* metrics (same simulated-cycle rules as
# GATED_METRICS). The disagg scenarios publish the interactive decode tail
# their runtime-enforced claim is scored on — the artifact must gate it
# too, but only where it is emitted; the key is informational (not
# unclassified) everywhere else.
SCENARIO_GATED_METRICS = {
    "disagg_prefill_decode": {"decode_p99_cycles": "lower"},
}


def gated_metrics_for(scenario_name):
    """The full gate map for one scenario: global + scenario-scoped."""
    metrics = dict(GATED_METRICS)
    for prefix, extra in SCENARIO_GATED_METRICS.items():
        if scenario_name.startswith(prefix):
            metrics.update(extra)
    return metrics

# Informational metrics: printed in the delta table for the trajectory,
# NEVER a gate. Two families live here: counts (a count change is a
# behaviour change, but the cycle metrics above already catch harmful
# ones) and host wall-clock (nondeterministic across runners — wall noise
# must never fail CI; any "wall_"-prefixed key is informational by
# construction, so the bench can grow self-profile keys without touching
# this script). A metric that appears in the JSON but in neither list is
# treated as informational too, with a note, so adding a metric to the
# bench without updating this script can loosen the gate but never flake
# it.
INFORMATIONAL_METRICS = {
    "requests",
    "batches",
    "chunks",
    "preemptions",
    "fleet_utilization_pct",  # higher is not always better: a faster
    # fleet idles more on the same open-loop trace
    "wall_seconds",
    # obs/metrics registry counts published by serve_scale_200k:
    # deterministic, but count shifts are a trajectory, not a gate.
    "joins",
    "requeues",
    "deadline_misses",
}


def is_informational(metric):
    # "wall_" = host wall-clock, "rss_" = host peak memory: both are
    # host-side measurements (the RSS high-water mark is process-wide and
    # allocator-dependent), so they inform the trajectory but never gate.
    return (
        metric in INFORMATIONAL_METRICS
        or metric.startswith("wall_")
        or metric.startswith("rss_")
        # Scenario-scoped gates are classified: they gate inside their
        # scenarios and inform (without an "unclassified" note) elsewhere.
        or any(metric in extra for extra in SCENARIO_GATED_METRICS.values())
    )


def load_scenarios(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(1)
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        print(f"error: {path} has no scenarios", file=sys.stderr)
        sys.exit(1)
    return {s["name"]: s for s in scenarios}


def regression_pct(direction, base, cur):
    """Percent change in the *bad* direction; <= 0 means no regression."""
    if base == 0:
        # A zero baseline can only regress by appearing (lower-better) —
        # report the raw delta as percent-of-nothing: any growth is 'inf'.
        if direction == "lower" and cur > 0:
            return float("inf")
        if direction == "higher" and cur < 0:
            return float("inf")
        return 0.0
    change = (cur - base) / abs(base) * 100.0
    return change if direction == "lower" else -change


def compare(baseline_path, current_path, tolerance_pct):
    """The whole gate; returns the process exit code (0 ok, 1 fail)."""
    base = load_scenarios(baseline_path)
    cur = load_scenarios(current_path)

    failures = []
    rows = []
    warned_metrics = set()
    for name, b in base.items():
        c = cur.get(name)
        if c is None:
            failures.append(f"scenario '{name}' missing from {current_path}")
            continue
        # Every gated metric must exist on both sides: a gate that quietly
        # disappears from the bench (or was never in the baseline) is a
        # gate that can never fire again, so its absence fails loudly,
        # naming the side that lost it. The map is per-scenario: scoped
        # gates only bind where their prefix matches.
        gates = gated_metrics_for(name)
        for metric in gates:
            for side, doc, path in (("baseline", b, baseline_path),
                                    ("current", c, current_path)):
                if metric not in doc:
                    failures.append(
                        f"{name}.{metric}: gated metric missing from "
                        f"{side} ({path}) — gated metrics may not vanish; "
                        "if renamed/removed intentionally, update "
                        "GATED_METRICS in scripts/compare_bench.py and "
                        "refresh the baseline in the same PR"
                    )
        metrics = [k for k in b if k != "name"]
        for metric in metrics:
            direction = gates.get(metric)
            if (
                direction is None
                and not is_informational(metric)
                and metric not in warned_metrics
            ):
                warned_metrics.add(metric)
                print(
                    f"note: metric '{metric}' not classified; treating as "
                    "informational (add it to scripts/compare_bench.py)"
                )
            if metric not in c:
                # Gated absences were reported above; informational ones
                # never gate.
                continue
            bv, cv = b[metric], c[metric]
            delta = cv - bv
            pct = (delta / abs(bv) * 100.0) if bv else 0.0
            reg = (
                regression_pct(direction, bv, cv)
                if direction is not None
                else 0.0
            )
            bad = reg > tolerance_pct
            if bad:
                failures.append(
                    f"{name}.{metric}: {bv} -> {cv} "
                    f"({reg:+.2f}% worse, tolerance {tolerance_pct}%)"
                )
            rows.append((name, metric, bv, cv, delta, pct, direction, bad))
    for name in cur:
        if name not in base:
            # New scenarios are fine (the PR adding them updates the
            # baseline too), but say so — silence would hide drift.
            print(f"note: scenario '{name}' not in baseline")

    widths = (34, 24, 14, 14, 12, 9)
    header = ("scenario", "metric", "baseline", "current", "delta", "pct")
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for name, metric, bv, cv, delta, pct, direction, bad in rows:
        mark = " <-- FAIL" if bad else ("  (info)" if direction is None else "")
        fmt = lambda v: f"{v:.2f}" if isinstance(v, float) else str(v)
        print(
            f"{name:<{widths[0]}}  {metric:<{widths[1]}}  "
            f"{fmt(bv):>{widths[2]}}  {fmt(cv):>{widths[3]}}  "
            f"{fmt(delta):>{widths[4]}}  {pct:>+8.2f}%{mark}"
        )

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) beyond "
              f"{tolerance_pct}%:")
        for f in failures:
            print(f"  - {f}")
        print("\nIf this change is intentional, refresh the baseline in "
              "this PR:\n  ./build-bench/bench_serve_throughput --smoke "
              "--json bench/baselines/BENCH_serve.json")
        return 1
    print(f"\nOK: all gated metrics within {tolerance_pct}% of baseline")
    return 0


def list_classification(baseline_path):
    """--list: per metric key in the baseline, print whether it gates
    (with direction) or only informs, and which scenarios carry it."""
    scenarios = load_scenarios(baseline_path)
    carriers = {}
    for name, doc in scenarios.items():
        for metric in doc:
            if metric == "name":
                continue
            carriers.setdefault(metric, []).append(name)

    widths = (28, 26, 10)
    header = ("metric", "classification", "scenarios")
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(f"{len(scenarios)} scenario(s) in {baseline_path}\n")
    print(line)
    print("-" * len(line))
    gated = informational = 0
    for metric in sorted(carriers):
        direction = GATED_METRICS.get(metric)
        scoped = {
            d
            for n in carriers[metric]
            for d in [gated_metrics_for(n).get(metric)]
            if d is not None and GATED_METRICS.get(metric) is None
        }
        if direction is not None:
            classification = f"GATED ({direction} is better)"
            gated += 1
        elif scoped:
            gating = [
                n for n in carriers[metric]
                if gated_metrics_for(n).get(metric) is not None
            ]
            classification = (
                f"GATED in {len(gating)}/{len(carriers[metric])} "
                f"({next(iter(scoped))} is better)"
            )
            gated += 1
        elif is_informational(metric):
            classification = "informational"
            informational += 1
        else:
            classification = "informational (unlisted)"
            informational += 1
        n = len(carriers[metric])
        scope = "all" if n == len(scenarios) else f"{n}/{len(scenarios)}"
        print(f"{metric:<{widths[0]}}  {classification:<{widths[1]}}  {scope}")
    # Gated metrics the baseline does not carry would fail a compare run
    # (gates may not vanish) — surface them here too.
    for metric in sorted(GATED_METRICS):
        if metric not in carriers:
            print(f"{metric:<{widths[0]}}  GATED but MISSING from baseline "
                  "— compare would fail")
    print(f"\n{gated} gated, {informational} informational")
    return 0


# ---- self-test ----------------------------------------------------------


def _scenario(**overrides):
    s = {
        "name": "s",
        "requests": 100,
        "makespan_cycles": 1000,
        "throughput_per_mcycle": 10.0,
        "latency_p50_cycles": 50,
        "latency_p99_cycles": 200,
        "slo_attainment_pct": 99.0,
        "weight_cache_hit_pct": 80.0,
        "wall_seconds": 1.0,
    }
    s.update(overrides)
    return s


def _run_case(label, base_scenario, cur_scenario, expect_exit,
              expect_in_output=None):
    """Writes the two one-scenario docs to temp files, runs the real
    compare() on them, and checks exit code (and optionally a message)."""
    paths = []
    try:
        for doc in (base_scenario, cur_scenario):
            fd, path = tempfile.mkstemp(suffix=".json")
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump({"scenarios": [doc]}, f)
            paths.append(path)
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = compare(paths[0], paths[1], 2.0)
        problems = []
        if code != expect_exit:
            problems.append(f"exit {code}, expected {expect_exit}")
        if expect_in_output and expect_in_output not in out.getvalue():
            problems.append(f"output lacks {expect_in_output!r}")
        status = "ok" if not problems else "FAIL (" + "; ".join(problems) + ")"
        print(f"  self-test: {label}: {status}")
        return not problems
    finally:
        for path in paths:
            os.unlink(path)


def self_test():
    """Unit-style checks of the gate itself (scripts/check.sh runs this):
    regressions fail, improvements and wall noise pass, and a gated
    metric missing from either side fails with a pointed message."""
    base = _scenario()
    ok = True
    ok &= _run_case("identical docs pass", base, _scenario(), 0)
    ok &= _run_case(
        "gated regression fails",
        base, _scenario(makespan_cycles=1100), 1, "makespan_cycles")
    ok &= _run_case(
        "within-tolerance drift passes",
        base, _scenario(makespan_cycles=1010), 0)
    ok &= _run_case(
        "improvement passes", base, _scenario(makespan_cycles=500), 0)
    missing = _scenario()
    del missing["latency_p99_cycles"]
    ok &= _run_case(
        "gated metric missing from current fails",
        base, missing, 1, "missing from current")
    ok &= _run_case(
        "gated metric missing from baseline fails",
        missing, base, 1, "missing from baseline")
    ok &= _run_case(
        "wall_ keys never gate",
        _scenario(wall_phase_pick_seconds=0.001),
        _scenario(wall_phase_pick_seconds=99.0), 0)
    ok &= _run_case(
        "rss_ keys never gate",
        _scenario(rss_mb_peak=100.0),
        _scenario(rss_mb_peak=9000.0), 0)
    ok &= _run_case(
        "unclassified metric informs, never gates",
        _scenario(brand_new_metric=1),
        _scenario(brand_new_metric=1000), 0, "not classified")
    # Scenario-scoped gates: decode_p99_cycles gates inside the disagg
    # scenarios, informs (no unclassified note) everywhere else.
    disagg = _scenario(name="disagg_prefill_decode_split",
                       decode_p99_cycles=1000)
    ok &= _run_case(
        "scoped gate regression fails",
        disagg,
        _scenario(name="disagg_prefill_decode_split",
                  decode_p99_cycles=1100), 1, "decode_p99_cycles")
    ok &= _run_case(
        "scoped gate improvement passes",
        disagg,
        _scenario(name="disagg_prefill_decode_split",
                  decode_p99_cycles=500), 0)
    missing_scoped = _scenario(name="disagg_prefill_decode_split")
    ok &= _run_case(
        "scoped gated metric missing from current fails",
        disagg, missing_scoped, 1, "missing from current")
    ok &= _run_case(
        "scoped key outside its scenarios never gates",
        _scenario(decode_p99_cycles=100),
        _scenario(decode_p99_cycles=10000), 0)
    ok &= _list_case()
    print("self-test:", "OK" if ok else "FAIL")
    return 0 if ok else 1


def _list_case():
    """--list classifies every key of a representative scenario: gated
    metrics as GATED with their direction, wall/unlisted keys as
    informational."""
    fd, path = tempfile.mkstemp(suffix=".json")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump({"scenarios": [_scenario(brand_new_metric=1)]}, f)
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = list_classification(path)
        text = out.getvalue()
        problems = []
        if code != 0:
            problems.append(f"exit {code}, expected 0")
        for needle in (
            "makespan_cycles",
            "GATED (lower is better)",
            "GATED (higher is better)",
            "informational (unlisted)",
        ):
            if needle not in text:
                problems.append(f"output lacks {needle!r}")
        status = "ok" if not problems else "FAIL (" + "; ".join(problems) + ")"
        print(f"  self-test: --list classifies baseline keys: {status}")
        return not problems
    finally:
        os.unlink(path)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--tolerance-pct", type=float, default=2.0)
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate's own unit checks and exit")
    parser.add_argument("--list", action="store_true",
                        help="print the gated-vs-informational "
                        "classification of every baseline metric and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.list:
        if args.baseline is None:
            parser.print_usage(sys.stderr)
            return 2
        return list_classification(args.baseline)
    if args.baseline is None or args.current is None:
        parser.print_usage(sys.stderr)
        return 2
    return compare(args.baseline, args.current, args.tolerance_pct)


if __name__ == "__main__":
    sys.exit(main())
