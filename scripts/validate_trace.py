#!/usr/bin/env python3
"""Validator for obs/trace TraceSink output (Chrome trace-event JSON).

CI runs this on the small trace bench_serve_scale --trace writes, so a
malformed timeline fails the build instead of failing silently months
later in somebody's chrome://tracing tab. Checks:

  1. The file parses as JSON with a non-empty "traceEvents" list.
  2. Every event carries the trace-event required fields for its phase,
     with integer timestamps >= 0 (the simulated-cycle timebase) and
     non-negative durations.
  3. Per (pid, tid) track, timestamps of "X" (complete span) and "C"
     (counter) events are monotonically non-decreasing — the serve loop
     emits them in event order, so a violation means the sink reordered
     the timeline. Async "b"/"e" pairs and instants are exempt: the sink
     emits async opens at close time with their (earlier) open timestamp
     by design (see src/obs/trace.hpp).

Usage:
  scripts/validate_trace.py TRACE.json

Exit status: 0 = valid, 1 = invalid, 2 = usage error.
"""

import json
import sys


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def validate(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load {path}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(f"{path} has no traceEvents")

    # Monotonicity cursors per (pid, tid) track, "X"/"C" phases only.
    last_ts = {}
    phases = {}
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            return fail(f"event {i} is not an object")
        ph = e.get("ph")
        if not isinstance(ph, str) or not ph:
            return fail(f"event {i} has no phase ('ph')")
        phases[ph] = phases.get(ph, 0) + 1
        if ph == "M":  # metadata carries no timestamp
            continue
        ts = e.get("ts")
        if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
            return fail(
                f"event {i} (ph '{ph}') has non-integer or negative "
                f"ts {ts!r} — the timebase is integer simulated cycles"
            )
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, int) or isinstance(dur, bool) or dur < 0:
                return fail(f"event {i} ('X' span) has bad dur {dur!r}")
        if ph in ("X", "C"):
            track = (e.get("pid"), e.get("tid"))
            prev = last_ts.get(track)
            if prev is not None and ts < prev:
                return fail(
                    f"event {i} (ph '{ph}', track pid={track[0]} "
                    f"tid={track[1]}) has ts {ts} < previous {prev} — "
                    "per-track timestamps must be monotone"
                )
            last_ts[track] = ts

    summary = "  ".join(f"{ph}:{n}" for ph, n in sorted(phases.items()))
    print(
        f"validate_trace: OK: {len(events)} events on {len(last_ts)} "
        f"monotone tracks ({summary})"
    )
    return 0


def main():
    if len(sys.argv) != 2:
        print("usage: validate_trace.py TRACE.json", file=sys.stderr)
        return 2
    return validate(sys.argv[1])


if __name__ == "__main__":
    sys.exit(main())
