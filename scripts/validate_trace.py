#!/usr/bin/env python3
"""Validator for obs/trace TraceSink output (Chrome trace-event JSON).

CI runs this on the small trace bench_serve_scale --trace writes, so a
malformed timeline fails the build instead of failing silently months
later in somebody's chrome://tracing tab. Checks:

  1. The file parses as JSON with a non-empty "traceEvents" list.
  2. Every event carries the trace-event required fields for its phase,
     with integer timestamps >= 0 (the simulated-cycle timebase) and
     non-negative durations.
  3. Per (pid, tid) track, timestamps of "X" (complete span) and "C"
     (counter) events are monotonically non-decreasing — the serve loop
     emits them in event order, so a violation means the sink reordered
     the timeline. Async "b"/"e" pairs and instants are exempt: the sink
     emits async opens at close time with their (earlier) open timestamp
     by design (see src/obs/trace.hpp).
  4. Every counter ("C") arg value is a non-negative integer — all of the
     sink's counter series (sched/load/wcache occupancy and the
     "node<i>:dram" contention tracks) count things that cannot go
     negative, so a negative sample means the arbiter bookkeeping
     underflowed.
  5. A trace that carries "contend" instants (a contention-enabled run)
     must also carry at least one "node<i>:dram" counter series —
     slowdown onsets without the matching node pressure track mean the
     sink dropped the NodeSample path.
  6. No two "X" (complete) events share an identity (pid, tid, batch,
     chunk ordinal): the same chunk retiring twice means the completion
     calendar re-fired a stale entry — exactly the bug its versioned keys
     exist to prevent.

Usage:
  scripts/validate_trace.py TRACE.json
  scripts/validate_trace.py --self-test

Exit status: 0 = valid, 1 = invalid, 2 = usage error.
"""

import json
import sys


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def validate_doc(doc, path):
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(f"{path} has no traceEvents")

    # Monotonicity cursors per (pid, tid) track, "X"/"C" phases only.
    last_ts = {}
    phases = {}
    counter_series = set()
    contend_instants = 0
    seen_complete_ids = set()
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            return fail(f"event {i} is not an object")
        ph = e.get("ph")
        if not isinstance(ph, str) or not ph:
            return fail(f"event {i} has no phase ('ph')")
        phases[ph] = phases.get(ph, 0) + 1
        if ph == "M":  # metadata carries no timestamp
            continue
        ts = e.get("ts")
        if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
            return fail(
                f"event {i} (ph '{ph}') has non-integer or negative "
                f"ts {ts!r} — the timebase is integer simulated cycles"
            )
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, int) or isinstance(dur, bool) or dur < 0:
                return fail(f"event {i} ('X' span) has bad dur {dur!r}")
            args = e.get("args")
            if isinstance(args, dict) and "batch" in args and "chunk" in args:
                # A multi-stage request reuses its id as the batch id of
                # every stage's batch, so stage (0 when absent — stage-0
                # spans omit the key) is part of the chunk's identity.
                ident = (e.get("pid"), e.get("tid"), args["batch"],
                         args["chunk"], args.get("stage", 0))
                if ident in seen_complete_ids:
                    return fail(
                        f"event {i} ('X' span) duplicates complete-event id "
                        f"pid={ident[0]} tid={ident[1]} batch={ident[2]} "
                        f"chunk={ident[3]} stage={ident[4]} "
                        "— the same chunk retired twice "
                        "(stale completion-calendar entry re-fired)"
                    )
                seen_complete_ids.add(ident)
        if ph == "C":
            name = e.get("name")
            if isinstance(name, str):
                counter_series.add(name)
            args = e.get("args")
            if not isinstance(args, dict) or not args:
                return fail(f"event {i} ('C' counter) has no args")
            for key, value in args.items():
                if (not isinstance(value, int) or isinstance(value, bool)
                        or value < 0):
                    return fail(
                        f"event {i} ('C' counter '{name}') arg "
                        f"'{key}' is {value!r} — counter samples must be "
                        "non-negative integers"
                    )
        if ph == "i" and e.get("cat") == "contend":
            contend_instants += 1
        if ph in ("X", "C"):
            track = (e.get("pid"), e.get("tid"))
            prev = last_ts.get(track)
            if prev is not None and ts < prev:
                return fail(
                    f"event {i} (ph '{ph}', track pid={track[0]} "
                    f"tid={track[1]}) has ts {ts} < previous {prev} — "
                    "per-track timestamps must be monotone"
                )
            last_ts[track] = ts

    node_series = sorted(
        n for n in counter_series
        if n.startswith("node") and n.endswith(":dram")
    )
    if contend_instants and not node_series:
        return fail(
            f"{contend_instants} 'contend' instant(s) but no 'node<i>:dram' "
            "counter series — a contention-enabled run must publish its "
            "node pressure tracks"
        )

    summary = "  ".join(f"{ph}:{n}" for ph, n in sorted(phases.items()))
    extra = ""
    if node_series:
        extra = (
            f"; contention: {len(node_series)} node track(s), "
            f"{contend_instants} contend instant(s)"
        )
    print(
        f"validate_trace: OK: {len(events)} events on {len(last_ts)} "
        f"monotone tracks ({summary}){extra}"
    )
    return 0


def validate(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load {path}: {e}")
    return validate_doc(doc, path)


# ---- self-test ----------------------------------------------------------


def _doc(events):
    return {"traceEvents": events}


def _span(ts=0, dur=10, pid=0, tid=0, batch=1, chunk=0, stage=None):
    args = {"batch": batch, "chunk": chunk, "m": 1, "size": 1, "final": 1}
    if stage is not None:  # successor-stage spans carry the stage index
        args["stage"] = stage
    return {
        "ph": "X", "pid": pid, "tid": tid, "ts": ts, "dur": dur,
        "cat": "exec", "name": f"b{batch}/c{chunk}",
        "args": args,
    }


def _counter(name="sched", ts=0, **args):
    return {"ph": "C", "pid": 3, "tid": 0, "ts": ts, "name": name,
            "args": args or {"ready": 0}}


def _contend(ts=0):
    return {"ph": "i", "s": "t", "pid": 1, "tid": 0, "ts": ts,
            "cat": "contend", "name": "contend n0",
            "args": {"node": 0, "demand": 2, "hop_cycles": 0}}


def self_test():
    """Unit-style checks of the validator itself (CI's format job runs
    this): good traces pass, and each hardening check fires on the
    malformed shape it exists for."""
    import contextlib
    import io

    cases = [
        ("minimal valid trace passes",
         _doc([_span(), _counter()]), 0, None),
        ("monotone violation fails",
         _doc([_span(ts=100, batch=1), _span(ts=50, batch=2)]), 1,
         "monotone"),
        ("negative counter arg fails",
         _doc([_counter("load", busy_devices=-1)]), 1, "non-negative"),
        ("counter without args fails",
         _doc([{"ph": "C", "pid": 3, "tid": 0, "ts": 0, "name": "x"}]), 1,
         "no args"),
        ("duplicate complete-event id fails",
         _doc([_span(ts=0, batch=7, chunk=0), _span(ts=5, batch=7, chunk=0)]),
         1, "retired twice"),
        ("same batch, later chunk passes",
         _doc([_span(ts=0, batch=7, chunk=0), _span(ts=5, batch=7, chunk=1)]),
         0, None),
        ("same batch id, successor stage passes",
         _doc([_span(ts=0, batch=7, chunk=0),
               _span(ts=5, batch=7, chunk=0, stage=1)]), 0, None),
        ("duplicate successor-stage chunk fails",
         _doc([_span(ts=0, batch=7, chunk=0, stage=1),
               _span(ts=5, batch=7, chunk=0, stage=1)]), 1,
         "retired twice"),
        ("contend instants without node tracks fail",
         _doc([_contend()]), 1, "node<i>:dram"),
        ("contention-enabled trace passes",
         _doc([_contend(),
               _counter("node0:dram", ts=0, streams=2, inflight_bytes=64)]),
         0, None),
    ]
    ok = True
    for label, doc, expect_exit, expect_msg in cases:
        out = io.StringIO()
        err = io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = validate_doc(doc, "<self-test>")
        problems = []
        if code != expect_exit:
            problems.append(f"exit {code}, expected {expect_exit}")
        if expect_msg and expect_msg not in err.getvalue():
            problems.append(f"stderr lacks {expect_msg!r}")
        status = "ok" if not problems else "FAIL (" + "; ".join(problems) + ")"
        print(f"  self-test: {label}: {status}")
        ok &= not problems
    print("self-test:", "OK" if ok else "FAIL")
    return 0 if ok else 1


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        return self_test()
    if len(sys.argv) != 2:
        print("usage: validate_trace.py TRACE.json | --self-test",
              file=sys.stderr)
        return 2
    return validate(sys.argv[1])


if __name__ == "__main__":
    sys.exit(main())
