// ResNet50 on Axon: runs a real bottleneck block cycle-accurately (spatially
// reduced so the simulation stays interactive) and then reports the
// full-network conv-layer DRAM traffic / energy with and without the
// on-chip im2col support, as in paper §5.2.1.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "hw/energy.hpp"
#include "memory/dram.hpp"
#include "model/im2col_traffic.hpp"
#include "runner/accelerator.hpp"
#include "tensor/conv_ref.hpp"
#include "workloads/convnets.hpp"

using namespace axon;

namespace {

// conv2_x bottleneck (1x1 -> 3x3 -> 1x1) at reduced spatial size 14x14 and
// reduced channel counts, preserving the layer structure.
struct Block {
  ConvShape reduce = make_conv(16, 14, 8, 1);
  ConvShape spatial = make_conv(8, 14, 8, 3, 1, 1);
  ConvShape expand = make_conv(8, 14, 32, 1);
};

void run_block_cycle_accurate() {
  const Block blk;
  Rng rng(1);
  Tensor4 x = random_tensor(1, 16, 14, 14, rng);

  Table t({"layer", "arch", "cycles", "ifmap_loads", "mux_forwards"});
  for (ArchType arch : {ArchType::kConventionalSA, ArchType::kAxon}) {
    Tensor4 act = x;
    for (const auto& [name, shape] :
         {std::pair{std::string("1x1_reduce"), blk.reduce},
          std::pair{std::string("3x3"), blk.spatial},
          std::pair{std::string("1x1_expand"), blk.expand}}) {
      Rng frng(7);
      const Tensor4 f = random_tensor(shape.out_channels,
                                      shape.in_channels / shape.groups,
                                      shape.kernel_h, shape.kernel_w, frng);
      Accelerator acc({.arch = arch, .array = {16, 16}});
      const RunReport r = acc.run_conv(act, f, shape);
      t.row()
          .cell(name)
          .cell(to_string(arch))
          .cell(r.cycles)
          .cell(r.stats.get("sram.ifmap.loads"))
          .cell(r.stats.get("feeder.neighbor.forwards"));
      act = r.conv_out;
    }
  }
  t.print(std::cout,
          "Reduced ResNet bottleneck block, cycle-accurate on 16x16");
}

void report_full_network_energy() {
  const DramModel dram;
  i64 sw_bytes = 0, ax_bytes = 0;
  for (const ConvWorkload& l : resnet50_conv_layers()) {
    sw_bytes += conv_dram_traffic(l.shape, Im2colMode::kSoftware).total() *
                l.repeats;
    ax_bytes += conv_dram_traffic(l.shape, Im2colMode::kAxonOnChip).total() *
                l.repeats;
  }
  const EnergyComparison e = compare_dram_energy(dram, sw_bytes, ax_bytes);
  Table t({"metric", "software_im2col", "axon_onchip"});
  t.row()
      .cell("conv DRAM traffic (MB)")
      .cell(static_cast<double>(sw_bytes) / (1024.0 * 1024.0), 1)
      .cell(static_cast<double>(ax_bytes) / (1024.0 * 1024.0), 1);
  t.row()
      .cell("DRAM energy (mJ)")
      .cell(e.baseline_energy_mj, 2)
      .cell(e.axon_energy_mj, 2);
  std::cout << "\n";
  t.print(std::cout, "ResNet50 full-network conv traffic (batch 1, FP16)");
  std::cout << "traffic reduction: " << fmt_double(e.traffic_reduction_pct, 1)
            << "% — energy saved " << fmt_double(e.saved_energy_mj, 2)
            << " mJ per inference (paper: 261.2 -> 153.5 MB, ~12 mJ)\n";
}

}  // namespace

int main() {
  run_block_cycle_accurate();
  report_full_network_energy();
  return 0;
}
