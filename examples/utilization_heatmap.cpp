// Visualizes per-PE activity: why the conventional SA wastes PE-cycles on
// skewed fills and how Axon's diagonal feeding changes the picture. Prints
// ASCII heatmaps of MAC counts per PE for a small tile, plus the
// utilization numbers for a rectangular workload.
#include <iostream>

#include "baseline/conventional_array.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/axon_array.hpp"
#include "model/utilization.hpp"

using namespace axon;

namespace {

void print_heatmap(const Matrix& activity, i64 cycles,
                   const std::string& name) {
  std::cout << name << " (per-PE MACs over " << cycles << " cycles):\n";
  float max_v = 0.0f;
  for (i64 i = 0; i < activity.rows(); ++i) {
    for (i64 j = 0; j < activity.cols(); ++j) {
      max_v = std::max(max_v, activity.at(i, j));
    }
  }
  const char* shades = " .:-=+*#%@";
  for (i64 i = 0; i < activity.rows(); ++i) {
    std::cout << "  ";
    for (i64 j = 0; j < activity.cols(); ++j) {
      const int level = max_v == 0.0f
                            ? 0
                            : static_cast<int>(activity.at(i, j) / max_v * 9);
      std::cout << shades[level] << shades[level];
    }
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  Rng rng(90);
  const Matrix a = random_matrix(12, 6, rng);
  const Matrix b = random_matrix(6, 12, rng);

  const GemmRunResult sa =
      ConventionalArraySim({12, 12}).run(Dataflow::kOS, a, b);
  const GemmRunResult ax = AxonArraySim({12, 12}).run(Dataflow::kOS, a, b);
  // Both architectures perform identical per-PE work on a full tile; the
  // difference is how many *cycles* that work is spread over.
  print_heatmap(sa.pe_activity, sa.cycles, "conventional SA (12x12, T=6)");
  print_heatmap(ax.pe_activity, ax.cycles, "Axon (12x12, T=6)");
  std::cout << "same MACs, " << sa.cycles << " vs " << ax.cycles
            << " cycles -> utilization "
            << fmt_double(100.0 * static_cast<double>(sa.macs.total_macs()) /
                              (144.0 * static_cast<double>(sa.cycles)),
                          1)
            << "% vs "
            << fmt_double(100.0 * static_cast<double>(ax.macs.total_macs()) /
                              (144.0 * static_cast<double>(ax.cycles)),
                          1)
            << "%\n\n";

  // Model-level utilization for the Table-3-style rectangular workload.
  Table t({"array", "UR_SA_%", "UR_Axon_%", "improvement_pp"});
  const GemmShape g{256, 84, 1024};
  for (int s : {32, 64, 128, 256}) {
    const double ur_sa =
        best_utilization_rate(ArchType::kConventionalSA, g, {s, s});
    const double ur_ax = best_utilization_rate(ArchType::kAxon, g, {s, s});
    t.row()
        .cell(std::to_string(s) + "x" + std::to_string(s))
        .cell(100.0 * ur_sa, 2)
        .cell(100.0 * ur_ax, 2)
        .cell(100.0 * (ur_ax - ur_sa), 2);
  }
  t.print(std::cout, "utilization for GEMM(256, 84, 1024), best dataflow");
  return 0;
}
