// Memory-bound workloads: depthwise convolution and GEMV, the cases where
// Axon's unskewed diagonal feeding shines (paper Fig. 14: avg 1.8x).
// Runs small instances cycle-accurately and the MobileNet/GEMV sets through
// the analytical model.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "baseline/conventional_array.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/axon_array.hpp"
#include "core/conv_executor.hpp"
#include "tensor/gemm_ref.hpp"
#include "runner/experiments.hpp"
#include "tensor/conv_ref.hpp"

using namespace axon;

int main() {
  // Cycle-accurate GEMV (WS: weights preloaded, the vector streams).
  {
    Rng rng(31);
    const Matrix w = random_matrix(24, 24, rng);
    const Matrix x = random_matrix(24, 1, rng);
    ConventionalArraySim sa({24, 24});
    AxonArraySim ax({24, 24});
    const auto rs = sa.run(Dataflow::kWS, w, x);
    const auto ra = ax.run(Dataflow::kWS, w, x);
    Table t({"arch", "cycles", "fill", "preload", "ok"});
    const Matrix golden = gemm_ref(w, x);
    t.row()
        .cell("SA")
        .cell(rs.cycles)
        .cell(rs.fill_cycles)
        .cell(rs.preload_cycles)
        .cell(rs.out.approx_equal(golden, 1e-3) ? "yes" : "NO");
    t.row()
        .cell("Axon")
        .cell(ra.cycles)
        .cell(ra.fill_cycles)
        .cell(ra.preload_cycles)
        .cell(ra.out.approx_equal(golden, 1e-3) ? "yes" : "NO");
    t.print(std::cout, "GEMV 24x24 (WS), cycle-accurate");
  }

  // Cycle-accurate depthwise conv on both arrays.
  {
    const ConvShape dw = make_conv(8, 12, 8, 3, 1, 1, 8);
    Rng rng(32);
    const Tensor4 in = random_tensor(1, 8, 12, 12, rng);
    const Tensor4 f = random_tensor(8, 1, 3, 3, rng);
    const auto rs = run_conv_sa_software_im2col(in, f, dw, {12, 12});
    const auto ra = run_conv_axon_im2col(in, f, dw, {12, 12});
    const Tensor4 golden = conv2d_ref(in, f, dw);
    double worst = 0.0;
    for (i64 i = 0; i < golden.size(); ++i) {
      worst = std::max(worst, std::abs(static_cast<double>(
                                  ra.output.data()[i] - golden.data()[i])));
    }
    std::cout << "\nDW-conv 8ch 12x12 3x3 on 12x12 array: SA " << rs.cycles
              << " cycles, Axon " << ra.cycles << " cycles; Axon SRAM loads "
              << ra.ifmap_sram_loads << " vs SA " << rs.ifmap_sram_loads
              << "; max error vs direct conv " << worst << "\n";
  }

  // Analytical Fig. 14 set.
  const auto rows = fig14_dwconv_gemv(128);
  Table t({"workload", "SA_cycles", "Axon_cycles", "speedup"});
  double sum = 0.0;
  for (const Fig14Row& r : rows) {
    t.row()
        .cell(r.workload)
        .cell(r.sa_cycles)
        .cell(r.axon_cycles)
        .cell(r.speedup, 3);
    sum += r.speedup;
  }
  std::cout << "\n";
  t.print(std::cout, "MobileNet DW / conformer DW / GEMV on 128x128");
  std::cout << "average speedup " << fmt_double(sum / rows.size(), 3)
            << " (paper: 1.8x)\n";
  return 0;
}
