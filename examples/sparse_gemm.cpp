// Sparse GEMM with zero gating: sweeps IFMAP sparsity, runs the
// cycle-accurate Axon array, and reports gated-MAC fractions and the
// resulting power estimate (paper §5.2.1: 5.3% reduction at 10% sparsity).
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "hw/area_power.hpp"
#include "runner/accelerator.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/sparsity.hpp"

using namespace axon;

int main() {
  const AreaPowerModel hw(TechNode::kAsap7);
  const double base_power = hw.axon({16, 16}, /*with_im2col=*/true).power_mw;

  Table t({"sparsity_%", "gated_MACs", "total_MACs", "gated_%", "power_mW",
           "reduction_%", "result_ok"});
  Rng rng(21);
  const Matrix dense_b = random_matrix(64, 48, rng);
  for (double s : {0.0, 0.1, 0.25, 0.5, 0.75}) {
    Matrix a = random_sparse_matrix(48, 64, s, rng);
    const Matrix golden = gemm_ref(a, dense_b);

    Accelerator acc({.arch = ArchType::kAxon, .array = {16, 16}});
    const RunReport r = acc.run_gemm(a, dense_b);

    const double gated_frac = static_cast<double>(r.macs.gated_macs) /
                              static_cast<double>(r.macs.total_macs());
    const double power = hw.power_with_zero_gating(base_power, gated_frac);
    t.row()
        .cell(100.0 * s, 1)
        .cell(r.macs.gated_macs)
        .cell(r.macs.total_macs())
        .cell(100.0 * gated_frac, 2)
        .cell(power, 2)
        .cell(100.0 * (1.0 - power / base_power), 2)
        .cell(r.out.approx_equal(golden, 1e-3) ? "yes" : "NO");
  }
  t.print(std::cout,
          "Sparse GEMM 48x64x48 on Axon 16x16 with zero gating "
          "(results identical; only power changes)");
  std::cout << "\npaper reference point: 10% sparsity -> 5.3% total power "
               "reduction\n";
  return 0;
}
