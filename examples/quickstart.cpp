// Quickstart: run one GEMM on the Axon accelerator and on the conventional
// systolic array, cycle-accurately, and compare.
//
//   $ ./quickstart
//
// Walks through the core public API: Accelerator, RunReport, and the
// analytical runtime model.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "runner/accelerator.hpp"
#include "tensor/gemm_ref.hpp"

using namespace axon;

int main() {
  // A 48x32 * 32x40 GEMM on a 16x16 array: 3x3 = 9 output tiles.
  Rng rng(42);
  const Matrix a = random_matrix(48, 32, rng);
  const Matrix b = random_matrix(32, 40, rng);
  const Matrix golden = gemm_ref(a, b);

  Table t({"arch", "dataflow", "cycles", "model_cycles", "tiles",
           "utilization_%", "correct"});
  for (ArchType arch : {ArchType::kConventionalSA, ArchType::kAxon}) {
    for (Dataflow df : {Dataflow::kOS, Dataflow::kWS, Dataflow::kIS}) {
      Accelerator acc({.arch = arch, .array = {16, 16}, .dataflow = df});
      const RunReport r = acc.run_gemm(a, b);
      t.row()
          .cell(to_string(arch))
          .cell(to_string(df))
          .cell(r.cycles)
          .cell(r.model_cycles)
          .cell(r.tiles)
          .cell(100.0 * r.utilization, 1)
          .cell(r.out.approx_equal(golden, 1e-3) ? "yes" : "NO");
    }
  }
  t.print(std::cout, "GEMM 48x32x40 on a 16x16 array, cycle-accurate");

  std::cout << "\nAxon injects operands at the diagonal PEs and propagates\n"
               "bi-directionally, cutting the fill latency from R+C-2 to\n"
               "max(R,C)-1 — the cycle advantage you see above.\n";
  return 0;
}
