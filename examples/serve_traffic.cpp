// Inference serving end-to-end: synthesize Poisson traffic over a
// ResNet50 + BERT layer mix, drain it through the dynamic batcher and a
// pool of simulated Axon accelerators, and report fleet latency/throughput.
//
//   $ ./serve_traffic
//
// Sweeps the two serving knobs (max batch size, pool size), compares FIFO
// with shortest-job-first, and demonstrates the determinism contract: the
// simulated-cycle percentiles are identical for 1 and 8 worker threads.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "serve/pool.hpp"
#include "serve/request.hpp"

using namespace axon;
using namespace axon::serve;

namespace {

constexpr std::uint64_t kTraceSeed = 2025;

RequestQueue make_trace(int num_requests, double mean_gap) {
  Rng rng(kTraceSeed);
  return generate_trace(mixed_serve_mix(), {num_requests, mean_gap}, rng);
}

// The batch sweep uses the one-token decode mix: each request is
// transfer-bound on its weight matrix, so coalescing users that hit the
// same weights is where dynamic batching actually earns its keep. The
// mixed fleet mix (~22 distinct weight shapes, large M) mostly exercises
// the pool, not the batcher.
RequestQueue make_batchable_trace(int num_requests, double mean_gap) {
  Rng rng(kTraceSeed);
  return generate_trace(decode_serve_mix(), {num_requests, mean_gap}, rng);
}

PoolConfig base_config() {
  PoolConfig cfg;
  cfg.accelerator = {.arch = ArchType::kAxon, .array = {32, 32}};
  cfg.num_accelerators = 4;
  cfg.num_threads = 1;
  cfg.batching = {/*max_batch=*/8, /*max_wait_cycles=*/20000};
  return cfg;
}

void add_row(Table& t, const std::string& label, const ServeReport& r) {
  t.row()
      .cell(label)
      .cell(r.total_batches)
      .cell(r.mean_batch_size(), 2)
      .cell(r.latency.percentile(50))
      .cell(r.latency.percentile(95))
      .cell(r.latency.percentile(99))
      .cell(r.throughput_per_mcycle(), 2)
      .cell(100.0 * r.fleet_utilization(), 1);
}

}  // namespace

int main() {
  const int kRequests = 256;
  const double kMeanGap = 30000.0;  // cycles between arrivals (open loop)

  std::cout << "Serving " << kRequests
            << " requests of the ResNet50 + BERT-base mix on a pool of "
               "simulated 32x32 Axon accelerators.\n\n";

  // ---- batch-size sweep ----------------------------------------------
  {
    Table t({"max_batch", "batches", "mean_batch", "p50", "p95", "p99",
             "req/Mcycle", "util_%"});
    for (int max_batch : {1, 2, 4, 8, 16}) {
      PoolConfig cfg = base_config();
      cfg.batching = {max_batch, /*max_wait_cycles=*/100000};
      const ServeReport r =
          AcceleratorPool(cfg).serve(make_batchable_trace(kRequests, 5000.0));
      add_row(t, std::to_string(max_batch), r);
    }
    t.print(std::cout,
            "Batch-size sweep (one-token decode mix, 4 accelerators, FIFO)");
    std::cout << "\n";
  }

  // ---- pool-size sweep -----------------------------------------------
  {
    Table t({"accelerators", "batches", "mean_batch", "p50", "p95", "p99",
             "req/Mcycle", "util_%"});
    for (int pool : {1, 2, 4, 8}) {
      PoolConfig cfg = base_config();
      cfg.num_accelerators = pool;
      const ServeReport r =
          AcceleratorPool(cfg).serve(make_trace(kRequests, kMeanGap));
      add_row(t, std::to_string(pool), r);
    }
    t.print(std::cout, "Pool-size sweep (max_batch 8, FIFO)");
    std::cout << "\n";
  }

  // ---- scheduling policy ---------------------------------------------
  {
    Table t({"policy", "batches", "mean_batch", "p50", "p95", "p99",
             "req/Mcycle", "util_%"});
    for (SchedulePolicy policy :
         {SchedulePolicy::kFifo, SchedulePolicy::kShortestJobFirst}) {
      PoolConfig cfg = base_config();
      cfg.policy = policy;
      const ServeReport r =
          AcceleratorPool(cfg).serve(make_trace(kRequests, kMeanGap));
      add_row(t, to_string(policy), r);
    }
    t.print(std::cout, "Scheduling policy (4 accelerators, max_batch 8)");
    std::cout << "\n";
  }

  // ---- determinism across thread counts ------------------------------
  {
    Table t({"threads", "p50", "p95", "p99", "makespan", "wall_ms"});
    ServeReport reports[2];
    int i = 0;
    for (int threads : {1, 8}) {
      PoolConfig cfg = base_config();
      cfg.num_threads = threads;
      reports[i] = AcceleratorPool(cfg).serve(make_trace(kRequests, kMeanGap));
      const ServeReport& r = reports[i];
      t.row()
          .cell(std::to_string(threads))
          .cell(r.latency.percentile(50))
          .cell(r.latency.percentile(95))
          .cell(r.latency.percentile(99))
          .cell(r.makespan_cycles)
          .cell(1000.0 * r.wall_seconds, 2);
      ++i;
    }
    t.print(std::cout, "Thread-count determinism (same seed)");
    const bool identical =
        reports[0].latency.percentile(50) == reports[1].latency.percentile(50) &&
        reports[0].latency.percentile(95) == reports[1].latency.percentile(95) &&
        reports[0].latency.percentile(99) == reports[1].latency.percentile(99) &&
        reports[0].makespan_cycles == reports[1].makespan_cycles;
    std::cout << "simulated cycles identical across thread counts: "
              << (identical ? "yes" : "NO") << "\n\n";
    if (!identical) return 1;
  }

  // ---- one full report -----------------------------------------------
  const ServeReport r =
      AcceleratorPool(base_config()).serve(make_trace(kRequests, kMeanGap));
  std::cout << "Reference configuration summary:\n" << r.summary();
  return 0;
}
