// Inference serving end-to-end: synthesize Poisson traffic over a
// ResNet50 + BERT layer mix, drain it through the dynamic batcher and a
// pool of simulated Axon accelerators, and report fleet latency/throughput.
//
//   $ ./serve_traffic
//   $ ./serve_traffic --trace trace.json --metrics-json metrics.json
//
// Sweeps the two serving knobs (max batch size, pool size), compares FIFO
// with shortest-job-first, runs the deadline-aware scenario (bursty mixed
// decode+prefill traffic, per-workload SLOs, EDF + priority classes vs
// FIFO), drives a heterogeneous fleet (big-array vs high-bandwidth
// members with per-device weight caches) under cost-aware routing vs
// round-robin, and demonstrates the determinism contract: the
// simulated-cycle percentiles are identical for 1 and 8 worker threads.
//
// With --trace PATH the final reference run also renders a Chrome
// trace-event timeline (open it in chrome://tracing or
// https://ui.perfetto.dev — see README "Tracing a serve run"); with
// --metrics-json PATH it dumps the obs/metrics registry snapshot. Both are
// passive observers: the simulated cycles are identical with and without.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/pool.hpp"
#include "serve/request.hpp"
#include "serve/scenarios.hpp"

using namespace axon;
using namespace axon::serve;

namespace {

constexpr std::uint64_t kTraceSeed = 2025;

RequestQueue make_trace(int num_requests, double mean_gap) {
  Rng rng(kTraceSeed);
  return generate_trace(mixed_serve_mix(), {num_requests, mean_gap}, rng);
}

// The batch sweep uses the one-token decode mix: each request is
// transfer-bound on its weight matrix, so coalescing users that hit the
// same weights is where dynamic batching actually earns its keep. The
// mixed fleet mix (~22 distinct weight shapes, large M) mostly exercises
// the pool, not the batcher.
RequestQueue make_batchable_trace(int num_requests, double mean_gap) {
  Rng rng(kTraceSeed);
  return generate_trace(decode_serve_mix(), {num_requests, mean_gap}, rng);
}

PoolConfig base_config() {
  PoolConfig cfg;
  cfg.accelerator = {.arch = ArchType::kAxon, .array = {32, 32}};
  cfg.num_accelerators = 4;
  cfg.num_threads = 1;
  cfg.batching = {/*max_batch=*/8, /*max_wait_cycles=*/20000};
  return cfg;
}

// The canonical serve entry takes a TraceSource lvalue; ad-hoc sweep
// traces get named here before serving.
ServeReport serve_queue(const PoolConfig& cfg, RequestQueue q) {
  AcceleratorPool pool(cfg);
  return pool.serve(q);
}

// Every named section below resolves its scenario from the serve/scenarios
// registry — the same spec CI's BENCH_serve.json publishes, so the claims
// this example enforces at runtime are claims about the artifact's rows.
ServeReport run_scenario(const std::string& name, int threads = 1) {
  const ScenarioSpec& spec = scenario(name);
  PoolConfig cfg = spec.config;
  cfg.num_threads = threads;
  AcceleratorPool pool(cfg);
  const std::unique_ptr<TraceSource> source = spec.make_trace();
  return pool.serve(*source);
}

// Decode-side tail latency: merge the decode workloads' samples (other
// traffic rides in the same report under its own looser budget).
i64 decode_p99(const ServeReport& r) {
  Histogram decode;
  for (const auto& [name, g] : r.by_workload()) {
    if (name.rfind("decode", 0) == 0) decode.merge(g.latency);
  }
  return decode.percentile_or(99);
}

void add_row(Table& t, const std::string& label, const ServeReport& r) {
  const Histogram lat = r.latency();
  t.row()
      .cell(label)
      .cell(r.total_batches)
      .cell(r.mean_batch_size(), 2)
      .cell(lat.percentile(50))
      .cell(lat.percentile(95))
      .cell(lat.percentile(99))
      .cell(r.throughput_per_mcycle(), 2)
      .cell(100.0 * r.fleet_utilization(), 1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::cerr << "usage: serve_traffic [--trace PATH] "
                   "[--metrics-json PATH]\n";
      return 2;
    }
  }

  const int kRequests = 256;
  const double kMeanGap = 30000.0;  // cycles between arrivals (open loop)

  std::cout << "Serving " << kRequests
            << " requests of the ResNet50 + BERT-base mix on a pool of "
               "simulated 32x32 Axon accelerators.\n\n";

  // ---- batch-size sweep ----------------------------------------------
  {
    Table t({"max_batch", "batches", "mean_batch", "p50", "p95", "p99",
             "req/Mcycle", "util_%"});
    for (int max_batch : {1, 2, 4, 8, 16}) {
      PoolConfig cfg = base_config();
      cfg.batching = {max_batch, /*max_wait_cycles=*/100000};
      const ServeReport r =
          serve_queue(cfg, make_batchable_trace(kRequests, 5000.0));
      add_row(t, std::to_string(max_batch), r);
    }
    t.print(std::cout,
            "Batch-size sweep (one-token decode mix, 4 accelerators, FIFO)");
    std::cout << "\n";
  }

  // ---- pool-size sweep -----------------------------------------------
  {
    Table t({"accelerators", "batches", "mean_batch", "p50", "p95", "p99",
             "req/Mcycle", "util_%"});
    for (int pool : {1, 2, 4, 8}) {
      PoolConfig cfg = base_config();
      cfg.num_accelerators = pool;
      const ServeReport r = serve_queue(cfg, make_trace(kRequests, kMeanGap));
      add_row(t, std::to_string(pool), r);
    }
    t.print(std::cout, "Pool-size sweep (max_batch 8, FIFO)");
    std::cout << "\n";
  }

  // ---- scheduling policy ---------------------------------------------
  {
    Table t({"policy", "batches", "mean_batch", "p50", "p95", "p99",
             "req/Mcycle", "util_%"});
    for (SchedulePolicy policy :
         {SchedulePolicy::kFifo, SchedulePolicy::kShortestJobFirst}) {
      PoolConfig cfg = base_config();
      cfg.policy = policy;
      const ServeReport r = serve_queue(cfg, make_trace(kRequests, kMeanGap));
      add_row(t, to_string(policy), r);
    }
    t.print(std::cout, "Scheduling policy (4 accelerators, max_batch 8)");
    std::cout << "\n";
  }

  // ---- deadline-aware serving: EDF + classes vs FIFO on bursty traffic
  {
    // Mixed decode + prefill: one-token decode requests carry a tight SLO
    // (interactive class 0), 128-token prefill requests a loose one (batch
    // class 1). Arrivals are Markov-modulated on/off Poisson — the bursts
    // build queues, and which batch the scheduler picks then decides who
    // meets their deadline.
    // Two decode shapes, twice each (they dominate the request stream and
    // coalesce well), plus one prefill shape at 20%. The prefill GEMM uses
    // a different layer's weights — a (K, N) the decode stream never hits —
    // otherwise the batcher would coalesce prefill into decode batches and
    // there would be nothing left for the scheduler to separate.
    std::vector<GemmWorkload> mix = {
        {"decode_qkv", {1, 768, 2304}},
        {"decode_qkv", {1, 768, 2304}},
        {"decode_ffn1", {1, 768, 3072}},
        {"decode_ffn1", {1, 768, 3072}},
        {"prefill_ffn2", {128, 3072, 768}},
    };

    constexpr i64 kDecodeSlo = 500000;     // cycles, interactive budget
    constexpr i64 kPrefillSlo = 6000000;   // cycles, batch budget
    const auto classes_for = [&](bool priority_classes) {
      TrafficClassMap classes;
      classes.default_policy = {kDecodeSlo, 0};
      const int prefill_class = priority_classes ? 1 : 0;
      classes.per_workload["prefill_ffn2"] = {kPrefillSlo, prefill_class};
      return classes;
    };
    const auto bursty_trace = [&](bool priority_classes) {
      BurstyTraceConfig tc;
      tc.num_requests = 384;
      tc.burst_interarrival_cycles = 3500.0;
      tc.mean_on_cycles = 400000.0;
      tc.mean_off_cycles = 1600000.0;
      tc.classes = classes_for(priority_classes);
      Rng rng(kTraceSeed);
      // Same seed and draw order either way: identical arrivals and
      // workloads, so SLO attainment compares apples to apples.
      return generate_bursty_trace(mix, tc, rng);
    };
    const auto serve = [&](SchedulePolicy policy, bool priority_classes,
                           int threads) {
      PoolConfig cfg = base_config();
      cfg.policy = policy;
      cfg.num_threads = threads;
      cfg.batching = {/*max_batch=*/8, /*max_wait_cycles=*/60000};
      cfg.batching.continuous_admission = true;
      return serve_queue(cfg, bursty_trace(priority_classes));
    };

    const ServeReport fifo = serve(SchedulePolicy::kFifo, false, 1);
    const ServeReport edf =
        serve(SchedulePolicy::kEarliestDeadlineFirst, true, 1);
    const ServeReport edf8 =
        serve(SchedulePolicy::kEarliestDeadlineFirst, true, 8);

    Table t({"policy", "slo_%", "decode_slo_%", "prefill_slo_%", "p99",
             "miss_p99"});
    const auto slo_row = [&t](const std::string& label, const ServeReport& r) {
      double decode_met = 0, decode_all = 0, prefill_met = 0, prefill_all = 0;
      for (const auto& [name, g] : r.by_workload()) {
        const bool prefill = name.rfind("prefill", 0) == 0;
        (prefill ? prefill_met : decode_met) +=
            static_cast<double>(g.met_deadline);
        (prefill ? prefill_all : decode_all) +=
            static_cast<double>(g.with_deadline);
      }
      // An empty slice has no SLO story to tell — print "-", matching the
      // report breakdowns' convention.
      const auto pct = [](double met, double all) {
        return all > 0 ? fmt_double(100.0 * met / all, 1) : std::string("-");
      };
      t.row()
          .cell(label)
          .cell(100.0 * r.slo_attainment(), 1)
          .cell(pct(decode_met, decode_all))
          .cell(pct(prefill_met, prefill_all))
          .cell(r.latency().percentile_or(99))
          .cell(r.overall().miss.percentile_or(99));
    };
    slo_row("FIFO", fifo);
    slo_row("EDF+classes", edf);
    t.print(std::cout,
            "Deadline-aware serving (bursty decode+prefill, 4 accelerators)");
    std::cout << "\nEDF + priority classes, per-workload breakdown:\n"
              << edf.summary() << "\n";

    const bool edf_deterministic =
        edf.makespan_cycles == edf8.makespan_cycles &&
        edf.slo_attainment() == edf8.slo_attainment() &&
        edf.latency().percentile_or(99) == edf8.latency().percentile_or(99);
    std::cout << "EDF SLO numbers identical for 1 and 8 threads: "
              << (edf_deterministic ? "yes" : "NO") << "\n";
    const bool edf_wins = edf.slo_attainment() > fifo.slo_attainment();
    std::cout << "EDF+classes beats FIFO SLO attainment: "
              << (edf_wins ? "yes" : "NO") << " ("
              << fmt_double(100.0 * edf.slo_attainment(), 1) << "% vs "
              << fmt_double(100.0 * fifo.slo_attainment(), 1) << "%)\n\n";
    if (!edf_deterministic || !edf_wins) return 1;
  }

  // ---- heterogeneous fleet: cost-aware routing vs round-robin ---------
  {
    // Two device personalities, two traffic personalities
    // (serve/scenarios, shared with bench_serve_throughput and CI's perf
    // artifact). `big64x64` is a compute monster with modest DRAM
    // bandwidth — wins prefill. `hbm32x32` is clocked 2x with 4x the
    // bandwidth — wins transfer-bound one-token decode. Both carry a
    // 16 MiB weight cache, so repeated same-(K, N) decode batches skip
    // the weight stream on whichever device last served them. Cost-aware
    // routing prices each (batch, device) pair with the cache-aware
    // roofline and sends decode to `hbm` and prefill to `big`;
    // round-robin alternates blindly and pays the mismatch.
    const ServeReport rr = run_scenario("fleet_round_robin");
    const ServeReport cost = run_scenario("fleet_least_cost");
    const ServeReport cost8 = run_scenario("fleet_least_cost", 8);

    Table t({"routing", "req/Mcycle", "slo_%", "p99", "makespan", "util_%"});
    const auto fleet_row = [&t](const std::string& label,
                                const ServeReport& r) {
      t.row()
          .cell(label)
          .cell(r.throughput_per_mcycle(), 2)
          .cell(100.0 * r.slo_attainment(), 1)
          .cell(r.latency().percentile_or(99))
          .cell(r.makespan_cycles)
          .cell(100.0 * r.fleet_utilization(), 1);
    };
    fleet_row(to_string(RoutePolicy::kRoundRobin), rr);
    fleet_row(to_string(RoutePolicy::kLeastCost), cost);
    t.print(std::cout,
            "Heterogeneous fleet (2x big64x64 + 2x hbm32x32, bursty "
            "decode+prefill, EDF)");
    std::cout << "\nCost-aware routing, per-device breakdown:\n"
              << cost.summary() << "\n";

    const bool fleet_deterministic =
        cost.makespan_cycles == cost8.makespan_cycles &&
        cost.slo_attainment() == cost8.slo_attainment() &&
        cost.latency().percentile_or(99) == cost8.latency().percentile_or(99);
    std::cout << "cost-aware fleet numbers identical for 1 and 8 threads: "
              << (fleet_deterministic ? "yes" : "NO") << "\n";
    const bool cost_wins_throughput =
        cost.throughput_per_mcycle() > rr.throughput_per_mcycle();
    const bool cost_wins_slo = cost.slo_attainment() > rr.slo_attainment();
    std::cout << "cost-aware beats round-robin on fleet throughput: "
              << (cost_wins_throughput ? "yes" : "NO") << " ("
              << fmt_double(cost.throughput_per_mcycle(), 2) << " vs "
              << fmt_double(rr.throughput_per_mcycle(), 2)
              << " req/Mcycle)\n"
              << "cost-aware beats round-robin on SLO attainment: "
              << (cost_wins_slo ? "yes" : "NO") << " ("
              << fmt_double(100.0 * cost.slo_attainment(), 1) << "% vs "
              << fmt_double(100.0 * rr.slo_attainment(), 1) << "%)\n\n";
    if (!fleet_deterministic || !cost_wins_throughput || !cost_wins_slo) {
      return 1;
    }
  }

  // ---- chunked prefill: tile-granular preemption vs whole-batch dispatch
  {
    // The serve/scenarios head-of-line blocking scenario: 2x 32x32 Axon,
    // bursty one-token decode under a tight interactive SLO, and a
    // 512-token prefill that runs ~1.2 Mcycles unchunked. EDF can order
    // the queue but cannot interrupt an in-service prefill — only chunked
    // dispatch (ChunkPolicy) re-enters the scheduler between tile-aligned
    // chunks, so an urgent decode batch waits out at most one chunk
    // instead of the whole prefill.
    const ServeReport whole = run_scenario("chunked_prefill_whole");
    const ServeReport chunked = run_scenario("chunked_prefill_deadline_aware");
    const ServeReport chunked8 =
        run_scenario("chunked_prefill_deadline_aware", 8);

    const auto decode_blocking_p99 = [](const ServeReport& r) {
      Histogram blocking;
      for (const auto& [name, g] : r.by_workload()) {
        if (name.rfind("decode", 0) == 0) blocking.merge(g.blocking);
      }
      return blocking.percentile_or(99);
    };

    Table t({"chunking", "slo_%", "decode_p99", "decode_blk_p99", "chunks",
             "preempts"});
    const auto chunk_row = [&](const std::string& label,
                               const ServeReport& r) {
      t.row()
          .cell(label)
          .cell(100.0 * r.slo_attainment(), 1)
          .cell(decode_p99(r))
          .cell(decode_blocking_p99(r))
          .cell(r.total_chunks)
          .cell(r.preemptions);
    };
    chunk_row(to_string(ChunkPolicy::kNone), whole);
    chunk_row(to_string(ChunkPolicy::kDeadlineAware), chunked);
    t.print(std::cout,
            "Chunked prefill (2x 32x32, bursty decode+512-token prefill, "
            "EDF, chunk_tiles 2)");
    std::cout << "\nChunked EDF, per-workload breakdown:\n"
              << chunked.summary() << "\n";

    const bool chunk_deterministic =
        chunked.makespan_cycles == chunked8.makespan_cycles &&
        chunked.slo_attainment() == chunked8.slo_attainment() &&
        decode_p99(chunked) == decode_p99(chunked8) &&
        chunked.total_chunks == chunked8.total_chunks &&
        chunked.preemptions == chunked8.preemptions;
    std::cout << "chunked numbers identical for 1 and 8 threads: "
              << (chunk_deterministic ? "yes" : "NO") << "\n";
    const bool chunk_wins_p99 = decode_p99(chunked) < decode_p99(whole);
    const bool chunk_wins_slo =
        chunked.slo_attainment() > whole.slo_attainment();
    std::cout << "chunked EDF beats unchunked EDF on p99 decode latency: "
              << (chunk_wins_p99 ? "yes" : "NO") << " ("
              << decode_p99(chunked) << " vs " << decode_p99(whole)
              << " cycles)\n"
              << "chunked EDF beats unchunked EDF on SLO attainment: "
              << (chunk_wins_slo ? "yes" : "NO") << " ("
              << fmt_double(100.0 * chunked.slo_attainment(), 1) << "% vs "
              << fmt_double(100.0 * whole.slo_attainment(), 1) << "%)\n\n";
    if (!chunk_deterministic || !chunk_wins_p99 || !chunk_wins_slo) return 1;
  }

  // ---- shared bandwidth: congestion-aware vs blind routing ------------
  {
    // The serve/scenarios fleet-contention scenario: four identical
    // cache-less 32x32 members split across two memory nodes whose DRAM
    // budget (80 B/fleet-cycle) covers ~1.25 concurrent weight streams,
    // plus a one-hop fabric between the nodes. Every dispatch streams its
    // weights, so co-locating two in-flight chunks on one node stretches
    // both transfers 1.6x — far more than the hop price of borrowing the
    // far node. The arbiter charges that contention either way; the only
    // difference is whether the router *sees* it. Blind least-cost ties on
    // the identical devices and piles onto node 0 in index order;
    // aware routing prices live node demand and spreads.
    const ServeReport blind = run_scenario("fleet_contention_blind");
    const ServeReport aware = run_scenario("fleet_contention_aware");
    const ServeReport aware8 = run_scenario("fleet_contention_aware", 8);

    Table t({"routing", "slo_%", "p50", "p99", "contended", "hop_disp"});
    const auto contention_row = [&t](const std::string& label,
                                     const ServeReport& r) {
      i64 contended = 0;
      for (const auto& n : r.per_node) contended += n.contended_dispatches;
      i64 hop_dispatches = 0;
      for (const auto& a : r.per_accelerator) {
        hop_dispatches += a.hop_dispatches;
      }
      t.row()
          .cell(label)
          .cell(100.0 * r.slo_attainment(), 1)
          .cell(r.latency().percentile_or(50))
          .cell(r.latency().percentile_or(99))
          .cell(contended)
          .cell(hop_dispatches);
    };
    contention_row("congestion-blind", blind);
    contention_row("congestion-aware", aware);
    t.print(std::cout,
            "Shared-bandwidth contention (4x cache-less 32x32 on 2 memory "
            "nodes, EDF + least-cost)");
    std::cout << "\nCongestion-aware routing, per-node breakdown:\n"
              << aware.summary() << "\n";

    const bool contention_deterministic =
        aware.makespan_cycles == aware8.makespan_cycles &&
        aware.slo_attainment() == aware8.slo_attainment() &&
        aware.latency().percentile_or(99) ==
            aware8.latency().percentile_or(99);
    std::cout << "contention-aware numbers identical for 1 and 8 threads: "
              << (contention_deterministic ? "yes" : "NO") << "\n";
    const bool aware_wins_slo = aware.slo_attainment() > blind.slo_attainment();
    std::cout << "congestion-aware beats congestion-blind on SLO attainment: "
              << (aware_wins_slo ? "yes" : "NO") << " ("
              << fmt_double(100.0 * aware.slo_attainment(), 1) << "% vs "
              << fmt_double(100.0 * blind.slo_attainment(), 1) << "%)\n\n";
    if (!contention_deterministic || !aware_wins_slo) return 1;
  }

  // ---- prefill/decode disaggregation: whole-network serving ----------
  {
    // The serve/scenarios disaggregation scenario: "gen" requests are
    // two-stage chains (128-token prefill feeding a one-token decode over
    // the fabric) sharing the fleet with dominant single-stage interactive
    // decode. Hardware is identical in both runs — 2x big prefill-shaped
    // arrays on node 0, 2x fast decode-shaped members on node 1; the only
    // difference is the StageAffinity knob. Unified (kNone): when both big
    // arrays are mid-prefill, the next prefill stage lands on an idle
    // decode member and blocks interactive decode for the whole dispatch.
    // Split (kStrict): prefill waits for a prefill member, decode members
    // never serve anything else, and the decode tail tightens.
    const ServeReport unified = run_scenario("disagg_prefill_decode_unified");
    const ServeReport split = run_scenario("disagg_prefill_decode_split");
    const ServeReport split8 = run_scenario("disagg_prefill_decode_split", 8);

    Table t({"pools", "slo_%", "decode_p99", "p99", "handoffs", "stages"});
    const auto disagg_row = [&t](const std::string& label,
                                 const ServeReport& r) {
      i64 handoff_requests = 0;
      i64 stage_rows = static_cast<i64>(r.records.num_stage_rows());
      for (const RequestRecord& rec : r.records) {
        if (rec.handoff_cycles > 0) ++handoff_requests;
      }
      t.row()
          .cell(label)
          .cell(100.0 * r.slo_attainment(), 1)
          .cell(decode_p99(r))
          .cell(r.latency().percentile_or(99))
          .cell(handoff_requests)
          .cell(stage_rows);
    };
    disagg_row("unified", unified);
    disagg_row("split", split);
    t.print(std::cout,
            "Prefill/decode disaggregation (2x prefill64x64 + 2x "
            "decode32x32, two-stage gen + decode, EDF)");
    std::cout << "\nDisaggregated pools, per-workload breakdown:\n"
              << split.summary() << "\n";

    const bool disagg_deterministic =
        split.makespan_cycles == split8.makespan_cycles &&
        split.slo_attainment() == split8.slo_attainment() &&
        decode_p99(split) == decode_p99(split8);
    std::cout << "split-pool numbers identical for 1 and 8 threads: "
              << (disagg_deterministic ? "yes" : "NO") << "\n";
    const bool split_wins_p99 = decode_p99(split) < decode_p99(unified);
    const bool split_wins_slo =
        split.slo_attainment() > unified.slo_attainment();
    std::cout << "disaggregated pools beat unified on p99 decode latency: "
              << (split_wins_p99 ? "yes" : "NO") << " (" << decode_p99(split)
              << " vs " << decode_p99(unified) << " cycles)\n"
              << "disaggregated pools beat unified on SLO attainment: "
              << (split_wins_slo ? "yes" : "NO") << " ("
              << fmt_double(100.0 * split.slo_attainment(), 1) << "% vs "
              << fmt_double(100.0 * unified.slo_attainment(), 1) << "%)\n\n";
    if (!disagg_deterministic || !split_wins_p99 || !split_wins_slo) return 1;
  }

  // ---- determinism across thread counts ------------------------------
  {
    Table t({"threads", "p50", "p95", "p99", "makespan", "wall_ms"});
    ServeReport reports[2];
    Histogram latencies[2];
    int i = 0;
    for (int threads : {1, 8}) {
      PoolConfig cfg = base_config();
      cfg.num_threads = threads;
      reports[i] = serve_queue(cfg, make_trace(kRequests, kMeanGap));
      const ServeReport& r = reports[i];
      latencies[i] = r.latency();
      t.row()
          .cell(std::to_string(threads))
          .cell(latencies[i].percentile(50))
          .cell(latencies[i].percentile(95))
          .cell(latencies[i].percentile(99))
          .cell(r.makespan_cycles)
          .cell(1000.0 * r.wall_seconds, 2);
      ++i;
    }
    t.print(std::cout, "Thread-count determinism (same seed)");
    const bool identical =
        latencies[0].percentile(50) == latencies[1].percentile(50) &&
        latencies[0].percentile(95) == latencies[1].percentile(95) &&
        latencies[0].percentile(99) == latencies[1].percentile(99) &&
        reports[0].makespan_cycles == reports[1].makespan_cycles;
    std::cout << "simulated cycles identical across thread counts: "
              << (identical ? "yes" : "NO") << "\n\n";
    if (!identical) return 1;
  }

  // ---- one full report -----------------------------------------------
  // The reference run carries the observability hooks: a TraceSink when
  // --trace was given, a MetricsProbe when --metrics-json was. Probes are
  // passive — the summary below matches the flagless run byte for byte.
  AcceleratorPool pool(base_config());
  obs::TraceSink trace;
  obs::MetricsRegistry registry;
  obs::MetricsProbe metrics(&registry);
  if (!trace_path.empty()) pool.add_probe(&trace);
  if (!metrics_path.empty()) pool.add_probe(&metrics);
  RequestQueue reference_trace = make_trace(kRequests, kMeanGap);
  const ServeReport r = pool.serve(reference_trace);
  std::cout << "Reference configuration summary:\n" << r.summary();
  if (!trace_path.empty()) {
    if (!trace.write_file(trace_path)) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 1;
    }
    std::cout << "\nwrote " << trace_path << " (" << trace.num_events()
              << " events; load in chrome://tracing or ui.perfetto.dev)\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    if (!os) {
      std::cerr << "cannot write " << metrics_path << "\n";
      return 1;
    }
    registry.write_json(os);
    std::cout << (trace_path.empty() ? "\n" : "") << "wrote " << metrics_path
              << "\n";
  }
  return 0;
}
