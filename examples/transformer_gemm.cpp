// Transformer inference on Axon: sweeps the GPT-3 / transformer GEMMs of
// paper Table 3 through the analytical runtime model at several array sizes
// and validates one representative tile on the cycle-accurate simulators.
#include <iostream>

#include "baseline/conventional_array.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/axon_array.hpp"
#include "model/runtime_model.hpp"
#include "tensor/gemm_ref.hpp"
#include "workloads/table3.hpp"

using namespace axon;

int main() {
  // Analytical sweep over the transformer-family workloads.
  const std::vector<std::string> names = {
      "TF0", "TF1", "GNMT0", "GNMT1", "GPT3_0_matmul0", "GPT3_1_matmul1",
      "GPT3_2_addmm", "GPT3_3_lmhead"};
  const auto all = table3_workloads();

  Table t({"workload", "M", "K", "N", "SA@128_Mcycles", "Axon@128_Mcycles",
           "speedup"});
  for (const auto& name : names) {
    const GemmWorkload w = find_workload(all, name);
    const i64 sa = pipelined_runtime(ArchType::kConventionalSA, Dataflow::kOS,
                                     w.shape, {128, 128})
                       .cycles;
    const i64 ax =
        pipelined_runtime(ArchType::kAxon, Dataflow::kOS, w.shape, {128, 128})
            .cycles;
    t.row()
        .cell(w.name)
        .cell(w.shape.M)
        .cell(w.shape.K)
        .cell(w.shape.N)
        .cell(static_cast<double>(sa) / 1e6, 3)
        .cell(static_cast<double>(ax) / 1e6, 3)
        .cell(static_cast<double>(sa) / static_cast<double>(ax), 3);
  }
  t.print(std::cout, "Transformer GEMMs on 128x128 (pipelined tiles)");

  // Conformer block (Conv + GeMM workload class).
  Table c({"conformer_gemm", "M", "K", "N", "speedup@128"});
  for (const GemmWorkload& w : conformer_gemm_workloads()) {
    const i64 sa = pipelined_runtime(ArchType::kConventionalSA, Dataflow::kOS,
                                     w.shape, {128, 128})
                       .cycles;
    const i64 ax =
        pipelined_runtime(ArchType::kAxon, Dataflow::kOS, w.shape, {128, 128})
            .cycles;
    c.row()
        .cell(w.name)
        .cell(w.shape.M)
        .cell(w.shape.K)
        .cell(w.shape.N)
        .cell(static_cast<double>(sa) / static_cast<double>(ax), 3);
  }
  std::cout << "\n";
  c.print(std::cout, "Conformer block GEMMs");

  // Cycle-accurate validation of one attention-projection tile.
  Rng rng(11);
  const Matrix a = random_matrix(32, 32, rng);
  const Matrix b = random_matrix(32, 32, rng);
  ConventionalArraySim sa({32, 32});
  AxonArraySim ax({32, 32});
  const auto rs = sa.run(Dataflow::kOS, a, b);
  const auto ra = ax.run(Dataflow::kOS, a, b);
  std::cout << "\ncycle-accurate 32x32 tile: SA " << rs.cycles << " cycles, "
            << "Axon " << ra.cycles << " cycles, results "
            << (rs.out.approx_equal(ra.out, 1e-4) ? "match" : "MISMATCH")
            << ", golden "
            << (ra.out.approx_equal(gemm_ref(a, b), 1e-3) ? "match"
                                                          : "MISMATCH")
            << "\n";
  return 0;
}
