// Network analysis: per-layer Axon-vs-SA report for four CNNs, written as
// both console tables and CSV files (one per network, in the working
// directory).
//
//   $ ./network_report [array_size]
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>

#include "common/table.hpp"
#include "runner/network_runner.hpp"

using namespace axon;

int main(int argc, char** argv) {
  const int size = argc > 1 ? std::atoi(argv[1]) : 128;
  // Layers analyze in parallel; the report is thread-count invariant.
  const int threads =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));

  const std::vector<std::pair<std::string, std::vector<ConvWorkload>>> nets = {
      {"resnet50", resnet50_conv_layers()},
      {"yolov3", yolov3_conv_layers()},
      {"mobilenet_v1", mobilenet_v1_all_layers()},
      {"efficientnet_b0", efficientnet_b0_layers()},
  };

  Table t({"network", "layers", "GMACs", "compute_speedup",
           "traffic_reduction_%", "dram_saved_mJ", "roofline_speedup"});
  for (const auto& [name, layers] : nets) {
    const NetworkReport r = analyze_network(name, layers, size, threads);
    t.row()
        .cell(name)
        .cell(static_cast<std::int64_t>(r.layers.size()))
        .cell(static_cast<double>(total_macs(layers)) / 1e9, 2)
        .cell(r.compute_speedup, 3)
        .cell(r.traffic_reduction_pct, 1)
        .cell(r.dram_energy_saved_mj, 2)
        .cell(r.roofline_speedup, 3);

    const std::string path = name + "_axon_report.csv";
    std::ofstream csv(path);
    write_csv(r, csv);
    std::cout << "wrote " << path << " (" << r.layers.size() << " layers)\n";
  }
  std::cout << "\n";
  t.print(std::cout, "Axon vs conventional SA at " + std::to_string(size) +
                         "x" + std::to_string(size));
  return 0;
}
