#include "model/mapping.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace axon {
namespace {

TEST(MappingTest, Table1Projections) {
  const GemmShape g{10, 20, 30};
  EXPECT_EQ(map_gemm(g, Dataflow::kOS), (SpatioTemporal{10, 30, 20}));
  EXPECT_EQ(map_gemm(g, Dataflow::kWS), (SpatioTemporal{20, 10, 30}));
  EXPECT_EQ(map_gemm(g, Dataflow::kIS), (SpatioTemporal{20, 30, 10}));
}

TEST(MappingTest, VolumePreservedForAllDataflows) {
  for (const GemmShape& g :
       {GemmShape{1, 1, 1}, GemmShape{31999, 84, 1024}, GemmShape{7, 5, 3}}) {
    for (Dataflow df : {Dataflow::kOS, Dataflow::kWS, Dataflow::kIS}) {
      EXPECT_TRUE(mapping_preserves_volume(g, df))
          << g << " " << to_string(df);
    }
  }
}

TEST(MappingTest, InvalidShapeRejected) {
  EXPECT_THROW(map_gemm(GemmShape{0, 1, 1}, Dataflow::kOS), CheckError);
}

}  // namespace
}  // namespace axon
