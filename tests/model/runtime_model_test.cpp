#include "model/runtime_model.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "memory/traffic.hpp"

namespace axon {
namespace {

TEST(FillLatencyTest, Fig6Factors) {
  // f1 = R + C - 2, f2 = max(R, C) - 1 (paper §3.1 / Fig. 6).
  EXPECT_EQ(fill_latency(ArchType::kConventionalSA, {256, 256}), 510);
  EXPECT_EQ(fill_latency(ArchType::kAxon, {256, 256}), 255);
  EXPECT_EQ(fill_latency(ArchType::kConventionalSA, {16, 16}), 30);
  EXPECT_EQ(fill_latency(ArchType::kAxon, {16, 16}), 15);
  // Rectangular: improvement shrinks but stays positive.
  EXPECT_EQ(fill_latency(ArchType::kConventionalSA, {8, 64}), 70);
  EXPECT_EQ(fill_latency(ArchType::kAxon, {8, 64}), 63);
  // CMSA (substituted model) sits between SA and Axon on squares.
  const i64 cmsa = fill_latency(ArchType::kCMSA, {64, 64});
  EXPECT_LT(cmsa, fill_latency(ArchType::kConventionalSA, {64, 64}));
  EXPECT_GT(cmsa, fill_latency(ArchType::kAxon, {64, 64}));
}

TEST(FillLatencyTest, SquareImprovementIsExactlyTwofold) {
  for (int r : {2, 16, 64, 256, 1024}) {
    const i64 f1 = fill_latency(ArchType::kConventionalSA, {r, r});
    const i64 f2 = fill_latency(ArchType::kAxon, {r, r});
    EXPECT_EQ(f1, 2 * f2);  // (2R - 2) vs (R - 1)
  }
}

TEST(TileCyclesTest, MatchesEquationOneAndTable2) {
  // SA: 2R + C + T - 2; Axon: max(R, C) + R + T - 1.
  EXPECT_EQ(tile_cycles(ArchType::kConventionalSA, {16, 16}, 100),
            2 * 16 + 16 + 100 - 2);
  EXPECT_EQ(tile_cycles(ArchType::kAxon, {16, 16}, 100), 16 + 16 + 100 - 1);
  EXPECT_EQ(tile_cycles(ArchType::kAxon, {8, 32}, 10), 32 + 8 + 10 - 1);
  EXPECT_EQ(tile_cycles(ArchType::kAxon, {32, 8}, 10), 32 + 32 + 10 - 1);
}

TEST(ScaleUpTest, EquationTwoTileProduct) {
  // 100x100 OS GEMM on 16x16: ceil(100/16)^2 = 49 tiles.
  const GemmShape g{100, 64, 100};
  const RuntimeResult r = scale_up_runtime(ArchType::kConventionalSA,
                                           Dataflow::kOS, g, {16, 16});
  EXPECT_EQ(r.tiles, 49);
  EXPECT_EQ(r.cycles, 49 * (2 * 16 + 16 + 64 - 2));
  EXPECT_EQ(r.st.T, 64);
}

TEST(ScaleUpTest, DataflowChangesTileAxes) {
  const GemmShape g{100, 30, 8};
  // WS: S_R = K = 30 (2 row-tiles), S_C = M = 100 (7 col-tiles), T = N = 8.
  const RuntimeResult r =
      scale_up_runtime(ArchType::kAxon, Dataflow::kWS, g, {16, 16});
  EXPECT_EQ(r.tiles, 2 * 7);
  EXPECT_EQ(r.cycles, 14 * (16 + 16 + 8 - 1));
}

TEST(ScaleOutTest, EquationThreePartitioning) {
  const GemmShape g{256, 64, 256};
  // 2x2 partitions of 64x64 arrays: S'_R = 128 -> 2 tiles, S'_C = 128 -> 2.
  const RuntimeResult r = scale_out_runtime(ArchType::kConventionalSA,
                                            Dataflow::kOS, g, {64, 64}, 2, 2);
  EXPECT_EQ(r.tiles, 4);
  EXPECT_EQ(r.cycles, 4 * (2 * 64 + 64 + 64 - 2));
  // Scale-out with 1x1 partitions degenerates to scale-up.
  const RuntimeResult r1 = scale_out_runtime(ArchType::kConventionalSA,
                                             Dataflow::kOS, g, {64, 64}, 1, 1);
  const RuntimeResult r2 =
      scale_up_runtime(ArchType::kConventionalSA, Dataflow::kOS, g, {64, 64});
  EXPECT_EQ(r1.cycles, r2.cycles);
}

TEST(PipelinedTest, CheaperThanStrictAndBoundedByFill) {
  const GemmShape g{512, 32, 512};
  const ArrayShape a{64, 64};
  for (ArchType arch : {ArchType::kConventionalSA, ArchType::kAxon}) {
    const i64 strict = scale_up_runtime(arch, Dataflow::kOS, g, a).cycles;
    const i64 pipe = pipelined_runtime(arch, Dataflow::kOS, g, a).cycles;
    EXPECT_LT(pipe, strict);
    // Pipelined = tiles * (fill + T) + one drain.
    const i64 tiles = 8 * 8;
    EXPECT_EQ(pipe, tiles * (fill_latency(arch, a) + 32) + 64);
  }
}

TEST(PipelinedTest, SquareSmallTSpeedupApproachesTwo) {
  // The "up to 2x" claim: fill-dominated pipelined tiles. Needs many tiles
  // so the one unamortized drain at the end vanishes.
  const GemmShape g{2560, 1, 2560};
  const ArrayShape a{256, 256};
  const double sa = static_cast<double>(
      pipelined_runtime(ArchType::kConventionalSA, Dataflow::kOS, g, a).cycles);
  const double ax = static_cast<double>(
      pipelined_runtime(ArchType::kAxon, Dataflow::kOS, g, a).cycles);
  EXPECT_GT(sa / ax, 1.8);
  EXPECT_LE(sa / ax, 2.0);
}

TEST(BestDataflowTest, PicksTheMinimum) {
  const GemmShape g{2048, 128, 1};  // NCF0: IS avoids the N=1 column waste
  const RuntimeResult best =
      best_dataflow_runtime(ArchType::kConventionalSA, g, {256, 256});
  for (Dataflow df : {Dataflow::kOS, Dataflow::kWS, Dataflow::kIS}) {
    EXPECT_LE(best.cycles,
              scale_up_runtime(ArchType::kConventionalSA, df, g, {256, 256})
                  .cycles);
  }
  EXPECT_EQ(best.dataflow, Dataflow::kIS);
}

TEST(DwConvTest, SerializesChannels) {
  const ConvShape dw = make_conv(32, 14, 32, 3, 1, 1, 32);
  const RuntimeResult r = dwconv_runtime(ArchType::kAxon, Dataflow::kOS, dw,
                                         {16, 16}, /*pipelined=*/false);
  // Per channel: GEMM(1, 9, 196) -> ceil(196/16) = 13 tiles.
  const GemmShape per{1, 9, 196};
  const RuntimeResult one =
      scale_up_runtime(ArchType::kAxon, Dataflow::kOS, per, {16, 16});
  EXPECT_EQ(r.cycles, one.cycles * 32);
  EXPECT_EQ(r.tiles, one.tiles * 32);
  EXPECT_THROW(dwconv_runtime(ArchType::kAxon, Dataflow::kOS,
                              make_conv(4, 8, 8, 3, 1, 1), {8, 8}, false),
               CheckError);
}

TEST(RuntimeModelTest, AxonNeverSlowerThanSa) {
  // Property: for any shape and dataflow, the Axon runtime is <= SA.
  for (i64 m : {1, 17, 300}) {
    for (i64 k : {1, 33, 500}) {
      for (i64 n : {1, 20, 257}) {
        const GemmShape g{m, k, n};
        for (Dataflow df : {Dataflow::kOS, Dataflow::kWS, Dataflow::kIS}) {
          for (int size : {8, 64, 128}) {
            const ArrayShape a{size, size};
            EXPECT_LE(
                scale_up_runtime(ArchType::kAxon, df, g, a).cycles,
                scale_up_runtime(ArchType::kConventionalSA, df, g, a).cycles);
          }
        }
      }
    }
  }
}

TEST(RuntimeModelTest, CmsaBetweenSaAndAxonOnSquares) {
  const GemmShape g{500, 64, 500};
  const ArrayShape a{128, 128};
  for (Dataflow df : {Dataflow::kOS, Dataflow::kWS, Dataflow::kIS}) {
    const i64 sa = scale_up_runtime(ArchType::kConventionalSA, df, g, a).cycles;
    const i64 cm = scale_up_runtime(ArchType::kCMSA, df, g, a).cycles;
    const i64 ax = scale_up_runtime(ArchType::kAxon, df, g, a).cycles;
    EXPECT_LE(ax, cm);
    EXPECT_LE(cm, sa);
  }
}

TEST(BatchedGemmCyclesTest, InfiniteBandwidthIsScaleUpCompute) {
  const GemmShape g{48, 32, 40};
  const ArrayShape array{16, 16};
  for (ArchType arch : {ArchType::kConventionalSA, ArchType::kAxon}) {
    EXPECT_EQ(batched_gemm_cycles(arch, Dataflow::kOS, g, array, 0),
              scale_up_runtime(arch, Dataflow::kOS, g, array).cycles);
  }
}

TEST(BatchedGemmCyclesTest, BatchingAmortizesWeightStream) {
  // One-token decode: (1, 768, 3072) is transfer-bound on its 768x3072
  // weight matrix at 64 B/cycle. Concatenating 8 such requests along M
  // streams the weights once, so the batch costs far less than 8 singles.
  const ArrayShape array{32, 32};
  const i64 bw = 64;
  const GemmShape single{1, 768, 3072};
  const GemmShape batch8{8, 768, 3072};
  const i64 one = batched_gemm_cycles(ArchType::kAxon, Dataflow::kOS, single,
                                      array, bw);
  const i64 eight = batched_gemm_cycles(ArchType::kAxon, Dataflow::kOS,
                                        batch8, array, bw);
  EXPECT_LT(eight, 8 * one);
  EXPECT_LT(eight, 2 * one);  // still dominated by the shared weight stream
}

TEST(BatchedGemmCyclesTest, TransferFloorOnlyBindsWhenMemoryBound) {
  // A compute-heavy shape is unaffected by a generous bandwidth.
  const GemmShape g{512, 512, 512};
  const ArrayShape array{16, 16};
  EXPECT_EQ(
      batched_gemm_cycles(ArchType::kAxon, Dataflow::kOS, g, array, 1 << 20),
      batched_gemm_cycles(ArchType::kAxon, Dataflow::kOS, g, array, 0));
}

TEST(BatchedGemmCyclesTest, ResidentWeightsSkipTheBStream) {
  // Weight-cache hit pricing: the transfer leg drops exactly the K*N
  // weight bytes, so a transfer-bound decode shape gets strictly cheaper
  // while a compute-bound shape is unchanged.
  const ArrayShape array{32, 32};
  const i64 bw = 32;  // low enough that the K*N weight stream dominates
  const GemmShape decode{1, 768, 3072};
  EXPECT_EQ(gemm_transfer_cycles(decode, bw, /*weights_resident=*/true),
            ceil_div(elems_to_bytes(decode.a_elems() + decode.c_elems()), bw));
  EXPECT_LT(batched_gemm_cycles(ArchType::kAxon, Dataflow::kOS, decode, array,
                                bw, /*weights_resident=*/true),
            batched_gemm_cycles(ArchType::kAxon, Dataflow::kOS, decode, array,
                                bw, /*weights_resident=*/false));

  const GemmShape compute_bound{512, 512, 512};
  EXPECT_EQ(batched_gemm_cycles(ArchType::kAxon, Dataflow::kOS, compute_bound,
                                array, bw, /*weights_resident=*/true),
            batched_gemm_cycles(ArchType::kAxon, Dataflow::kOS, compute_bound,
                                array, bw, /*weights_resident=*/false));
  // Infinite bandwidth: residency is irrelevant either way.
  EXPECT_EQ(batched_gemm_cycles(ArchType::kAxon, Dataflow::kOS, decode, array,
                                0, /*weights_resident=*/true),
            batched_gemm_cycles(ArchType::kAxon, Dataflow::kOS, decode, array,
                                0, /*weights_resident=*/false));
}

TEST(ChunkedGemmTest, MTileExtentFollowsTheDataflowProjection) {
  // M maps to S_R under OS, S_C under WS, and T under IS (Table 1), so the
  // tile-aligned chunk quantum is rows, cols, and 1 respectively.
  const ArrayShape array{32, 16};
  EXPECT_EQ(m_tile_extent(Dataflow::kOS, array), 32);
  EXPECT_EQ(m_tile_extent(Dataflow::kWS, array), 16);
  EXPECT_EQ(m_tile_extent(Dataflow::kIS, array), 1);
}

TEST(ChunkedGemmTest, ExtentsCoverMAndAlignToTiles) {
  const ArrayShape array{32, 32};
  const GemmShape g{300, 64, 64};  // 300 = 9 full 32-row tiles + ragged 12
  const auto extents = chunk_m_extents(g, Dataflow::kOS, array, 4);
  // 4 tiles * 32 rows = 128 per chunk: 128 + 128 + 44.
  ASSERT_EQ(extents.size(), 3u);
  EXPECT_EQ(extents[0], 128);
  EXPECT_EQ(extents[1], 128);
  EXPECT_EQ(extents[2], 44);
  i64 covered = 0;
  for (const i64 e : extents) covered += e;
  EXPECT_EQ(covered, g.M);
  // tiles_per_chunk <= 0 means "do not split".
  const auto whole = chunk_m_extents(g, Dataflow::kOS, array, 0);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0], g.M);
}

TEST(ChunkedGemmTest, AlignedChunksSumToUnchunkedComputeExactly) {
  // Tile-aligned splitting adds no compute: the summed chunk cycles equal
  // the monolithic batch for OS and WS (M is a spatial dim there). IS maps
  // M to the temporal dim, so each extra chunk pays one fill+drain.
  const ArrayShape array{32, 32};
  const GemmShape g{512, 3072, 768};
  for (const Dataflow df : {Dataflow::kOS, Dataflow::kWS}) {
    const i64 whole =
        batched_gemm_cycles(ArchType::kAxon, df, g, array, /*bw=*/0);
    i64 summed = 0;
    for (const i64 m : chunk_m_extents(g, df, array, 2)) {
      summed += batched_gemm_cycles(ArchType::kAxon, df, {m, g.K, g.N}, array,
                                    /*bw=*/0);
    }
    EXPECT_EQ(summed, whole) << to_string(df);
  }
  const i64 whole_is =
      batched_gemm_cycles(ArchType::kAxon, Dataflow::kIS, g, array, 0);
  i64 summed_is = 0;
  for (const i64 m : chunk_m_extents(g, Dataflow::kIS, array, 64)) {
    summed_is += batched_gemm_cycles(ArchType::kAxon, Dataflow::kIS,
                                     {m, g.K, g.N}, array, 0);
  }
  EXPECT_GT(summed_is, whole_is);
}

TEST(ChunkedGemmTest, ChunkingOverheadIsTheWeightRestream) {
  // Memory side: every chunk streams its own share of A and C, but each
  // cache-cold chunk re-streams the full K*N weights. With residency the
  // summed chunk transfer equals the whole batch's; cold chunks pay
  // exactly (chunks - 1) extra weight streams.
  const ArrayShape array{32, 32};
  const GemmShape g{256, 1024, 1024};
  const i64 bw = 64;
  const auto extents = chunk_m_extents(g, Dataflow::kOS, array, 2);
  ASSERT_EQ(extents.size(), 4u);
  const i64 whole = gemm_transfer_cycles(g, bw);
  i64 first_cold = 0, rest_resident = 0, all_cold = 0;
  for (std::size_t i = 0; i < extents.size(); ++i) {
    const GemmShape c{extents[i], g.K, g.N};
    all_cold += gemm_transfer_cycles(c, bw, /*weights_resident=*/false);
    if (i == 0) {
      first_cold += gemm_transfer_cycles(c, bw, /*weights_resident=*/false);
    } else {
      rest_resident += gemm_transfer_cycles(c, bw, /*weights_resident=*/true);
    }
  }
  // Ceil rounding can add at most one cycle per chunk over the monolithic
  // stream; amortized chunking never re-streams weights.
  EXPECT_LE(first_cold + rest_resident,
            whole + static_cast<i64>(extents.size()));
  EXPECT_GE(first_cold + rest_resident, whole);
  const i64 weight_stream = ceil_div(elems_to_bytes(g.b_elems()), bw);
  EXPECT_GE(all_cold, whole + 3 * weight_stream - 3);
}

}  // namespace
}  // namespace axon
