#include "model/im2col_traffic.hpp"

#include <gtest/gtest.h>

#include "tensor/im2col.hpp"

namespace axon {
namespace {

TEST(Im2colTrafficTest, SoftwareLoadsAreExpandedMatrix) {
  const ConvShape c = make_conv(16, 14, 32, 3, 1, 1);
  EXPECT_EQ(ifmap_sram_loads(c, Im2colMode::kSoftware, 16),
            im2col_element_count(c));
}

TEST(Im2colTrafficTest, PaperFig7CountsByHand) {
  // 6x6 IFMAP, 3x3 kernel, 4 feeders: each output row is one segment of 4
  // windows: 9 + 3*3 = 18 loads; 4 rows -> 72 of the software 144.
  const ConvShape c = make_conv(1, 6, 1, 3);
  EXPECT_EQ(ifmap_sram_loads(c, Im2colMode::kSoftware, 4), 144);
  EXPECT_EQ(ifmap_sram_loads(c, Im2colMode::kAxonOnChip, 4), 72);
  EXPECT_DOUBLE_EQ(memory_access_reduction_pct(c, 4), 50.0);
}

TEST(Im2colTrafficTest, ManyFeedersApproachKernelFactor) {
  // With feeders >= out_w, reduction approaches (n-1)/n for 3x3 stride 1.
  const ConvShape c = make_conv(64, 56, 64, 3, 1, 1);
  const double red = memory_access_reduction_pct(c, 128);
  EXPECT_GT(red, 60.0);   // paper: "more than 60%"
  EXPECT_LT(red, 100.0 * 2.0 / 3.0 + 1.0);
}

TEST(Im2colTrafficTest, OneByOneKernelHasNoReuse) {
  const ConvShape c = make_conv(64, 28, 128, 1, 1, 0);
  EXPECT_EQ(ifmap_sram_loads(c, Im2colMode::kAxonOnChip, 64),
            ifmap_sram_loads(c, Im2colMode::kSoftware, 64));
  EXPECT_DOUBLE_EQ(memory_access_reduction_pct(c, 64), 0.0);
}

TEST(Im2colTrafficTest, StrideAtLeastKernelHasNoReuse) {
  const ConvShape c = make_conv(8, 16, 8, 2, 2, 0);
  EXPECT_DOUBLE_EQ(memory_access_reduction_pct(c, 32), 0.0);
}

TEST(Im2colTrafficTest, MoreFeedersNeverIncreaseLoads) {
  const ConvShape c = make_conv(3, 32, 8, 3, 1, 1);
  i64 prev = ifmap_sram_loads(c, Im2colMode::kAxonOnChip, 1);
  EXPECT_EQ(prev, ifmap_sram_loads(c, Im2colMode::kSoftware, 1));
  for (int f : {2, 4, 8, 16, 32, 64}) {
    const i64 cur = ifmap_sram_loads(c, Im2colMode::kAxonOnChip, f);
    EXPECT_LE(cur, prev) << "feeders " << f;
    prev = cur;
  }
}

TEST(Im2colTrafficTest, DepthwiseGroupsCounted) {
  const ConvShape dw = make_conv(32, 14, 32, 3, 1, 1, 32);
  // 32 groups of single-channel windows.
  EXPECT_EQ(ifmap_sram_loads(dw, Im2colMode::kSoftware, 16),
            i64{14} * 14 * 9 * 32);
  EXPECT_LT(ifmap_sram_loads(dw, Im2colMode::kAxonOnChip, 16),
            ifmap_sram_loads(dw, Im2colMode::kSoftware, 16));
}

TEST(ConvDramTrafficTest, ModesDifferOnlyInIfmap) {
  const ConvShape c = make_conv(64, 56, 64, 3, 1, 1);
  const Traffic sw = conv_dram_traffic(c, Im2colMode::kSoftware);
  const Traffic ax = conv_dram_traffic(c, Im2colMode::kAxonOnChip);
  EXPECT_EQ(sw.filter_bytes, ax.filter_bytes);
  EXPECT_EQ(sw.ofmap_bytes, ax.ofmap_bytes);
  EXPECT_GT(sw.ifmap_bytes, ax.ifmap_bytes);
  // Software im2col materializes the expanded matrix in DRAM: the host
  // reads the unique IFMAP, writes the expanded windows, the accelerator
  // reads them back.
  EXPECT_EQ(sw.ifmap_bytes, elems_to_bytes(unique_ifmap_elements(c) +
                                           2 * im2col_element_count(c)));
  EXPECT_EQ(ax.ifmap_bytes, elems_to_bytes(unique_ifmap_elements(c)));
  // 1x1 stride-1 layers skip materialization entirely: modes agree.
  const ConvShape c1 = make_conv(64, 28, 128, 1, 1, 0);
  EXPECT_EQ(conv_dram_traffic(c1, Im2colMode::kSoftware).ifmap_bytes,
            conv_dram_traffic(c1, Im2colMode::kAxonOnChip).ifmap_bytes);
}

TEST(ConvDramTrafficTest, FilterAndOfmapBytes) {
  const ConvShape c = make_conv(3, 8, 4, 3, 1, 1);
  const Traffic t = conv_dram_traffic(c, Im2colMode::kSoftware);
  EXPECT_EQ(t.filter_bytes, elems_to_bytes(i64{4} * 3 * 3 * 3));
  EXPECT_EQ(t.ofmap_bytes, elems_to_bytes(i64{4} * 8 * 8));
}

TEST(GemmDramTrafficTest, OperandsPlusResult) {
  const GemmShape g{10, 20, 30};
  const Traffic t = gemm_dram_traffic(g);
  EXPECT_EQ(t.ifmap_bytes, elems_to_bytes(200));
  EXPECT_EQ(t.filter_bytes, elems_to_bytes(600));
  EXPECT_EQ(t.ofmap_bytes, elems_to_bytes(300));
}

}  // namespace
}  // namespace axon
