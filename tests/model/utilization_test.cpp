#include "model/utilization.hpp"

#include <gtest/gtest.h>

namespace axon {
namespace {

TEST(UtilizationTest, BoundedByOne) {
  for (const GemmShape& g :
       {GemmShape{128, 128, 128}, GemmShape{1000, 2000, 3000},
        GemmShape{1, 1, 1}, GemmShape{31999, 84, 1024}}) {
    for (ArchType arch : {ArchType::kConventionalSA, ArchType::kAxon,
                          ArchType::kCMSA}) {
      const double ur = best_utilization_rate(arch, g, {128, 128});
      EXPECT_GT(ur, 0.0) << g;
      EXPECT_LE(ur, 1.0) << g;
    }
  }
}

TEST(UtilizationTest, AxonAtLeastSaAtLeastNever) {
  for (const GemmShape& g :
       {GemmShape{256, 84, 1024}, GemmShape{2048, 32, 4096},
        GemmShape{64, 147, 62500}}) {
    const double sa =
        best_utilization_rate(ArchType::kConventionalSA, g, {128, 128});
    const double cmsa = best_utilization_rate(ArchType::kCMSA, g, {128, 128});
    const double ax = best_utilization_rate(ArchType::kAxon, g, {128, 128});
    EXPECT_GE(cmsa, sa) << g;
    EXPECT_GE(ax, cmsa) << g;
  }
}

TEST(UtilizationTest, ImprovementPctIsPercentagePoints) {
  const GemmShape g{128, 16, 128};
  const double imp =
      utilization_improvement_pct(ArchType::kAxon, g, {128, 128});
  const double sa =
      best_utilization_rate(ArchType::kConventionalSA, g, {128, 128});
  const double ax = best_utilization_rate(ArchType::kAxon, g, {128, 128});
  EXPECT_NEAR(imp, 100.0 * (ax - sa), 1e-12);
  EXPECT_GT(imp, 0.0);
}

TEST(UtilizationTest, LargeGemmsAlreadyWellUtilized) {
  // Paper §5.2.2: GPT-3 matmul1/addmm/lmhead have ~91% SA utilization, so
  // improvements are small for both CMSA and Axon.
  const GemmShape lmhead{1024, 2560, 50257};
  const double sa =
      best_utilization_rate(ArchType::kConventionalSA, lmhead, {128, 128});
  EXPECT_GT(sa, 0.85);
  EXPECT_LT(utilization_improvement_pct(ArchType::kAxon, lmhead, {128, 128}),
            10.0);
}

TEST(UtilizationTest, PerDataflowRateUsesThatDataflow) {
  const GemmShape g{64, 512, 64};
  const double os =
      utilization_rate(ArchType::kConventionalSA, Dataflow::kOS, g, {64, 64});
  const double ws =
      utilization_rate(ArchType::kConventionalSA, Dataflow::kWS, g, {64, 64});
  EXPECT_NE(os, ws);  // different mappings, different utilization
  EXPECT_GE(best_utilization_rate(ArchType::kConventionalSA, g, {64, 64}),
            std::max(os, ws));
}

}  // namespace
}  // namespace axon
