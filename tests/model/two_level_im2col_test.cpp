// Extension study: two-level im2col reuse (horizontal MUX chain + vertical
// row buffer). Not in the paper — the paper's chain exploits only
// horizontally adjacent windows; this models also reusing the kh - stride_h
// kernel rows shared between vertically adjacent windows.
#include <gtest/gtest.h>

#include "model/im2col_traffic.hpp"
#include "tensor/im2col.hpp"

namespace axon {
namespace {

TEST(TwoLevelIm2colTest, OrderingSoftwareGeqHorizontalGeqTwoLevel) {
  for (const ConvShape& c :
       {make_conv(64, 56, 64, 3, 1, 1), make_conv(3, 224, 64, 7, 2, 3),
        make_conv(16, 28, 32, 5, 1, 2), make_conv(8, 32, 8, 3, 2, 1)}) {
    const i64 sw = ifmap_sram_loads(c, Im2colMode::kSoftware, 64);
    const i64 h = ifmap_sram_loads(c, Im2colMode::kAxonOnChip, 64);
    const i64 two = ifmap_sram_loads(c, Im2colMode::kAxonTwoLevel, 64);
    EXPECT_LE(h, sw) << c;
    EXPECT_LE(two, h) << c;
    // Never below the information-theoretic floor (unique elements) by
    // more than the first-row bootstrap... in fact never below it at all
    // for stride-1 interior-dominated layers is not guaranteed by the
    // closed form, but it must stay positive.
    EXPECT_GT(two, 0) << c;
  }
}

TEST(TwoLevelIm2colTest, ThreeByThreeApproachesOneNinth) {
  // Horizontal chain alone: ~1/3 of software. Adding vertical reuse with
  // stride 1 keeps only 1 of 3 kernel rows: ~1/9 overall.
  const ConvShape c = make_conv(32, 112, 32, 3, 1, 1);
  const double h =
      memory_access_reduction_pct(c, Im2colMode::kAxonOnChip, 128);
  const double two =
      memory_access_reduction_pct(c, Im2colMode::kAxonTwoLevel, 128);
  EXPECT_NEAR(h, 66.0, 2.0);
  EXPECT_GT(two, 85.0);
  EXPECT_LT(two, 90.0);
}

TEST(TwoLevelIm2colTest, StrideEqualKernelNoVerticalReuse) {
  // stride_h == kh: no rows are shared between output rows; the two-level
  // count equals the horizontal-only count.
  const ConvShape c = make_conv(4, 16, 4, 2, 2, 0);
  EXPECT_EQ(ifmap_sram_loads(c, Im2colMode::kAxonTwoLevel, 32),
            ifmap_sram_loads(c, Im2colMode::kAxonOnChip, 32));
}

TEST(TwoLevelIm2colTest, SingleOutputRowDegenerates) {
  // oh == 1: the vertical buffer never helps.
  ConvShape c;
  c.in_channels = c.out_channels = 2;
  c.in_h = 3;
  c.in_w = 32;
  c.kernel_h = 3;
  c.kernel_w = 3;
  ASSERT_TRUE(c.valid());
  ASSERT_EQ(c.out_h(), 1);
  EXPECT_EQ(ifmap_sram_loads(c, Im2colMode::kAxonTwoLevel, 16),
            ifmap_sram_loads(c, Im2colMode::kAxonOnChip, 16));
}

TEST(TwoLevelIm2colTest, DramTrafficUnchangedByOnChipMode) {
  // Both on-chip modes fetch only unique IFMAP elements from DRAM; the
  // two-level scheme saves *SRAM* traffic on top.
  const ConvShape c = make_conv(16, 28, 32, 3, 1, 1);
  EXPECT_EQ(conv_dram_traffic(c, Im2colMode::kAxonOnChip).ifmap_bytes,
            conv_dram_traffic(c, Im2colMode::kAxonTwoLevel).ifmap_bytes);
}

}  // namespace
}  // namespace axon
