// Aspect-ratio design-space search (extension study): Axon's max(R, C)
// fill term penalizes elongated arrays harder than SA's R + C.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "model/runtime_model.hpp"

namespace axon {
namespace {

TEST(ShapeSearchTest, RespectsPeBudget) {
  const GemmShape g{512, 512, 512};
  for (ArchType arch : {ArchType::kConventionalSA, ArchType::kAxon}) {
    const ShapeSearchResult r = best_array_shape(arch, g, 4096);
    EXPECT_LE(r.shape.num_pes(), 4096);
    EXPECT_GT(r.runtime.cycles, 0);
  }
}

TEST(ShapeSearchTest, BeatsOrMatchesTheSquareDefault) {
  for (const GemmShape& g :
       {GemmShape{2048, 32, 64}, GemmShape{64, 4096, 64},
        GemmShape{128, 128, 128}}) {
    for (ArchType arch : {ArchType::kConventionalSA, ArchType::kAxon}) {
      const ShapeSearchResult r = best_array_shape(arch, g, 64 * 64);
      const i64 square = best_dataflow_runtime(arch, g, {64, 64}).cycles;
      EXPECT_LE(r.runtime.cycles, square) << to_string(arch) << " " << g;
    }
  }
}

TEST(ShapeSearchTest, BalancedWorkloadPrefersNearSquareOnAxon) {
  const GemmShape g{1024, 1024, 1024};
  const ShapeSearchResult r = best_array_shape(ArchType::kAxon, g, 4096);
  // max(R, C) <= 2 * min(R, C): elongation never wins here for Axon.
  const i64 lo = std::min(r.shape.rows, r.shape.cols);
  const i64 hi = std::max(r.shape.rows, r.shape.cols);
  EXPECT_LE(hi, 2 * lo) << r.shape;
}

TEST(ShapeSearchTest, AxonRuntimeNeverWorseThanSaAtSameBudget) {
  for (const GemmShape& g :
       {GemmShape{31999, 84, 1024}, GemmShape{2048, 128, 1},
        GemmShape{64, 147, 62500}}) {
    const ShapeSearchResult sa =
        best_array_shape(ArchType::kConventionalSA, g, 16384);
    const ShapeSearchResult ax = best_array_shape(ArchType::kAxon, g, 16384);
    EXPECT_LE(ax.runtime.cycles, sa.runtime.cycles) << g;
  }
}

TEST(ShapeSearchTest, BudgetOneIsSinglePe) {
  const ShapeSearchResult r =
      best_array_shape(ArchType::kAxon, {4, 4, 4}, 1);
  EXPECT_EQ(r.shape, (ArrayShape{1, 1}));
  EXPECT_THROW(best_array_shape(ArchType::kAxon, {4, 4, 4}, 0), CheckError);
}

}  // namespace
}  // namespace axon
