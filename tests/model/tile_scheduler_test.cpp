#include "model/tile_scheduler.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace axon {
namespace {

const DramModel kDram;

TEST(TileSchedulerTest, SmallGemmFitsEverythingOnce) {
  const GemmShape g{64, 64, 64};
  const SramConfig sram;  // 256k-word buffers: everything fits
  const TilePlan p = plan_gemm(ArchType::kAxon, Dataflow::kOS, g, {16, 16},
                               sram, kDram);
  EXPECT_EQ(p.a_passes, 1);
  EXPECT_EQ(p.b_passes, 1);
  EXPECT_EQ(p.a_dram_elems, g.a_elems());
  EXPECT_EQ(p.b_dram_elems, g.b_elems());
  EXPECT_EQ(p.c_dram_elems, g.c_elems());
  EXPECT_EQ(p.tiles, 16);
}

TEST(TileSchedulerTest, TinySramForcesRefetch) {
  const GemmShape g{512, 256, 512};
  SramConfig sram;
  sram.ifmap_words = 1024;   // neither operand fits
  sram.filter_words = 1024;
  sram.double_buffered = false;
  const TilePlan p = plan_gemm(ArchType::kAxon, Dataflow::kOS, g, {64, 64},
                               sram, kDram);
  // One operand resident, the other refetched once per pass.
  EXPECT_EQ(p.a_passes * p.b_passes, 8);  // ceil(512/64) = 8 passes
  EXPECT_GT(p.dram_bytes(),
            elems_to_bytes(g.a_elems() + g.b_elems() + g.c_elems()));
}

TEST(TileSchedulerTest, PicksCheaperLoopOrder) {
  // A fits its scratchpad, B does not, and there are many row tiles: the
  // A-resident order would stream B once per row tile; keeping B resident
  // (with A fetched once, since it fits) is strictly cheaper.
  const GemmShape g{8192, 64, 8192};
  SramConfig sram;
  sram.ifmap_words = 4 * 1024 * 1024;  // A (512k words) fits
  sram.filter_words = 1024;            // B (512k words) does not
  const TilePlan p = plan_gemm(ArchType::kAxon, Dataflow::kOS, g, {64, 64},
                               sram, kDram);
  EXPECT_EQ(p.order, LoopOrder::kBResident);
  EXPECT_EQ(p.a_passes, 1);
  EXPECT_EQ(p.b_passes, 1);
  EXPECT_EQ(p.a_dram_elems + p.b_dram_elems, g.a_elems() + g.b_elems());

  // Mirror image: B fits, A does not -> A-resident.
  SramConfig mirror;
  mirror.ifmap_words = 1024;
  mirror.filter_words = 4 * 1024 * 1024;
  const TilePlan q = plan_gemm(ArchType::kAxon, Dataflow::kOS, g, {64, 64},
                               mirror, kDram);
  EXPECT_EQ(q.order, LoopOrder::kAResident);
  EXPECT_EQ(q.a_passes, 1);
  EXPECT_EQ(q.b_passes, 1);
}

TEST(TileSchedulerTest, DoubleBufferingOverlapsTransfers) {
  const GemmShape g{256, 256, 256};
  SramConfig db;
  db.double_buffered = true;
  SramConfig sb = db;
  sb.double_buffered = false;
  const TilePlan pd = plan_gemm(ArchType::kAxon, Dataflow::kOS, g, {32, 32},
                                db, kDram);
  const TilePlan ps = plan_gemm(ArchType::kAxon, Dataflow::kOS, g, {32, 32},
                                sb, kDram);
  EXPECT_EQ(pd.total_cycles,
            std::max(pd.compute_cycles, pd.transfer_cycles));
  EXPECT_EQ(ps.total_cycles, ps.compute_cycles + ps.transfer_cycles);
  EXPECT_LE(pd.total_cycles, ps.total_cycles);
}

TEST(TileSchedulerTest, AxonComputeFasterThanSa) {
  const GemmShape g{512, 64, 512};
  const SramConfig sram;
  const TilePlan ax = plan_gemm(ArchType::kAxon, Dataflow::kOS, g, {64, 64},
                                sram, kDram);
  const TilePlan sa = plan_gemm(ArchType::kConventionalSA, Dataflow::kOS, g,
                                {64, 64}, sram, kDram);
  EXPECT_LT(ax.compute_cycles, sa.compute_cycles);
  // Traffic is orchestration-independent for plain GEMM.
  EXPECT_EQ(ax.dram_bytes(), sa.dram_bytes());
}

TEST(TileSchedulerTest, DataflowChangesTileAxes) {
  const GemmShape g{512, 64, 512};
  const SramConfig sram;
  const TilePlan os = plan_gemm(ArchType::kAxon, Dataflow::kOS, g, {64, 64},
                                sram, kDram);
  const TilePlan ws = plan_gemm(ArchType::kAxon, Dataflow::kWS, g, {64, 64},
                                sram, kDram);
  EXPECT_EQ(os.tiles, 64);  // ceil(512/64)^2
  EXPECT_EQ(ws.tiles, 8);   // ceil(64/64) * ceil(512/64)
}

TEST(TileSchedulerTest, InvalidInputsRejected) {
  const GemmShape g{8, 8, 8};
  SramConfig bad;
  bad.ifmap_words = 0;
  EXPECT_THROW(
      plan_gemm(ArchType::kAxon, Dataflow::kOS, g, {8, 8}, bad, kDram),
      CheckError);
}

}  // namespace
}  // namespace axon
