#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace axon {
namespace {

TEST(StatsTest, AddAndGet) {
  Stats s;
  EXPECT_EQ(s.get("x"), 0);
  EXPECT_FALSE(s.has("x"));
  s.add("x");
  s.add("x", 4);
  EXPECT_EQ(s.get("x"), 5);
  EXPECT_TRUE(s.has("x"));
}

TEST(StatsTest, MergeSumsCounters) {
  Stats a, b;
  a.add("shared", 2);
  a.add("only_a", 1);
  b.add("shared", 3);
  b.add("only_b", 7);
  a.merge(b);
  EXPECT_EQ(a.get("shared"), 5);
  EXPECT_EQ(a.get("only_a"), 1);
  EXPECT_EQ(a.get("only_b"), 7);
}

TEST(StatsTest, ClearAndDump) {
  Stats s;
  s.add("a", 1);
  s.add("b", 2);
  const std::string dump = s.to_string();
  EXPECT_NE(dump.find("a = 1"), std::string::npos);
  EXPECT_NE(dump.find("b = 2"), std::string::npos);
  s.clear();
  EXPECT_TRUE(s.all().empty());
}

TEST(StatsTest, NegativeDeltasAllowed) {
  Stats s;
  s.add("net", 10);
  s.add("net", -3);
  EXPECT_EQ(s.get("net"), 7);
}

}  // namespace
}  // namespace axon
