#include "sim/clock.hpp"

#include <gtest/gtest.h>

namespace axon {
namespace {

// A shift-register stage: samples its input during compute, exposes it
// after commit. Chains verify two-phase (flip-flop) semantics.
class Stage : public Ticked {
 public:
  explicit Stage(const int* input) : input_(input) {}
  void compute(Cycle) override { reg_.set(*input_); }
  void commit(Cycle) override { reg_.commit(); }
  [[nodiscard]] int value() const { return reg_.get(); }

 private:
  const int* input_;
  Reg<int> reg_{0};
};

TEST(ClockTest, TwoPhaseShiftRegister) {
  int source = 1;
  Stage s1(&source);
  int mid = 0;
  // s2 reads s1's committed value through `mid`, updated between cycles by
  // the test body to model a wire.
  Stage s2(&mid);
  Clock clock;
  clock.attach(&s1);
  clock.attach(&s2);

  // Cycle 0: s1 latches 1; s2 latches mid=0.
  clock.tick();
  EXPECT_EQ(s1.value(), 1);
  EXPECT_EQ(s2.value(), 0);
  mid = s1.value();
  source = 2;
  // Cycle 1: s1 latches 2; s2 latches old s1 value (1).
  clock.tick();
  EXPECT_EQ(s1.value(), 2);
  EXPECT_EQ(s2.value(), 1);
  EXPECT_EQ(clock.now(), 2);
}

TEST(ClockTest, RegHoldsUntilCommit) {
  Reg<float> r(1.5f);
  r.set(2.5f);
  EXPECT_EQ(r.get(), 1.5f);  // not visible before commit
  r.commit();
  EXPECT_EQ(r.get(), 2.5f);
  r.reset(0.0f);
  EXPECT_EQ(r.get(), 0.0f);
}

TEST(ClockTest, RunAdvancesNCycles) {
  Clock clock;
  clock.run(7);
  EXPECT_EQ(clock.now(), 7);
  EXPECT_THROW(clock.run(-1), CheckError);
}

TEST(ClockTest, AttachNullRejected) {
  Clock clock;
  EXPECT_THROW(clock.attach(nullptr), CheckError);
}

}  // namespace
}  // namespace axon
