#include "tensor/matrix.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace axon {
namespace {

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (i64 i = 0; i < 3; ++i) {
    for (i64 j = 0; j < 4; ++j) EXPECT_EQ(m.at(i, j), 2.5f);
  }
  EXPECT_TRUE(Matrix().empty());
}

TEST(MatrixTest, RowMajorLayout) {
  Matrix m(2, 3);
  m.at(1, 2) = 9.0f;
  EXPECT_EQ(m.data()[5], 9.0f);
  m.at(0, 1) = 4.0f;
  EXPECT_EQ(m.data()[1], 4.0f);
}

TEST(MatrixTest, CountZeros) {
  Matrix m(2, 2, 0.0f);
  EXPECT_EQ(m.count_zeros(), 4);
  m.at(0, 0) = 1.0f;
  EXPECT_EQ(m.count_zeros(), 3);
}

TEST(MatrixTest, MaxAbsDiffAndApproxEqual) {
  Matrix a(2, 2, 1.0f), b(2, 2, 1.0f);
  b.at(1, 1) = 1.5f;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.5);
  EXPECT_FALSE(a.approx_equal(b, 0.1));
  EXPECT_TRUE(a.approx_equal(b, 0.6));
  EXPECT_FALSE(a.approx_equal(Matrix(2, 3)));  // shape mismatch
}

TEST(MatrixTest, EqualityIsElementwise) {
  Matrix a(2, 2, 3.0f), b(2, 2, 3.0f);
  EXPECT_EQ(a, b);
  b.at(0, 1) = 0.0f;
  EXPECT_NE(a, b);
}

TEST(MatrixTest, RandomMatrixIsDeterministic) {
  Rng r1(5), r2(5);
  EXPECT_EQ(random_matrix(4, 4, r1), random_matrix(4, 4, r2));
}

TEST(MatrixTest, RandomSparseMatrixHitsFraction) {
  Rng rng(3);
  Matrix m = random_sparse_matrix(100, 100, 0.4, rng);
  const double frac = static_cast<double>(m.count_zeros()) / 10000.0;
  EXPECT_NEAR(frac, 0.4, 0.03);
}

}  // namespace
}  // namespace axon
