#include "tensor/tensor4.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace axon {
namespace {

TEST(Tensor4Test, IndexingIsNchw) {
  Tensor4 t(2, 3, 4, 5);
  EXPECT_EQ(t.size(), 120);
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t.data()[119], 7.0f);
  t.at(0, 0, 0, 1) = 3.0f;
  EXPECT_EQ(t.data()[1], 3.0f);
}

TEST(Tensor4Test, PaddedReadsReturnZeroOutside) {
  Tensor4 t(1, 1, 2, 2, 5.0f);
  EXPECT_EQ(t.at_padded(0, 0, -1, 0), 0.0f);
  EXPECT_EQ(t.at_padded(0, 0, 0, -1), 0.0f);
  EXPECT_EQ(t.at_padded(0, 0, 2, 0), 0.0f);
  EXPECT_EQ(t.at_padded(0, 0, 0, 2), 0.0f);
  EXPECT_EQ(t.at_padded(0, 0, 1, 1), 5.0f);
}

TEST(Tensor4Test, RandomTensorDeterministic) {
  Rng a(9), b(9);
  EXPECT_EQ(random_tensor(1, 2, 3, 4, a), random_tensor(1, 2, 3, 4, b));
}

}  // namespace
}  // namespace axon
