#include "tensor/im2col.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace axon {
namespace {

TEST(Im2colTest, PaperFig7Example) {
  // 6x6 IFMAP, 3x3 filter, no padding, stride 1 -> 4x4 = 16 windows of 9
  // elements; 18 unique elements appear in the first output row's windows.
  const ConvShape c = make_conv(1, 6, 1, 3);
  Tensor4 in(1, 1, 6, 6);
  for (i64 i = 0; i < 36; ++i) in.data()[i] = static_cast<float>(i);
  const Matrix w = im2col_windows(in, c);
  EXPECT_EQ(w.rows(), 16);
  EXPECT_EQ(w.cols(), 9);
  // Window 0 covers rows 0..2, cols 0..2.
  const float expect0[9] = {0, 1, 2, 6, 7, 8, 12, 13, 14};
  for (i64 k = 0; k < 9; ++k) EXPECT_EQ(w.at(0, k), expect0[k]);
  // Window 1 slides one column right; shares 6 = n(n-1) elements with w0.
  int shared = 0;
  for (i64 k = 0; k < 9; ++k) {
    for (i64 l = 0; l < 9; ++l) {
      if (w.at(1, k) == w.at(0, l)) { ++shared; break; }
    }
  }
  EXPECT_EQ(shared, 6);
}

TEST(Im2colTest, PaddingProducesZeros) {
  const ConvShape c = make_conv(1, 4, 1, 3, 1, 1);
  Tensor4 in(1, 1, 4, 4, 1.0f);
  const Matrix w = im2col_windows(in, c);
  EXPECT_EQ(w.rows(), 16);
  // Window 0 is the top-left corner: its first row and column are padding.
  EXPECT_EQ(w.at(0, 0), 0.0f);  // (ky=0,kx=0) out of bounds
  EXPECT_EQ(w.at(0, 4), 1.0f);  // center in bounds
}

TEST(Im2colTest, StrideSkipsWindows) {
  const ConvShape c = make_conv(1, 8, 1, 2, 2, 0);
  Tensor4 in(1, 1, 8, 8);
  for (i64 i = 0; i < 64; ++i) in.data()[i] = static_cast<float>(i);
  const Matrix w = im2col_windows(in, c);
  EXPECT_EQ(w.rows(), 16);  // 4x4 outputs
  EXPECT_EQ(w.at(1, 0), 2.0f);  // second window starts at column 2
}

TEST(Im2colTest, MultiChannelOrderIsChannelMajor) {
  const ConvShape c = make_conv(2, 3, 1, 2);
  Tensor4 in(1, 2, 3, 3);
  for (i64 i = 0; i < 18; ++i) in.data()[i] = static_cast<float>(i);
  const Matrix w = im2col_windows(in, c);
  EXPECT_EQ(w.cols(), 8);  // 2 channels x 2x2 kernel
  // First 4 entries: channel 0 window; next 4: channel 1.
  EXPECT_EQ(w.at(0, 0), 0.0f);
  EXPECT_EQ(w.at(0, 3), 4.0f);
  EXPECT_EQ(w.at(0, 4), 9.0f);   // channel 1 starts at flat index 9
  EXPECT_EQ(w.at(0, 7), 13.0f);
}

TEST(Im2colTest, GroupsSelectChannelSlices) {
  const ConvShape c = make_conv(4, 3, 4, 2, 1, 0, 2);
  Rng rng(5);
  const Tensor4 in = random_tensor(1, 4, 3, 3, rng);
  const Matrix g0 = im2col_windows(in, c, 0, 0);
  const Matrix g1 = im2col_windows(in, c, 0, 1);
  EXPECT_EQ(g0.cols(), 8);  // 2 channels per group x 2x2
  // Group 1's first element comes from channel 2.
  EXPECT_EQ(g1.at(0, 0), in.at(0, 2, 0, 0));
  EXPECT_EQ(g0.at(0, 0), in.at(0, 0, 0, 0));
}

TEST(FlattenFiltersTest, LayoutMatchesWindows) {
  const ConvShape c = make_conv(2, 4, 3, 2);
  Rng rng(6);
  const Tensor4 f = random_tensor(3, 2, 2, 2, rng);
  const Matrix flat = flatten_filters(f, c);
  EXPECT_EQ(flat.rows(), 8);
  EXPECT_EQ(flat.cols(), 3);
  // Row order is (channel, ky, kx): row 5 = (c=1, ky=0, kx=1).
  EXPECT_EQ(flat.at(5, 2), f.at(2, 1, 0, 1));
}

TEST(Im2colTest, ElementCountFormula) {
  const ConvShape c = make_conv(16, 14, 32, 3, 1, 1);
  EXPECT_EQ(im2col_element_count(c), i64{14} * 14 * 9 * 16);
  const ConvShape dw = make_conv(8, 10, 8, 3, 1, 0, 8);
  EXPECT_EQ(im2col_element_count(dw), i64{8} * 8 * 9 * 8);
}

TEST(Im2colTest, UniqueElementsNoPadStride1CoversAll) {
  const ConvShape c = make_conv(3, 8, 4, 3);
  // Every input element is touched by some window when kernel>=stride.
  EXPECT_EQ(unique_ifmap_elements(c), i64{3} * 8 * 8);
}

TEST(Im2colTest, UniqueElementsLargeStrideSkipsInput) {
  const ConvShape c = make_conv(1, 9, 1, 2, 4, 0);
  // Windows at columns {0,1}, {4,5}, {8}: wait out_w = (9-2)/4+1 = 2, so
  // columns {0,1} and {4,5} -> 4 of 9 columns covered per axis.
  EXPECT_EQ(c.out_w(), 2);
  EXPECT_EQ(unique_ifmap_elements(c), 16);  // 4 rows x 4 cols
}

TEST(Im2colTest, UniqueElementsMatchBruteForce) {
  // Property: closed-form unique count equals a brute-force coverage scan.
  for (const ConvShape& c :
       {make_conv(2, 7, 3, 3, 2, 1), make_conv(1, 9, 1, 4, 3, 2),
        make_conv(3, 6, 2, 3, 1, 0), make_conv(1, 8, 1, 5, 2, 0)}) {
    std::vector<char> touched(static_cast<std::size_t>(c.in_h * c.in_w), 0);
    for (int oy = 0; oy < c.out_h(); ++oy) {
      for (int ox = 0; ox < c.out_w(); ++ox) {
        for (int ky = 0; ky < c.kernel_h; ++ky) {
          for (int kx = 0; kx < c.kernel_w; ++kx) {
            const int iy = oy * c.stride_h - c.pad_h + ky;
            const int ix = ox * c.stride_w - c.pad_w + kx;
            if (iy >= 0 && iy < c.in_h && ix >= 0 && ix < c.in_w) {
              touched[static_cast<std::size_t>(iy * c.in_w + ix)] = 1;
            }
          }
        }
      }
    }
    i64 count = 0;
    for (char t : touched) count += t;
    EXPECT_EQ(unique_ifmap_elements(c), count * c.in_channels)
        << "shape " << c;
  }
}

}  // namespace
}  // namespace axon
