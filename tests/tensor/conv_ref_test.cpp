#include "tensor/conv_ref.hpp"

#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/im2col.hpp"

namespace axon {
namespace {

TEST(ConvRefTest, KnownAveragePool) {
  // All-ones 3x3 filter over a constant input = 9 * value inside.
  const ConvShape c = make_conv(1, 5, 1, 3);
  Tensor4 in(1, 1, 5, 5, 2.0f);
  Tensor4 f(1, 1, 3, 3, 1.0f);
  const Tensor4 out = conv2d_ref(in, f, c);
  EXPECT_EQ(out.h(), 3);
  for (i64 y = 0; y < 3; ++y) {
    for (i64 x = 0; x < 3; ++x) EXPECT_EQ(out.at(0, 0, y, x), 18.0f);
  }
}

TEST(ConvRefTest, IdentityKernelReproducesInput) {
  const ConvShape c = make_conv(1, 4, 1, 1);
  Rng rng(1);
  const Tensor4 in = random_tensor(1, 1, 4, 4, rng);
  Tensor4 f(1, 1, 1, 1, 1.0f);
  EXPECT_EQ(conv2d_ref(in, f, c), in);
}

// Property sweep: direct convolution must equal im2col + GEMM for every
// combination of channels, kernel, stride, padding and groups.
using ConvParam = std::tuple<int, int, int, int, int, int, int>;
//                      (cin, hw, cout, k, stride, pad, groups)

class ConvEquivalence : public ::testing::TestWithParam<ConvParam> {};

TEST_P(ConvEquivalence, DirectMatchesIm2col) {
  const auto [cin, hw, cout, k, stride, pad, groups] = GetParam();
  const ConvShape c = make_conv(cin, hw, cout, k, stride, pad, groups);
  Rng rng(99);
  const Tensor4 in = random_tensor(2, cin, hw, hw, rng);
  const Tensor4 f = random_tensor(cout, cin / groups, k, k, rng);
  const Tensor4 direct = conv2d_ref(in, f, c);
  const Tensor4 lowered = conv2d_im2col(in, f, c);
  ASSERT_EQ(direct.size(), lowered.size());
  for (i64 i = 0; i < direct.size(); ++i) {
    EXPECT_FLOAT_EQ(direct.data()[i], lowered.data()[i]) << "at flat " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvEquivalence,
    ::testing::Values(ConvParam{1, 6, 1, 3, 1, 0, 1},    // paper Fig. 7
                      ConvParam{3, 8, 4, 3, 1, 1, 1},    // padded
                      ConvParam{2, 9, 3, 3, 2, 1, 1},    // strided
                      ConvParam{4, 7, 4, 3, 1, 1, 4},    // depthwise
                      ConvParam{4, 6, 6, 2, 1, 0, 2},    // grouped
                      ConvParam{1, 12, 2, 5, 3, 2, 1},   // big kernel+stride
                      ConvParam{3, 5, 2, 1, 1, 0, 1},    // 1x1 conv
                      ConvParam{2, 10, 2, 4, 2, 0, 2})); // even kernel

TEST(ConvRefTest, ScatterRoundTripsGemmResult) {
  const ConvShape c = make_conv(2, 5, 3, 3, 1, 1);
  Rng rng(4);
  const Tensor4 in = random_tensor(1, 2, 5, 5, rng);
  const Tensor4 f = random_tensor(3, 2, 3, 3, rng);
  const Matrix prod =
      gemm_ref(im2col_windows(in, c), flatten_filters(f, c));
  Tensor4 out(1, 3, 5, 5);
  scatter_conv_output(prod, c, 0, 0, out);
  EXPECT_EQ(out, conv2d_ref(in, f, c));
}

TEST(ConvRefTest, OneDimensionalDepthwise) {
  // Conformer-style 1-D depthwise conv (kernel 1x5).
  ConvShape c;
  c.in_channels = c.out_channels = c.groups = 3;
  c.in_h = 1;
  c.in_w = 20;
  c.kernel_h = 1;
  c.kernel_w = 5;
  c.pad_w = 2;
  ASSERT_TRUE(c.valid());
  Rng rng(8);
  const Tensor4 in = random_tensor(1, 3, 1, 20, rng);
  const Tensor4 f = random_tensor(3, 1, 1, 5, rng);
  const Tensor4 a = conv2d_ref(in, f, c);
  const Tensor4 b = conv2d_im2col(in, f, c);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.w(), 20);
}

}  // namespace
}  // namespace axon
