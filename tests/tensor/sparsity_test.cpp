#include "tensor/sparsity.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace axon {
namespace {

TEST(SparsityTest, ZeroFraction) {
  Matrix m(2, 2, 1.0f);
  EXPECT_DOUBLE_EQ(zero_fraction(m), 0.0);
  m.at(0, 0) = 0.0f;
  m.at(1, 1) = 0.0f;
  EXPECT_DOUBLE_EQ(zero_fraction(m), 0.5);
  EXPECT_DOUBLE_EQ(zero_fraction(Matrix()), 0.0);
}

TEST(SparsityTest, SparsifyReachesTarget) {
  Rng rng(1);
  Matrix m(50, 50, 1.0f);
  sparsify(m, 0.1, rng);
  EXPECT_NEAR(zero_fraction(m), 0.1, 0.001);
  sparsify(m, 0.5, rng);
  EXPECT_NEAR(zero_fraction(m), 0.5, 0.001);
  // Already sparser than target: no-op.
  sparsify(m, 0.2, rng);
  EXPECT_NEAR(zero_fraction(m), 0.5, 0.001);
}

TEST(SparsityTest, ExpectedGatedFraction) {
  EXPECT_DOUBLE_EQ(expected_gated_fraction(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(expected_gated_fraction(1.0, 0.0), 1.0);
  EXPECT_NEAR(expected_gated_fraction(0.1, 0.1), 0.19, 1e-12);
  EXPECT_NEAR(expected_gated_fraction(0.1, 0.0), 0.1, 1e-12);
}

TEST(SparsityTest, ExactGatedMacsMatchesBruteForce) {
  Rng rng(2);
  const Matrix a = random_sparse_matrix(7, 9, 0.3, rng);
  const Matrix b = random_sparse_matrix(9, 5, 0.2, rng);
  i64 brute = 0;
  for (i64 i = 0; i < a.rows(); ++i) {
    for (i64 k = 0; k < a.cols(); ++k) {
      for (i64 j = 0; j < b.cols(); ++j) {
        if (a.at(i, k) == 0.0f || b.at(k, j) == 0.0f) ++brute;
      }
    }
  }
  EXPECT_EQ(exact_gated_macs(a, b), brute);
}

TEST(SparsityTest, DenseOperandsGateNothing) {
  Rng rng(3);
  const Matrix a = random_sparse_matrix(6, 6, 0.0, rng);
  const Matrix b = random_sparse_matrix(6, 6, 0.0, rng);
  EXPECT_EQ(exact_gated_macs(a, b), 0);
}

TEST(SparsityTest, AllZeroOperandGatesEverything) {
  Matrix a(4, 4, 0.0f);
  Matrix b(4, 4, 1.0f);
  EXPECT_EQ(exact_gated_macs(a, b), 64);
}

}  // namespace
}  // namespace axon
