#include "tensor/gemm_ref.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace axon {
namespace {

TEST(GemmRefTest, KnownSmallProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Matrix a(2, 2), b(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
  b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
  const Matrix c = gemm_ref(a, b);
  EXPECT_EQ(c.at(0, 0), 19.0f);
  EXPECT_EQ(c.at(0, 1), 22.0f);
  EXPECT_EQ(c.at(1, 0), 43.0f);
  EXPECT_EQ(c.at(1, 1), 50.0f);
}

TEST(GemmRefTest, IdentityIsNeutral) {
  Rng rng(1);
  const Matrix a = random_matrix(5, 5, rng);
  Matrix eye(5, 5);
  for (i64 i = 0; i < 5; ++i) eye.at(i, i) = 1.0f;
  EXPECT_TRUE(gemm_ref(a, eye).approx_equal(a, 0.0));
  EXPECT_TRUE(gemm_ref(eye, a).approx_equal(a, 0.0));
}

TEST(GemmRefTest, RectangularShapes) {
  Rng rng(2);
  const Matrix a = random_matrix(3, 7, rng);
  const Matrix b = random_matrix(7, 2, rng);
  const Matrix c = gemm_ref(a, b);
  EXPECT_EQ(c.rows(), 3);
  EXPECT_EQ(c.cols(), 2);
  // Spot-check one element against a manual dot product.
  double acc = 0;
  for (i64 k = 0; k < 7; ++k) acc += a.at(2, k) * b.at(k, 1);
  EXPECT_FLOAT_EQ(c.at(2, 1), static_cast<float>(acc));
}

TEST(GemmRefTest, InnerDimMismatchRejected) {
  EXPECT_THROW(gemm_ref(Matrix(2, 3), Matrix(4, 2)), CheckError);
}

TEST(GemvRefTest, MatchesGemm) {
  Rng rng(3);
  const Matrix a = random_matrix(6, 4, rng);
  const Matrix x = random_matrix(4, 1, rng);
  EXPECT_EQ(gemv_ref(a, x), gemm_ref(a, x));
  EXPECT_THROW(gemv_ref(a, Matrix(4, 2)), CheckError);
}

TEST(GemmRefFp16Test, ExactForSmallIntegerOperands) {
  // Small integer operands with short reductions are exact in fp16, so the
  // fp16 pipeline must agree with the double-precision reference.
  Rng rng(4);
  const Matrix a = random_matrix(8, 10, rng);
  const Matrix b = random_matrix(10, 8, rng);
  EXPECT_TRUE(gemm_ref_fp16(a, b).approx_equal(gemm_ref(a, b), 0.0));
}

TEST(GemmRefFp16Test, RoundsLikeFp16) {
  // 2048 + 1 is not representable in fp16 (needs 12 mantissa bits).
  Matrix a(1, 2), b(2, 1);
  a.at(0, 0) = 2048.0f;
  a.at(0, 1) = 1.0f;
  b.at(0, 0) = 1.0f;
  b.at(1, 0) = 1.0f;
  EXPECT_EQ(gemm_ref_fp16(a, b).at(0, 0), 2048.0f);  // RNE drops the +1
  EXPECT_EQ(gemm_ref(a, b).at(0, 0), 2049.0f);
}

}  // namespace
}  // namespace axon
