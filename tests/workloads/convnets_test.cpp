#include "workloads/convnets.hpp"

#include <gtest/gtest.h>

namespace axon {
namespace {

TEST(Resnet50Test, LayerTableShapesChain) {
  const auto layers = resnet50_conv_layers();
  EXPECT_GE(layers.size(), 25u);
  for (const auto& l : layers) {
    EXPECT_TRUE(l.shape.valid()) << l.name;
    EXPECT_GE(l.repeats, 1) << l.name;
  }
  // Stem: 224 -> 112.
  EXPECT_EQ(layers.front().shape.out_h(), 112);
}

TEST(Resnet50Test, TotalMacsNearPublishedCount) {
  // He et al. report "3.8 billion FLOPs (multiply-adds)" for ResNet50 at
  // 224x224; our conv-layer table sums to ~3.86 GMACs.
  const i64 macs = total_macs(resnet50_conv_layers());
  EXPECT_GT(macs, i64{3'400'000'000});
  EXPECT_LT(macs, i64{4'200'000'000});
}

TEST(Yolov3Test, TotalMacsNearPublishedCount) {
  // YOLOv3 at 416x416: ~32.8 GMACs (65.86 GFLOPs).
  const i64 macs = total_macs(yolov3_conv_layers());
  EXPECT_GT(macs, i64{25'000'000'000});
  EXPECT_LT(macs, i64{40'000'000'000});
}

TEST(Yolov3Test, DetectionHeadsPresent) {
  const auto layers = yolov3_conv_layers();
  int det = 0;
  for (const auto& l : layers) {
    if (l.shape.out_channels == 255) ++det;
  }
  EXPECT_EQ(det, 3);  // three scales
}

TEST(MobilenetDwTest, AllDepthwise) {
  const auto layers = mobilenet_dw_layers();
  EXPECT_GE(layers.size(), 9u);
  for (const auto& l : layers) {
    EXPECT_TRUE(l.shape.depthwise()) << l.name;
    EXPECT_EQ(l.shape.kernel_h, 3) << l.name;
  }
}

TEST(ConformerDwTest, OneDimensionalKernel31) {
  const auto layers = conformer_dw_layers();
  ASSERT_EQ(layers.size(), 1u);
  EXPECT_TRUE(layers[0].shape.depthwise());
  EXPECT_EQ(layers[0].shape.kernel_w, 31);
  EXPECT_EQ(layers[0].shape.out_w(), 1500);  // same-padded
}

TEST(Fig11ShapesTest, AllValidAndMostlyThreeByThree) {
  const auto shapes = fig11_conv_shapes();
  EXPECT_GE(shapes.size(), 8u);
  int k3 = 0;
  for (const auto& s : shapes) {
    EXPECT_TRUE(s.shape.valid()) << s.name;
    if (s.shape.kernel_h == 3) ++k3;
  }
  EXPECT_GE(k3, 6);
}

TEST(TotalMacsTest, RespectsRepeats) {
  std::vector<ConvWorkload> two = {
      {"a", make_conv(1, 4, 1, 3), 1},
      {"b", make_conv(1, 4, 1, 3), 3},
  };
  EXPECT_EQ(total_macs(two), 4 * two[0].shape.macs());
}

}  // namespace
}  // namespace axon
