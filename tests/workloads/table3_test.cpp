#include "workloads/table3.hpp"

#include <set>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace axon {
namespace {

TEST(Table3Test, HasAllTwentyWorkloads) {
  const auto w = table3_workloads();
  EXPECT_EQ(w.size(), 20u);
  std::set<std::string> names;
  for (const auto& x : w) {
    EXPECT_TRUE(x.shape.valid()) << x.name;
    names.insert(x.name);
  }
  EXPECT_EQ(names.size(), w.size());  // no duplicates
}

TEST(Table3Test, SpotCheckPaperValues) {
  const auto w = table3_workloads();
  EXPECT_EQ(find_workload(w, "TF0").shape, (GemmShape{31999, 84, 1024}));
  EXPECT_EQ(find_workload(w, "GPT3_3_lmhead").shape,
            (GemmShape{1024, 2560, 50257}));
  EXPECT_EQ(find_workload(w, "NCF0").shape, (GemmShape{2048, 128, 1}));
  EXPECT_EQ(find_workload(w, "DB0").shape, (GemmShape{1024, 50000, 16}));
  EXPECT_EQ(find_workload(w, "Resnet50_0_conv2d").shape,
            (GemmShape{64, 147, 62500}));
  EXPECT_EQ(find_workload(w, "YOLO_v3_1_conv2d").shape,
            (GemmShape{128, 576, 10404}));
  EXPECT_EQ(find_workload(w, "GEMM_3").shape, (GemmShape{64, 2560, 2560}));
}

TEST(Table3Test, ConvRowsMatchLoweredLayers) {
  // Resnet50_1_conv2d: 512 filters over 512x3x3 = 4608 with 26x26 = 676
  // output pixels; YOLO_v3_0: 64 filters over 32x3x3 = 288, 206x206 = 42436.
  const auto w = table3_workloads();
  const GemmShape r1 = find_workload(w, "Resnet50_1_conv2d").shape;
  EXPECT_EQ(r1.K, 512 * 9);
  EXPECT_EQ(r1.N, 26 * 26);
  const GemmShape y0 = find_workload(w, "YOLO_v3_0_conv2d").shape;
  EXPECT_EQ(y0.K, 32 * 9);
  EXPECT_EQ(y0.N, 206 * 206);
}

TEST(Table3Test, GemvWorkloadsAreVectors) {
  for (const auto& w : gemv_workloads()) {
    EXPECT_EQ(w.shape.N, 1) << w.name;
    EXPECT_TRUE(w.shape.valid());
  }
  EXPECT_GE(gemv_workloads().size(), 4u);
}

TEST(Table3Test, ConformerSetValid) {
  for (const auto& w : conformer_gemm_workloads()) {
    EXPECT_TRUE(w.shape.valid()) << w.name;
  }
}

TEST(Table3Test, FindMissingThrows) {
  EXPECT_THROW(find_workload(table3_workloads(), "nope"), CheckError);
}

}  // namespace
}  // namespace axon
