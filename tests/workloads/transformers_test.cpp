#include "workloads/transformers.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace axon {
namespace {

TEST(BertGemmsTest, ShapesScaleWithSequenceLength) {
  const auto s384 = bert_base_gemms(384);
  const auto s128 = bert_base_gemms(128);
  ASSERT_EQ(s384.size(), s128.size());
  for (const auto& w : s384) EXPECT_TRUE(w.shape.valid()) << w.name;
  // QKV projection: (S x 768) * (768 x 2304).
  EXPECT_EQ(s384[0].shape, (GemmShape{384, 768, 3 * 768}));
  EXPECT_EQ(s128[0].shape.M, 128);
  // Attention scores are S x S.
  EXPECT_EQ(s384[1].shape.N, 384);
  EXPECT_THROW(bert_base_gemms(0), CheckError);
}

TEST(Gpt2GemmsTest, IncludesLmHead) {
  const auto g = gpt2_gemms(1024);
  bool found = false;
  for (const auto& w : g) {
    EXPECT_TRUE(w.shape.valid()) << w.name;
    if (w.name == "gpt2_lmhead") {
      found = true;
      EXPECT_EQ(w.shape.N, 50257);
    }
  }
  EXPECT_TRUE(found);
}

TEST(DecodeGemvTest, AllVectorShaped) {
  for (const auto& w : decode_gemv_set()) {
    EXPECT_EQ(w.shape.N, 1) << w.name;
    EXPECT_TRUE(w.shape.valid()) << w.name;
  }
}

}  // namespace
}  // namespace axon
