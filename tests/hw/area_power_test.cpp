#include "hw/area_power.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace axon {
namespace {

TEST(AreaPowerTest, Fig10CalibrationExact) {
  // The ASAP7 model must reproduce the paper's 16x16 numbers exactly.
  const AreaPowerModel m(TechNode::kAsap7);
  const ArrayShape a16{16, 16};
  EXPECT_NEAR(m.conventional_sa(a16).area_mm2, 0.9992, 1e-9);
  EXPECT_NEAR(m.conventional_sa(a16).power_mw, 59.88, 1e-9);
  EXPECT_NEAR(m.axon(a16, false).area_mm2, 0.9931, 1e-9);
  EXPECT_NEAR(m.axon(a16, true).area_mm2, 0.9951, 1e-9);
  EXPECT_NEAR(m.axon(a16, true).power_mw, 59.98, 1e-9);
}

TEST(AreaPowerTest, Im2colOverheadMatchesAbstract) {
  // Abstract: 0.211% area overhead (im2col MUXes over the Axon array) and
  // ~0.2% in §5.1.
  const AreaPowerModel m(TechNode::kAsap7);
  const ArrayShape a16{16, 16};
  const double overhead = 100.0 * (m.axon(a16, true).area_mm2 /
                                       m.axon(a16, false).area_mm2 -
                                   1.0);
  EXPECT_NEAR(overhead, 0.2, 0.05);
}

TEST(AreaPowerTest, AxonSmallerThanSa) {
  // Buffer sharing gives Axon a slight net area reduction (§5.1).
  const AreaPowerModel m(TechNode::kAsap7);
  for (int s : {8, 16, 32, 64, 128}) {
    EXPECT_LT(m.axon({s, s}, true).area_mm2,
              m.conventional_sa({s, s}).area_mm2 * 1.01);
    EXPECT_LT(m.axon({s, s}, false).area_mm2,
              m.conventional_sa({s, s}).area_mm2);
  }
}

TEST(AreaPowerTest, AxonBeatsSauriaByAFewPercent) {
  // §5.2.3: Axon averages ~3.93% less area and ~4.5% less power than
  // Sauria across array sizes, at both nodes.
  for (TechNode node : {TechNode::kAsap7, TechNode::kTsmc45}) {
    const AreaPowerModel m(node);
    double area_gain = 0.0, power_gain = 0.0;
    const std::vector<int> sizes{8, 16, 32, 64, 128};
    for (int s : sizes) {
      const ArrayHw ax = m.axon({s, s}, true);
      const ArrayHw sa = m.sauria({s, s});
      EXPECT_LT(ax.area_mm2, sa.area_mm2);
      EXPECT_LT(ax.power_mw, sa.power_mw);
      area_gain += 100.0 * (1.0 - ax.area_mm2 / sa.area_mm2);
      power_gain += 100.0 * (1.0 - ax.power_mw / sa.power_mw);
    }
    area_gain /= sizes.size();
    power_gain /= sizes.size();
    EXPECT_NEAR(area_gain, 3.93, 1.5) << to_string(node);
    EXPECT_NEAR(power_gain, 4.5, 1.5) << to_string(node);
  }
}

TEST(AreaPowerTest, NodeScalingMonotone) {
  const AreaPowerModel asap(TechNode::kAsap7);
  const AreaPowerModel n45(TechNode::kTsmc45);
  const ArrayShape a{32, 32};
  EXPECT_GT(n45.conventional_sa(a).area_mm2, asap.conventional_sa(a).area_mm2);
  EXPECT_GT(n45.conventional_sa(a).power_mw, asap.conventional_sa(a).power_mw);
  // Relative Axon-vs-Sauria delta is node-independent.
  const double d7 = asap.sauria(a).area_mm2 / asap.axon(a, true).area_mm2;
  const double d45 = n45.sauria(a).area_mm2 / n45.axon(a, true).area_mm2;
  EXPECT_NEAR(d7, d45, 1e-9);
}

TEST(AreaPowerTest, AreaScalesWithPeCount) {
  const AreaPowerModel m(TechNode::kAsap7);
  const double a16 = m.conventional_sa({16, 16}).area_mm2;
  const double a32 = m.conventional_sa({32, 32}).area_mm2;
  EXPECT_NEAR(a32 / a16, 4.0, 1e-9);
}

TEST(ZeroGatingPowerTest, PaperCalibrationPoint) {
  // §5.2.1: 10% sparsity -> 5.3% total power reduction.
  const AreaPowerModel m(TechNode::kAsap7);
  const double base = 100.0;
  EXPECT_NEAR(m.power_with_zero_gating(base, 0.10), 94.7, 1e-9);
  EXPECT_DOUBLE_EQ(m.power_with_zero_gating(base, 0.0), base);
  // Fully gated arrays still burn the non-MAC share.
  EXPECT_NEAR(m.power_with_zero_gating(base, 1.0),
              base * (1.0 - kMacDynamicPowerShare), 1e-9);
  EXPECT_THROW((void)m.power_with_zero_gating(base, 1.5), CheckError);
}

}  // namespace
}  // namespace axon
