#include "hw/energy.hpp"

#include <gtest/gtest.h>

namespace axon {
namespace {

TEST(EnergyTest, ComparisonFields) {
  const DramModel dram;
  const i64 mb = 1024 * 1024;
  const EnergyComparison c = compare_dram_energy(dram, 200 * mb, 120 * mb);
  EXPECT_EQ(c.baseline_bytes, 200 * mb);
  EXPECT_EQ(c.axon_bytes, 120 * mb);
  EXPECT_NEAR(c.traffic_reduction_pct, 40.0, 1e-9);
  EXPECT_NEAR(c.saved_energy_mj, dram.energy_mj(80 * mb), 1e-12);
  EXPECT_GT(c.baseline_energy_mj, c.axon_energy_mj);
}

TEST(EnergyTest, PaperResnetNumbersReproduceSavedMj) {
  // 261.2 MB -> 153.5 MB at 120 pJ/B is ~13.5 mJ saved; the paper rounds
  // to 12 mJ. YOLOv3: 2540 -> 1117 MB is ~179 mJ (paper: 170 mJ).
  const DramModel dram;
  const auto mb = [](double v) {
    return static_cast<i64>(v * 1024 * 1024);
  };
  const EnergyComparison resnet =
      compare_dram_energy(dram, mb(261.2), mb(153.5));
  EXPECT_NEAR(resnet.saved_energy_mj, 12.0, 2.0);
  const EnergyComparison yolo = compare_dram_energy(dram, mb(2540), mb(1117));
  EXPECT_NEAR(yolo.saved_energy_mj, 170.0, 12.0);
}

TEST(EnergyTest, RooflineSpeedupBehaviour) {
  const DramModel dram;  // 6.4 bytes per cycle at 1 GHz
  // Fully memory-bound: speedup equals the traffic ratio.
  EXPECT_NEAR(roofline_speedup(dram, 10, 64000, 32000), 2.0, 1e-9);
  // Fully compute-bound: no speedup.
  EXPECT_NEAR(roofline_speedup(dram, 1'000'000, 6400, 3200), 1.0, 1e-9);
  // Mixed: between 1 and the traffic ratio.
  const double s = roofline_speedup(dram, 7000, 64000, 32000);
  EXPECT_GT(s, 1.0);
  EXPECT_LT(s, 2.0);
}

TEST(EnergyTest, ZeroTrafficEdgeCases) {
  const DramModel dram;
  const EnergyComparison c = compare_dram_energy(dram, 0, 0);
  EXPECT_DOUBLE_EQ(c.traffic_reduction_pct, 0.0);
  EXPECT_DOUBLE_EQ(c.saved_energy_mj, 0.0);
}

}  // namespace
}  // namespace axon
