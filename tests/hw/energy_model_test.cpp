#include "hw/energy_model.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/conv_executor.hpp"
#include "tensor/tensor4.hpp"

namespace axon {
namespace {

TEST(EnergyModelTest, ComputeEnergyCountsActiveAndGated) {
  EnergyModel m;
  MacCounters c;
  c.active_macs = 1'000'000;
  c.gated_macs = 0;
  const double dense = m.compute_energy_mj(c);
  EXPECT_NEAR(dense, 1'000'000 * m.ops().mac_active_pj * 1e-9, 1e-12);
  c.active_macs = 900'000;
  c.gated_macs = 100'000;
  const double sparse = m.compute_energy_mj(c);
  EXPECT_LT(sparse, dense);
  // Gating 10% of MACs saves ~10% of (active - gated residue) energy.
  const double expected =
      (900'000 * m.ops().mac_active_pj + 100'000 * m.ops().mac_gated_pj) * 1e-9;
  EXPECT_NEAR(sparse, expected, 1e-12);
}

TEST(EnergyModelTest, SramEnergy) {
  EnergyModel m;
  EXPECT_NEAR(m.sram_energy_mj(1000, 500),
              (1000 * m.ops().sram_read_pj + 500 * m.ops().sram_write_pj) *
                  1e-9,
              1e-15);
  EXPECT_THROW((void)m.sram_energy_mj(-1, 0), CheckError);
}

TEST(EnergyModelTest, BreakdownFromConvRun) {
  // End-to-end: energy of a conv on Axon vs SA — Axon's SRAM component
  // must be smaller (the MUX chain replaces SRAM reads with cheap hops).
  const ConvShape c = make_conv(2, 12, 4, 3, 1, 1);
  Rng rng(41);
  const Tensor4 in = random_tensor(1, 2, 12, 12, rng);
  const Tensor4 f = random_tensor(4, 2, 3, 3, rng);
  const ConvRunResult ax = run_conv_axon_im2col(in, f, c, {8, 8});
  const ConvRunResult sa = run_conv_sa_software_im2col(in, f, c, {8, 8});

  EnergyModel m;
  Stats ax_stats, sa_stats;
  ax_stats.add("sram.ifmap.loads", ax.ifmap_sram_loads);
  ax_stats.add("sram.filter.loads", ax.filter_sram_loads);
  ax_stats.add("feeder.neighbor.forwards", ax.neighbor_forwards);
  sa_stats.add("sram.ifmap.loads", sa.ifmap_sram_loads);
  sa_stats.add("sram.filter.loads", sa.filter_sram_loads);

  const EnergyBreakdown eb_ax = m.breakdown(ax.macs, ax_stats, 0);
  const EnergyBreakdown eb_sa = m.breakdown(sa.macs, sa_stats, 0);
  EXPECT_LT(eb_ax.sram_mj, eb_sa.sram_mj);
  EXPECT_GT(eb_ax.noc_mj, 0.0);
  EXPECT_EQ(eb_sa.noc_mj, 0.0);
  // The hop is cheaper than the SRAM read it replaces, so total drops too.
  EXPECT_LT(eb_ax.total_mj(), eb_sa.total_mj());
  // Same MAC work, same MAC energy.
  EXPECT_NEAR(eb_ax.mac_mj, eb_sa.mac_mj, 1e-15);
}

TEST(EnergyModelTest, DramDominatesAtPaperConstants) {
  // 120 pJ/byte makes DRAM the dominant term for memory-bound layers —
  // the premise of the paper's energy argument.
  EnergyModel m;
  MacCounters macs;
  macs.active_macs = 1'000'000;
  Stats stats;
  stats.add("sram.ifmap.loads", 2'000'000);
  const i64 dram_bytes = 10 * 1024 * 1024;
  const EnergyBreakdown b = m.breakdown(macs, stats, dram_bytes);
  EXPECT_GT(b.dram_mj, b.mac_mj + b.sram_mj);
}

TEST(EnergyModelTest, InvalidConfigsRejected) {
  OpEnergies bad;
  bad.mac_gated_pj = bad.mac_active_pj + 1.0;
  EXPECT_THROW(EnergyModel{bad}, CheckError);
  EnergyModel m;
  EXPECT_THROW((void)m.breakdown({}, {}, -1), CheckError);
}

}  // namespace
}  // namespace axon
