#include "memory/traffic.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace axon {
namespace {

TEST(TrafficTest, TotalsAndAddition) {
  Traffic a{10, 20, 30};
  EXPECT_EQ(a.total(), 60);
  Traffic b{1, 2, 3};
  a += b;
  EXPECT_EQ(a.ifmap_bytes, 11);
  EXPECT_EQ(a.total(), 66);
  const Traffic c = b + b;
  EXPECT_EQ(c.total(), 12);
}

TEST(TrafficTest, Fp16ElementWidth) {
  EXPECT_EQ(kBytesPerElement, 2);
  EXPECT_EQ(elems_to_bytes(100), 200);
}

TEST(TrafficTest, Streaming) {
  std::ostringstream os;
  os << Traffic{2, 4, 6};
  EXPECT_NE(os.str().find("total=12"), std::string::npos);
}

}  // namespace
}  // namespace axon
