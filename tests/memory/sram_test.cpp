#include "memory/sram.hpp"

#include <gtest/gtest.h>

namespace axon {
namespace {

TEST(SramTest, LoadReadWrite) {
  Stats stats;
  SramBuffer buf("ifmap", 16, &stats);
  buf.load({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(buf.size(), 3);
  EXPECT_EQ(buf.read(1), 2.0f);
  buf.write(1, 9.0f);
  EXPECT_EQ(buf.read(1), 9.0f);
  EXPECT_EQ(buf.reads(), 2);
  EXPECT_EQ(buf.writes(), 1);
  EXPECT_EQ(stats.get("sram.ifmap.reads"), 2);
  EXPECT_EQ(stats.get("sram.ifmap.writes"), 1);
}

TEST(SramTest, CapacityEnforced) {
  SramBuffer buf("w", 2);
  EXPECT_THROW(buf.load({1, 2, 3}), CheckError);
  EXPECT_NO_THROW(buf.load({1, 2}));
  EXPECT_THROW(SramBuffer("bad", 0), CheckError);
}

TEST(SramTest, OutOfBoundsAccessRejected) {
  SramBuffer buf("b", 8);
  buf.load({1, 2});
  EXPECT_THROW((void)buf.read(2), CheckError);
  EXPECT_THROW((void)buf.read(-1), CheckError);
  EXPECT_THROW(buf.write(5, 0.0f), CheckError);
}

TEST(SramTest, ResetCounters) {
  SramBuffer buf("c", 4);
  buf.load({1});
  (void)buf.read(0);
  buf.reset_counters();
  EXPECT_EQ(buf.reads(), 0);
  EXPECT_EQ(buf.writes(), 0);
}

}  // namespace
}  // namespace axon
