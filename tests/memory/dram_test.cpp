#include "memory/dram.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace axon {
namespace {

TEST(DramTest, PaperDefaults) {
  const DramModel dram;
  EXPECT_DOUBLE_EQ(dram.config().bandwidth_bytes_per_sec, 6.4e9);
  EXPECT_DOUBLE_EQ(dram.config().energy_pj_per_byte, 120.0);
}

TEST(DramTest, TransferCyclesAtPeakBandwidth) {
  // 6.4 GB/s at a 1 GHz core: 6.4 bytes per cycle.
  const DramModel dram;
  EXPECT_EQ(dram.transfer_cycles(64), 10);
  EXPECT_EQ(dram.transfer_cycles(0), 0);
  EXPECT_EQ(dram.transfer_cycles(1), 1);  // ceil
}

TEST(DramTest, EnergyMatchesPaperExamples) {
  // §5.2.1: saving 107.7 MB at 120 pJ/B is ~12 mJ; 1423 MB is ~170 mJ.
  const DramModel dram;
  const i64 resnet_saved = i64{1077} * 1024 * 1024 / 10;  // 107.7 MB
  EXPECT_NEAR(dram.energy_mj(resnet_saved), 13.5, 1.0);
  const i64 yolo_saved = i64{1423} * 1024 * 1024;
  EXPECT_NEAR(dram.energy_mj(yolo_saved), 179.0, 5.0);
}

TEST(DramTest, OverlappedCyclesIsRoofline) {
  const DramModel dram;
  EXPECT_EQ(dram.overlapped_cycles(1000, 64), 1000);     // compute-bound
  EXPECT_EQ(dram.overlapped_cycles(5, 6400), 1000);      // memory-bound
  EXPECT_EQ(dram.overlapped_cycles(1000, 6400), 1000);   // balanced
}

TEST(DramTest, CustomFrequencyScalesCycles) {
  DramConfig cfg;
  cfg.accelerator_freq_hz = 2.0e9;  // 3.2 bytes per cycle
  const DramModel dram(cfg);
  EXPECT_EQ(dram.transfer_cycles(64), 20);
}

TEST(DramTest, InvalidConfigRejected) {
  DramConfig cfg;
  cfg.bandwidth_bytes_per_sec = 0;
  EXPECT_THROW(DramModel{cfg}, CheckError);
  EXPECT_THROW((void)DramModel{}.transfer_cycles(-1), CheckError);
}

}  // namespace
}  // namespace axon
