#include "runner/network_runner.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace axon {
namespace {

TEST(NetworkRunnerTest, ResnetReportTotalsConsistent) {
  const NetworkReport r =
      analyze_network("ResNet50", resnet50_conv_layers(), 64);
  EXPECT_FALSE(r.layers.empty());
  i64 sa = 0, ax = 0, sw_b = 0, ax_b = 0;
  for (const LayerReport& l : r.layers) {
    EXPECT_GE(l.speedup, 1.0) << l.name;
    EXPECT_GE(l.traffic_reduction_pct, -1e-9) << l.name;
    sa += l.sa_cycles;
    ax += l.axon_cycles;
    sw_b += l.sw_traffic.total();
    ax_b += l.axon_traffic.total();
  }
  EXPECT_EQ(sa, r.total_sa_cycles);
  EXPECT_EQ(ax, r.total_axon_cycles);
  EXPECT_EQ(sw_b, r.total_sw_bytes);
  EXPECT_EQ(ax_b, r.total_axon_bytes);
  EXPECT_GT(r.compute_speedup, 1.0);
  EXPECT_GT(r.traffic_reduction_pct, 20.0);
  EXPECT_GT(r.dram_energy_saved_mj, 0.0);
  EXPECT_GE(r.roofline_speedup, 1.0);
}

TEST(NetworkRunnerTest, DepthwiseNetworksBenefitMore) {
  // MobileNet's DW layers are fill-bound: the compute speedup should beat
  // a dense network's at the same array size.
  const NetworkReport mobile =
      analyze_network("MobileNetV1", mobilenet_v1_all_layers(), 128);
  const NetworkReport resnet =
      analyze_network("ResNet50", resnet50_conv_layers(), 128);
  EXPECT_GT(mobile.compute_speedup, resnet.compute_speedup);
}

TEST(NetworkRunnerTest, OneByOneLayersShowNoTrafficReduction) {
  const NetworkReport r =
      analyze_network("ResNet50", resnet50_conv_layers(), 64);
  for (const LayerReport& l : r.layers) {
    if (l.shape.kernel_h == 1 && l.shape.stride_h == 1) {
      EXPECT_NEAR(l.traffic_reduction_pct, 0.0, 1e-9) << l.name;
    }
    if (l.shape.kernel_h == 3 && l.shape.stride_h == 1) {
      // The IFMAP side shrinks ~19x (1 + 2*9 -> 1) but filter/OFMAP bytes
      // dilute the layer total; deep small-spatial layers (conv5) are
      // filter-dominated and keep only a modest reduction.
      EXPECT_GT(l.traffic_reduction_pct, 5.0) << l.name;
    }
    if (l.name == "conv2_b1_3x3") {
      EXPECT_GT(l.traffic_reduction_pct, 80.0);  // spatially huge, few filters
    }
  }
}

TEST(NetworkRunnerTest, ParallelAnalysisIsThreadCountInvariant) {
  // Whole-network analysis fans layers out across the thread pool; the
  // report — per-layer rows, row order, totals, derived ratios — must be
  // identical for any thread count.
  const NetworkReport serial =
      analyze_network("ResNet50", resnet50_conv_layers(), 64, 1);
  const NetworkReport parallel =
      analyze_network("ResNet50", resnet50_conv_layers(), 64, 8);
  ASSERT_EQ(serial.layers.size(), parallel.layers.size());
  for (std::size_t i = 0; i < serial.layers.size(); ++i) {
    EXPECT_EQ(serial.layers[i].name, parallel.layers[i].name);
    EXPECT_EQ(serial.layers[i].sa_cycles, parallel.layers[i].sa_cycles);
    EXPECT_EQ(serial.layers[i].axon_cycles, parallel.layers[i].axon_cycles);
    EXPECT_EQ(serial.layers[i].sw_traffic.total(),
              parallel.layers[i].sw_traffic.total());
    EXPECT_EQ(serial.layers[i].axon_traffic.total(),
              parallel.layers[i].axon_traffic.total());
  }
  EXPECT_EQ(serial.total_sa_cycles, parallel.total_sa_cycles);
  EXPECT_EQ(serial.total_axon_cycles, parallel.total_axon_cycles);
  EXPECT_EQ(serial.total_sw_bytes, parallel.total_sw_bytes);
  EXPECT_EQ(serial.total_axon_bytes, parallel.total_axon_bytes);
  EXPECT_EQ(serial.compute_speedup, parallel.compute_speedup);
  EXPECT_EQ(serial.roofline_speedup, parallel.roofline_speedup);
}

TEST(NetworkRunnerTest, CsvHasHeaderRowsAndTotals) {
  const NetworkReport r =
      analyze_network("EffNet", efficientnet_b0_layers(), 32);
  std::ostringstream os;
  write_csv(r, os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("layer,repeats,M,K,N"), std::string::npos);
  EXPECT_NE(csv.find("TOTAL"), std::string::npos);
  // One line per layer + header + total.
  std::size_t lines = 0;
  for (char ch : csv) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, r.layers.size() + 2);
}

}  // namespace
}  // namespace axon
