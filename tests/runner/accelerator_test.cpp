#include "runner/accelerator.hpp"

#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/conv_ref.hpp"
#include "tensor/gemm_ref.hpp"

namespace axon {
namespace {

// Tiled GEMM sweep: every (arch, dataflow) pair must produce the reference
// product for problems larger than the array in every dimension.
using Param = std::tuple<ArchType, Dataflow>;

class TiledGemm : public ::testing::TestWithParam<Param> {};

TEST_P(TiledGemm, LargeGemmMatchesReference) {
  const auto [arch, df] = GetParam();
  Rng rng(55);
  const Matrix a = random_matrix(19, 23, rng);
  const Matrix b = random_matrix(23, 17, rng);
  Accelerator acc({.arch = arch, .array = {8, 8}, .dataflow = df});
  const RunReport r = acc.run_gemm(a, b);
  EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 1e-3))
      << "max diff " << r.out.max_abs_diff(gemm_ref(a, b));
  EXPECT_GT(r.tiles, 1);
  EXPECT_GT(r.cycles, 0);
  EXPECT_GT(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    ArchAndDataflow, TiledGemm,
    ::testing::Combine(::testing::Values(ArchType::kConventionalSA,
                                         ArchType::kAxon),
                       ::testing::Values(Dataflow::kOS, Dataflow::kWS,
                                         Dataflow::kIS)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return to_string(std::get<0>(info.param)) + "_" +
             to_string(std::get<1>(info.param));
    });

TEST(AcceleratorTest, ExactTilingMatchesAnalyticalModel) {
  // When every dimension is a multiple of the array, the cycle-accurate
  // total equals the scale-up equation exactly.
  Rng rng(56);
  const Matrix a = random_matrix(16, 12, rng);
  const Matrix b = random_matrix(12, 24, rng);
  for (ArchType arch : {ArchType::kConventionalSA, ArchType::kAxon}) {
    Accelerator acc({.arch = arch, .array = {8, 8}, .dataflow = Dataflow::kOS});
    const RunReport r = acc.run_gemm(a, b);
    EXPECT_EQ(r.cycles, r.model_cycles) << to_string(arch);
    EXPECT_EQ(r.tiles, 6);
  }
}

TEST(AcceleratorTest, AxonFasterThanSaOnSameProblem) {
  Rng rng(57);
  const Matrix a = random_matrix(32, 8, rng);
  const Matrix b = random_matrix(8, 32, rng);
  Accelerator sa({.arch = ArchType::kConventionalSA, .array = {16, 16}});
  Accelerator ax({.arch = ArchType::kAxon, .array = {16, 16}});
  const RunReport rs = sa.run_gemm(a, b);
  const RunReport ra = ax.run_gemm(a, b);
  EXPECT_TRUE(rs.out.approx_equal(ra.out, 1e-3));
  EXPECT_LT(ra.cycles, rs.cycles);
  EXPECT_GT(ra.utilization, rs.utilization);
}

TEST(AcceleratorTest, ConvOnBothArchitecturesMatchesReference) {
  const ConvShape c = make_conv(3, 10, 6, 3, 1, 1);
  Rng rng(58);
  const Tensor4 in = random_tensor(1, 3, 10, 10, rng);
  const Tensor4 f = random_tensor(6, 3, 3, 3, rng);
  const Tensor4 expected = conv2d_ref(in, f, c);
  for (ArchType arch : {ArchType::kConventionalSA, ArchType::kAxon}) {
    Accelerator acc({.arch = arch, .array = {8, 8}});
    const RunReport r = acc.run_conv(in, f, c);
    for (i64 i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(r.conv_out.data()[i], expected.data()[i], 1e-3)
          << to_string(arch);
    }
    EXPECT_GT(r.stats.get("sram.ifmap.loads"), 0);
  }
}

TEST(AcceleratorTest, ConvAxonReportsNeighborForwards) {
  const ConvShape c = make_conv(2, 8, 4, 3, 1, 1);
  Rng rng(59);
  const Tensor4 in = random_tensor(1, 2, 8, 8, rng);
  const Tensor4 f = random_tensor(4, 2, 3, 3, rng);
  Accelerator ax({.arch = ArchType::kAxon, .array = {8, 8}});
  Accelerator sa({.arch = ArchType::kConventionalSA, .array = {8, 8}});
  const RunReport ra = ax.run_conv(in, f, c);
  const RunReport rs = sa.run_conv(in, f, c);
  EXPECT_GT(ra.stats.get("feeder.neighbor.forwards"), 0);
  EXPECT_EQ(rs.stats.get("feeder.neighbor.forwards"), 0);
  EXPECT_LT(ra.stats.get("sram.ifmap.loads"), rs.stats.get("sram.ifmap.loads"));
}

TEST(AcceleratorTest, CmsaHasNoCycleSimulator) {
  EXPECT_THROW(Accelerator({.arch = ArchType::kCMSA}), CheckError);
}

TEST(AcceleratorTest, SparseGemmGatesMacs) {
  Rng rng(60);
  Matrix a = random_sparse_matrix(16, 16, 0.5, rng);
  Matrix b = random_matrix(16, 16, rng);
  Accelerator acc({.arch = ArchType::kAxon, .array = {8, 8}});
  const RunReport r = acc.run_gemm(a, b);
  EXPECT_GT(r.macs.gated_macs, 0);
  EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 1e-3));
}

}  // namespace
}  // namespace axon
