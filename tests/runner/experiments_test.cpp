// Headline-property tests for every reproduced figure/table: who wins, by
// roughly what factor, where the crossovers are.
#include "runner/experiments.hpp"

#include <gtest/gtest.h>

namespace axon {
namespace {

TEST(Fig6Test, AxonFactorAlwaysLower) {
  const auto rows = fig6_fill_factors(
      {{4, 4}, {16, 16}, {64, 64}, {256, 256}, {8, 64}, {64, 8}, {1024, 1024}});
  for (const auto& r : rows) {
    EXPECT_LT(r.f2_axon, r.f1_conventional) << r.array;
    if (r.array.square()) {
      EXPECT_EQ(r.f1_conventional, 2 * r.f2_axon) << r.array;
    }
  }
  // Paper's example: 256x256 goes from 510 to 255.
  EXPECT_EQ(rows[3].f1_conventional, 510);
  EXPECT_EQ(rows[3].f2_axon, 255);
}

TEST(Fig12Test, EveryWorkloadSpeedsUp) {
  for (int size : {32, 64, 128, 256}) {
    for (const auto& row : fig12_speedups(size)) {
      EXPECT_GE(row.speedup, 1.0) << row.workload << " @" << size;
      EXPECT_LE(row.speedup, 2.0) << row.workload << " @" << size;
    }
  }
}

TEST(Fig12Test, AverageSpeedupGrowsWithArraySize) {
  // Paper: 1.47x average at 64x64, 1.76x at 256x256. Our model reproduces
  // the trend (the paper averages are dominated by fill-bound workloads;
  // see DESIGN.md §4).
  const double avg64 = mean_speedup(fig12_speedups(64));
  const double avg256 = mean_speedup(fig12_speedups(256));
  EXPECT_GT(avg64, 1.1);
  EXPECT_GT(avg256, avg64);
  EXPECT_LT(avg256, 2.0);
}

TEST(Fig12Test, TemporallyBoundWorkloadsBarelyImprove) {
  // DB0 (K = 50000) is limited by the temporal dimension (paper §5.2.1).
  for (const auto& row : fig12_speedups(256)) {
    if (row.workload == "DB0") {
      EXPECT_LT(row.speedup, 1.05);
    }
    if (row.workload == "GEMM_1") {
      // K = 10 with many tiles: fill-dominated, approaches 2x.
      EXPECT_GT(row.speedup, 1.8);
    }
  }
}

TEST(Fig13Test, AxonBeatsCmsaOnAverage) {
  const auto rows = fig13_utilization(128);
  ASSERT_EQ(rows.size(), 20u);
  double axon_sum = 0.0, cmsa_sum = 0.0;
  for (const auto& r : rows) {
    EXPECT_GE(r.axon_improvement_pct, -1e-9) << r.workload;
    EXPECT_GE(r.axon_improvement_pct, r.cmsa_improvement_pct - 1e-9)
        << r.workload;
    axon_sum += r.axon_improvement_pct;
    cmsa_sum += r.cmsa_improvement_pct;
  }
  EXPECT_GT(axon_sum, cmsa_sum);  // paper: Axon outperforms CMSA by ~27%
}

TEST(Fig13Test, Gpt3WorkloadsAlreadyWellUtilized) {
  // Paper §5.2.2: GPT3 matmul1 / addmm / lmhead improvements stay small
  // because baseline utilization is already ~91%.
  for (const auto& r : fig13_utilization(128)) {
    if (r.workload == "GPT3_1_matmul1" || r.workload == "GPT3_2_addmm" ||
        r.workload == "GPT3_3_lmhead") {
      EXPECT_GT(r.ur_sa, 0.85) << r.workload;
      EXPECT_LT(r.axon_improvement_pct, 10.0) << r.workload;
    }
  }
}

TEST(Fig14Test, MemoryBoundWorkloadsApproachTwofold) {
  const auto rows = fig14_dwconv_gemv(128);
  ASSERT_GE(rows.size(), 10u);
  double sum = 0.0;
  for (const auto& r : rows) {
    EXPECT_GT(r.speedup, 1.0) << r.workload;
    EXPECT_LE(r.speedup, 2.0) << r.workload;
    sum += r.speedup;
  }
  const double avg = sum / static_cast<double>(rows.size());
  // Paper: average 1.8x.
  EXPECT_GT(avg, 1.5);
  EXPECT_LE(avg, 2.0);
}

TEST(Fig11Test, ThreeByThreeLayersExceedSixtyPercent) {
  const auto rows = fig11_memory_reduction(128);
  int above60 = 0;
  for (const auto& r : rows) {
    EXPECT_GE(r.reduction_pct, 0.0) << r.workload;
    EXPECT_LT(r.axon_loads, r.software_loads + 1) << r.workload;
    // 3x3 stride-1 layers approach the (n-1)/n = 66.7% bound once the
    // output row is wide enough to amortize the chain head (tiny 7x7 maps
    // land just under 60%).
    if (r.shape.kernel_h == 3 && r.shape.stride_h == 1 &&
        r.shape.out_w() >= 13) {
      EXPECT_GT(r.reduction_pct, 60.0) << r.workload;
      ++above60;
    }
  }
  EXPECT_GE(above60, 6);  // paper: "more than 60% for SOTA workloads"
}

TEST(EnergyTest, ResnetAndYoloRowsMatchPaperShape) {
  // 16x16: the implemented chip the paper's §5.2.1 numbers refer to.
  const EnergyRow resnet = energy_row("ResNet50", resnet50_conv_layers(), 16,
                                      261.2, 153.5, 12.0);
  const EnergyRow yolo =
      energy_row("YOLOv3", yolov3_conv_layers(), 16, 2540.0, 1117.0, 170.0);
  // Axon cuts traffic substantially for both. Paper ratios: ResNet
  // 153.5/261.2 = 0.59, YOLO 1117/2540 = 0.44; ours land at ~0.60 / ~0.39.
  EXPECT_LT(resnet.axon_mb_exact, resnet.baseline_mb_exact * 0.70);
  EXPECT_GT(resnet.axon_mb_exact, resnet.baseline_mb_exact * 0.45);
  EXPECT_LT(yolo.axon_mb_exact, yolo.baseline_mb_exact * 0.55);
  // YOLOv3 moves several times more data than ResNet50 (paper: ~10x; our
  // once-through accounting gives ~5x — see EXPERIMENTS.md).
  EXPECT_GT(yolo.baseline_mb_exact, 4.0 * resnet.baseline_mb_exact);
  // Energy savings are positive and YOLO saves much more than ResNet.
  EXPECT_GT(resnet.saved_mj, 0.0);
  EXPECT_GT(yolo.saved_mj, 5.0 * resnet.saved_mj);
  // Roofline speedup from traffic reduction: paper reports ~1.25x; ours
  // give 1.24x (ResNet) and 1.15x (YOLO) at 16x16.
  EXPECT_GT(resnet.roofline_speedup, 1.1);
  EXPECT_LT(resnet.roofline_speedup, 1.4);
  EXPECT_GT(yolo.roofline_speedup, 1.05);
  EXPECT_LT(yolo.roofline_speedup, 1.4);
}

TEST(Fig10Test, SpecsReproducePaper) {
  const auto rows = fig10_hw_specs();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_NEAR(rows[0].area_mm2, 0.9992, 1e-6);   // SA
  EXPECT_NEAR(rows[1].area_mm2, 0.9931, 1e-6);   // Axon
  EXPECT_NEAR(rows[2].area_mm2, 0.9951, 1e-6);   // Axon + im2col
  EXPECT_NEAR(rows[0].power_mw, 59.88, 1e-6);
  EXPECT_NEAR(rows[2].power_mw, 59.98, 1e-6);
}

TEST(Fig15Test, AxonBelowSauriaAtEveryPoint) {
  for (TechNode node : {TechNode::kAsap7, TechNode::kTsmc45}) {
    const auto rows = fig15_area_power(node, {8, 16, 32, 64, 128});
    ASSERT_EQ(rows.size(), 10u);
    for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
      EXPECT_EQ(rows[i].design, "Axon_im2col");
      EXPECT_EQ(rows[i + 1].design, "Sauria");
      EXPECT_LT(rows[i].area_mm2, rows[i + 1].area_mm2);
      EXPECT_LT(rows[i].power_mw, rows[i + 1].power_mw);
    }
  }
}

TEST(SparsityTest, TenPercentGivesPaperReduction) {
  const auto rows = sparsity_power_sweep({0.0, 0.1, 0.2, 0.5});
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_NEAR(rows[0].reduction_pct, 0.0, 1e-9);
  EXPECT_NEAR(rows[1].reduction_pct, 5.3, 0.01);  // paper §5.2.1
  // Monotone in sparsity.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].reduction_pct, rows[i - 1].reduction_pct);
  }
}

}  // namespace
}  // namespace axon
