#include "runner/scale_out.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/gemm_ref.hpp"

namespace axon {
namespace {

TEST(ScaleOutTest, ResultMatchesReferenceAcrossPartitionGrids) {
  Rng rng(71);
  const Matrix a = random_matrix(24, 10, rng);
  const Matrix b = random_matrix(10, 24, rng);
  const Matrix golden = gemm_ref(a, b);
  for (int p : {1, 2, 3}) {
    for (ArchType arch : {ArchType::kConventionalSA, ArchType::kAxon}) {
      const ScaleOutReport r = run_gemm_scale_out(
          {.arch = arch, .array = {4, 4}, .dataflow = Dataflow::kOS}, a, b, p,
          p);
      EXPECT_TRUE(r.out.approx_equal(golden, 1e-3))
          << to_string(arch) << " " << p << "x" << p;
      EXPECT_EQ(r.partitions, p * p);
    }
  }
}

TEST(ScaleOutTest, CriticalPathMatchesEquationThreeOnExactSplits) {
  // 32x8x32 on a 2x2 grid of 8x8 arrays: every partition gets 16x8x16,
  // exactly 2x2 tiles of 8x8 -> the cycle-accurate critical path equals
  // eq. (3).
  Rng rng(72);
  const Matrix a = random_matrix(32, 8, rng);
  const Matrix b = random_matrix(8, 32, rng);
  for (ArchType arch : {ArchType::kConventionalSA, ArchType::kAxon}) {
    const ScaleOutReport r = run_gemm_scale_out(
        {.arch = arch, .array = {8, 8}, .dataflow = Dataflow::kOS}, a, b, 2,
        2);
    EXPECT_EQ(r.critical_path_cycles, r.model_cycles) << to_string(arch);
  }
}

TEST(ScaleOutTest, MorePartitionsShortenCriticalPath) {
  Rng rng(73);
  const Matrix a = random_matrix(32, 6, rng);
  const Matrix b = random_matrix(6, 32, rng);
  const AcceleratorConfig cfg{.arch = ArchType::kAxon,
                              .array = {4, 4},
                              .dataflow = Dataflow::kOS};
  const i64 c1 = run_gemm_scale_out(cfg, a, b, 1, 1).critical_path_cycles;
  const i64 c2 = run_gemm_scale_out(cfg, a, b, 2, 2).critical_path_cycles;
  const i64 c4 = run_gemm_scale_out(cfg, a, b, 4, 4).critical_path_cycles;
  EXPECT_LT(c2, c1);
  EXPECT_LT(c4, c2);
}

TEST(ScaleOutTest, AxonGainCarriesOverToScaleOut) {
  // Paper §5: "the run-time improvement in scale-up will be reflected
  // linearly in the scale-out as well."
  Rng rng(74);
  const Matrix a = random_matrix(24, 4, rng);
  const Matrix b = random_matrix(4, 24, rng);
  const ScaleOutReport sa = run_gemm_scale_out(
      {.arch = ArchType::kConventionalSA, .array = {6, 6}}, a, b, 2, 2);
  const ScaleOutReport ax = run_gemm_scale_out(
      {.arch = ArchType::kAxon, .array = {6, 6}}, a, b, 2, 2);
  EXPECT_LT(ax.critical_path_cycles, sa.critical_path_cycles);
  EXPECT_TRUE(ax.out.approx_equal(sa.out, 1e-4));
}

TEST(ScaleOutTest, PartitionsBeyondWorkAreSkipped) {
  Rng rng(75);
  const Matrix a = random_matrix(3, 4, rng);
  const Matrix b = random_matrix(4, 3, rng);
  const ScaleOutReport r = run_gemm_scale_out(
      {.arch = ArchType::kAxon, .array = {4, 4}}, a, b, 8, 8);
  EXPECT_LT(r.partitions, 64);  // empty partitions don't execute
  EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 1e-3));
}

TEST(ScaleOutTest, NonDivisiblePartitionCountsMatchReference) {
  // 23x9x17 on a 3x5 grid: M chunks (8, 8, 7), N chunks (4, 4, 4, 4, 1) —
  // every ragged edge case at once.
  Rng rng(77);
  const Matrix a = random_matrix(23, 9, rng);
  const Matrix b = random_matrix(9, 17, rng);
  const Matrix golden = gemm_ref(a, b);
  for (ArchType arch : {ArchType::kConventionalSA, ArchType::kAxon}) {
    const ScaleOutReport r = run_gemm_scale_out(
        {.arch = arch, .array = {4, 4}, .dataflow = Dataflow::kOS}, a, b, 3,
        5);
    EXPECT_TRUE(r.out.approx_equal(golden, 1e-3)) << to_string(arch);
    EXPECT_EQ(r.partitions, 15);
    EXPECT_GT(r.critical_path_cycles, 0);
    EXPECT_GE(r.total_partition_cycles,
              r.critical_path_cycles * 1);  // sum >= max
  }
}

TEST(ScaleOutTest, ThreadedPartitionsIdenticalToSerial) {
  Rng rng(78);
  const Matrix a = random_matrix(21, 7, rng);
  const Matrix b = random_matrix(7, 19, rng);
  const AcceleratorConfig cfg{.arch = ArchType::kAxon,
                              .array = {4, 4},
                              .dataflow = Dataflow::kOS};
  const ScaleOutReport serial = run_gemm_scale_out(cfg, a, b, 2, 3, 1);
  const ScaleOutReport threaded = run_gemm_scale_out(cfg, a, b, 2, 3, 4);
  EXPECT_EQ(serial.out, threaded.out);  // bit-identical stitching
  EXPECT_EQ(serial.critical_path_cycles, threaded.critical_path_cycles);
  EXPECT_EQ(serial.total_partition_cycles, threaded.total_partition_cycles);
  EXPECT_EQ(serial.partitions, threaded.partitions);
}

TEST(ScaleOutTest, NonOsDataflowRejected) {
  Rng rng(76);
  const Matrix a = random_matrix(4, 4, rng);
  const Matrix b = random_matrix(4, 4, rng);
  EXPECT_THROW(run_gemm_scale_out({.arch = ArchType::kAxon,
                                   .array = {4, 4},
                                   .dataflow = Dataflow::kWS},
                                  a, b, 2, 2),
               CheckError);
}

}  // namespace
}  // namespace axon
