#include "common/table.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace axon {
namespace {

TEST(TableTest, AlignsColumnsAndPrintsTitle) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1);
  t.row().cell("b").cell(12345);
  std::ostringstream os;
  t.print(os, "demo");
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TableTest, DoubleFormattingUsesPrecision) {
  Table t({"x"});
  t.row().cell(3.14159, 2);
  EXPECT_EQ(t.rows()[0][0], "3.14");
  EXPECT_EQ(fmt_double(1.5, 3), "1.500");
}

TEST(TableTest, TooManyCellsRejected) {
  Table t({"only"});
  t.row().cell("a");
  EXPECT_THROW(t.cell("b"), CheckError);
}

TEST(TableTest, CellBeforeRowRejected) {
  Table t({"c"});
  EXPECT_THROW(t.cell("x"), CheckError);
}

TEST(TableTest, ShortRowsPrintFine) {
  Table t({"a", "b", "c"});
  t.row().cell("only-one");
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace axon
