#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace axon {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, SmallValuesAreExactFp16Operands) {
  Rng rng;
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.small_value();
    EXPECT_GE(v, -4.0f);
    EXPECT_LE(v, 4.0f);
    EXPECT_EQ(v, static_cast<float>(static_cast<int>(v)));  // integral
  }
}

TEST(RngTest, SparseValuesHitRequestedZeroFraction) {
  Rng rng(7);
  const auto vals = rng.sparse_values(20000, 0.3);
  std::size_t zeros = 0;
  for (float v : vals) {
    if (v == 0.0f) ++zeros;
  }
  const double frac = static_cast<double>(zeros) / vals.size();
  EXPECT_NEAR(frac, 0.3, 0.02);
}

TEST(RngTest, SparseValuesZeroFractionExtremes) {
  Rng rng;
  for (float v : rng.sparse_values(500, 0.0)) EXPECT_NE(v, 0.0f);
  for (float v : rng.sparse_values(500, 1.0)) EXPECT_EQ(v, 0.0f);
}

TEST(RngTest, BernoulliProbabilityRoughlyRespected) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace axon
