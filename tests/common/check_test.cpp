#include "common/check.hpp"

#include <gtest/gtest.h>

namespace axon {
namespace {

TEST(CheckTest, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(AXON_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(AXON_CHECK(true, "message ", 42));
}

TEST(CheckTest, FailingConditionThrowsCheckError) {
  EXPECT_THROW(AXON_CHECK(false), CheckError);
}

TEST(CheckTest, MessageCarriesConditionAndLocation) {
  try {
    AXON_CHECK(2 > 3, "two is not more than ", 3);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("two is not more than 3"), std::string::npos);
  }
}

TEST(CheckTest, DcheckActiveMatchesBuildType) {
#ifdef NDEBUG
  EXPECT_NO_THROW(AXON_DCHECK(false));
#else
  EXPECT_THROW(AXON_DCHECK(false), CheckError);
#endif
}

}  // namespace
}  // namespace axon
