#include "common/fp16.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace axon {
namespace {

TEST(Fp16Test, KnownBitPatterns) {
  EXPECT_EQ(float_to_fp16_bits(0.0f), 0x0000);
  EXPECT_EQ(float_to_fp16_bits(-0.0f), 0x8000);
  EXPECT_EQ(float_to_fp16_bits(1.0f), 0x3C00);
  EXPECT_EQ(float_to_fp16_bits(-1.0f), 0xBC00);
  EXPECT_EQ(float_to_fp16_bits(2.0f), 0x4000);
  EXPECT_EQ(float_to_fp16_bits(0.5f), 0x3800);
  EXPECT_EQ(float_to_fp16_bits(65504.0f), 0x7BFF);  // max finite
}

TEST(Fp16Test, SmallIntegersRoundTripExactly) {
  for (int i = -2048; i <= 2048; ++i) {
    const float v = static_cast<float>(i);
    EXPECT_EQ(fp16_round(v), v) << "integer " << i;
  }
}

TEST(Fp16Test, PowersOfTwoRoundTrip) {
  for (int e = -14; e <= 15; ++e) {
    const float v = std::ldexp(1.0f, e);
    EXPECT_EQ(fp16_round(v), v) << "2^" << e;
  }
}

TEST(Fp16Test, SubnormalsRepresentable) {
  const float smallest = std::ldexp(1.0f, -24);  // 2^-24, min subnormal
  EXPECT_EQ(fp16_round(smallest), smallest);
  EXPECT_EQ(fp16_round(smallest / 2.0f), 0.0f);  // below: rounds to zero (RNE)
  const float sub = std::ldexp(3.0f, -24);
  EXPECT_EQ(fp16_round(sub), sub);
}

TEST(Fp16Test, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10; ties to even -> 1.
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(fp16_round(halfway), 1.0f);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; ties to even ->
  // 1+2^-9 (mantissa ...10).
  const float halfway2 = 1.0f + std::ldexp(3.0f, -11);
  EXPECT_EQ(fp16_round(halfway2), 1.0f + std::ldexp(1.0f, -9));
}

TEST(Fp16Test, OverflowSaturatesToInfinity) {
  EXPECT_TRUE(std::isinf(fp16_round(1.0e6f)));
  EXPECT_TRUE(std::isinf(fp16_round(-1.0e6f)));
  EXPECT_LT(fp16_round(-1.0e6f), 0.0f);
  EXPECT_TRUE(std::isinf(fp16_round(std::numeric_limits<float>::infinity())));
}

TEST(Fp16Test, NanPropagates) {
  EXPECT_TRUE(std::isnan(fp16_round(std::numeric_limits<float>::quiet_NaN())));
}

TEST(Fp16Test, RoundingIsIdempotent) {
  for (float v : {0.1f, 3.14159f, -2.71828f, 123.456f, 1e-5f, 65504.0f}) {
    const float once = fp16_round(v);
    EXPECT_EQ(fp16_round(once), once) << v;
  }
}

TEST(Fp16Test, AllBitPatternsRoundTripThroughFloat) {
  // Every finite fp16 value must convert to float and back bit-exactly.
  for (std::uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const auto b16 = static_cast<std::uint16_t>(bits);
    const std::uint32_t exp = (bits >> 10) & 0x1F;
    if (exp == 0x1F) continue;  // inf/NaN payloads are not preserved exactly
    const float f = fp16_bits_to_float(b16);
    EXPECT_EQ(float_to_fp16_bits(f), b16) << "bits 0x" << std::hex << bits;
  }
}

TEST(Fp16Test, ValueTypeComparesByBits) {
  EXPECT_EQ(Fp16(1.5f), Fp16(1.5f));
  EXPECT_NE(Fp16(1.5f), Fp16(-1.5f));
  EXPECT_FLOAT_EQ(Fp16(3.0f).to_float(), 3.0f);
}

}  // namespace
}  // namespace axon
