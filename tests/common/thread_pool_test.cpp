#include "common/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace axon {
namespace {

TEST(ThreadPoolTest, ReturnsValuesThroughFutures) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  int expected = 0;
  for (int i = 0; i < 32; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPoolTest, RunsEveryJobExactlyOnce) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughGet) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedJobs) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { ++count; });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace axon
