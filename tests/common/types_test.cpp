#include "common/types.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace axon {
namespace {

TEST(ArrayShapeTest, Basics) {
  const ArrayShape s{16, 32};
  EXPECT_TRUE(s.valid());
  EXPECT_FALSE(s.square());
  EXPECT_EQ(s.num_pes(), 512);
  EXPECT_EQ(s.diagonal_pes(), 16);
  EXPECT_FALSE((ArrayShape{0, 4}).valid());
  EXPECT_FALSE((ArrayShape{4, -1}).valid());
  EXPECT_TRUE((ArrayShape{256, 256}).square());
}

TEST(GemmShapeTest, VolumeAndOperandCounts) {
  const GemmShape g{3, 4, 5};
  EXPECT_TRUE(g.valid());
  EXPECT_EQ(g.macs(), 60);
  EXPECT_EQ(g.a_elems(), 12);
  EXPECT_EQ(g.b_elems(), 20);
  EXPECT_EQ(g.c_elems(), 15);
  EXPECT_FALSE((GemmShape{0, 1, 1}).valid());
}

TEST(ConvShapeTest, OutputDims) {
  const ConvShape c = make_conv(3, 224, 64, 7, 2, 3);
  EXPECT_EQ(c.out_h(), 112);
  EXPECT_EQ(c.out_w(), 112);
  const ConvShape c2 = make_conv(64, 56, 64, 3, 1, 1);
  EXPECT_EQ(c2.out_h(), 56);
  const ConvShape c3 = make_conv(8, 6, 4, 3);  // no pad, stride 1
  EXPECT_EQ(c3.out_h(), 4);
  EXPECT_EQ(c3.out_w(), 4);
}

TEST(ConvShapeTest, AsGemmMapping) {
  // Resnet50_0_conv2d from Table 3: 7x7 s2 on 3x224x224 padded -> but the
  // table lists M=64, K=147, N=62500 which corresponds to a 250x250 output
  // (i.e. the paper's variant without padding on a 506-ish input). Verify
  // the generic mapping instead on a standard layer:
  const ConvShape c = make_conv(64, 56, 128, 3, 1, 1);
  const GemmShape g = c.as_gemm();
  EXPECT_EQ(g.M, 128);          // output channels
  EXPECT_EQ(g.K, 64 * 3 * 3);   // 576
  EXPECT_EQ(g.N, 56 * 56);      // output pixels
  EXPECT_EQ(g.macs(), c.macs());
}

TEST(ConvShapeTest, DepthwiseDetection) {
  const ConvShape dw = make_conv(32, 112, 32, 3, 1, 1, 32);
  EXPECT_TRUE(dw.depthwise());
  EXPECT_EQ(dw.as_gemm().M, 1);
  EXPECT_EQ(dw.as_gemm().K, 9);
  const ConvShape grouped = make_conv(32, 56, 64, 3, 1, 1, 4);
  EXPECT_FALSE(grouped.depthwise());
  EXPECT_TRUE(grouped.valid());
}

TEST(ConvShapeTest, MacsCountsGroups) {
  const ConvShape dw = make_conv(32, 8, 32, 3, 1, 1, 32);
  // Depthwise: each output pixel of each channel costs 9 MACs.
  EXPECT_EQ(dw.macs(), i64{32} * 8 * 8 * 9);
  const ConvShape full = make_conv(32, 8, 16, 3, 1, 1);
  EXPECT_EQ(full.macs(), i64{16} * 8 * 8 * 9 * 32);
}

TEST(ConvShapeTest, InvalidShapesRejected) {
  ConvShape c = make_conv(8, 8, 8, 3, 1, 1);
  c.groups = 3;  // 8 % 3 != 0
  EXPECT_FALSE(c.valid());
  c = make_conv(8, 8, 8, 3, 1, 1);
  c.kernel_h = 20;  // kernel larger than padded input
  EXPECT_FALSE(c.valid());
  EXPECT_THROW(make_conv(8, 4, 8, 9), CheckError);
}

TEST(TypesTest, ToStringAndStreaming) {
  EXPECT_EQ(to_string(Dataflow::kOS), "OS");
  EXPECT_EQ(to_string(Dataflow::kWS), "WS");
  EXPECT_EQ(to_string(Dataflow::kIS), "IS");
  EXPECT_EQ(to_string(ArchType::kAxon), "Axon");
  EXPECT_EQ(to_string(ArchType::kConventionalSA), "SA");
  EXPECT_EQ(to_string(ArchType::kCMSA), "CMSA");
  std::ostringstream os;
  os << ArrayShape{8, 4} << " " << GemmShape{1, 2, 3};
  EXPECT_EQ(os.str(), "8x4 GEMM(M=1,K=2,N=3)");
}

TEST(TypesTest, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(0, 5), 0);
}

}  // namespace
}  // namespace axon
