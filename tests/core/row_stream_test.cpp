#include "core/row_stream.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/axon_array.hpp"
#include "tensor/gemm_ref.hpp"

namespace axon {
namespace {

TEST(MatrixRowStreamTest, StreamsMatrixRowsAndCountsLoads) {
  Rng rng(101);
  const Matrix m = random_matrix(3, 5, rng);
  MatrixRowStream s(m, "sram.test.loads");
  EXPECT_EQ(s.num_rows(), 3);
  EXPECT_EQ(s.temporal_length(), 5);
  for (i64 r = 0; r < 3; ++r) {
    for (i64 k = 0; k < 5; ++k) {
      const auto v = s.value(r, k);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, m.at(r, k));
    }
  }
  EXPECT_EQ(s.stats().get("sram.test.loads"), 15);
}

TEST(MatrixRowStreamTest, OutOfRangeStepsAreInvalidAndUncounted) {
  Rng rng(102);
  const Matrix m = random_matrix(2, 3, rng);
  MatrixRowStream s(m);
  EXPECT_FALSE(s.value(0, -1).has_value());
  EXPECT_FALSE(s.value(1, 3).has_value());
  EXPECT_EQ(s.stats().get("sram.ifmap.loads"), 0);
  EXPECT_THROW((void)s.value(2, 0), CheckError);
}

TEST(RowStreamTest, CustomStreamDrivesTheOsArray) {
  // A synthetic stream (identity rows) through run_os_stream: the array
  // must compute stream-as-A times B.
  class IdentityStream final : public RowStream {
   public:
    explicit IdentityStream(i64 n) : n_(n) {}
    [[nodiscard]] i64 num_rows() const override { return n_; }
    [[nodiscard]] i64 temporal_length() const override { return n_; }
    std::optional<float> value(i64 row, i64 k) override {
      if (k < 0 || k >= n_) return std::nullopt;
      stats_.add("sram.ifmap.loads");
      return row == k ? 1.0f : 0.0f;
    }
    [[nodiscard]] const Stats& stats() const override { return stats_; }

   private:
    i64 n_;
    Stats stats_;
  };

  Rng rng(103);
  const Matrix b = random_matrix(6, 4, rng);
  IdentityStream eye(6);
  AxonArraySim sim({6, 4});
  const GemmRunResult r = sim.run_os_stream(eye, b);
  EXPECT_TRUE(r.out.approx_equal(b, 0.0));  // I * B == B
}

}  // namespace
}  // namespace axon
