#include "core/axon_array.hpp"

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/sparsity.hpp"

namespace axon {
namespace {

// ---------------------------------------------------------------------
// Parameterized functional + timing sweep covering square, wide and tall
// used regions for all three dataflows. Cycle counts must reproduce paper
// Table 2:
//   OS: max(M,N) + M + K - 1
//   WS: max(M,K) + K + N - 1
//   IS: max(N,K) + K + M - 1
using Param = std::tuple<Dataflow, int, int, int>;

class AxonSweep : public ::testing::TestWithParam<Param> {};

TEST_P(AxonSweep, ResultAndCyclesMatchTable2) {
  const auto [df, m, k, n] = GetParam();
  Rng rng(4321);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);

  ArrayShape shape;
  switch (df) {
    case Dataflow::kOS: shape = {m, n}; break;
    case Dataflow::kWS: shape = {k, m}; break;
    case Dataflow::kIS: shape = {k, n}; break;
  }
  AxonArraySim sim(shape);
  const GemmRunResult r = sim.run(df, a, b);

  EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 1e-3))
      << "max diff " << r.out.max_abs_diff(gemm_ref(a, b));

  i64 expected = 0;
  switch (df) {
    case Dataflow::kOS: expected = std::max(m, n) + m + k - 1; break;
    case Dataflow::kWS: expected = std::max(m, k) + k + n - 1; break;
    case Dataflow::kIS: expected = std::max(n, k) + k + m - 1; break;
  }
  EXPECT_EQ(r.cycles, expected) << "Table 2 violated for " << to_string(df);

  // Fill latency is the Chebyshev distance max(S_R, S_C) - 1.
  EXPECT_EQ(r.fill_cycles, std::max(shape.rows, shape.cols) - 1);
  EXPECT_EQ(r.macs.total_macs(), i64{m} * k * n);
}

INSTANTIATE_TEST_SUITE_P(
    AllDataflows, AxonSweep,
    ::testing::Combine(::testing::Values(Dataflow::kOS, Dataflow::kWS,
                                         Dataflow::kIS),
                       ::testing::Values(1, 3, 8, 16),   // M
                       ::testing::Values(2, 5, 16),      // K
                       ::testing::Values(1, 4, 16)),     // N
    [](const ::testing::TestParamInfo<Param>& info) {
      return to_string(std::get<0>(info.param)) + "_M" +
             std::to_string(std::get<1>(info.param)) + "_K" +
             std::to_string(std::get<2>(info.param)) + "_N" +
             std::to_string(std::get<3>(info.param));
    });

// ---------------------------------------------------------------------
// Rectangular arrays (paper Fig. 5): columns/rows without a diagonal PE are
// fed from the edge with a zero-padding skew. Wide and tall cases.

TEST(AxonArrayTest, WideArrayEdgeFeedingCorrect) {
  Rng rng(11);
  const Matrix a = random_matrix(2, 6, rng);   // 2 rows used
  const Matrix b = random_matrix(6, 9, rng);   // 9 cols used (7 edge-fed)
  AxonArraySim sim({2, 9});
  const GemmRunResult r = sim.run(Dataflow::kOS, a, b);
  EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 1e-3));
  EXPECT_EQ(r.cycles, std::max<i64>(2, 9) + 2 + 6 - 1);
  EXPECT_EQ(r.fill_cycles, 8);
}

TEST(AxonArrayTest, TallArrayEdgeFeedingCorrect) {
  Rng rng(12);
  const Matrix a = random_matrix(9, 4, rng);   // 9 rows used (7 edge-fed)
  const Matrix b = random_matrix(4, 2, rng);
  AxonArraySim sim({9, 2});
  const GemmRunResult r = sim.run(Dataflow::kOS, a, b);
  EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 1e-3));
  EXPECT_EQ(r.cycles, 9 + 9 + 4 - 1);
}

TEST(AxonArrayTest, TileSmallerThanPhysicalArray) {
  Rng rng(13);
  const Matrix a = random_matrix(3, 5, rng);
  const Matrix b = random_matrix(5, 4, rng);
  AxonArraySim sim({64, 64});
  const GemmRunResult r = sim.run(Dataflow::kOS, a, b);
  EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 1e-3));
  // Used-region accounting: max(3,4) + 3 + 5 - 1.
  EXPECT_EQ(r.cycles, 4 + 3 + 5 - 1);
}

TEST(AxonArrayTest, OversizeTileRejected) {
  AxonArraySim sim({4, 4});
  Rng rng(2);
  EXPECT_THROW(
      sim.run(Dataflow::kOS, random_matrix(5, 2, rng),
              random_matrix(2, 3, rng)),
      CheckError);
  EXPECT_THROW(
      sim.run(Dataflow::kIS, random_matrix(3, 5, rng),
              random_matrix(5, 3, rng)),
      CheckError);
}

TEST(AxonArrayTest, ZeroGatingPreservesResults) {
  Rng rng(14);
  Matrix a = random_sparse_matrix(8, 6, 0.25, rng);
  Matrix b = random_sparse_matrix(6, 8, 0.25, rng);
  AxonArraySim gated({8, 8}, {.zero_gating = true});
  AxonArraySim plain({8, 8}, {.zero_gating = false});
  const GemmRunResult rg = gated.run(Dataflow::kOS, a, b);
  const GemmRunResult rp = plain.run(Dataflow::kOS, a, b);
  EXPECT_EQ(rg.out, rp.out);
  EXPECT_EQ(rg.macs.gated_macs, exact_gated_macs(a, b));
  EXPECT_EQ(rp.macs.gated_macs, 0);
}

TEST(AxonArrayTest, WsPreloadCostsSrCycles) {
  Rng rng(15);
  const Matrix a = random_matrix(5, 7, rng);
  const Matrix b = random_matrix(7, 4, rng);
  AxonArraySim sim({8, 8});
  const GemmRunResult r = sim.run(Dataflow::kWS, a, b);
  EXPECT_EQ(r.preload_cycles, 7);
  EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 1e-3));
}

TEST(AxonArrayTest, WsWideColumnsNoDiagonal) {
  // S_C (= M for WS) larger than S_R (= K): columns beyond the diagonal
  // have only an upward psum stream. 3 reduction rows, 9 output columns.
  Rng rng(16);
  const Matrix a = random_matrix(9, 3, rng);  // M=9, K=3
  const Matrix b = random_matrix(3, 4, rng);
  AxonArraySim sim({3, 9});
  const GemmRunResult r = sim.run(Dataflow::kWS, a, b);
  EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 1e-3));
  EXPECT_EQ(r.cycles, std::max<i64>(9, 3) + 3 + 4 - 1);
}

TEST(AxonArrayTest, IsTallReductionDeepColumns) {
  // K much larger than N: tall stationary region, edge-fed stream rows.
  Rng rng(17);
  const Matrix a = random_matrix(4, 11, rng);  // K=11
  const Matrix b = random_matrix(11, 3, rng);  // N=3
  AxonArraySim sim({11, 3});
  const GemmRunResult r = sim.run(Dataflow::kIS, a, b);
  EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 1e-3));
  EXPECT_EQ(r.cycles, std::max<i64>(3, 11) + 11 + 4 - 1);
}

TEST(AxonArrayTest, SingleRowAndSingleColumnArrays) {
  Rng rng(18);
  {
    const Matrix a = random_matrix(1, 4, rng);
    const Matrix b = random_matrix(4, 6, rng);
    AxonArraySim sim({1, 6});
    const GemmRunResult r = sim.run(Dataflow::kOS, a, b);
    EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 1e-3));
  }
  {
    const Matrix a = random_matrix(6, 4, rng);
    const Matrix b = random_matrix(4, 1, rng);
    AxonArraySim sim({6, 1});
    const GemmRunResult r = sim.run(Dataflow::kOS, a, b);
    EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 1e-3));
  }
}

TEST(AxonArrayTest, Fp16NumericsExactForSmallValues) {
  Rng rng(19);
  const Matrix a = random_matrix(6, 6, rng);
  const Matrix b = random_matrix(6, 6, rng);
  AxonArraySim sim({6, 6}, {.fp16_numerics = true});
  for (Dataflow df : {Dataflow::kOS, Dataflow::kWS, Dataflow::kIS}) {
    EXPECT_TRUE(sim.run(df, a, b).out.approx_equal(gemm_ref(a, b), 0.0))
        << to_string(df);
  }
}

}  // namespace
}  // namespace axon
