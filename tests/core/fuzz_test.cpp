// Randomized differential testing: hundreds of random (shape, dataflow,
// sparsity) configurations through the reference kernels, both cycle
// simulators and the structural model. Any orchestration bug — a wrong
// register direction, an off-by-one skew, a broken bypass — shows up as a
// value or cycle mismatch here even if the hand-picked cases miss it.
#include <gtest/gtest.h>

#include "baseline/conventional_array.hpp"
#include "common/rng.hpp"
#include "core/axon_array.hpp"
#include "core/conv_executor.hpp"
#include "core/im2col_feeder.hpp"
#include "core/structural_array.hpp"
#include "model/im2col_traffic.hpp"
#include "model/runtime_model.hpp"
#include "tensor/conv_ref.hpp"
#include "tensor/gemm_ref.hpp"

namespace axon {
namespace {

Dataflow pick_dataflow(Rng& rng) {
  switch (rng.uniform_int(0, 2)) {
    case 0: return Dataflow::kOS;
    case 1: return Dataflow::kWS;
    default: return Dataflow::kIS;
  }
}

TEST(FuzzTest, RandomGemmsThroughBothSimulators) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 150; ++trial) {
    const int m = rng.uniform_int(1, 14);
    const int k = rng.uniform_int(1, 14);
    const int n = rng.uniform_int(1, 14);
    const Dataflow df = pick_dataflow(rng);
    const double sparsity = rng.uniform(0.0f, 0.5f);

    const Matrix a = random_sparse_matrix(m, k, sparsity, rng);
    const Matrix b = random_sparse_matrix(k, n, sparsity, rng);
    const Matrix golden = gemm_ref(a, b);

    ArrayShape shape;
    switch (df) {
      case Dataflow::kOS: shape = {m, n}; break;
      case Dataflow::kWS: shape = {k, m}; break;
      case Dataflow::kIS: shape = {k, n}; break;
    }
    // Sometimes give the array slack so the tile is smaller than the array.
    if (rng.bernoulli(0.3)) {
      shape.rows += rng.uniform_int(0, 4);
      shape.cols += rng.uniform_int(0, 4);
    }

    ConventionalArraySim sa(shape);
    AxonArraySim ax(shape);
    const GemmRunResult rs = sa.run(df, a, b);
    const GemmRunResult ra = ax.run(df, a, b);

    ASSERT_TRUE(rs.out.approx_equal(golden, 1e-3))
        << "SA trial " << trial << " " << to_string(df) << " " << m << "x"
        << k << "x" << n;
    ASSERT_TRUE(ra.out.approx_equal(golden, 1e-3))
        << "Axon trial " << trial << " " << to_string(df) << " " << m << "x"
        << k << "x" << n;
    ASSERT_LE(ra.cycles, rs.cycles) << "trial " << trial;
    ASSERT_EQ(rs.macs.total_macs(), ra.macs.total_macs()) << "trial " << trial;
  }
}

TEST(FuzzTest, RandomGemmsThroughStructuralModel) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 60; ++trial) {
    const int m = rng.uniform_int(1, 10);
    const int k = rng.uniform_int(1, 10);
    const int n = rng.uniform_int(1, 10);
    const Dataflow df = pick_dataflow(rng);
    const Matrix a = random_matrix(m, k, rng);
    const Matrix b = random_matrix(k, n, rng);

    ArrayShape shape;
    switch (df) {
      case Dataflow::kOS: shape = {m, n}; break;
      case Dataflow::kWS: shape = {k, m}; break;
      case Dataflow::kIS: shape = {k, n}; break;
    }
    StructuralAxonArray structural(shape);
    AxonArraySim behavioural(shape);
    const GemmRunResult rs = structural.run(df, a, b);
    const GemmRunResult rb = behavioural.run(df, a, b);
    ASSERT_EQ(rs.out, rb.out) << "trial " << trial << " " << to_string(df);
    ASSERT_EQ(rs.cycles, rb.cycles) << "trial " << trial;
  }
}

TEST(FuzzTest, RandomConvsThroughAxonExecutor) {
  Rng rng(0xCAFE);
  for (int trial = 0; trial < 40; ++trial) {
    const int cin = rng.uniform_int(1, 4);
    const int k = rng.uniform_int(1, 4);
    const int stride = rng.uniform_int(1, 3);
    const int pad = rng.uniform_int(0, k - 1 > 0 ? k - 1 : 0);
    const int hw = rng.uniform_int(k + stride, 12);
    const bool depthwise = rng.bernoulli(0.25);
    const int groups = depthwise ? cin : 1;
    const int cout = depthwise ? cin : rng.uniform_int(1, 6);

    ConvShape c;
    try {
      c = make_conv(cin, hw, cout, k, stride, pad, groups);
    } catch (const CheckError&) {
      continue;  // geometrically invalid draw, skip
    }
    const Tensor4 in = random_tensor(1, cin, hw, hw, rng);
    const Tensor4 f = random_tensor(cout, cin / groups, k, k, rng);
    const ArrayShape array{rng.uniform_int(2, 6), rng.uniform_int(2, 6)};

    const ConvRunResult r = run_conv_axon_im2col(in, f, c, array);
    const Tensor4 golden = conv2d_ref(in, f, c);
    for (i64 i = 0; i < golden.size(); ++i) {
      ASSERT_NEAR(r.output.data()[i], golden.data()[i], 1e-3)
          << "trial " << trial << " " << c << " array " << array;
    }
    // Traffic closed form holds for every random shape: the closed form
    // counts one full streaming pass; the executor re-streams the IFMAP
    // once per filter tile (ceil(Cout_per_group / cols) passes).
    const i64 filter_passes = ceil_div(c.out_channels / c.groups, array.cols);
    ASSERT_EQ(r.ifmap_sram_loads,
              ifmap_sram_loads(c, Im2colMode::kAxonOnChip,
                               array.diagonal_pes()) *
                  filter_passes)
        << "trial " << trial << " " << c << " array " << array;
  }
}

TEST(FuzzTest, AnalyticalModelMatchesSimOnRandomFullTiles) {
  Rng rng(0xD1CE);
  for (int trial = 0; trial < 60; ++trial) {
    const int r = rng.uniform_int(1, 12);
    const int c = rng.uniform_int(1, 12);
    const int t = rng.uniform_int(1, 20);
    const Matrix a = random_matrix(r, t, rng);
    const Matrix b = random_matrix(t, c, rng);
    ConventionalArraySim sa({r, c});
    AxonArraySim ax({r, c});
    ASSERT_EQ(sa.run(Dataflow::kOS, a, b).cycles,
              tile_cycles(ArchType::kConventionalSA, {r, c}, t))
        << r << "x" << c << " T=" << t;
    ASSERT_EQ(ax.run(Dataflow::kOS, a, b).cycles,
              tile_cycles(ArchType::kAxon, {r, c}, t))
        << r << "x" << c << " T=" << t;
  }
}

}  // namespace
}  // namespace axon
