#include "core/im2col_feeder.hpp"

#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "model/im2col_traffic.hpp"
#include "tensor/im2col.hpp"

namespace axon {
namespace {

TEST(Im2colFeederTest, EmitsReversedWindowsOfPaperExample) {
  // Paper Fig. 7: 6x6 IFMAP, 3x3 filter. Feeder row d streams window d in
  // reversed flattened order ("rightmost element loaded first").
  const ConvShape c = make_conv(1, 6, 1, 3);
  Tensor4 in(1, 1, 6, 6);
  for (i64 i = 0; i < 36; ++i) in.data()[i] = static_cast<float>(i);
  const Matrix win = im2col_windows(in, c);

  Im2colFeeder feeder(in, c, /*first_window=*/0, /*num_rows=*/4);
  ASSERT_EQ(feeder.temporal_length(), 9);
  for (i64 row = 0; row < 4; ++row) {
    for (i64 k = 0; k < 9; ++k) {
      const auto v = feeder.value(row, k);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, win.at(row, 8 - k)) << "row " << row << " step " << k;
    }
  }
  EXPECT_FALSE(feeder.value(0, 9).has_value());
  EXPECT_FALSE(feeder.value(0, -1).has_value());
}

TEST(Im2colFeederTest, MuxControlPatternMatchesPaper) {
  // "Control signal is 0 for 1 cycle and 1 for the other (n-1) cycles":
  // per 9-element stream of a 3x3 window, non-head feeders load from SRAM
  // exactly 3 times (one per kernel row); the head feeder always loads.
  const ConvShape c = make_conv(1, 6, 1, 3);
  Rng rng(1);
  const Tensor4 in = random_tensor(1, 1, 6, 6, rng);
  Im2colFeeder feeder(in, c, 0, 4);
  for (i64 row = 0; row < 4; ++row) {
    for (i64 k = 0; k < 9; ++k) (void)feeder.value(row, k);
  }
  // Head: 9 loads. Rows 1-3: 3 loads each.
  EXPECT_EQ(feeder.sram_loads(), 9 + 3 * 3);
  EXPECT_EQ(feeder.neighbor_forwards(), 3 * 6);
  // Every element is accounted once.
  EXPECT_EQ(feeder.sram_loads() + feeder.neighbor_forwards(), 4 * 9);
}

TEST(Im2colFeederTest, RowBoundaryBreaksChain) {
  // Windows 3 and 4 of a 4-wide output map sit in different output rows:
  // window 4 (feeder row 1 here) must reload fully from SRAM.
  const ConvShape c = make_conv(1, 6, 1, 3);
  Rng rng(2);
  const Tensor4 in = random_tensor(1, 1, 6, 6, rng);
  Im2colFeeder feeder(in, c, /*first_window=*/3, /*num_rows=*/2);
  for (i64 row = 0; row < 2; ++row) {
    for (i64 k = 0; k < 9; ++k) (void)feeder.value(row, k);
  }
  EXPECT_EQ(feeder.sram_loads(), 18);  // both full
  EXPECT_EQ(feeder.neighbor_forwards(), 0);
}

TEST(Im2colFeederTest, StrideTwoLoadsTwoColumnsPerKernelRow) {
  const ConvShape c = make_conv(1, 9, 1, 3, 2, 0);
  Rng rng(3);
  const Tensor4 in = random_tensor(1, 1, 9, 9, rng);
  ASSERT_EQ(c.out_w(), 4);
  Im2colFeeder feeder(in, c, 0, 4);
  for (i64 row = 0; row < 4; ++row) {
    for (i64 k = 0; k < 9; ++k) (void)feeder.value(row, k);
  }
  // Head: 9. Rows 1-3: stride 2 -> 2 new columns per kernel row -> 6 each.
  EXPECT_EQ(feeder.sram_loads(), 9 + 3 * 6);
}

TEST(Im2colFeederTest, StrideGreaterEqualKernelDisablesReuse) {
  const ConvShape c = make_conv(1, 8, 1, 2, 3, 0);
  Rng rng(4);
  const Tensor4 in = random_tensor(1, 1, 8, 8, rng);
  Im2colFeeder feeder(in, c, 0, 3);
  for (i64 row = 0; row < 3; ++row) {
    for (i64 k = 0; k < 4; ++k) (void)feeder.value(row, k);
  }
  EXPECT_EQ(feeder.neighbor_forwards(), 0);
  EXPECT_EQ(feeder.sram_loads(), 12);
}

TEST(Im2colFeederTest, MultiChannelReusePerChannel) {
  const ConvShape c = make_conv(3, 6, 2, 3, 1, 1);
  Rng rng(5);
  const Tensor4 in = random_tensor(1, 3, 6, 6, rng);
  const i64 t_len = i64{3} * 9;
  Im2colFeeder feeder(in, c, 0, 4);
  ASSERT_EQ(feeder.temporal_length(), t_len);
  for (i64 row = 0; row < 4; ++row) {
    for (i64 k = 0; k < t_len; ++k) (void)feeder.value(row, k);
  }
  // Head: 27. Others: 3 kernel rows x 3 channels = 9 each.
  EXPECT_EQ(feeder.sram_loads(), 27 + 3 * 9);
}

// ---------------------------------------------------------------------
// Property sweep: the cycle-accurate feeder's SRAM load count must equal
// the closed-form model in model/im2col_traffic for full-layer streaming.
using TrafficParam = std::tuple<int, int, int, int, int, int>;
//                      (cin, hw, k, stride, pad, feeders)

class FeederVsClosedForm : public ::testing::TestWithParam<TrafficParam> {};

TEST_P(FeederVsClosedForm, SramLoadsMatchModel) {
  const auto [cin, hw, k, stride, pad, feeders] = GetParam();
  const ConvShape c = make_conv(cin, hw, /*cout=*/4, k, stride, pad);
  Rng rng(6);
  const Tensor4 in = random_tensor(1, cin, hw, hw, rng);

  // Stream every window, segmented per output row in groups of `feeders`
  // (exactly the schedule run_conv_axon_im2col uses).
  i64 total_loads = 0;
  for (int oy = 0; oy < c.out_h(); ++oy) {
    for (int ox0 = 0; ox0 < c.out_w(); ox0 += feeders) {
      const i64 wn = std::min<i64>(feeders, c.out_w() - ox0);
      Im2colFeeder feeder(in, c, i64{1} * oy * c.out_w() + ox0, wn);
      for (i64 row = 0; row < wn; ++row) {
        for (i64 t = 0; t < feeder.temporal_length(); ++t) {
          (void)feeder.value(row, t);
        }
      }
      total_loads += feeder.sram_loads();
    }
  }
  EXPECT_EQ(total_loads, ifmap_sram_loads(c, Im2colMode::kAxonOnChip, feeders));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FeederVsClosedForm,
    ::testing::Values(TrafficParam{1, 6, 3, 1, 0, 4},
                      TrafficParam{2, 8, 3, 1, 1, 4},
                      TrafficParam{1, 9, 3, 2, 0, 3},
                      TrafficParam{3, 7, 2, 1, 0, 8},
                      TrafficParam{1, 10, 5, 1, 2, 4},
                      TrafficParam{2, 8, 2, 2, 0, 4},
                      TrafficParam{1, 12, 3, 1, 0, 16},
                      TrafficParam{1, 7, 1, 1, 0, 4}),  // 1x1: no reuse
    [](const ::testing::TestParamInfo<TrafficParam>& info) {
      return "c" + std::to_string(std::get<0>(info.param)) + "_hw" +
             std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param)) + "_p" +
             std::to_string(std::get<4>(info.param)) + "_f" +
             std::to_string(std::get<5>(info.param));
    });

TEST(Im2colFeederTest, InvalidRangesRejected) {
  const ConvShape c = make_conv(1, 6, 1, 3);
  Tensor4 in(1, 1, 6, 6);
  EXPECT_THROW(Im2colFeeder(in, c, 0, 17), CheckError);   // > 16 windows
  EXPECT_THROW(Im2colFeeder(in, c, -1, 2), CheckError);
  EXPECT_THROW(Im2colFeeder(in, c, 16, 1), CheckError);
  EXPECT_THROW(Im2colFeeder(in, c, 0, 2, /*group=*/1), CheckError);
}

}  // namespace
}  // namespace axon
