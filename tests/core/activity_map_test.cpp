// Per-PE activity maps: the utilization view the simulators expose.
#include <gtest/gtest.h>

#include "baseline/conventional_array.hpp"
#include "common/rng.hpp"
#include "core/axon_array.hpp"
#include "core/structural_array.hpp"

namespace axon {
namespace {

TEST(ActivityMapTest, FullTileEveryPeDoesTMacs) {
  Rng rng(81);
  const int r = 6, c = 5, t = 9;
  const Matrix a = random_matrix(r, t, rng);
  const Matrix b = random_matrix(t, c, rng);
  for (int which = 0; which < 2; ++which) {
    GemmRunResult res;
    if (which == 0) {
      res = ConventionalArraySim({r, c}).run(Dataflow::kOS, a, b);
    } else {
      res = AxonArraySim({r, c}).run(Dataflow::kOS, a, b);
    }
    ASSERT_EQ(res.pe_activity.rows(), r);
    ASSERT_EQ(res.pe_activity.cols(), c);
    for (i64 i = 0; i < r; ++i) {
      for (i64 j = 0; j < c; ++j) {
        EXPECT_EQ(res.pe_activity.at(i, j), static_cast<float>(t))
            << "engine " << which << " PE(" << i << "," << j << ")";
      }
    }
  }
}

TEST(ActivityMapTest, ActivitySumsToTotalMacs) {
  Rng rng(82);
  const Matrix a = random_matrix(7, 4, rng);
  const Matrix b = random_matrix(4, 8, rng);
  const GemmRunResult res = AxonArraySim({7, 8}).run(Dataflow::kWS, a, b);
  double sum = 0.0;
  for (i64 i = 0; i < res.pe_activity.rows(); ++i) {
    for (i64 j = 0; j < res.pe_activity.cols(); ++j) {
      sum += res.pe_activity.at(i, j);
    }
  }
  EXPECT_EQ(static_cast<i64>(sum), res.macs.total_macs());
}

TEST(ActivityMapTest, StructuralMatchesBehavioural) {
  Rng rng(83);
  const Matrix a = random_matrix(5, 6, rng);
  const Matrix b = random_matrix(6, 5, rng);
  const GemmRunResult rb = AxonArraySim({5, 5}).run(Dataflow::kOS, a, b);
  const GemmRunResult rs = StructuralAxonArray({5, 5}).run(Dataflow::kOS, a, b);
  EXPECT_EQ(rb.pe_activity, rs.pe_activity);
}

TEST(ActivityMapTest, WsActivityMapUsesEngineAxes) {
  // For WS the engine runs on (K x M); the activity map reflects the
  // physical PEs, not the logical output.
  Rng rng(84);
  const Matrix a = random_matrix(3, 6, rng);  // M=3, K=6
  const Matrix b = random_matrix(6, 4, rng);  // N=4
  const GemmRunResult res =
      ConventionalArraySim({6, 3}).run(Dataflow::kWS, a, b);
  EXPECT_EQ(res.pe_activity.rows(), 6);  // K
  EXPECT_EQ(res.pe_activity.cols(), 3);  // M
  for (i64 i = 0; i < 6; ++i) {
    for (i64 j = 0; j < 3; ++j) {
      EXPECT_EQ(res.pe_activity.at(i, j), 4.0f);  // T = N MACs per PE
    }
  }
}

}  // namespace
}  // namespace axon
