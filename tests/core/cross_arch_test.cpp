// Cross-architecture properties: for the same tile, Axon and the
// conventional SA must produce identical results while Axon's fill and total
// cycle counts are strictly better (paper §3.1).
#include <tuple>

#include <gtest/gtest.h>

#include "baseline/conventional_array.hpp"
#include "common/rng.hpp"
#include "core/axon_array.hpp"
#include "model/runtime_model.hpp"

namespace axon {
namespace {

using Param = std::tuple<Dataflow, int, int, int>;

class CrossArch : public ::testing::TestWithParam<Param> {};

TEST_P(CrossArch, SameResultsFewerCycles) {
  const auto [df, m, k, n] = GetParam();
  Rng rng(2024);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);

  ArrayShape shape;
  switch (df) {
    case Dataflow::kOS: shape = {m, n}; break;
    case Dataflow::kWS: shape = {k, m}; break;
    case Dataflow::kIS: shape = {k, n}; break;
  }
  ConventionalArraySim sa(shape);
  AxonArraySim ax(shape);
  const GemmRunResult rs = sa.run(df, a, b);
  const GemmRunResult ra = ax.run(df, a, b);

  // Functional equivalence (bit-exact: same MAC order per output along K).
  EXPECT_EQ(rs.out.rows(), ra.out.rows());
  EXPECT_TRUE(rs.out.approx_equal(ra.out, 1e-4));

  // Axon never loses; for non-degenerate shapes it strictly wins.
  EXPECT_LE(ra.cycles, rs.cycles);
  if (shape.rows > 1 && shape.cols > 1) {
    EXPECT_LT(ra.cycles, rs.cycles);
  }

  // The win equals the fill-latency difference:
  // (R + C - 2) - (max(R, C) - 1) = min(R, C) - 1.
  const i64 expected_gain = std::min(shape.rows, shape.cols) - 1;
  EXPECT_EQ(rs.cycles - ra.cycles, expected_gain);

  // Both perform exactly the same MAC work.
  EXPECT_EQ(rs.macs.total_macs(), ra.macs.total_macs());

  // Observed fills match the closed forms used by Fig. 6.
  EXPECT_EQ(rs.fill_cycles, fill_latency(ArchType::kConventionalSA, shape));
  EXPECT_EQ(ra.fill_cycles, fill_latency(ArchType::kAxon, shape));
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, CrossArch,
    ::testing::Combine(::testing::Values(Dataflow::kOS, Dataflow::kWS,
                                         Dataflow::kIS),
                       ::testing::Values(2, 7, 12),   // M
                       ::testing::Values(3, 9),       // K
                       ::testing::Values(2, 6, 12)),  // N
    [](const ::testing::TestParamInfo<Param>& info) {
      return to_string(std::get<0>(info.param)) + "_M" +
             std::to_string(std::get<1>(info.param)) + "_K" +
             std::to_string(std::get<2>(info.param)) + "_N" +
             std::to_string(std::get<3>(info.param));
    });

TEST(CrossArchTest, SquareTileSpeedupApproachesTable2Ratio) {
  // For a square 16x16 OS tile with small T, the strict per-tile ratio is
  // (2R + C + T - 2) / (max + R + T - 1) = (3R + T - 2) / (2R + T - 1).
  Rng rng(77);
  const int r = 16, t = 4;
  const Matrix a = random_matrix(r, t, rng);
  const Matrix b = random_matrix(t, r, rng);
  ConventionalArraySim sa({r, r});
  AxonArraySim ax({r, r});
  const double ratio =
      static_cast<double>(sa.run(Dataflow::kOS, a, b).cycles) /
      static_cast<double>(ax.run(Dataflow::kOS, a, b).cycles);
  EXPECT_NEAR(ratio, (3.0 * r + t - 2) / (2.0 * r + t - 1), 1e-9);
}

TEST(CrossArchTest, CycleSimsAgreeWithAnalyticalModel) {
  // The analytical tile model (model/runtime_model) must equal the cycle
  // simulators on full tiles — this is what licenses the analytical sweeps
  // in Figs. 12-14.
  Rng rng(88);
  for (int r : {2, 5, 9}) {
    for (int c : {2, 6, 11}) {
      for (int t : {1, 7, 20}) {
        const Matrix a = random_matrix(r, t, rng);
        const Matrix b = random_matrix(t, c, rng);
        ConventionalArraySim sa({r, c});
        AxonArraySim ax({r, c});
        EXPECT_EQ(sa.run(Dataflow::kOS, a, b).cycles,
                  tile_cycles(ArchType::kConventionalSA, {r, c}, t))
            << r << "x" << c << " T=" << t;
        EXPECT_EQ(ax.run(Dataflow::kOS, a, b).cycles,
                  tile_cycles(ArchType::kAxon, {r, c}, t))
            << r << "x" << c << " T=" << t;
      }
    }
  }
}

}  // namespace
}  // namespace axon
