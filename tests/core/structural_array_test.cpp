// Structural-vs-behavioural equivalence: the array built from UnifiedPe
// datapaths (Fig. 9) must agree with AxonArraySim cycle-for-cycle and
// bit-for-bit. This is the repo's stand-in for RTL equivalence checking.
#include "core/structural_array.hpp"

#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/axon_array.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/sparsity.hpp"

namespace axon {
namespace {

using Param = std::tuple<Dataflow, int, int, int>;

class StructuralSweep : public ::testing::TestWithParam<Param> {};

TEST_P(StructuralSweep, AgreesWithBehaviouralSim) {
  const auto [df, m, k, n] = GetParam();
  Rng rng(777);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);

  ArrayShape shape;
  switch (df) {
    case Dataflow::kOS: shape = {m, n}; break;
    case Dataflow::kWS: shape = {k, m}; break;
    case Dataflow::kIS: shape = {k, n}; break;
  }
  StructuralAxonArray structural(shape);
  AxonArraySim behavioural(shape);
  const GemmRunResult rs = structural.run(df, a, b);
  const GemmRunResult rb = behavioural.run(df, a, b);

  // Bit-exact results (same MAC order along the reduction).
  EXPECT_EQ(rs.out, rb.out);
  // Cycle-for-cycle identical accounting.
  EXPECT_EQ(rs.cycles, rb.cycles);
  EXPECT_EQ(rs.fill_cycles, rb.fill_cycles);
  EXPECT_EQ(rs.preload_cycles, rb.preload_cycles);
  // Identical MAC work.
  EXPECT_EQ(rs.macs.total_macs(), rb.macs.total_macs());
  EXPECT_EQ(rs.macs.active_macs, rb.macs.active_macs);
  // And of course correct.
  EXPECT_TRUE(rs.out.approx_equal(gemm_ref(a, b), 1e-3));
}

INSTANTIATE_TEST_SUITE_P(
    AllDataflows, StructuralSweep,
    ::testing::Combine(::testing::Values(Dataflow::kOS, Dataflow::kWS,
                                         Dataflow::kIS),
                       ::testing::Values(1, 4, 9, 16),  // M
                       ::testing::Values(3, 8),         // K
                       ::testing::Values(1, 5, 16)),    // N
    [](const ::testing::TestParamInfo<Param>& info) {
      return to_string(std::get<0>(info.param)) + "_M" +
             std::to_string(std::get<1>(info.param)) + "_K" +
             std::to_string(std::get<2>(info.param)) + "_N" +
             std::to_string(std::get<3>(info.param));
    });

TEST(StructuralArrayTest, PreloadChainLoadsStationaryRegisters) {
  // Covered by the AXON_DCHECK inside run_ws in debug builds; here verify
  // the end-to-end result on a tall stationary tile.
  Rng rng(1);
  const Matrix a = random_matrix(5, 9, rng);
  const Matrix b = random_matrix(9, 4, rng);
  StructuralAxonArray arr({9, 5});
  const GemmRunResult r = arr.run(Dataflow::kWS, a, b);
  EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 1e-3));
  EXPECT_EQ(r.preload_cycles, 9);
}

TEST(StructuralArrayTest, ZeroGatingCountsMatchBehavioural) {
  Rng rng(2);
  Matrix a = random_sparse_matrix(7, 6, 0.3, rng);
  Matrix b = random_sparse_matrix(6, 7, 0.3, rng);
  StructuralAxonArray structural({7, 7});
  AxonArraySim behavioural({7, 7});
  const auto rs = structural.run(Dataflow::kOS, a, b);
  const auto rb = behavioural.run(Dataflow::kOS, a, b);
  EXPECT_EQ(rs.macs.gated_macs, rb.macs.gated_macs);
  EXPECT_EQ(rs.macs.gated_macs, exact_gated_macs(a, b));
}

TEST(StructuralArrayTest, RectangularGeometries) {
  Rng rng(3);
  for (const auto& [rows, cols] :
       {std::pair{2, 11}, std::pair{11, 2}, std::pair{1, 7}, std::pair{7, 1}}) {
    const Matrix a = random_matrix(rows, 5, rng);
    const Matrix b = random_matrix(5, cols, rng);
    StructuralAxonArray arr({rows, cols});
    const GemmRunResult r = arr.run(Dataflow::kOS, a, b);
    EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 1e-3))
        << rows << "x" << cols;
  }
}

TEST(StructuralArrayTest, Fp16PipelineMatchesFp16Reference) {
  Rng rng(4);
  const Matrix a = random_matrix(6, 8, rng);
  const Matrix b = random_matrix(8, 6, rng);
  StructuralAxonArray arr({8, 8}, {.fp16_numerics = true});
  const GemmRunResult r = arr.run(Dataflow::kOS, a, b);
  EXPECT_TRUE(r.out.approx_equal(gemm_ref_fp16(a, b), 0.0));
}

}  // namespace
}  // namespace axon
