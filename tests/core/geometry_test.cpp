// Unit tests for the Axon injection geometry: the arrival-time theorem the
// whole orchestration rests on.
#include "core/geometry.hpp"

#include <gtest/gtest.h>

namespace axon {
namespace {

TEST(GeometryTest, SquareDiagonalInjection) {
  const AxonGeometry g(8, 8);
  for (i64 i = 0; i < 8; ++i) {
    EXPECT_EQ(g.src_col(i), i);
    EXPECT_EQ(g.skew_a(i), 0);
    EXPECT_EQ(g.src_row(i), i);
    EXPECT_EQ(g.skew_b(i), 0);
  }
  EXPECT_EQ(g.max_dist(), 7);
}

TEST(GeometryTest, WideArrayEdgeColumns) {
  const AxonGeometry g(3, 10);
  // Columns 3..9 have no diagonal PE: fed from the bottom row with a skew
  // equal to their distance from it (paper Fig. 5).
  for (i64 j = 3; j < 10; ++j) {
    EXPECT_EQ(g.src_row(j), 2);
    EXPECT_EQ(g.skew_b(j), j - 2);
  }
  EXPECT_EQ(g.skew_b(2), 0);
  EXPECT_EQ(g.max_dist(), 9);
}

TEST(GeometryTest, TallArrayEdgeRows) {
  const AxonGeometry g(10, 3);
  for (i64 i = 3; i < 10; ++i) {
    EXPECT_EQ(g.src_col(i), 2);
    EXPECT_EQ(g.skew_a(i), i - 2);
  }
  EXPECT_EQ(g.max_dist(), 9);
}

TEST(GeometryTest, ArrivalTimeTheorem) {
  // The load-bearing property: an element injected for temporal step k
  // reaches PE (i, j) at cycle k + |i - j|, for every geometry. Derive the
  // arrival explicitly from injection point + skew + hop distance and
  // compare against the Chebyshev form.
  for (i64 r : {1, 2, 5, 9}) {
    for (i64 c : {1, 3, 5, 11}) {
      const AxonGeometry g(r, c);
      for (i64 i = 0; i < r; ++i) {
        for (i64 j = 0; j < c; ++j) {
          // Horizontal stream of row i: injected at src_col with skew,
          // travels |j - src_col| hops.
          const i64 a_arrival =
              g.skew_a(i) + (j > g.src_col(i) ? j - g.src_col(i)
                                              : g.src_col(i) - j);
          EXPECT_EQ(a_arrival, g.dist(i, j)) << r << "x" << c << " PE(" << i
                                             << "," << j << ")";
          // Vertical stream of column j.
          const i64 b_arrival =
              g.skew_b(j) + (i > g.src_row(j) ? i - g.src_row(j)
                                              : g.src_row(j) - i);
          EXPECT_EQ(b_arrival, g.dist(i, j)) << r << "x" << c << " PE(" << i
                                             << "," << j << ")";
        }
      }
    }
  }
}

TEST(GeometryTest, MaxDistIsChebyshevRadius) {
  for (i64 r : {1, 4, 7}) {
    for (i64 c : {1, 4, 13}) {
      const AxonGeometry g(r, c);
      i64 worst = 0;
      for (i64 i = 0; i < r; ++i) {
        for (i64 j = 0; j < c; ++j) worst = std::max(worst, g.dist(i, j));
      }
      EXPECT_EQ(worst, g.max_dist()) << r << "x" << c;
    }
  }
}

TEST(GeometryTest, DegenerateSingleRowColumn) {
  const AxonGeometry row(1, 6);
  EXPECT_EQ(row.src_row(5), 0);
  EXPECT_EQ(row.skew_b(5), 5);
  EXPECT_EQ(row.max_dist(), 5);
  const AxonGeometry one(1, 1);
  EXPECT_EQ(one.max_dist(), 0);
}

}  // namespace
}  // namespace axon
