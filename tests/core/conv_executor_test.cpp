#include "core/conv_executor.hpp"

#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "model/im2col_traffic.hpp"
#include "tensor/conv_ref.hpp"

namespace axon {
namespace {

// Property sweep: convolution on the Axon array with on-chip im2col must
// equal the direct reference convolution — including padding, stride,
// groups, multi-batch, and layers that tile across the array.
using Param = std::tuple<int, int, int, int, int, int, int>;
//                 (cin, hw, cout, k, stride, pad, groups)

class AxonConvSweep : public ::testing::TestWithParam<Param> {};

TEST_P(AxonConvSweep, MatchesReferenceConv) {
  const auto [cin, hw, cout, k, stride, pad, groups] = GetParam();
  const ConvShape c = make_conv(cin, hw, cout, k, stride, pad, groups);
  Rng rng(31);
  const Tensor4 in = random_tensor(2, cin, hw, hw, rng);
  const Tensor4 f = random_tensor(cout, cin / groups, k, k, rng);

  const ArrayShape array{4, 4};  // small so layers genuinely tile
  const ConvRunResult axon = run_conv_axon_im2col(in, f, c, array);
  const Tensor4 expected = conv2d_ref(in, f, c);
  ASSERT_EQ(axon.output.size(), expected.size());
  for (i64 i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(axon.output.data()[i], expected.data()[i], 1e-3)
        << "flat index " << i;
  }
  EXPECT_GT(axon.tiles, 0);
  EXPECT_GT(axon.cycles, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AxonConvSweep,
    ::testing::Values(Param{1, 6, 1, 3, 1, 0, 1},   // paper Fig. 7
                      Param{2, 8, 3, 3, 1, 1, 1},   // padded
                      Param{1, 9, 2, 3, 2, 0, 1},   // strided
                      Param{4, 6, 4, 3, 1, 1, 4},   // depthwise
                      Param{4, 6, 6, 2, 1, 0, 2},   // grouped
                      Param{3, 5, 9, 1, 1, 0, 1},   // 1x1, cout tiles
                      Param{2, 12, 2, 5, 2, 2, 1}), // large kernel
    [](const ::testing::TestParamInfo<Param>& info) {
      return "c" + std::to_string(std::get<0>(info.param)) + "_hw" +
             std::to_string(std::get<1>(info.param)) + "_o" +
             std::to_string(std::get<2>(info.param)) + "_k" +
             std::to_string(std::get<3>(info.param)) + "_s" +
             std::to_string(std::get<4>(info.param)) + "_p" +
             std::to_string(std::get<5>(info.param)) + "_g" +
             std::to_string(std::get<6>(info.param));
    });

TEST(ConvExecutorTest, SaSoftwareIm2colMatchesReference) {
  const ConvShape c = make_conv(3, 8, 5, 3, 1, 1);
  Rng rng(32);
  const Tensor4 in = random_tensor(1, 3, 8, 8, rng);
  const Tensor4 f = random_tensor(5, 3, 3, 3, rng);
  const ConvRunResult sa = run_conv_sa_software_im2col(in, f, c, {4, 4});
  const Tensor4 expected = conv2d_ref(in, f, c);
  for (i64 i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(sa.output.data()[i], expected.data()[i], 1e-3);
  }
}

TEST(ConvExecutorTest, AxonAndSaProduceSameOutput) {
  const ConvShape c = make_conv(2, 7, 3, 3, 1, 0);
  Rng rng(33);
  const Tensor4 in = random_tensor(1, 2, 7, 7, rng);
  const Tensor4 f = random_tensor(3, 2, 3, 3, rng);
  const ConvRunResult ax = run_conv_axon_im2col(in, f, c, {5, 5});
  const ConvRunResult sa = run_conv_sa_software_im2col(in, f, c, {5, 5});
  for (i64 i = 0; i < ax.output.size(); ++i) {
    EXPECT_NEAR(ax.output.data()[i], sa.output.data()[i], 1e-3);
  }
}

TEST(ConvExecutorTest, AxonCutsIfmapSramTraffic) {
  const ConvShape c = make_conv(2, 10, 4, 3, 1, 1);
  Rng rng(34);
  const Tensor4 in = random_tensor(1, 2, 10, 10, rng);
  const Tensor4 f = random_tensor(4, 2, 3, 3, rng);
  const ArrayShape array{8, 8};
  const ConvRunResult ax = run_conv_axon_im2col(in, f, c, array);
  const ConvRunResult sa = run_conv_sa_software_im2col(in, f, c, array);
  // SA streams the full expanded im2col matrix; Axon reuses ~(n-1)/n of it.
  EXPECT_LT(ax.ifmap_sram_loads, sa.ifmap_sram_loads);
  const double reduction = 1.0 - static_cast<double>(ax.ifmap_sram_loads) /
                                     static_cast<double>(sa.ifmap_sram_loads);
  EXPECT_GT(reduction, 0.4);  // 3x3 stride 1 with 8 feeders: ~58%

  // Axon's loads equal the closed-form model at min(R, C) feeders.
  EXPECT_EQ(ax.ifmap_sram_loads,
            ifmap_sram_loads(c, Im2colMode::kAxonOnChip, array.diagonal_pes()));
  EXPECT_EQ(sa.ifmap_sram_loads,
            ifmap_sram_loads(c, Im2colMode::kSoftware, array.diagonal_pes()));
}

TEST(ConvExecutorTest, AxonIsFasterInCycles) {
  const ConvShape c = make_conv(2, 9, 4, 3, 1, 0);
  Rng rng(35);
  const Tensor4 in = random_tensor(1, 2, 9, 9, rng);
  const Tensor4 f = random_tensor(4, 2, 3, 3, rng);
  const ConvRunResult ax = run_conv_axon_im2col(in, f, c, {7, 7});
  const ConvRunResult sa = run_conv_sa_software_im2col(in, f, c, {7, 7});
  EXPECT_LT(ax.cycles, sa.cycles);
}

TEST(ConvExecutorTest, MacCountsMatchLayerWork) {
  const ConvShape c = make_conv(2, 6, 2, 3, 1, 0);
  Rng rng(36);
  const Tensor4 in = random_tensor(1, 2, 6, 6, rng);
  const Tensor4 f = random_tensor(2, 2, 3, 3, rng);
  const ConvRunResult ax = run_conv_axon_im2col(in, f, c, {4, 4});
  EXPECT_EQ(ax.macs.total_macs(), c.macs());
}

TEST(ConvExecutorTest, NeighborForwardsComplementSramLoads) {
  const ConvShape c = make_conv(1, 8, 1, 3, 1, 0);
  Rng rng(37);
  const Tensor4 in = random_tensor(1, 1, 8, 8, rng);
  const Tensor4 f = random_tensor(1, 1, 3, 3, rng);
  const ConvRunResult ax = run_conv_axon_im2col(in, f, c, {6, 6});
  // Every streamed element is either an SRAM load or a MUX forward.
  const i64 total_streamed = i64{1} * c.out_h() * c.out_w() * 9;
  EXPECT_EQ(ax.ifmap_sram_loads + ax.neighbor_forwards, total_streamed);
}

}  // namespace
}  // namespace axon
