// PoolConfig::validate() fail-fast semantics: one directed case per
// rejected knob combination — a long simulation must never start with a
// configuration that silently skews it — plus the positive controls (the
// default config and every canonical scenario config pass) and the
// serve()-path check (serve validates first, so a bad config fails before
// the first event, not after).
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "serve/pool.hpp"
#include "serve/scenarios.hpp"

namespace axon::serve {
namespace {

PoolConfig base_config() {
  PoolConfig cfg;
  cfg.num_accelerators = 2;
  cfg.accelerator.array = {32, 32};
  return cfg;
}

TEST(PoolConfigValidateTest, DefaultAndScenarioConfigsPass) {
  EXPECT_NO_THROW(PoolConfig{}.validate());
  EXPECT_NO_THROW(base_config().validate());
  for (const std::string& name : scenario_names()) {
    EXPECT_NO_THROW(scenario(name).config.validate()) << name;
  }
}

TEST(PoolConfigValidateTest, RejectsDegenerateThreadCount) {
  PoolConfig cfg = base_config();
  cfg.num_threads = 0;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.num_threads = -4;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(PoolConfigValidateTest, RejectsEmptyPool) {
  PoolConfig cfg = base_config();
  cfg.num_accelerators = 0;  // homogeneous shorthand with no members
  EXPECT_THROW(cfg.validate(), CheckError);
  // A non-empty heterogeneous fleet makes num_accelerators irrelevant.
  cfg.fleet = mixed_demo_fleet();
  EXPECT_NO_THROW(cfg.validate());
}

TEST(PoolConfigValidateTest, RejectsDegenerateBatching) {
  PoolConfig cfg = base_config();
  cfg.batching.max_batch = 0;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg = base_config();
  cfg.batching.max_wait_cycles = -1;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(PoolConfigValidateTest, RejectsChunkingWithoutAQuantum) {
  for (const ChunkPolicy policy :
       {ChunkPolicy::kFixedTiles, ChunkPolicy::kDeadlineAware}) {
    PoolConfig cfg = base_config();
    cfg.chunking = policy;
    cfg.chunk_tiles = 0;
    EXPECT_THROW(cfg.validate(), CheckError);
    cfg.chunk_tiles = -2;
    EXPECT_THROW(cfg.validate(), CheckError);
    cfg.chunk_tiles = 4;
    EXPECT_NO_THROW(cfg.validate());
  }
}

TEST(PoolConfigValidateTest, RejectsCongestionAwareWithoutATopology) {
  PoolConfig cfg = base_config();
  cfg.congestion_aware = true;  // no topology: no node demand to read
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg = fleet_contention_pool_config(true);  // topology: legal
  EXPECT_NO_THROW(cfg.validate());
}

TEST(PoolConfigValidateTest, RejectsTopologyFleetSizeMismatch) {
  PoolConfig cfg = base_config();  // 2 members
  cfg.topology.device_node = {0, 0, 1};
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.topology.device_node = {0, 1};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(PoolConfigValidateTest, RejectsStageAffinityOnAnUntypedFleet) {
  // Homogeneous shorthand (no fleet at all) and an all-general fleet both
  // fail: the knob would silently do nothing.
  for (const StageAffinity affinity :
       {StageAffinity::kPreferred, StageAffinity::kStrict}) {
    PoolConfig cfg = base_config();
    cfg.stage_affinity = affinity;
    EXPECT_THROW(cfg.validate(), CheckError);
    cfg.fleet = chunked_prefill_fleet();  // all members serve kGeneral
    EXPECT_THROW(cfg.validate(), CheckError);
    cfg.fleet = disagg_fleet();  // typed prefill/decode members
    EXPECT_NO_THROW(cfg.validate());
  }
}

TEST(PoolConfigValidateTest, ServeValidatesBeforeTheFirstEvent) {
  // A combination only validate() rejects (construction succeeds): the
  // failure must surface at serve() entry, before the first event.
  PoolConfig cfg = base_config();
  cfg.congestion_aware = true;
  AcceleratorPool pool(cfg);
  RequestQueue q;
  Request r;
  r.workload = q.intern("w", {8, 64, 64});
  r.gemm = {8, 64, 64};
  q.push(r);
  EXPECT_THROW(pool.serve(q), CheckError);
}

}  // namespace
}  // namespace axon::serve
