#include "serve/request.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace axon::serve {
namespace {

TEST(RequestQueueTest, FifoAndArrivalOrderEnforced) {
  RequestQueue q;
  Request a;
  a.id = 0;
  a.gemm = {1, 2, 3};
  a.arrival_cycle = 10;
  Request b = a;
  b.id = 1;
  b.arrival_cycle = 20;
  q.push(a);
  q.push(b);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.next_arrival(), 10);
  EXPECT_EQ(q.pop().id, 0);
  EXPECT_EQ(q.pop().id, 1);
  EXPECT_TRUE(q.empty());

  Request late = a;
  late.arrival_cycle = 30;
  q.push(late);
  Request early = a;
  early.arrival_cycle = 5;
  EXPECT_THROW(q.push(early), CheckError);
}

TEST(TraceGeneratorTest, DeterministicForFixedSeed) {
  const auto mix = transformer_serve_mix();
  const TraceConfig cfg{/*num_requests=*/32, /*mean_interarrival=*/500.0};
  Rng rng1(123);
  Rng rng2(123);
  RequestQueue q1 = generate_trace(mix, cfg, rng1);
  RequestQueue q2 = generate_trace(mix, cfg, rng2);
  ASSERT_EQ(q1.size(), 32u);
  while (!q1.empty()) {
    const Request a = q1.pop();
    const Request b = q2.pop();
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.gemm, b.gemm);
    EXPECT_EQ(a.arrival_cycle, b.arrival_cycle);
  }
}

TEST(TraceGeneratorTest, ArrivalsNonDecreasingAndMixRespected) {
  const auto mix = mixed_serve_mix();
  ASSERT_FALSE(mix.empty());
  Rng rng(7);
  RequestQueue q = generate_trace(mix, {64, 1000.0}, rng);
  i64 prev = 0;
  i64 next_id = 0;
  while (!q.empty()) {
    const Request r = q.pop();
    EXPECT_EQ(r.id, next_id++);
    EXPECT_GE(r.arrival_cycle, prev);
    prev = r.arrival_cycle;
    EXPECT_TRUE(r.gemm.valid());
    // The interned id must re-materialize to a real workload name.
    EXPECT_FALSE(q.registry().name(r.workload).empty());
  }
}

TEST(TraceGeneratorTest, RealizedMeanInterArrivalWithinOnePercent) {
  // Regression for the truncation bug: gaps were floored via
  // static_cast<i64>, shaving an expected half cycle off every gap and
  // biasing the realized rate above the configured one. With llround the
  // realized mean over 100k requests must sit within 1% of configured.
  const std::vector<GemmWorkload> mix = {{"w", {4, 8, 8}}};
  const double mean = 2000.0;
  const int n = 100000;
  Rng rng(42);
  RequestQueue q = generate_trace(mix, {n, mean}, rng);
  i64 last = 0;
  while (!q.empty()) last = q.pop().arrival_cycle;
  const double realized = static_cast<double>(last) / n;
  EXPECT_NEAR(realized, mean, 0.01 * mean);
}

TEST(TraceGeneratorTest, SmallMeanGapsAreNotFloored) {
  // At mean gap 8 the old floor bias was ~6% (E[floor(X)] = 7.51); rounding
  // keeps it within 1%. This is the case that actually catches truncation.
  const std::vector<GemmWorkload> mix = {{"w", {4, 8, 8}}};
  const double mean = 8.0;
  const int n = 100000;
  Rng rng(42);
  RequestQueue q = generate_trace(mix, {n, mean}, rng);
  i64 last = 0;
  while (!q.empty()) last = q.pop().arrival_cycle;
  const double realized = static_cast<double>(last) / n;
  EXPECT_NEAR(realized, mean, 0.01 * mean);
}

TEST(TraceGeneratorTest, SloPoliciesStampDeadlinesAndPriorities) {
  const std::vector<GemmWorkload> mix = {{"fast", {1, 8, 8}},
                                         {"slow", {64, 8, 8}}};
  TraceConfig cfg{/*num_requests=*/64, /*mean_interarrival=*/100.0, {}};
  cfg.classes.default_policy = {/*slo=*/-1, /*priority=*/1};
  cfg.classes.per_workload["fast"] = {/*slo=*/5000, /*priority=*/0};
  Rng rng(3);
  RequestQueue q = generate_trace(mix, cfg, rng);
  const WorkloadId fast_id = q.registry().id("fast");
  int fast_seen = 0;
  while (!q.empty()) {
    const Request r = q.pop();
    if (r.workload == fast_id) {
      ++fast_seen;
      EXPECT_TRUE(r.has_deadline());
      EXPECT_EQ(r.deadline_cycle, r.arrival_cycle + 5000);
      EXPECT_EQ(r.priority, 0);
    } else {
      EXPECT_FALSE(r.has_deadline());
      EXPECT_EQ(r.priority, 1);
    }
  }
  EXPECT_GT(fast_seen, 0);
}

TEST(BurstyTraceTest, DeterministicOrderedAndBurstierThanPoisson) {
  const std::vector<GemmWorkload> mix = {{"w", {4, 8, 8}}};
  BurstyTraceConfig cfg;
  cfg.num_requests = 4096;
  cfg.burst_interarrival_cycles = 100.0;
  cfg.mean_on_cycles = 5000.0;
  cfg.mean_off_cycles = 20000.0;
  Rng rng1(9);
  Rng rng2(9);
  RequestQueue a = generate_bursty_trace(mix, cfg, rng1);
  RequestQueue b = generate_bursty_trace(mix, cfg, rng2);
  ASSERT_EQ(a.size(), 4096u);
  std::vector<i64> gaps;
  i64 prev = 0;
  while (!a.empty()) {
    const Request ra = a.pop();
    const Request rb = b.pop();
    EXPECT_EQ(ra.arrival_cycle, rb.arrival_cycle);
    EXPECT_GE(ra.arrival_cycle, prev);
    gaps.push_back(ra.arrival_cycle - prev);
    prev = ra.arrival_cycle;
  }
  // On/off modulation makes the gap distribution overdispersed: its
  // coefficient of variation must clearly exceed the exponential's 1.0.
  double mean = 0.0;
  for (const i64 g : gaps) mean += static_cast<double>(g);
  mean /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (const i64 g : gaps) {
    const double d = static_cast<double>(g) - mean;
    var += d * d;
  }
  var /= static_cast<double>(gaps.size());
  EXPECT_GT(std::sqrt(var) / mean, 1.5);
}

TEST(ClosedLoopTraceTest, SingleClientNeverOverlapsItsOwnService) {
  const std::vector<GemmWorkload> mix = {{"w", {4, 8, 8}}};
  ClosedLoopTraceConfig cfg;
  cfg.num_requests = 256;
  cfg.num_clients = 1;
  cfg.mean_think_cycles = 500.0;
  cfg.service_estimate_cycles = 2000.0;
  Rng rng(17);
  RequestQueue q = generate_closed_loop_trace(mix, cfg, rng);
  ASSERT_EQ(q.size(), 256u);
  i64 prev = -1;
  while (!q.empty()) {
    const i64 t = q.pop().arrival_cycle;
    if (prev >= 0) {
      // A lone client re-issues only after service + think; rounding can
      // shave at most a cycle.
      EXPECT_GE(t - prev, static_cast<i64>(cfg.service_estimate_cycles) - 1);
    }
    prev = t;
  }
}

TEST(ClosedLoopTraceTest, PopulationBoundsConcurrency) {
  // With zero think time and service estimate S, any window shorter than S
  // can hold at most num_clients arrivals.
  const std::vector<GemmWorkload> mix = {{"w", {4, 8, 8}}};
  ClosedLoopTraceConfig cfg;
  cfg.num_requests = 512;
  cfg.num_clients = 4;
  cfg.mean_think_cycles = 0.0;
  cfg.service_estimate_cycles = 1000.0;
  Rng rng(23);
  RequestQueue q = generate_closed_loop_trace(mix, cfg, rng);
  std::vector<i64> arrivals;
  while (!q.empty()) arrivals.push_back(q.pop().arrival_cycle);
  for (std::size_t i = 4; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i] - arrivals[i - 4],
              static_cast<i64>(cfg.service_estimate_cycles) - 1)
        << "more than 4 clients in flight at index " << i;
  }
}

TEST(ServeMixTest, ResNetMixIsLoweredConvs) {
  const auto mix = resnet50_serve_mix();
  ASSERT_FALSE(mix.empty());
  for (const auto& w : mix) EXPECT_TRUE(w.shape.valid()) << w.name;
}

}  // namespace
}  // namespace axon::serve
