#include "serve/request.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace axon::serve {
namespace {

TEST(RequestQueueTest, FifoAndArrivalOrderEnforced) {
  RequestQueue q;
  Request a;
  a.id = 0;
  a.gemm = {1, 2, 3};
  a.arrival_cycle = 10;
  Request b = a;
  b.id = 1;
  b.arrival_cycle = 20;
  q.push(a);
  q.push(b);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.next_arrival(), 10);
  EXPECT_EQ(q.pop().id, 0);
  EXPECT_EQ(q.pop().id, 1);
  EXPECT_TRUE(q.empty());

  Request late = a;
  late.arrival_cycle = 30;
  q.push(late);
  Request early = a;
  early.arrival_cycle = 5;
  EXPECT_THROW(q.push(early), CheckError);
}

TEST(TraceGeneratorTest, DeterministicForFixedSeed) {
  const auto mix = transformer_serve_mix();
  const TraceConfig cfg{/*num_requests=*/32, /*mean_interarrival=*/500.0};
  Rng rng1(123);
  Rng rng2(123);
  RequestQueue q1 = generate_trace(mix, cfg, rng1);
  RequestQueue q2 = generate_trace(mix, cfg, rng2);
  ASSERT_EQ(q1.size(), 32u);
  while (!q1.empty()) {
    const Request a = q1.pop();
    const Request b = q2.pop();
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.gemm, b.gemm);
    EXPECT_EQ(a.arrival_cycle, b.arrival_cycle);
  }
}

TEST(TraceGeneratorTest, ArrivalsNonDecreasingAndMixRespected) {
  const auto mix = mixed_serve_mix();
  ASSERT_FALSE(mix.empty());
  Rng rng(7);
  RequestQueue q = generate_trace(mix, {64, 1000.0}, rng);
  i64 prev = 0;
  i64 next_id = 0;
  while (!q.empty()) {
    const Request r = q.pop();
    EXPECT_EQ(r.id, next_id++);
    EXPECT_GE(r.arrival_cycle, prev);
    prev = r.arrival_cycle;
    EXPECT_TRUE(r.gemm.valid());
    EXPECT_FALSE(r.workload.empty());
  }
}

TEST(ServeMixTest, ResNetMixIsLoweredConvs) {
  const auto mix = resnet50_serve_mix();
  ASSERT_FALSE(mix.empty());
  for (const auto& w : mix) EXPECT_TRUE(w.shape.valid()) << w.name;
}

}  // namespace
}  // namespace axon::serve
