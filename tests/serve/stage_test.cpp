// Multi-stage (StageChain) serving: chain interning semantics, the
// re-admission pipeline end to end on a hand-built two-stage trace, the
// extended latency-breakdown identity (latency == batch_wait + queue_wait
// + service + preempt_blocked + handoff, summed across stages) with a
// genuinely nonzero fabric handoff on the disagg scenario, per-stage table
// consistency against the request records, and the 1-vs-8-thread record
// diff of the disaggregated scenario — the multi-stage determinism check
// CI's TSan serve_ filter watches.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "serve/pool.hpp"
#include "serve/scenarios.hpp"

namespace axon::serve {
namespace {

// The canonical serve entry takes a TraceSource lvalue; tests that build
// throwaway queues name them here before serving.
ServeReport serve_queue(const PoolConfig& cfg, RequestQueue q) {
  AcceleratorPool pool(cfg);
  return pool.serve(q);
}

TEST(ChainInterningTest, PlainInternIsALengthOneGeneralChain) {
  WorkloadRegistry reg;
  const GemmShape shape{8, 64, 64};
  const WorkloadId id = reg.intern("decode", shape);
  ASSERT_EQ(reg.num_stages(id), 1u);
  EXPECT_EQ(reg.chain(id).front().gemm, shape);
  EXPECT_EQ(reg.chain(id).front().cls, StageClass::kGeneral);
  EXPECT_FALSE(reg.multi_stage());
}

TEST(ChainInterningTest, InternChainRegistersStagesAndFlagsMultiStage) {
  WorkloadRegistry reg;
  const StageChain chain = {{{64, 256, 512}, StageClass::kPrefill},
                            {{1, 512, 256}, StageClass::kDecode}};
  const WorkloadId id = reg.intern_chain("gen", chain);
  ASSERT_EQ(reg.num_stages(id), 2u);
  // The workload's canonical shape is stage 0's GEMM — what trace
  // generators stamp on arriving requests.
  EXPECT_EQ(reg.shape(id), chain.front().gemm);
  EXPECT_EQ(reg.chain(id)[1].gemm, chain[1].gemm);
  EXPECT_EQ(reg.chain(id)[1].cls, StageClass::kDecode);
  EXPECT_TRUE(reg.multi_stage());
}

TEST(ChainInterningTest, FirstRegistrationWinsAndEmptyChainFails) {
  WorkloadRegistry reg;
  const StageChain chain = {{{64, 256, 512}, StageClass::kPrefill},
                            {{1, 512, 256}, StageClass::kDecode}};
  const WorkloadId id = reg.intern_chain("gen", chain);
  // Repeat interns (chain or plain) return the original id and keep the
  // original chain — mixes may legitimately repeat a name.
  EXPECT_EQ(reg.intern_chain("gen", {{{9, 9, 9}, StageClass::kGeneral}}), id);
  EXPECT_EQ(reg.intern("gen", {9, 9, 9}), id);
  EXPECT_EQ(reg.num_stages(id), 2u);
  EXPECT_EQ(reg.shape(id), chain.front().gemm);
  EXPECT_THROW(reg.intern_chain("empty", {}), CheckError);
}

// A two-stage chain on a plain homogeneous pool (no topology): stage 1
// must re-enter through the normal admission path and finish after stage 0,
// with the per-stage table recording both hops and a zero fabric handoff.
TEST(MultiStagePipelineTest, TwoStageChainCompletesThroughReadmission) {
  constexpr int kRequests = 12;
  const StageChain chain = {{{32, 256, 256}, StageClass::kGeneral},
                            {{1, 256, 128}, StageClass::kGeneral}};
  RequestQueue q;
  const WorkloadId gen = q.intern_chain("gen", chain);
  for (int i = 0; i < kRequests; ++i) {
    Request r;
    r.id = i;
    r.workload = gen;
    r.gemm = chain.front().gemm;
    r.arrival_cycle = static_cast<i64>(i) * 1000;
    r.stage_class = chain.front().cls;
    q.push(r);
  }

  PoolConfig cfg;
  cfg.num_accelerators = 2;
  cfg.accelerator.array = {32, 32};
  cfg.batching.max_batch = 4;
  cfg.batching.max_wait_cycles = 2000;
  const ServeReport r = serve_queue(cfg, std::move(q));

  ASSERT_EQ(r.records.size(), static_cast<std::size_t>(kRequests));
  // Every request retires exactly one per-stage row per stage.
  EXPECT_EQ(r.records.num_stage_rows(),
            static_cast<std::size_t>(2 * kRequests));
  for (const RequestRecord& rec : r.records) {
    EXPECT_EQ(rec.stage_count, 2);
    EXPECT_EQ(rec.handoff_cycles, 0);  // no topology: handoffs are free
    EXPECT_GT(rec.completion_cycle, rec.arrival_cycle);
    EXPECT_EQ(rec.latency_cycles(),
              rec.batch_wait_cycles() + rec.queue_wait_cycles() +
                  rec.total_service_cycles() + rec.preempt_blocked_cycles() +
                  rec.handoff_cycles);
  }
}

TEST(MultiStagePipelineTest, SingleStageTrafficCarriesNoStageRows) {
  const ServeReport r =
      serve_queue(mixed_fleet_pool_config(RoutePolicy::kLeastCost),
                  mixed_fleet_trace());
  EXPECT_EQ(r.records.num_stage_rows(), 0u);
  for (const RequestRecord& rec : r.records) {
    EXPECT_EQ(rec.stage_count, 1);
    EXPECT_EQ(rec.handoff_cycles, 0);
  }
}

// The disagg scenario crosses a real fabric (prefill farm on node 0,
// ingress on the decode node), so "gen" records carry nonzero handoffs —
// the identity must still hold exactly, per record, and the per-stage
// table must reconcile with the request-level aggregates.
TEST(MultiStageLatencyIdentityTest, IdentityHoldsWithNonzeroHandoffs) {
  const ServeReport r = serve_queue(
      disagg_pool_config(StageAffinity::kStrict), disagg_trace());
  ASSERT_GT(r.records.size(), 0u);
  ASSERT_GT(r.records.num_stage_rows(), 0u);

  int chained = 0;
  int with_handoff = 0;
  for (const RequestRecord& rec : r.records) {
    EXPECT_EQ(rec.latency_cycles(),
              rec.batch_wait_cycles() + rec.queue_wait_cycles() +
                  rec.total_service_cycles() + rec.preempt_blocked_cycles() +
                  rec.handoff_cycles)
        << "request " << rec.id;
    if (rec.stage_count > 1) ++chained;
    if (rec.handoff_cycles > 0) ++with_handoff;
  }
  EXPECT_GT(chained, 0);
  // Every handoff into the decode pool crosses the node-0 -> node-1 hop.
  EXPECT_GT(with_handoff, 0);

  // Per-stage table vs. the request records: each chained request owns
  // stage_count rows; stage 0 starts at the request's arrival, the last
  // stage ends at its completion, and the per-stage service and handoff
  // columns sum to the record's aggregates.
  struct Folded {
    int rows = 0;
    i64 service = 0;
    i64 handoff = 0;
    i64 first_arrival = -1;
    i64 last_completion = -1;
    int max_stage = -1;
  };
  std::map<i64, Folded> by_id;
  for (std::size_t i = 0; i < r.records.num_stage_rows(); ++i) {
    const RecordStore::StageRecord s = r.records.stage_row(i);
    Folded& f = by_id[s.id];
    ++f.rows;
    f.service += s.service_cycles;
    f.handoff += s.handoff_cycles;
    if (s.stage == 0) f.first_arrival = s.arrival_cycle;
    if (s.stage > f.max_stage) {
      f.max_stage = s.stage;
      f.last_completion = s.completion_cycle;
    }
    EXPECT_GE(s.completion_cycle, s.dispatch_cycle);
    EXPECT_GE(s.dispatch_cycle, s.arrival_cycle);
  }
  for (const RequestRecord& rec : r.records) {
    if (rec.stage_count <= 1) {
      EXPECT_EQ(by_id.count(rec.id), 0u);
      continue;
    }
    const auto it = by_id.find(rec.id);
    ASSERT_NE(it, by_id.end()) << "request " << rec.id;
    const Folded& f = it->second;
    EXPECT_EQ(f.rows, rec.stage_count);
    EXPECT_EQ(f.max_stage, rec.stage_count - 1);
    EXPECT_EQ(f.first_arrival, rec.arrival_cycle);
    EXPECT_EQ(f.last_completion, rec.completion_cycle);
    EXPECT_EQ(f.service, rec.total_service_cycles());
    EXPECT_EQ(f.handoff, rec.handoff_cycles);
  }
}

void expect_identical_records(const ServeReport& a, const ServeReport& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_EQ(a.records[i], b.records[i]) << "record " << i;
  }
  ASSERT_EQ(a.records.num_stage_rows(), b.records.num_stage_rows());
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_EQ(a.total_batches, b.total_batches);
  EXPECT_EQ(a.total_chunks, b.total_chunks);
  EXPECT_EQ(a.preemptions, b.preemptions);
}

// 1 vs 8 worker threads through multi-stage re-admission: the simulated
// timeline — including every successor-stage handoff — is a pure function
// of the trace. TSan watches this one in CI (serve_ filter).
TEST(DisaggScaleTest, ThreadCountInvariantThroughStageReadmission) {
  const ScenarioSpec& spec = scenario("disagg_prefill_decode_split");
  auto run = [&spec](int threads) {
    PoolConfig cfg = spec.config;
    cfg.num_threads = threads;
    AcceleratorPool pool(cfg);
    const std::unique_ptr<TraceSource> source = spec.make_trace();
    return pool.serve(*source);
  };
  expect_identical_records(run(1), run(8));
}

}  // namespace
}  // namespace axon::serve
