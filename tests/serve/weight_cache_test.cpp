#include "serve/weight_cache.hpp"

#include <gtest/gtest.h>

#include "memory/traffic.hpp"

namespace axon::serve {
namespace {

TEST(WeightCacheTest, FootprintMatchesDatatypeWidth) {
  EXPECT_EQ(WeightCache::footprint_bytes(64, 32), 64 * 32 * kBytesPerElement);
}

TEST(WeightCacheTest, MissThenHitOnSameWeights) {
  WeightCache cache(WeightCache::footprint_bytes(64, 64));
  EXPECT_FALSE(cache.contains(64, 64));
  EXPECT_FALSE(cache.touch(64, 64));  // cold: streams and inserts
  EXPECT_TRUE(cache.contains(64, 64));
  EXPECT_TRUE(cache.touch(64, 64));  // warm
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.used_bytes(), WeightCache::footprint_bytes(64, 64));
}

TEST(WeightCacheTest, LruEvictionUnderCapacityPressure) {
  // Three equal-footprint matrices (K*N = 1024 each), capacity for two:
  // touching a third must evict the least recently used, and recency
  // refreshes on hit.
  WeightCache cache(2 * WeightCache::footprint_bytes(32, 32));
  cache.touch(32, 32);   // A
  cache.touch(64, 16);   // B
  EXPECT_TRUE(cache.touch(32, 32));  // refresh A => B is now LRU
  cache.touch(16, 64);               // C evicts B
  EXPECT_TRUE(cache.contains(32, 32));
  EXPECT_FALSE(cache.contains(64, 16));
  EXPECT_TRUE(cache.contains(16, 64));
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(WeightCacheTest, AlternatingOversubscriptionNeverHits) {
  // Two matrices, room for one: the classic thrash pattern stays all-miss.
  WeightCache cache(WeightCache::footprint_bytes(64, 64));
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(cache.touch(64, 64));
    EXPECT_FALSE(cache.touch(32, 128));
  }
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 8);
}

TEST(WeightCacheTest, EntryLargerThanCapacityIsNeverInserted) {
  WeightCache cache(16);  // smaller than any real weight matrix
  EXPECT_FALSE(cache.touch(64, 64));
  EXPECT_FALSE(cache.contains(64, 64));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0);
  EXPECT_EQ(cache.misses(), 1);
  // And it must not have evicted smaller residents to make doomed room.
  WeightCache cache2(WeightCache::footprint_bytes(8, 8));
  cache2.touch(8, 8);
  cache2.touch(1024, 1024);  // oversized
  EXPECT_TRUE(cache2.contains(8, 8));
}

TEST(WeightCacheTest, DisabledCacheCountsNothing) {
  WeightCache cache(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.touch(64, 64));
  EXPECT_FALSE(cache.touch(64, 64));
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(WeightCacheTest, ContainsDoesNotPerturbRecencyOrStats) {
  WeightCache cache(2 * WeightCache::footprint_bytes(32, 32));
  cache.touch(32, 32);  // A
  cache.touch(64, 16);  // B
  // Reading A via contains() must not refresh it: A stays LRU and gets
  // evicted by C.
  EXPECT_TRUE(cache.contains(32, 32));
  cache.touch(16, 64);  // C
  EXPECT_FALSE(cache.contains(32, 32));
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 3);
}

}  // namespace
}  // namespace axon::serve
