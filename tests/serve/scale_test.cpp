// The serve_scale scenario, test-sized: a small variant of the canonical
// production-trace-size scenario (serve/scenarios serve_scale_*) deep
// enough to oscillate the ready queue hundreds of batches deep, diffed
// record-by-record (1) between the indexed serve core and the seed's
// scan-reference scheduler and (2) between 1 and 8 worker threads — the
// latter under TSan in CI (this suite matches the serve_ filter). Plus the
// overflow-safe to_fleet_cycles boundary cases the scale regime motivated.
#include <gtest/gtest.h>

#include <limits>

#include "common/check.hpp"
#include "serve/pool.hpp"
#include "serve/scenarios.hpp"

namespace axon::serve {
namespace {

// Big enough for thousands of events and a deep backlog, small enough for
// a sanitizer-instrumented run.
constexpr int kTestRequests = 3000;

ServeReport serve_scale(ReadyQueueImpl impl, int threads) {
  AcceleratorPool pool(serve_scale_pool_config(impl, threads));
  RequestQueue q = serve_scale_trace(kTestRequests);
  return pool.serve(q);
}

void expect_identical_records(const ServeReport& a, const ServeReport& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const RequestRecord& x = a.records[i];
    const RequestRecord& y = b.records[i];
    // Per-field first so a divergence names the field...
    ASSERT_EQ(x.id, y.id);
    EXPECT_EQ(x.workload, y.workload);
    EXPECT_EQ(x.gemm, y.gemm);
    EXPECT_EQ(x.arrival_cycle, y.arrival_cycle);
    EXPECT_EQ(x.batch_ready_cycle, y.batch_ready_cycle);
    EXPECT_EQ(x.dispatch_cycle, y.dispatch_cycle);
    EXPECT_EQ(x.completion_cycle, y.completion_cycle);
    EXPECT_EQ(x.deadline_cycle, y.deadline_cycle);
    EXPECT_EQ(x.service_cycles, y.service_cycles);
    EXPECT_EQ(x.priority, y.priority);
    EXPECT_EQ(x.batch_size, y.batch_size);
    EXPECT_EQ(x.batch_chunks, y.batch_chunks);
    EXPECT_EQ(x.accelerator, y.accelerator);
    // ...then the all-fields operator== as the completeness backstop (a
    // field added to RequestRecord but not the list above still diffs).
    ASSERT_EQ(x, y) << "record " << i;
  }
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_EQ(a.total_batches, b.total_batches);
  EXPECT_EQ(a.total_chunks, b.total_chunks);
  EXPECT_EQ(a.preemptions, b.preemptions);
}

TEST(ServeScaleTest, IndexedMatchesScanReferenceRecordForRecord) {
  const ServeReport indexed = serve_scale(ReadyQueueImpl::kIndexed, 1);
  const ServeReport scan = serve_scale(ReadyQueueImpl::kScanReference, 1);
  ASSERT_EQ(indexed.records.size(),
            static_cast<std::size_t>(kTestRequests));
  expect_identical_records(indexed, scan);
  // The scenario actually exercises the deep-queue machinery: multi-chunk
  // dispatch, realized preemptions, continuous-admission joins.
  EXPECT_GT(indexed.total_chunks, indexed.total_batches);
  EXPECT_GT(indexed.preemptions, 0);
}

TEST(ServeScaleTest, ThreadCountInvariantOnTheScaleScenario) {
  // 1 vs 8 worker threads on the indexed core: the simulated timeline is
  // a pure function of the trace — TSan watches this one in CI.
  expect_identical_records(serve_scale(ReadyQueueImpl::kIndexed, 1),
                           serve_scale(ReadyQueueImpl::kIndexed, 8));
}

TEST(ToFleetCyclesTest, ExactCeilDivisionAtOrdinaryMagnitudes) {
  EXPECT_EQ(to_fleet_cycles(0, 1000), 0);
  EXPECT_EQ(to_fleet_cycles(1000, 1000), 1000);
  EXPECT_EQ(to_fleet_cycles(1000, 2000), 500);
  EXPECT_EQ(to_fleet_cycles(1001, 2000), 501);  // ceil, not floor
  EXPECT_EQ(to_fleet_cycles(3, 4000), 1);
}

TEST(ToFleetCyclesTest, WideIntermediateSurvivesTheI64Boundary) {
  // device_cycles * kRefClockMhz here is ~9.3e18 — past i64 — but the
  // converted result fits comfortably. The seed implementation wrapped to
  // a negative timeline on exactly this input.
  const i64 big = 9'300'000'000'000'000;  // 9.3e15 device cycles
  EXPECT_EQ(to_fleet_cycles(big, 2000), big / 2);
  // Boundary: the largest device count whose conversion still fits at a
  // 1 MHz clock (scale factor 1000).
  const i64 max = std::numeric_limits<i64>::max();
  const i64 largest_fitting = max / 1000;
  EXPECT_EQ(to_fleet_cycles(largest_fitting, 1000 * 1000),
            ceil_div(largest_fitting, 1000));
}

TEST(ToFleetCyclesTest, GenuineOverflowFailsLoudly) {
  // A result that truly exceeds i64 must AXON_CHECK, not wrap: 9e18
  // device cycles on a 1 MHz device is 9e21 fleet cycles.
  const i64 huge = std::numeric_limits<i64>::max() / 2;
  EXPECT_THROW(to_fleet_cycles(huge, 1), CheckError);
  EXPECT_THROW(to_fleet_cycles(-1, 1000), CheckError);
  EXPECT_THROW(to_fleet_cycles(1, 0), CheckError);
}

}  // namespace
}  // namespace axon::serve
