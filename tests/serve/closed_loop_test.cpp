// Closed-loop completion feedback (ClosedLoopTraceSource + the pool's
// retire-time on_complete hook): the estimate-replay equivalence that pins
// the feedback arithmetic, the in-flight <= num_clients self-limiting
// invariant under saturation, re-issue anchoring on realized completions,
// and thread-count determinism of the canonical feedback scenario (TSan
// runs this suite).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/rng.hpp"
#include "serve/pool.hpp"
#include "serve/request.hpp"
#include "serve/scenarios.hpp"

namespace axon::serve {
namespace {

TEST(ClosedLoopFeedbackTest, ExactEstimateCompletionsReplayEstimateTrace) {
  // The feedback anchor is `when + (completion - arrival) + think`; when
  // every completion lands exactly at arrival + estimate (an integer),
  // that is bit-for-bit the estimate path's `when + estimate + think` —
  // so driving the feedback source with exact-estimate completions must
  // reproduce the estimate stream request for request.
  const int n = 512;
  ClosedLoopTraceSource estimate = closed_loop_source(false, n);
  ClosedLoopTraceSource feedback = closed_loop_source(true, n);
  const double est_d = closed_loop_traffic(true).service_estimate_cycles;
  const i64 est = static_cast<i64>(est_d);
  ASSERT_EQ(static_cast<double>(est), est_d)
      << "scenario estimate must be integral for exact replay";
  while (!estimate.exhausted()) {
    ASSERT_GE(estimate.next_arrival(), 0);
    const Request a = estimate.pop();
    ASSERT_EQ(feedback.next_arrival(), a.arrival_cycle);
    const Request b = feedback.pop();
    EXPECT_EQ(b.id, a.id);
    EXPECT_EQ(b.workload, a.workload);
    EXPECT_EQ(b.gemm, a.gemm);
    EXPECT_EQ(b.arrival_cycle, a.arrival_cycle);
    EXPECT_EQ(b.deadline_cycle, a.deadline_cycle);
    EXPECT_EQ(b.priority, a.priority);
    feedback.on_complete(b.id, b.arrival_cycle + est);
  }
  EXPECT_TRUE(feedback.exhausted());
}

TEST(ClosedLoopFeedbackTest, ReissueTracksRealizedCompletion) {
  // One client, strictly sequential: issue -> blocked -> complete ->
  // re-issue. The re-issue cycle must move one-for-one with the realized
  // completion cycle — that is what "re-issue on real completions" means.
  ClosedLoopTraceConfig tc = closed_loop_traffic(true, /*num_requests=*/4);
  tc.num_clients = 1;
  const auto reissue_gap = [&](i64 service) {
    ClosedLoopTraceSource src(closed_loop_mix(), tc, Rng(kClosedLoopSeed));
    const Request first = src.pop();
    // Blocked on the in-flight request: nothing poppable, yet the source
    // is not exhausted (the flush-vs-wait distinction the pool relies on).
    EXPECT_EQ(src.next_arrival(), -1);
    EXPECT_FALSE(src.exhausted());
    EXPECT_EQ(src.in_flight(), 1u);
    src.on_complete(first.id, first.arrival_cycle + service);
    EXPECT_EQ(src.in_flight(), 0u);
    return src.pop().arrival_cycle - first.arrival_cycle;
  };
  const i64 base = reissue_gap(50000);
  EXPECT_EQ(reissue_gap(50000 + 12345), base + 12345);
}

/// Delegating source that watches the pool drive the closed loop: peak
/// in-flight population and the completion callbacks actually delivered.
class SpySource final : public TraceSource {
 public:
  explicit SpySource(ClosedLoopTraceSource inner) : inner_(std::move(inner)) {}

  [[nodiscard]] i64 next_arrival() const override {
    return inner_.next_arrival();
  }
  Request pop() override {
    Request r = inner_.pop();
    max_in_flight = std::max(max_in_flight, inner_.in_flight());
    return r;
  }
  [[nodiscard]] bool exhausted() const override { return inner_.exhausted(); }
  [[nodiscard]] std::size_t size_hint() const override {
    return inner_.size_hint();
  }
  void on_complete(i64 request_id, i64 completion_cycle) override {
    ++completions;
    last_completion_cycle = completion_cycle;
    inner_.on_complete(request_id, completion_cycle);
  }
  [[nodiscard]] const WorkloadRegistry& registry() const override {
    return inner_.registry();
  }

  std::size_t max_in_flight = 0;
  std::size_t completions = 0;
  i64 last_completion_cycle = -1;

 private:
  ClosedLoopTraceSource inner_;
};

TEST(ClosedLoopFeedbackTest, SaturationSelfLimitsAtClientPopulation) {
  // The canonical scenario's fleet is deliberately under-provisioned for
  // its 32 clients: feedback mode must ride the in-flight bound (reaching
  // it, never exceeding it), and the pool must report every completion
  // back — one on_complete per request.
  SpySource spy(closed_loop_source(true));
  const ServeReport fb = AcceleratorPool(closed_loop_pool_config()).serve(spy);
  ASSERT_EQ(fb.records.size(), static_cast<std::size_t>(kClosedLoopRequests));
  EXPECT_EQ(spy.completions, static_cast<std::size_t>(kClosedLoopRequests));
  EXPECT_EQ(spy.max_in_flight, static_cast<std::size_t>(kClosedLoopClients));
  EXPECT_EQ(spy.last_completion_cycle, fb.makespan_cycles);
  // The headline behaviour gap: estimate mode keeps issuing as if the
  // fleet kept up and drowns it; feedback mode's offered load tracks
  // realized service, so SLO attainment is dramatically better.
  ClosedLoopTraceSource est = closed_loop_source(false);
  const ServeReport open =
      AcceleratorPool(closed_loop_pool_config()).serve(est);
  EXPECT_GT(fb.slo_attainment(), 0.99);
  EXPECT_LT(open.slo_attainment(), 0.5);
}

TEST(ClosedLoopFeedbackTest, FeedbackScenarioDeterministicAcrossThreads) {
  // Completion feedback makes the *trace itself* depend on the simulated
  // timeline, so this is the strongest determinism test in the suite: any
  // thread-count-dependent completion would cascade into different
  // arrivals. 1 vs 8 workers must agree on every record.
  const auto run = [](int threads) {
    ClosedLoopTraceSource src = closed_loop_source(true);
    return AcceleratorPool(closed_loop_pool_config(threads)).serve(src);
  };
  const ServeReport one = run(1);
  const ServeReport eight = run(8);
  EXPECT_EQ(one.makespan_cycles, eight.makespan_cycles);
  EXPECT_EQ(one.total_batches, eight.total_batches);
  EXPECT_EQ(one.slo_attainment(), eight.slo_attainment());
  ASSERT_EQ(one.records.size(), eight.records.size());
  for (std::size_t i = 0; i < one.records.size(); ++i) {
    ASSERT_EQ(one.records[i], eight.records[i]) << "record " << i;
  }
}

}  // namespace
}  // namespace axon::serve
