// Chunked dispatch (ChunkPolicy): tile-granular preemption mechanics and
// the chunk-boundary edge cases — 1-tile batches, frozen membership of
// partially executed batches, weight-cache accounting across chunks of one
// batch, the deadline-aware run-whole window, and thread-count determinism
// on the canonical chunked-prefill scenario (TSan runs this suite).
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "serve/pool.hpp"
#include "serve/request.hpp"
#include "serve/scenarios.hpp"

namespace axon::serve {
namespace {

// The canonical serve entry takes a TraceSource lvalue; tests that build
// throwaway queues name them here before serving.
ServeReport serve_queue(const PoolConfig& cfg, RequestQueue q) {
  AcceleratorPool pool(cfg);
  return pool.serve(q);
}

PoolConfig chunk_config(ChunkPolicy chunking, int accelerators = 1) {
  PoolConfig cfg;
  cfg.accelerator = {.arch = ArchType::kAxon, .array = {32, 32}};
  cfg.num_accelerators = accelerators;
  cfg.policy = SchedulePolicy::kEarliestDeadlineFirst;
  cfg.chunking = chunking;
  cfg.chunk_tiles = 2;
  cfg.batching = {/*max_batch=*/1, /*max_wait_cycles=*/100};
  return cfg;
}

Request make_request(i64 id, const GemmShape& gemm, i64 arrival,
                     i64 deadline = -1, int priority = 0) {
  Request r;
  r.id = id;
  // Nothing here renders names, so fixed ids stand in for decode/prefill.
  r.workload = deadline >= 0 ? 0 : 1;
  r.gemm = gemm;
  r.arrival_cycle = arrival;
  r.deadline_cycle = deadline;
  r.priority = priority;
  return r;
}

TEST(ChunkPolicyTest, OneTileBatchChunkingIsANoOp) {
  // A batch that fits one M-tile (M <= 32 rows here) has nothing to split:
  // chunked and unchunked runs produce the identical timeline.
  const auto trace = [] {
    RequestQueue q;
    for (int i = 0; i < 6; ++i) {
      q.push(make_request(i, {8, 64, 64}, 500 * i));
    }
    return q;
  };
  const ServeReport whole =
      serve_queue(chunk_config(ChunkPolicy::kNone), trace());
  const ServeReport chunked =
      serve_queue(chunk_config(ChunkPolicy::kFixedTiles), trace());
  EXPECT_EQ(chunked.total_chunks, chunked.total_batches);
  EXPECT_EQ(chunked.preemptions, 0);
  EXPECT_EQ(chunked.makespan_cycles, whole.makespan_cycles);
  ASSERT_EQ(chunked.records.size(), whole.records.size());
  for (std::size_t i = 0; i < chunked.records.size(); ++i) {
    EXPECT_EQ(chunked.records[i].completion_cycle,
              whole.records[i].completion_cycle);
    EXPECT_EQ(chunked.records[i].batch_chunks, 1);
  }
}

TEST(ChunkPolicyTest, AbsorbIntoPartiallyExecutedBatchIsRejected) {
  // Membership of a batch freezes at first dispatch: rows already executed
  // were priced without the newcomer, so late joins must go elsewhere.
  Batch b;
  b.gemm = {64, 16, 16};
  b.members.push_back({0, 0});
  Request late = make_request(1, {4, 16, 16}, 100);
  b.m_executed = 32;
  EXPECT_THROW(b.absorb(late), CheckError);
  b.m_executed = 0;
  Request ok = make_request(2, {4, 16, 16}, 100);
  b.absorb(ok);
  EXPECT_EQ(b.gemm.M, 68);
}

TEST(ChunkPolicyTest, WeightCacheHitAccountingAcrossChunks) {
  // One 256-row prefill on one cached device, chunk_tiles 2 (64 rows per
  // chunk on the 32x32 OS array): chunk 0 streams the weights (miss),
  // chunks 1..3 find them resident (hits) — the amortization that makes
  // chunking nearly free.
  PoolConfig cfg = chunk_config(ChunkPolicy::kFixedTiles);
  cfg.fleet.push_back({.name = "cached",
                       .accelerator = {.arch = ArchType::kAxon,
                                       .array = {32, 32}},
                       .weight_cache_bytes = 16 << 20});
  RequestQueue q;
  q.push(make_request(0, {256, 512, 512}, 0));
  const ServeReport r = serve_queue(cfg, std::move(q));
  EXPECT_EQ(r.total_batches, 1);
  EXPECT_EQ(r.total_chunks, 4);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].batch_chunks, 4);
  ASSERT_EQ(r.per_accelerator.size(), 1u);
  EXPECT_EQ(r.per_accelerator[0].weight_misses, 1);
  EXPECT_EQ(r.per_accelerator[0].weight_hits, 3);
  // Without a cache every chunk re-streams: all four dispatches miss.
  PoolConfig cold = chunk_config(ChunkPolicy::kFixedTiles);
  RequestQueue q2;
  q2.push(make_request(0, {256, 512, 512}, 0));
  const ServeReport rc = serve_queue(cold, std::move(q2));
  EXPECT_EQ(rc.total_chunks, 4);
  EXPECT_EQ(rc.per_accelerator[0].weight_hits, 0);
}

TEST(ChunkPolicyTest, UrgentArrivalPreemptsAnInFlightPrefill) {
  // Single device: a long no-deadline prefill dispatches at t=0; a tight-
  // deadline decode arrives mid-flight. Unchunked it waits out the whole
  // prefill; chunked it jumps in at the next tile boundary.
  const GemmShape prefill{256, 512, 512};
  const GemmShape decode{1, 512, 512};
  const auto trace = [&] {
    RequestQueue q;
    q.push(make_request(0, prefill, 0, /*deadline=*/-1, /*priority=*/1));
    q.push(make_request(1, decode, 1000, /*deadline=*/200000, /*priority=*/0));
    return q;
  };
  const ServeReport whole =
      serve_queue(chunk_config(ChunkPolicy::kNone), trace());
  const ServeReport chunked =
      serve_queue(chunk_config(ChunkPolicy::kFixedTiles), trace());
  const auto decode_rec = [](const ServeReport& r) {
    for (const auto& rec : r.records) {
      if (rec.id == 1) return rec;
    }
    ADD_FAILURE() << "decode record missing";
    return r.records[0];
  };
  const RequestRecord dw = decode_rec(whole);
  const RequestRecord dc = decode_rec(chunked);
  // Unchunked: the decode's service begins exactly when the whole prefill
  // completes — head-of-line blocking for the full prefill duration.
  for (const auto& rec : whole.records) {
    if (rec.id == 0) {
      EXPECT_EQ(dw.dispatch_cycle, rec.completion_cycle);
    }
  }
  EXPECT_LT(dc.dispatch_cycle, dw.dispatch_cycle);
  EXPECT_LT(dc.latency_cycles(), dw.latency_cycles());
  EXPECT_GE(chunked.preemptions, 1);
  EXPECT_EQ(whole.preemptions, 0);
  // The preempted prefill still completes, split across > 1 chunk.
  for (const auto& rec : chunked.records) {
    if (rec.id == 0) {
      EXPECT_GT(rec.batch_chunks, 1);
    }
  }
}

TEST(ChunkPolicyTest, DeadlineAwareRunsWholeOnlyInTheNoSlackWindow) {
  // The run-whole window is [remaining cost, remaining cost + one chunk):
  // a deadline the batch can make, but not if anything preempts it.
  const GemmShape prefill{256, 512, 512};
  AcceleratorPool probe(chunk_config(ChunkPolicy::kDeadlineAware));
  const i64 whole_cost = probe.estimate_gemm_cycles(prefill);
  const auto serve_with_deadline = [&](i64 deadline) {
    RequestQueue q;
    q.push(make_request(0, prefill, 0, deadline));
    return serve_queue(chunk_config(ChunkPolicy::kDeadlineAware),
                       std::move(q));
  };
  // Slack just covers the remaining work: too tight to risk preemption.
  EXPECT_EQ(serve_with_deadline(whole_cost + 10).total_chunks, 1);
  // Ample slack: chunk freely (a preemption would not cost the deadline).
  EXPECT_GT(serve_with_deadline(4 * whole_cost).total_chunks, 1);
  // Unmakeable deadline: the batch yields — chunk so others can pass.
  EXPECT_GT(serve_with_deadline(whole_cost / 2).total_chunks, 1);
  // kFixedTiles ignores the window and always splits.
  RequestQueue q;
  q.push(make_request(0, prefill, 0, whole_cost + 10));
  EXPECT_GT(serve_queue(chunk_config(ChunkPolicy::kFixedTiles), std::move(q))
                .total_chunks,
            1);
}

TEST(ChunkPolicyTest, ChunkedPrefillScenarioDeterministicAcrossThreads) {
  // The canonical serve/scenarios chunked-prefill trace, 1 vs 8 worker
  // threads: chunk decisions and weight-cache state mutate only in the
  // serve loop, so every simulated number is bit-identical.
  const auto serve_chunked = [](int threads) {
    PoolConfig cfg = chunked_prefill_pool_config(ChunkPolicy::kDeadlineAware);
    cfg.num_threads = threads;
    return serve_queue(cfg, chunked_prefill_trace());
  };
  const ServeReport one = serve_chunked(1);
  const ServeReport eight = serve_chunked(8);
  EXPECT_EQ(one.makespan_cycles, eight.makespan_cycles);
  EXPECT_EQ(one.total_chunks, eight.total_chunks);
  EXPECT_EQ(one.total_batches, eight.total_batches);
  EXPECT_EQ(one.preemptions, eight.preemptions);
  EXPECT_EQ(one.slo_attainment(), eight.slo_attainment());
  ASSERT_EQ(one.records.size(), eight.records.size());
  for (std::size_t i = 0; i < one.records.size(); ++i) {
    EXPECT_EQ(one.records[i].dispatch_cycle, eight.records[i].dispatch_cycle);
    EXPECT_EQ(one.records[i].completion_cycle,
              eight.records[i].completion_cycle);
    EXPECT_EQ(one.records[i].accelerator, eight.records[i].accelerator);
    EXPECT_EQ(one.records[i].batch_chunks, eight.records[i].batch_chunks);
  }
  // And the scenario delivers its headline: chunking realizes preemptions
  // and strictly improves decode SLO attainment over whole-batch dispatch.
  PoolConfig whole_cfg = chunked_prefill_pool_config(ChunkPolicy::kNone);
  const ServeReport whole =
      serve_queue(whole_cfg, chunked_prefill_trace());
  EXPECT_GT(one.preemptions, 0);
  EXPECT_GT(one.slo_attainment(), whole.slo_attainment());
}

}  // namespace
}  // namespace axon::serve
