// obs/trace TraceSink on the serve_scale scenario, test-sized (the same
// 3k-request variant scale_test diffs): (1) the rendered Chrome-trace
// JSON is byte-identical for 1 and 8 worker threads — the timeline is
// emitted from the single-threaded serve loop in event order, so the
// *string* is part of the determinism contract, and this suite matches
// the serve_ filter so TSan watches the 8-thread side in CI; (2) the
// trace reconciles with the ServeReport it was recorded alongside — span
// durations sum to per-device busy cycles and preemption instants count
// the report's preemptions; (3) probes are passive (attaching one changes
// no record); (4) the latency breakdown identity the trace visualizes
// holds exactly on every record.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "serve/pool.hpp"
#include "serve/scenarios.hpp"

namespace axon::serve {
namespace {

// Matches scale_test: deep enough for multi-chunk batches, realized
// preemptions, and continuous-admission joins; small enough for TSan.
constexpr int kTestRequests = 3000;

struct TracedRun {
  ServeReport report;
  std::string json;
  std::vector<i64> span_cycles;
  i64 preemption_events = 0;
  std::size_t num_events = 0;
};

TracedRun run_traced(int threads) {
  AcceleratorPool pool(
      serve_scale_pool_config(ReadyQueueImpl::kIndexed, threads));
  obs::TraceSink sink;
  pool.add_probe(&sink);
  TracedRun out;
  RequestQueue q = serve_scale_trace(kTestRequests);
  out.report = pool.serve(q);
  out.json = sink.to_json();
  out.span_cycles = sink.device_span_cycles();
  out.preemption_events = sink.preemption_events();
  out.num_events = sink.num_events();
  return out;
}

TEST(ServeTraceTest, TraceBytesIdenticalAcrossThreadCounts) {
  const TracedRun one = run_traced(1);
  const TracedRun eight = run_traced(8);
  ASSERT_GT(one.num_events, 0u);
  EXPECT_EQ(one.num_events, eight.num_events);
  ASSERT_EQ(one.json.size(), eight.json.size());
  // operator== rather than EXPECT_EQ: on mismatch the latter would dump
  // two multi-megabyte strings into the test log.
  EXPECT_TRUE(one.json == eight.json)
      << "trace JSON diverged between 1 and 8 worker threads";
}

TEST(ServeTraceTest, SpansReconcileWithTheReport) {
  const TracedRun run = run_traced(1);
  // Every executed chunk is one "X" span on its device's track, so the
  // per-device span durations must sum to exactly the busy cycles the
  // report accounted to that device — no invented or dropped execution.
  ASSERT_EQ(run.span_cycles.size(), run.report.per_accelerator.size());
  for (std::size_t i = 0; i < run.span_cycles.size(); ++i) {
    EXPECT_EQ(run.span_cycles[i], run.report.per_accelerator[i].busy_cycles)
        << "device " << i;
  }
  // One "preempt" instant per realized preemption, no more, no fewer.
  EXPECT_GT(run.report.preemptions, 0);
  EXPECT_EQ(run.preemption_events, run.report.preemptions);
  // The document is the standard envelope the viewers load.
  EXPECT_EQ(run.json.rfind("{\"traceEvents\":", 0), 0u);
}

TEST(ServeTraceTest, AttachingProbesChangesNoRecord) {
  const TracedRun traced = run_traced(1);
  AcceleratorPool bare_pool(serve_scale_pool_config(ReadyQueueImpl::kIndexed, 1));
  RequestQueue bare_q = serve_scale_trace(kTestRequests);
  const ServeReport bare = bare_pool.serve(bare_q);
  ASSERT_EQ(traced.report.records.size(), bare.records.size());
  for (std::size_t i = 0; i < bare.records.size(); ++i) {
    ASSERT_EQ(traced.report.records[i], bare.records[i]) << "record " << i;
  }
  EXPECT_EQ(traced.report.makespan_cycles, bare.makespan_cycles);
  EXPECT_EQ(traced.report.preemptions, bare.preemptions);
}

TEST(ServeTraceTest, MultiStageRunsAnnotateSuccessorStageSpans) {
  // Single-stage traces omit the "stage" key entirely (their bytes are
  // part of the pre-chain determinism contract)...
  const TracedRun single = run_traced(1);
  EXPECT_EQ(single.json.find("\"stage\":"), std::string::npos);
  // ...while a chained run marks every successor-stage exec span, so a
  // re-admitted stage's chunk 0 never collides with stage 0's chunk 0
  // under the validator's duplicate-span identity (both share the batch
  // id — the request id).
  AcceleratorPool pool(disagg_pool_config(StageAffinity::kStrict));
  obs::TraceSink sink;
  pool.add_probe(&sink);
  RequestQueue q = disagg_trace();
  const ServeReport r = pool.serve(q);
  EXPECT_GT(r.records.num_stage_rows(), 0u);
  EXPECT_NE(sink.to_json().find(",\"stage\":1,"), std::string::npos);
}

TEST(ServeTraceTest, LatencyBreakdownSumsExactlyPerRecord) {
  AcceleratorPool pool(serve_scale_pool_config(ReadyQueueImpl::kIndexed, 1));
  RequestQueue q = serve_scale_trace(kTestRequests);
  const ServeReport r = pool.serve(q);
  ASSERT_EQ(r.records.size(), static_cast<std::size_t>(kTestRequests));
  i64 preempt_blocked_total = 0;
  for (const RequestRecord& rec : r.records) {
    EXPECT_GE(rec.batch_wait_cycles(), 0) << "id " << rec.id;
    EXPECT_GE(rec.queue_wait_cycles(), 0) << "id " << rec.id;
    EXPECT_GE(rec.service_cycles, 0) << "id " << rec.id;
    EXPECT_GE(rec.preempt_blocked_cycles(), 0) << "id " << rec.id;
    // The breakdown is an identity, not an approximation.
    ASSERT_EQ(rec.batch_wait_cycles() + rec.queue_wait_cycles() +
                  rec.service_cycles + rec.preempt_blocked_cycles(),
              rec.latency_cycles())
        << "id " << rec.id;
  }
  // The scenario chunks and preempts, so the blocked term is exercised.
  for (const RequestRecord& rec : r.records) {
    preempt_blocked_total += rec.preempt_blocked_cycles();
  }
  EXPECT_GT(preempt_blocked_total, 0);
}

}  // namespace
}  // namespace axon::serve
