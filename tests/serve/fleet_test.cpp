// Heterogeneous-fleet serving: cost-aware routing across mixed
// AcceleratorSpecs, per-device weight caches, clock scaling, and the
// determinism contract with all of it switched on at once.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "serve/pool.hpp"
#include "serve/request.hpp"

namespace axon::serve {
namespace {

// The canonical serve entry takes a TraceSource lvalue; tests that build
// throwaway queues name them here before serving.
ServeReport serve_queue(const PoolConfig& cfg, RequestQueue q) {
  AcceleratorPool pool(cfg);
  return pool.serve(q);
}

Request make_req(RequestQueue& q, i64 id, const GemmShape& shape, i64 arrival,
                 i64 deadline = -1, int priority = 0) {
  Request r;
  r.id = id;
  r.workload = q.intern("w" + std::to_string(id));
  r.gemm = shape;
  r.arrival_cycle = arrival;
  r.deadline_cycle = deadline;
  r.priority = priority;
  return r;
}

AcceleratorSpec spec(int rows, int cols, int clock_mhz = kRefClockMhz,
                     i64 dram = 0, i64 cache = 0) {
  AcceleratorSpec s;
  s.accelerator = {.arch = ArchType::kAxon, .array = {rows, cols}};
  s.clock_mhz = clock_mhz;
  s.dram_bytes_per_cycle = dram;
  s.weight_cache_bytes = cache;
  return s;
}

void expect_same_simulated_results(const ServeReport& a,
                                   const ServeReport& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const RequestRecord& ra = a.records[i];
    const RequestRecord& rb = b.records[i];
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_EQ(ra.dispatch_cycle, rb.dispatch_cycle) << "request " << ra.id;
    EXPECT_EQ(ra.completion_cycle, rb.completion_cycle) << "request " << ra.id;
    EXPECT_EQ(ra.accelerator, rb.accelerator) << "request " << ra.id;
    EXPECT_EQ(ra.batch_size, rb.batch_size) << "request " << ra.id;
  }
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_EQ(a.total_busy_cycles, b.total_busy_cycles);
  ASSERT_EQ(a.per_accelerator.size(), b.per_accelerator.size());
  for (std::size_t i = 0; i < a.per_accelerator.size(); ++i) {
    const AcceleratorStats& sa = a.per_accelerator[i];
    const AcceleratorStats& sb = b.per_accelerator[i];
    EXPECT_EQ(sa.busy_cycles, sb.busy_cycles) << "device " << i;
    EXPECT_EQ(sa.batches, sb.batches) << "device " << i;
    EXPECT_EQ(sa.requests, sb.requests) << "device " << i;
    EXPECT_EQ(sa.weight_hits, sb.weight_hits) << "device " << i;
    EXPECT_EQ(sa.weight_misses, sb.weight_misses) << "device " << i;
  }
}

TEST(FleetTest, HomogeneousShorthandEqualsExplicitFleet) {
  // The PR-1/2 shorthand (accelerator + num_accelerators) and an explicit
  // fleet of identical members must produce the same simulated timeline.
  PoolConfig shorthand;
  shorthand.accelerator = {.arch = ArchType::kAxon, .array = {8, 8}};
  shorthand.num_accelerators = 2;
  shorthand.dram_bytes_per_cycle = 16;
  shorthand.batching = {2, 100};

  PoolConfig fleet = shorthand;
  fleet.fleet = {spec(8, 8, kRefClockMhz, 16), spec(8, 8, kRefClockMhz, 16)};

  const auto trace = [] {
    RequestQueue q;
    for (i64 i = 0; i < 12; ++i) q.push(make_req(q, i, {4, 8, 8}, i * 50));
    return q;
  };
  expect_same_simulated_results(serve_queue(shorthand, trace()),
                                serve_queue(fleet, trace()));
}

TEST(FleetTest, ClockScalesSimulatedCycles) {
  // Same array, double clock: the identical device-cycle cost retires in
  // ceil(half) the simulated fleet cycles.
  const auto run = [](int clock_mhz) {
    PoolConfig cfg;
    cfg.fleet = {spec(8, 8, clock_mhz)};
    cfg.batching = {1, 0};
    RequestQueue q;
    q.push(make_req(q, 0, {8, 8, 8}, 0));
    return serve_queue(cfg, std::move(q));
  };
  const i64 base = run(kRefClockMhz).records[0].compute_cycles();
  const i64 fast = run(2 * kRefClockMhz).records[0].compute_cycles();
  EXPECT_EQ(fast, (base + 1) / 2);
  EXPECT_LT(fast, base);
}

TEST(FleetTest, LeastCostRoutesToCheaperDeviceFirstFreeDoesNot) {
  // A compute-bound GEMM on a fleet of [small, big] arrays: first-free
  // parks it on the small device (index 0), least-cost routes it to the
  // big one.
  const GemmShape g{64, 64, 64};
  PoolConfig cfg;
  cfg.fleet = {spec(8, 8), spec(32, 32)};
  cfg.batching = {1, 0};

  AcceleratorPool pool(cfg);
  ASSERT_LT(pool.device_cycles(1, g), pool.device_cycles(0, g));

  const auto trace = [&] {
    RequestQueue q;
    q.push(make_req(q, 0, g, 0));
    return q;
  };
  cfg.routing = RoutePolicy::kFirstFree;
  EXPECT_EQ(serve_queue(cfg, trace()).records[0].accelerator, 0);
  cfg.routing = RoutePolicy::kLeastCost;
  EXPECT_EQ(serve_queue(cfg, trace()).records[0].accelerator, 1);
}

TEST(FleetTest, RoundRobinRotatesAcrossIdleDevices) {
  // Widely spaced singletons: every device is idle at each dispatch, so
  // round-robin alternates while first-free would always pick device 0.
  const auto run = [](RoutePolicy routing) {
    PoolConfig cfg;
    cfg.fleet = {spec(8, 8), spec(8, 8)};
    cfg.routing = routing;
    cfg.batching = {1, 0};
    RequestQueue q;
    for (i64 i = 0; i < 4; ++i) q.push(make_req(q, i, {8, 8, 8}, i * 100000));
    return serve_queue(cfg, std::move(q));
  };
  const ServeReport rr = run(RoutePolicy::kRoundRobin);
  ASSERT_EQ(rr.records.size(), 4u);
  EXPECT_EQ(rr.records[0].accelerator, 0);
  EXPECT_EQ(rr.records[1].accelerator, 1);
  EXPECT_EQ(rr.records[2].accelerator, 0);
  EXPECT_EQ(rr.records[3].accelerator, 1);
  const ServeReport ff = run(RoutePolicy::kFirstFree);
  for (const auto& r : ff.records) EXPECT_EQ(r.accelerator, 0);
}

TEST(FleetTest, CacheWarmDecodeBatchCostsStrictlyLessThanCold) {
  // The regression the weight cache exists for: a transfer-bound decode
  // shape re-dispatched against warm weights must cost strictly less than
  // the cold dispatch that streamed them.
  const GemmShape decode{1, 256, 256};
  PoolConfig cfg;
  cfg.fleet = {spec(8, 8, kRefClockMhz, /*dram=*/8, /*cache=*/1 << 20)};
  cfg.batching = {1, 0};

  AcceleratorPool pool(cfg);
  EXPECT_LT(pool.device_cycles(0, decode, /*weights_resident=*/true),
            pool.device_cycles(0, decode, /*weights_resident=*/false));

  RequestQueue q;
  for (i64 i = 0; i < 3; ++i) q.push(make_req(q, i, decode, i * 100000));
  const ServeReport rep = serve_queue(cfg, std::move(q));
  ASSERT_EQ(rep.records.size(), 3u);
  EXPECT_LT(rep.records[1].compute_cycles(), rep.records[0].compute_cycles());
  EXPECT_EQ(rep.records[1].compute_cycles(), rep.records[2].compute_cycles());
  ASSERT_EQ(rep.per_accelerator.size(), 1u);
  EXPECT_EQ(rep.per_accelerator[0].weight_misses, 1);
  EXPECT_EQ(rep.per_accelerator[0].weight_hits, 2);
  EXPECT_DOUBLE_EQ(rep.per_accelerator[0].weight_hit_rate(), 2.0 / 3.0);
}

TEST(FleetTest, WeightAffinityEmergesFromLeastCostRouting) {
  // Two identical cached devices, a stream of same-weight transfer-bound
  // singletons with both devices idle each time: after the cold first
  // dispatch lands on device 0 (index tie-break), least-cost keeps the
  // stream there — the warm cache makes device 0 strictly cheaper.
  PoolConfig cfg;
  cfg.fleet = {spec(8, 8, kRefClockMhz, 8, 1 << 20),
               spec(8, 8, kRefClockMhz, 8, 1 << 20)};
  cfg.routing = RoutePolicy::kLeastCost;
  cfg.batching = {1, 0};
  RequestQueue q;
  for (i64 i = 0; i < 5; ++i) q.push(make_req(q, i, {1, 256, 256}, i * 100000));
  const ServeReport rep = serve_queue(cfg, std::move(q));
  for (const auto& r : rep.records) EXPECT_EQ(r.accelerator, 0);
  EXPECT_EQ(rep.per_accelerator[0].weight_hits, 4);
  EXPECT_EQ(rep.per_accelerator[0].weight_misses, 1);
  EXPECT_EQ(rep.per_accelerator[1].batches, 0);
}

TEST(FleetTest, PerAcceleratorStatsSumToFleetTotals) {
  PoolConfig cfg;
  cfg.fleet = {spec(8, 8, kRefClockMhz, 16, 1 << 20), spec(16, 16),
               spec(8, 16, 2 * kRefClockMhz, 32)};
  cfg.routing = RoutePolicy::kLeastCost;
  cfg.batching = {4, 200};
  const std::vector<GemmWorkload> mix = {
      {"t_a", {4, 8, 8}}, {"t_b", {8, 8, 8}}, {"t_c", {1, 64, 64}}};
  Rng rng(7);
  const ServeReport rep =
      serve_queue(cfg, generate_trace(mix, {48, 120.0}, rng));
  ASSERT_EQ(rep.per_accelerator.size(), 3u);
  EXPECT_EQ(rep.per_accelerator[0].name, "acc0");
  EXPECT_EQ(rep.per_accelerator[2].name, "acc2");
  i64 busy = 0, batches = 0;
  std::size_t requests = 0;
  for (const auto& a : rep.per_accelerator) {
    busy += a.busy_cycles;
    batches += a.batches;
    requests += a.requests;
  }
  EXPECT_EQ(busy, rep.total_busy_cycles);
  EXPECT_EQ(batches, rep.total_batches);
  EXPECT_EQ(requests, rep.records.size());
}

TEST(FleetTest, MixedFleetDeterministicAcrossThreadCounts) {
  // The full tentpole stack — heterogeneous specs, cost-aware routing,
  // weight caches, EDF + priority classes, continuous admission, bursty
  // arrivals — must still yield a bit-identical simulated timeline for 1
  // vs 8 worker threads, per-device stats included.
  const auto trace = [] {
    BurstyTraceConfig tc;
    tc.num_requests = 96;
    tc.burst_interarrival_cycles = 40.0;
    tc.mean_on_cycles = 2000.0;
    tc.mean_off_cycles = 5000.0;
    tc.classes.default_policy = {/*slo=*/40000, /*priority=*/1};
    tc.classes.per_workload["t_a"] = {/*slo=*/15000, /*priority=*/0};
    const std::vector<GemmWorkload> mix = {
        {"t_a", {4, 8, 8}}, {"t_b", {8, 8, 8}}, {"t_c", {1, 64, 64}}};
    Rng rng(77);
    return generate_bursty_trace(mix, tc, rng);
  };
  PoolConfig cfg;
  cfg.fleet = {spec(8, 8, kRefClockMhz, 16, 1 << 20),
               spec(16, 16, kRefClockMhz, 8),
               spec(8, 16, 2 * kRefClockMhz, 32, 1 << 16)};
  cfg.routing = RoutePolicy::kLeastCost;
  cfg.policy = SchedulePolicy::kEarliestDeadlineFirst;
  cfg.batching = {4, 200};
  cfg.batching.continuous_admission = true;
  cfg.num_threads = 1;
  const ServeReport a = serve_queue(cfg, trace());
  cfg.num_threads = 8;
  const ServeReport b = serve_queue(cfg, trace());
  expect_same_simulated_results(a, b);
  EXPECT_DOUBLE_EQ(a.slo_attainment(), b.slo_attainment());
  // The fleet actually spread work (routing is not degenerate).
  int used = 0;
  for (const auto& s : a.per_accelerator) used += s.batches > 0 ? 1 : 0;
  EXPECT_GE(used, 2);
}

TEST(FleetTest, CycleAccurateHeterogeneousDeterministic) {
  PoolConfig cfg;
  cfg.fleet = {spec(8, 8, kRefClockMhz, 16, 1 << 18),
               spec(4, 8, 2 * kRefClockMhz, 16)};
  cfg.routing = RoutePolicy::kLeastCost;
  cfg.exec = ExecMode::kCycleAccurate;
  cfg.batching = {2, 100};
  const auto trace = [] {
    const std::vector<GemmWorkload> mix = {{"s", {4, 8, 8}}, {"m", {8, 8, 8}}};
    Rng rng(5);
    return generate_trace(mix, {16, 200.0}, rng);
  };
  cfg.num_threads = 1;
  const ServeReport a = serve_queue(cfg, trace());
  cfg.num_threads = 4;
  const ServeReport b = serve_queue(cfg, trace());
  expect_same_simulated_results(a, b);
}

}  // namespace
}  // namespace axon::serve
