#include "serve/report.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sim/stats.hpp"

namespace axon::serve {
namespace {

TEST(HistogramTest, NearestRankPercentilesOnKnownDistribution) {
  Histogram h;
  // 1..100 inserted out of order: percentile p must return exactly p.
  for (int v = 100; v >= 1; --v) h.add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(50), 50);
  EXPECT_EQ(h.percentile(95), 95);
  EXPECT_EQ(h.percentile(99), 99);
  EXPECT_EQ(h.percentile(100), 100);
  EXPECT_EQ(h.percentile(1), 1);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(HistogramTest, SmallSampleNearestRank) {
  Histogram h;
  h.add(10);
  h.add(20);
  h.add(30);
  h.add(40);
  // ceil(p/100 * 4)-th smallest.
  EXPECT_EQ(h.percentile(25), 10);
  EXPECT_EQ(h.percentile(26), 20);
  EXPECT_EQ(h.percentile(50), 20);
  EXPECT_EQ(h.percentile(75), 30);
  EXPECT_EQ(h.percentile(99), 40);
}

TEST(HistogramTest, MergeAndEmptyBehaviour) {
  Histogram a;
  Histogram b;
  a.add(1);
  b.add(3);
  b.add(2);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.percentile(100), 3);
  a.merge(a);  // self-merge doubles the samples
  EXPECT_EQ(a.count(), 6u);
  EXPECT_EQ(a.percentile(50), 2);
  Histogram empty;
  EXPECT_EQ(empty.min(), 0);
  EXPECT_EQ(empty.max(), 0);
  EXPECT_THROW((void)empty.percentile(50), CheckError);
  EXPECT_THROW((void)a.percentile(0.0), CheckError);
  EXPECT_THROW((void)a.percentile(100.5), CheckError);
}

TEST(ServeReportTest, FinalizeAggregatesRecords) {
  ServeReport rep;
  rep.num_accelerators = 2;
  rep.total_batches = 2;
  const WorkloadId w = rep.workloads.intern("w");
  for (i64 i = 0; i < 4; ++i) {
    RequestRecord r;
    r.id = 3 - i;  // reversed: finalize must sort by id
    r.workload = w;
    r.gemm = {4, 8, 8};
    r.arrival_cycle = 10 * r.id;
    r.dispatch_cycle = r.arrival_cycle + 5;
    r.completion_cycle = r.dispatch_cycle + 100;
    r.batch_size = 2;
    rep.records.push_back(r);
  }
  rep.total_busy_cycles = 200;
  rep.finalize();
  EXPECT_EQ(rep.records[0].id, 0);
  EXPECT_EQ(rep.records[rep.records.size() - 1].id, 3);
  EXPECT_EQ(rep.makespan_cycles, 135);  // id 3: 30 + 5 + 100
  EXPECT_EQ(rep.latency().count(), 4u);
  EXPECT_EQ(rep.latency().percentile(50), 105);
  EXPECT_EQ(rep.queueing().percentile(99), 5);
  EXPECT_EQ(rep.records[0].compute_cycles(), 100);
  EXPECT_DOUBLE_EQ(rep.mean_batch_size(), 2.0);
  EXPECT_GT(rep.throughput_per_mcycle(), 0.0);
  EXPECT_GT(rep.fleet_utilization(), 0.0);
  EXPECT_FALSE(rep.summary().empty());
}

TEST(HistogramTest, PercentileOrIsEmptySafe) {
  Histogram empty;
  EXPECT_EQ(empty.percentile_or(99), 0);
  EXPECT_EQ(empty.percentile_or(50, -7), -7);
  Histogram h;
  h.add(10);
  h.add(20);
  h.add(30);
  EXPECT_EQ(h.percentile_or(50), h.percentile(50));
}

TEST(ServeReportTest, EmptyTraceYieldsWellFormedReport) {
  // Regression: zero-record traces must finalize and summarize without
  // tripping Histogram::percentile's empty-histogram check.
  ServeReport rep;
  rep.num_accelerators = 4;
  rep.num_threads = 2;
  rep.finalize();
  EXPECT_EQ(rep.num_requests(), 0u);
  EXPECT_EQ(rep.makespan_cycles, 0);
  EXPECT_DOUBLE_EQ(rep.mean_batch_size(), 0.0);
  EXPECT_DOUBLE_EQ(rep.throughput_per_mcycle(), 0.0);
  EXPECT_DOUBLE_EQ(rep.fleet_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(rep.slo_attainment(), 1.0);
  const std::string s = rep.summary();  // must not throw
  EXPECT_NE(s.find("requests: 0"), std::string::npos);
}

TEST(ServeReportTest, BreakdownsSliceByWorkloadAndClass) {
  ServeReport rep;
  const auto record = [&rep](i64 id, const std::string& w, int prio,
                             i64 deadline, i64 completion) {
    RequestRecord r;
    r.id = id;
    r.workload = rep.workloads.intern(w);
    r.gemm = {1, 8, 8};
    r.arrival_cycle = 0;
    r.dispatch_cycle = 1;
    r.completion_cycle = completion;
    r.deadline_cycle = deadline;
    r.priority = prio;
    r.batch_size = 1;
    return r;
  };
  // Interactive: two requests with SLO 100, one met, one missed by 50.
  rep.records.push_back(record(0, "decode", 0, 100, 80));
  rep.records.push_back(record(1, "decode", 0, 100, 150));
  // Batch class: no SLO.
  rep.records.push_back(record(2, "prefill", 1, -1, 500));
  rep.total_batches = 3;
  rep.finalize();

  const std::map<std::string, GroupStats> by_workload = rep.by_workload();
  ASSERT_EQ(by_workload.size(), 2u);
  const GroupStats& decode = by_workload.at("decode");
  EXPECT_EQ(decode.requests, 2u);
  EXPECT_EQ(decode.with_deadline, 2u);
  EXPECT_EQ(decode.met_deadline, 1u);
  EXPECT_DOUBLE_EQ(decode.slo_attainment(), 0.5);
  EXPECT_EQ(decode.miss.percentile_or(99), 50);  // missed by 150 - 100

  const GroupStats& prefill = by_workload.at("prefill");
  EXPECT_EQ(prefill.with_deadline, 0u);
  EXPECT_DOUBLE_EQ(prefill.slo_attainment(), 1.0);

  const std::map<int, GroupStats> by_class = rep.by_class();
  ASSERT_EQ(by_class.size(), 2u);
  EXPECT_EQ(by_class.at(0).requests, 2u);
  EXPECT_EQ(by_class.at(1).requests, 1u);
  EXPECT_DOUBLE_EQ(rep.slo_attainment(), 0.5);

  const std::string s = rep.summary();
  EXPECT_NE(s.find("Per-workload breakdown"), std::string::npos);
  EXPECT_NE(s.find("Per-priority-class breakdown"), std::string::npos);
  EXPECT_NE(s.find("slo:"), std::string::npos);
}

TEST(RequestRecordTest, DeadlineAccessors) {
  RequestRecord r;
  r.arrival_cycle = 10;
  r.completion_cycle = 110;
  EXPECT_FALSE(r.has_deadline());
  EXPECT_TRUE(r.met_deadline());  // no SLO => nothing to violate
  EXPECT_EQ(r.miss_cycles(), 0);
  r.deadline_cycle = 120;
  EXPECT_TRUE(r.met_deadline());
  r.deadline_cycle = 90;
  EXPECT_FALSE(r.met_deadline());
  EXPECT_EQ(r.miss_cycles(), 20);
}

}  // namespace
}  // namespace axon::serve
