#include "serve/report.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sim/stats.hpp"

namespace axon::serve {
namespace {

TEST(HistogramTest, NearestRankPercentilesOnKnownDistribution) {
  Histogram h;
  // 1..100 inserted out of order: percentile p must return exactly p.
  for (int v = 100; v >= 1; --v) h.add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(50), 50);
  EXPECT_EQ(h.percentile(95), 95);
  EXPECT_EQ(h.percentile(99), 99);
  EXPECT_EQ(h.percentile(100), 100);
  EXPECT_EQ(h.percentile(1), 1);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(HistogramTest, SmallSampleNearestRank) {
  Histogram h;
  h.add(10);
  h.add(20);
  h.add(30);
  h.add(40);
  // ceil(p/100 * 4)-th smallest.
  EXPECT_EQ(h.percentile(25), 10);
  EXPECT_EQ(h.percentile(26), 20);
  EXPECT_EQ(h.percentile(50), 20);
  EXPECT_EQ(h.percentile(75), 30);
  EXPECT_EQ(h.percentile(99), 40);
}

TEST(HistogramTest, MergeAndEmptyBehaviour) {
  Histogram a;
  Histogram b;
  a.add(1);
  b.add(3);
  b.add(2);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.percentile(100), 3);
  a.merge(a);  // self-merge doubles the samples
  EXPECT_EQ(a.count(), 6u);
  EXPECT_EQ(a.percentile(50), 2);
  Histogram empty;
  EXPECT_EQ(empty.min(), 0);
  EXPECT_EQ(empty.max(), 0);
  EXPECT_THROW((void)empty.percentile(50), CheckError);
  EXPECT_THROW((void)a.percentile(0.0), CheckError);
  EXPECT_THROW((void)a.percentile(100.5), CheckError);
}

TEST(ServeReportTest, FinalizeAggregatesRecords) {
  ServeReport rep;
  rep.num_accelerators = 2;
  rep.total_batches = 2;
  for (i64 i = 0; i < 4; ++i) {
    RequestRecord r;
    r.id = 3 - i;  // reversed: finalize must sort by id
    r.workload = "w";
    r.gemm = {4, 8, 8};
    r.arrival_cycle = 10 * r.id;
    r.dispatch_cycle = r.arrival_cycle + 5;
    r.completion_cycle = r.dispatch_cycle + 100;
    r.batch_size = 2;
    rep.records.push_back(r);
  }
  rep.total_busy_cycles = 200;
  rep.finalize();
  EXPECT_EQ(rep.records.front().id, 0);
  EXPECT_EQ(rep.records.back().id, 3);
  EXPECT_EQ(rep.makespan_cycles, 135);  // id 3: 30 + 5 + 100
  EXPECT_EQ(rep.latency.count(), 4u);
  EXPECT_EQ(rep.latency.percentile(50), 105);
  EXPECT_EQ(rep.queueing.percentile(99), 5);
  EXPECT_EQ(rep.records[0].compute_cycles(), 100);
  EXPECT_DOUBLE_EQ(rep.mean_batch_size(), 2.0);
  EXPECT_GT(rep.throughput_per_mcycle(), 0.0);
  EXPECT_GT(rep.fleet_utilization(), 0.0);
  EXPECT_FALSE(rep.summary().empty());
}

}  // namespace
}  // namespace axon::serve
